//===- examples/custom_influence.cpp - Hand-built constraint trees --------===//
//
// The influence constraint tree is a public, general mechanism: any
// non-linear optimizer (not just the built-in load/store vectorization
// one) can inject prioritized affine constraints into the scheduler.
// This example builds a tree by hand for a row-reduction kernel with
// two competing scenarios:
//   branch A (preferred): reduction innermost, i outermost  -- the
//     classic layout,
//   branch B (fallback):  i innermost for vectorized stores -- what the
//     built-in optimizer would pick,
// then flips the priorities and shows the scheduler following the tree
// order, including a branch that is infeasible on purpose.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Printer.h"
#include "ops/OpFactory.h"
#include "sched/Scheduler.h"

#include <cstdio>

using namespace pinj;

namespace {

/// Pins the row of statement 0 at \p Dim to the unit vector of \p Iter
/// (iterators are {i=0, j=1} here).
void pinUnitRow(InfluenceNode *Node, unsigned Dim, unsigned Iter) {
  for (unsigned Q = 0; Q != 2; ++Q)
    Node->Constraints.push_back(
        makeCoeffEquals(/*Stmt=*/0, Dim, Q, Q == Iter ? 1 : 0));
}

/// A two-deep branch ordering (Outer, Inner) for the single statement.
InfluenceNode *addOrderBranch(InfluenceTree &Tree, const char *Label,
                              unsigned Outer, unsigned Inner) {
  InfluenceNode *D0 = Tree.root().addChild(std::string(Label) + ".d0");
  pinUnitRow(D0, 0, Outer);
  InfluenceNode *D1 = D0->addChild(std::string(Label) + ".d1");
  pinUnitRow(D1, 1, Inner);
  return D1;
}

void runWithTree(const Kernel &K, InfluenceTree &Tree, const char *Title) {
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  std::printf("-- %s --\n", Title);
  std::printf("  realized leaf: %s (sibling moves: %u, ancestor "
              "backtracks: %u)\n",
              R.ReachedLeaf ? R.ReachedLeaf->Label.c_str() : "(none)",
              R.Stats.SiblingMoves, R.Stats.AncestorBacktracks);
  std::printf("%s", R.Sched.str(K).c_str());
  std::printf("  semantics preserved: %s\n\n",
              scheduleIsSemanticallyEqual(K, R.Sched) ? "yes" : "NO");
}

} // namespace

int main() {
  // OUT[i] accumulates over j: the j loop carries a dependence.
  Kernel K = makeReduceTail("custom", 128, 256, 1);
  std::printf("== Operator ==\n%s\n", printKernel(K).c_str());

  {
    // Preference 1: (i, j) order first; (j, i) as fallback.
    InfluenceTree Tree;
    addOrderBranch(Tree, "i_outer", /*Outer=*/0, /*Inner=*/1);
    addOrderBranch(Tree, "j_outer", /*Outer=*/1, /*Inner=*/0);
    runWithTree(K, Tree, "tree A: prefer (i, j)");
  }
  {
    // Preference 2: (j, i) first -- also feasible: the reduction moves
    // outermost and i becomes the innermost parallel dimension.
    InfluenceTree Tree;
    addOrderBranch(Tree, "j_outer", 1, 0);
    addOrderBranch(Tree, "i_outer", 0, 1);
    runWithTree(K, Tree, "tree B: prefer (j, i)");
  }
  {
    // Preference 3: the first branch is infeasible on purpose (it asks
    // the same iterator at both dimensions, which progression forbids);
    // the scheduler must fall through to the sibling.
    InfluenceTree Tree;
    InfluenceNode *Bad0 = Tree.root().addChild("bad.d0");
    pinUnitRow(Bad0, 0, 0);
    InfluenceNode *Bad1 = Bad0->addChild("bad.d1");
    pinUnitRow(Bad1, 1, 0); // i again: linearly dependent.
    addOrderBranch(Tree, "good", 0, 1);
    runWithTree(K, Tree, "tree C: infeasible branch first");
  }
  return 0;
}
