//===- examples/quickstart.cpp - PolyInject in five minutes ---------------===//
//
// Builds a small fused operator, runs it through the full pipeline
// (dependence analysis, influenced polyhedral scheduling, GPU mapping,
// vectorization, simulation) and prints every artifact along the way.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"
#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "pipeline/Pipeline.h"
#include "poly/Dependence.h"

#include <cstdio>

using namespace pinj;

int main() {
  // 1. Describe a fused operator: bias-add followed by an activation.
  //    Statements iterate rectangular domains; accesses are affine.
  KernelBuilder Builder("bias_relu");
  unsigned In = Builder.tensor("IN", {256, 512});
  unsigned Bias = Builder.tensor("BIAS", {512});
  unsigned Tmp = Builder.tensor("TMP", {256, 512});
  unsigned Out = Builder.tensor("OUT", {256, 512});
  Builder.stmt("ADD", {{"i", 256}, {"j", 512}})
      .write(Tmp, {"i", "j"})
      .read(In, {"i", "j"})
      .read(Bias, {"j"})
      .op(OpKind::Add);
  Builder.stmt("ACT", {{"i", 256}, {"j", 512}})
      .write(Out, {"i", "j"})
      .read(Tmp, {"i", "j"})
      .op(OpKind::Relu);
  Kernel K = Builder.build();
  std::printf("== Operator ==\n%s\n", printKernel(K).c_str());

  // 2. Dependences: the polyhedral layer computes exact relations.
  std::vector<DependenceRelation> Deps = computeDependences(K);
  std::printf("== Dependences (%zu) ==\n", Deps.size());
  for (const DependenceRelation &D : Deps)
    std::printf("  %s\n", printDependence(K, D).c_str());

  // 3. The one-call pipeline: all four of the paper's configurations.
  PipelineOptions Options;
  Options.Validate = true; // Execute and compare against original order.
  OperatorReport Report = runOperator(K, Options);

  std::printf("\n== Influenced schedule ==\n%s\n",
              Report.Infl.Sched.str(K).c_str());
  std::printf("== Generated CUDA-like kernel ==\n%s\n",
              renderCuda(K, Report.Infl.Sched, Options.Mapping).c_str());

  std::printf("== Simulated V100 times ==\n");
  std::printf("  isl   : %8.2f us\n", Report.Isl.TimeUs);
  std::printf("  tvm   : %8.2f us (%u launches)\n", Report.Tvm.TimeUs,
              Report.Tvm.Launches);
  std::printf("  novec : %8.2f us\n", Report.Novec.TimeUs);
  std::printf("  infl  : %8.2f us (%.2fx over isl)\n", Report.Infl.TimeUs,
              Report.Isl.TimeUs / Report.Infl.TimeUs);
  std::printf("  schedule changed by influence: %s, vectorizable: %s, "
              "semantics validated: %s\n",
              Report.Influenced ? "yes" : "no",
              Report.VecEligible ? "yes" : "no",
              Report.Validated ? "yes" : "NO");

  // 4. Per-configuration pipeline stats (ILP solves, pivots, fallbacks)
  //    collected by the observability layer during runOperator.
  std::printf("\n== Pipeline stats ==\n%s",
              printStatsTable(Report).c_str());
  return Report.Validated ? 0 : 1;
}
