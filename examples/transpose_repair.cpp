//===- examples/transpose_repair.cpp - Repairing layout-hostile loops -----===//
//
// The pattern behind the paper's large ResNet speedups: a fused
// transpose chain hands the scheduler an operator that iterates in its
// producer's order, so every access strides along the innermost loop.
// A plain polyhedral scheduler has no layout cost model and keeps the
// order; the influence cost model reorders the loops and vectorizes the
// repaired innermost dimension. The example prints both mappings and
// the simulated transaction counts.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"
#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "gpusim/GpuModel.h"
#include "influence/AccessAnalysis.h"
#include "ir/Printer.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace pinj;

int main() {
  Kernel K = makeHostileOrderPermute3D("nchw_boundary", 32, 256, 512, 7);
  std::printf("== The operator (note the loop order vs the layout) ==\n%s\n",
              printKernel(K).c_str());

  // What the access analysis sees: per-iterator strides.
  const Statement &S = K.Stmts[0];
  std::vector<AccessStrides> Strides = analyzeStrides(K, S);
  std::printf("== Linearized element strides per iterator ==\n");
  for (unsigned A = 0; A != Strides.size(); ++A) {
    std::printf("  %-3s %s:", Strides[A].IsWrite ? "st" : "ld",
                K.Tensors[Strides[A].Acc->TensorId].Name.c_str());
    for (unsigned I = 0; I != S.numIters(); ++I)
      std::printf(" %s=%lld", S.IterNames[I].c_str(),
                  static_cast<long long>(Strides[A].StridePerIter[I]));
    std::printf("\n");
  }

  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);

  std::printf("\n== Reference mapping (strided along the lanes) ==\n%s\n",
              renderCuda(K, R.Isl.Sched, Options.Mapping).c_str());
  std::printf("== Influenced mapping (coalesced + float4) ==\n%s\n",
              renderCuda(K, R.Infl.Sched, Options.Mapping).c_str());

  std::printf("== Simulated V100 ==\n");
  std::printf("  %-6s %12s %14s %12s\n", "config", "time(us)",
              "transactions", "efficiency");
  std::printf("  %-6s %12.2f %14.0f %11.0f%%\n", "isl", R.Isl.TimeUs,
              R.Isl.Sim.Transactions, R.Isl.Sim.efficiency() * 100);
  std::printf("  %-6s %12.2f %14.0f %11.0f%%\n", "novec", R.Novec.TimeUs,
              R.Novec.Sim.Transactions, R.Novec.Sim.efficiency() * 100);
  std::printf("  %-6s %12.2f %14.0f %11.0f%%\n", "infl", R.Infl.TimeUs,
              R.Infl.Sim.Transactions, R.Infl.Sim.efficiency() * 100);
  std::printf("  speedup over isl: %.2fx\n",
              R.Isl.TimeUs / R.Infl.TimeUs);
  return 0;
}
