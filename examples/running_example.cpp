//===- examples/running_example.cpp - The paper's Fig. 2 walkthrough ------===//
//
// The paper's running example, fused_mul_sub_mul_tensoradd from BERT,
// traced through the whole system: the isl-reference schedule that keeps
// the inefficient D[k][i][j] access (Fig. 2(b)), the influence
// constraint tree the non-linear optimizer builds (Fig. 3), and the
// influenced schedule with the fused nest and the vectorized innermost
// loop (Fig. 2(c)). Demonstrates the lower-level APIs the quickstart
// hides: explicit tree construction, scheduler invocation, vector-mark
// finalization and GPU mapping.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"
#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"
#include "ir/Printer.h"
#include "ops/OpFactory.h"
#include "sched/Scheduler.h"

#include <cstdio>

using namespace pinj;

int main() {
  Kernel K = makeFusedMulSubMulTensorAdd(64);
  std::printf("== Fig. 2(a): the fused operator ==\n%s\n",
              printKernel(K).c_str());

  // The reference configuration: serialize different-depth components,
  // no influence. This is the paper's "isl" column.
  SchedulerOptions IslOptions;
  IslOptions.SerializeSccs = true;
  SchedulerResult Isl = scheduleKernel(K, IslOptions);
  MappedKernel IslMapped = mapToGpu(K, Isl.Sched);
  std::printf("== Fig. 2(b): reference schedule ==\n%s\n",
              printAst(IslMapped).c_str());

  // The non-linear optimizer: Algorithm 2 scenarios -> constraint tree.
  InfluenceOptions InflOptions;
  DimScenario Best = buildBestScenario(K, pickSinkStatement(K), InflOptions);
  std::printf("== Best influenced dimension scenario for Y ==\n  [");
  for (unsigned I = 0; I != Best.Inner.size(); ++I)
    std::printf("%s%s", I ? ", " : "",
                K.Stmts[1].IterNames[Best.Inner[I]].c_str());
  std::printf("]  vector width %u, innermost cost %.2f\n\n",
              Best.VectorWidth, Best.InnerCost);

  InfluenceTree Tree = buildInfluenceTree(K, InflOptions);
  std::printf("== Fig. 3: the influence constraint tree ==\n%s\n",
              Tree.str(K).c_str());

  // Algorithm 1 with constraint injection.
  SchedulerResult Infl = scheduleKernel(K, SchedulerOptions(), &Tree);
  std::printf("== Scheduler outcome ==\n");
  std::printf("  realized leaf: %s\n",
              Infl.ReachedLeaf ? Infl.ReachedLeaf->Label.c_str() : "(none)");
  std::printf("  ILP solves: %u (failures %u), band breaks: %u, "
              "SCC cuts: %u\n\n",
              Infl.Stats.IlpSolves, Infl.Stats.IlpFailures,
              Infl.Stats.BandBreaks, Infl.Stats.SccCuts);

  // Backend: finalize vector marks, map, print.
  finalizeVectorMarks(K, Infl.Sched);
  MappedKernel InflMapped = mapToGpu(K, Infl.Sched);
  std::printf("== Fig. 2(c): influenced schedule ==\n%s\n",
              printAst(InflMapped).c_str());
  std::printf("== CUDA-like kernel ==\n%s\n",
              printCuda(InflMapped).c_str());

  bool Ok = scheduleIsSemanticallyEqual(K, Infl.Sched);
  std::printf("semantics preserved: %s\n", Ok ? "yes" : "NO");
  return Ok ? 0 : 1;
}
