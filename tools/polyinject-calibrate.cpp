//===- tools/polyinject-calibrate.cpp - Target calibration harness --------===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
//
// Fits a backend target's time-model constants (src/target/) to a
// measured (kernel, config, time) table and emits a versioned `.ptgt`
// file loadable with `--target=FILE` everywhere `--gpu=PRESET` works.
//
// Two modes:
//
// 1. Table emission (a stand-in for real hardware measurements — on a
//    machine with the physical device, the same table format would be
//    filled with wall-clock times):
//
//      polyinject-calibrate --emit-table --target=cpu-simd
//          --ops-file=kernels/corpus.txt --tune-space=tiny
//          --out=measured.tbl
//
//    Every kernel is covered with the baseline configuration plus a
//    deterministic stride of tuning candidates; each row records the
//    kernel path, the candidate encoding and the target's simulated
//    time.
//
// 2. Fitting:
//
//      polyinject-calibrate --table=measured.tbl --kind=cpu-simd
//          --init-scale=1.7 --out=fit.ptgt --name=mybox
//          [--ref=cpu-simd --check-tol=0.05]
//
//    Rebuilds each row's mapped kernel (the same scheduling path the
//    tuner's evaluator uses), accumulates its transaction counters
//    once, and fits the time-model constants by deterministic cyclic
//    coordinate descent (target/Calibrate.h) — two runs over the same
//    table write byte-identical `.ptgt` files. --init-scale displaces
//    the fitted constants from their defaults so the fit demonstrably
//    searches; --ref/--check-tol compare the fitted constants against
//    a reference target and fail when any relative error exceeds the
//    tolerance (the calibration-recovery acceptance gate).
//
// Usage:
//   polyinject-calibrate --emit-table --target=NAME|FILE.ptgt
//                        [--ops-file=FILE] [--tune-space=default|tiny]
//                        [--candidates=N] [--out=FILE] [kernel.pinj ...]
//   polyinject-calibrate --table=FILE --kind=gpu-analytic|cpu-simd
//                        --out=FILE.ptgt [--name=NAME]
//                        [--init=NAME|FILE.ptgt] [--init-scale=X]
//                        [--fit=P1,P2,...] [--sweeps=N]
//                        [--ref=NAME|FILE.ptgt] [--check-tol=X]
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "target/Calibrate.h"
#include "target/Target.h"
#include "tune/Evaluator.h"
#include "tune/SearchSpace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace pinj;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --emit-table --target=NAME|FILE.ptgt [--ops-file=FILE] "
      "[--tune-space=default|tiny] [--candidates=N] [--out=FILE] "
      "[kernel.pinj ...]\n"
      "       %s --table=FILE --kind=gpu-analytic|cpu-simd --out=FILE.ptgt "
      "[--name=NAME] [--init=NAME|FILE.ptgt] [--init-scale=X] "
      "[--fit=P1,P2,...] [--sweeps=N] [--ref=NAME|FILE.ptgt] "
      "[--check-tol=X]\n",
      Argv0, Argv0);
}

Kernel loadKernelOrDie(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  std::optional<Kernel> K = parseKernel(Buffer.str(), Error);
  if (!K) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
    std::exit(1);
  }
  std::string Diag = K->verify();
  if (!Diag.empty()) {
    std::fprintf(stderr, "%s: malformed kernel: %s\n", Path.c_str(),
                 Diag.c_str());
    std::exit(1);
  }
  return std::move(*K);
}

std::vector<std::string> readOpsFile(const std::string &ListPath) {
  std::ifstream In(ListPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", ListPath.c_str());
    std::exit(1);
  }
  std::filesystem::path Base = std::filesystem::path(ListPath).parent_path();
  std::vector<std::string> Paths;
  std::string Line;
  while (std::getline(In, Line)) {
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos)
      continue;
    std::size_t Last = Line.find_last_not_of(" \t\r");
    std::string Entry = Line.substr(First, Last - First + 1);
    std::filesystem::path P(Entry);
    Paths.push_back(P.is_absolute() ? P.string() : (Base / P).string());
  }
  return Paths;
}

// Table file format (text, one file):
//
//   polyinject-caltable v1
//   space <search space name>
//   count <N>
//   row <kernel path> <encoding|baseline> <time %.17g>
//   ...
//   end
//
// Paths must contain no whitespace (they come from ops files, which
// share the constraint). "baseline" means the unmodified default
// options.

constexpr const char *TableHeader = "polyinject-caltable v1";

struct TableRow {
  std::string Path;
  std::string Encoding; // "baseline" or a candidate encoding.
  double TimeUs = 0;
};

struct Table {
  std::string SpaceName;
  std::vector<TableRow> Rows;
};

bool parseDoubleTok(const std::string &Tok, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End != Tok.c_str() && *End == '\0' && std::isfinite(Out);
}

std::string serializeTable(const Table &T) {
  std::ostringstream Out;
  char Buf[64];
  Out << TableHeader << '\n';
  Out << "space " << T.SpaceName << '\n';
  Out << "count " << T.Rows.size() << '\n';
  for (const TableRow &R : T.Rows) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", R.TimeUs);
    Out << "row " << R.Path << ' ' << R.Encoding << ' ' << Buf << '\n';
  }
  Out << "end\n";
  return Out.str();
}

bool parseTable(const std::string &Text, Table &Out, std::string &Err) {
  Out = Table();
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != TableHeader) {
    Err = "not a polyinject calibration table (bad header)";
    return false;
  }
  if (!std::getline(In, Line)) {
    Err = "truncated table (no space line)";
    return false;
  }
  {
    std::istringstream F(Line);
    std::string Tag, Extra;
    if (!(F >> Tag >> Out.SpaceName) || Tag != "space" || (F >> Extra)) {
      Err = "malformed space line";
      return false;
    }
  }
  std::size_t Count = 0;
  if (!std::getline(In, Line)) {
    Err = "truncated table (no count line)";
    return false;
  }
  {
    std::istringstream F(Line);
    std::string Tag;
    if (!(F >> Tag >> Count) || Tag != "count") {
      Err = "malformed count line";
      return false;
    }
  }
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream F(Line);
    std::string Tag, TimeTok, Extra;
    TableRow R;
    if (!(F >> Tag >> R.Path >> R.Encoding >> TimeTok) || Tag != "row" ||
        (F >> Extra) || !parseDoubleTok(TimeTok, R.TimeUs)) {
      Err = "malformed row line: " + Line;
      return false;
    }
    Out.Rows.push_back(std::move(R));
  }
  if (!SawEnd) {
    Err = "truncated table (no end marker)";
    return false;
  }
  if (Out.Rows.size() != Count) {
    Err = "row count mismatch (count line says " + std::to_string(Count) +
          ", file has " + std::to_string(Out.Rows.size()) + ")";
    return false;
  }
  return true;
}

std::vector<std::string> splitCommaList(const std::string &S) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Comma = S.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = S.size();
    if (Comma > Pos)
      Out.push_back(S.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

/// The options one table row is scheduled under: defaults plus the
/// row's candidate. The backend target never enters (scheduling is
/// target-independent here), so emit and fit rebuild identical mapped
/// kernels from the same table.
bool rowOptions(const tune::SearchSpace &Space, const std::string &Encoding,
                PipelineOptions &O) {
  O = PipelineOptions();
  if (Encoding == "baseline")
    return true;
  tune::Candidate C;
  if (!Space.decode(Encoding, C))
    return false;
  Space.apply(C, O);
  return true;
}

int emitTable(const std::string &TargetSpec,
              const std::vector<std::string> &Paths,
              const std::string &SpaceName, std::size_t CandidatesPerKernel,
              const std::string &OutPath) {
  std::string Err;
  std::shared_ptr<target::TargetModel> T =
      target::resolveTarget(TargetSpec, &Err);
  if (!T) {
    std::fprintf(stderr, "error: --target: %s\n", Err.c_str());
    return 2;
  }
  tune::SearchSpace Space = tune::searchSpaceByName(SpaceName);
  if (Space.empty()) {
    std::fprintf(stderr,
                 "error: unknown --tune-space '%s' (known: default, tiny)\n",
                 SpaceName.c_str());
    return 2;
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "error: no kernels (give kernel files or "
                         "--ops-file)\n");
    return 2;
  }

  Table Tbl;
  Tbl.SpaceName = SpaceName;
  for (const std::string &P : Paths) {
    Kernel K = loadKernelOrDie(P);
    // Baseline plus an even deterministic stride over the space.
    std::vector<std::string> Encodings;
    Encodings.push_back("baseline");
    std::size_t Total = Space.size();
    std::size_t Want = std::min(CandidatesPerKernel, Total);
    std::size_t Stride = std::max<std::size_t>(1, Total / std::max<
                                                   std::size_t>(1, Want));
    for (std::size_t I = 0; I < Total && Encodings.size() < 1 + Want;
         I += Stride)
      Encodings.push_back(Space.encode(Space.candidateAt(I)));

    for (const std::string &E : Encodings) {
      PipelineOptions O;
      if (!rowOptions(Space, E, O))
        continue;
      MappedKernel M;
      if (!tune::buildInflMappedKernel(K, O, M))
        continue; // Unschedulable under this candidate: no row.
      KernelSim Sim = T->finishTime(T->accumulateCounters(M));
      TableRow R;
      R.Path = P;
      R.Encoding = E;
      R.TimeUs = Sim.TimeUs;
      Tbl.Rows.push_back(std::move(R));
    }
  }
  if (Tbl.Rows.empty()) {
    std::fprintf(stderr, "error: no table rows (every kernel/candidate "
                         "pair failed to schedule)\n");
    return 1;
  }

  std::string Text = serializeTable(Tbl);
  if (OutPath.empty()) {
    std::fputs(Text.c_str(), stdout);
  } else {
    std::ofstream Out(OutPath, std::ios::binary | std::ios::trunc);
    Out << Text;
    Out.close();
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
      return 1;
    }
    std::printf("table    %s (%zu rows, %zu kernels, target %s)\n",
                OutPath.c_str(), Tbl.Rows.size(), Paths.size(),
                T->name().c_str());
  }
  return 0;
}

int fitFromTable(const std::string &TablePath, const std::string &Kind,
                 const std::string &OutPath, const std::string &Name,
                 const std::string &InitSpec, double InitScale,
                 const std::string &FitList, unsigned Sweeps,
                 const std::string &RefSpec, double CheckTol) {
  std::ifstream In(TablePath, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "error: cannot open table %s\n", TablePath.c_str());
    return 1;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  Table Tbl;
  std::string Err;
  if (!parseTable(Text.str(), Tbl, Err)) {
    std::fprintf(stderr, "error: %s: %s\n", TablePath.c_str(), Err.c_str());
    return 1;
  }
  tune::SearchSpace Space = tune::searchSpaceByName(Tbl.SpaceName);
  if (Space.empty()) {
    std::fprintf(stderr, "error: table %s references unknown search "
                         "space '%s'\n",
                 TablePath.c_str(), Tbl.SpaceName.c_str());
    return 1;
  }

  // The target being fitted: --init (must be of --kind), else the
  // kind's defaults; --init-scale then displaces every fitted constant.
  std::shared_ptr<target::TargetModel> T;
  if (!InitSpec.empty()) {
    T = target::resolveTarget(InitSpec, &Err);
    if (!T) {
      std::fprintf(stderr, "error: --init: %s\n", Err.c_str());
      return 2;
    }
    T = T->clone();
  } else {
    T = target::makeTargetOfKind(Kind);
    if (!T) {
      std::fprintf(stderr, "error: unknown --kind '%s' (known: "
                           "gpu-analytic, cpu-simd)\n",
                   Kind.c_str());
      return 2;
    }
  }
  if (T->kind() != Kind) {
    std::fprintf(stderr, "error: --init target has kind %s, not --kind=%s\n",
                 T->kind().c_str(), Kind.c_str());
    return 2;
  }

  std::vector<std::string> FitNames = FitList.empty()
                                          ? target::defaultFitParams(Kind)
                                          : splitCommaList(FitList);
  if (InitScale != 1.0) {
    for (const std::string &N : FitNames) {
      for (const target::TargetParam &P : T->params()) {
        if (P.Name != N)
          continue;
        double V = P.Value * InitScale;
        auto [Lo, Hi] = T->paramRange(N);
        V = std::min(Hi, std::max(Lo, V));
        if (!T->setParam(N, V)) {
          std::fprintf(stderr, "error: cannot set parameter '%s'\n",
                       N.c_str());
          return 2;
        }
      }
    }
  }

  // Accumulate each row's counters once (they are independent of every
  // fitted constant — the transaction/time split at work).
  std::map<std::string, Kernel> Kernels;
  std::vector<target::CalibrationSample> Rows;
  for (const TableRow &R : Tbl.Rows) {
    auto It = Kernels.find(R.Path);
    if (It == Kernels.end())
      It = Kernels.emplace(R.Path, loadKernelOrDie(R.Path)).first;
    PipelineOptions O;
    if (!rowOptions(Space, R.Encoding, O)) {
      std::fprintf(stderr, "error: table row has undecodable encoding "
                           "'%s' in space '%s'\n",
                   R.Encoding.c_str(), Tbl.SpaceName.c_str());
      return 1;
    }
    MappedKernel M;
    if (!tune::buildInflMappedKernel(It->second, O, M)) {
      std::fprintf(stderr, "error: table row (%s, %s) no longer "
                           "schedules\n",
                   R.Path.c_str(), R.Encoding.c_str());
      return 1;
    }
    target::CalibrationSample S;
    S.Counters = T->accumulateCounters(M);
    S.MeasuredUs = R.TimeUs;
    Rows.push_back(std::move(S));
  }

  target::CalibrationConfig Cfg;
  if (Sweeps)
    Cfg.Sweeps = Sweeps;
  target::CalibrationResult Res =
      target::fitTargetParams(*T, Rows, FitNames, Cfg);
  T->rename(Name.empty() ? "calibrated" : Name);

  std::printf("fit      kind %s, %zu rows, %u sweeps, rms log error "
              "%.6g\n",
              Kind.c_str(), Rows.size(), Res.SweepsRun, Res.RmsLogError);
  for (const target::TargetParam &P : Res.Fitted)
    std::printf("  %-28s %.17g\n", P.Name.c_str(), P.Value);

  // Recovery gate: every fitted constant within tolerance of the
  // reference target's value. Runs before the save so a failed check
  // never leaves a target file behind.
  if (!RefSpec.empty()) {
    std::shared_ptr<target::TargetModel> Ref =
        target::resolveTarget(RefSpec, &Err);
    if (!Ref) {
      std::fprintf(stderr, "error: --ref: %s\n", Err.c_str());
      return 2;
    }
    if (Ref->kind() != Kind) {
      std::fprintf(stderr, "error: --ref target has kind %s, not "
                           "--kind=%s\n",
                   Ref->kind().c_str(), Kind.c_str());
      return 2;
    }
    bool Ok = true;
    for (const target::TargetParam &P : Res.Fitted) {
      double RefV = 0;
      for (const target::TargetParam &Q : Ref->params())
        if (Q.Name == P.Name)
          RefV = Q.Value;
      double Rel = RefV != 0 ? std::abs(P.Value - RefV) / std::abs(RefV)
                             : std::abs(P.Value);
      bool Pass = Rel <= CheckTol;
      Ok &= Pass;
      std::printf("  check  %-22s fitted %-12.6g ref %-12.6g rel err "
                  "%.4f %s\n",
                  P.Name.c_str(), P.Value, RefV, Rel,
                  Pass ? "ok" : "FAIL");
    }
    if (!Ok) {
      std::fprintf(stderr, "error: calibration did not recover the "
                           "reference constants within %.2f%%\n",
                   CheckTol * 100);
      return 1;
    }
    std::printf("check    all fitted constants within %.2f%% of %s\n",
                CheckTol * 100, Ref->name().c_str());
  }

  if (!OutPath.empty()) {
    if (!target::saveTargetFile(*T, OutPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("target   %s\n", OutPath.c_str());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool EmitTable = false;
  std::string TargetSpec, OpsFilePath, SpaceName = "tiny", OutPath;
  std::string TablePath, Kind, Name, InitSpec, FitList, RefSpec;
  std::size_t CandidatesPerKernel = 8;
  double InitScale = 1.0, CheckTol = 0.05;
  unsigned Sweeps = 0;
  std::vector<std::string> Paths;

  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--emit-table") == 0) {
      EmitTable = true;
    } else if (std::strncmp(Arg, "--target=", 9) == 0) {
      TargetSpec = Arg + 9;
    } else if (std::strncmp(Arg, "--ops-file=", 11) == 0) {
      OpsFilePath = Arg + 11;
    } else if (std::strncmp(Arg, "--tune-space=", 13) == 0) {
      SpaceName = Arg + 13;
    } else if (std::strncmp(Arg, "--candidates=", 13) == 0) {
      CandidatesPerKernel = std::strtoull(Arg + 13, nullptr, 10);
    } else if (std::strncmp(Arg, "--out=", 6) == 0) {
      OutPath = Arg + 6;
    } else if (std::strncmp(Arg, "--table=", 8) == 0) {
      TablePath = Arg + 8;
    } else if (std::strncmp(Arg, "--kind=", 7) == 0) {
      Kind = Arg + 7;
    } else if (std::strncmp(Arg, "--name=", 7) == 0) {
      Name = Arg + 7;
    } else if (std::strncmp(Arg, "--init=", 7) == 0) {
      InitSpec = Arg + 7;
    } else if (std::strncmp(Arg, "--init-scale=", 13) == 0) {
      InitScale = std::strtod(Arg + 13, nullptr);
      if (!(InitScale > 0)) {
        std::fprintf(stderr, "error: --init-scale needs a positive "
                             "factor\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--fit=", 6) == 0) {
      FitList = Arg + 6;
    } else if (std::strncmp(Arg, "--sweeps=", 9) == 0) {
      Sweeps = static_cast<unsigned>(std::strtoul(Arg + 9, nullptr, 10));
    } else if (std::strncmp(Arg, "--ref=", 6) == 0) {
      RefSpec = Arg + 6;
    } else if (std::strncmp(Arg, "--check-tol=", 12) == 0) {
      CheckTol = std::strtod(Arg + 12, nullptr);
      if (!(CheckTol > 0)) {
        std::fprintf(stderr, "error: --check-tol needs a positive "
                             "tolerance\n");
        return 2;
      }
    } else if (Arg[0] == '-') {
      printUsage(Argv[0]);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (!OpsFilePath.empty())
    for (std::string &P : readOpsFile(OpsFilePath))
      Paths.push_back(std::move(P));

  if (EmitTable) {
    if (TargetSpec.empty()) {
      std::fprintf(stderr, "error: --emit-table needs --target "
                           "(available: %s)\n",
                   target::availableTargetsHint().c_str());
      return 2;
    }
    return emitTable(TargetSpec, Paths, SpaceName, CandidatesPerKernel,
                     OutPath);
  }
  if (TablePath.empty() || Kind.empty()) {
    printUsage(Argv[0]);
    return 2;
  }
  return fitFromTable(TablePath, Kind, OutPath, Name, InitSpec, InitScale,
                      FitList, Sweeps, RefSpec, CheckTol);
}
