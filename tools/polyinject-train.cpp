//===- tools/polyinject-train.cpp - Offline cost-model trainer ------------===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
//
// Trains the gradient-boosted-stumps cost model (src/model/) the
// `--autotune=surrogate` strategy consumes.
//
// Sample building (kernel files given): every kernel is covered with a
// deterministic stride of tuning candidates, each scored by the same
// evaluator the search uses; a --tuning-db contributes its stored
// winner per kernel. Training is deterministic, so two runs over the
// same inputs produce byte-identical models and byte-identical stdout.
//
//   polyinject-train --out-model=m.pgbm --tuning-db=tune.db
//       --ops-file=kernels/corpus.txt
//
// Usage:
//   polyinject-train [--out-model=FILE] [--tuning-db=FILE]
//                    [--ops-file=FILE] [--dataset=FILE]
//                    [--out-dataset=FILE] [--eval-model=FILE]
//                    [--folds=N] [--rounds=N] [--shrinkage=X] [--seed=N]
//                    [--candidates=N] [--jobs=N]
//                    [--tune-space=default|tiny]
//                    [--target=NAME|FILE.ptgt] [kernel.pinj ...]
//
//     --out-model=FILE     where the trained model lands (rename-atomic)
//     --tuning-db=FILE     tuning database whose winners seed the samples
//     --dataset=FILE       train from a saved dataset instead of
//                          building one from kernels
//     --out-dataset=FILE   persist the built (or loaded) dataset
//     --eval-model=FILE    no training: load the model, print one
//                          prediction per dataset sample ("%.17g", one
//                          per line) — the train-roundtrip test's probe
//     --folds=N            held-out cross-validation folds for the
//                          MAE/rank-correlation report (default 5;
//                          0/1 skips the report)
//     --rounds/--shrinkage/--seed   GbStumps training config
//     --candidates=N       candidates evaluated per kernel (default 48)
//     --jobs=N             evaluator workers (sample values identical
//                          for any count)
//     --tune-space=NAME    space to sample ("default" or "tiny")
//     --target=SPEC        backend target samples are scored under: a
//                          built-in name (v100, a100, p100, cpu-simd)
//                          or a calibrated .ptgt file. Datasets are
//                          stamped with the target identity; mixing a
//                          loaded dataset with a different --target is
//                          an error (one surrogate approximates one
//                          target's cost function).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"
#include "model/Dataset.h"
#include "model/GbStumps.h"
#include "target/GpuAnalyticTarget.h"
#include "target/Target.h"
#include "tune/SearchSpace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace pinj;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out-model=FILE] [--tuning-db=FILE] [--ops-file=FILE] "
      "[--dataset=FILE] [--out-dataset=FILE] [--eval-model=FILE] "
      "[--folds=N] [--rounds=N] [--shrinkage=X] [--seed=N] "
      "[--candidates=N] [--jobs=N] [--tune-space=default|tiny] "
      "[--target=NAME|FILE.ptgt] [kernel.pinj ...]\n",
      Argv0);
}

Kernel loadKernelOrDie(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  std::optional<Kernel> K = parseKernel(Buffer.str(), Error);
  if (!K) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
    std::exit(1);
  }
  std::string Diag = K->verify();
  if (!Diag.empty()) {
    std::fprintf(stderr, "%s: malformed kernel: %s\n", Path.c_str(),
                 Diag.c_str());
    std::exit(1);
  }
  return std::move(*K);
}

std::vector<std::string> readOpsFile(const std::string &ListPath) {
  std::ifstream In(ListPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", ListPath.c_str());
    std::exit(1);
  }
  std::filesystem::path Base = std::filesystem::path(ListPath).parent_path();
  std::vector<std::string> Paths;
  std::string Line;
  while (std::getline(In, Line)) {
    std::size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    std::size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos)
      continue;
    std::size_t Last = Line.find_last_not_of(" \t\r");
    std::string Entry = Line.substr(First, Last - First + 1);
    std::filesystem::path P(Entry);
    Paths.push_back(P.is_absolute() ? P.string() : (Base / P).string());
  }
  return Paths;
}

/// Average ranks (1-based, ties averaged) of \p V.
std::vector<double> ranks(const std::vector<double> &V) {
  std::vector<std::size_t> Order(V.size());
  std::iota(Order.begin(), Order.end(), std::size_t(0));
  std::stable_sort(Order.begin(), Order.end(),
                   [&](std::size_t A, std::size_t B) { return V[A] < V[B]; });
  std::vector<double> R(V.size(), 0);
  std::size_t I = 0;
  while (I < Order.size()) {
    std::size_t J = I;
    while (J + 1 < Order.size() && V[Order[J + 1]] == V[Order[I]])
      ++J;
    double Avg = (double(I) + double(J)) / 2 + 1;
    for (std::size_t T = I; T <= J; ++T)
      R[Order[T]] = Avg;
    I = J + 1;
  }
  return R;
}

/// Spearman rank correlation; 0 when either side is constant.
double spearman(const std::vector<double> &A, const std::vector<double> &B) {
  std::vector<double> Ra = ranks(A), Rb = ranks(B);
  double N = double(Ra.size());
  double Ma = std::accumulate(Ra.begin(), Ra.end(), 0.0) / N;
  double Mb = std::accumulate(Rb.begin(), Rb.end(), 0.0) / N;
  double Cov = 0, Va = 0, Vb = 0;
  for (std::size_t I = 0; I < Ra.size(); ++I) {
    Cov += (Ra[I] - Ma) * (Rb[I] - Mb);
    Va += (Ra[I] - Ma) * (Ra[I] - Ma);
    Vb += (Rb[I] - Mb) * (Rb[I] - Mb);
  }
  if (Va == 0 || Vb == 0)
    return 0;
  return Cov / std::sqrt(Va * Vb);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutModelPath, TuningDbPath, OpsFilePath, DatasetPath;
  std::string OutDatasetPath, EvalModelPath, TargetSpec;
  std::string SpaceName = "default";
  unsigned Folds = 5;
  model::TrainConfig Train;
  model::DatasetBuildConfig Build;
  std::vector<std::string> Paths;

  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--out-model=", 12) == 0) {
      OutModelPath = Arg + 12;
    } else if (std::strncmp(Arg, "--tuning-db=", 12) == 0) {
      TuningDbPath = Arg + 12;
    } else if (std::strncmp(Arg, "--ops-file=", 11) == 0) {
      OpsFilePath = Arg + 11;
    } else if (std::strncmp(Arg, "--dataset=", 10) == 0) {
      DatasetPath = Arg + 10;
    } else if (std::strncmp(Arg, "--out-dataset=", 14) == 0) {
      OutDatasetPath = Arg + 14;
    } else if (std::strncmp(Arg, "--eval-model=", 13) == 0) {
      EvalModelPath = Arg + 13;
    } else if (std::strncmp(Arg, "--folds=", 8) == 0) {
      Folds = static_cast<unsigned>(std::strtoul(Arg + 8, nullptr, 10));
    } else if (std::strncmp(Arg, "--rounds=", 9) == 0) {
      Train.Rounds = static_cast<unsigned>(std::strtoul(Arg + 9, nullptr, 10));
    } else if (std::strncmp(Arg, "--shrinkage=", 12) == 0) {
      Train.Shrinkage = std::strtod(Arg + 12, nullptr);
      if (!(Train.Shrinkage > 0)) {
        std::fprintf(stderr, "error: --shrinkage needs a positive value\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--seed=", 7) == 0) {
      Train.Seed = std::strtoull(Arg + 7, nullptr, 10);
    } else if (std::strncmp(Arg, "--candidates=", 13) == 0) {
      Build.CandidatesPerKernel = std::strtoull(Arg + 13, nullptr, 10);
      if (Build.CandidatesPerKernel == 0) {
        std::fprintf(stderr, "error: --candidates needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Build.Jobs = static_cast<unsigned>(std::strtoul(Arg + 7, nullptr, 10));
      if (Build.Jobs == 0) {
        std::fprintf(stderr, "error: --jobs needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--tune-space=", 13) == 0) {
      SpaceName = Arg + 13;
    } else if (std::strncmp(Arg, "--target=", 9) == 0) {
      TargetSpec = Arg + 9;
    } else if (Arg[0] == '-') {
      printUsage(Argv[0]);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (!OpsFilePath.empty())
    for (std::string &P : readOpsFile(OpsFilePath))
      Paths.push_back(std::move(P));

  tune::SearchSpace Space = tune::searchSpaceByName(SpaceName);
  if (Space.empty()) {
    std::fprintf(stderr,
                 "error: unknown --tune-space '%s' (known: default, tiny)\n",
                 SpaceName.c_str());
    return 2;
  }

  // The backend target samples are scored under (see src/target/).
  PipelineOptions Base;
  if (!TargetSpec.empty()) {
    std::string Err;
    std::shared_ptr<target::TargetModel> T =
        target::resolveTarget(TargetSpec, &Err);
    if (!T) {
      std::fprintf(stderr, "error: --target: %s\n", Err.c_str());
      return 2;
    }
    if (const auto *G =
            dynamic_cast<const target::GpuAnalyticTarget *>(T.get()))
      Base.Gpu = G->model();
    Base.Target = std::move(T);
  }

  // Assemble the dataset: load, build, or both (loaded samples must
  // come from the same space shape — and the same backend target —
  // the kernels are sampled under).
  model::Dataset Data;
  if (!DatasetPath.empty()) {
    std::string Err;
    if (!model::loadDataset(DatasetPath, Data, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    if (Data.SpaceSignature != Space.signature() && !Paths.empty()) {
      std::fprintf(stderr,
                   "error: dataset %s was sampled under another search "
                   "space than --tune-space=%s\n",
                   DatasetPath.c_str(), SpaceName.c_str());
      return 1;
    }
    if (Data.TargetId != target::targetIdForOptions(Base)) {
      std::fprintf(stderr,
                   "error: dataset %s was scored under target %s, not "
                   "the requested %s — its times describe a different "
                   "cost function\n",
                   DatasetPath.c_str(), Data.TargetId.c_str(),
                   target::targetIdForOptions(Base).c_str());
      return 1;
    }
  }
  if (!Paths.empty()) {
    std::unique_ptr<tune::TuningDb> Db;
    if (!TuningDbPath.empty())
      Db = std::make_unique<tune::TuningDb>(TuningDbPath);
    for (const std::string &P : Paths) {
      Kernel K = loadKernelOrDie(P);
      std::size_t N =
          model::appendSamples(Data, K, Base, Space, Db.get(), Build);
      std::printf("sampled %-28s %zu candidates\n", K.Name.c_str(), N);
    }
  }
  if (Data.Samples.empty()) {
    std::fprintf(stderr, "error: no training samples (give kernel files, "
                         "--ops-file or --dataset)\n");
    return 2;
  }
  if (!OutDatasetPath.empty()) {
    std::string Err;
    if (!model::saveDataset(Data, OutDatasetPath, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("dataset  %s (%zu samples)\n", OutDatasetPath.c_str(),
                Data.Samples.size());
  }

  std::vector<model::FeatureVector> X;
  std::vector<double> Y;
  X.reserve(Data.Samples.size());
  Y.reserve(Data.Samples.size());
  for (const model::Sample &S : Data.Samples) {
    X.push_back(S.X);
    Y.push_back(model::regressionTarget(S.TimeUs));
  }

  // Probe mode: print one prediction per sample and stop. The
  // train-roundtrip test diffs this output between a fresh and a
  // reloaded model.
  if (!EvalModelPath.empty()) {
    model::GbStumpsModel M;
    std::string Err;
    if (!model::loadModel(EvalModelPath, M, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    for (const model::FeatureVector &V : X)
      std::printf("%.17g\n", M.predict(V));
    return 0;
  }

  if (OutModelPath.empty()) {
    std::fprintf(stderr, "error: --out-model is required (or --eval-model "
                         "for prediction probes)\n");
    return 2;
  }

  // Held-out report: deterministic round-robin folds, so the numbers
  // are comparable across runs and machines.
  if (Folds >= 2 && Data.Samples.size() >= Folds) {
    double MaeSum = 0, RhoSum = 0;
    for (unsigned F = 0; F < Folds; ++F) {
      std::vector<model::FeatureVector> TrainX;
      std::vector<double> TrainY, HeldY, HeldPred;
      std::vector<model::FeatureVector> HeldX;
      for (std::size_t I = 0; I < X.size(); ++I) {
        if (I % Folds == F) {
          HeldX.push_back(X[I]);
          HeldY.push_back(Y[I]);
        } else {
          TrainX.push_back(X[I]);
          TrainY.push_back(Y[I]);
        }
      }
      model::GbStumpsModel M = model::trainGbStumps(TrainX, TrainY, Train);
      double Mae = 0;
      for (std::size_t I = 0; I < HeldX.size(); ++I) {
        HeldPred.push_back(M.predict(HeldX[I]));
        Mae += std::abs(HeldPred.back() - HeldY[I]);
      }
      Mae /= double(HeldX.size());
      double Rho = spearman(HeldPred, HeldY);
      MaeSum += Mae;
      RhoSum += Rho;
      std::printf("fold %u/%u: held-out MAE %.4f (log2 us), rank corr "
                  "%.4f (%zu samples)\n",
                  F + 1, Folds, Mae, Rho, HeldX.size());
    }
    std::printf("cv mean: held-out MAE %.4f (log2 us), rank corr %.4f\n",
                MaeSum / Folds, RhoSum / Folds);
  }

  model::GbStumpsModel Final = model::trainGbStumps(X, Y, Train);
  std::string Err;
  if (!model::saveModel(Final, OutModelPath, &Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  double TrainMae = 0;
  for (std::size_t I = 0; I < X.size(); ++I)
    TrainMae += std::abs(Final.predict(X[I]) - Y[I]);
  TrainMae /= double(X.size());
  std::printf("model    %s (%zu stumps, train MAE %.4f log2 us, "
              "%zu samples, schema %s)\n",
              OutModelPath.c_str(), Final.Stumps.size(), TrainMae,
              X.size(), Final.SchemaHash.c_str());
  return 0;
}
