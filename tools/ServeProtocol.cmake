# Scripted JSONL session against polyinject-serve: mixed cache
# hits/misses, an expired deadline, a malformed line, an unknown op and
# a clean shutdown. Run twice (fresh cache directories) in --sync mode;
# the response bytes must match exactly, every expected status must
# appear, and both drains must exit 0.
#
# Variables: -DTOOL=<polyinject-serve> -DKERNELS=<tools/kernels dir>
#            -DWORK=<scratch dir>

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

set(RUNNING "${KERNELS}/running_example.pinj")
set(TRANSPOSE "${KERNELS}/transpose.pinj")

# The session: ping, a cold compile (miss), the same kernel again (hit),
# an already-expired deadline (shed), a malformed line, a bad op, a
# second kernel, stats, shutdown.
file(WRITE "${WORK}/session.jsonl"
"{\"id\":\"p1\",\"op\":\"ping\"}
{\"id\":\"k1\",\"kernel_file\":\"${RUNNING}\"}
{\"id\":\"k2\",\"kernel_file\":\"${RUNNING}\"}
{\"id\":\"k3\",\"kernel_file\":\"${RUNNING}\",\"deadline_ms\":0}
this line is not json
{\"id\":\"k4\",\"op\":\"frobnicate\"}
{\"id\":\"k5\",\"kernel_file\":\"${TRANSPOSE}\"}
{\"id\":\"s1\",\"op\":\"stats\"}
{\"id\":\"q1\",\"op\":\"shutdown\"}
")

foreach(RUN 1 2)
  execute_process(
    COMMAND ${TOOL} --sync --workers=1
            --cache-dir=${WORK}/cache${RUN}
    INPUT_FILE "${WORK}/session.jsonl"
    OUTPUT_FILE "${WORK}/out${RUN}.jsonl"
    ERROR_FILE "${WORK}/err${RUN}.txt"
    RESULT_VARIABLE RC)
  if(NOT RC EQUAL 0)
    file(READ "${WORK}/err${RUN}.txt" ERR)
    message(FATAL_ERROR "serve run ${RUN} failed (exit ${RC}):\n${ERR}")
  endif()
endforeach()

file(READ "${WORK}/out1.jsonl" OUT1)
file(READ "${WORK}/out2.jsonl" OUT2)

if(NOT OUT1 STREQUAL OUT2)
  message(FATAL_ERROR
    "serve responses are not byte-stable across runs:\n"
    "--- run 1 ---\n${OUT1}\n--- run 2 ---\n${OUT2}")
endif()

# One response line per request line.
string(REGEX MATCHALL "\n" RESPONSE_NEWLINES "${OUT1}")
list(LENGTH RESPONSE_NEWLINES RESPONSE_COUNT)
if(NOT RESPONSE_COUNT EQUAL 9)
  message(FATAL_ERROR
    "expected 9 response lines, got ${RESPONSE_COUNT}:\n${OUT1}")
endif()

# Each request reached its expected terminal status.
foreach(PATTERN
    "\"id\":\"p1\".*\"status\":\"pong\""
    "\"id\":\"k1\".*\"status\":\"ok\".*\"cache\":\"miss\""
    "\"id\":\"k2\".*\"status\":\"ok\".*\"cache\":\"hit\""
    "\"id\":\"k3\".*\"status\":\"shed\".*\"reason\":\"deadline_expired\".*\"retry_after_ms\":[1-9]"
    "\"line\":5,\"status\":\"error\".*malformed"
    "\"id\":\"k4\".*\"status\":\"error\".*unknown op"
    "\"id\":\"k5\".*\"status\":\"ok\""
    "\"id\":\"s1\".*\"status\":\"stats\".*\"admitted\":3"
    "\"id\":\"q1\".*\"status\":\"bye\"")
  if(NOT OUT1 MATCHES "${PATTERN}")
    message(FATAL_ERROR
      "response missing expected pattern '${PATTERN}':\n${OUT1}")
  endif()
endforeach()

message(STATUS "serve protocol: 9 byte-stable responses, clean drain")
