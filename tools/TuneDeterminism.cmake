# Runs polyinject-opt in batch mode over the operator corpus with
# autotuning enabled, once with one worker and once with eight, and
# fails unless stdout is byte-identical — the autotuner's determinism
# guarantee (analytic scores, fixed candidate order, lexicographic
# tie-breaks, per-candidate budgets measured in work units rather than
# wall-clock), on top of the batch compiler's own ordering guarantee.
#
# A third run replays the first run's tuning database and must print
# the same per-operator tuned= decisions.
#
# Expected -D variables: TOOL (polyinject-opt path), OPS (corpus.txt),
# TUNE_DB (scratch database file path).

foreach(_var TOOL OPS TUNE_DB)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "TuneDeterminism.cmake needs -D${_var}=...")
  endif()
endforeach()

file(REMOVE ${TUNE_DB})

set(_flags --autotune=exhaustive --tune-space=tiny --tune-budget=16
    --config=infl --print=sim)

execute_process(COMMAND ${TOOL} --jobs=1 --tuning-db=${TUNE_DB}
                        ${_flags} --ops-file=${OPS}
                OUTPUT_VARIABLE _serial
                ERROR_VARIABLE _serial_err
                RESULT_VARIABLE _serial_rc)
if(NOT _serial_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=1 tuned batch failed (${_serial_rc}):\n"
                      "${_serial_err}")
endif()

# The second run must not see the first run's database: searching and
# replaying are different code paths, and this test pins the search.
file(REMOVE ${TUNE_DB}.jobs8)
execute_process(COMMAND ${TOOL} --jobs=8 --tuning-db=${TUNE_DB}.jobs8
                        ${_flags} --ops-file=${OPS}
                OUTPUT_VARIABLE _parallel
                ERROR_VARIABLE _parallel_err
                RESULT_VARIABLE _parallel_rc)
if(NOT _parallel_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=8 tuned batch failed (${_parallel_rc}):\n"
                      "${_parallel_err}")
endif()

if(NOT _serial STREQUAL _parallel)
  message(FATAL_ERROR
          "tuned batch output differs between --jobs=1 and --jobs=8")
endif()

# Warm replay over the jobs=1 database: byte-identical stdout again
# (tuned= lines show only the chosen encoding, which the database must
# reproduce exactly).
execute_process(COMMAND ${TOOL} --jobs=8 --tuning-db=${TUNE_DB}
                        ${_flags} --ops-file=${OPS}
                OUTPUT_VARIABLE _warm
                ERROR_VARIABLE _warm_err
                RESULT_VARIABLE _warm_rc)
if(NOT _warm_rc EQUAL 0)
  message(FATAL_ERROR "warm tuned batch failed (${_warm_rc}):\n"
                      "${_warm_err}")
endif()
if(NOT _serial STREQUAL _warm)
  message(FATAL_ERROR "warm tuning-db replay changed batch output")
endif()

string(LENGTH "${_serial}" _len)
if(_len EQUAL 0)
  message(FATAL_ERROR "tuned batch produced no output")
endif()
string(FIND "${_serial}" " tuned=" _tuned_at)
if(_tuned_at EQUAL -1)
  message(FATAL_ERROR "tuned batch output carries no tuned= summaries")
endif()
message(STATUS "tuned batch output byte-identical for jobs=1, jobs=8 "
               "and warm replay (${_len} bytes)")
