# Cold/warm cache smoke for polyinject-opt batch mode: compiles the
# corpus twice against the same --cache-dir. The first (cold) run must
# report zero hits, the second (warm) run a hit for every operator, and
# both runs must agree on every schedule and simulated time (the cache
# section of stdout aside, the bytes are identical).
#
# Expected -D variables: TOOL, OPS, CACHE_DIR.

foreach(_var TOOL OPS CACHE_DIR)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "CacheRoundtrip.cmake needs -D${_var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${CACHE_DIR})

foreach(_run cold warm)
  execute_process(COMMAND ${TOOL} --cache-dir=${CACHE_DIR}
                          --ops-file=${OPS}
                  OUTPUT_VARIABLE _${_run}
                  ERROR_VARIABLE _err
                  RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "${_run} batch failed (${_rc}):\n${_err}")
  endif()
endforeach()

if(NOT _cold MATCHES "batch summary: ([0-9]+) operators.*, 0 cache hits")
  message(FATAL_ERROR "cold run reported unexpected hits:\n${_cold}")
endif()
set(_total ${CMAKE_MATCH_1})

if(NOT _warm MATCHES "batch summary: .*, ${_total} cache hits")
  message(FATAL_ERROR
          "warm run did not hit for all ${_total} operators:\n${_warm}")
endif()

# Hits must replay byte-identical compilations: outside the per-operator
# cache annotations, the two outputs agree exactly.
foreach(_run cold warm)
  string(REGEX REPLACE " cache=(hit|miss)" "" _${_run}_norm "${_${_run}}")
  string(REGEX REPLACE ", [0-9]+ cache hits" "" _${_run}_norm
         "${_${_run}_norm}")
endforeach()
if(NOT _cold_norm STREQUAL _warm_norm)
  message(FATAL_ERROR "warm batch output differs from cold beyond the "
                      "cache annotations")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})
message(STATUS "cache round trip: ${_total} operators, warm run hit all")
