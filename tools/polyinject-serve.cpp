//===- tools/polyinject-serve.cpp - Compilation daemon CLI ----------------===//
//
// The persistent compilation service (service/Daemon.h) on stdin/stdout:
// one JSON request per input line, one JSON response per request.
//
// Usage:
//   polyinject-serve [options]
//     --workers=N              worker threads (default 2)
//     --queue-cap=N            admission queue capacity (default 64)
//     --retry-hint-ms=X        base backoff unit for shed responses
//     --cache-dir=PATH         persistent schedule cache directory
//     --cache-capacity=N       in-memory cache entries (default 256)
//     --cache-stripes=N        in-memory cache shards (default 8)
//     --memory-cap-mb=X        in-memory cache byte cap (0 = unlimited)
//     --tuning-db=FILE         tuning DB to sweep at startup
//     --drain-deadline-ms=X    graceful-drain wait (default 5000)
//     --max-pivots=N           base per-request pivot cap
//     --max-nodes=N            base per-request branch-and-bound cap
//     --deadline-ms=X          base per-request wall budget (requests
//                              with their own deadline_ms tighten it)
//     --sync                   process each line to its terminal
//                              response before reading the next
//                              (deterministic responses; protocol test)
//     --timing                 include wall_us in ok responses
//     --journal=FILE           structured event journal (JSONL)
//     --gpu=PRESET             GPU model preset (v100, a100, p100)
//     --target=NAME|FILE.ptgt  backend target: built-in name (v100,
//                              a100, p100, cpu-simd) or a calibrated
//                              .ptgt file; for GPU presets identical
//                              to --gpu
//     --chaos=SEED             run the chaos harness instead of serving
//     --chaos-requests=N       chaos request count (default 200)
//
// Request lines:
//   {"id":"k1","kernel_file":"ops/bias.pinj","deadline_ms":250}
//   {"id":"k2","kernel":"kernel ew\ntensor A 8 8\n..."}
//   {"id":"p1","op":"ping"} | {"op":"stats"} | {"op":"shutdown"}
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests finish
// under the drain deadline, everything queued sheds with `draining`,
// and the exit code reports whether the drain was clean.
//
//===----------------------------------------------------------------------===//

#include "gpusim/GpuModel.h"
#include "obs/Journal.h"
#include "service/Daemon.h"
#include "target/GpuAnalyticTarget.h"
#include "target/Target.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace pinj;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workers=N] [--queue-cap=N] [--retry-hint-ms=X] "
      "[--cache-dir=PATH] [--cache-capacity=N] [--cache-stripes=N] "
      "[--memory-cap-mb=X] [--tuning-db=FILE] [--drain-deadline-ms=X] "
      "[--max-pivots=N] [--max-nodes=N] [--deadline-ms=X] [--sync] "
      "[--timing] [--journal=FILE] [--gpu=PRESET] "
      "[--target=NAME|FILE.ptgt] [--chaos=SEED] "
      "[--chaos-requests=N]\n",
      Argv0);
}

void onSignal(int) { service::Daemon::requestStop(); }

} // namespace

int main(int Argc, char **Argv) {
  service::DaemonConfig Cfg;
  Cfg.Cache.Stripes = 8;
  std::string JournalPath;
  bool Chaos = false;
  std::uint64_t ChaosSeed = 0;
  std::size_t ChaosRequests = 200;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--workers=", 10) == 0) {
      Cfg.Workers = std::strtoul(Arg + 10, nullptr, 10);
    } else if (std::strncmp(Arg, "--queue-cap=", 12) == 0) {
      Cfg.Admission.QueueCapacity = std::strtoul(Arg + 12, nullptr, 10);
    } else if (std::strncmp(Arg, "--retry-hint-ms=", 16) == 0) {
      Cfg.Admission.RetryHintMs = std::strtod(Arg + 16, nullptr);
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      Cfg.Cache.DiskDir = Arg + 12;
    } else if (std::strncmp(Arg, "--cache-capacity=", 17) == 0) {
      Cfg.Cache.Capacity = std::strtoul(Arg + 17, nullptr, 10);
    } else if (std::strncmp(Arg, "--cache-stripes=", 16) == 0) {
      Cfg.Cache.Stripes = std::strtoul(Arg + 16, nullptr, 10);
    } else if (std::strncmp(Arg, "--memory-cap-mb=", 16) == 0) {
      Cfg.Cache.MemoryCapBytes = static_cast<std::size_t>(
          std::strtod(Arg + 16, nullptr) * 1024.0 * 1024.0);
    } else if (std::strncmp(Arg, "--tuning-db=", 12) == 0) {
      Cfg.TuningDbPath = Arg + 12;
    } else if (std::strncmp(Arg, "--drain-deadline-ms=", 20) == 0) {
      Cfg.DrainDeadlineMs = std::strtod(Arg + 20, nullptr);
    } else if (std::strncmp(Arg, "--max-pivots=", 13) == 0) {
      Cfg.Admission.BaseBudget.MaxPivots =
          std::strtoull(Arg + 13, nullptr, 10);
    } else if (std::strncmp(Arg, "--max-nodes=", 12) == 0) {
      Cfg.Admission.BaseBudget.MaxIlpNodes =
          std::strtoull(Arg + 12, nullptr, 10);
    } else if (std::strncmp(Arg, "--deadline-ms=", 14) == 0) {
      Cfg.Admission.BaseBudget.WallMs = std::strtod(Arg + 14, nullptr);
    } else if (std::strcmp(Arg, "--sync") == 0) {
      Cfg.Sync = true;
    } else if (std::strcmp(Arg, "--timing") == 0) {
      Cfg.TimingInResponses = true;
    } else if (std::strncmp(Arg, "--journal=", 10) == 0) {
      JournalPath = Arg + 10;
    } else if (std::strncmp(Arg, "--gpu=", 6) == 0 ||
               std::strncmp(Arg, "--target=", 9) == 0) {
      // Both spellings resolve through the target registry; --gpu is
      // the historical name for GPU presets.
      bool FromTarget = Arg[2] == 't';
      const char *Spec = Arg + (FromTarget ? 9 : 6);
      std::string Err;
      std::shared_ptr<target::TargetModel> T =
          target::resolveTarget(Spec, &Err);
      if (!T) {
        std::fprintf(stderr, "error: %s: %s\n",
                     FromTarget ? "--target" : "--gpu", Err.c_str());
        return 1;
      }
      if (const auto *G =
              dynamic_cast<const target::GpuAnalyticTarget *>(T.get()))
        Cfg.Pipeline.Gpu = G->model();
      Cfg.Pipeline.Target = std::move(T);
    } else if (std::strncmp(Arg, "--chaos=", 8) == 0) {
      Chaos = true;
      ChaosSeed = std::strtoull(Arg + 8, nullptr, 10);
    } else if (std::strncmp(Arg, "--chaos-requests=", 17) == 0) {
      ChaosRequests = std::strtoul(Arg + 17, nullptr, 10);
    } else {
      printUsage(Argv[0]);
      return 1;
    }
  }

  if (!JournalPath.empty()) {
    std::string Error;
    obs::journal().enable();
    if (!obs::journal().openFile(JournalPath, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }

  if (Chaos) {
    service::ChaosReport R =
        service::runChaos(Cfg, ChaosSeed, ChaosRequests);
    std::printf("chaos: seed %llu, %zu submitted, %zu responses "
                "(%zu ok, %zu shed, %zu error, %zu other)\n",
                static_cast<unsigned long long>(ChaosSeed), R.Submitted,
                R.Responses, R.Ok, R.Shed, R.Errors, R.Other);
    for (const std::string &V : R.Violations)
      std::printf("chaos violation: %s\n", V.c_str());
    if (!JournalPath.empty())
      obs::journal().closeFile();
    if (!R.invariantHolds()) {
      std::printf("chaos: INVARIANT VIOLATED\n");
      return 1;
    }
    std::printf("chaos: invariant held (one terminal response per "
                "request)\n");
    return 0;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  service::Daemon D(Cfg);
  const service::RecoveryReport &Rec = D.recovery();
  if (Rec.Cache.Scanned || Rec.TuningDbRejects)
    std::fprintf(stderr,
                 "recovery: %zu cache entries scanned, %zu kept, "
                 "%zu quarantined; tuning db rejects %llu\n",
                 Rec.Cache.Scanned, Rec.Cache.Kept, Rec.Cache.Quarantined,
                 static_cast<unsigned long long>(Rec.TuningDbRejects));

  int Exit = D.serve(std::cin, std::cout);

  service::DaemonStats S = D.stats();
  std::fprintf(stderr,
               "served: %llu submitted, %llu admitted, %llu completed, "
               "%llu shed (%llu expired, %llu queue_full, %llu draining), "
               "%llu parse errors, %llu responses, drain %s\n",
               static_cast<unsigned long long>(S.Submitted),
               static_cast<unsigned long long>(S.Admitted),
               static_cast<unsigned long long>(S.Completed),
               static_cast<unsigned long long>(S.shedTotal()),
               static_cast<unsigned long long>(S.ShedExpired),
               static_cast<unsigned long long>(S.ShedQueueFull),
               static_cast<unsigned long long>(S.ShedDraining),
               static_cast<unsigned long long>(S.ParseErrors),
               static_cast<unsigned long long>(S.Responses),
               D.cleanDrain() ? "clean" : "timed out");
  if (!JournalPath.empty())
    obs::journal().closeFile();
  return Exit;
}
