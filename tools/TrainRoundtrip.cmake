# Exercises the offline trainer end to end on a synthetic tuning
# database:
#
#   1. polyinject-opt autotunes three kernels into a fresh tuning db
#      (the "history" the trainer replays).
#   2. polyinject-train builds a dataset from those kernels + db and
#      trains model A.
#   3. A second training run from the *saved dataset* must produce a
#      byte-identical model file B (training is deterministic and the
#      dataset round-trips %.17g exactly).
#   4. Prediction probes (--eval-model) of A and B over the dataset
#      must match byte for byte — reload changes nothing.
#   5. A copy of A with its feature-schema hash corrupted must be
#      rejected (non-zero exit): stale models never predict.
#
# Expected -D variables: TRAIN (polyinject-train path), OPT
# (polyinject-opt path), KERNELS (corpus dir), WORK (scratch dir).

foreach(_var TRAIN OPT KERNELS WORK)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "TrainRoundtrip.cmake needs -D${_var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

set(_ops
    ${KERNELS}/running_example.pinj
    ${KERNELS}/hostile_copy_a.pinj
    ${KERNELS}/reduce_tail_a.pinj)

# 1. Synthetic tuning history.
execute_process(COMMAND ${OPT} --autotune=exhaustive --tune-space=tiny
                        --tuning-db=${WORK}/tune.db --config=infl
                        --print=sim ${_ops}
                OUTPUT_QUIET ERROR_VARIABLE _seed_err
                RESULT_VARIABLE _seed_rc)
if(NOT _seed_rc EQUAL 0)
  message(FATAL_ERROR "seeding tuning db failed (${_seed_rc}):\n${_seed_err}")
endif()

# 2. Build dataset + train model A.
execute_process(COMMAND ${TRAIN} --tune-space=tiny --candidates=4
                        --rounds=64 --folds=3
                        --tuning-db=${WORK}/tune.db
                        --out-dataset=${WORK}/train.pds
                        --out-model=${WORK}/model_a.pgbm ${_ops}
                OUTPUT_VARIABLE _train_a ERROR_VARIABLE _train_a_err
                RESULT_VARIABLE _train_a_rc)
if(NOT _train_a_rc EQUAL 0)
  message(FATAL_ERROR "training run A failed (${_train_a_rc}):\n"
                      "${_train_a_err}")
endif()

# 3. Retrain from the saved dataset: byte-identical model.
execute_process(COMMAND ${TRAIN} --tune-space=tiny --rounds=64 --folds=0
                        --dataset=${WORK}/train.pds
                        --out-model=${WORK}/model_b.pgbm
                OUTPUT_QUIET ERROR_VARIABLE _train_b_err
                RESULT_VARIABLE _train_b_rc)
if(NOT _train_b_rc EQUAL 0)
  message(FATAL_ERROR "training run B failed (${_train_b_rc}):\n"
                      "${_train_b_err}")
endif()

file(READ ${WORK}/model_a.pgbm _model_a)
file(READ ${WORK}/model_b.pgbm _model_b)
if(NOT _model_a STREQUAL _model_b)
  message(FATAL_ERROR "retraining from the saved dataset changed the model")
endif()

# 4. Prediction probes agree between the fresh and reloaded model.
execute_process(COMMAND ${TRAIN} --eval-model=${WORK}/model_a.pgbm
                        --dataset=${WORK}/train.pds
                OUTPUT_VARIABLE _pred_a ERROR_VARIABLE _pred_a_err
                RESULT_VARIABLE _pred_a_rc)
execute_process(COMMAND ${TRAIN} --eval-model=${WORK}/model_b.pgbm
                        --dataset=${WORK}/train.pds
                OUTPUT_VARIABLE _pred_b ERROR_VARIABLE _pred_b_err
                RESULT_VARIABLE _pred_b_rc)
if(NOT _pred_a_rc EQUAL 0 OR NOT _pred_b_rc EQUAL 0)
  message(FATAL_ERROR "prediction probe failed:\n${_pred_a_err}"
                      "${_pred_b_err}")
endif()
if(_pred_a STREQUAL "")
  message(FATAL_ERROR "prediction probe printed nothing")
endif()
if(NOT _pred_a STREQUAL _pred_b)
  message(FATAL_ERROR "reloaded model predicts differently")
endif()

# 5. A stale feature schema must be rejected, not predicted with.
file(READ ${WORK}/model_a.pgbm _model_text)
string(REGEX REPLACE "schema [0-9a-f]+"
       "schema 00000000000000000000000000000000" _stale "${_model_text}")
file(WRITE ${WORK}/model_stale.pgbm "${_stale}")
execute_process(COMMAND ${TRAIN} --eval-model=${WORK}/model_stale.pgbm
                        --dataset=${WORK}/train.pds
                OUTPUT_QUIET ERROR_VARIABLE _stale_err
                RESULT_VARIABLE _stale_rc)
if(_stale_rc EQUAL 0)
  message(FATAL_ERROR "stale-schema model was accepted")
endif()
if(NOT _stale_err MATCHES "schema")
  message(FATAL_ERROR "stale-schema rejection lacks a diagnostic:\n"
                      "${_stale_err}")
endif()

message(STATUS "train roundtrip OK")
