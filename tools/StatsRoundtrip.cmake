# Runs polyinject-opt twice over the operator corpus with the full
# observability surface enabled (journal, Chrome trace, metrics sidecar,
# exposition file), then validates the artifacts with polyinject-stats:
#
#   1. --check-schema over run A's journal cross-checked against the
#      sidecar, the trace and the exposition file — the request id that
#      runOperator allocates must appear consistently in all three.
#   2. --diff of run A against run B must exit 0: two identical runs
#      never report a stage-time regression.
#
# Expected -D variables: TOOL (polyinject-opt path), STATS
# (polyinject-stats path), OPS (corpus.txt), WORK (scratch directory).

foreach(_var TOOL STATS OPS WORK)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "StatsRoundtrip.cmake needs -D${_var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY ${WORK})

foreach(_run a b)
  execute_process(COMMAND ${TOOL} --jobs=4 --ops-file=${OPS}
                          --journal=${WORK}/journal_${_run}.jsonl
                          --trace-json=${WORK}/trace_${_run}.json
                          --metrics-json=${WORK}/report_${_run}.json
                          --metrics-exposition=${WORK}/metrics_${_run}.prom
                  OUTPUT_VARIABLE _out
                  ERROR_VARIABLE _err
                  RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "corpus run ${_run} failed (${_rc}):\n${_err}")
  endif()
endforeach()

execute_process(COMMAND ${STATS} --check-schema
                        --report=${WORK}/report_a.json
                        --trace=${WORK}/trace_a.json
                        --exposition=${WORK}/metrics_a.prom
                        ${WORK}/journal_a.jsonl
                OUTPUT_VARIABLE _schema_out
                ERROR_VARIABLE _schema_err
                RESULT_VARIABLE _schema_rc)
if(NOT _schema_rc EQUAL 0)
  message(FATAL_ERROR "schema check failed (${_schema_rc}):\n"
                      "${_schema_out}\n${_schema_err}")
endif()

# The summary must actually cover the corpus: stage latency lines and a
# request count are the load-bearing parts of the report.
if(NOT _schema_out MATCHES "stage latency")
  message(FATAL_ERROR "stats summary missing stage latency:\n"
                      "${_schema_out}")
endif()

# Two runs of the same corpus are identical in every deterministic
# quantity; stage wall times carry scheduler/machine noise, so the
# identical-run check uses thresholds only a hang-level regression could
# cross. The default thresholds are exercised below on synthetic
# journals where the times are controlled.
execute_process(COMMAND ${STATS} --diff ${WORK}/journal_a.jsonl
                        ${WORK}/journal_b.jsonl
                        --threshold-pct=1000 --min-regress-us=10000000
                OUTPUT_VARIABLE _diff_out
                ERROR_VARIABLE _diff_err
                RESULT_VARIABLE _diff_rc)
if(NOT _diff_rc EQUAL 0)
  message(FATAL_ERROR "identical-run diff reported a regression "
                      "(${_diff_rc}):\n${_diff_out}\n${_diff_err}")
endif()

# Synthetic pair with a controlled 50x isl regression: the default
# thresholds must catch it and exit non-zero.
file(WRITE ${WORK}/base.jsonl
"{\"ts_us\":1,\"request_id\":\"r0-0\",\"type\":\"request_start\",\"operator\":\"op\"}
{\"ts_us\":2,\"request_id\":\"r0-0\",\"type\":\"stage_end\",\"stage\":\"isl\",\"dur_us\":2000}
{\"ts_us\":3,\"request_id\":\"r0-0\",\"type\":\"request_end\",\"operator\":\"op\",\"dur_us\":3}
")
file(WRITE ${WORK}/regressed.jsonl
"{\"ts_us\":1,\"request_id\":\"r1-0\",\"type\":\"request_start\",\"operator\":\"op\"}
{\"ts_us\":2,\"request_id\":\"r1-0\",\"type\":\"stage_end\",\"stage\":\"isl\",\"dur_us\":100000}
{\"ts_us\":3,\"request_id\":\"r1-0\",\"type\":\"request_end\",\"operator\":\"op\",\"dur_us\":3}
")
execute_process(COMMAND ${STATS} --diff ${WORK}/base.jsonl
                        ${WORK}/regressed.jsonl
                OUTPUT_VARIABLE _reg_out
                ERROR_VARIABLE _reg_err
                RESULT_VARIABLE _reg_rc)
if(_reg_rc EQUAL 0)
  message(FATAL_ERROR "synthetic 50x regression not detected:\n"
                      "${_reg_out}")
endif()

# The exposition file must carry fleet-prefixed samples.
file(READ ${WORK}/metrics_a.prom _prom)
if(NOT _prom MATCHES "pinj_")
  message(FATAL_ERROR "exposition file carries no pinj_ samples")
endif()

message(STATUS "stats roundtrip ok: schema clean, identical-run diff "
               "clean, exposition populated")
