# Runs polyinject-opt in batch mode over the operator corpus with one
# worker and with eight, and fails unless stdout is byte-identical —
# the compilation service's determinism guarantee (reports merged by
# submission index, all nondeterministic output routed to stderr).
#
# Expected -D variables: TOOL (polyinject-opt path), OPS (corpus.txt).

foreach(_var TOOL OPS)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "BatchDeterminism.cmake needs -D${_var}=...")
  endif()
endforeach()

execute_process(COMMAND ${TOOL} --jobs=1 --ops-file=${OPS}
                OUTPUT_VARIABLE _serial
                ERROR_VARIABLE _serial_err
                RESULT_VARIABLE _serial_rc)
if(NOT _serial_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=1 batch failed (${_serial_rc}):\n"
                      "${_serial_err}")
endif()

execute_process(COMMAND ${TOOL} --jobs=8 --ops-file=${OPS}
                OUTPUT_VARIABLE _parallel
                ERROR_VARIABLE _parallel_err
                RESULT_VARIABLE _parallel_rc)
if(NOT _parallel_rc EQUAL 0)
  message(FATAL_ERROR "--jobs=8 batch failed (${_parallel_rc}):\n"
                      "${_parallel_err}")
endif()

if(NOT _serial STREQUAL _parallel)
  message(FATAL_ERROR
          "batch output differs between --jobs=1 and --jobs=8")
endif()

string(LENGTH "${_serial}" _len)
if(_len EQUAL 0)
  message(FATAL_ERROR "batch produced no output")
endif()
message(STATUS "batch output byte-identical for jobs=1 and jobs=8 "
               "(${_len} bytes)")
