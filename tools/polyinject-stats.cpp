//===- tools/polyinject-stats.cpp - Offline journal/metrics analyzer ------===//
//
// Aggregates the observability artifacts one or more polyinject-opt runs
// leave behind — the structured event journal (--journal), the metrics
// sidecar (--metrics-json) and the Chrome trace (--trace-json) — into a
// fleet-style summary, validates their schema, and diffs two runs for
// stage-time regressions with a CI-friendly exit code.
//
// Usage:
//   polyinject-stats [options] journal.jsonl [more.jsonl ...]
//   polyinject-stats --diff A.jsonl B.jsonl [options]
//
//     --report=FILE        cross-check request ids against the metrics
//                          sidecar and fold its per-operator flags in
//     --trace=FILE         cross-check request ids against a Chrome
//                          trace-event file
//     --exposition=FILE    validate a Prometheus exposition file
//                          (--metrics-exposition output)
//     --check-schema       exit 1 on any schema violation (malformed
//                          record, missing field, unpaired request,
//                          id mismatch across artifacts)
//     --diff A B           compare run B against baseline A; exit 1
//                          when a stage regresses past both thresholds
//     --threshold-pct=N    relative stage-time regression threshold
//                          (default 10)
//     --min-regress-us=X   absolute stage-time regression floor
//                          (default 1000); both must be exceeded
//
// The summary reports per-stage latency percentiles (p50/p90/p99 from
// the journal's stage_end events, estimated with the same quarter-octave
// histogram scheme the process metrics use), cache and tuning hit rates,
// surrogate-search activity (the cost model's "surrogate" events, with
// candidates-ranked and evaluations-saved totals — the journal-side view
// of the model.predictions / tune.surrogate_evals_saved counters),
// degradation causes, daemon admission-control activity (admit/shed/
// drain/quarantine events from polyinject-serve, with shed reasons and
// the positive-retry_after_ms contract validated), and branch-and-bound
// effort grouped by operator family (operator name with trailing
// size/variant tokens stripped).
//
// Two identical runs always diff clean: journal timestamps differ, but
// every compared quantity is either a deterministic counter (exact
// compare, reported but never fatal) or a wall-clock stage time guarded
// by both thresholds.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace pinj;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--report=FILE] [--trace=FILE] "
               "[--exposition=FILE] [--check-schema] journal.jsonl "
               "[more.jsonl ...]\n"
               "       %s --diff A.jsonl B.jsonl [--threshold-pct=N] "
               "[--min-regress-us=X]\n",
               Argv0, Argv0);
}

/// Branch-and-bound effort accumulated for one operator family.
struct FamilyEffort {
  std::uint64_t Solves = 0;
  std::uint64_t Nodes = 0;
  std::uint64_t Pivots = 0;
  std::uint64_t MaxDepth = 0;
};

/// Everything the analyzer extracts from one or more journals.
struct JournalStats {
  std::size_t Records = 0;
  std::size_t Requests = 0;
  std::size_t CacheLookups = 0;
  std::size_t CacheHits = 0;
  std::size_t CacheStores = 0;
  std::size_t TuningEvents = 0;
  std::size_t TuningApplied = 0;
  std::size_t Degradations = 0;

  // Surrogate-guided searches (tune/Strategy.cpp "surrogate" events).
  std::size_t SurrogateSearches = 0;
  std::size_t SurrogateFound = 0;
  std::uint64_t SurrogateCandidates = 0;
  std::uint64_t SurrogateEvalsSaved = 0;

  // Daemon admission-control events (service/Daemon.h).
  std::size_t Admits = 0;
  std::size_t Sheds = 0;
  std::size_t Drains = 0;
  std::size_t Quarantines = 0;
  /// Shed reason ("deadline_expired", ...) -> occurrences.
  std::map<std::string, std::size_t> ShedReasons;

  /// All request ids seen on any record.
  std::set<std::string> Ids;
  /// request_start / request_end occurrences per id (pairing check).
  std::map<std::string, std::size_t> Starts;
  std::map<std::string, std::size_t> Ends;
  /// Request id -> operator name, from request_start.
  std::map<std::string, std::string> Operator;

  /// Per-stage wall time: histogram (percentiles) + exact total.
  std::map<std::string, obs::Histogram> StageDur;
  std::map<std::string, double> StageTotalUs;

  /// "config code at site" -> occurrences.
  std::map<std::string, std::size_t> DegradationCauses;
  /// Operator family -> accumulated solver effort.
  std::map<std::string, FamilyEffort> Families;

  /// Schema violations found while loading, "<file>:<line>: <what>".
  std::vector<std::string> SchemaErrors;
};

/// The operator family: the name with trailing size/variant tokens
/// (all-digit or single-character '_'-separated segments) stripped, so
/// "softmax_like_b" and "softmax_like_a" aggregate together while
/// "bias_relu" stays itself.
std::string operatorFamily(const std::string &Name) {
  std::vector<std::string> Tokens;
  std::stringstream In(Name);
  std::string T;
  while (std::getline(In, T, '_'))
    Tokens.push_back(T);
  while (Tokens.size() > 1) {
    const std::string &Last = Tokens.back();
    bool AllDigits = !Last.empty();
    for (char C : Last)
      AllDigits = AllDigits && std::isdigit(static_cast<unsigned char>(C));
    if (!(AllDigits || Last.size() == 1))
      break;
    Tokens.pop_back();
  }
  std::string Out;
  for (const std::string &Tok : Tokens)
    Out += (Out.empty() ? "" : "_") + Tok;
  return Out.empty() ? Name : Out;
}

double numberField(const obs::json::Value &Rec, const char *Key) {
  const obs::json::Value *V = Rec.find(Key);
  return V && V->isNumber() ? V->Num : 0;
}

std::string stringField(const obs::json::Value &Rec, const char *Key) {
  const obs::json::Value *V = Rec.find(Key);
  return V && V->isString() ? V->Str : std::string();
}

bool boolField(const obs::json::Value &Rec, const char *Key) {
  const obs::json::Value *V = Rec.find(Key);
  return V && V->isBool() && V->BoolVal;
}

/// Loads one journal file into \p Stats. Malformed lines and schema
/// violations are recorded in Stats.SchemaErrors; the analyzable records
/// are aggregated either way. \returns false when the file is unreadable.
bool loadJournal(const std::string &Path, JournalStats &Stats) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return false;
  }
  std::string Line;
  std::size_t LineNo = 0;
  auto Violation = [&](const std::string &What) {
    Stats.SchemaErrors.push_back(Path + ":" + std::to_string(LineNo) +
                                 ": " + What);
  };
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::string Error;
    std::optional<obs::json::Value> Rec = obs::json::parse(Line, Error);
    if (!Rec || !Rec->isObject()) {
      Violation(Rec ? "record is not a JSON object" : Error);
      continue;
    }
    ++Stats.Records;

    const obs::json::Value *Ts = Rec->find("ts_us");
    if (!Ts || !Ts->isNumber())
      Violation("missing or non-numeric ts_us");
    const obs::json::Value *TypeV = Rec->find("type");
    if (!TypeV || !TypeV->isString() || TypeV->Str.empty()) {
      Violation("missing or empty type");
      continue;
    }
    const std::string &Type = TypeV->Str;

    std::string Rid = stringField(*Rec, "request_id");
    // Process-scoped events legitimately carry no request id: batch
    // lifecycle markers, daemon drains, and quarantines found by the
    // startup sweep (no request exists yet).
    bool BatchEvent = Type.rfind("batch_", 0) == 0 || Type == "drain" ||
                      Type == "quarantine";
    if (Rid.empty() && !BatchEvent)
      Violation("missing request_id on '" + Type + "' record");
    if (!Rid.empty())
      Stats.Ids.insert(Rid);

    if (Type == "request_start") {
      ++Stats.Requests;
      ++Stats.Starts[Rid];
      Stats.Operator[Rid] = stringField(*Rec, "operator");
    } else if (Type == "request_end") {
      ++Stats.Ends[Rid];
    } else if (Type == "stage_end") {
      std::string Stage = stringField(*Rec, "stage");
      double DurUs = numberField(*Rec, "dur_us");
      if (Stage.empty()) {
        Violation("stage_end without stage");
      } else {
        Stats.StageDur[Stage].observe(DurUs);
        Stats.StageTotalUs[Stage] += DurUs;
      }
    } else if (Type == "solve_end") {
      FamilyEffort &F =
          Stats.Families[operatorFamily(Stats.Operator.count(Rid)
                                            ? Stats.Operator[Rid]
                                            : std::string("<unknown>"))];
      ++F.Solves;
      F.Nodes += static_cast<std::uint64_t>(numberField(*Rec, "nodes"));
      F.Pivots += static_cast<std::uint64_t>(numberField(*Rec, "pivots"));
      std::uint64_t Depth =
          static_cast<std::uint64_t>(numberField(*Rec, "max_depth"));
      F.MaxDepth = std::max(F.MaxDepth, Depth);
    } else if (Type == "cache_lookup") {
      ++Stats.CacheLookups;
      if (boolField(*Rec, "hit"))
        ++Stats.CacheHits;
    } else if (Type == "cache_store") {
      ++Stats.CacheStores;
    } else if (Type == "tuning") {
      ++Stats.TuningEvents;
      if (boolField(*Rec, "applied"))
        ++Stats.TuningApplied;
    } else if (Type == "surrogate") {
      ++Stats.SurrogateSearches;
      if (boolField(*Rec, "found"))
        ++Stats.SurrogateFound;
      double Candidates = numberField(*Rec, "candidates");
      if (Candidates <= 0)
        Violation("surrogate without a positive candidates count");
      Stats.SurrogateCandidates += static_cast<std::uint64_t>(Candidates);
      Stats.SurrogateEvalsSaved +=
          static_cast<std::uint64_t>(numberField(*Rec, "evals_saved"));
      // The strategy contract: it never evaluates more than it ranks.
      if (numberField(*Rec, "evals_saved") > Candidates)
        Violation("surrogate saved more evaluations than candidates");
    } else if (Type == "degradation") {
      ++Stats.Degradations;
      std::string Cause = stringField(*Rec, "config") + " " +
                          stringField(*Rec, "code") + " at " +
                          stringField(*Rec, "site");
      ++Stats.DegradationCauses[Cause];
    } else if (Type == "admit") {
      ++Stats.Admits;
    } else if (Type == "shed") {
      ++Stats.Sheds;
      std::string Reason = stringField(*Rec, "reason");
      if (Reason.empty())
        Violation("shed without reason");
      else
        ++Stats.ShedReasons[Reason];
      // The shedding contract: a shed response always carries a
      // positive backoff hint.
      if (numberField(*Rec, "retry_after_ms") <= 0)
        Violation("shed with non-positive retry_after_ms");
    } else if (Type == "drain") {
      ++Stats.Drains;
      const obs::json::Value *Clean = Rec->find("clean");
      if (!Clean || !Clean->isBool())
        Violation("drain without clean flag");
    } else if (Type == "quarantine") {
      ++Stats.Quarantines;
      if (stringField(*Rec, "file").empty())
        Violation("quarantine without file");
    }
  }

  // Pairing: every started request ends exactly as often, and no end
  // arrives without a start.
  for (const auto &[Rid, N] : Stats.Starts) {
    auto It = Stats.Ends.find(Rid);
    std::size_t EndN = It == Stats.Ends.end() ? 0 : It->second;
    if (EndN != N)
      Stats.SchemaErrors.push_back(
          Path + ": request " + Rid + " started " + std::to_string(N) +
          "x but ended " + std::to_string(EndN) + "x");
  }
  for (const auto &[Rid, N] : Stats.Ends)
    if (!Stats.Starts.count(Rid))
      Stats.SchemaErrors.push_back(Path + ": request " + Rid +
                                   " ended without request_start");
  return true;
}

/// Parses one whole-file JSON document; exits with a diagnostic on I/O
/// or parse failure (cross-check inputs are expected to be well-formed).
obs::json::Value loadJsonFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  std::optional<obs::json::Value> V = obs::json::parse(Buffer.str(), Error);
  if (!V) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Error.c_str());
    std::exit(1);
  }
  return std::move(*V);
}

/// Cross-checks the metrics sidecar: every operator record must carry a
/// request id the journal also saw.
void checkReport(const std::string &Path, JournalStats &Stats) {
  obs::json::Value Doc = loadJsonFile(Path);
  const obs::json::Value *Ops = Doc.find("operators");
  if (!Ops || !Ops->isArray()) {
    Stats.SchemaErrors.push_back(Path + ": missing operators array");
    return;
  }
  for (const obs::json::Value &Op : Ops->Items) {
    std::string Name = stringField(Op, "name");
    std::string Rid = stringField(Op, "request_id");
    if (Rid.empty())
      Stats.SchemaErrors.push_back(Path + ": operator " + Name +
                                   " has no request_id");
    else if (!Stats.Ids.count(Rid))
      Stats.SchemaErrors.push_back(Path + ": operator " + Name +
                                   " request_id " + Rid +
                                   " not present in the journal");
  }
}

/// Cross-checks the Chrome trace: every span arg request_id must be a
/// journal id.
void checkTrace(const std::string &Path, JournalStats &Stats) {
  obs::json::Value Doc = loadJsonFile(Path);
  const obs::json::Value *Events = Doc.find("traceEvents");
  if (!Events || !Events->isArray()) {
    Stats.SchemaErrors.push_back(Path + ": missing traceEvents array");
    return;
  }
  std::size_t Tagged = 0;
  for (const obs::json::Value &E : Events->Items) {
    const obs::json::Value *Args = E.find("args");
    if (!Args)
      continue;
    std::string Rid = stringField(*Args, "request_id");
    if (Rid.empty())
      continue;
    ++Tagged;
    if (!Stats.Ids.count(Rid))
      Stats.SchemaErrors.push_back(Path + ": trace request_id " + Rid +
                                   " not present in the journal");
  }
  if (Tagged == 0)
    Stats.SchemaErrors.push_back(Path +
                                 ": no trace event carries a request_id");
}

/// Validates a Prometheus exposition file: comment lines plus
/// "pinj_<name>[{labels}] <value>" samples, at least one sample.
void checkExposition(const std::string &Path, JournalStats &Stats) {
  std::ifstream In(Path);
  if (!In) {
    Stats.SchemaErrors.push_back(Path + ": cannot open");
    return;
  }
  std::string Line;
  std::size_t LineNo = 0;
  std::size_t Samples = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::size_t Space = Line.rfind(' ');
    bool Ok = Line.rfind("pinj_", 0) == 0 && Space != std::string::npos &&
              Space + 1 < Line.size();
    if (Ok) {
      char *End = nullptr;
      std::strtod(Line.c_str() + Space + 1, &End);
      Ok = End == Line.c_str() + Line.size();
    }
    if (!Ok)
      Stats.SchemaErrors.push_back(Path + ":" + std::to_string(LineNo) +
                                   ": malformed exposition line");
    else
      ++Samples;
  }
  if (Samples == 0)
    Stats.SchemaErrors.push_back(Path + ": no pinj_ samples");
}

void printSummary(const JournalStats &Stats) {
  std::printf("journal: %zu records, %zu requests, %zu distinct ids\n",
              Stats.Records, Stats.Requests, Stats.Ids.size());
  if (Stats.CacheLookups)
    std::printf("cache: %zu lookups, %zu hits (%.1f%%), %zu stores\n",
                Stats.CacheLookups, Stats.CacheHits,
                100.0 * static_cast<double>(Stats.CacheHits) /
                    static_cast<double>(Stats.CacheLookups),
                Stats.CacheStores);
  if (Stats.TuningEvents)
    std::printf("tuning: %zu events, %zu applied (%.1f%%)\n",
                Stats.TuningEvents, Stats.TuningApplied,
                100.0 * static_cast<double>(Stats.TuningApplied) /
                    static_cast<double>(Stats.TuningEvents));

  if (Stats.SurrogateSearches)
    std::printf("surrogate: %zu searches, %zu improved, %llu candidates "
                "ranked, %llu evaluations saved\n",
                Stats.SurrogateSearches, Stats.SurrogateFound,
                static_cast<unsigned long long>(Stats.SurrogateCandidates),
                static_cast<unsigned long long>(Stats.SurrogateEvalsSaved));

  if (Stats.Admits || Stats.Sheds || Stats.Drains || Stats.Quarantines) {
    std::printf("service: %zu admitted, %zu shed, %zu drain(s), "
                "%zu quarantined\n",
                Stats.Admits, Stats.Sheds, Stats.Drains,
                Stats.Quarantines);
    for (const auto &[Reason, N] : Stats.ShedReasons)
      std::printf("  shed %zux %s\n", N, Reason.c_str());
  }

  if (!Stats.StageDur.empty()) {
    std::printf("stage latency (us):\n");
    std::printf("  %-10s %8s %10s %10s %10s %12s\n", "stage", "count",
                "p50", "p90", "p99", "total");
    for (const auto &[Stage, H] : Stats.StageDur) {
      obs::HistogramSummary S = H.summary();
      std::printf("  %-10s %8llu %10.1f %10.1f %10.1f %12.1f\n",
                  Stage.c_str(),
                  static_cast<unsigned long long>(S.Count),
                  S.percentile(50), S.percentile(90), S.percentile(99),
                  Stats.StageTotalUs.count(Stage)
                      ? Stats.StageTotalUs.at(Stage)
                      : 0.0);
    }
  }

  if (Stats.Degradations) {
    std::printf("degradations: %zu\n", Stats.Degradations);
    for (const auto &[Cause, N] : Stats.DegradationCauses)
      std::printf("  %zux %s\n", N, Cause.c_str());
  }

  if (!Stats.Families.empty()) {
    std::printf("b&b effort by operator family:\n");
    std::printf("  %-20s %8s %10s %10s %10s\n", "family", "solves",
                "nodes", "pivots", "max_depth");
    for (const auto &[Family, F] : Stats.Families)
      std::printf("  %-20s %8llu %10llu %10llu %10llu\n", Family.c_str(),
                  static_cast<unsigned long long>(F.Solves),
                  static_cast<unsigned long long>(F.Nodes),
                  static_cast<unsigned long long>(F.Pivots),
                  static_cast<unsigned long long>(F.MaxDepth));
  }
}

/// Diffs run \p B against baseline \p A. Deterministic counters are
/// compared exactly and reported; only wall-clock stage times can fail
/// the diff, and only past both thresholds. \returns the number of
/// regressions.
std::size_t diffStats(const JournalStats &A, const JournalStats &B,
                      double ThresholdPct, double MinRegressUs) {
  std::size_t Regressions = 0;
  auto CompareCounter = [](const char *Name, std::size_t VA,
                           std::size_t VB) {
    if (VA != VB)
      std::printf("counter %-18s %8zu -> %-8zu\n", Name, VA, VB);
  };
  CompareCounter("requests", A.Requests, B.Requests);
  CompareCounter("cache_hits", A.CacheHits, B.CacheHits);
  CompareCounter("degradations", A.Degradations, B.Degradations);
  CompareCounter("surrogate_searches", A.SurrogateSearches,
                 B.SurrogateSearches);
  CompareCounter("surrogate_evals_saved",
                 static_cast<std::size_t>(A.SurrogateEvalsSaved),
                 static_cast<std::size_t>(B.SurrogateEvalsSaved));
  CompareCounter("admitted", A.Admits, B.Admits);
  CompareCounter("shed", A.Sheds, B.Sheds);
  CompareCounter("quarantined", A.Quarantines, B.Quarantines);

  std::uint64_t NodesA = 0, NodesB = 0, PivotsA = 0, PivotsB = 0;
  for (const auto &[Family, F] : A.Families) {
    NodesA += F.Nodes;
    PivotsA += F.Pivots;
  }
  for (const auto &[Family, F] : B.Families) {
    NodesB += F.Nodes;
    PivotsB += F.Pivots;
  }
  CompareCounter("bnb_nodes", static_cast<std::size_t>(NodesA),
                 static_cast<std::size_t>(NodesB));
  CompareCounter("simplex_pivots", static_cast<std::size_t>(PivotsA),
                 static_cast<std::size_t>(PivotsB));

  for (const auto &[Stage, TotalB] : B.StageTotalUs) {
    auto It = A.StageTotalUs.find(Stage);
    if (It == A.StageTotalUs.end()) {
      std::printf("stage %-10s only in B (%.1f us)\n", Stage.c_str(),
                  TotalB);
      continue;
    }
    double TotalA = It->second;
    double DeltaUs = TotalB - TotalA;
    double DeltaPct = TotalA > 0 ? 100.0 * DeltaUs / TotalA : 0.0;
    bool Regressed = DeltaUs > MinRegressUs && DeltaPct > ThresholdPct;
    std::printf("stage %-10s %10.1f -> %10.1f us (%+.1f%%)%s\n",
                Stage.c_str(), TotalA, TotalB,
                TotalA > 0 ? DeltaPct : 0.0,
                Regressed ? "  REGRESSION" : "");
    if (Regressed)
      ++Regressions;
  }
  for (const auto &[Stage, TotalA] : A.StageTotalUs)
    if (!B.StageTotalUs.count(Stage))
      std::printf("stage %-10s only in A (%.1f us)\n", Stage.c_str(),
                  TotalA);
  return Regressions;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> JournalPaths;
  std::string ReportPath;
  std::string TracePath;
  std::string ExpositionPath;
  bool CheckSchema = false;
  bool Diff = false;
  double ThresholdPct = 10;
  double MinRegressUs = 1000;

  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--diff") == 0) {
      Diff = true;
    } else if (std::strcmp(Arg, "--check-schema") == 0) {
      CheckSchema = true;
    } else if (std::strncmp(Arg, "--report=", 9) == 0) {
      ReportPath = Arg + 9;
    } else if (std::strncmp(Arg, "--trace=", 8) == 0) {
      TracePath = Arg + 8;
    } else if (std::strncmp(Arg, "--exposition=", 13) == 0) {
      ExpositionPath = Arg + 13;
    } else if (std::strncmp(Arg, "--threshold-pct=", 16) == 0) {
      ThresholdPct = std::strtod(Arg + 16, nullptr);
    } else if (std::strncmp(Arg, "--min-regress-us=", 17) == 0) {
      MinRegressUs = std::strtod(Arg + 17, nullptr);
    } else if (Arg[0] == '-') {
      printUsage(Argv[0]);
      return 2;
    } else {
      JournalPaths.push_back(Arg);
    }
  }

  if (Diff) {
    if (JournalPaths.size() != 2) {
      std::fprintf(stderr,
                   "error: --diff needs exactly two journal files\n");
      printUsage(Argv[0]);
      return 2;
    }
    JournalStats A, B;
    if (!loadJournal(JournalPaths[0], A) ||
        !loadJournal(JournalPaths[1], B))
      return 1;
    std::printf("diff: %s -> %s (threshold %.1f%%, floor %.1f us)\n",
                JournalPaths[0].c_str(), JournalPaths[1].c_str(),
                ThresholdPct, MinRegressUs);
    std::size_t Regressions =
        diffStats(A, B, ThresholdPct, MinRegressUs);
    if (Regressions) {
      std::printf("%zu stage-time regression(s)\n", Regressions);
      return 1;
    }
    std::printf("no regressions\n");
    return 0;
  }

  if (JournalPaths.empty()) {
    printUsage(Argv[0]);
    return 2;
  }
  JournalStats Stats;
  for (const std::string &Path : JournalPaths)
    if (!loadJournal(Path, Stats))
      return 1;
  if (!ReportPath.empty())
    checkReport(ReportPath, Stats);
  if (!TracePath.empty())
    checkTrace(TracePath, Stats);
  if (!ExpositionPath.empty())
    checkExposition(ExpositionPath, Stats);

  for (const std::string &E : Stats.SchemaErrors)
    std::fprintf(stderr, "schema: %s\n", E.c_str());
  printSummary(Stats);
  if (CheckSchema && !Stats.SchemaErrors.empty()) {
    std::fprintf(stderr, "%zu schema violation(s)\n",
                 Stats.SchemaErrors.size());
    return 1;
  }
  return 0;
}
