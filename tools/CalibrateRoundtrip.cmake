# Exercises the target calibration harness end to end:
#
#   1. polyinject-calibrate --emit-table produces a synthetic measured
#      table for the cpu-simd preset over the checked-in corpus.
#   2. A fit starting from displaced constants (--init-scale=1.7) must
#      recover every fitted constant within 5% of the generating preset
#      (--ref/--check-tol) and write fit.ptgt.
#   3. A second fit over the same table must write a byte-identical
#      .ptgt (calibration is deterministic).
#   4. polyinject-opt --target=fit.ptgt over the corpus twice must
#      produce byte-identical stdout (the file round-trips into a
#      working backend target).
#   5. A version-bumped and a truncated .ptgt must both be refused with
#      a diagnostic (non-zero exit), and an unknown --target name must
#      list the available targets.
#
# Expected -D variables: CAL (polyinject-calibrate path), OPT
# (polyinject-opt path), OPS (corpus list file), WORK (scratch dir).

foreach(_var CAL OPT OPS WORK)
  if(NOT DEFINED ${_var})
    message(FATAL_ERROR "CalibrateRoundtrip.cmake needs -D${_var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

# 1. Synthetic measured table from the cpu-simd preset.
execute_process(COMMAND ${CAL} --emit-table --target=cpu-simd
                        --ops-file=${OPS} --tune-space=tiny
                        --out=${WORK}/measured.tbl
                OUTPUT_QUIET ERROR_VARIABLE _emit_err
                RESULT_VARIABLE _emit_rc)
if(NOT _emit_rc EQUAL 0)
  message(FATAL_ERROR "table emission failed (${_emit_rc}):\n${_emit_err}")
endif()

# 2. Fit from displaced constants; require 5% recovery of the preset.
execute_process(COMMAND ${CAL} --table=${WORK}/measured.tbl
                        --kind=cpu-simd --init-scale=1.7
                        --ref=cpu-simd --check-tol=0.05
                        --out=${WORK}/fit.ptgt --name=fit
                OUTPUT_VARIABLE _fit_out ERROR_VARIABLE _fit_err
                RESULT_VARIABLE _fit_rc)
if(NOT _fit_rc EQUAL 0)
  message(FATAL_ERROR "calibration fit failed (${_fit_rc}):\n"
                      "${_fit_out}${_fit_err}")
endif()

# 3. Refit: byte-identical .ptgt.
execute_process(COMMAND ${CAL} --table=${WORK}/measured.tbl
                        --kind=cpu-simd --init-scale=1.7
                        --out=${WORK}/fit2.ptgt --name=fit
                OUTPUT_QUIET ERROR_VARIABLE _fit2_err
                RESULT_VARIABLE _fit2_rc)
if(NOT _fit2_rc EQUAL 0)
  message(FATAL_ERROR "second fit failed (${_fit2_rc}):\n${_fit2_err}")
endif()
file(READ ${WORK}/fit.ptgt _fit_a)
file(READ ${WORK}/fit2.ptgt _fit_b)
if(NOT _fit_a STREQUAL _fit_b)
  message(FATAL_ERROR "two fits over the same table wrote different "
                      ".ptgt files")
endif()

# 4. The fitted target scores the corpus byte-identically across runs.
execute_process(COMMAND ${OPT} --target=${WORK}/fit.ptgt --config=infl
                        --print=sim --ops-file=${OPS}
                OUTPUT_VARIABLE _score_a ERROR_VARIABLE _score_a_err
                RESULT_VARIABLE _score_a_rc)
execute_process(COMMAND ${OPT} --target=${WORK}/fit.ptgt --config=infl
                        --print=sim --ops-file=${OPS}
                OUTPUT_VARIABLE _score_b ERROR_VARIABLE _score_b_err
                RESULT_VARIABLE _score_b_rc)
if(NOT _score_a_rc EQUAL 0 OR NOT _score_b_rc EQUAL 0)
  message(FATAL_ERROR "scoring under fit.ptgt failed:\n"
                      "${_score_a_err}${_score_b_err}")
endif()
if(_score_a STREQUAL "")
  message(FATAL_ERROR "scoring under fit.ptgt printed nothing")
endif()
if(NOT _score_a STREQUAL _score_b)
  message(FATAL_ERROR "re-scoring the corpus under fit.ptgt differed")
endif()

# 5a. Version-bumped file: refused.
file(READ ${WORK}/fit.ptgt _ptgt_text)
string(REPLACE "polyinject-target v1" "polyinject-target v9"
       _bumped "${_ptgt_text}")
file(WRITE ${WORK}/stale.ptgt "${_bumped}")
execute_process(COMMAND ${OPT} --target=${WORK}/stale.ptgt --config=infl
                        --print=sim --ops-file=${OPS}
                OUTPUT_QUIET ERROR_VARIABLE _stale_err
                RESULT_VARIABLE _stale_rc)
if(_stale_rc EQUAL 0)
  message(FATAL_ERROR "version-bumped .ptgt was accepted")
endif()
if(NOT _stale_err MATCHES "target")
  message(FATAL_ERROR "stale .ptgt rejection lacks a diagnostic:\n"
                      "${_stale_err}")
endif()

# 5b. Truncated file: refused.
string(LENGTH "${_ptgt_text}" _len)
math(EXPR _half "${_len} / 2")
string(SUBSTRING "${_ptgt_text}" 0 ${_half} _truncated)
file(WRITE ${WORK}/truncated.ptgt "${_truncated}")
execute_process(COMMAND ${OPT} --target=${WORK}/truncated.ptgt
                        --config=infl --print=sim --ops-file=${OPS}
                OUTPUT_QUIET ERROR_VARIABLE _trunc_err
                RESULT_VARIABLE _trunc_rc)
if(_trunc_rc EQUAL 0)
  message(FATAL_ERROR "truncated .ptgt was accepted")
endif()

# 5c. Unknown --target name: rejected with the available-target list.
execute_process(COMMAND ${OPT} --target=no-such-target --config=infl
                        --print=sim --ops-file=${OPS}
                OUTPUT_QUIET ERROR_VARIABLE _unknown_err
                RESULT_VARIABLE _unknown_rc)
if(_unknown_rc EQUAL 0)
  message(FATAL_ERROR "unknown --target was accepted")
endif()
if(NOT _unknown_err MATCHES "cpu-simd" OR NOT _unknown_err MATCHES "v100")
  message(FATAL_ERROR "unknown --target diagnostic does not list the "
                      "available targets:\n${_unknown_err}")
endif()

message(STATUS "calibrate roundtrip OK")
