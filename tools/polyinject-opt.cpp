//===- tools/polyinject-opt.cpp - Command-line driver ----------------------===//
//
// Reads a fused operator in the textual format of ir/Parser.h and runs
// the full pipeline, printing the requested artifacts.
//
// Usage:
//   polyinject-opt [options] kernel.pinj [more.pinj ...]
//     --config=isl|tvm|novec|infl|all   configurations to run (default all)
//     --print=schedule,cuda,ast,tree,deps,sim   artifacts (default
//                                               schedule,sim)
//     --validate                        execute and compare semantics
//     --feautrier                       enable the Feautrier fallback
//     --max-pivots=N                    cap simplex pivots per operator
//     --max-nodes=N                     cap branch-and-bound nodes
//     --deadline-ms=X                   whole-operator wall-clock budget
//     --trace-json=FILE                 write a Chrome trace-event file
//                                       (open in chrome://tracing)
//     --metrics-json=FILE               write the per-operator metrics
//                                       sidecar
//     --journal=FILE                    write the structured event
//                                       journal (JSONL, one record per
//                                       line; obs/Journal.h)
//     --metrics-exposition=FILE         write the process metrics in the
//                                       Prometheus text exposition
//                                       format at exit
//     --metrics-interval-ms=N           also rewrite the exposition file
//                                       every N ms while running
//                                       (requires --metrics-exposition)
//     --stats                           print the process metrics table
//     --gpu=PRESET                      GPU model preset (v100, a100,
//                                       p100; default v100)
//     --target=NAME|FILE.ptgt           backend target: a built-in name
//                                       (v100, a100, p100, cpu-simd) or
//                                       a calibrated .ptgt file
//                                       (polyinject-calibrate); for GPU
//                                       presets identical to --gpu
//
// Autotuning (tune/Autotuner.h — search pipeline knobs against the
// simulated cost model; never selects a config the model scores worse
// than the default):
//     --autotune=STRATEGY               exhaustive|greedy|anneal|
//                                       surrogate (surrogate needs
//                                       --tune-model)
//     --tune-budget=N                   candidate evaluations per
//                                       operator (default 64)
//     --tune-seed=N                     seed for stochastic strategies
//                                       (default 1)
//     --tune-space=NAME                 search space: default|tiny
//     --tuning-db=FILE                  persistent winning-config store;
//                                       warm runs replay without
//                                       re-searching
//     --tune-model=FILE                 trained cost model
//                                       (polyinject-train) for the
//                                       surrogate strategy
//     --tune-topk=N                     candidates the surrogate
//                                       gpusim-evaluates per operator
//                                       (default 8)
//
// Compilation service (batch mode — entered when more than one kernel
// file is given, or --ops-file is used):
//     --jobs=N                          worker threads (default 1)
//     --cache-dir=PATH                  persistent schedule cache
//                                       directory (also honored in
//                                       single-kernel mode)
//     --ops-file=FILE                   operator list, one .pinj path
//                                       per line relative to FILE
//
// Batch stdout is deterministic: reports are printed in submission
// order and contain only analytic results, so the bytes are identical
// for any --jobs value. Wall-clock timing goes to stderr.
//
// POLYINJECT_TRACE=1 in the environment prints the human-readable span
// trace on stderr.
//
//===----------------------------------------------------------------------===//

#include "codegen/Ast.h"
#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Exposition.h"
#include "obs/Journal.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "lp/Budget.h"
#include "pipeline/Pipeline.h"
#include "poly/Dependence.h"
#include "model/GbStumps.h"
#include "service/BatchCompiler.h"
#include "service/Cache.h"
#include "support/Status.h"
#include "target/GpuAnalyticTarget.h"
#include "target/Target.h"
#include "tune/Autotuner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

using namespace pinj;

namespace {

void printUsage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--config=isl|tvm|novec|infl|all] "
      "[--print=schedule,cuda,ast,tree,deps,sim] [--validate] "
      "[--feautrier] [--max-pivots=N] [--max-nodes=N] [--deadline-ms=X] "
      "[--trace-json=FILE] [--metrics-json=FILE] [--journal=FILE] "
      "[--metrics-exposition=FILE] [--metrics-interval-ms=N] [--stats] "
      "[--gpu=PRESET] [--target=NAME|FILE.ptgt] "
      "[--autotune=exhaustive|greedy|anneal|surrogate] [--tune-budget=N] "
      "[--tune-seed=N] [--tune-space=default|tiny] [--tuning-db=FILE] "
      "[--tune-model=FILE] [--tune-topk=N] "
      "[--jobs=N] [--cache-dir=PATH] [--ops-file=FILE] "
      "kernel.pinj [more.pinj ...]\n",
      Argv0);
}

std::set<std::string> splitList(const std::string &Text) {
  std::set<std::string> Items;
  std::stringstream In(Text);
  std::string Item;
  while (std::getline(In, Item, ','))
    Items.insert(Item);
  return Items;
}

void printConfig(const Kernel &K, const char *Name, const ConfigResult &R,
                 const std::set<std::string> &Artifacts,
                 const PipelineOptions &Options) {
  std::printf("==== %s ====\n", Name);
  if (Artifacts.count("schedule"))
    std::printf("%s", R.Sched.str(K).c_str());
  // Codegen artifacts can fail on a degraded schedule (the original
  // program order is not always expressible as one fused launch); note
  // it instead of dying.
  try {
    if (Artifacts.count("ast")) {
      MappedKernel M = mapToGpu(K, R.Sched, Options.Mapping);
      std::printf("%s", printAst(M).c_str());
    }
    if (Artifacts.count("cuda"))
      std::printf("%s", renderCuda(K, R.Sched, Options.Mapping).c_str());
  } catch (const RecoverableError &E) {
    std::printf("<no generated code: %s>\n", E.status().str().c_str());
  }
  if (Artifacts.count("sim"))
    std::printf("time %.3f us | transactions %.0f | bytes moved %.0f "
                "(useful %.0f, efficiency %.0f%%)\n",
                R.TimeUs, R.Sim.Transactions, R.Sim.TransactionBytes,
                R.Sim.UsefulBytes, R.Sim.efficiency() * 100);
  std::printf("\n");
}

/// Reads one kernel file; exits the process with a diagnostic on
/// failure (both modes treat an unreadable/unparsable input as fatal).
Kernel loadKernel(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    std::exit(1);
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Error;
  std::optional<Kernel> K = parseKernel(Buffer.str(), Error);
  if (!K) {
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), Error.c_str());
    std::exit(1);
  }
  std::string Diag = K->verify();
  if (!Diag.empty()) {
    std::fprintf(stderr, "%s: malformed kernel: %s\n", Path.c_str(),
                 Diag.c_str());
    std::exit(1);
  }
  return std::move(*K);
}

/// Expands an --ops-file list: one path per line, '#' comments,
/// relative paths resolved against the list file's directory.
std::vector<std::string> readOpsFile(const std::string &ListPath) {
  std::ifstream In(ListPath);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", ListPath.c_str());
    std::exit(1);
  }
  std::filesystem::path Base =
      std::filesystem::path(ListPath).parent_path();
  std::vector<std::string> Paths;
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line = Line.substr(0, Hash);
    size_t First = Line.find_first_not_of(" \t\r");
    if (First == std::string::npos)
      continue;
    size_t Last = Line.find_last_not_of(" \t\r");
    std::string Entry = Line.substr(First, Last - First + 1);
    std::filesystem::path P(Entry);
    Paths.push_back(P.is_absolute() ? P.string() : (Base / P).string());
  }
  return Paths;
}

/// Writes the current process metrics in the exposition format to
/// \p Path. \returns false on I/O failure.
bool writeExpositionFile(const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << obs::metrics().renderExposition();
  Out.close();
  return static_cast<bool>(Out);
}

/// Writes the Chrome trace to \p Path and validates it (parse back,
/// require a non-empty traceEvents array) so CTest can rely on the exit
/// code. \returns false on I/O failure or an invalid file.
bool writeTraceChecked(const std::string &Path) {
  std::string Error;
  if (!obs::tracer().writeJson(Path, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return false;
  }
  std::ifstream TraceIn(Path);
  std::stringstream TraceBuffer;
  TraceBuffer << TraceIn.rdbuf();
  std::optional<obs::json::Value> Parsed =
      obs::json::parse(TraceBuffer.str(), Error);
  const obs::json::Value *Events =
      Parsed ? Parsed->find("traceEvents") : nullptr;
  if (!Parsed || !Events || !Events->isArray() || Events->Items.empty()) {
    std::fprintf(stderr, "error: invalid trace file %s: %s\n",
                 Path.c_str(),
                 Error.empty() ? "missing traceEvents" : Error.c_str());
    return false;
  }
  std::fprintf(stderr, "wrote %zu trace events to %s\n",
               Events->Items.size(), Path.c_str());
  return true;
}

/// Runs the end-of-process observability flushes on every return path:
/// the final exposition snapshot (via the periodic writer's stop when
/// one is running, directly otherwise) and the journal file sink.
class ObsFinalizer {
public:
  ObsFinalizer(obs::ExpositionWriter &Writer, std::string ExpositionPath)
      : Writer(Writer), ExpositionPath(std::move(ExpositionPath)) {}
  ~ObsFinalizer() {
    if (Writer.running())
      Writer.stop();
    else if (!ExpositionPath.empty() &&
             !writeExpositionFile(ExpositionPath))
      std::fprintf(stderr, "error: cannot write %s\n",
                   ExpositionPath.c_str());
    obs::Journal::get().closeFile();
  }

private:
  obs::ExpositionWriter &Writer;
  std::string ExpositionPath;
};

/// Batch mode: compiles every kernel through the service worker pool
/// and prints reports in submission order. Stdout is deterministic for
/// any --jobs value; wall-clock timing goes to stderr.
int runBatch(const std::vector<std::string> &Paths,
             PipelineOptions Options, unsigned Jobs, bool CacheEnabled,
             const std::set<std::string> &Artifacts,
             const std::string &ConfigArg, bool Stats,
             const std::string &MetricsJsonPath) {
  std::vector<service::BatchJob> Batch;
  Batch.reserve(Paths.size());
  for (const std::string &P : Paths)
    Batch.push_back(service::BatchJob{loadKernel(P)});

  obs::ReportSink Sink;
  if (!MetricsJsonPath.empty())
    Options.Sink = &Sink;

  // The worker count must stay off stdout: batch stdout is specified to
  // be byte-identical for any --jobs value.
  std::printf("batch of %zu operators\n\n", Batch.size());
  auto Start = std::chrono::steady_clock::now();
  service::BatchCompiler Compiler(Options, Jobs);
  service::BatchResult Result = Compiler.run(Batch);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  bool All = ConfigArg == "all";
  std::size_t Influenced = 0, Vectorizable = 0;
  for (std::size_t I = 0; I != Result.Reports.size(); ++I) {
    const OperatorReport &R = Result.Reports[I];
    const Kernel &K = Batch[I].K;
    std::printf("==== operator %s (%s) ====\n", R.Name.c_str(),
                Paths[I].c_str());
    if (All || ConfigArg == "isl")
      printConfig(K, "isl", R.Isl, Artifacts, Options);
    if (All || ConfigArg == "novec")
      printConfig(K, "novec", R.Novec, Artifacts, Options);
    if (All || ConfigArg == "infl")
      printConfig(K, "infl", R.Infl, Artifacts, Options);
    if (All || ConfigArg == "tvm")
      std::printf("==== tvm (per-statement launches) ====\ntime %.3f us "
                  "over %u launches\n\n",
                  R.Tvm.TimeUs, R.Tvm.Launches);
    // tuned= shows the chosen encoding only: whether it came from the
    // database or a fresh search can differ between workers racing on a
    // shared database, and batch stdout must stay deterministic.
    std::string TunedNote;
    if (R.Tuned)
      TunedNote = " tuned=" + R.Tuning.Encoding;
    std::printf("summary: influenced=%s vectorizable=%s "
                "speedup(infl/isl)=%.2fx%s%s\n",
                R.Influenced ? "yes" : "no", R.VecEligible ? "yes" : "no",
                R.Infl.TimeUs > 0 ? R.Isl.TimeUs / R.Infl.TimeUs : 0.0,
                !CacheEnabled   ? ""
                : R.CacheHit    ? " cache=hit"
                                : " cache=miss",
                TunedNote.c_str());
    if (R.degraded()) {
      std::printf("degradations (%zu):\n", R.Degradations.size());
      for (const DegradationEvent &E : R.Degradations)
        std::printf("  %-8s %s at %s: %s\n", E.Config.c_str(),
                    statusCodeName(E.Code), E.Site.c_str(),
                    E.Detail.c_str());
    }
    std::printf("\n");
    Influenced += R.Influenced ? 1 : 0;
    Vectorizable += R.VecEligible ? 1 : 0;
  }
  std::printf("batch summary: %zu operators, %zu influenced, "
              "%zu vectorizable, %zu degraded",
              Result.Reports.size(), Influenced, Vectorizable,
              Result.degraded());
  if (CacheEnabled)
    std::printf(", %zu cache hits", Result.hits());
  std::printf("\n");
  // Timing is the one nondeterministic quantity; keep it off stdout so
  // batch output stays byte-identical across --jobs values.
  std::fprintf(stderr, "batch wall time: %.1f ms (jobs=%u)\n", WallMs,
               Jobs);

  if (Stats)
    std::printf("\n==== process metrics ====\n%s",
                obs::metrics().snapshot().table().c_str());
  std::string Error;
  if (!MetricsJsonPath.empty() &&
      !Sink.writeJson(MetricsJsonPath, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (Options.Validate)
    for (const OperatorReport &R : Result.Reports)
      if (!R.Validated)
        return 1;
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ConfigArg = "all";
  std::set<std::string> Artifacts = {"schedule", "sim"};
  bool Validate = false;
  bool Feautrier = false;
  bool Stats = false;
  SolverBudget Budget;
  std::string TraceJsonPath;
  std::string MetricsJsonPath;
  std::string JournalPath;
  std::string ExpositionPath;
  unsigned MetricsIntervalMs = 0;
  std::string CacheDir;
  std::string OpsFilePath;
  std::string GpuPreset;
  std::string TargetSpec;
  std::string AutotuneStrategy;
  std::string TuneSpaceName = "default";
  std::string TuningDbPath;
  std::uint64_t TuneSeed = 1;
  std::size_t TuneBudget = 64;
  std::string TuneModelPath;
  std::size_t TuneTopK = 8;
  unsigned Jobs = 1;
  std::vector<std::string> Paths;

  for (int I = 1; I != Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--config=", 9) == 0) {
      ConfigArg = Arg + 9;
    } else if (std::strncmp(Arg, "--print=", 8) == 0) {
      Artifacts = splitList(Arg + 8);
    } else if (std::strcmp(Arg, "--validate") == 0) {
      Validate = true;
    } else if (std::strcmp(Arg, "--feautrier") == 0) {
      Feautrier = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      Stats = true;
    } else if (std::strncmp(Arg, "--max-pivots=", 13) == 0) {
      Budget.MaxPivots = std::strtoull(Arg + 13, nullptr, 10);
    } else if (std::strncmp(Arg, "--max-nodes=", 12) == 0) {
      Budget.MaxIlpNodes = std::strtoull(Arg + 12, nullptr, 10);
    } else if (std::strncmp(Arg, "--deadline-ms=", 14) == 0) {
      Budget.WallMs = std::strtod(Arg + 14, nullptr);
    } else if (std::strncmp(Arg, "--jobs=", 7) == 0) {
      Jobs = static_cast<unsigned>(std::strtoul(Arg + 7, nullptr, 10));
      if (Jobs == 0) {
        std::fprintf(stderr, "error: --jobs needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--cache-dir=", 12) == 0) {
      CacheDir = Arg + 12;
      if (CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir needs a path\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--ops-file=", 11) == 0) {
      OpsFilePath = Arg + 11;
      if (OpsFilePath.empty()) {
        std::fprintf(stderr, "error: --ops-file needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--gpu=", 6) == 0) {
      GpuPreset = Arg + 6;
    } else if (std::strncmp(Arg, "--target=", 9) == 0) {
      TargetSpec = Arg + 9;
    } else if (std::strncmp(Arg, "--autotune=", 11) == 0) {
      AutotuneStrategy = Arg + 11;
    } else if (std::strncmp(Arg, "--tune-budget=", 14) == 0) {
      TuneBudget = std::strtoull(Arg + 14, nullptr, 10);
      if (TuneBudget == 0) {
        std::fprintf(stderr,
                     "error: --tune-budget needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--tune-seed=", 12) == 0) {
      TuneSeed = std::strtoull(Arg + 12, nullptr, 10);
    } else if (std::strncmp(Arg, "--tune-space=", 13) == 0) {
      TuneSpaceName = Arg + 13;
    } else if (std::strncmp(Arg, "--tune-model=", 13) == 0) {
      TuneModelPath = Arg + 13;
      if (TuneModelPath.empty()) {
        std::fprintf(stderr, "error: --tune-model needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--tune-topk=", 12) == 0) {
      TuneTopK = std::strtoull(Arg + 12, nullptr, 10);
      if (TuneTopK == 0) {
        std::fprintf(stderr, "error: --tune-topk needs a positive count\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--tuning-db=", 12) == 0) {
      TuningDbPath = Arg + 12;
      if (TuningDbPath.empty()) {
        std::fprintf(stderr, "error: --tuning-db needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--trace-json=", 13) == 0) {
      TraceJsonPath = Arg + 13;
      if (TraceJsonPath.empty()) {
        std::fprintf(stderr, "error: --trace-json needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--metrics-json=", 15) == 0) {
      MetricsJsonPath = Arg + 15;
      if (MetricsJsonPath.empty()) {
        std::fprintf(stderr, "error: --metrics-json needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--journal=", 10) == 0) {
      JournalPath = Arg + 10;
      if (JournalPath.empty()) {
        std::fprintf(stderr, "error: --journal needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--metrics-exposition=", 21) == 0) {
      ExpositionPath = Arg + 21;
      if (ExpositionPath.empty()) {
        std::fprintf(stderr,
                     "error: --metrics-exposition needs a file name\n");
        return 2;
      }
    } else if (std::strncmp(Arg, "--metrics-interval-ms=", 22) == 0) {
      MetricsIntervalMs =
          static_cast<unsigned>(std::strtoul(Arg + 22, nullptr, 10));
      if (MetricsIntervalMs == 0) {
        std::fprintf(stderr,
                     "error: --metrics-interval-ms needs a positive "
                     "interval\n");
        return 2;
      }
    } else if (Arg[0] == '-') {
      printUsage(Argv[0]);
      return 2;
    } else {
      Paths.push_back(Arg);
    }
  }
  if (!OpsFilePath.empty())
    for (std::string &P : readOpsFile(OpsFilePath))
      Paths.push_back(std::move(P));
  if (Paths.empty()) {
    printUsage(Argv[0]);
    return 2;
  }
  if (!TraceJsonPath.empty()) {
    obs::tracer().enable(obs::Tracer::Json);
    // Degradation paths rewrite the file mid-run, so a crashed or killed
    // compilation still leaves a loadable trace.
    obs::tracer().setAutoFlushPath(TraceJsonPath);
  }
  if (MetricsIntervalMs != 0 && ExpositionPath.empty()) {
    std::fprintf(
        stderr,
        "error: --metrics-interval-ms requires --metrics-exposition\n");
    return 2;
  }
  if (!JournalPath.empty()) {
    obs::Journal::get().enable();
    std::string JournalError;
    if (!obs::Journal::get().openFile(JournalPath, JournalError)) {
      std::fprintf(stderr, "error: %s\n", JournalError.c_str());
      return 1;
    }
  }
  obs::ExpositionWriter ExpoWriter;
  if (!ExpositionPath.empty() && MetricsIntervalMs != 0)
    ExpoWriter.start(ExpositionPath, MetricsIntervalMs);
  // From here on, every return path writes the final exposition snapshot
  // and closes the journal sink.
  ObsFinalizer Finalizer(ExpoWriter, ExpositionPath);

  std::unique_ptr<service::ScheduleCache> Cache;
  if (!CacheDir.empty()) {
    service::ScheduleCache::Config CacheCfg;
    CacheCfg.DiskDir = CacheDir;
    Cache = std::make_unique<service::ScheduleCache>(CacheCfg);
  }

  if (!GpuPreset.empty() && !TargetSpec.empty()) {
    std::fprintf(stderr, "error: --gpu and --target are mutually "
                         "exclusive (use --target=%s)\n",
                 TargetSpec.c_str());
    return 2;
  }
  // Both flags resolve through the target registry; --gpu=PRESET is the
  // historical spelling of --target=PRESET. A resolved GPU-analytic
  // target also sets Options.Gpu, so influence heuristics and anything
  // else reading the machine model see the chosen preset.
  GpuModel Gpu;
  std::shared_ptr<const target::TargetModel> Target;
  {
    const bool FromTarget = !TargetSpec.empty();
    const std::string &Spec = FromTarget ? TargetSpec : GpuPreset;
    if (!Spec.empty()) {
      std::string Err;
      std::shared_ptr<target::TargetModel> T =
          target::resolveTarget(Spec, &Err);
      if (!T) {
        std::fprintf(stderr, "error: %s: %s\n",
                     FromTarget ? "--target" : "--gpu", Err.c_str());
        return 2;
      }
      if (const auto *G =
              dynamic_cast<const target::GpuAnalyticTarget *>(T.get()))
        Gpu = G->model();
      Target = std::move(T);
    }
  }

  bool BatchMode = Paths.size() > 1 || !OpsFilePath.empty();
  if (!TuneModelPath.empty() && AutotuneStrategy != "surrogate") {
    std::fprintf(stderr,
                 "error: --tune-model requires --autotune=surrogate\n");
    return 2;
  }
  std::unique_ptr<tune::TuningDb> Db;
  std::unique_ptr<tune::Autotuner> Tuner;
  if (!AutotuneStrategy.empty()) {
    bool Surrogate = AutotuneStrategy == "surrogate";
    if (!Surrogate && !tune::makeStrategy(AutotuneStrategy)) {
      std::string Known;
      for (const std::string &N : tune::strategyNames())
        Known += (Known.empty() ? "" : ", ") + N;
      Known += ", surrogate";
      std::fprintf(stderr,
                   "error: unknown --autotune strategy '%s' (known: %s)\n",
                   AutotuneStrategy.c_str(), Known.c_str());
      return 2;
    }
    if (Surrogate && TuneModelPath.empty()) {
      std::fprintf(stderr,
                   "error: --autotune=surrogate requires --tune-model\n");
      return 2;
    }
    std::shared_ptr<const model::GbStumpsModel> TuneModel;
    if (Surrogate) {
      auto Loaded = std::make_shared<model::GbStumpsModel>();
      std::string ModelError;
      if (!model::loadModel(TuneModelPath, *Loaded, &ModelError)) {
        std::fprintf(stderr, "error: %s\n", ModelError.c_str());
        return 1;
      }
      TuneModel = std::move(Loaded);
    }
    tune::SearchSpace Space = tune::searchSpaceByName(TuneSpaceName);
    if (Space.empty()) {
      std::fprintf(stderr,
                   "error: unknown --tune-space '%s' (known: default, "
                   "tiny)\n",
                   TuneSpaceName.c_str());
      return 2;
    }
    if (!TuningDbPath.empty())
      Db = std::make_unique<tune::TuningDb>(TuningDbPath);
    tune::Autotuner::Config TuneCfg;
    TuneCfg.Strategy = AutotuneStrategy;
    TuneCfg.Seed = TuneSeed;
    TuneCfg.MaxEvaluations = TuneBudget;
    // Batch workers already run concurrently; nest no second pool.
    TuneCfg.Jobs = BatchMode ? 1 : Jobs;
    TuneCfg.Space = std::move(Space);
    TuneCfg.Db = Db.get();
    TuneCfg.Model = std::move(TuneModel);
    TuneCfg.TopK = TuneTopK;
    Tuner = std::make_unique<tune::Autotuner>(std::move(TuneCfg));
  } else if (!TuningDbPath.empty()) {
    std::fprintf(stderr, "error: --tuning-db requires --autotune\n");
    return 2;
  }

  if (BatchMode) {
    PipelineOptions Options;
    Options.Validate = Validate;
    Options.Sched.UseFeautrierFallback = Feautrier;
    Options.Budget = Budget;
    Options.Gpu = Gpu;
    Options.Target = Target;
    Options.Cache = Cache.get();
    Options.Tuner = Tuner.get();
    int Rc = runBatch(Paths, Options, Jobs, Cache != nullptr, Artifacts,
                      ConfigArg, Stats, MetricsJsonPath);
    if (!TraceJsonPath.empty() && !writeTraceChecked(TraceJsonPath))
      return 1;
    return Rc;
  }
  std::string Error;
  std::optional<Kernel> K = loadKernel(Paths.front());

  std::printf("kernel '%s'\n\n%s\n", K->Name.c_str(),
              printKernel(*K).c_str());
  if (Artifacts.count("deps")) {
    std::printf("==== dependences ====\n");
    try {
      for (const DependenceRelation &D : computeDependences(*K))
        std::printf("%s\n", printDependence(*K, D).c_str());
    } catch (const RecoverableError &E) {
      std::printf("<unavailable: %s>\n", E.status().str().c_str());
    }
    std::printf("\n");
  }
  if (Artifacts.count("tree")) {
    try {
      InfluenceTree Tree = buildInfluenceTree(*K, InfluenceOptions());
      std::printf("==== influence constraint tree ====\n%s\n",
                  Tree.str(*K).c_str());
    } catch (const RecoverableError &E) {
      std::printf("==== influence constraint tree ====\n<unavailable: "
                  "%s>\n\n",
                  E.status().str().c_str());
    }
  }

  PipelineOptions Options;
  Options.Validate = Validate;
  Options.Sched.UseFeautrierFallback = Feautrier;
  Options.Budget = Budget;
  Options.Gpu = Gpu;
  Options.Target = Target;
  Options.Cache = Cache.get();
  Options.Tuner = Tuner.get();
  obs::ReportSink Sink;
  if (!MetricsJsonPath.empty() || Stats)
    Options.Sink = &Sink;
  OperatorReport R = runOperator(*K, Options);

  bool All = ConfigArg == "all";
  if (All || ConfigArg == "isl")
    printConfig(*K, "isl", R.Isl, Artifacts, Options);
  if (All || ConfigArg == "novec")
    printConfig(*K, "novec", R.Novec, Artifacts, Options);
  if (All || ConfigArg == "infl")
    printConfig(*K, "infl", R.Infl, Artifacts, Options);
  if (All || ConfigArg == "tvm")
    std::printf("==== tvm (per-statement launches) ====\ntime %.3f us "
                "over %u launches\n\n",
                R.Tvm.TimeUs, R.Tvm.Launches);

  std::printf("summary: influenced=%s vectorizable=%s speedup(infl/isl)="
              "%.2fx%s\n",
              R.Influenced ? "yes" : "no", R.VecEligible ? "yes" : "no",
              R.Infl.TimeUs > 0 ? R.Isl.TimeUs / R.Infl.TimeUs : 0.0,
              Validate ? (R.Validated ? " validated=yes" : " validated=NO")
                       : "");
  if (R.Tuned)
    std::printf("tuning: %s predicted %.3f us (%s, %s)\n",
                R.Tuning.Encoding.c_str(), R.Tuning.PredictedTimeUs,
                R.Tuning.Strategy.c_str(),
                R.Tuning.FromDb ? "db" : "search");
  if (R.degraded()) {
    std::printf("degradations (%zu):\n", R.Degradations.size());
    for (const DegradationEvent &E : R.Degradations)
      std::printf("  %-8s %s at %s: %s\n", E.Config.c_str(),
                  statusCodeName(E.Code), E.Site.c_str(),
                  E.Detail.c_str());
  }

  if (Stats) {
    std::printf("\n==== per-config stats ====\n%s",
                printStatsTable(R).c_str());
    std::printf("\n==== process metrics ====\n%s",
                obs::metrics().snapshot().table().c_str());
  }
  if (!MetricsJsonPath.empty() &&
      !Sink.writeJson(MetricsJsonPath, Error)) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  if (!TraceJsonPath.empty() && !writeTraceChecked(TraceJsonPath))
    return 1;
  return Validate && !R.Validated ? 1 : 0;
}
