//===- tests/ir_test.cpp - ir/ unit tests ---------------------------------===//

#include "ir/Builder.h"
#include "ir/Kernel.h"
#include "ir/Printer.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

TEST(Tensor, NumElementsAndStrides) {
  Tensor T;
  T.Name = "T";
  T.Shape = {2, 3, 4};
  EXPECT_EQ(T.numElements(), 24);
  EXPECT_EQ(T.strides(), (std::vector<Int>{12, 4, 1}));
  Tensor Scalar;
  Scalar.Shape = {1};
  EXPECT_EQ(Scalar.numElements(), 1);
  EXPECT_EQ(Scalar.strides(), (std::vector<Int>{1}));
}

TEST(OpKind, OperandCounts) {
  EXPECT_EQ(numOperands(OpKind::Assign), 1u);
  EXPECT_EQ(numOperands(OpKind::Add), 2u);
  EXPECT_EQ(numOperands(OpKind::Fma), 3u);
  EXPECT_EQ(numOperands(OpKind::MulSub), 3u);
  EXPECT_STREQ(opKindName(OpKind::Fma), "fma");
}

TEST(KernelBuilder, RunningExampleShape) {
  Kernel K = makeRunningExample(8);
  ASSERT_EQ(K.Stmts.size(), 2u);
  EXPECT_EQ(K.Stmts[0].Name, "X");
  EXPECT_EQ(K.Stmts[0].numIters(), 2u);
  EXPECT_EQ(K.Stmts[1].numIters(), 3u);
  EXPECT_EQ(K.Tensors.size(), 4u);
  EXPECT_EQ(K.verify(), "");
  // Betas: statement index as the first beta, zeros elsewhere.
  EXPECT_EQ(K.Stmts[0].OrigBeta, (std::vector<Int>{0, 0, 0}));
  EXPECT_EQ(K.Stmts[1].OrigBeta, (std::vector<Int>{1, 0, 0, 0}));
}

TEST(KernelBuilder, AccessRowsResolved) {
  Kernel K = makeRunningExample(8);
  const Statement &Y = K.Stmts[1];
  // D[k][i][j]: rows over (i, j, k, 1).
  const Access &D = Y.Reads[2];
  EXPECT_EQ(D.Indices[0], (IntVector{0, 0, 1, 0})); // k
  EXPECT_EQ(D.Indices[1], (IntVector{1, 0, 0, 0})); // i
  EXPECT_EQ(D.Indices[2], (IntVector{0, 1, 0, 0})); // j
}

TEST(KernelBuilder, IndexExprWithConstant) {
  KernelBuilder B("shifted");
  unsigned T = B.tensor("T", {10});
  unsigned O = B.tensor("O", {8});
  B.stmt("S", {{"i", 8}})
      .write(O, {"i"})
      .read(T, {IndexExpr("i") + 2})
      .op(OpKind::Assign);
  Kernel K = B.build();
  EXPECT_EQ(K.Stmts[0].Reads[0].Indices[0], (IntVector{1, 2}));
}

TEST(KernelVerify, CatchesBadArity) {
  Kernel K = makeElementwise(4, 4);
  K.Stmts[0].Reads.push_back(K.Stmts[0].Reads[0]); // Relu takes one read.
  EXPECT_NE(K.verify(), "");
}

TEST(KernelVerify, CatchesBadTensorRank) {
  Kernel K = makeElementwise(4, 4);
  K.Stmts[0].Write.Indices.pop_back();
  EXPECT_NE(K.verify(), "");
}

TEST(Printer, AffineRow) {
  std::vector<std::string> Iters = {"i", "j"};
  std::vector<std::string> Params = {"N"};
  EXPECT_EQ(printAffineRow({1, 0, 0, 0}, Iters, Params), "i");
  EXPECT_EQ(printAffineRow({0, 2, 0, -1}, Iters, Params), "2*j - 1");
  EXPECT_EQ(printAffineRow({0, 0, 1, 3}, Iters, Params), "N + 3");
  EXPECT_EQ(printAffineRow({0, 0, 0, 0}, Iters, Params), "0");
  EXPECT_EQ(printAffineRow({-1, 0, 0, 0}, Iters, Params), "-i");
}

TEST(Printer, KernelRendering) {
  Kernel K = makeRunningExample(4);
  std::string Text = printKernel(K);
  EXPECT_NE(Text.find("for (i = 0; i < 4; i++)"), std::string::npos);
  EXPECT_NE(Text.find("X: B[i][k] = relu(A[i][k]);"), std::string::npos);
  EXPECT_NE(Text.find("Y: C[i][j] = fma(C[i][j], B[i][k], D[k][i][j]);"),
            std::string::npos);
}

TEST(Printer, AccessRendering) {
  Kernel K = makeRunningExample(4);
  EXPECT_EQ(printAccess(K, K.Stmts[1], K.Stmts[1].Reads[2]), "D[k][i][j]");
}

TEST(Statement, AllAccessesWriteFirst) {
  Kernel K = makeRunningExample(4);
  std::vector<const Access *> All = K.Stmts[1].allAccesses();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_TRUE(All[0]->IsWrite);
  EXPECT_FALSE(All[1]->IsWrite);
}
