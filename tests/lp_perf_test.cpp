//===- tests/lp_perf_test.cpp - Differential tests for the fast LP core ---===//
//
// The rewritten solver stack (small-int rational fast path, flat
// tableau, warm-started lexmin) must be indistinguishable from the
// retained reference solver (lp/Reference.h: always-wide rationals,
// cold per-node solves) on every input: same status, same value, same
// point. These tests cross-check the two on seeded random LPs, bounded
// ILPs, and multi-level lexmin problems, and pin down the regressions
// the rewrite fixed (deep-branching stack blowout) and the new
// observability (wide-path counter, pivot histogram).
//
//===----------------------------------------------------------------------===//

#include "lp/Budget.h"
#include "lp/Ilp.h"
#include "lp/LexMin.h"
#include "lp/Reference.h"
#include "lp/Simplex.h"
#include "obs/Metrics.h"

#include <gtest/gtest.h>

#include <random>

using namespace pinj;

namespace {

/// Deterministic random problem generator. Coefficients are small so
/// most problems stay on the 64-bit fast path, with the wide path
/// exercised separately below.
class ProblemGen {
public:
  explicit ProblemGen(unsigned Seed) : Rng(Seed) {}

  LpProblem lp(unsigned NumVars, unsigned NumRows) {
    LpProblem P(NumVars);
    std::uniform_int_distribution<int> Coeff(-4, 4);
    std::uniform_int_distribution<int> Konst(-12, 12);
    std::uniform_int_distribution<int> KindPick(0, 5);
    for (unsigned R = 0; R != NumRows; ++R) {
      IntVector Row(NumVars);
      for (Int &C : Row)
        C = Coeff(Rng);
      Int K = Konst(Rng);
      switch (KindPick(Rng)) {
      case 0:
        P.addLe(std::move(Row), K);
        break;
      case 1:
        P.addEq(std::move(Row), K);
        break;
      default:
        P.addGe(std::move(Row), K);
        break;
      }
    }
    P.Objective.resize(NumVars);
    for (Int &C : P.Objective)
      C = Coeff(Rng);
    return P;
  }

  /// A bounded mixed ILP: every variable gets an upper bound, so the
  /// search tree is finite even for adversarial rows.
  IlpProblem ilp(unsigned NumVars, unsigned NumRows) {
    IlpProblem P(NumVars);
    P.Lp = lp(NumVars, NumRows);
    std::uniform_int_distribution<int> Bound(1, 9);
    std::uniform_int_distribution<int> IntPick(0, 3);
    for (unsigned V = 0; V != NumVars; ++V) {
      P.Lp.addUpperBound(V, Bound(Rng));
      if (IntPick(Rng) != 0)
        P.markInteger(V);
    }
    return P;
  }

  std::vector<LexObjective> levels(unsigned NumVars, unsigned NumLevels) {
    std::uniform_int_distribution<int> Coeff(-3, 3);
    std::vector<LexObjective> Levels;
    for (unsigned L = 0; L != NumLevels; ++L) {
      IntVector Row(NumVars);
      for (Int &C : Row)
        C = Coeff(Rng);
      Levels.push_back(LexObjective{std::move(Row)});
    }
    return Levels;
  }

private:
  std::mt19937 Rng;
};

void expectSameLp(const LpResult &Ref, const LpResult &Fast,
                  unsigned Seed) {
  ASSERT_EQ(Ref.Status, Fast.Status) << "seed " << Seed;
  if (Ref.Status != LpResult::Optimal)
    return;
  EXPECT_EQ(Ref.Value, Fast.Value) << "seed " << Seed;
  ASSERT_EQ(Ref.Point.size(), Fast.Point.size()) << "seed " << Seed;
  for (unsigned V = 0, E = Ref.Point.size(); V != E; ++V)
    EXPECT_EQ(Ref.Point[V], Fast.Point[V]) << "seed " << Seed << " var " << V;
}

void expectSameIlp(const IlpResult &Ref, const IlpResult &Fast,
                   unsigned Seed) {
  ASSERT_EQ(Ref.Status, Fast.Status) << "seed " << Seed;
  if (Ref.Status != IlpResult::Optimal)
    return;
  EXPECT_EQ(Ref.Value, Fast.Value) << "seed " << Seed;
  ASSERT_EQ(Ref.Point.size(), Fast.Point.size()) << "seed " << Seed;
  for (unsigned V = 0, E = Ref.Point.size(); V != E; ++V)
    EXPECT_EQ(Ref.Point[V], Fast.Point[V]) << "seed " << Seed << " var " << V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: fast solver vs reference solver
//===----------------------------------------------------------------------===//

TEST(LpDifferential, RandomLpsMatchReference) {
  unsigned Statuses[4] = {};
  for (unsigned Seed = 0; Seed != 100; ++Seed) {
    ProblemGen Gen(Seed);
    LpProblem P = Gen.lp(2 + Seed % 6, 2 + (Seed * 7) % 8);
    LpResult Ref = referenceSolveLp(P);
    LpResult Fast = solveLp(P);
    expectSameLp(Ref, Fast, Seed);
    ++Statuses[Ref.Status];
  }
  // The generator must cover the interesting statuses, or the test
  // silently decays into an optimal-only check.
  EXPECT_GT(Statuses[LpResult::Optimal], 0u);
  EXPECT_GT(Statuses[LpResult::Infeasible], 0u);
  EXPECT_GT(Statuses[LpResult::Unbounded], 0u);
}

TEST(LpDifferential, RandomIlpsMatchReference) {
  unsigned Optimal = 0, Infeasible = 0;
  for (unsigned Seed = 1000; Seed != 1100; ++Seed) {
    ProblemGen Gen(Seed);
    IlpProblem P = Gen.ilp(2 + Seed % 5, 3 + (Seed * 5) % 6);
    IlpResult Ref = referenceSolveIlp(P);
    IlpResult Fast = solveIlp(P);
    expectSameIlp(Ref, Fast, Seed);
    Ref.Status == IlpResult::Optimal ? ++Optimal : ++Infeasible;
  }
  EXPECT_GT(Optimal, 0u);
  EXPECT_GT(Infeasible, 0u);
}

TEST(LpDifferential, RandomLexMinMatchesReference) {
  // Multi-level problems exercise the warm-started intermediate levels
  // plus the exact final level.
  unsigned Optimal = 0;
  for (unsigned Seed = 2000; Seed != 2040; ++Seed) {
    ProblemGen Gen(Seed);
    unsigned NumVars = 3 + Seed % 4;
    IlpProblem P = Gen.ilp(NumVars, 3 + (Seed * 3) % 5);
    std::vector<LexObjective> Levels = Gen.levels(NumVars, 2 + Seed % 2);
    IlpResult Ref = referenceSolveLexMin(P, Levels);
    IlpResult Fast = solveLexMin(P, Levels);
    expectSameIlp(Ref, Fast, Seed);
    Optimal += Ref.Status == IlpResult::Optimal;
  }
  EXPECT_GT(Optimal, 5u);
}

//===----------------------------------------------------------------------===//
// Worklist branch and bound: deep branching regression
//===----------------------------------------------------------------------===//

namespace {

/// A problem with a deliberately deep and wide integer-infeasible
/// search tree: 2 * sum(x) == 2N+1 keeps every LP relaxation feasible
/// (sum(x) = N + 1/2 fits the bounds) but is integer-infeasible with an
/// even left side, and the symmetry forces branch and bound to split
/// intervals over and over along long paths (N=8 already takes ~36k
/// nodes to refute). The old recursive solver put a whole copied
/// LpProblem on the stack per node on paths like these; the worklist
/// rewrite must either prove infeasibility or stop cleanly on a node
/// budget.
IlpProblem deepBranchingProblem(unsigned NumVars) {
  IlpProblem P(NumVars);
  IntVector Row(NumVars, 2);
  P.Lp.addEq(std::move(Row),
             checkedNeg(2 * static_cast<Int>(NumVars) + 1));
  for (unsigned V = 0; V != NumVars; ++V) {
    P.Lp.addUpperBound(V, 8);
    P.markInteger(V);
  }
  return P;
}

} // namespace

TEST(IlpWorklist, DeepBranchingUnderNodeBudgetStopsCleanly) {
  // N=12 needs well over 200k nodes to refute; the tight budget must
  // surface as a clean BudgetExceeded, never a crash or a bogus proof.
  IlpProblem P = deepBranchingProblem(12);
  P.Lp.Objective.assign(P.numVars(), 0);
  P.Lp.Objective[0] = 1;
  SolverBudget B;
  B.MaxIlpNodes = 2000;
  budget::BudgetScope Scope(B);
  IlpResult R = solveIlp(P);
  EXPECT_EQ(R.Status, IlpResult::BudgetExceeded);
  EXPECT_LE(R.NodesExplored, 2000u);
}

TEST(IlpWorklist, SmallDeepChainSolvedExactly) {
  // The 3-variable instance (2(x0+x1+x2) == 7) is refutable quickly;
  // both solvers must agree on the proof.
  IlpProblem P = deepBranchingProblem(3);
  P.Lp.Objective.assign(P.numVars(), 0);
  P.Lp.Objective[0] = 1;
  IlpResult Ref = referenceSolveIlp(P);
  IlpResult Fast = solveIlp(P);
  expectSameIlp(Ref, Fast, 0);
  EXPECT_EQ(Fast.Status, IlpResult::Infeasible);
}

//===----------------------------------------------------------------------===//
// Rational fast path and observability
//===----------------------------------------------------------------------===//

TEST(RationalFastPath, ForcedWideAgreesWithFastPath) {
  // The same arithmetic with the wide path forced must produce
  // bit-identical canonical rationals.
  std::mt19937 Rng(7);
  std::uniform_int_distribution<long long> D(-1000000, 1000000);
  for (unsigned I = 0; I != 200; ++I) {
    Int A = D(Rng), B = D(Rng) | 1, C = D(Rng), E = D(Rng) | 1;
    Rational FastSum = Rational(A, B) + Rational(C, E);
    Rational FastProd = Rational(A, B) * Rational(C, E);
    Rational FastDiv = C != 0 ? Rational(A, B) / Rational(C, E) : Rational();
    rational::ScopedForceWide Wide;
    EXPECT_EQ(FastSum, Rational(A, B) + Rational(C, E));
    EXPECT_EQ(FastProd, Rational(A, B) * Rational(C, E));
    if (C != 0)
      EXPECT_EQ(FastDiv, Rational(A, B) / Rational(C, E));
  }
}

TEST(RationalFastPath, OverflowEscalatesAndCounts) {
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  // Numerator/denominator products overflow 64 bits, forcing the
  // escalation to 128-bit arithmetic.
  Rational Big(Int(3), Int(1) << 62);
  Rational R = Big * Rational(Int(5), Int(1) << 61);
  EXPECT_EQ(R.numerator(), Int(15));
  obs::MetricsSnapshot After = obs::metrics().snapshot();
  EXPECT_GT(After.counter("lp.rational_widepath"),
            Before.counter("lp.rational_widepath"));
}

TEST(LpObservability, PivotHistogramRecordsSolves) {
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  LpProblem Lp(2);
  Lp.addGe({1, 1}, -3);
  Lp.addUpperBound(0, 2);
  Lp.Objective = {1, 1};
  ASSERT_TRUE(solveLp(Lp).isOptimal());
  obs::MetricsSnapshot Delta = obs::metrics().snapshot().since(Before);
  const obs::HistogramSummary *H = Delta.histogram("lp.pivots_per_solve");
  ASSERT_NE(H, nullptr);
  EXPECT_GE(H->Count, 1u);
}
