//===- tests/fuzz_test.cpp - Randomized end-to-end property tests ---------===//
//
// Random fused operators (random depths, shapes, access permutations,
// broadcasts, reductions) and random influence trees, checked against
// the two strongest oracles in the project:
//   - the exact schedule-level validity checker (dimension-by-dimension
//     weak satisfaction with eventual strict carrying), and
//   - end-to-end execution: original order vs scheduled order on real
//     buffers.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"
#include "ir/Builder.h"
#include "pipeline/Pipeline.h"
#include "sched/Scheduler.h"
#include "support/FailPoint.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

/// Deterministic PRNG (xorshift-ish) for reproducible cases.
struct Rng {
  unsigned State;
  explicit Rng(unsigned Seed) : State(Seed * 2654435761u + 12345u) {}
  unsigned next(unsigned Bound) {
    State ^= State << 13;
    State ^= State >> 17;
    State ^= State << 5;
    return State % Bound;
  }
};

/// Builds a random fused operator. All extents share one value so any
/// iterator can index any tensor dimension; statements read inputs and
/// earlier temporaries through random iterator selections or constants,
/// and may accumulate into their own output (a reduction).
Kernel makeRandomKernel(unsigned Seed) {
  Rng R(Seed);
  Int N = 3 + R.next(3); // 3..5
  KernelBuilder B("fuzz" + std::to_string(Seed));

  struct TensorInfo {
    unsigned Id;
    unsigned Rank;
  };
  std::vector<TensorInfo> Tensors;
  unsigned NumInputs = 1 + R.next(2);
  for (unsigned T = 0; T != NumInputs; ++T) {
    unsigned Rank = 1 + R.next(3);
    std::vector<Int> Shape(Rank, N);
    Tensors.push_back({B.tensor("IN" + std::to_string(T), Shape), Rank});
  }

  unsigned NumStmts = 1 + R.next(3);
  static const char *const IterNames[3] = {"i", "j", "k"};
  for (unsigned S = 0; S != NumStmts; ++S) {
    unsigned Depth = 1 + R.next(3);
    std::vector<std::pair<std::string, Int>> Iters;
    for (unsigned D = 0; D != Depth; ++D)
      Iters.emplace_back(IterNames[D], N);

    unsigned WriteRank = 1 + R.next(Depth);
    std::vector<Int> WriteShape(WriteRank, N);
    unsigned Out =
        B.tensor("T" + std::to_string(S), std::move(WriteShape));

    auto randomIndex = [&](unsigned Rank) {
      std::vector<IndexExpr> Index;
      for (unsigned D = 0; D != Rank; ++D) {
        if (R.next(5) == 0)
          Index.push_back(IndexExpr(static_cast<Int>(R.next(N))));
        else
          Index.push_back(IndexExpr(IterNames[R.next(Depth)]));
      }
      return Index;
    };
    // The write uses distinct leading iterators so each iteration owns
    // its cell unless the statement is a reduction over the remaining
    // depth.
    std::vector<IndexExpr> WriteIndex;
    for (unsigned D = 0; D != WriteRank; ++D)
      WriteIndex.push_back(IndexExpr(IterNames[D]));

    bool Reduction = WriteRank < Depth && R.next(2) == 0;
    unsigned NumReads = Reduction ? 2 : 1 + R.next(2);
    OpKind Kind;
    if (Reduction)
      Kind = OpKind::Fma;
    else if (NumReads == 1)
      Kind = R.next(2) ? OpKind::Relu : OpKind::Neg;
    else
      Kind = R.next(2) ? OpKind::Add : OpKind::Mul;

    KernelBuilder &Stmt =
        B.stmt("S" + std::to_string(S), Iters).op(Kind);
    Stmt.write(Out, WriteIndex);
    if (Reduction)
      Stmt.read(Out, WriteIndex); // Accumulator.
    for (unsigned Read = 0; Read != NumReads; ++Read) {
      const TensorInfo &T = Tensors[R.next(Tensors.size())];
      Stmt.read(T.Id, randomIndex(T.Rank));
    }
    Tensors.push_back({Out, WriteRank});
  }
  return B.build();
}

/// Exact schedule validity (same oracle as sched_test).
bool scheduleRespects(const Kernel &K, const Schedule &S,
                      const DependenceRelation &D) {
  AffineSet Remaining = D.Rel;
  for (unsigned Dim = 0, E = S.numDims(); Dim != E; ++Dim) {
    if (Remaining.isEmpty())
      return true;
    IntVector Diff = S.differenceExpr(K, D, Dim);
    if (!Remaining.isAlwaysAtLeast(Diff, 0))
      return false;
    if (Remaining.isAlwaysAtLeast(Diff, 1))
      return true;
    Remaining.addEq(Diff);
  }
  return Remaining.isEmpty();
}

bool isValidSchedule(const Kernel &K, const Schedule &S) {
  for (const DependenceRelation &D : computeDependences(K))
    if (D.constrainsValidity() && !scheduleRespects(K, S, D))
      return false;
  return true;
}

/// A random influence tree: a couple of branches pinning random unit
/// rows at random depths (often unsatisfiable mid-branch, exercising
/// the fallback chain).
InfluenceTree makeRandomTree(const Kernel &K, unsigned Seed) {
  Rng R(Seed * 7919u + 11u);
  InfluenceTree Tree;
  unsigned Branches = 1 + R.next(3);
  for (unsigned Br = 0; Br != Branches; ++Br) {
    InfluenceNode *Node = nullptr;
    unsigned Depth = 1 + R.next(3);
    for (unsigned D = 0; D != Depth; ++D) {
      std::string Label =
          "b" + std::to_string(Br) + ".d" + std::to_string(D);
      Node = Node ? Node->addChild(Label) : Tree.root().addChild(Label);
      unsigned Stmt = R.next(K.Stmts.size());
      unsigned NumIters = K.Stmts[Stmt].numIters();
      unsigned Pinned = R.next(NumIters);
      for (unsigned Q = 0; Q != NumIters; ++Q)
        Node->Constraints.push_back(
            makeCoeffEquals(Stmt, D, Q, Q == Pinned ? 1 : 0));
      if (R.next(4) == 0)
        Node->RequireParallel = true;
    }
  }
  return Tree;
}

} // namespace

class KernelFuzz : public ::testing::TestWithParam<int> {};

TEST_P(KernelFuzz, BaselineScheduleValidAndSemanticsPreserved) {
  Kernel K = makeRandomKernel(static_cast<unsigned>(GetParam()));
  ASSERT_EQ(K.verify(), "") << K.Name;
  SchedulerOptions Options;
  Options.SerializeSccs = true;
  SchedulerResult R = scheduleKernel(K, Options);
  EXPECT_TRUE(isValidSchedule(K, R.Sched)) << K.Name;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
}

TEST_P(KernelFuzz, AutoInfluencedScheduleValidAndSemanticsPreserved) {
  Kernel K = makeRandomKernel(static_cast<unsigned>(GetParam()));
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  EXPECT_TRUE(isValidSchedule(K, R.Sched)) << K.Name;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
}

TEST_P(KernelFuzz, RandomTreeNeverBreaksValidity) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  Kernel K = makeRandomKernel(Seed);
  InfluenceTree Tree = makeRandomTree(K, Seed);
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  EXPECT_TRUE(isValidSchedule(K, R.Sched)) << K.Name;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
}

TEST_P(KernelFuzz, FeautrierModeValidAndSemanticsPreserved) {
  Kernel K = makeRandomKernel(static_cast<unsigned>(GetParam()));
  SchedulerOptions Options;
  Options.UseFeautrierFallback = true;
  SchedulerResult R = scheduleKernel(K, Options);
  EXPECT_TRUE(isValidSchedule(K, R.Sched)) << K.Name;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz, ::testing::Range(1, 41));

/// Budget-stress mode: random kernels under solver budgets far too small
/// for any real scheduling run, with a fail-point (cycled by seed) armed
/// on top. The pipeline must still return a report whose schedules
/// respect every dependence — the degradation ladder, not an error path,
/// is the contract under starvation.
class BudgetStress : public ::testing::TestWithParam<int> {
protected:
  void TearDown() override { failpoint::clearAll(); }
};

TEST_P(BudgetStress, PipelineAlwaysReturnsValidReport) {
  unsigned Seed = static_cast<unsigned>(GetParam());
  Kernel K = makeRandomKernel(Seed);

  PipelineOptions Options;
  Options.Validate = true;
  // No wall-clock limit: pivot/node caps keep the test deterministic.
  Options.Budget.MaxPivots = 10 + Seed % 60;
  Options.Budget.MaxIlpNodes = 1 + Seed % 6;

  const std::vector<const char *> &Sites = failpoint::allSites();
  const char *Site = Sites[Seed % Sites.size()];
  failpoint::activate(Site);
  OperatorReport R = runOperator(K, Options);
  failpoint::clearAll();

  EXPECT_TRUE(isValidSchedule(K, R.Isl.Sched)) << K.Name << " " << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Novec.Sched)) << K.Name << " " << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Infl.Sched)) << K.Name << " " << Site;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Infl.Sched))
      << K.Name << " " << Site;
  // Anything that ran below full fidelity must be on the record.
  if (!R.Isl.Outcome.ok() || !R.Novec.Outcome.ok() || !R.Infl.Outcome.ok())
    EXPECT_TRUE(R.degraded()) << K.Name << " " << Site;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetStress, ::testing::Range(1, 31));
