//===- tests/ops_test.cpp - operator library and network suites -----------===//

#include "ops/Networks.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// Factory sanity
//===----------------------------------------------------------------------===//

TEST(OpFactory, AllFamiliesVerify) {
  EXPECT_EQ(makeFusedMulSubMulTensorAdd(16).verify(), "");
  EXPECT_EQ(makeElementwiseChain("c", 32, 33, 5, 1).verify(), "");
  EXPECT_EQ(makeBiasActivation("b", 32, 64, 2).verify(), "");
  EXPECT_EQ(makeHostileOrderCopy("h", 32, 64, 3).verify(), "");
  EXPECT_EQ(makeHostileOrderPermute3D("p", 8, 16, 32, 4).verify(), "");
  EXPECT_EQ(makeMiddlePermuted3D("m", 8, 16, 32, 5).verify(), "");
  EXPECT_EQ(makeReduceTail("r", 16, 32, 6).verify(), "");
  EXPECT_EQ(makeProducerConsumerPair("pc", 16, 32, 7).verify(), "");
}

TEST(OpFactory, ChainLengthAndSeedsVaryOps) {
  Kernel A = makeElementwiseChain("a", 16, 17, 4, 1);
  Kernel B = makeElementwiseChain("b", 16, 17, 4, 2);
  EXPECT_EQ(A.Stmts.size(), 4u);
  bool Differ = false;
  for (unsigned S = 0; S != 4; ++S)
    Differ |= A.Stmts[S].Kind != B.Stmts[S].Kind ||
              A.Stmts[S].Reads.size() != B.Stmts[S].Reads.size();
  EXPECT_TRUE(Differ);
}

//===----------------------------------------------------------------------===//
// Family classification under the pipeline (these invariants shape the
// Table II reproduction; see ops/Networks.h).
//===----------------------------------------------------------------------===//

namespace {

OperatorReport report(const Kernel &K) {
  PipelineOptions Options;
  return runOperator(K, Options);
}

} // namespace

TEST(FamilyClassification, OddChainNotInfluencedNotVec) {
  OperatorReport R = report(makeElementwiseChain("c", 64, 63, 4, 9));
  EXPECT_FALSE(R.Influenced);
  EXPECT_FALSE(R.VecEligible);
}

TEST(FamilyClassification, RunningExampleInfluencedAndVec) {
  OperatorReport R = report(makeFusedMulSubMulTensorAdd(32));
  EXPECT_TRUE(R.Influenced);
  EXPECT_TRUE(R.VecEligible);
}

TEST(FamilyClassification, HostileCopyInfluencedVecAndFaster) {
  OperatorReport R = report(makeHostileOrderCopy("h", 128, 256, 9));
  EXPECT_TRUE(R.Influenced);
  EXPECT_TRUE(R.VecEligible);
  EXPECT_LT(R.Infl.TimeUs, R.Isl.TimeUs * 0.7);
}

TEST(FamilyClassification, OddHostileInfluencedNotVec) {
  OperatorReport R = report(makeHostileOrderCopy("h", 128, 255, 9));
  EXPECT_TRUE(R.Influenced);
  EXPECT_FALSE(R.VecEligible);
  // Reordering alone still helps (the "novec" effect).
  EXPECT_LT(R.Novec.TimeUs, R.Isl.TimeUs);
}

TEST(FamilyClassification, MiddlePermutedInfluencedNearNeutral) {
  OperatorReport R = report(makeMiddlePermuted3D("m", 16, 28, 64, 9));
  EXPECT_TRUE(R.Influenced);
  EXPECT_LE(R.Infl.TimeUs, R.Isl.TimeUs * 1.1);
  EXPECT_GE(R.Infl.TimeUs, R.Isl.TimeUs * 0.7);
}

TEST(FamilyClassification, Hostile3DInfluencedAndFaster) {
  OperatorReport R = report(makeHostileOrderPermute3D("p", 16, 32, 128, 9));
  EXPECT_TRUE(R.Influenced);
  EXPECT_LT(R.Infl.TimeUs, R.Isl.TimeUs);
}

//===----------------------------------------------------------------------===//
// Network suites: Table II operator counts
//===----------------------------------------------------------------------===//

struct SuiteCounts {
  const char *Name;
  unsigned Total;
  unsigned Vec;
  unsigned Infl;
};

class NetworkCounts : public ::testing::TestWithParam<SuiteCounts> {};

TEST_P(NetworkCounts, MatchesTable2) {
  SuiteCounts Expected = GetParam();
  NetworkSuite Suite = makeNetworkSuite(Expected.Name);
  EXPECT_EQ(Suite.Operators.size(), Expected.Total);
  for (const Kernel &K : Suite.Operators)
    EXPECT_EQ(K.verify(), "") << K.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, NetworkCounts,
    ::testing::Values(SuiteCounts{"bert", 109, 53, 53},
                      SuiteCounts{"lstm", 4, 3, 3},
                      SuiteCounts{"mobilenetv2", 18, 16, 16},
                      SuiteCounts{"resnet50", 17, 10, 12},
                      SuiteCounts{"resnet101", 22, 14, 16},
                      SuiteCounts{"resnext50", 33, 21, 22},
                      SuiteCounts{"vgg16", 14, 9, 10}),
    [](const ::testing::TestParamInfo<SuiteCounts> &Info) {
      return std::string(Info.param.Name);
    });

TEST(NetworkSuites, AllNamesBuild) {
  for (const std::string &Name : allNetworkNames()) {
    NetworkSuite Suite = makeNetworkSuite(Name);
    EXPECT_FALSE(Suite.Operators.empty()) << Name;
    EXPECT_FALSE(Suite.Dataset.empty()) << Name;
  }
}

/// The full influenced/vec classification of the small suites (the BERT
/// suite is exercised by the Table II bench; here we keep test time
/// bounded).
TEST(NetworkSuites, LstmClassification) {
  NetworkSuite Suite = makeNetworkSuite("lstm");
  unsigned Infl = 0, Vec = 0;
  for (const Kernel &K : Suite.Operators) {
    OperatorReport R = report(K);
    Infl += R.Influenced;
    Vec += R.Influenced && R.VecEligible;
  }
  EXPECT_EQ(Infl, 3u);
  EXPECT_EQ(Vec, 3u);
}

TEST(NetworkSuites, ResNet50Classification) {
  NetworkSuite Suite = makeNetworkSuite("resnet50");
  unsigned Infl = 0, Vec = 0;
  for (const Kernel &K : Suite.Operators) {
    OperatorReport R = report(K);
    Infl += R.Influenced;
    Vec += R.Influenced && R.VecEligible;
  }
  EXPECT_EQ(Infl, 12u);
  EXPECT_EQ(Vec, 10u);
}
