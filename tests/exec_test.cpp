//===- tests/exec_test.cpp - interpreter and semantic validation ----------===//

#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"

#include <algorithm>
#include <cmath>
#include "sched/Scheduler.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

SchedulerOptions baseline() {
  SchedulerOptions O;
  O.SerializeSccs = true;
  return O;
}

} // namespace

TEST(Interpreter, MakeInputsDeterministic) {
  Kernel K = makeElementwise(4, 4);
  ExecBuffers A = makeInputs(K, 7);
  ExecBuffers B = makeInputs(K, 7);
  EXPECT_TRUE(buffersAlmostEqual(A, B, 0.0));
  ExecBuffers C = makeInputs(K, 8);
  EXPECT_FALSE(buffersAlmostEqual(A, C, 0.0));
}

TEST(Interpreter, OriginalExecutionElementwise) {
  Kernel K = makeElementwise(2, 3);
  ExecBuffers Buffers = makeInputs(K, 1);
  std::vector<double> In = Buffers.Tensors[0];
  runOriginal(K, Buffers);
  for (unsigned I = 0; I != 6; ++I)
    EXPECT_DOUBLE_EQ(Buffers.Tensors[1][I], std::max(In[I], 0.0));
}

TEST(Interpreter, OriginalExecutionTranspose) {
  Kernel K = makeTranspose(3, 4);
  ExecBuffers Buffers = makeInputs(K, 2);
  std::vector<double> In = Buffers.Tensors[0]; // IN is 4x3.
  runOriginal(K, Buffers);
  for (Int I = 0; I != 3; ++I)
    for (Int J = 0; J != 4; ++J)
      EXPECT_DOUBLE_EQ(Buffers.Tensors[1][I * 4 + J], In[J * 3 + I]);
}

TEST(Interpreter, ReductionAccumulates) {
  Kernel K = makeRowReduction(2, 4);
  ExecBuffers Buffers = makeInputs(K, 3);
  std::vector<double> In = Buffers.Tensors[0];
  std::vector<double> Out0 = Buffers.Tensors[2];
  runOriginal(K, Buffers);
  for (Int I = 0; I != 2; ++I) {
    double Expected = Out0[I];
    for (Int J = 0; J != 4; ++J)
      Expected += In[I * 4 + J] * Buffers.Tensors[1][0];
    EXPECT_NEAR(Buffers.Tensors[2][I], Expected, 1e-12);
  }
}

TEST(Interpreter, ScheduledMatchesOriginalBaseline) {
  for (Kernel K : {makeRunningExample(6), makeProducerConsumer(5, 7),
                   makeRowReduction(4, 6), makeTranspose(5, 5)}) {
    SchedulerResult R = scheduleKernel(K, baseline());
    EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
  }
}

TEST(Interpreter, ScheduledMatchesOriginalInfluenced) {
  for (Kernel K : {makeRunningExample(8), makeProducerConsumer(4, 8),
                   makeRowReduction(4, 8)}) {
    InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
    SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
    EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched)) << K.Name;
  }
}

TEST(Interpreter, DetectsBrokenSchedule) {
  // Reverse the producer/consumer order: consumer before producer reads
  // stale values, which the comparison must detect.
  Kernel K = makeProducerConsumer(4, 4);
  SchedulerResult R = scheduleKernel(K, baseline());
  Schedule Broken = R.Sched;
  // Swap the scalar ordering: P gets 1, Q gets 0.
  Broken.Transforms[0].at(0, Broken.Transforms[0].numCols() - 1) = 1;
  Broken.Transforms[1].at(0, Broken.Transforms[1].numCols() - 1) = 0;
  EXPECT_FALSE(scheduleIsSemanticallyEqual(K, Broken));
}

TEST(Interpreter, BuffersAlmostEqualTolerance) {
  Kernel K = makeElementwise(2, 2);
  ExecBuffers A = makeInputs(K, 1);
  ExecBuffers B = A;
  B.Tensors[0][0] += 1e-12;
  EXPECT_TRUE(buffersAlmostEqual(A, B, 1e-9));
  B.Tensors[0][0] += 1.0;
  EXPECT_FALSE(buffersAlmostEqual(A, B, 1e-9));
}

//===----------------------------------------------------------------------===//
// Property sweep: random seeds, every family, baseline and influenced
// schedules preserve semantics.
//===----------------------------------------------------------------------===//

class SemanticsProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SemanticsProperty, SchedulePreservesSemantics) {
  int Family = std::get<0>(GetParam());
  unsigned Seed = static_cast<unsigned>(std::get<1>(GetParam()));
  Kernel K = [&] {
    switch (Family) {
    case 0:
      return makeElementwise(4, 8);
    case 1:
      return makeTranspose(6, 4);
    case 2:
      return makeProducerConsumer(4, 8);
    case 3:
      return makeRowReduction(3, 8);
    default:
      return makeRunningExample(8);
    }
  }();
  SchedulerResult Base = scheduleKernel(K, baseline());
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, Base.Sched, Seed));
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult Infl = scheduleKernel(K, SchedulerOptions(), &Tree);
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, Infl.Sched, Seed));
}

INSTANTIATE_TEST_SUITE_P(FamiliesBySeed, SemanticsProperty,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 2, 3)));

//===----------------------------------------------------------------------===//
// Empirical validation of the parallel marking: iterations of a
// dimension marked IsParallel may execute in any order, so remapping
// that dimension's date through a random permutation must not change
// the result.
//===----------------------------------------------------------------------===//

namespace {

/// Executes K under S with every parallel dimension's date values
/// shuffled by a seeded permutation, then compares with the original
/// order.
bool parallelMarksHold(const Kernel &K, const Schedule &S, unsigned Seed) {
  // Permute date values per parallel dim: v -> (a*v + b) mod M with a
  // coprime to M is a simple seeded bijection on [0, M).
  std::vector<Int> Extent(S.numDims(), 0);
  for (unsigned Stmt = 0; Stmt != K.Stmts.size(); ++Stmt)
    for (unsigned D = 0; D != S.numDims(); ++D)
      for (unsigned I = 0; I != K.Stmts[Stmt].numIters(); ++I)
        if (S.Transforms[Stmt].at(D, I) != 0)
          Extent[D] = std::max(Extent[D], K.Stmts[Stmt].Extents[I]);

  struct Instance {
    IntVector Date;
    unsigned Stmt;
    IntVector Iters;
  };
  std::vector<Instance> Instances;
  for (unsigned Stmt = 0; Stmt != K.Stmts.size(); ++Stmt) {
    const Statement &St = K.Stmts[Stmt];
    IntVector Iters(St.numIters(), 0);
    for (;;) {
      IntVector Date = S.apply(K, Stmt, Iters, {});
      for (unsigned D = 0; D != S.numDims(); ++D) {
        if (!S.Dims[D].IsParallel || Extent[D] <= 1)
          continue;
        Int M = Extent[D];
        Int A = 1 + 2 * ((Seed + D) % 5); // Odd: coprime to 2^k; for
        while (gcdInt(A, M) != 1)         // other M walk to a unit.
          A += 2;
        Date[D] = (A * Date[D] + Seed % M) % M;
      }
      Instances.push_back({Date, Stmt, Iters});
      unsigned D = St.numIters();
      bool Done = true;
      while (D-- > 0) {
        if (++Iters[D] < St.Extents[D]) {
          Done = false;
          break;
        }
        Iters[D] = 0;
      }
      if (Done)
        break;
    }
  }
  std::stable_sort(Instances.begin(), Instances.end(),
                   [](const Instance &A, const Instance &B) {
                     if (A.Date != B.Date)
                       return A.Date < B.Date;
                     if (A.Stmt != B.Stmt)
                       return A.Stmt < B.Stmt;
                     return A.Iters < B.Iters;
                   });
  ExecBuffers Reference = makeInputs(K, Seed);
  ExecBuffers Shuffled = Reference;
  runOriginal(K, Reference);
  // Execute the instances in the permuted date order with a local
  // evaluator mirroring exec/Interpreter's statement semantics.
  for (const auto &I : Instances) {
    const Statement &St = K.Stmts[I.Stmt];
    double Reads[3] = {0, 0, 0};
    auto flatten = [&](const Access &A) {
      const Tensor &T = K.Tensors[A.TensorId];
      std::vector<Int> Strides = T.strides();
      Int Offset = 0;
      for (unsigned D = 0; D != A.Indices.size(); ++D) {
        Int Index = A.Indices[D].back();
        for (unsigned It = 0; It != St.numIters(); ++It)
          Index += A.Indices[D][It] * I.Iters[It];
        Offset += Index * Strides[D];
      }
      return Offset;
    };
    for (unsigned R = 0; R != St.Reads.size(); ++R)
      Reads[R] = Shuffled.Tensors[St.Reads[R].TensorId]
                     [flatten(St.Reads[R])];
    double Value = 0;
    switch (St.Kind) {
    case OpKind::Assign: Value = Reads[0]; break;
    case OpKind::Add: Value = Reads[0] + Reads[1]; break;
    case OpKind::Sub: Value = Reads[0] - Reads[1]; break;
    case OpKind::Mul: Value = Reads[0] * Reads[1]; break;
    case OpKind::Div: Value = Reads[0] / Reads[1]; break;
    case OpKind::Max: Value = std::max(Reads[0], Reads[1]); break;
    case OpKind::Min: Value = std::min(Reads[0], Reads[1]); break;
    case OpKind::Relu: Value = std::max(Reads[0], 0.0); break;
    case OpKind::Exp: Value = std::exp(Reads[0]); break;
    case OpKind::Rsqrt:
      Value = 1.0 / std::sqrt(std::abs(Reads[0]) + 1.0);
      break;
    case OpKind::Neg: Value = -Reads[0]; break;
    case OpKind::Fma: Value = Reads[0] + Reads[1] * Reads[2]; break;
    case OpKind::MulSub: Value = (Reads[0] - Reads[1]) * Reads[2]; break;
    }
    Shuffled.Tensors[St.Write.TensorId][flatten(St.Write)] = Value;
  }
  return buffersAlmostEqual(Reference, Shuffled, 1e-6);
}

} // namespace

class ParallelMarking
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelMarking, ShuffledParallelDimsPreserveSemantics) {
  int Family = std::get<0>(GetParam());
  unsigned Seed = static_cast<unsigned>(std::get<1>(GetParam()));
  Kernel K = [&] {
    switch (Family) {
    case 0:
      return makeElementwise(5, 7);
    case 1:
      return makeProducerConsumer(5, 6);
    case 2:
      return makeRowReduction(4, 6);
    default:
      return makeRunningExample(6);
    }
  }();
  SchedulerResult R = scheduleKernel(K, baseline());
  EXPECT_TRUE(parallelMarksHold(K, R.Sched, Seed)) << K.Name;
}

INSTANTIATE_TEST_SUITE_P(Families, ParallelMarking,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(3, 11)));
