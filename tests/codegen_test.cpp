//===- tests/codegen_test.cpp - codegen/ unit tests -----------------------===//

#include "codegen/Ast.h"
#include "codegen/Mapping.h"
#include "codegen/Vectorizer.h"
#include "influence/TreeBuilder.h"
#include "sched/Scheduler.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

SchedulerOptions baseline() {
  SchedulerOptions O;
  O.SerializeSccs = true;
  return O;
}

Schedule influencedSchedule(const Kernel &K) {
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  return R.Sched;
}

} // namespace

//===----------------------------------------------------------------------===//
// Row analysis
//===----------------------------------------------------------------------===//

TEST(RowAnalysis, UnitZeroAndShift) {
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baseline());
  // Dim 0 is the scalar SCC dimension: zero rows with shifts 0 and 1.
  RowShape X0 = analyzeRow(K, R.Sched, 0, 0);
  EXPECT_EQ(X0.Kind, RowShape::Zero);
  EXPECT_EQ(X0.Shift, 0);
  RowShape Y0 = analyzeRow(K, R.Sched, 1, 0);
  EXPECT_EQ(Y0.Kind, RowShape::Zero);
  EXPECT_EQ(Y0.Shift, 1);
  // Dim 1 binds i for both statements.
  RowShape X1 = analyzeRow(K, R.Sched, 0, 1);
  EXPECT_EQ(X1.Kind, RowShape::Unit);
  EXPECT_EQ(X1.Iter, 0u);
  EXPECT_TRUE(isGeneratableSchedule(K, R.Sched));
}

TEST(RowAnalysis, DetectsNonUnitRows) {
  Kernel K = makeElementwise(4, 4);
  SchedulerResult R = scheduleKernel(K, baseline());
  Schedule Bad = R.Sched;
  Bad.Transforms[0].at(0, 1) = 1; // Row becomes i + j.
  EXPECT_EQ(analyzeRow(K, Bad, 0, 0).Kind, RowShape::Other);
  EXPECT_FALSE(isGeneratableSchedule(K, Bad));
}

//===----------------------------------------------------------------------===//
// Mapping
//===----------------------------------------------------------------------===//

TEST(Mapping, ElementwiseThreadsAndBlocks) {
  Kernel K = makeElementwise(128, 256);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  ASSERT_EQ(M.Dims.size(), 2u);
  // Innermost parallel dim j becomes threads (256 <= 1024), then i
  // partially (1024/256 = 4 lanes).
  EXPECT_EQ(M.Dims[1].Role, DimRole::Thread);
  EXPECT_EQ(M.Dims[1].ThreadCount, 256);
  EXPECT_EQ(M.Dims[0].Role, DimRole::Thread);
  EXPECT_EQ(M.Dims[0].ThreadCount, 4);
  EXPECT_EQ(M.Dims[0].BlockFactor, 32);
  EXPECT_EQ(M.threadsPerBlock(), 1024);
  EXPECT_EQ(M.numBlocks(), 32);
}

TEST(Mapping, ReductionStaysSequential) {
  Kernel K = makeRowReduction(64, 128);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  EXPECT_EQ(M.Dims[0].Role, DimRole::Thread); // i parallel.
  EXPECT_EQ(M.Dims[1].Role, DimRole::Seq);    // j reduction.
}

TEST(Mapping, VectorDimStripMinedToLanes) {
  Kernel K = makeRunningExample(64);
  Schedule S = influencedSchedule(K);
  ASSERT_GT(finalizeVectorMarks(K, S), 0u);
  MappedKernel M = mapToGpu(K, S);
  // Dim 2 (j) is the vector dim: 64/4 = 16 lane groups.
  EXPECT_EQ(M.Dims[2].Role, DimRole::Vector);
  EXPECT_EQ(M.Dims[2].VectorWidth, 4u);
  EXPECT_EQ(M.Dims[2].ThreadCount, 16);
  // Scalar dim keeps its role.
  EXPECT_EQ(M.Dims[3].Role, DimRole::Scalar);
  // Iterator bindings recorded.
  EXPECT_EQ(M.IterDim[1][1], 2); // Y's j -> dim 2.
}

TEST(Mapping, IterDimBindings) {
  Kernel K = makeElementwise(8, 8);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  EXPECT_EQ(M.IterDim[0][0], 0);
  EXPECT_EQ(M.IterDim[0][1], 1);
}

//===----------------------------------------------------------------------===//
// Vector mark finalization
//===----------------------------------------------------------------------===//

TEST(Vectorizer, DisableClearsMarks) {
  Kernel K = makeRunningExample(64);
  Schedule S = influencedSchedule(K);
  EXPECT_EQ(finalizeVectorMarks(K, S, /*DisableVectorization=*/true), 0u);
  for (const DimInfo &D : S.Dims) {
    EXPECT_TRUE(D.VectorStmts.empty());
    EXPECT_EQ(D.VectorWidth, 0u);
  }
}

TEST(Vectorizer, KeepsValidMark) {
  Kernel K = makeRunningExample(64);
  Schedule S = influencedSchedule(K);
  EXPECT_EQ(finalizeVectorMarks(K, S), 1u);
  EXPECT_TRUE(S.Dims[2].isVectorFor(1));
  EXPECT_EQ(S.Dims[2].VectorWidth, 4u);
}

TEST(Vectorizer, NarrowsWidthForNonDivisibleExtent) {
  // Extent 6: float4 impossible, float2 fits.
  Kernel K = makeElementwise(8, 6);
  Schedule S = influencedSchedule(K);
  unsigned Marks = finalizeVectorMarks(K, S);
  if (Marks > 0) {
    for (const DimInfo &D : S.Dims) {
      if (!D.VectorStmts.empty()) {
        EXPECT_EQ(D.VectorWidth, 2u);
      }
    }
  }
}

TEST(Vectorizer, RejectsLoopCarriedDimension) {
  // Hand-mark the reduction dimension as vector: finalize must clear it.
  Kernel K = makeRowReduction(8, 16);
  SchedulerResult R = scheduleKernel(K, baseline());
  Schedule S = R.Sched;
  S.Dims[1].VectorWidth = 4;
  S.Dims[1].VectorStmts = {0};
  EXPECT_EQ(finalizeVectorMarks(K, S), 0u);
  EXPECT_EQ(S.Dims[1].VectorWidth, 0u);
}

TEST(Vectorizer, RejectsNonInnermostDimension) {
  Kernel K = makeElementwise(16, 16);
  SchedulerResult R = scheduleKernel(K, baseline());
  Schedule S = R.Sched;
  S.Dims[0].VectorWidth = 4; // i is not the innermost loop.
  S.Dims[0].VectorStmts = {0};
  EXPECT_EQ(finalizeVectorMarks(K, S), 0u);
}

//===----------------------------------------------------------------------===//
// AST and printers
//===----------------------------------------------------------------------===//

TEST(Ast, RunningExampleBaselineStructure) {
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  std::string Text = printAst(M);
  // Two distributed nests: X's appears before Y's.
  size_t XPos = Text.find("X:");
  size_t YPos = Text.find("Y:");
  ASSERT_NE(XPos, std::string::npos);
  ASSERT_NE(YPos, std::string::npos);
  EXPECT_LT(XPos, YPos);
}

TEST(Ast, RunningExampleInfluencedStructure) {
  Kernel K = makeRunningExample(64);
  Schedule S = influencedSchedule(K);
  finalizeVectorMarks(K, S);
  MappedKernel M = mapToGpu(K, S);
  std::string Text = printAst(M);
  // The influenced nest fuses X and Y: X before the vectorized loop.
  size_t XPos = Text.find("X:");
  size_t VecPos = Text.find("forvec");
  size_t YPos = Text.find("Y:");
  ASSERT_NE(XPos, std::string::npos);
  ASSERT_NE(VecPos, std::string::npos);
  ASSERT_NE(YPos, std::string::npos);
  EXPECT_LT(XPos, VecPos);
  EXPECT_LT(VecPos, YPos);
}

TEST(Ast, MixedDimPlacesProducerBeforeLoop) {
  Kernel K = makeRunningExample(8);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  MappedKernel M = mapToGpu(K, R.Sched);
  std::unique_ptr<AstNode> Root = buildAst(M);
  ASSERT_NE(Root, nullptr);
}

TEST(CudaPrinter, ContainsBindingsAndVectorTypes) {
  Kernel K = makeRunningExample(64);
  Schedule S = influencedSchedule(K);
  finalizeVectorMarks(K, S);
  MappedKernel M = mapToGpu(K, S);
  std::string Cuda = printCuda(M);
  EXPECT_NE(Cuda.find("__global__"), std::string::npos);
  EXPECT_NE(Cuda.find("threadIdx"), std::string::npos);
  EXPECT_NE(Cuda.find("float4"), std::string::npos);
  EXPECT_NE(Cuda.find("fused_mul_sub_mul_tensoradd_kernel"),
            std::string::npos);
}

TEST(CudaPrinter, ScalarKernelHasNoVectorTypes) {
  Kernel K = makeRowReduction(64, 64);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  std::string Cuda = printCuda(M);
  EXPECT_EQ(Cuda.find("float4"), std::string::npos);
  EXPECT_NE(Cuda.find("for (int j"), std::string::npos);
}
