//===- tests/pipeline_test.cpp - end-to-end pipeline tests ----------------===//

#include "pipeline/Pipeline.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

TEST(Pipeline, RunningExampleEndToEnd) {
  Kernel K = makeRunningExample(64);
  PipelineOptions Options;
  Options.Validate = true;
  OperatorReport R = runOperator(K, Options);
  EXPECT_TRUE(R.Validated);
  EXPECT_TRUE(R.Influenced);
  EXPECT_TRUE(R.VecEligible);
  EXPECT_GT(R.Isl.TimeUs, 0);
  EXPECT_GT(R.Tvm.TimeUs, 0);
  // TVM pays one launch per statement.
  EXPECT_EQ(R.Tvm.Launches, 2u);
}

TEST(Pipeline, BadOrderCopyShapesLikeTransposeRow) {
  // The transpose-heavy pattern of Table II: infl beats isl clearly,
  // novec sits between, tvm (hand-tuned layout) also beats isl.
  Kernel K = makeBadOrderCopy(256, 256);
  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);
  EXPECT_TRUE(R.Influenced);
  EXPECT_TRUE(R.VecEligible);
  EXPECT_LT(R.Infl.TimeUs, R.Isl.TimeUs * 0.7);
  EXPECT_LT(R.Novec.TimeUs, R.Isl.TimeUs);
  EXPECT_LE(R.Infl.TimeUs, R.Novec.TimeUs * 1.01);
  EXPECT_LT(R.Tvm.TimeUs, R.Isl.TimeUs);
}

TEST(Pipeline, ElementwiseNearParity) {
  // Element-wise operators are already coalesced under isl: influence
  // keeps the schedule (or matches its cost) and vectorization gives at
  // most a modest gain -- the BERT-like row of Table II.
  Kernel K = makeElementwise(256, 256);
  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);
  EXPECT_LE(R.Infl.TimeUs, R.Isl.TimeUs * 1.05);
  EXPECT_GE(R.Infl.TimeUs, R.Isl.TimeUs * 0.5);
}

TEST(Pipeline, FusionBeatsPerStatementLaunches) {
  // A chain of element-wise statements: one fused kernel vs one launch
  // per statement; the proxy pays launch overhead and intermediate
  // traffic (the BERT 0.18x pattern).
  KernelBuilder B("chain4");
  unsigned T0 = B.tensor("T0", {64, 64});
  unsigned T1 = B.tensor("T1", {64, 64});
  unsigned T2 = B.tensor("T2", {64, 64});
  unsigned T3 = B.tensor("T3", {64, 64});
  unsigned T4 = B.tensor("T4", {64, 64});
  unsigned Prev = T0;
  for (unsigned S = 0; S != 4; ++S) {
    unsigned Next = (S == 0) ? T1 : (S == 1) ? T2 : (S == 2) ? T3 : T4;
    B.stmt("S" + std::to_string(S), {{"i", 64}, {"j", 64}})
        .write(Next, {"i", "j"})
        .read(Prev, {"i", "j"})
        .op(OpKind::Relu);
    Prev = Next;
  }
  Kernel K = B.build();
  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);
  EXPECT_EQ(R.Tvm.Launches, 4u);
  EXPECT_GT(R.Tvm.TimeUs, R.Isl.TimeUs * 2.0);
}

TEST(Pipeline, ReductionValidatedAndSequentialDimRespected) {
  Kernel K = makeRowReduction(32, 64);
  PipelineOptions Options;
  Options.Validate = true;
  OperatorReport R = runOperator(K, Options);
  EXPECT_TRUE(R.Validated);
  EXPECT_GT(R.Infl.TimeUs, 0);
}

TEST(Pipeline, RenderCudaProducesSource) {
  Kernel K = makeRunningExample(64);
  PipelineOptions Options;
  SchedulerResult R = scheduleInfluenced(K, Options);
  std::string Cuda = renderCuda(K, R.Sched, Options.Mapping);
  EXPECT_NE(Cuda.find("__global__"), std::string::npos);
}

TEST(Pipeline, ValidationFlagOffByDefault) {
  Kernel K = makeElementwise(8, 8);
  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);
  EXPECT_FALSE(R.Validated);
}

//===----------------------------------------------------------------------===//
// Property sweep: every family at several sizes is valid end to end and
// the influenced configuration never loses badly to the reference.
//===----------------------------------------------------------------------===//

class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineProperty, InfluenceNeverFarWorse) {
  int Family = std::get<0>(GetParam());
  Int N = std::get<1>(GetParam());
  Kernel K = [&] {
    switch (Family) {
    case 0:
      return makeElementwise(N, N);
    case 1:
      return makeBadOrderCopy(N, N);
    case 2:
      return makeProducerConsumer(N, N);
    case 3:
      return makeRowReduction(N, N);
    default:
      return makeRunningExample(N);
    }
  }();
  PipelineOptions Options;
  Options.Validate = (N <= 16);
  OperatorReport R = runOperator(K, Options);
  if (Options.Validate) {
    EXPECT_TRUE(R.Validated) << K.Name;
  }
  // The influenced configuration must never regress by more than a
  // small factor (the paper reports novec as low as 0.86x per network).
  EXPECT_LE(R.Infl.TimeUs, R.Isl.TimeUs * 1.3) << K.Name;
}

INSTANTIATE_TEST_SUITE_P(Families, PipelineProperty,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(16, 64)));
