//===- tests/tune_test.cpp - Autotuning subsystem tests -------------------===//
//
// Covers src/tune/: search-space enumeration and encoding round-trips,
// evaluator memoization and the never-worse guarantee, strategy
// determinism across seeds and worker counts, tuning-database
// persistence (corruption, version and space-shape staleness all
// degrade to re-searches, never errors), and the pipeline-level tuning
// hook. Like service_test, this executable is built separately so the
// POLYINJECT_SANITIZE=thread configuration can run its worker-pool and
// shared-database tests under TSan.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "pipeline/Pipeline.h"
#include "service/Fingerprint.h"
#include "target/Target.h"
#include "tune/Autotuner.h"
#include "tune/Evaluator.h"
#include "tune/SearchSpace.h"
#include "tune/Strategy.h"
#include "tune/TuningDb.h"

#include "TestKernels.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "gtest/gtest.h"

using namespace pinj;
using namespace pinj::tune;

namespace {

std::filesystem::path freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

service::Fingerprint keyOf(std::uint64_t Hi, std::uint64_t Lo) {
  service::Fingerprint F;
  F.Hi = Hi;
  F.Lo = Lo;
  return F;
}

DbEntry entryFor(const SearchSpace &Space, const std::string &Encoding,
                 double TimeUs) {
  DbEntry E;
  E.Encoding = Encoding;
  E.PredictedTimeUs = TimeUs;
  E.Strategy = "exhaustive";
  E.SpaceSignature = Space.signature();
  return E;
}

//===----------------------------------------------------------------------===//
// SearchSpace
//===----------------------------------------------------------------------===//

TEST(SearchSpace, EnumerationCoversEveryCombination) {
  SearchSpace Space = tinySearchSpace();
  ASSERT_EQ(Space.dims().size(), 2u);
  EXPECT_EQ(Space.size(), 4u);
  std::set<std::string> Seen;
  for (std::size_t I = 0; I < Space.size(); ++I)
    Seen.insert(Space.encode(Space.candidateAt(I)));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(SearchSpace, DefaultSpaceShape) {
  SearchSpace Space = defaultSearchSpace();
  EXPECT_GE(Space.dims().size(), 5u);
  EXPECT_GT(Space.size(), 100u);
  // Every dimension leads with the paper-default value, so candidate 0
  // must read back as the default options' projection.
  PipelineOptions Defaults;
  EXPECT_EQ(Space.project(Defaults), Space.candidateAt(0));
}

TEST(SearchSpace, EncodeDecodeRoundTrip) {
  SearchSpace Space = defaultSearchSpace();
  for (std::size_t I : {std::size_t(0), Space.size() / 2, Space.size() - 1}) {
    Candidate C = Space.candidateAt(I);
    Candidate Back;
    ASSERT_TRUE(Space.decode(Space.encode(C), Back));
    EXPECT_EQ(Back, C);
  }
}

TEST(SearchSpace, DecodeRejectsForeignEncodings) {
  SearchSpace Tiny = tinySearchSpace();
  SearchSpace Full = defaultSearchSpace();
  Candidate C;
  // A full-space encoding has segments the tiny space does not know.
  EXPECT_FALSE(Tiny.decode(Full.encode(Full.candidateAt(0)), C));
  // And vice versa: too few segments.
  EXPECT_FALSE(Full.decode(Tiny.encode(Tiny.candidateAt(0)), C));
  // Unknown value.
  EXPECT_FALSE(
      Tiny.decode("influence.max_vector_width=3,mapping.max_threads=256", C));
  // Garbage.
  EXPECT_FALSE(Tiny.decode("", C));
  EXPECT_FALSE(Tiny.decode("baseline", C));
}

TEST(SearchSpace, DecodeRejectsMalformedNameValueStrings) {
  SearchSpace Space = tinySearchSpace();
  Candidate Good;
  std::string GoodText = Space.encode(Space.candidateAt(1));
  ASSERT_TRUE(Space.decode(GoodText, Good));

  Candidate C = Good;
  // Segment without '='.
  EXPECT_FALSE(Space.decode(
      "influence.max_vector_width,mapping.max_threads=256", C));
  // Empty value.
  EXPECT_FALSE(Space.decode(
      "influence.max_vector_width=,mapping.max_threads=256", C));
  // Non-numeric value, and trailing garbage after the number.
  EXPECT_FALSE(Space.decode(
      "influence.max_vector_width=two,mapping.max_threads=256", C));
  EXPECT_FALSE(Space.decode(
      "influence.max_vector_width=1x,mapping.max_threads=256", C));
  // Misspelled dimension name.
  EXPECT_FALSE(Space.decode(
      "influence.max_vector_widt=1,mapping.max_threads=256", C));
  // Segments are positional: reordering is not the same encoding.
  EXPECT_FALSE(Space.decode(
      "mapping.max_threads=256,influence.max_vector_width=1", C));
  // Trailing comma / trailing bytes / leading whitespace.
  EXPECT_FALSE(Space.decode(GoodText + ",", C));
  EXPECT_FALSE(Space.decode(GoodText + " ", C));
  EXPECT_FALSE(Space.decode(" " + GoodText, C));
  // A failed decode never leaves a partial write behind.
  EXPECT_EQ(C, Good);
}

TEST(SearchSpace, ApplyChangesOptions) {
  SearchSpace Space = tinySearchSpace();
  Candidate C;
  ASSERT_TRUE(Space.decode(
      "influence.max_vector_width=1,mapping.max_threads=256", C));
  PipelineOptions O;
  Space.apply(C, O);
  EXPECT_EQ(O.Influence.MaxVectorWidth, 1u);
  EXPECT_EQ(O.Mapping.MaxThreadsPerBlock, 256);
}

TEST(SearchSpace, NeighborsDifferInOneDimension) {
  SearchSpace Space = defaultSearchSpace();
  Candidate Mid = Space.candidateAt(Space.size() / 2);
  for (const Candidate &N : Space.neighbors(Mid)) {
    unsigned Diffs = 0;
    for (std::size_t I = 0; I < Mid.size(); ++I)
      Diffs += N[I] != Mid[I] ? 1 : 0;
    EXPECT_EQ(Diffs, 1u);
  }
  // Interior candidates have two neighbors per multi-valued dimension.
  EXPECT_FALSE(Space.neighbors(Mid).empty());
}

TEST(SearchSpace, SignatureTracksShape) {
  EXPECT_NE(tinySearchSpace().signature(), defaultSearchSpace().signature());
  EXPECT_EQ(tinySearchSpace().signature(), tinySearchSpace().signature());
  EXPECT_EQ(tinySearchSpace().signature().size(), 32u);
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

TEST(Evaluator, BaselineMatchesCandidateZeroOnDefaults) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  SearchSpace Space = tinySearchSpace();
  Evaluator Eval(K, Base, Space, {});
  double Baseline = Eval.baseline();
  ASSERT_TRUE(std::isfinite(Baseline));
  // Candidate 0 applies the default values, so it scores the same.
  std::vector<double> S = Eval.evaluate({Space.candidateAt(0)});
  EXPECT_DOUBLE_EQ(S[0], Baseline);
}

TEST(Evaluator, MemoizesAndHonorsBudget) {
  Kernel K = makeElementwise(8, 12);
  PipelineOptions Base;
  SearchSpace Space = tinySearchSpace();
  Evaluator::Config Cfg;
  Cfg.MaxEvaluations = 2;
  Evaluator Eval(K, Base, Space, Cfg);
  Candidate C0 = Space.candidateAt(0), C1 = Space.candidateAt(1);
  Candidate C2 = Space.candidateAt(2);
  std::vector<double> First = Eval.evaluate({C0, C0, C1});
  EXPECT_EQ(Eval.evaluations(), 2u);
  EXPECT_EQ(Eval.remaining(), 0u);
  EXPECT_DOUBLE_EQ(First[0], First[1]);
  // Budget exhausted: a new candidate fails, memoized ones still
  // resolve.
  std::vector<double> Second = Eval.evaluate({C2, C0});
  EXPECT_EQ(Second[0], failedScore());
  EXPECT_DOUBLE_EQ(Second[1], First[0]);
  EXPECT_EQ(Eval.evaluations(), 2u);
}

TEST(Evaluator, BudgetDenialsAreMemoizedAndCountedOnce) {
  Kernel K = makeElementwise(8, 12);
  PipelineOptions Base;
  SearchSpace Space = tinySearchSpace();
  Evaluator::Config Cfg;
  Cfg.MaxEvaluations = 1;
  Evaluator Eval(K, Base, Space, Cfg);
  Candidate C0 = Space.candidateAt(0), C1 = Space.candidateAt(1);

  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  std::vector<double> First = Eval.evaluate({C0, C1});
  EXPECT_NE(First[0], failedScore());
  EXPECT_EQ(First[1], failedScore());
  obs::MetricsSnapshot D1 = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D1.counter("tune.evaluations"), 1u);
  EXPECT_EQ(D1.counter("tune.budget_denials"), 1u);

  // Revisits resolve from the memo: no new evaluations, and the denied
  // candidate is not denied (or counted) a second time.
  std::vector<double> Second = Eval.evaluate({C1, C0, C1});
  EXPECT_EQ(Second[0], failedScore());
  EXPECT_DOUBLE_EQ(Second[1], First[0]);
  EXPECT_EQ(Second[2], failedScore());
  obs::MetricsSnapshot D2 = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D2.counter("tune.evaluations"), 1u);
  EXPECT_EQ(D2.counter("tune.budget_denials"), 1u);
  EXPECT_EQ(Eval.evaluations(), 1u);
}

TEST(Evaluator, EvaluatedFailuresAreMemoizedAndCountedOnce) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  SearchSpace Space = tinySearchSpace();
  Evaluator::Config Cfg;
  // A one-pivot solver budget trips on any real kernel, so every
  // candidate fails to evaluate — the interesting case: the failure
  // must be paid for (and counted) exactly once.
  Cfg.CandidateBudget = SolverBudget{/*MaxPivots=*/1, /*MaxIlpNodes=*/1,
                                     /*WallMs=*/0};
  Evaluator Eval(K, Base, Space, Cfg);
  Candidate C0 = Space.candidateAt(0);

  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  EXPECT_EQ(Eval.evaluate({C0})[0], failedScore());
  EXPECT_EQ(Eval.evaluate({C0})[0], failedScore());
  EXPECT_EQ(Eval.evaluate({C0, C0})[1], failedScore());
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D.counter("tune.evaluations"), 1u);
  EXPECT_EQ(D.counter("tune.candidate_failures"), 1u);
  EXPECT_EQ(D.counter("tune.budget_denials"), 0u);
  EXPECT_EQ(Eval.evaluations(), 1u);
}

TEST(Evaluator, ScoresIndependentOfWorkerCount) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  SearchSpace Space = defaultSearchSpace();
  std::vector<Candidate> Batch;
  for (std::size_t I = 0; I < 24; ++I)
    Batch.push_back(Space.candidateAt(I * 7));

  Evaluator::Config Serial;
  Serial.Jobs = 1;
  Serial.MaxEvaluations = 64;
  Evaluator E1(K, Base, Space, Serial);
  std::vector<double> S1 = E1.evaluate(Batch);

  Evaluator::Config Parallel = Serial;
  Parallel.Jobs = 8;
  Evaluator E8(K, Base, Space, Parallel);
  std::vector<double> S8 = E8.evaluate(Batch);

  ASSERT_EQ(S1.size(), S8.size());
  for (std::size_t I = 0; I < S1.size(); ++I)
    EXPECT_DOUBLE_EQ(S1[I], S8[I]) << "candidate " << I;
}

//===----------------------------------------------------------------------===//
// Strategies
//===----------------------------------------------------------------------===//

TEST(Strategy, RegistryKnowsAllNamesAndRejectsOthers) {
  for (const std::string &Name : strategyNames()) {
    std::unique_ptr<Strategy> S = makeStrategy(Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_EQ(S->name(), Name);
  }
  EXPECT_EQ(makeStrategy("random"), nullptr);
  EXPECT_EQ(makeStrategy(""), nullptr);
}

TEST(Strategy, ExhaustiveFindsTheGlobalOptimumOfTinySpace) {
  Kernel K = makeBadOrderCopy(16, 64);
  PipelineOptions Base;
  SearchSpace Space = tinySearchSpace();
  Evaluator Eval(K, Base, Space, {});
  std::optional<ScoredCandidate> Best =
      makeStrategy("exhaustive")->run(Space, Eval, 0);
  ASSERT_TRUE(Best.has_value());
  // Verify against a fresh evaluation of every candidate.
  Evaluator Check(K, Base, Space, {});
  for (std::size_t I = 0; I < Space.size(); ++I) {
    double S = Check.evaluate({Space.candidateAt(I)})[0];
    if (S != failedScore())
      EXPECT_LE(Best->TimeUs, S);
  }
}

TEST(Strategy, DeterministicAcrossWorkerCountsAndRepeats) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  SearchSpace Space = defaultSearchSpace();
  for (const std::string &Name : strategyNames()) {
    std::unique_ptr<Strategy> S = makeStrategy(Name);
    std::optional<ScoredCandidate> Results[2];
    unsigned JobCounts[2] = {1, 8};
    for (int Round = 0; Round < 2; ++Round) {
      Evaluator::Config Cfg;
      Cfg.Jobs = JobCounts[Round];
      Cfg.MaxEvaluations = 40;
      Evaluator Eval(K, Base, Space, Cfg);
      Results[Round] = S->run(Space, Eval, /*Seed=*/7);
    }
    ASSERT_EQ(Results[0].has_value(), Results[1].has_value()) << Name;
    if (Results[0]) {
      EXPECT_EQ(Results[0]->C, Results[1]->C) << Name;
      EXPECT_DOUBLE_EQ(Results[0]->TimeUs, Results[1]->TimeUs) << Name;
    }
  }
}

TEST(Strategy, AnnealSeedChangesTheWalkButStaysDeterministic) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  SearchSpace Space = defaultSearchSpace();
  std::unique_ptr<Strategy> S = makeStrategy("anneal");
  auto RunWithSeed = [&](std::uint64_t Seed) {
    Evaluator::Config Cfg;
    Cfg.MaxEvaluations = 24;
    Evaluator Eval(K, Base, Space, Cfg);
    return S->run(Space, Eval, Seed);
  };
  std::optional<ScoredCandidate> A1 = RunWithSeed(1), A2 = RunWithSeed(1);
  ASSERT_TRUE(A1 && A2);
  EXPECT_EQ(A1->C, A2->C);
  EXPECT_DOUBLE_EQ(A1->TimeUs, A2->TimeUs);
}

//===----------------------------------------------------------------------===//
// TuningDb
//===----------------------------------------------------------------------===//

TEST(TuningDb, RoundTripsThroughDisk) {
  auto Dir = freshDir("tunedb-roundtrip");
  std::string Path = (Dir / "tune.db").string();
  SearchSpace Space = tinySearchSpace();
  {
    TuningDb Db(Path);
    Db.store(keyOf(1, 2), entryFor(Space, "baseline", 4.5));
    Db.store(keyOf(3, 4),
             entryFor(Space,
                      Space.encode(Space.candidateAt(3)), 2.25));
    EXPECT_EQ(Db.stats().Stores, 2u);
  }
  TuningDb Db(Path);
  EXPECT_EQ(Db.size(), 2u);
  EXPECT_EQ(Db.stats().Rejects, 0u);
  DbEntry E;
  ASSERT_TRUE(Db.lookup(keyOf(3, 4), E));
  EXPECT_EQ(E.Encoding, Space.encode(Space.candidateAt(3)));
  EXPECT_DOUBLE_EQ(E.PredictedTimeUs, 2.25);
  EXPECT_EQ(E.Strategy, "exhaustive");
  EXPECT_EQ(E.SpaceSignature, Space.signature());
  EXPECT_FALSE(Db.lookup(keyOf(9, 9), E));
  EXPECT_EQ(Db.stats().Misses, 1u);
}

TEST(TuningDb, MissingFileIsEmpty) {
  auto Dir = freshDir("tunedb-missing");
  TuningDb Db((Dir / "absent.db").string());
  EXPECT_EQ(Db.size(), 0u);
  EXPECT_EQ(Db.stats().Rejects, 0u);
}

TEST(TuningDb, TruncatedFileKeepsValidPrefix) {
  auto Dir = freshDir("tunedb-truncated");
  std::string Path = (Dir / "tune.db").string();
  SearchSpace Space = tinySearchSpace();
  {
    TuningDb Db(Path);
    Db.store(keyOf(1, 1), entryFor(Space, "baseline", 1.0));
    Db.store(keyOf(2, 2), entryFor(Space, "baseline", 2.0));
  }
  // Chop the file mid-entry (drop the terminator and the tail of the
  // second entry).
  std::string Bytes = slurp(Path);
  ASSERT_GT(Bytes.size(), 40u);
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      << Bytes.substr(0, Bytes.size() / 2);

  TuningDb Db(Path);
  EXPECT_GE(Db.stats().Rejects, 1u);
  EXPECT_LT(Db.size(), 2u);
  // Still usable: stores repair the file.
  Db.store(keyOf(3, 3), entryFor(Space, "baseline", 3.0));
  TuningDb Reloaded(Path);
  EXPECT_EQ(Reloaded.stats().Rejects, 0u);
  DbEntry E;
  EXPECT_TRUE(Reloaded.lookup(keyOf(3, 3), E));
}

TEST(TuningDb, VersionBumpRejectsWholeFile) {
  auto Dir = freshDir("tunedb-version");
  std::string Path = (Dir / "tune.db").string();
  SearchSpace Space = tinySearchSpace();
  {
    TuningDb Db(Path);
    Db.store(keyOf(1, 1), entryFor(Space, "baseline", 1.0));
  }
  std::string Bytes = slurp(Path);
  size_t At = Bytes.find("v1");
  ASSERT_NE(At, std::string::npos);
  Bytes.replace(At, 2, "v9");
  std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bytes;

  TuningDb Db(Path);
  EXPECT_EQ(Db.size(), 0u);
  EXPECT_EQ(Db.stats().Rejects, 1u);
}

TEST(TuningDb, VersionBumpCountsGlobalRejects) {
  auto Dir = freshDir("tunedb-version-counter");
  std::string Path = (Dir / "tune.db").string();
  SearchSpace Space = tinySearchSpace();
  {
    TuningDb Db(Path);
    Db.store(keyOf(2, 2), entryFor(Space, "baseline", 1.0));
  }
  std::string Bytes = slurp(Path);
  size_t At = Bytes.find("v1");
  ASSERT_NE(At, std::string::npos);
  Bytes.replace(At, 2, "v9");
  std::ofstream(Path, std::ios::binary | std::ios::trunc) << Bytes;

  // The fleet-visible counter moves with the per-instance stat: one
  // reject on reload, nothing recoverable behind it.
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  TuningDb Db(Path);
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(Db.size(), 0u);
  EXPECT_EQ(D.counter("tune.db_rejects"), 1u);
}

TEST(TuningDb, CorruptEntriesAreSkippedNotFatal) {
  auto Dir = freshDir("tunedb-corrupt");
  std::string Path = (Dir / "tune.db").string();
  SearchSpace Space = tinySearchSpace();
  std::string Good;
  {
    TuningDb Db(Path);
    Db.store(keyOf(10, 20), entryFor(Space, "baseline", 5.0));
    Good = slurp(Path);
  }
  // Splice damaged entries around the good one: bad fingerprint hex,
  // non-numeric time, wrong payload length.
  std::string Sig = Space.signature();
  std::string Damaged =
      "polyinject-tunedb v1\n"
      "entry ZZZZe5649253325dbc99c2db6f0d0002 " + Sig +
      " greedy 1.0 8\nbaseline\n" +
      Good.substr(Good.find("entry ")) // good entry + "end\n"
      ;
  Damaged.insert(Damaged.rfind("end\n"),
                 "entry 00000000000000000000000000000001 " + Sig +
                     " greedy notanumber 8\nbaseline\n");
  std::ofstream(Path, std::ios::binary | std::ios::trunc) << Damaged;

  TuningDb Db(Path);
  EXPECT_EQ(Db.size(), 1u);
  EXPECT_GE(Db.stats().Rejects, 2u);
  DbEntry E;
  EXPECT_TRUE(Db.lookup(keyOf(10, 20), E));
  EXPECT_DOUBLE_EQ(E.PredictedTimeUs, 5.0);
}

TEST(TuningDb, SharedAcrossThreads) {
  auto Dir = freshDir("tunedb-threads");
  TuningDb Db((Dir / "tune.db").string());
  SearchSpace Space = tinySearchSpace();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      for (std::uint64_t I = 0; I < 8; ++I) {
        Db.store(keyOf(T, I), entryFor(Space, "baseline", double(I)));
        DbEntry E;
        Db.lookup(keyOf(T, I), E);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Db.size(), 32u);
  TuningDb Reloaded(Db.path());
  EXPECT_EQ(Reloaded.size(), 32u);
  EXPECT_EQ(Reloaded.stats().Rejects, 0u);
}

//===----------------------------------------------------------------------===//
// Autotuner (the pipeline hook)
//===----------------------------------------------------------------------===//

Autotuner::Config tinyTunerConfig() {
  Autotuner::Config Cfg;
  Cfg.Strategy = "exhaustive";
  Cfg.Space = tinySearchSpace();
  Cfg.MaxEvaluations = 16;
  return Cfg;
}

TEST(Autotuner, NeverSelectsWorseThanBaseline) {
  std::vector<Kernel> Kernels;
  Kernels.push_back(makeRunningExample(8));
  Kernels.push_back(makeBadOrderCopy(16, 64));
  Kernels.push_back(makeRowReduction(16, 32));
  Autotuner Tuner(tinyTunerConfig());
  for (const Kernel &K : Kernels) {
    PipelineOptions Base;
    Evaluator BaseEval(K, Base, Tuner.config().Space, {});
    double Baseline = BaseEval.baseline();

    PipelineOptions Tuned = Base;
    TunedConfig Chosen;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Chosen)) << K.Name;
    EXPECT_FALSE(Chosen.FromDb);
    if (std::isfinite(Baseline))
      EXPECT_LE(Chosen.PredictedTimeUs, Baseline) << K.Name;
    if (Chosen.Encoding == "baseline")
      EXPECT_EQ(service::fingerprintOptions(Tuned),
                service::fingerprintOptions(Base))
          << K.Name;
    else
      EXPECT_NE(service::fingerprintOptions(Tuned),
                service::fingerprintOptions(Base))
          << K.Name;
  }
}

TEST(Autotuner, RunOperatorReportsTunedConfig) {
  Kernel K = makeRunningExample(8);
  Autotuner Tuner(tinyTunerConfig());
  PipelineOptions Options;
  Options.Tuner = &Tuner;
  obs::ReportSink Sink;
  Options.Sink = &Sink;
  OperatorReport R = runOperator(K, Options);
  EXPECT_TRUE(R.Tuned);
  EXPECT_FALSE(R.Tuning.Encoding.empty());
  EXPECT_EQ(R.Tuning.Strategy, "exhaustive");
  ASSERT_EQ(Sink.operators().size(), 1u);
  EXPECT_TRUE(Sink.operators()[0].Tuned);
  EXPECT_EQ(Sink.operators()[0].TuneEncoding, R.Tuning.Encoding);
  // The sidecar JSON carries the tuning object.
  EXPECT_NE(Sink.json().find("\"tuning\""), std::string::npos);
  EXPECT_NE(Sink.json().find("\"strategy\":\"exhaustive\""),
            std::string::npos);
}

TEST(Autotuner, WarmDatabaseReplaysWithoutSearching) {
  auto Dir = freshDir("tuner-warm");
  Kernel K = makeBadOrderCopy(16, 64);

  TunedConfig Cold;
  std::string ColdFingerprint;
  {
    TuningDb Db((Dir / "tune.db").string());
    Autotuner::Config Cfg = tinyTunerConfig();
    Cfg.Db = &Db;
    Autotuner Tuner(Cfg);
    PipelineOptions Tuned;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Cold));
    EXPECT_FALSE(Cold.FromDb);
    ColdFingerprint = std::to_string(service::fingerprintOptions(Tuned));
  }
  {
    TuningDb Db((Dir / "tune.db").string());
    Autotuner::Config Cfg = tinyTunerConfig();
    Cfg.Db = &Db;
    Autotuner Tuner(Cfg);
    PipelineOptions Tuned;
    TunedConfig Warm;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Warm));
    EXPECT_TRUE(Warm.FromDb);
    // Byte-identical decision, byte-identical applied options.
    EXPECT_EQ(Warm.Encoding, Cold.Encoding);
    EXPECT_DOUBLE_EQ(Warm.PredictedTimeUs, Cold.PredictedTimeUs);
    EXPECT_EQ(std::to_string(service::fingerprintOptions(Tuned)),
              ColdFingerprint);
  }
}

TEST(Autotuner, SpaceShapeChangeInvalidatesDbEntry) {
  auto Dir = freshDir("tuner-stale");
  Kernel K = makeRunningExample(8);
  TuningDb Db((Dir / "tune.db").string());
  {
    Autotuner::Config Cfg = tinyTunerConfig();
    Cfg.Db = &Db;
    Autotuner Tuner(Cfg);
    PipelineOptions Tuned;
    TunedConfig Out;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Out));
  }
  // Same database, different space: the stored signature no longer
  // matches, so the tuner must re-search (FromDb=false) and overwrite.
  {
    Autotuner::Config Cfg = tinyTunerConfig();
    Cfg.Space = defaultSearchSpace();
    Cfg.MaxEvaluations = 8;
    Cfg.Db = &Db;
    Autotuner Tuner(Cfg);
    PipelineOptions Tuned;
    TunedConfig Out;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Out));
    EXPECT_FALSE(Out.FromDb);
  }
  // And a third run under the new space replays the overwritten entry.
  {
    Autotuner::Config Cfg = tinyTunerConfig();
    Cfg.Space = defaultSearchSpace();
    Cfg.MaxEvaluations = 8;
    Cfg.Db = &Db;
    Autotuner Tuner(Cfg);
    PipelineOptions Tuned;
    TunedConfig Out;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Out));
    EXPECT_TRUE(Out.FromDb);
  }
}

TEST(Autotuner, ConcurrentTuningOnSharedDatabase) {
  auto Dir = freshDir("tuner-concurrent");
  TuningDb Db((Dir / "tune.db").string());
  Autotuner::Config Cfg = tinyTunerConfig();
  Cfg.Db = &Db;
  Autotuner Tuner(Cfg);

  std::vector<Kernel> Kernels;
  for (Int N : {6, 8, 10, 12})
    Kernels.push_back(makeRunningExample(N));

  // Two waves of workers: the second wave must replay the first wave's
  // decisions identically.
  std::vector<TunedConfig> First(Kernels.size()), Second(Kernels.size());
  for (std::vector<TunedConfig> *Wave : {&First, &Second}) {
    std::vector<std::thread> Threads;
    for (std::size_t I = 0; I < Kernels.size(); ++I)
      Threads.emplace_back([&, I] {
        PipelineOptions Tuned;
        TunedConfig Out;
        ASSERT_TRUE(Tuner.tune(Kernels[I], Tuned, Out));
        (*Wave)[I] = Out;
      });
    for (std::thread &T : Threads)
      T.join();
  }
  for (std::size_t I = 0; I < Kernels.size(); ++I) {
    EXPECT_TRUE(Second[I].FromDb) << I;
    EXPECT_EQ(First[I].Encoding, Second[I].Encoding) << I;
    EXPECT_DOUBLE_EQ(First[I].PredictedTimeUs, Second[I].PredictedTimeUs)
        << I;
  }
}

//===----------------------------------------------------------------------===//
// GPU model presets (satellite of the tuning work: the preset is part
// of the options fingerprint, so tuned entries are per-GPU).
//===----------------------------------------------------------------------===//

TEST(GpuPresets, KnownNamesResolveAndDiffer) {
  for (const std::string &Name : gpuModelPresetNames())
    EXPECT_TRUE(gpuModelPreset(Name).has_value()) << Name;
  EXPECT_FALSE(gpuModelPreset("h100").has_value());
  EXPECT_FALSE(gpuModelPreset("").has_value());

  // v100 is the default model.
  GpuModel Default;
  std::optional<GpuModel> V100 = gpuModelPreset("v100");
  ASSERT_TRUE(V100);
  EXPECT_DOUBLE_EQ(V100->PeakBandwidthGBs, Default.PeakBandwidthGBs);

  Kernel K = makeRunningExample(8);
  PipelineOptions A, B;
  A.Gpu = *gpuModelPreset("v100");
  B.Gpu = *gpuModelPreset("a100");
  EXPECT_NE(service::fingerprintOptions(A), service::fingerprintOptions(B));
  EXPECT_NE(service::fingerprintRequest(K, A),
            service::fingerprintRequest(K, B));
}

TEST(GpuPresets, FasterGpuSimulatesFaster) {
  Kernel K = makeElementwise(64, 256);
  PipelineOptions V100, A100;
  V100.Gpu = *gpuModelPreset("v100");
  A100.Gpu = *gpuModelPreset("a100");
  double TimeV100 = predictInflTimeUs(K, V100);
  double TimeA100 = predictInflTimeUs(K, A100);
  ASSERT_TRUE(std::isfinite(TimeV100));
  ASSERT_TRUE(std::isfinite(TimeA100));
  EXPECT_LT(TimeA100, TimeV100);
}

//===----------------------------------------------------------------------===//
// Backend targets in the evaluator
//===----------------------------------------------------------------------===//

TEST(TargetScoring, EvaluatorFollowsOptionsTarget) {
  Kernel K = makeElementwise(64, 256);
  PipelineOptions Default;
  PipelineOptions Explicit;
  Explicit.Target = target::makeBuiltinTarget("v100");
  PipelineOptions Cpu;
  Cpu.Target = target::makeBuiltinTarget("cpu-simd");

  // An explicit gpu-analytic target over the default machine model is
  // the legacy path, bit for bit.
  double Base = predictInflTimeUs(K, Default);
  ASSERT_TRUE(std::isfinite(Base));
  EXPECT_EQ(predictInflTimeUs(K, Explicit), Base);

  // The cpu-simd backend scores the same schedule differently.
  double CpuUs = predictInflTimeUs(K, Cpu);
  ASSERT_TRUE(std::isfinite(CpuUs));
  EXPECT_NE(CpuUs, Base);

  // Scheduling is target-independent: the mapped kernel the evaluator
  // builds plus the target's simulate reproduces its score exactly (the
  // split tools/polyinject-calibrate relies on).
  MappedKernel M;
  ASSERT_TRUE(buildInflMappedKernel(K, Cpu, M));
  EXPECT_DOUBLE_EQ(Cpu.Target->simulate(M).TimeUs, CpuUs);
}

TEST(TargetScoring, TunedWinnerRespectsTargetFingerprint) {
  // One shared database: the same kernel tuned under two backends must
  // produce two independent entries (the request fingerprint separates
  // targets), each replayed on its own second call.
  Kernel K = makeBadOrderCopy(32, 48);
  auto Dir = freshDir("target-tune-db");
  tune::TuningDb Db((Dir / "tune.db").string());

  auto TuneUnder = [&](const PipelineOptions &Base, TunedConfig &Out) {
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = "exhaustive";
    Cfg.Space = tinySearchSpace();
    Cfg.Db = &Db;
    tune::Autotuner Tuner(std::move(Cfg));
    PipelineOptions Tuned = Base;
    return Tuner.tune(K, Tuned, Out);
  };

  PipelineOptions GpuBase;
  PipelineOptions CpuBase;
  CpuBase.Target = target::makeBuiltinTarget("cpu-simd");

  TunedConfig GpuChosen, CpuChosen;
  ASSERT_TRUE(TuneUnder(GpuBase, GpuChosen));
  ASSERT_TRUE(TuneUnder(CpuBase, CpuChosen));
  EXPECT_FALSE(GpuChosen.FromDb);
  EXPECT_FALSE(CpuChosen.FromDb); // Distinct fingerprint: no aliasing.

  TunedConfig GpuReplay, CpuReplay;
  ASSERT_TRUE(TuneUnder(GpuBase, GpuReplay));
  ASSERT_TRUE(TuneUnder(CpuBase, CpuReplay));
  EXPECT_TRUE(GpuReplay.FromDb);
  EXPECT_TRUE(CpuReplay.FromDb);
  EXPECT_EQ(GpuReplay.Encoding, GpuChosen.Encoding);
  EXPECT_EQ(CpuReplay.Encoding, CpuChosen.Encoding);
}

} // namespace
