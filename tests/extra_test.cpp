//===- tests/extra_test.cpp - Parametric scheduling, TVM proxy, softmax ---===//

#include "baselines/TvmProxy.h"
#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "influence/TreeBuilder.h"
#include "ops/OpFactory.h"
#include "pipeline/Pipeline.h"
#include "sched/Scheduler.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// Parametric proximity bound (paper Eq. (2)): u . p + w with symbolic
// sizes. The operator library uses concrete shapes, so these tests
// exercise the constraint builders directly on hand-built parametric
// relations.
//===----------------------------------------------------------------------===//

namespace {

/// A one-statement kernel with one symbolic parameter N; the statement
/// has one iterator with a placeholder concrete extent (the parametric
/// part lives in the hand-built relations below).
Kernel makeParametricKernel() {
  Kernel K;
  K.Name = "parametric";
  K.ParamNames = {"N"};
  Tensor T;
  T.Name = "A";
  T.Shape = {64};
  K.Tensors.push_back(T);
  Statement S;
  S.Name = "S";
  S.IterNames = {"i"};
  S.Extents = {64};
  S.OrigBeta = {0, 0};
  S.Write.TensorId = 0;
  S.Write.IsWrite = true;
  S.Write.Indices = {{1, 0, 0}}; // i over (i, N, 1).
  Access R;
  R.TensorId = 0;
  R.Indices = {{1, 0, 0}};
  S.Reads = {R};
  S.Kind = OpKind::Relu;
  K.Stmts.push_back(S);
  return K;
}

} // namespace

TEST(ParametricProximity, UniformDistanceNeedsOnlyW) {
  // Relation: S(s) -> S(d) with d == s + 1, 0 <= s, d <= N - 1.
  // Distance of phi = c*i is c; the bound u*N + w is minimized at
  // u = 0, w = c. With progression forcing c >= 1: u = 0, w = 1.
  Kernel K = makeParametricKernel();
  DependenceRelation D;
  D.SrcStmt = D.DstStmt = 0;
  D.Kind = DepKind::Flow;
  D.Rel = AffineSet({2, 1}); // dims (s, d), param N.
  D.Rel.addEq({1, -1, 0, 1});  // s - d + 1 == 0.
  D.Rel.addGe({1, 0, 0, 0});   // s >= 0.
  D.Rel.addGe({0, -1, 1, -1}); // N - 1 - d >= 0.

  SchedulerOptions Options;
  DimIlp Ilp = makeDimIlp(K, Options);
  addValidity(Ilp, K, D);
  addProximity(Ilp, K, D);
  SparseForm Progress; // c >= 1.
  Progress.addTerm(Ilp.Stmts[0].Iter[0], 1);
  Progress.addConstant(-1);
  Ilp.Builder.addGe(Progress);
  addObjectives(Ilp, K, Options);
  IlpResult R = Ilp.Builder.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[Ilp.U[0]], Rational(0));
  EXPECT_EQ(R.Point[Ilp.W], Rational(1));
  EXPECT_EQ(R.Point[Ilp.Stmts[0].Iter[0]], Rational(1));
}

TEST(ParametricProximity, ParameterScaledDistanceNeedsU) {
  // Relation: S(s) -> S(d) with d == N - 1 (everyone feeds the last
  // iteration), 0 <= s <= N - 2. Distance c*(N - 1 - s) reaches
  // c*(N - 1) at s = 0, so the minimized bound has u = c: with c = 1,
  // (sum u, w) = (1, 0) — the parametric part of Eq. (2) at work.
  Kernel K = makeParametricKernel();
  DependenceRelation D;
  D.SrcStmt = D.DstStmt = 0;
  D.Kind = DepKind::Flow;
  D.Rel = AffineSet({2, 1});
  D.Rel.addEq({0, 1, -1, 1});  // d - N + 1 == 0.
  D.Rel.addGe({1, 0, 0, 0});   // s >= 0.
  D.Rel.addGe({-1, 0, 1, -2}); // N - 2 - s >= 0.

  SchedulerOptions Options;
  DimIlp Ilp = makeDimIlp(K, Options);
  addValidity(Ilp, K, D);
  addProximity(Ilp, K, D);
  SparseForm Progress;
  Progress.addTerm(Ilp.Stmts[0].Iter[0], 1);
  Progress.addConstant(-1);
  Ilp.Builder.addGe(Progress);
  addObjectives(Ilp, K, Options);
  IlpResult R = Ilp.Builder.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[Ilp.Stmts[0].Iter[0]], Rational(1));
  EXPECT_EQ(R.Point[Ilp.U[0]], Rational(1));
  // w absorbs the -1: u*N + w >= N - 1 - s holds with w = 0 at s >= 0.
  EXPECT_LE(R.Point[Ilp.W], Rational(1));
}

TEST(ParametricProximity, ValidityRejectsReversalAcrossParam) {
  // With the same "feeds the last iteration" relation, a negative-like
  // schedule cannot exist in the nonnegative space; requiring the
  // distance to be zero (coincidence) is infeasible because the source
  // and target differ for s < N - 1.
  Kernel K = makeParametricKernel();
  DependenceRelation D;
  D.SrcStmt = D.DstStmt = 0;
  D.Kind = DepKind::Flow;
  D.Rel = AffineSet({2, 1});
  D.Rel.addEq({0, 1, -1, 1});
  D.Rel.addGe({1, 0, 0, 0});
  D.Rel.addGe({-1, 0, 1, -2});

  SchedulerOptions Options;
  DimIlp Ilp = makeDimIlp(K, Options);
  addValidity(Ilp, K, D);
  addProximity(Ilp, K, D);
  SparseForm Progress;
  Progress.addTerm(Ilp.Stmts[0].Iter[0], 1);
  Progress.addConstant(-1);
  Ilp.Builder.addGe(Progress);
  // Force zero reuse distance: u == 0 and w == 0.
  SparseForm UZero;
  UZero.addTerm(Ilp.U[0], 1);
  Ilp.Builder.addEq(UZero);
  SparseForm WZero;
  WZero.addTerm(Ilp.W, 1);
  Ilp.Builder.addEq(WZero);
  addObjectives(Ilp, K, Options);
  EXPECT_FALSE(Ilp.Builder.solve().isOptimal());
}

//===----------------------------------------------------------------------===//
// TVM proxy
//===----------------------------------------------------------------------===//

TEST(TvmProxy, ExtractStatementKeepsTensors) {
  Kernel K = makeFusedMulSubMulTensorAdd(16);
  Kernel Sub = extractStatement(K, 1);
  EXPECT_EQ(Sub.Stmts.size(), 1u);
  EXPECT_EQ(Sub.Tensors.size(), K.Tensors.size());
  EXPECT_EQ(Sub.Stmts[0].Name, "Y");
  EXPECT_EQ(Sub.verify(), "");
}

TEST(TvmProxy, ManualScheduleRotatesWriteContiguousInnermost) {
  // Hostile copy iterates (w, h) with OUT[h][w]: the write is
  // contiguous in w, so the manual schedule rotates w innermost.
  Kernel K = makeHostileOrderCopy("h", 16, 32, 1);
  Kernel Sub = extractStatement(K, 0);
  Schedule S = buildTvmSchedule(Sub);
  ASSERT_EQ(S.numDims(), 2u);
  EXPECT_EQ(S.Transforms[0].row(0), (IntVector{0, 1, 0})); // h outer
  EXPECT_EQ(S.Transforms[0].row(1), (IntVector{1, 0, 0})); // w inner
  EXPECT_TRUE(S.Dims[0].IsParallel);
  EXPECT_TRUE(S.Dims[1].IsParallel);
}

TEST(TvmProxy, ManualScheduleKeepsOrderWhenAlreadyContiguous) {
  Kernel K = makeElementwiseChain("c", 8, 16, 1, 1);
  Kernel Sub = extractStatement(K, 0);
  Schedule S = buildTvmSchedule(Sub);
  EXPECT_EQ(S.Transforms[0].row(0), (IntVector{1, 0, 0}));
  EXPECT_EQ(S.Transforms[0].row(1), (IntVector{0, 1, 0}));
}

TEST(TvmProxy, LaunchPerStatement) {
  Kernel K = makeSoftmaxLike("sm", 32, 64);
  TvmProxyResult R = simulateTvmProxy(K, GpuModel(), GpuMappingOptions());
  EXPECT_EQ(R.Launches, 3u);
  GpuModel Model;
  EXPECT_GE(R.TimeUs, 3 * Model.LaunchOverheadUs);
}

TEST(TvmProxy, SharedTileHelpsTransposedReads) {
  // Under the manual write-contiguous order, the hostile op's read is
  // fine too (both accesses share the layout); build a genuine transpose
  // where read and write cannot both coalesce: OUT[i][j] = IN[j][i].
  KernelBuilder B("t");
  unsigned In = B.tensor("IN", {512, 512});
  unsigned Out = B.tensor("OUT", {512, 512});
  B.stmt("T", {{"i", 512}, {"j", 512}})
      .write(Out, {"i", "j"})
      .read(In, {"j", "i"})
      .op(OpKind::Assign);
  Kernel K = B.build();
  TvmProxyResult R = simulateTvmProxy(K, GpuModel(), GpuMappingOptions());
  // The shared-memory model brings transactions down to the ideal.
  EXPECT_NEAR(R.Aggregate.TransactionBytes, R.Aggregate.UsefulBytes,
              R.Aggregate.UsefulBytes * 0.01);
}

//===----------------------------------------------------------------------===//
// Softmax-like fusion
//===----------------------------------------------------------------------===//

TEST(Softmax, BroadcastDependenceForcesDistribution) {
  Kernel K = makeSoftmaxLike("sm", 8, 16);
  SchedulerOptions Options;
  Options.SerializeSccs = true;
  SchedulerResult R = scheduleKernel(K, Options);
  // NORM cannot share RED's j loop: their dates must separate at some
  // scalar dimension before NORM's j.
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched));
  bool HasScalar = false;
  for (const DimInfo &D : R.Sched.Dims)
    HasScalar |= D.IsScalar;
  EXPECT_TRUE(HasScalar);
}

TEST(Softmax, PipelineEndToEnd) {
  Kernel K = makeSoftmaxLike("sm", 32, 64);
  PipelineOptions Options;
  Options.Validate = true;
  OperatorReport R = runOperator(K, Options);
  EXPECT_TRUE(R.Validated);
  EXPECT_GT(R.Isl.TimeUs, 0);
  EXPECT_LE(R.Infl.TimeUs, R.Isl.TimeUs * 1.3);
}

TEST(Softmax, InfluencedStaysValid) {
  Kernel K = makeSoftmaxLike("sm", 8, 16);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Sched));
}

//===----------------------------------------------------------------------===//
// ThreadParallel classification
//===----------------------------------------------------------------------===//

TEST(ThreadParallel, InterStatementDimIsSyncParallel) {
  // The influenced running example: dim 2 (j) carries only the X -> Y
  // inter-statement dependence — thread-parallel but not parallel.
  Kernel K = makeFusedMulSubMulTensorAdd(16);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_GE(R.Sched.numDims(), 3u);
  EXPECT_FALSE(R.Sched.Dims[2].IsParallel);
  EXPECT_TRUE(R.Sched.Dims[2].ThreadParallel);
  // The reduction dim (k, outermost in the influenced order) is
  // neither; the i dim is fully parallel.
  EXPECT_FALSE(R.Sched.Dims[0].IsParallel);
  EXPECT_FALSE(R.Sched.Dims[0].ThreadParallel);
  EXPECT_TRUE(R.Sched.Dims[1].IsParallel);
}

TEST(ThreadParallel, MapperNeverBlockSplitsSyncDims) {
  Kernel K = makeFusedMulSubMulTensorAdd(64);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  finalizeVectorMarks(K, R.Sched);
  MappedKernel M = mapToGpu(K, R.Sched);
  for (unsigned D = 0; D != M.Dims.size(); ++D) {
    if (!R.Sched.Dims[D].IsParallel &&
        (M.Dims[D].Role == DimRole::Thread ||
         M.Dims[D].Role == DimRole::Vector)) {
      EXPECT_EQ(M.Dims[D].BlockFactor, 1) << "dim " << D;
    }
  }
}
