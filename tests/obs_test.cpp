//===- tests/obs_test.cpp - observability subsystem tests -----------------===//

#include "obs/Exposition.h"
#include "obs/Journal.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "pipeline/Pipeline.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace pinj;

namespace {

/// Enables JSON span buffering for one test and restores the previous
/// tracer state afterwards (the tracer is process-wide and other suites
/// run in the same binary).
class TracerGuard {
public:
  TracerGuard() {
    obs::tracer().disable();
    obs::tracer().reset();
    obs::tracer().enable(obs::Tracer::Json);
  }
  ~TracerGuard() {
    obs::tracer().disable();
    obs::tracer().reset();
  }
};

/// Checks that every event nests inside the closest preceding event of
/// smaller depth (events are stored in open order).
void expectContainment(const std::vector<obs::TraceEvent> &Events) {
  std::vector<const obs::TraceEvent *> Stack;
  for (const obs::TraceEvent &E : Events) {
    ASSERT_TRUE(E.Closed) << E.Name;
    while (!Stack.empty() && Stack.back()->Depth >= E.Depth)
      Stack.pop_back();
    if (!Stack.empty()) {
      const obs::TraceEvent &Parent = *Stack.back();
      EXPECT_GE(E.BeginUs, Parent.BeginUs - 1e-6)
          << E.Name << " starts before parent " << Parent.Name;
      EXPECT_LE(E.BeginUs + E.DurUs, Parent.BeginUs + Parent.DurUs + 1e-6)
          << E.Name << " ends after parent " << Parent.Name;
    }
    Stack.push_back(&E);
  }
}

unsigned countEvents(const std::vector<obs::TraceEvent> &Events,
                     const std::string &Name) {
  unsigned N = 0;
  for (const obs::TraceEvent &E : Events)
    if (E.Name == Name)
      ++N;
  return N;
}

/// Enables the journal for one test and restores the disabled, empty
/// state afterwards (the journal is process-wide like the tracer).
class JournalGuard {
public:
  explicit JournalGuard(std::size_t Capacity =
                            obs::Journal::DefaultRingCapacity) {
    obs::journal().disable();
    obs::journal().closeFile();
    obs::journal().reset();
    obs::journal().enable(Capacity);
  }
  ~JournalGuard() {
    obs::journal().disable();
    obs::journal().closeFile();
    obs::journal().reset();
  }
};

/// Fieldwise equality of two histogram summaries (exact: merge is
/// defined to be lossless on these fields).
void expectSummariesEqual(const obs::HistogramSummary &A,
                          const obs::HistogramSummary &B) {
  EXPECT_EQ(A.Count, B.Count);
  EXPECT_DOUBLE_EQ(A.Sum, B.Sum);
  EXPECT_DOUBLE_EQ(A.Min, B.Min);
  EXPECT_DOUBLE_EQ(A.Max, B.Max);
  EXPECT_EQ(A.Buckets, B.Buckets);
}

} // namespace

//===----------------------------------------------------------------------===//
// Tracer and Span
//===----------------------------------------------------------------------===//

TEST(Trace, SpanNestingAndOrdering) {
  TracerGuard Guard;
  {
    obs::Span Outer("outer");
    {
      obs::Span A("child_a");
      A.arg("k", 1);
    }
    {
      obs::Span B("child_b");
      { obs::Span C("grandchild"); }
    }
  }
  const std::vector<obs::TraceEvent> &Events = obs::tracer().events();
  ASSERT_EQ(Events.size(), 4u);
  // Open order: parents before children.
  EXPECT_EQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[1].Name, "child_a");
  EXPECT_EQ(Events[2].Name, "child_b");
  EXPECT_EQ(Events[3].Name, "grandchild");
  EXPECT_EQ(Events[0].Depth, 0u);
  EXPECT_EQ(Events[1].Depth, 1u);
  EXPECT_EQ(Events[2].Depth, 1u);
  EXPECT_EQ(Events[3].Depth, 2u);
  expectContainment(Events);
  // Siblings do not overlap: child_a closed before child_b opened.
  EXPECT_LE(Events[1].BeginUs + Events[1].DurUs, Events[2].BeginUs + 1e-6);
}

TEST(Trace, DisabledSpansCostNothingAndRecordNothing) {
  obs::tracer().disable();
  obs::tracer().reset();
  {
    obs::Span S("invisible");
    EXPECT_FALSE(S.active());
    S.arg("k", 42); // Must be a no-op, not a crash.
  }
  EXPECT_TRUE(obs::tracer().events().empty());
}

TEST(Trace, JsonIsWellFormedChromeTrace) {
  TracerGuard Guard;
  {
    obs::Span S("phase \"quoted\"\\slash");
    S.arg("kernel", "mm\n").arg("n", 3).arg("ratio", 0.5).arg("ok", true);
  }
  std::string Error;
  std::optional<obs::json::Value> Doc =
      obs::json::parse(obs::tracer().json(), Error);
  ASSERT_TRUE(Doc) << Error;
  const obs::json::Value *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  // The stream opens with process/thread metadata ("M" phase) so viewers
  // label the track, followed by the one complete span.
  unsigned Metadata = 0;
  const obs::json::Value *Span = nullptr;
  for (const obs::json::Value &Ev : Events->Items) {
    if (Ev.at("ph").Str == "M") {
      const std::string &MName = Ev.at("name").Str;
      EXPECT_TRUE(MName == "process_name" || MName == "thread_name")
          << MName;
      ++Metadata;
      continue;
    }
    ASSERT_EQ(Span, nullptr) << "more than one span event";
    Span = &Ev;
  }
  EXPECT_GE(Metadata, 2u);
  ASSERT_TRUE(Span);
  const obs::json::Value &E = *Span;
  EXPECT_EQ(E.at("name").Str, "phase \"quoted\"\\slash");
  EXPECT_EQ(E.at("ph").Str, "X");
  EXPECT_TRUE(E.at("ts").isNumber());
  EXPECT_TRUE(E.at("dur").isNumber());
  EXPECT_GE(E.at("dur").Num, 0);
  const obs::json::Value &Args = E.at("args");
  ASSERT_TRUE(Args.isObject());
  EXPECT_EQ(Args.at("kernel").Str, "mm\n");
  EXPECT_EQ(Args.at("n").Num, 3);
  EXPECT_EQ(Args.at("ratio").Num, 0.5);
  EXPECT_TRUE(Args.at("ok").BoolVal);
}

TEST(Trace, ResetDropsEventsAndSurvivesOpenSpan) {
  TracerGuard Guard;
  {
    obs::Span S("dropped");
    obs::tracer().reset(); // Destructor must tolerate the stale index.
  }
  EXPECT_TRUE(obs::tracer().events().empty());
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsArraysObjects) {
  std::string Error;
  std::optional<obs::json::Value> V = obs::json::parse(
      " {\"a\": [1, -2.5, 1e2], \"b\": {\"c\": null, \"d\": false}, "
      "\"s\": \"x\\u0041\\n\"} ",
      Error);
  ASSERT_TRUE(V) << Error;
  const obs::json::Value &A = V->at("a");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.Items.size(), 3u);
  EXPECT_EQ(A.Items[0].Num, 1);
  EXPECT_EQ(A.Items[1].Num, -2.5);
  EXPECT_EQ(A.Items[2].Num, 100);
  EXPECT_TRUE(V->at("b").at("c").isNull());
  EXPECT_FALSE(V->at("b").at("d").BoolVal);
  EXPECT_EQ(V->at("s").Str, "xA\n");
}

TEST(Json, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(obs::json::parse("{\"a\":}", Error));
  EXPECT_FALSE(obs::json::parse("[1, 2", Error));
  EXPECT_FALSE(obs::json::parse("{} trailing", Error));
  EXPECT_FALSE(obs::json::parse("", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Json, EscapeRoundTrips) {
  std::string Raw = "tab\t quote\" back\\ newline\n ctrl\x01";
  std::string Error;
  std::optional<obs::json::Value> V =
      obs::json::parse("\"" + obs::json::escape(Raw) + "\"", Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->Str, Raw);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterAccuracyAndSnapshotDiff) {
  obs::MetricsRegistry &M = obs::metrics();
  obs::Counter &C = M.counter("test.obs_counter");
  obs::MetricsSnapshot Before = M.snapshot();
  C.inc();
  C.add(9);
  obs::MetricsSnapshot After = M.snapshot();
  EXPECT_EQ(After.since(Before).counter("test.obs_counter"), 10u);
  // Absent names read as zero.
  EXPECT_EQ(After.counter("test.never_created"), 0u);
}

TEST(Metrics, HistogramAccuracy) {
  obs::Histogram &H = obs::metrics().histogram("test.obs_hist");
  H.reset();
  H.observe(1);
  H.observe(3);
  H.observe(8);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 12);
  EXPECT_EQ(H.min(), 1);
  EXPECT_EQ(H.max(), 8);
  EXPECT_EQ(H.mean(), 4);
  obs::MetricsSnapshot S = obs::metrics().snapshot();
  const obs::HistogramSummary *Sum = S.histogram("test.obs_hist");
  ASSERT_TRUE(Sum);
  EXPECT_EQ(Sum->Count, 3u);
  EXPECT_EQ(Sum->Sum, 12);
}

TEST(Metrics, ResetKeepsCachedReferencesValid) {
  obs::MetricsRegistry &M = obs::metrics();
  obs::Counter &C = M.counter("test.obs_reset");
  C.add(5);
  obs::MetricsSnapshot Mid = M.snapshot();
  EXPECT_GE(Mid.counter("test.obs_reset"), 5u);
  M.reset();
  // The same reference must still work after reset() (hot call sites
  // cache these in function-local statics).
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  EXPECT_EQ(M.snapshot().counter("test.obs_reset"), 1u);
}

TEST(Metrics, SnapshotJsonParsesBack) {
  obs::MetricsRegistry &M = obs::metrics();
  M.counter("test.obs_json").add(7);
  M.histogram("test.obs_json_hist").observe(2);
  obs::MetricsSnapshot S = M.snapshot();
  std::string Error;
  std::optional<obs::json::Value> Doc = obs::json::parse(S.json(), Error);
  ASSERT_TRUE(Doc) << Error;
  EXPECT_EQ(Doc->at("counters").at("test.obs_json").Num, 7);
  EXPECT_EQ(Doc->at("histograms").at("test.obs_json_hist").at("count").Num,
            1);
  // table() lists the nonzero entries.
  EXPECT_NE(S.table().find("test.obs_json"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Histogram buckets, percentiles and merging
//===----------------------------------------------------------------------===//

TEST(Metrics, BucketSchemeIsFixedAndTotal) {
  using H = obs::Histogram;
  // Sub-1 samples (and garbage) land in bucket 0.
  EXPECT_EQ(H::bucketIndex(0), 0u);
  EXPECT_EQ(H::bucketIndex(0.99), 0u);
  EXPECT_EQ(H::bucketIndex(-5), 0u);
  // Quarter-octave spacing: 1 opens bucket 1, each doubling spans 4.
  EXPECT_EQ(H::bucketIndex(1), 1u);
  EXPECT_EQ(H::bucketIndex(2), 5u);
  EXPECT_EQ(H::bucketIndex(4), 9u);
  // Every bucket interval is nonempty and its geometric midpoint maps
  // back to the bucket (midpoints avoid FP sensitivity at boundaries).
  for (unsigned I = 0; I != H::NumBuckets; ++I) {
    double Lo = H::bucketLowerBound(I);
    double Hi = H::bucketUpperBound(I);
    ASSERT_LT(Lo, Hi) << I;
    double Mid = I == 0 ? (Lo + Hi) / 2 : std::sqrt(Lo * Hi);
    EXPECT_EQ(H::bucketIndex(Mid), I) << "midpoint of bucket " << I;
  }
  // The last bucket absorbs anything beyond its nominal bound.
  EXPECT_EQ(H::bucketIndex(1e300), H::NumBuckets - 1);
}

TEST(Metrics, PercentilesWithinBucketErrorOnUniformData) {
  obs::Histogram H;
  for (int I = 1; I <= 10000; ++I)
    H.observe(I);
  obs::HistogramSummary S = H.summary();
  // Quarter-octave buckets bound the relative error at ~19%.
  for (double Q : {50.0, 90.0, 99.0}) {
    double True = Q * 100.0; // The Q-th percentile of 1..10000.
    double Est = S.percentile(Q);
    EXPECT_NEAR(Est, True, 0.19 * True) << "p" << Q;
  }
  // The estimate is clamped to the observed range at the extremes.
  EXPECT_GE(S.percentile(0), 1.0);
  EXPECT_LE(S.percentile(100), 10000.0);
}

TEST(Metrics, SingleSamplePercentilesAreExact) {
  obs::Histogram H;
  H.observe(42);
  obs::HistogramSummary S = H.summary();
  // Clamping to [Min, Max] collapses every percentile onto the sample.
  EXPECT_DOUBLE_EQ(S.percentile(0), 42);
  EXPECT_DOUBLE_EQ(S.percentile(50), 42);
  EXPECT_DOUBLE_EQ(S.percentile(100), 42);
}

TEST(Metrics, SummaryMergeIsAssociativeAndLossless) {
  // Three disjoint sample sets, as if from three fleet processes.
  obs::Histogram HA, HB, HC, HAll;
  for (int I = 1; I <= 50; ++I) {
    HA.observe(I);
    HAll.observe(I);
  }
  for (int I = 1000; I <= 1100; I += 10) {
    HB.observe(I);
    HAll.observe(I);
  }
  for (double V : {0.25, 0.5, 7.5}) {
    HC.observe(V);
    HAll.observe(V);
  }
  obs::HistogramSummary A = HA.summary(), B = HB.summary(),
                        C = HC.summary();
  // (A + B) + C.
  obs::HistogramSummary Left = A;
  Left.merge(B);
  Left.merge(C);
  // A + (B + C).
  obs::HistogramSummary BC = B;
  BC.merge(C);
  obs::HistogramSummary Right = A;
  Right.merge(BC);
  expectSummariesEqual(Left, Right);
  // And either order equals observing everything in one histogram.
  expectSummariesEqual(Left, HAll.summary());
  // Merging an empty summary is the identity.
  obs::HistogramSummary Empty;
  obs::HistogramSummary WithEmpty = Left;
  WithEmpty.merge(Empty);
  expectSummariesEqual(WithEmpty, Left);
}

//===----------------------------------------------------------------------===//
// Exposition format
//===----------------------------------------------------------------------===//

TEST(Exposition, NameSanitization) {
  EXPECT_EQ(obs::expositionName("lp.ilp_solves"), "pinj_lp_ilp_solves");
  EXPECT_EQ(obs::expositionName("weird-name:x/y"), "pinj_weird_name_x_y");
  EXPECT_EQ(obs::expositionName(""), "pinj_");
}

TEST(Exposition, RendersCountersAndCumulativeHistograms) {
  obs::MetricsSnapshot S;
  S.Counters["test.expo_counter"] = 7;
  obs::Histogram H;
  H.observe(0.5);
  H.observe(0.5);
  H.observe(100);
  S.Histograms["test.expo_hist"] = H.summary();
  std::string Out = obs::renderExposition(S);
  EXPECT_NE(Out.find("# TYPE pinj_test_expo_counter counter\n"
                     "pinj_test_expo_counter 7\n"),
            std::string::npos);
  EXPECT_NE(Out.find("# TYPE pinj_test_expo_hist histogram\n"),
            std::string::npos);
  // Cumulative le-series: the two sub-1 samples close at le="1.0", the
  // +Inf bucket and _count carry the total, _sum the exact total.
  EXPECT_NE(Out.find("pinj_test_expo_hist_bucket{le=\"1.0\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Out.find("pinj_test_expo_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Out.find("pinj_test_expo_hist_sum 101.0\n"), std::string::npos);
  EXPECT_NE(Out.find("pinj_test_expo_hist_count 3\n"), std::string::npos);
}

TEST(Exposition, WriterLeavesFinalSnapshotOnStop) {
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "pinj_obs_test_expo.prom";
  std::error_code Ec;
  fs::remove(Path, Ec);
  obs::metrics().counter("test.expo_writer").inc();
  {
    obs::ExpositionWriter Writer;
    Writer.start(Path.string(), /*IntervalMs=*/60000);
    EXPECT_TRUE(Writer.running());
    // stop() performs one final write even when no interval elapsed.
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(Text.find("pinj_test_expo_writer 1"), std::string::npos);
  fs::remove(Path, Ec);
}

//===----------------------------------------------------------------------===//
// ReportSink
//===----------------------------------------------------------------------===//

TEST(Report, SinkJsonParsesBack) {
  obs::ReportSink Sink;
  obs::OperatorRecord Op;
  Op.Name = "mm";
  Op.Influenced = true;
  obs::ConfigRecord Cfg;
  Cfg.Name = "infl";
  Cfg.TimeUs = 12.5;
  Cfg.Transactions = 64;
  Cfg.Metrics.Counters["lp.ilp_solves"] = 4;
  Op.Configs.push_back(Cfg);
  Sink.add(Op);
  std::string Error;
  std::optional<obs::json::Value> Doc = obs::json::parse(Sink.json(), Error);
  ASSERT_TRUE(Doc) << Error;
  const obs::json::Value *Ops = Doc->find("operators");
  ASSERT_TRUE(Ops && Ops->isArray());
  ASSERT_EQ(Ops->Items.size(), 1u);
  const obs::json::Value &O = Ops->Items[0];
  EXPECT_EQ(O.at("name").Str, "mm");
  EXPECT_TRUE(O.at("influenced").BoolVal);
  const obs::json::Value *Configs = O.find("configs");
  ASSERT_TRUE(Configs && Configs->isArray());
  ASSERT_EQ(Configs->Items.size(), 1u);
  EXPECT_EQ(Configs->Items[0].at("time_us").Num, 12.5);
  EXPECT_EQ(
      Configs->Items[0].at("metrics").at("counters").at("lp.ilp_solves").Num,
      4);
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

TEST(ObsPipeline, TraceCoversAllPhasesWithContainment) {
  TracerGuard Guard;
  Kernel K = makeRunningExample(16);
  PipelineOptions Options;
  runOperator(K, Options);
  const std::vector<obs::TraceEvent> &Events = obs::tracer().events();
  EXPECT_EQ(countEvents(Events, "pipeline.operator"), 1u);
  EXPECT_GE(countEvents(Events, "poly.dependences"), 1u);
  EXPECT_GE(countEvents(Events, "sched.schedule"), 2u); // isl + influenced
  EXPECT_GE(countEvents(Events, "sched.dim"), 2u); // one per dimension
  EXPECT_GE(countEvents(Events, "sched.ilp"), 1u);
  EXPECT_GE(countEvents(Events, "influence.scenarios"), 1u);
  EXPECT_GE(countEvents(Events, "codegen.map_to_gpu"), 1u);
  EXPECT_GE(countEvents(Events, "gpusim.simulate"), 3u); // isl/novec/infl
  expectContainment(Events);
  // Every event sits inside the root pipeline.operator span.
  const obs::TraceEvent &Root = Events.front();
  ASSERT_EQ(Root.Name, "pipeline.operator");
  for (const obs::TraceEvent &E : Events) {
    EXPECT_GE(E.BeginUs, Root.BeginUs - 1e-6) << E.Name;
    EXPECT_LE(E.BeginUs + E.DurUs, Root.BeginUs + Root.DurUs + 1e-6)
        << E.Name;
  }
  // And the whole trace serializes to parseable Chrome JSON.
  std::string Error;
  ASSERT_TRUE(obs::json::parse(obs::tracer().json(), Error)) << Error;
}

TEST(ObsPipeline, RunOperatorAttributesMetricsAndFillsSink) {
  Kernel K = makeRunningExample(16);
  PipelineOptions Options;
  obs::ReportSink Sink;
  Options.Sink = &Sink;
  OperatorReport R = runOperator(K, Options);
  // The reference configuration solved ILPs while scheduling.
  EXPECT_GT(R.Isl.Metrics.counter("lp.ilp_solves"), 0u);
  EXPECT_GT(R.Isl.Metrics.counter("lp.simplex_pivots"), 0u);
  // Simulation counted warps and memory transactions.
  EXPECT_GT(R.Metrics.counter("gpusim.transactions"), 0u);
  EXPECT_GT(R.Metrics.counter("gpusim.warps_simulated"), 0u);
  EXPECT_GT(R.Metrics.counter("poly.dependences_computed"), 0u);
  // The whole-operator delta dominates any per-config delta.
  EXPECT_GE(R.Metrics.counter("lp.ilp_solves"),
            R.Isl.Metrics.counter("lp.ilp_solves"));
  // The sink got exactly this operator.
  ASSERT_EQ(Sink.operators().size(), 1u);
  EXPECT_EQ(Sink.operators()[0].Name, K.Name);
  ASSERT_EQ(Sink.operators()[0].Configs.size(), 4u);
  EXPECT_EQ(Sink.operators()[0].Configs[0].Name, "isl");
  EXPECT_GT(Sink.operators()[0].Configs[0].Transactions, 0);
  // The stats table mentions every configuration.
  std::string Table = printStatsTable(R);
  EXPECT_NE(Table.find("isl"), std::string::npos);
  EXPECT_NE(Table.find("novec"), std::string::npos);
  EXPECT_NE(Table.find("infl"), std::string::npos);
  EXPECT_NE(Table.find("tvm"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(Journal, DisabledEventsCostNothingAndRecordNothing) {
  obs::journal().disable();
  obs::journal().reset();
  {
    obs::JournalEvent E("invisible");
    EXPECT_FALSE(E.active());
    E.field("k", 1).field("s", "x"); // Must be a no-op, not a crash.
  }
  EXPECT_EQ(obs::journal().size(), 0u);
  EXPECT_TRUE(obs::journal().snapshot().empty());
}

TEST(Journal, RingEvictsOldestAndCountsDrops) {
  JournalGuard Guard(/*Capacity=*/4);
  for (int I = 0; I != 6; ++I)
    obs::JournalEvent("ev").field("i", I);
  EXPECT_EQ(obs::journal().size(), 4u);
  EXPECT_EQ(obs::journal().dropped(), 2u);
  std::vector<obs::JournalRecord> Snap = obs::journal().snapshot();
  ASSERT_EQ(Snap.size(), 4u);
  // Oldest first; records 0 and 1 were evicted.
  EXPECT_EQ(Snap.front().Fields.at(0).Value, "2");
  EXPECT_EQ(Snap.back().Fields.at(0).Value, "5");
}

TEST(Journal, RecordJsonlParsesBackTyped) {
  JournalGuard Guard;
  obs::RequestScope Scope("r-test-0001");
  obs::JournalEvent("solve_end")
      .field("status", "optimal \"quoted\"\nline")
      .field("nodes", 17)
      .field("neg", -3)
      .field("big", std::uint64_t(1) << 40)
      .field("ok", true)
      .field("ratio", 2.5);
  std::vector<obs::JournalRecord> Snap = obs::journal().snapshot();
  ASSERT_EQ(Snap.size(), 1u);
  std::string Error;
  std::optional<obs::json::Value> Doc =
      obs::json::parse(Snap[0].jsonl(), Error);
  ASSERT_TRUE(Doc) << Error;
  EXPECT_TRUE(Doc->at("ts_us").isNumber());
  EXPECT_GE(Doc->at("ts_us").Num, 0);
  EXPECT_EQ(Doc->at("request_id").Str, "r-test-0001");
  EXPECT_EQ(Doc->at("type").Str, "solve_end");
  EXPECT_EQ(Doc->at("status").Str, "optimal \"quoted\"\nline");
  EXPECT_EQ(Doc->at("nodes").Num, 17);
  EXPECT_EQ(Doc->at("neg").Num, -3);
  EXPECT_EQ(Doc->at("big").Num, static_cast<double>(std::uint64_t(1) << 40));
  EXPECT_TRUE(Doc->at("ok").BoolVal);
  EXPECT_EQ(Doc->at("ratio").Num, 2.5);
}

TEST(Journal, RequestIdsAreUniqueAndScoped) {
  std::string A = obs::nextRequestId();
  std::string B = obs::nextRequestId();
  EXPECT_NE(A, B);
  EXPECT_EQ(A[0], 'r');
  EXPECT_NE(A.find('-'), std::string::npos);
  // Ids share the per-process token (the part before the sequence).
  EXPECT_EQ(A.substr(0, A.find('-')), B.substr(0, B.find('-')));
  // Scopes nest and restore.
  EXPECT_EQ(obs::currentRequestId(), "");
  {
    obs::RequestScope Outer(A);
    EXPECT_EQ(obs::currentRequestId(), A);
    {
      obs::RequestScope Inner(B);
      EXPECT_EQ(obs::currentRequestId(), B);
    }
    EXPECT_EQ(obs::currentRequestId(), A);
  }
  EXPECT_EQ(obs::currentRequestId(), "");
}

TEST(Journal, FileSinkWritesOneParseableLinePerRecord) {
  namespace fs = std::filesystem;
  fs::path Path = fs::temp_directory_path() / "pinj_obs_test_journal.jsonl";
  std::error_code Ec;
  fs::remove(Path, Ec);
  JournalGuard Guard;
  std::string Error;
  ASSERT_TRUE(obs::journal().openFile(Path.string(), Error)) << Error;
  {
    obs::RequestScope Scope(obs::nextRequestId());
    obs::JournalEvent("request_start").field("operator", "mm");
    obs::JournalEvent("request_end").field("dur_us", 12);
  }
  obs::journal().closeFile();
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    std::optional<obs::json::Value> Doc = obs::json::parse(Line, Error);
    ASSERT_TRUE(Doc) << Error << " in: " << Line;
    EXPECT_TRUE(Doc->at("type").isString());
  }
  EXPECT_EQ(Lines, 2u);
  // A sink on a path that cannot be created reports the error.
  EXPECT_FALSE(obs::journal().openFile("/nonexistent-dir/x/y.jsonl", Error));
  EXPECT_FALSE(Error.empty());
  fs::remove(Path, Ec);
}

// The batch compiler journals from concurrent workers; under the
// POLYINJECT_SANITIZE=thread build this doubles as the data-race check.
TEST(Journal, ConcurrentEmitIsThreadSafe) {
  JournalGuard Guard;
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 250;
  std::vector<std::string> Ids;
  for (unsigned T = 0; T != Threads; ++T)
    Ids.push_back(obs::nextRequestId());
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&, T] {
      obs::RequestScope Scope(Ids[T]);
      for (unsigned I = 0; I != PerThread; ++I)
        obs::JournalEvent("tick").field("i", I);
    });
  for (std::thread &Th : Pool)
    Th.join();
  std::vector<obs::JournalRecord> Snap = obs::journal().snapshot();
  ASSERT_EQ(Snap.size(), Threads * PerThread);
  std::map<std::string, unsigned> PerId;
  for (const obs::JournalRecord &R : Snap)
    ++PerId[R.RequestId];
  ASSERT_EQ(PerId.size(), Threads);
  for (const auto &[Id, N] : PerId)
    EXPECT_EQ(N, PerThread) << Id;
}

//===----------------------------------------------------------------------===//
// JSON parser edge cases
//===----------------------------------------------------------------------===//

TEST(Json, StringEscapeEdgeCases) {
  std::string Error;
  // Every escape form, including multi-byte \u code points.
  std::optional<obs::json::Value> V = obs::json::parse(
      "\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\t\\u0041\\u00e9\\u20ac\"", Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->Str, "a\"b\\c/d\b\f\n\r\t"
                    "A\xC3\xA9\xE2\x82\xAC");
  // Raw control characters, bad escapes and truncation are rejected.
  EXPECT_FALSE(obs::json::parse("\"a\x01" "b\"", Error));
  EXPECT_FALSE(obs::json::parse("\"\\q\"", Error));
  EXPECT_FALSE(obs::json::parse("\"\\u00\"", Error));
  EXPECT_FALSE(obs::json::parse("\"\\u00zz\"", Error));
  EXPECT_FALSE(obs::json::parse("\"abc", Error));
}

TEST(Json, NestedArraysAndDepthLimit) {
  std::string Error;
  std::optional<obs::json::Value> V = obs::json::parse(
      "[[1,[2,[3,[]]]],{\"k\":[{\"x\":[]}]}]", Error);
  ASSERT_TRUE(V) << Error;
  ASSERT_TRUE(V->isArray());
  ASSERT_EQ(V->Items.size(), 2u);
  const obs::json::Value &Deep = V->Items[0].Items[1].Items[1];
  ASSERT_EQ(Deep.Items.size(), 2u);
  EXPECT_EQ(Deep.Items[0].Num, 3);
  EXPECT_TRUE(Deep.Items[1].Items.empty());
  EXPECT_TRUE(V->Items[1].at("k").Items[0].at("x").isArray());
  // Pathological nesting fails cleanly instead of overflowing the stack.
  std::string Pathological(300, '[');
  Pathological += std::string(300, ']');
  EXPECT_FALSE(obs::json::parse(Pathological, Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos);
}

TEST(Json, NumberOverflowIsRejected) {
  std::string Error;
  // JSON has no infinity: literals that overflow double are errors, at
  // top level and nested alike.
  EXPECT_FALSE(obs::json::parse("1e999", Error));
  EXPECT_NE(Error.find("number out of range"), std::string::npos);
  EXPECT_FALSE(obs::json::parse("-1e999", Error));
  EXPECT_FALSE(obs::json::parse("[1, 1e999]", Error));
  EXPECT_FALSE(obs::json::parse("{\"v\": 1e999}", Error));
  // Large but representable magnitudes still parse.
  std::optional<obs::json::Value> V = obs::json::parse("1e308", Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_TRUE(std::isfinite(V->Num));
  EXPECT_FALSE(obs::json::parse("1e+", Error)); // Still malformed.
}

TEST(ObsPipeline, FallbackSpansCarryKind) {
  TracerGuard Guard;
  // The producer/consumer pair needs fallback work under influence.
  Kernel K = makeProducerConsumer(16, 16);
  PipelineOptions Options;
  runOperator(K, Options);
  // Whatever fallbacks fired, each marker span names its kind.
  for (const obs::TraceEvent &E : obs::tracer().events()) {
    if (E.Name != "sched.fallback")
      continue;
    bool HasKind = false;
    for (const obs::TraceArg &A : E.Args)
      HasKind |= A.Key == std::string("kind") && !A.Value.empty();
    EXPECT_TRUE(HasKind);
  }
}
