//===- tests/obs_test.cpp - observability subsystem tests -----------------===//

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "pipeline/Pipeline.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

/// Enables JSON span buffering for one test and restores the previous
/// tracer state afterwards (the tracer is process-wide and other suites
/// run in the same binary).
class TracerGuard {
public:
  TracerGuard() {
    obs::tracer().disable();
    obs::tracer().reset();
    obs::tracer().enable(obs::Tracer::Json);
  }
  ~TracerGuard() {
    obs::tracer().disable();
    obs::tracer().reset();
  }
};

/// Checks that every event nests inside the closest preceding event of
/// smaller depth (events are stored in open order).
void expectContainment(const std::vector<obs::TraceEvent> &Events) {
  std::vector<const obs::TraceEvent *> Stack;
  for (const obs::TraceEvent &E : Events) {
    ASSERT_TRUE(E.Closed) << E.Name;
    while (!Stack.empty() && Stack.back()->Depth >= E.Depth)
      Stack.pop_back();
    if (!Stack.empty()) {
      const obs::TraceEvent &Parent = *Stack.back();
      EXPECT_GE(E.BeginUs, Parent.BeginUs - 1e-6)
          << E.Name << " starts before parent " << Parent.Name;
      EXPECT_LE(E.BeginUs + E.DurUs, Parent.BeginUs + Parent.DurUs + 1e-6)
          << E.Name << " ends after parent " << Parent.Name;
    }
    Stack.push_back(&E);
  }
}

unsigned countEvents(const std::vector<obs::TraceEvent> &Events,
                     const std::string &Name) {
  unsigned N = 0;
  for (const obs::TraceEvent &E : Events)
    if (E.Name == Name)
      ++N;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Tracer and Span
//===----------------------------------------------------------------------===//

TEST(Trace, SpanNestingAndOrdering) {
  TracerGuard Guard;
  {
    obs::Span Outer("outer");
    {
      obs::Span A("child_a");
      A.arg("k", 1);
    }
    {
      obs::Span B("child_b");
      { obs::Span C("grandchild"); }
    }
  }
  const std::vector<obs::TraceEvent> &Events = obs::tracer().events();
  ASSERT_EQ(Events.size(), 4u);
  // Open order: parents before children.
  EXPECT_EQ(Events[0].Name, "outer");
  EXPECT_EQ(Events[1].Name, "child_a");
  EXPECT_EQ(Events[2].Name, "child_b");
  EXPECT_EQ(Events[3].Name, "grandchild");
  EXPECT_EQ(Events[0].Depth, 0u);
  EXPECT_EQ(Events[1].Depth, 1u);
  EXPECT_EQ(Events[2].Depth, 1u);
  EXPECT_EQ(Events[3].Depth, 2u);
  expectContainment(Events);
  // Siblings do not overlap: child_a closed before child_b opened.
  EXPECT_LE(Events[1].BeginUs + Events[1].DurUs, Events[2].BeginUs + 1e-6);
}

TEST(Trace, DisabledSpansCostNothingAndRecordNothing) {
  obs::tracer().disable();
  obs::tracer().reset();
  {
    obs::Span S("invisible");
    EXPECT_FALSE(S.active());
    S.arg("k", 42); // Must be a no-op, not a crash.
  }
  EXPECT_TRUE(obs::tracer().events().empty());
}

TEST(Trace, JsonIsWellFormedChromeTrace) {
  TracerGuard Guard;
  {
    obs::Span S("phase \"quoted\"\\slash");
    S.arg("kernel", "mm\n").arg("n", 3).arg("ratio", 0.5).arg("ok", true);
  }
  std::string Error;
  std::optional<obs::json::Value> Doc =
      obs::json::parse(obs::tracer().json(), Error);
  ASSERT_TRUE(Doc) << Error;
  const obs::json::Value *Events = Doc->find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  ASSERT_EQ(Events->Items.size(), 1u);
  const obs::json::Value &E = Events->Items[0];
  EXPECT_EQ(E.at("name").Str, "phase \"quoted\"\\slash");
  EXPECT_EQ(E.at("ph").Str, "X");
  EXPECT_TRUE(E.at("ts").isNumber());
  EXPECT_TRUE(E.at("dur").isNumber());
  EXPECT_GE(E.at("dur").Num, 0);
  const obs::json::Value &Args = E.at("args");
  ASSERT_TRUE(Args.isObject());
  EXPECT_EQ(Args.at("kernel").Str, "mm\n");
  EXPECT_EQ(Args.at("n").Num, 3);
  EXPECT_EQ(Args.at("ratio").Num, 0.5);
  EXPECT_TRUE(Args.at("ok").BoolVal);
}

TEST(Trace, ResetDropsEventsAndSurvivesOpenSpan) {
  TracerGuard Guard;
  {
    obs::Span S("dropped");
    obs::tracer().reset(); // Destructor must tolerate the stale index.
  }
  EXPECT_TRUE(obs::tracer().events().empty());
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsArraysObjects) {
  std::string Error;
  std::optional<obs::json::Value> V = obs::json::parse(
      " {\"a\": [1, -2.5, 1e2], \"b\": {\"c\": null, \"d\": false}, "
      "\"s\": \"x\\u0041\\n\"} ",
      Error);
  ASSERT_TRUE(V) << Error;
  const obs::json::Value &A = V->at("a");
  ASSERT_TRUE(A.isArray());
  ASSERT_EQ(A.Items.size(), 3u);
  EXPECT_EQ(A.Items[0].Num, 1);
  EXPECT_EQ(A.Items[1].Num, -2.5);
  EXPECT_EQ(A.Items[2].Num, 100);
  EXPECT_TRUE(V->at("b").at("c").isNull());
  EXPECT_FALSE(V->at("b").at("d").BoolVal);
  EXPECT_EQ(V->at("s").Str, "xA\n");
}

TEST(Json, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(obs::json::parse("{\"a\":}", Error));
  EXPECT_FALSE(obs::json::parse("[1, 2", Error));
  EXPECT_FALSE(obs::json::parse("{} trailing", Error));
  EXPECT_FALSE(obs::json::parse("", Error));
  EXPECT_FALSE(Error.empty());
}

TEST(Json, EscapeRoundTrips) {
  std::string Raw = "tab\t quote\" back\\ newline\n ctrl\x01";
  std::string Error;
  std::optional<obs::json::Value> V =
      obs::json::parse("\"" + obs::json::escape(Raw) + "\"", Error);
  ASSERT_TRUE(V) << Error;
  EXPECT_EQ(V->Str, Raw);
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterAccuracyAndSnapshotDiff) {
  obs::MetricsRegistry &M = obs::metrics();
  obs::Counter &C = M.counter("test.obs_counter");
  obs::MetricsSnapshot Before = M.snapshot();
  C.inc();
  C.add(9);
  obs::MetricsSnapshot After = M.snapshot();
  EXPECT_EQ(After.since(Before).counter("test.obs_counter"), 10u);
  // Absent names read as zero.
  EXPECT_EQ(After.counter("test.never_created"), 0u);
}

TEST(Metrics, HistogramAccuracy) {
  obs::Histogram &H = obs::metrics().histogram("test.obs_hist");
  H.reset();
  H.observe(1);
  H.observe(3);
  H.observe(8);
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 12);
  EXPECT_EQ(H.min(), 1);
  EXPECT_EQ(H.max(), 8);
  EXPECT_EQ(H.mean(), 4);
  obs::MetricsSnapshot S = obs::metrics().snapshot();
  const obs::HistogramSummary *Sum = S.histogram("test.obs_hist");
  ASSERT_TRUE(Sum);
  EXPECT_EQ(Sum->Count, 3u);
  EXPECT_EQ(Sum->Sum, 12);
}

TEST(Metrics, ResetKeepsCachedReferencesValid) {
  obs::MetricsRegistry &M = obs::metrics();
  obs::Counter &C = M.counter("test.obs_reset");
  C.add(5);
  obs::MetricsSnapshot Mid = M.snapshot();
  EXPECT_GE(Mid.counter("test.obs_reset"), 5u);
  M.reset();
  // The same reference must still work after reset() (hot call sites
  // cache these in function-local statics).
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  EXPECT_EQ(M.snapshot().counter("test.obs_reset"), 1u);
}

TEST(Metrics, SnapshotJsonParsesBack) {
  obs::MetricsRegistry &M = obs::metrics();
  M.counter("test.obs_json").add(7);
  M.histogram("test.obs_json_hist").observe(2);
  obs::MetricsSnapshot S = M.snapshot();
  std::string Error;
  std::optional<obs::json::Value> Doc = obs::json::parse(S.json(), Error);
  ASSERT_TRUE(Doc) << Error;
  EXPECT_EQ(Doc->at("counters").at("test.obs_json").Num, 7);
  EXPECT_EQ(Doc->at("histograms").at("test.obs_json_hist").at("count").Num,
            1);
  // table() lists the nonzero entries.
  EXPECT_NE(S.table().find("test.obs_json"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ReportSink
//===----------------------------------------------------------------------===//

TEST(Report, SinkJsonParsesBack) {
  obs::ReportSink Sink;
  obs::OperatorRecord Op;
  Op.Name = "mm";
  Op.Influenced = true;
  obs::ConfigRecord Cfg;
  Cfg.Name = "infl";
  Cfg.TimeUs = 12.5;
  Cfg.Transactions = 64;
  Cfg.Metrics.Counters["lp.ilp_solves"] = 4;
  Op.Configs.push_back(Cfg);
  Sink.add(Op);
  std::string Error;
  std::optional<obs::json::Value> Doc = obs::json::parse(Sink.json(), Error);
  ASSERT_TRUE(Doc) << Error;
  const obs::json::Value *Ops = Doc->find("operators");
  ASSERT_TRUE(Ops && Ops->isArray());
  ASSERT_EQ(Ops->Items.size(), 1u);
  const obs::json::Value &O = Ops->Items[0];
  EXPECT_EQ(O.at("name").Str, "mm");
  EXPECT_TRUE(O.at("influenced").BoolVal);
  const obs::json::Value *Configs = O.find("configs");
  ASSERT_TRUE(Configs && Configs->isArray());
  ASSERT_EQ(Configs->Items.size(), 1u);
  EXPECT_EQ(Configs->Items[0].at("time_us").Num, 12.5);
  EXPECT_EQ(
      Configs->Items[0].at("metrics").at("counters").at("lp.ilp_solves").Num,
      4);
}

//===----------------------------------------------------------------------===//
// Pipeline integration
//===----------------------------------------------------------------------===//

TEST(ObsPipeline, TraceCoversAllPhasesWithContainment) {
  TracerGuard Guard;
  Kernel K = makeRunningExample(16);
  PipelineOptions Options;
  runOperator(K, Options);
  const std::vector<obs::TraceEvent> &Events = obs::tracer().events();
  EXPECT_EQ(countEvents(Events, "pipeline.operator"), 1u);
  EXPECT_GE(countEvents(Events, "poly.dependences"), 1u);
  EXPECT_GE(countEvents(Events, "sched.schedule"), 2u); // isl + influenced
  EXPECT_GE(countEvents(Events, "sched.dim"), 2u); // one per dimension
  EXPECT_GE(countEvents(Events, "sched.ilp"), 1u);
  EXPECT_GE(countEvents(Events, "influence.scenarios"), 1u);
  EXPECT_GE(countEvents(Events, "codegen.map_to_gpu"), 1u);
  EXPECT_GE(countEvents(Events, "gpusim.simulate"), 3u); // isl/novec/infl
  expectContainment(Events);
  // Every event sits inside the root pipeline.operator span.
  const obs::TraceEvent &Root = Events.front();
  ASSERT_EQ(Root.Name, "pipeline.operator");
  for (const obs::TraceEvent &E : Events) {
    EXPECT_GE(E.BeginUs, Root.BeginUs - 1e-6) << E.Name;
    EXPECT_LE(E.BeginUs + E.DurUs, Root.BeginUs + Root.DurUs + 1e-6)
        << E.Name;
  }
  // And the whole trace serializes to parseable Chrome JSON.
  std::string Error;
  ASSERT_TRUE(obs::json::parse(obs::tracer().json(), Error)) << Error;
}

TEST(ObsPipeline, RunOperatorAttributesMetricsAndFillsSink) {
  Kernel K = makeRunningExample(16);
  PipelineOptions Options;
  obs::ReportSink Sink;
  Options.Sink = &Sink;
  OperatorReport R = runOperator(K, Options);
  // The reference configuration solved ILPs while scheduling.
  EXPECT_GT(R.Isl.Metrics.counter("lp.ilp_solves"), 0u);
  EXPECT_GT(R.Isl.Metrics.counter("lp.simplex_pivots"), 0u);
  // Simulation counted warps and memory transactions.
  EXPECT_GT(R.Metrics.counter("gpusim.transactions"), 0u);
  EXPECT_GT(R.Metrics.counter("gpusim.warps_simulated"), 0u);
  EXPECT_GT(R.Metrics.counter("poly.dependences_computed"), 0u);
  // The whole-operator delta dominates any per-config delta.
  EXPECT_GE(R.Metrics.counter("lp.ilp_solves"),
            R.Isl.Metrics.counter("lp.ilp_solves"));
  // The sink got exactly this operator.
  ASSERT_EQ(Sink.operators().size(), 1u);
  EXPECT_EQ(Sink.operators()[0].Name, K.Name);
  ASSERT_EQ(Sink.operators()[0].Configs.size(), 4u);
  EXPECT_EQ(Sink.operators()[0].Configs[0].Name, "isl");
  EXPECT_GT(Sink.operators()[0].Configs[0].Transactions, 0);
  // The stats table mentions every configuration.
  std::string Table = printStatsTable(R);
  EXPECT_NE(Table.find("isl"), std::string::npos);
  EXPECT_NE(Table.find("novec"), std::string::npos);
  EXPECT_NE(Table.find("infl"), std::string::npos);
  EXPECT_NE(Table.find("tvm"), std::string::npos);
}

TEST(ObsPipeline, FallbackSpansCarryKind) {
  TracerGuard Guard;
  // The producer/consumer pair needs fallback work under influence.
  Kernel K = makeProducerConsumer(16, 16);
  PipelineOptions Options;
  runOperator(K, Options);
  // Whatever fallbacks fired, each marker span names its kind.
  for (const obs::TraceEvent &E : obs::tracer().events()) {
    if (E.Name != "sched.fallback")
      continue;
    bool HasKind = false;
    for (const obs::TraceArg &A : E.Args)
      HasKind |= A.Key == std::string("kind") && !A.Value.empty();
    EXPECT_TRUE(HasKind);
  }
}
