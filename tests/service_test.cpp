//===- tests/service_test.cpp - Compilation service tests -----------------===//
//
// Covers src/service/: fingerprint stability and divergence, schedule
// (de)serialization round-trips over every shared test kernel, the
// LRU/disk cache (hits byte-identical, eviction, options mismatch,
// corrupt entries degrade to misses), the batch compiler's determinism
// across worker counts, and the thread safety of the obs metrics
// registry and tracer. This executable is the one the thread-sanitizer
// CTest configuration runs.
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "pipeline/Pipeline.h"
#include "sched/Schedule.h"
#include "service/BatchCompiler.h"
#include "service/Cache.h"
#include "service/Fingerprint.h"
#include "target/GpuAnalyticTarget.h"
#include "target/Target.h"

#include "TestKernels.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "gtest/gtest.h"

using namespace pinj;
using namespace pinj::service;

namespace {

/// Every kernel in tests/TestKernels.h, small shapes.
std::vector<Kernel> allTestKernels() {
  std::vector<Kernel> Kernels;
  Kernels.push_back(makeRunningExample(6));
  Kernels.push_back(makeElementwise(8, 10));
  Kernels.push_back(makeTranspose(8, 6));
  Kernels.push_back(makeProducerConsumer(6, 8));
  Kernels.push_back(makeBadOrderCopy(6, 8));
  Kernels.push_back(makeRowReduction(6, 8));
  return Kernels;
}

/// A fresh per-test directory under the gtest temp root.
std::filesystem::path freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  return Dir;
}

CachedCompilation entryFromReport(const OperatorReport &R) {
  CachedCompilation E;
  E.Isl = R.Isl.Sched;
  E.Novec = R.Novec.Sched;
  E.Infl = R.Infl.Sched;
  E.Influenced = R.Influenced;
  E.VecEligible = R.VecEligible;
  return E;
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST(FingerprintTest, DeterministicAndNameErased) {
  Kernel A = makeRunningExample(8);
  Kernel B = makeRunningExample(8);
  EXPECT_EQ(fingerprintKernel(A), fingerprintKernel(B));

  // Renaming the kernel, tensors, statements and iterators must not
  // change the structural hash.
  B.Name = "other_name";
  for (Tensor &T : B.Tensors)
    T.Name += "_renamed";
  for (Statement &S : B.Stmts) {
    S.Name += "_renamed";
    for (std::string &I : S.IterNames)
      I += "x";
  }
  EXPECT_EQ(fingerprintKernel(A), fingerprintKernel(B));
  EXPECT_EQ(fingerprintKernel(A).str(), fingerprintKernel(B).str());
  EXPECT_EQ(32u, fingerprintKernel(A).str().size());
}

TEST(FingerprintTest, StructureChangesHash) {
  Kernel Base = makeRunningExample(8);
  Fingerprint FP = fingerprintKernel(Base);

  // Extents.
  EXPECT_NE(FP, fingerprintKernel(makeRunningExample(9)));

  // Op kind.
  Kernel OpChanged = makeRunningExample(8);
  OpChanged.Stmts[0].Kind = OpKind::Exp;
  EXPECT_NE(FP, fingerprintKernel(OpChanged));

  // Access structure (read a transposed element).
  Kernel AccessChanged = makeRunningExample(8);
  std::swap(AccessChanged.Stmts[0].Reads[0].Indices[0],
            AccessChanged.Stmts[0].Reads[0].Indices[1]);
  EXPECT_NE(FP, fingerprintKernel(AccessChanged));

  // Element width.
  Kernel WidthChanged = makeRunningExample(8);
  WidthChanged.Tensors[0].ElemBytes = 2;
  EXPECT_NE(FP, fingerprintKernel(WidthChanged));

  // Statement order (betas included in the hash).
  Kernel OrderChanged = makeRunningExample(8);
  std::swap(OrderChanged.Stmts[0].OrigBeta, OrderChanged.Stmts[1].OrigBeta);
  EXPECT_NE(FP, fingerprintKernel(OrderChanged));

  // Distinct kernels of the shared set are pairwise distinct.
  std::vector<Kernel> Kernels = allTestKernels();
  for (unsigned I = 0; I != Kernels.size(); ++I)
    for (unsigned J = I + 1; J != Kernels.size(); ++J)
      EXPECT_NE(fingerprintKernel(Kernels[I]), fingerprintKernel(Kernels[J]))
          << Kernels[I].Name << " vs " << Kernels[J].Name;
}

TEST(FingerprintTest, OptionsChangeRequestHash) {
  Kernel K = makeElementwise(8, 8);
  PipelineOptions Base;
  Fingerprint FP = fingerprintRequest(K, Base);

  PipelineOptions Sched = Base;
  Sched.Sched.CoeffBound += 1;
  EXPECT_NE(FP, fingerprintRequest(K, Sched));

  PipelineOptions Weights = Base;
  Weights.Influence.Weights.W1 += 0.5;
  EXPECT_NE(FP, fingerprintRequest(K, Weights));

  PipelineOptions Budget = Base;
  Budget.Budget.MaxPivots = 12345;
  EXPECT_NE(FP, fingerprintRequest(K, Budget));

  PipelineOptions Gpu = Base;
  Gpu.Gpu.WarpSize = 64;
  EXPECT_NE(FP, fingerprintRequest(K, Gpu));

  // The sink and cache hooks are plumbing, not compilation inputs.
  PipelineOptions Plumbing = Base;
  obs::ReportSink Sink;
  ScheduleCache Cache;
  Plumbing.Sink = &Sink;
  Plumbing.Cache = &Cache;
  EXPECT_EQ(FP, fingerprintRequest(K, Plumbing));
}

namespace {

// Compile-time checklist that fingerprintOptions covers the whole of
// PipelineOptions: this mirror repeats its members field for field.
// Adding a field to PipelineOptions breaks the size assertion below;
// to fix it, add the field here AND either a sensitivity case in
// EveryPipelineOptionFieldIsHashed or an explicit exclusion case (and
// teach service/Fingerprint.cpp about it).
struct PipelineOptionsMirror {
  SchedulerOptions Sched;
  InfluenceOptions Influence;
  GpuMappingOptions Mapping;
  GpuModel Gpu;
  std::shared_ptr<const target::TargetModel> Target;
  bool Validate;
  SolverBudget Budget;
  obs::ReportSink *Sink;
  CompilationCacheHook *Cache;
  TuningHook *Tuner;
};
static_assert(sizeof(PipelineOptionsMirror) == sizeof(PipelineOptions),
              "PipelineOptions changed: update the fingerprint coverage "
              "checklist in service_test.cpp and service/Fingerprint.cpp");

} // namespace

TEST(FingerprintTest, EveryPipelineOptionFieldIsHashed) {
  const std::uint64_t Base = fingerprintOptions(PipelineOptions());
  unsigned Case = 0;
  auto Sensitive = [&](auto Mutate) {
    PipelineOptions O;
    Mutate(O);
    EXPECT_NE(Base, fingerprintOptions(O)) << "leaf case " << Case;
    ++Case;
  };

  // SchedulerOptions.
  Sensitive([](PipelineOptions &O) { O.Sched.CoeffBound += 1; });
  Sensitive([](PipelineOptions &O) { O.Sched.ConstBound += 1; });
  Sensitive([](PipelineOptions &O) { O.Sched.ProximityIncludesInput = true; });
  Sensitive([](PipelineOptions &O) { O.Sched.SerializeSccs = true; });
  Sensitive([](PipelineOptions &O) { O.Sched.PreferOriginalOrder = false; });
  Sensitive([](PipelineOptions &O) { O.Sched.UseFeautrierFallback = true; });
  Sensitive([](PipelineOptions &O) { O.Sched.MaxDims += 1; });
  Sensitive([](PipelineOptions &O) { O.Sched.Budget.MaxPivots = 7; });
  Sensitive([](PipelineOptions &O) { O.Sched.Budget.MaxIlpNodes = 7; });
  Sensitive([](PipelineOptions &O) { O.Sched.Budget.WallMs = 7.0; });
  // InfluenceOptions.
  Sensitive([](PipelineOptions &O) { O.Influence.Weights.W1 += 0.25; });
  Sensitive([](PipelineOptions &O) { O.Influence.Weights.W2 += 0.25; });
  Sensitive([](PipelineOptions &O) { O.Influence.Weights.W3 += 0.25; });
  Sensitive([](PipelineOptions &O) { O.Influence.Weights.W4 += 0.25; });
  Sensitive([](PipelineOptions &O) { O.Influence.Weights.W5 += 0.25; });
  Sensitive([](PipelineOptions &O) {
    O.Influence.Weights.PaperFormulaThreadTerm =
        !O.Influence.Weights.PaperFormulaThreadTerm;
  });
  Sensitive([](PipelineOptions &O) { O.Influence.ThreadLimit += 32; });
  Sensitive([](PipelineOptions &O) { O.Influence.MaxScenarios += 1; });
  Sensitive([](PipelineOptions &O) { O.Influence.MaxInnerDims += 1; });
  Sensitive([](PipelineOptions &O) { O.Influence.MaxVectorWidth = 2; });
  // GpuMappingOptions.
  Sensitive([](PipelineOptions &O) { O.Mapping.MaxThreadsPerBlock = 256; });
  // GpuModel: with a null Target every machine constant reaches the
  // hash through the canonical gpu-analytic target section.
  Sensitive([](PipelineOptions &O) { O.Gpu.WarpSize = 64; });
  Sensitive([](PipelineOptions &O) { O.Gpu.SectorBytes = 64; });
  Sensitive([](PipelineOptions &O) { O.Gpu.PeakBandwidthGBs += 1.0; });
  Sensitive([](PipelineOptions &O) { O.Gpu.IssueRateGops += 1.0; });
  Sensitive([](PipelineOptions &O) { O.Gpu.LaunchOverheadUs += 1.0; });
  Sensitive(
      [](PipelineOptions &O) { O.Gpu.OutstandingRequestsPerWarp += 1.0; });
  Sensitive([](PipelineOptions &O) { O.Gpu.HalfSaturationBytes += 1.0; });
  Sensitive([](PipelineOptions &O) { O.Gpu.MinEfficiency += 0.01; });
  Sensitive([](PipelineOptions &O) { O.Gpu.NarrowAccessEfficiency += 0.01; });
  // Target: a different backend, and a same-backend constant change.
  Sensitive([](PipelineOptions &O) {
    O.Target = target::makeBuiltinTarget("cpu-simd");
  });
  Sensitive([](PipelineOptions &O) {
    auto T = std::make_shared<target::GpuAnalyticTarget>(O.Gpu);
    T->setParam("PeakBandwidthGBs", 901.0);
    O.Target = T;
  });
  // Validate + whole-operator budget.
  Sensitive([](PipelineOptions &O) { O.Validate = true; });
  Sensitive([](PipelineOptions &O) { O.Budget.MaxPivots = 9; });
  Sensitive([](PipelineOptions &O) { O.Budget.MaxIlpNodes = 9; });
  Sensitive([](PipelineOptions &O) { O.Budget.WallMs = 9.0; });

  // Null-Target canonicalization: an explicit gpu-analytic target over
  // the same machine model hashes identically to the default, so
  // `--gpu=v100`, `--target=v100` and the defaults share cache entries.
  PipelineOptions Canonical;
  Canonical.Target =
      std::make_shared<target::GpuAnalyticTarget>(Canonical.Gpu);
  EXPECT_EQ(Base, fingerprintOptions(Canonical));
  // The display name is not identity.
  auto Named = std::make_shared<target::GpuAnalyticTarget>(GpuModel());
  Named->rename("my-gpu");
  PipelineOptions WithName;
  WithName.Target = Named;
  EXPECT_EQ(Base, fingerprintOptions(WithName));

  // Excluded plumbing: Sink, Cache and Tuner do not change the result.
  PipelineOptions Plumbing;
  obs::ReportSink Sink;
  ScheduleCache Cache;
  Plumbing.Sink = &Sink;
  Plumbing.Cache = &Cache;
  EXPECT_EQ(Base, fingerprintOptions(Plumbing));
}

//===----------------------------------------------------------------------===//
// Schedule serialization
//===----------------------------------------------------------------------===//

TEST(ScheduleSerializationTest, RoundTripsEveryTestKernel) {
  PipelineOptions Options;
  for (const Kernel &K : allTestKernels()) {
    OperatorReport R = runOperator(K, Options);
    ASSERT_TRUE(R.Degradations.empty()) << K.Name;
    for (const Schedule *S : {&R.Isl.Sched, &R.Novec.Sched, &R.Infl.Sched}) {
      std::string Text = serializeSchedule(*S);
      std::string Error;
      std::optional<Schedule> Back = deserializeSchedule(Text, Error);
      ASSERT_TRUE(Back.has_value()) << K.Name << ": " << Error;
      EXPECT_TRUE(*Back == *S) << K.Name;
      EXPECT_TRUE(Back->compatibleWith(K)) << K.Name;
      // Canonical form: re-serialization is byte-identical.
      EXPECT_EQ(Text, serializeSchedule(*Back)) << K.Name;
    }
  }
}

TEST(ScheduleSerializationTest, RejectsCorruptText) {
  PipelineOptions Options;
  OperatorReport R = runOperator(makeElementwise(6, 6), Options);
  std::string Text = serializeSchedule(R.Infl.Sched);
  std::string Error;

  // Truncations at every quarter of the text.
  for (std::size_t Frac = 1; Frac != 4; ++Frac) {
    Error.clear();
    EXPECT_FALSE(
        deserializeSchedule(Text.substr(0, Text.size() * Frac / 4), Error)
            .has_value());
    EXPECT_FALSE(Error.empty());
  }
  // Wrong version, garbage tokens, trailing junk.
  EXPECT_FALSE(deserializeSchedule("schedule v999\n", Error).has_value());
  EXPECT_FALSE(deserializeSchedule("not a schedule at all", Error)
                   .has_value());
  std::string Oversized = Text;
  Oversized.replace(Oversized.find("dims "), 5, "dims 99999 x");
  EXPECT_FALSE(deserializeSchedule(Oversized, Error).has_value());
  EXPECT_FALSE(deserializeSchedule(Text + "junk\n", Error).has_value());
}

//===----------------------------------------------------------------------===//
// Cache entry codec
//===----------------------------------------------------------------------===//

TEST(CacheEntryCodecTest, RoundTripAndRejection) {
  Kernel K = makeProducerConsumer(6, 6);
  PipelineOptions Options;
  OperatorReport R = runOperator(K, Options);
  CachedCompilation Entry = entryFromReport(R);
  Fingerprint Key = fingerprintRequest(K, Options);

  std::string Text = encodeCacheEntry(Key, Entry);
  CachedCompilation Back;
  std::string Error;
  ASSERT_TRUE(decodeCacheEntry(Text, Key, Back, Error)) << Error;
  EXPECT_TRUE(Back.Isl == Entry.Isl);
  EXPECT_TRUE(Back.Novec == Entry.Novec);
  EXPECT_TRUE(Back.Infl == Entry.Infl);
  EXPECT_EQ(Entry.Influenced, Back.Influenced);
  EXPECT_EQ(Entry.VecEligible, Back.VecEligible);

  // A renamed/moved file must not decode under another fingerprint.
  Fingerprint Other = Key;
  Other.Lo ^= 1;
  EXPECT_FALSE(decodeCacheEntry(Text, Other, Back, Error));

  // Truncation anywhere is rejected, never a crash.
  for (std::size_t Len = 0; Len < Text.size(); Len += 7)
    EXPECT_FALSE(decodeCacheEntry(Text.substr(0, Len), Key, Back, Error));
  EXPECT_FALSE(decodeCacheEntry(Text + "extra", Key, Back, Error));
  EXPECT_FALSE(decodeCacheEntry("polyinject-cache v0\n" + Text, Key, Back,
                                Error));
}

//===----------------------------------------------------------------------===//
// Schedule cache
//===----------------------------------------------------------------------===//

TEST(ScheduleCacheTest, HitReturnsByteIdenticalSchedules) {
  Kernel K = makeBadOrderCopy(8, 12);
  PipelineOptions Options;
  ScheduleCache Cache;
  Options.Cache = &Cache;

  OperatorReport Cold = runOperator(K, Options);
  EXPECT_FALSE(Cold.CacheHit);
  ASSERT_EQ(1u, Cache.stats().Stores);
  ASSERT_EQ(1u, Cache.stats().Misses);

  OperatorReport Warm = runOperator(K, Options);
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(1u, Cache.stats().Hits);

  // The replayed schedules are byte-identical to the cold run's, and the
  // analytic simulation over them agrees exactly.
  EXPECT_EQ(serializeSchedule(Cold.Isl.Sched),
            serializeSchedule(Warm.Isl.Sched));
  EXPECT_EQ(serializeSchedule(Cold.Novec.Sched),
            serializeSchedule(Warm.Novec.Sched));
  EXPECT_EQ(serializeSchedule(Cold.Infl.Sched),
            serializeSchedule(Warm.Infl.Sched));
  EXPECT_EQ(Cold.Influenced, Warm.Influenced);
  EXPECT_EQ(Cold.VecEligible, Warm.VecEligible);
  EXPECT_DOUBLE_EQ(Cold.Infl.TimeUs, Warm.Infl.TimeUs);
  EXPECT_DOUBLE_EQ(Cold.Isl.TimeUs, Warm.Isl.TimeUs);
}

TEST(ScheduleCacheTest, OptionsMismatchIsMiss) {
  Kernel K = makeElementwise(8, 8);
  ScheduleCache Cache;
  PipelineOptions A;
  A.Cache = &Cache;
  runOperator(K, A);
  ASSERT_EQ(1u, Cache.stats().Stores);

  PipelineOptions B = A;
  B.Sched.CoeffBound += 1;
  OperatorReport R = runOperator(K, B);
  EXPECT_FALSE(R.CacheHit);
  EXPECT_EQ(2u, Cache.stats().Misses);
  EXPECT_EQ(2u, Cache.stats().Stores);
}

TEST(ScheduleCacheTest, LruEvictsAtCapacity) {
  ScheduleCache::Config Cfg;
  Cfg.Capacity = 2;
  ScheduleCache Cache(Cfg);
  PipelineOptions Options;
  Options.Cache = &Cache;

  Kernel K1 = makeElementwise(6, 8);
  Kernel K2 = makeTranspose(6, 8);
  Kernel K3 = makeProducerConsumer(6, 8);
  runOperator(K1, Options);
  runOperator(K2, Options);
  runOperator(K3, Options); // Evicts K1.
  EXPECT_EQ(2u, Cache.size());
  EXPECT_EQ(1u, Cache.stats().Evictions);

  CachedCompilation Out;
  EXPECT_FALSE(Cache.lookup(K1, Options, Out));
  EXPECT_TRUE(Cache.lookup(K2, Options, Out));
  EXPECT_TRUE(Cache.lookup(K3, Options, Out));

  // K2 is now most recently used; inserting K1 evicts K3.
  EXPECT_TRUE(Cache.lookup(K2, Options, Out));
  runOperator(K1, Options);
  EXPECT_FALSE(Cache.lookup(K3, Options, Out));
  EXPECT_TRUE(Cache.lookup(K2, Options, Out));
}

TEST(ScheduleCacheTest, DiskPersistsAcrossInstances) {
  std::filesystem::path Dir = freshDir("service_cache_persist");
  ScheduleCache::Config Cfg;
  Cfg.DiskDir = Dir.string();
  Kernel K = makeRowReduction(6, 8);
  PipelineOptions Options;

  OperatorReport Cold;
  {
    ScheduleCache Writer(Cfg);
    Options.Cache = &Writer;
    Cold = runOperator(K, Options);
    EXPECT_FALSE(Cold.CacheHit);
    EXPECT_TRUE(std::filesystem::exists(
        Writer.diskPathFor(fingerprintRequest(K, Options))));
  }
  // A fresh instance (fresh memory) serves the entry from disk.
  ScheduleCache Reader(Cfg);
  Options.Cache = &Reader;
  OperatorReport Warm = runOperator(K, Options);
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_EQ(1u, Reader.stats().DiskHits);
  EXPECT_EQ(serializeSchedule(Cold.Infl.Sched),
            serializeSchedule(Warm.Infl.Sched));
  std::filesystem::remove_all(Dir);
}

TEST(ScheduleCacheTest, CorruptDiskEntryDegradesToMiss) {
  std::filesystem::path Dir = freshDir("service_cache_corrupt");
  ScheduleCache::Config Cfg;
  Cfg.DiskDir = Dir.string();
  Kernel K = makeTranspose(8, 6);
  PipelineOptions Options;

  std::string Path;
  {
    ScheduleCache Writer(Cfg);
    Options.Cache = &Writer;
    runOperator(K, Options);
    Path = Writer.diskPathFor(fingerprintRequest(K, Options));
    ASSERT_TRUE(std::filesystem::exists(Path));
  }

  auto expectRejected = [&](const std::string &Content) {
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out << Content;
    }
    ScheduleCache Reader(Cfg);
    Options.Cache = &Reader;
    OperatorReport R = runOperator(K, Options);
    EXPECT_FALSE(R.CacheHit);
    EXPECT_EQ(1u, Reader.stats().DiskRejects);
    EXPECT_EQ(1u, Reader.stats().Misses);
  };

  // Truncated to half.
  std::string Full;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Full = Buf.str();
  }
  expectRejected(Full.substr(0, Full.size() / 2));
  // Stale format version.
  expectRejected("polyinject-cache v0\ngarbage\n");
  // Arbitrary binary garbage (embedded NULs included).
  expectRejected(std::string("\0\1\2 not a cache entry", 21));

  // The miss re-stored a good entry; it must hit again now.
  ScheduleCache Reader(Cfg);
  Options.Cache = &Reader;
  EXPECT_TRUE(runOperator(K, Options).CacheHit);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Batch compiler
//===----------------------------------------------------------------------===//

TEST(BatchCompilerTest, DeterministicAcrossWorkerCounts) {
  std::vector<BatchJob> Jobs;
  for (Kernel &K : allTestKernels())
    Jobs.push_back(BatchJob{std::move(K)});

  PipelineOptions Options;
  BatchResult Serial = BatchCompiler(Options, 1).run(Jobs);
  BatchResult Parallel = BatchCompiler(Options, 8).run(Jobs);

  ASSERT_EQ(Serial.Reports.size(), Parallel.Reports.size());
  for (std::size_t I = 0; I != Serial.Reports.size(); ++I) {
    const OperatorReport &A = Serial.Reports[I];
    const OperatorReport &B = Parallel.Reports[I];
    EXPECT_EQ(A.Name, B.Name) << "submission order must be preserved";
    EXPECT_EQ(serializeSchedule(A.Isl.Sched),
              serializeSchedule(B.Isl.Sched));
    EXPECT_EQ(serializeSchedule(A.Novec.Sched),
              serializeSchedule(B.Novec.Sched));
    EXPECT_EQ(serializeSchedule(A.Infl.Sched),
              serializeSchedule(B.Infl.Sched));
    EXPECT_EQ(A.Influenced, B.Influenced);
    EXPECT_EQ(A.VecEligible, B.VecEligible);
    EXPECT_DOUBLE_EQ(A.Isl.TimeUs, B.Isl.TimeUs);
    EXPECT_DOUBLE_EQ(A.Novec.TimeUs, B.Novec.TimeUs);
    EXPECT_DOUBLE_EQ(A.Infl.TimeUs, B.Infl.TimeUs);
    EXPECT_DOUBLE_EQ(A.Tvm.TimeUs, B.Tvm.TimeUs);
    EXPECT_EQ(A.Degradations.size(), B.Degradations.size());
  }
}

TEST(BatchCompilerTest, SinkRecordsFollowSubmissionOrder) {
  std::vector<BatchJob> Jobs;
  for (Kernel &K : allTestKernels())
    Jobs.push_back(BatchJob{std::move(K)});

  obs::ReportSink Sink;
  PipelineOptions Options;
  Options.Sink = &Sink;
  BatchResult R = BatchCompiler(Options, 4).run(Jobs);

  ASSERT_EQ(Jobs.size(), Sink.operators().size());
  for (std::size_t I = 0; I != Jobs.size(); ++I)
    EXPECT_EQ(Jobs[I].K.Name, Sink.operators()[I].Name);
  EXPECT_EQ(Jobs.size(), R.Reports.size());
}

TEST(BatchCompilerTest, SharedCacheServesDuplicates) {
  Kernel K = makeBadOrderCopy(8, 10);
  std::vector<BatchJob> Jobs(3, BatchJob{K});

  ScheduleCache Cache;
  PipelineOptions Options;
  Options.Cache = &Cache;
  // Serial workers so the first job's store is visible to the rest.
  BatchResult R = BatchCompiler(Options, 1).run(Jobs);
  EXPECT_FALSE(R.Reports[0].CacheHit);
  EXPECT_TRUE(R.Reports[1].CacheHit);
  EXPECT_TRUE(R.Reports[2].CacheHit);
  EXPECT_EQ(2u, R.hits());
  EXPECT_EQ(serializeSchedule(R.Reports[0].Infl.Sched),
            serializeSchedule(R.Reports[2].Infl.Sched));
}

TEST(BatchCompilerTest, ConcurrentWorkersShareCacheSafely) {
  // Eight workers over a mix of duplicates hammer the cache hooks
  // concurrently; under TSan this is the data-race probe for the cache.
  std::vector<Kernel> Base = allTestKernels();
  std::vector<BatchJob> Jobs;
  for (unsigned Rep = 0; Rep != 3; ++Rep)
    for (const Kernel &K : Base)
      Jobs.push_back(BatchJob{K});

  ScheduleCache Cache;
  PipelineOptions Options;
  Options.Cache = &Cache;
  BatchResult R = BatchCompiler(Options, 8).run(Jobs);
  ASSERT_EQ(Jobs.size(), R.Reports.size());
  for (std::size_t I = 0; I != Jobs.size(); ++I)
    EXPECT_EQ(Jobs[I].K.Name, R.Reports[I].Name);
  // Every lookup either hit or missed (how many hit depends on worker
  // interleaving — concurrent duplicates can both miss — but the
  // accounting must balance and every report must carry real schedules).
  CacheStats S = Cache.stats();
  EXPECT_EQ(Jobs.size(), S.Hits + S.Misses);
  for (std::size_t I = 0; I != Jobs.size(); ++I)
    EXPECT_EQ(serializeSchedule(R.Reports[I].Infl.Sched),
              serializeSchedule(R.Reports[I % Base.size()].Infl.Sched));
}

TEST(BatchCompilerTest, JournalAssignsUniqueRequestIdsUnderConcurrency) {
  // Eight workers journaling concurrently; under TSan this is the
  // data-race probe for the journal ring and file-less emit path.
  std::vector<Kernel> Base = allTestKernels();
  std::vector<BatchJob> Jobs;
  for (unsigned Rep = 0; Rep != 2; ++Rep)
    for (const Kernel &K : Base)
      Jobs.push_back(BatchJob{K});

  obs::journal().disable();
  obs::journal().reset();
  obs::journal().enable();
  PipelineOptions Options;
  BatchResult R = BatchCompiler(Options, 8).run(Jobs);
  std::vector<obs::JournalRecord> Snap = obs::journal().snapshot();
  obs::journal().disable();
  obs::journal().reset();

  // Every report carries a distinct request id, pre-assigned in
  // submission order before the pool starts.
  ASSERT_EQ(Jobs.size(), R.Reports.size());
  std::set<std::string> Ids;
  for (const OperatorReport &Report : R.Reports) {
    EXPECT_FALSE(Report.RequestId.empty()) << Report.Name;
    Ids.insert(Report.RequestId);
  }
  EXPECT_EQ(Ids.size(), R.Reports.size());

  // The journal pairs request_start/request_end exactly once per id,
  // and brackets the batch with id-less batch_start/batch_end.
  std::map<std::string, int> Starts, Ends;
  unsigned BatchStart = 0, BatchEnd = 0;
  for (const obs::JournalRecord &Rec : Snap) {
    if (Rec.Type == "request_start")
      ++Starts[Rec.RequestId];
    else if (Rec.Type == "request_end")
      ++Ends[Rec.RequestId];
    else if (Rec.Type == "batch_start") {
      ++BatchStart;
      EXPECT_TRUE(Rec.RequestId.empty());
    } else if (Rec.Type == "batch_end") {
      ++BatchEnd;
      EXPECT_TRUE(Rec.RequestId.empty());
    } else
      EXPECT_TRUE(Ids.count(Rec.RequestId))
          << Rec.Type << " carries unknown id " << Rec.RequestId;
  }
  EXPECT_EQ(BatchStart, 1u);
  EXPECT_EQ(BatchEnd, 1u);
  for (const std::string &Id : Ids) {
    EXPECT_EQ(Starts[Id], 1) << Id;
    EXPECT_EQ(Ends[Id], 1) << Id;
  }
}

//===----------------------------------------------------------------------===//
// Observability thread safety
//===----------------------------------------------------------------------===//

TEST(ObsThreadSafetyTest, ConcurrentCounterAndHistogramUpdates) {
  obs::Counter &C = obs::metrics().counter("service.test.counter");
  obs::Histogram &H = obs::metrics().histogram("service.test.histogram");
  C.reset();
  H.reset();

  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 20000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&C, &H] {
      for (unsigned I = 0; I != PerThread; ++I) {
        C.inc();
        H.observe(1.0);
        // Registry lookups race with updates; names must stay stable.
        obs::metrics().counter("service.test.counter2").inc();
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(Threads * PerThread, C.value());
  EXPECT_EQ(Threads * PerThread, H.count());
  EXPECT_DOUBLE_EQ(static_cast<double>(Threads * PerThread), H.sum());
  obs::MetricsSnapshot Snap = obs::metrics().snapshot();
  EXPECT_EQ(Threads * PerThread, Snap.counter("service.test.counter2"));
}

TEST(ObsThreadSafetyTest, ConcurrentSpansKeepJsonWellFormed) {
  obs::tracer().reset();
  obs::tracer().enable(obs::Tracer::Json);

  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 200;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([] {
      for (unsigned I = 0; I != PerThread; ++I) {
        obs::Span Outer("service.test.outer");
        Outer.arg("iteration", I);
        obs::Span Inner("service.test.inner");
        Inner.arg("nested", true);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(2u * Threads * PerThread, obs::tracer().events().size());
  std::string Error;
  std::optional<obs::json::Value> Parsed =
      obs::json::parse(obs::tracer().json(), Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  const obs::json::Value *Events = Parsed->find("traceEvents");
  ASSERT_NE(nullptr, Events);
  // Every span serialized, plus process/thread metadata ("M") events —
  // one thread_name per tid seen, so exactly Threads of those.
  unsigned Spans = 0, Metadata = 0;
  for (const obs::json::Value &E : Events->Items)
    ++(E.at("ph").Str == "M" ? Metadata : Spans);
  EXPECT_EQ(2u * Threads * PerThread, Spans);
  EXPECT_GE(Metadata, Threads);

  obs::tracer().disable();
  obs::tracer().reset();
}

} // namespace
