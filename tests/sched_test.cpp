//===- tests/sched_test.cpp - scheduler unit and integration tests --------===//

#include "sched/Scheduler.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

/// Exact schedule validity: every validity relation must be respected
/// dimension by dimension (nonnegative difference while pairs are still
/// tied) and eventually carried strictly.
bool scheduleRespects(const Kernel &K, const Schedule &S,
                      const DependenceRelation &D) {
  AffineSet Remaining = D.Rel;
  for (unsigned Dim = 0, E = S.numDims(); Dim != E; ++Dim) {
    if (Remaining.isEmpty())
      return true;
    IntVector Diff = S.differenceExpr(K, D, Dim);
    if (!Remaining.isAlwaysAtLeast(Diff, 0))
      return false; // A pair still tied goes backwards here.
    if (Remaining.isAlwaysAtLeast(Diff, 1))
      return true; // All remaining pairs are carried here.
    // Keep only the pairs tied at this dimension.
    Remaining.addEq(Diff);
  }
  return Remaining.isEmpty();
}

bool isValidSchedule(const Kernel &K, const Schedule &S) {
  for (const DependenceRelation &D : computeDependences(K))
    if (D.constrainsValidity() && !scheduleRespects(K, S, D))
      return false;
  return true;
}

SchedulerOptions baselineOptions() {
  SchedulerOptions Options;
  Options.SerializeSccs = true;
  return Options;
}

/// The row of statement \p Stmt at dimension \p Dim as a plain vector.
IntVector rowOf(const Schedule &S, unsigned Stmt, unsigned Dim) {
  return S.Transforms[Stmt].row(Dim);
}

} // namespace

//===----------------------------------------------------------------------===//
// Baseline (isl-reference configuration) behaviour
//===----------------------------------------------------------------------===//

TEST(BaselineScheduler, ElementwiseIdentityAndParallel) {
  Kernel K = makeElementwise(16, 32);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_EQ(R.Sched.numDims(), 2u);
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{1, 0, 0})); // i
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{0, 1, 0})); // j
  EXPECT_TRUE(R.Sched.Dims[0].IsParallel);
  EXPECT_TRUE(R.Sched.Dims[1].IsParallel);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(BaselineScheduler, ReductionKeepsReductionInnermostSequential) {
  Kernel K = makeRowReduction(8, 16);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_EQ(R.Sched.numDims(), 2u);
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{1, 0, 0})); // i
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{0, 1, 0})); // j (reduction)
  EXPECT_TRUE(R.Sched.Dims[0].IsParallel);
  EXPECT_FALSE(R.Sched.Dims[1].IsParallel);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(BaselineScheduler, RunningExampleMatchesFig2b) {
  // The isl-reference configuration distributes the two nests (an
  // up-front scalar dimension) and keeps the original loop orders:
  // X = (i, k), Y = (i, j, k) -- the paper's Fig. 2(b).
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_GE(R.Sched.numDims(), 4u);
  EXPECT_TRUE(R.Sched.Dims[0].IsScalar);
  EXPECT_EQ(rowOf(R.Sched, 0, 0).back(), 0); // X first
  EXPECT_EQ(rowOf(R.Sched, 1, 0).back(), 1); // Y second
  // X order (i, k).
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{1, 0, 0}));
  EXPECT_EQ(rowOf(R.Sched, 0, 2), (IntVector{0, 1, 0}));
  // Y order (i, j, k): the original, inefficient-D order.
  EXPECT_EQ(rowOf(R.Sched, 1, 1), (IntVector{1, 0, 0, 0}));
  EXPECT_EQ(rowOf(R.Sched, 1, 2), (IntVector{0, 1, 0, 0}));
  EXPECT_EQ(rowOf(R.Sched, 1, 3), (IntVector{0, 0, 1, 0}));
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
  EXPECT_EQ(R.ReachedLeaf, nullptr);
}

TEST(BaselineScheduler, SameDepthProducerConsumerFused) {
  // isl's clustering fuses same-depth components: the two statements
  // share the (i, j) band and are ordered by a trailing scalar dim.
  Kernel K = makeProducerConsumer(8, 8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_EQ(R.Sched.numDims(), 3u);
  EXPECT_FALSE(R.Sched.Dims[0].IsScalar);
  EXPECT_EQ(rowOf(R.Sched, 0, 0), rowOf(R.Sched, 1, 0));
  EXPECT_EQ(rowOf(R.Sched, 0, 1), rowOf(R.Sched, 1, 1));
  EXPECT_TRUE(R.Sched.Dims[2].IsScalar);
  EXPECT_LT(rowOf(R.Sched, 0, 2).back(), rowOf(R.Sched, 1, 2).back());
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(BaselineScheduler, DepthMismatchStaysDistributed) {
  // Components of different loop depth are not fused (Fig. 2(b)).
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  EXPECT_TRUE(R.Sched.Dims[0].IsScalar);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(BaselineScheduler, TransposeIdentity) {
  Kernel K = makeTranspose(16, 16);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_EQ(R.Sched.numDims(), 2u);
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{1, 0, 0}));
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{0, 1, 0}));
  EXPECT_TRUE(R.Sched.Dims[0].IsParallel);
  EXPECT_TRUE(R.Sched.Dims[1].IsParallel);
}

//===----------------------------------------------------------------------===//
// Influenced scheduling: hand-built trees
//===----------------------------------------------------------------------===//

namespace {

/// Builds the Fig. 3(b)-style tree for the running example: fuse X and Y
/// on the first two dimensions (i then k), keep them independent of j,
/// and pin coefficient 1 for j at the third dimension (prepared for
/// vectorization).
InfluenceTree makeRunningExampleTree() {
  InfluenceTree Tree;
  // Statement X iterators: (i=0, k=1); coeff indices (i, k, const=2).
  // Statement Y iterators: (i=0, j=1, k=2); coeff indices (.., const=3).
  InfluenceNode *D0 = Tree.root().addChild("fused.d0");
  // Dim 0: X and Y schedule i together, independent of j.
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1)); // X: c_i == 1
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0)); // X: c_k == 0
  D0->Constraints.push_back(makeCoeffEquals(1, 0, 0, 1)); // Y: c_i == 1
  D0->Constraints.push_back(makeCoeffEquals(1, 0, 1, 0)); // Y: c_j == 0
  D0->Constraints.push_back(makeCoeffEquals(1, 0, 2, 0)); // Y: c_k == 0
  InfluenceNode *D1 = D0->addChild("fused.d1");
  D1->Constraints.push_back(makeCoeffEquals(0, 1, 0, 0)); // X: c_i == 0
  D1->Constraints.push_back(makeCoeffEquals(0, 1, 1, 1)); // X: c_k == 1
  D1->Constraints.push_back(makeCoeffEquals(1, 1, 0, 0));
  D1->Constraints.push_back(makeCoeffEquals(1, 1, 1, 0)); // Y: c_j == 0
  D1->Constraints.push_back(makeCoeffEquals(1, 1, 2, 1)); // Y: c_k == 1
  InfluenceNode *D2 = D1->addChild("fused.d2");
  D2->Constraints.push_back(makeCoeffEquals(1, 2, 1, 1)); // Y: c_j == 1
  D2->Constraints.push_back(makeCoeffEquals(1, 2, 0, 0));
  D2->Constraints.push_back(makeCoeffEquals(1, 2, 2, 0));
  D2->VectorStmts = {1};
  D2->VectorWidth = 4;
  return Tree;
}

} // namespace

TEST(InfluencedScheduler, RunningExampleMatchesFig2c) {
  Kernel K = makeRunningExample(8);
  InfluenceTree Tree = makeRunningExampleTree();
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_FALSE(R.Stats.TreeAbandoned);
  // Fused (i, k) band, then j for Y.
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{1, 0, 0}));    // X: i
  EXPECT_EQ(rowOf(R.Sched, 1, 0), (IntVector{1, 0, 0, 0})); // Y: i
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{0, 1, 0}));    // X: k
  EXPECT_EQ(rowOf(R.Sched, 1, 1), (IntVector{0, 0, 1, 0})); // Y: k
  EXPECT_EQ(rowOf(R.Sched, 1, 2), (IntVector{0, 1, 0, 0})); // Y: j
  // The vector mark landed on dimension 2 for Y.
  ASSERT_GE(R.Sched.numDims(), 3u);
  EXPECT_TRUE(R.Sched.Dims[2].isVectorFor(1));
  EXPECT_EQ(R.Sched.Dims[2].VectorWidth, 4u);
  // A scalar dimension orders X before Y within the fused nest.
  ASSERT_GE(R.Sched.numDims(), 4u);
  EXPECT_TRUE(R.Sched.Dims[3].IsScalar);
  EXPECT_LT(rowOf(R.Sched, 0, 3).back(), rowOf(R.Sched, 1, 3).back());
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, InfeasibleBranchFallsToSibling) {
  Kernel K = makeRowReduction(8, 16);
  InfluenceTree Tree;
  // Branch 1 (infeasible): demand the reduction dimension j parallel
  // outermost with zero coefficient everywhere -- contradictory with
  // progression: c_i == 0 and c_j == 0.
  InfluenceNode *Bad = Tree.root().addChild("bad");
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 0, 0));
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  // Branch 2 (feasible): i outermost.
  InfluenceNode *Good = Tree.root().addChild("good");
  Good->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1));
  Good->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(R.ReachedLeaf->Label, "good");
  EXPECT_GE(R.Stats.SiblingMoves, 1u);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, FullyInfeasibleTreeFallsBackToPlain) {
  Kernel K = makeRowReduction(8, 16);
  InfluenceTree Tree;
  InfluenceNode *Bad = Tree.root().addChild("impossible");
  // c_i == 0 and c_j == 0 at dim 0 contradicts progression.
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 0, 0));
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  EXPECT_EQ(R.ReachedLeaf, nullptr);
  EXPECT_TRUE(R.Stats.TreeAbandoned);
  // Output equals the plain scheduler's.
  SchedulerResult Plain = scheduleKernel(K, baselineOptions());
  EXPECT_EQ(R.Sched.Transforms[0].str(), Plain.Sched.Transforms[0].str());
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, AncestorBacktrackAcrossDimensions) {
  // Tree: scenario A fixes dim0 = i and then (infeasible at dim1)
  // demands c_i == 1 again while progression requires independence; the
  // scheduler must backtrack to scenario B at depth 0.
  Kernel K = makeElementwise(8, 8);
  InfluenceTree Tree;
  InfluenceNode *A0 = Tree.root().addChild("A.d0");
  A0->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1)); // c_i == 1
  A0->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0)); // c_j == 0
  InfluenceNode *A1 = A0->addChild("A.d1");
  // Self-contradictory at dim 1, so that neither the normal solve nor
  // the progression-dropping fallback can satisfy it.
  A1->Constraints.push_back(makeCoeffEquals(0, 1, 0, 1)); // c_i == 1
  A1->Constraints.push_back(makeCoeffEquals(0, 1, 0, 0)); // c_i == 0
  InfluenceNode *B0 = Tree.root().addChild("B.d0");
  B0->Constraints.push_back(makeCoeffEquals(0, 0, 0, 0)); // c_i == 0
  B0->Constraints.push_back(makeCoeffEquals(0, 0, 1, 1)); // c_j == 1
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(R.ReachedLeaf->Label, "B.d0");
  EXPECT_GE(R.Stats.AncestorBacktracks, 1u);
  // Scenario B: j outermost.
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{0, 1, 0}));
}

TEST(InfluencedScheduler, ExtraDimensionViaProgressionDrop) {
  // A tree one level deeper than the statement's domain: the scheduler
  // must drop progression to give the influence its extra dimension.
  Kernel K = makeElementwise(8, 8);
  InfluenceTree Tree;
  InfluenceNode *D0 = Tree.root().addChild("d0");
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1));
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  InfluenceNode *D1 = D0->addChild("d1");
  D1->Constraints.push_back(makeCoeffEquals(0, 1, 0, 0));
  D1->Constraints.push_back(makeCoeffEquals(0, 1, 1, 1));
  InfluenceNode *D2 = D1->addChild("d2.extra");
  D2->Constraints.push_back(makeCoeffEquals(0, 2, 2, 0)); // const == 0
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(R.ReachedLeaf->Label, "d2.extra");
  EXPECT_GE(R.Stats.ProgressionDrops, 1u);
  EXPECT_EQ(R.Sched.numDims(), 3u);
}

//===----------------------------------------------------------------------===//
// Injected objectives and meta-constraints (paper Section IV-A4)
//===----------------------------------------------------------------------===//

TEST(InfluencedScheduler, NodeObjectiveSteersChoice) {
  // Element-wise kernel: both (i, j) and (j, i) orders are optimal for
  // every built-in criterion; the default order preference picks i
  // outermost. A node objective minimizing c_i at dim 0 flips that.
  Kernel K = makeElementwise(8, 8);
  InfluenceTree Tree;
  InfluenceNode *D0 = Tree.root().addChild("steer");
  InfluenceObjective PreferNotI;
  PreferNotI.Terms.push_back({0, 0, 0, 1}); // minimize c_i at dim 0
  D0->Objectives.push_back(PreferNotI);
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(rowOf(R.Sched, 0, 0), (IntVector{0, 1, 0})); // j outermost
  EXPECT_EQ(rowOf(R.Sched, 0, 1), (IntVector{1, 0, 0}));
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, ObjectiveSoftWhereConstraintWouldFail) {
  // Objectives do not restrict the solution space (the paper's design
  // discussion): asking to minimize every coefficient still yields a
  // valid schedule because progression wins.
  Kernel K = makeRowReduction(8, 16);
  InfluenceTree Tree;
  InfluenceNode *D0 = Tree.root().addChild("soft");
  InfluenceObjective MinAll;
  MinAll.Terms.push_back({0, 0, 0, 1});
  MinAll.Terms.push_back({0, 0, 1, 1});
  D0->Objectives.push_back(MinAll);
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, RequireParallelRejectsReductionDim) {
  // Branch 1 pins the reduction iterator j outermost AND requires the
  // dimension to be parallel -- feasible as an ILP but rejected by the
  // meta-check; the scheduler must move to the sibling.
  Kernel K = makeRowReduction(8, 16);
  InfluenceTree Tree;
  InfluenceNode *Bad = Tree.root().addChild("par.j");
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 0, 0)); // c_i == 0
  Bad->Constraints.push_back(makeCoeffEquals(0, 0, 1, 1)); // c_j == 1
  Bad->RequireParallel = true;
  InfluenceNode *Good = Tree.root().addChild("par.i");
  Good->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1));
  Good->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  Good->RequireParallel = true;
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(R.ReachedLeaf->Label, "par.i");
  EXPECT_GE(R.Stats.MetaRejections, 1u);
  EXPECT_GE(R.Stats.SiblingMoves, 1u);
  EXPECT_TRUE(R.Sched.Dims[0].IsParallel);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

TEST(InfluencedScheduler, RequireParallelAcceptsParallelDim) {
  Kernel K = makeElementwise(8, 8);
  InfluenceTree Tree;
  InfluenceNode *D0 = Tree.root().addChild("par");
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 0, 1));
  D0->Constraints.push_back(makeCoeffEquals(0, 0, 1, 0));
  D0->RequireParallel = true;
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  EXPECT_EQ(R.Stats.MetaRejections, 0u);
}

//===----------------------------------------------------------------------===//
// Feautrier fallback (paper Section IV-B; Feautrier 1992)
//===----------------------------------------------------------------------===//

TEST(FeautrierFallback, DisabledByDefaultSchedulesNormally) {
  Kernel K = makeProducerConsumer(8, 8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  EXPECT_EQ(R.Stats.FeautrierDims, 0u);
}

TEST(FeautrierFallback, CarriesDependencesWhenEnabled) {
  // With the fallback enabled, the end-of-construction resolution of
  // the producer/consumer ordering may use a Feautrier dimension (shift
  // Q after P) instead of an SCC cut; either way the schedule is valid
  // and, when a Feautrier dim is taken, the flow relation is carried
  // by it.
  Kernel K = makeProducerConsumer(8, 8);
  SchedulerOptions Options;
  Options.UseFeautrierFallback = true;
  SchedulerResult R = scheduleKernel(K, Options);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
  EXPECT_EQ(R.Stats.SccCuts, 0u);
  EXPECT_GE(R.Stats.FeautrierDims, 1u);
}

TEST(FeautrierFallback, RunningExampleStaysValid) {
  Kernel K = makeRunningExample(8);
  SchedulerOptions Options;
  Options.UseFeautrierFallback = true;
  SchedulerResult R = scheduleKernel(K, Options);
  EXPECT_TRUE(isValidSchedule(K, R.Sched));
}

//===----------------------------------------------------------------------===//
// Schedule utilities
//===----------------------------------------------------------------------===//

TEST(Schedule, ApplyComputesDates) {
  Kernel K = makeElementwise(4, 4);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  IntVector Date = R.Sched.apply(K, 0, {2, 3}, {});
  EXPECT_EQ(Date, (IntVector{2, 3}));
}

TEST(Schedule, IteratorPartShape) {
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  IntMatrix H = R.Sched.iteratorPart(K, 1);
  EXPECT_EQ(H.numCols(), 3u);
  EXPECT_EQ(H.numRows(), R.Sched.numDims());
}

TEST(Schedule, StrDumpsAllStatements) {
  Kernel K = makeRunningExample(4);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  std::string Text = R.Sched.str(K);
  EXPECT_NE(Text.find("theta_X"), std::string::npos);
  EXPECT_NE(Text.find("theta_Y"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Property sweep: schedules are always valid across kernel families and
// sizes, influenced or not.
//===----------------------------------------------------------------------===//

class SchedulerValidity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerValidity, AllSchedulesValid) {
  int Family = std::get<0>(GetParam());
  Int N = std::get<1>(GetParam());
  Kernel K = [&] {
    switch (Family) {
    case 0:
      return makeElementwise(N, N);
    case 1:
      return makeTranspose(N, N);
    case 2:
      return makeProducerConsumer(N, N);
    case 3:
      return makeRowReduction(N, N);
    default:
      return makeRunningExample(N);
    }
  }();
  SchedulerResult Base = scheduleKernel(K, baselineOptions());
  EXPECT_TRUE(isValidSchedule(K, Base.Sched)) << "family " << Family;
  SchedulerResult Fused = scheduleKernel(K, SchedulerOptions());
  EXPECT_TRUE(isValidSchedule(K, Fused.Sched)) << "family " << Family;
}

INSTANTIATE_TEST_SUITE_P(Families, SchedulerValidity,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(4, 8, 12)));

//===----------------------------------------------------------------------===//
// Permutable band structure
//===----------------------------------------------------------------------===//

TEST(BandStructure, SingleBandForElementwise) {
  Kernel K = makeElementwise(8, 8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  ASSERT_EQ(R.Sched.numDims(), 2u);
  EXPECT_TRUE(R.Sched.Dims[0].BandStart);
  EXPECT_FALSE(R.Sched.Dims[1].BandStart); // Same permutable band.
}

TEST(BandStructure, ScalarDimOpensNewBand) {
  Kernel K = makeRunningExample(8);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  // Dim 0 is the up-front scalar cut; the loop band starts at dim 1 and
  // the remaining loop dims extend it.
  ASSERT_GE(R.Sched.numDims(), 4u);
  EXPECT_TRUE(R.Sched.Dims[0].IsScalar);
  EXPECT_TRUE(R.Sched.Dims[1].BandStart);
  EXPECT_FALSE(R.Sched.Dims[2].BandStart);
  EXPECT_FALSE(R.Sched.Dims[3].BandStart);
}

TEST(BandStructure, PrintedInScheduleDump) {
  Kernel K = makeElementwise(4, 4);
  SchedulerResult R = scheduleKernel(K, baselineOptions());
  EXPECT_NE(R.Sched.str(K).find("band-start"), std::string::npos);
}
