//===- tests/gpusim_test.cpp - GPU simulator unit tests -------------------===//

#include "codegen/Vectorizer.h"
#include "gpusim/GpuModel.h"
#include "influence/TreeBuilder.h"
#include "sched/Scheduler.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

SchedulerOptions baseline() {
  SchedulerOptions O;
  O.SerializeSccs = true;
  return O;
}

KernelSim simulateBaseline(const Kernel &K) {
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  return simulateKernel(M, GpuModel());
}

KernelSim simulateInfluenced(const Kernel &K, bool Vectorize) {
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  finalizeVectorMarks(K, R.Sched, !Vectorize);
  MappedKernel M = mapToGpu(K, R.Sched);
  return simulateKernel(M, GpuModel());
}

} // namespace

//===----------------------------------------------------------------------===//
// Sector counting (coalescing rules)
//===----------------------------------------------------------------------===//

TEST(Sectors, FullyCoalescedWarp) {
  // 32 lanes x 4B contiguous = 128B = 4 sectors.
  std::vector<std::pair<Int, unsigned>> Accesses;
  for (Int L = 0; L != 32; ++L)
    Accesses.emplace_back(L * 4, 4);
  EXPECT_EQ(countSectors(Accesses), 4u);
}

TEST(Sectors, FullyStridedWarp) {
  // 32 lanes x 4B at 256B stride: one sector each.
  std::vector<std::pair<Int, unsigned>> Accesses;
  for (Int L = 0; L != 32; ++L)
    Accesses.emplace_back(L * 256, 4);
  EXPECT_EQ(countSectors(Accesses), 32u);
}

TEST(Sectors, BroadcastWarp) {
  std::vector<std::pair<Int, unsigned>> Accesses(32, {1024, 4});
  EXPECT_EQ(countSectors(Accesses), 1u);
}

TEST(Sectors, VectorAccessesContiguous) {
  // 32 lanes x 16B contiguous = 512B = 16 sectors.
  std::vector<std::pair<Int, unsigned>> Accesses;
  for (Int L = 0; L != 32; ++L)
    Accesses.emplace_back(L * 16, 16);
  EXPECT_EQ(countSectors(Accesses), 16u);
}

TEST(Sectors, UnalignedAccessSpansTwoSectors) {
  EXPECT_EQ(countSectors({{30, 4}}), 2u);
  EXPECT_EQ(countSectors({{28, 4}}), 1u);
  EXPECT_EQ(countSectors({{24, 16}}, 32), 2u);
}

TEST(Sectors, EmptyAccessList) { EXPECT_EQ(countSectors({}), 0u); }

TEST(Sectors, WideAccessSplitsAcrossSectors) {
  // One access wider than 128 bits splits over ceil(size / 32) sectors
  // when aligned, one more when it straddles a boundary.
  EXPECT_EQ(countSectors({{0, 64}}), 2u);
  EXPECT_EQ(countSectors({{16, 64}}), 3u);
  EXPECT_EQ(countSectors({{0, 256}}), 8u);
  EXPECT_EQ(countSectors({{4, 256}}), 9u);
}

TEST(Sectors, NegativeStrideCoalescesLikePositive) {
  // Descending lane addresses touch the same sectors as ascending ones.
  std::vector<std::pair<Int, unsigned>> Down, Up;
  for (Int L = 0; L != 32; ++L) {
    Down.emplace_back((31 - L) * 4, 4);
    Up.emplace_back(L * 4, 4);
  }
  EXPECT_EQ(countSectors(Down), countSectors(Up));
  EXPECT_EQ(countSectors(Down), 4u);
  // A descending block not aligned to a sector spans one extra sector.
  std::vector<std::pair<Int, unsigned>> Mis;
  for (Int L = 0; L != 32; ++L)
    Mis.emplace_back(128 - 4 * L, 4);
  EXPECT_EQ(countSectors(Mis), 5u);
}

TEST(Sectors, TransactionModelMatchesGranularity) {
  // The generic transaction model reproduces countSectors at the GPU's
  // 32B granularity and groups 16 contiguous 4B lanes into a single 64B
  // cache line at the CPU's.
  SectorTransactionModel Gpu(32, 32), Cpu(16, 64);
  std::vector<std::pair<Int, unsigned>> Lanes;
  for (Int L = 0; L != 16; ++L)
    Lanes.emplace_back(L * 4, 4);
  EXPECT_EQ(Gpu.transactionsFor(Lanes), 2.0);
  EXPECT_EQ(Cpu.transactionsFor(Lanes), 1.0);
}

//===----------------------------------------------------------------------===//
// Kernel simulation sanity
//===----------------------------------------------------------------------===//

TEST(Simulator, CoalescedElementwiseIsEfficient) {
  Kernel K = makeElementwise(128, 256);
  KernelSim Sim = simulateBaseline(K);
  // Both accesses coalesce: efficiency close to 1.
  EXPECT_GT(Sim.efficiency(), 0.9);
  EXPECT_GT(Sim.Transactions, 0);
  EXPECT_GT(Sim.TimeUs, 0);
}

TEST(Simulator, BadOrderCopyIsInefficient) {
  Kernel K = makeBadOrderCopy(128, 256);
  KernelSim Sim = simulateBaseline(K);
  // Lanes stride by the row size: ~1 sector per lane, 4B useful of 32B.
  EXPECT_LT(Sim.efficiency(), 0.2);
}

TEST(Simulator, InfluenceRepairsBadOrderCopy) {
  Kernel K = makeBadOrderCopy(128, 256);
  KernelSim Isl = simulateBaseline(K);
  KernelSim Novec = simulateInfluenced(K, /*Vectorize=*/false);
  KernelSim Infl = simulateInfluenced(K, /*Vectorize=*/true);
  // The influenced order restores coalescing.
  EXPECT_LT(Novec.Transactions, Isl.Transactions * 0.3);
  EXPECT_LE(Infl.Transactions, Novec.Transactions * 1.05);
  EXPECT_LT(Infl.TimeUs, Isl.TimeUs);
  // Vector types reduce the number of memory instructions by ~4x.
  EXPECT_LT(Infl.MemInstructions, Novec.MemInstructions * 0.5);
}

TEST(Simulator, VectorizationReducesInstructionsOnElementwise) {
  Kernel K = makeElementwise(128, 256);
  KernelSim Novec = simulateInfluenced(K, /*Vectorize=*/false);
  KernelSim Infl = simulateInfluenced(K, /*Vectorize=*/true);
  EXPECT_LT(Infl.MemInstructions, Novec.MemInstructions * 0.6);
  // Transactions stay comparable (already coalesced).
  EXPECT_LE(Infl.Transactions, Novec.Transactions * 1.1);
}

TEST(Simulator, TimeIncludesLaunchOverhead) {
  Kernel K = makeElementwise(4, 4);
  KernelSim Sim = simulateBaseline(K);
  GpuModel Model;
  EXPECT_GE(Sim.TimeUs, Model.LaunchOverheadUs);
}

TEST(Simulator, BiggerTensorsTakeLonger) {
  KernelSim Small = simulateBaseline(makeElementwise(64, 64));
  KernelSim Large = simulateBaseline(makeElementwise(512, 512));
  EXPECT_GT(Large.TimeUs, Small.TimeUs);
  EXPECT_GT(Large.Transactions, Small.Transactions * 10);
}

TEST(Simulator, UsefulBytesMatchProgram) {
  Kernel K = makeElementwise(32, 32);
  KernelSim Sim = simulateBaseline(K);
  // 1 read + 1 write per element, 4B each.
  EXPECT_DOUBLE_EQ(Sim.UsefulBytes, 32 * 32 * 2 * 4.0);
}

//===----------------------------------------------------------------------===//
// Model parameter effects
//===----------------------------------------------------------------------===//

TEST(Simulator, BandwidthScalesTime) {
  Kernel K = makeElementwise(512, 512);
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  GpuModel Fast;
  GpuModel Slow;
  Slow.PeakBandwidthGBs = Fast.PeakBandwidthGBs / 4;
  KernelSim FastSim = simulateKernel(M, Fast);
  KernelSim SlowSim = simulateKernel(M, Slow);
  EXPECT_GT(SlowSim.MemTimeUs, FastSim.MemTimeUs * 3.5);
}

TEST(Simulator, SmallLaunchLosesEfficiency) {
  // A tiny kernel cannot saturate bandwidth: its per-byte cost is much
  // higher than a large launch's.
  KernelSim Small = simulateBaseline(makeElementwise(8, 8));
  KernelSim Large = simulateBaseline(makeElementwise(1024, 1024));
  double SmallPerByte = Small.MemTimeUs / Small.TransactionBytes;
  double LargePerByte = Large.MemTimeUs / Large.TransactionBytes;
  EXPECT_GT(SmallPerByte, LargePerByte * 4);
}

TEST(Simulator, VectorAndScalarWavesSaturateAlike) {
  // A vectorized kernel keeps the same bytes in flight with 4x fewer
  // warps; the efficiency model must not punish it.
  Kernel K = makeElementwise(256, 256);
  KernelSim Novec = simulateInfluenced(K, /*Vectorize=*/false);
  KernelSim Infl = simulateInfluenced(K, /*Vectorize=*/true);
  EXPECT_LE(Infl.MemTimeUs, Novec.MemTimeUs * 1.15);
}

//===----------------------------------------------------------------------===//
// Lane-access kinds inside vector loops
//===----------------------------------------------------------------------===//

TEST(Simulator, BroadcastLoadsCoalesceToOneSector) {
  // Bias-add: BIAS[j] is contiguous along the vectorized j, IN/OUT too;
  // the whole kernel coalesces, so efficiency stays high even with the
  // 1D bias tensor in the mix.
  KernelBuilder B("bias");
  unsigned In = B.tensor("IN", {64, 256});
  unsigned Bias = B.tensor("BIAS", {256});
  unsigned Out = B.tensor("OUT", {64, 256});
  B.stmt("S", {{"i", 64}, {"j", 256}})
      .write(Out, {"i", "j"})
      .read(In, {"i", "j"})
      .read(Bias, {"j"})
      .op(OpKind::Add);
  Kernel K = B.build();
  KernelSim Sim = simulateInfluenced(K, /*Vectorize=*/true);
  EXPECT_GT(Sim.efficiency(), 0.85);
}

//===----------------------------------------------------------------------===//
// Golden transaction counts (warp-walk edge cases)
//===----------------------------------------------------------------------===//

namespace {

/// A 1D copy OUT[i] = relu(IN[i]) whose mapping is fully predictable:
/// one parallel dim, Extent threads in one block (for Extent <= 1024).
Kernel make1DCopy(Int Extent) {
  KernelBuilder B("copy1d");
  unsigned In = B.tensor("IN", {Extent});
  unsigned Out = B.tensor("OUT", {Extent});
  B.stmt("S", {{"i", Extent}})
      .write(Out, {"i"})
      .read(In, {"i"})
      .op(OpKind::Relu);
  return B.build();
}

/// Schedules and maps \p K with the baseline scheduler, asserting the
/// one-block all-threads mapping the golden counts below assume.
MappedKernel mapOneBlock(const Kernel &K, Int Threads) {
  SchedulerResult R = scheduleKernel(K, baseline());
  MappedKernel M = mapToGpu(K, R.Sched);
  EXPECT_EQ(M.threadsPerBlock(), Threads);
  EXPECT_EQ(M.numBlocks(), 1);
  return M;
}

} // namespace

TEST(GoldenCounts, PartialLastWarpCountsActiveLanesOnly) {
  // 48 threads = one full warp + one half-full warp. Full warp: 128
  // contiguous bytes = 4 sectors per access; partial warp: 16 active
  // lanes, 64 bytes = 2 sectors per access; 2 accesses (read + write).
  Kernel K = make1DCopy(48);
  MappedKernel M = mapOneBlock(K, 48);
  KernelSim Sim = simulateKernel(M, GpuModel());
  EXPECT_DOUBLE_EQ(Sim.Warps, 2.0);
  EXPECT_DOUBLE_EQ(Sim.Transactions, (4 + 2) * 2.0);
  EXPECT_DOUBLE_EQ(Sim.TransactionBytes, 12 * 32.0);
  // Inactive lanes issue nothing: 48 instances x 2 accesses.
  EXPECT_DOUBLE_EQ(Sim.MemInstructions, 48 * 2.0);
  EXPECT_DOUBLE_EQ(Sim.ComputeInstructions, 48.0);
  EXPECT_DOUBLE_EQ(Sim.UsefulBytes, 48 * 2 * 4.0);
}

TEST(GoldenCounts, StrideZeroBroadcastIsOneSectorPerWarp) {
  // OUT[i] = relu(C[0]): the read is stride-0 across the warp, so all
  // 32 lanes hit one sector; the write stays 4 sectors per warp.
  KernelBuilder B("broadcast1d");
  unsigned C = B.tensor("C", {1});
  unsigned Out = B.tensor("OUT", {64});
  B.stmt("S", {{"i", 64}})
      .write(Out, {"i"})
      .read(C, {IndexExpr(Int(0))})
      .op(OpKind::Relu);
  Kernel K = B.build();
  MappedKernel M = mapOneBlock(K, 64);
  KernelSim Sim = simulateKernel(M, GpuModel());
  EXPECT_DOUBLE_EQ(Sim.Warps, 2.0);
  EXPECT_DOUBLE_EQ(Sim.Transactions, (4 + 1) * 2.0);
  EXPECT_DOUBLE_EQ(Sim.MemInstructions, 64 * 2.0);
  EXPECT_DOUBLE_EQ(Sim.UsefulBytes, 64 * 2 * 4.0);
}

TEST(GoldenCounts, NegativeStrideCoalescesLikeForward) {
  // OUT[i] = relu(IN[63 - i]): the reversed read touches the same
  // sectors per warp as the forward copy — identical golden counts.
  KernelBuilder B("reverse1d");
  unsigned In = B.tensor("IN", {64});
  unsigned Out = B.tensor("OUT", {64});
  IndexExpr Reversed;
  Reversed.Terms.emplace_back("i", -1);
  Reversed.Constant = 63;
  B.stmt("S", {{"i", 64}})
      .write(Out, {"i"})
      .read(In, {Reversed})
      .op(OpKind::Relu);
  Kernel K = B.build();
  MappedKernel M = mapOneBlock(K, 64);
  KernelSim Rev = simulateKernel(M, GpuModel());
  EXPECT_DOUBLE_EQ(Rev.Transactions, (4 + 4) * 2.0);

  Kernel Fwd = make1DCopy(64);
  KernelSim FwdSim = simulateKernel(mapOneBlock(Fwd, 64), GpuModel());
  EXPECT_DOUBLE_EQ(Rev.Transactions, FwdSim.Transactions);
  EXPECT_DOUBLE_EQ(Rev.MemInstructions, FwdSim.MemInstructions);
  EXPECT_DOUBLE_EQ(Rev.UsefulBytes, FwdSim.UsefulBytes);
}

TEST(Simulator, ReplayAccessesCostWidthInstructions) {
  // In the repaired hostile op, the read becomes a float4 access too;
  // compare against a kernel whose read stays strided in the vector
  // dim (a transpose read): the latter must issue more instructions
  // per element.
  KernelBuilder B("t");
  unsigned In = B.tensor("IN", {256, 256});
  unsigned Out = B.tensor("OUT", {256, 256});
  B.stmt("T", {{"i", 256}, {"j", 256}})
      .write(Out, {"i", "j"})
      .read(In, {"j", "i"}) // Strided along j: replay in the vector loop.
      .op(OpKind::Assign);
  Kernel K = B.build();
  KernelSim WithReplay = simulateInfluenced(K, /*Vectorize=*/true);
  Kernel Clean = makeElementwise(256, 256);
  KernelSim NoReplay = simulateInfluenced(Clean, /*Vectorize=*/true);
  double ReplayPerElem = WithReplay.MemInstructions / (256.0 * 256.0);
  double CleanPerElem = NoReplay.MemInstructions / (256.0 * 256.0);
  EXPECT_GT(ReplayPerElem, CleanPerElem * 1.5);
}
