//===- tests/math_test.cpp - support/ and math/ unit tests ----------------===//

#include "math/LinearAlgebra.h"
#include "math/Matrix.h"
#include "math/Rational.h"
#include "support/Support.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// Support
//===----------------------------------------------------------------------===//

TEST(Support, GcdBasics) {
  EXPECT_EQ(gcdInt(12, 18), 6);
  EXPECT_EQ(gcdInt(-12, 18), 6);
  EXPECT_EQ(gcdInt(12, -18), 6);
  EXPECT_EQ(gcdInt(0, 7), 7);
  EXPECT_EQ(gcdInt(7, 0), 7);
  EXPECT_EQ(gcdInt(0, 0), 0);
  EXPECT_EQ(gcdInt(1, 999983), 1);
}

TEST(Support, LcmBasics) {
  EXPECT_EQ(lcmInt(4, 6), 12);
  EXPECT_EQ(lcmInt(0, 5), 0);
  EXPECT_EQ(lcmInt(7, 7), 7);
  EXPECT_EQ(lcmInt(-4, 6), 12);
}

TEST(Support, FloorCeilDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(6, 3), 2);
}

TEST(Support, JoinStrings) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(joinStrings({}, ", "), "");
  EXPECT_EQ(joinStrings({"x"}, "-"), "x");
}

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(Rational, NormalizesOnConstruction) {
  Rational R(6, 4);
  EXPECT_EQ(R.numerator(), 3);
  EXPECT_EQ(R.denominator(), 2);
  Rational Neg(3, -6);
  EXPECT_EQ(Neg.numerator(), -1);
  EXPECT_EQ(Neg.denominator(), 2);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(5), Rational(9, 2));
  EXPECT_GE(Rational(0), Rational(0));
}

TEST(Rational, FloorCeilFraction) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(7, 2).fractionalPart(), Rational(1, 2));
  EXPECT_EQ(Rational(-7, 2).fractionalPart(), Rational(1, 2));
  EXPECT_TRUE(Rational(5).isInteger());
  EXPECT_FALSE(Rational(5, 2).isInteger());
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(3, 2).str(), "3/2");
  EXPECT_EQ(Rational(4, 2).str(), "2");
  EXPECT_EQ(Rational(-1, 3).str(), "-1/3");
}

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(Matrix, DotProduct) {
  EXPECT_EQ(dotProduct({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_EQ(dotProduct({}, {}), 0);
}

TEST(Matrix, NormalizeByGcd) {
  IntVector V = {4, -6, 8};
  normalizeByGcd(V);
  EXPECT_EQ(V, (IntVector{2, -3, 4}));
  IntVector Zero = {0, 0};
  normalizeByGcd(Zero);
  EXPECT_EQ(Zero, (IntVector{0, 0}));
}

TEST(Matrix, AppendAndAccess) {
  IntMatrix M(0, 3);
  M.appendRow({1, 2, 3});
  M.appendRow({4, 5, 6});
  EXPECT_EQ(M.numRows(), 2u);
  EXPECT_EQ(M.numCols(), 3u);
  EXPECT_EQ(M.at(1, 2), 6);
  M.truncateRows(1);
  EXPECT_EQ(M.numRows(), 1u);
}

TEST(Matrix, Transpose) {
  IntMatrix M(2, 3);
  M.row(0) = {1, 2, 3};
  M.row(1) = {4, 5, 6};
  IntMatrix T = M.transpose();
  EXPECT_EQ(T.numRows(), 3u);
  EXPECT_EQ(T.numCols(), 2u);
  EXPECT_EQ(T.at(2, 1), 6);
  EXPECT_EQ(T.transpose(), M);
}

TEST(Matrix, MultiplyVector) {
  IntMatrix M(2, 3);
  M.row(0) = {1, 0, 2};
  M.row(1) = {0, 3, -1};
  EXPECT_EQ(M.multiply({1, 1, 1}), (IntVector{3, 2}));
}

//===----------------------------------------------------------------------===//
// LinearAlgebra
//===----------------------------------------------------------------------===//

TEST(LinearAlgebra, RankOfIdentity) {
  IntMatrix I(3, 3);
  for (unsigned D = 0; D != 3; ++D)
    I.at(D, D) = 1;
  EXPECT_EQ(matrixRank(I), 3u);
}

TEST(LinearAlgebra, RankOfDependentRows) {
  IntMatrix M(3, 3);
  M.row(0) = {1, 2, 3};
  M.row(1) = {2, 4, 6};
  M.row(2) = {0, 1, 1};
  EXPECT_EQ(matrixRank(M), 2u);
}

TEST(LinearAlgebra, RankOfZeroAndEmpty) {
  EXPECT_EQ(matrixRank(IntMatrix(2, 4)), 0u);
  EXPECT_EQ(matrixRank(IntMatrix()), 0u);
}

TEST(LinearAlgebra, NullspaceOfEmptyIsIdentity) {
  IntMatrix Basis = nullspaceBasis(IntMatrix(0, 3));
  EXPECT_EQ(Basis.numRows(), 3u);
  EXPECT_EQ(matrixRank(Basis), 3u);
}

TEST(LinearAlgebra, NullspaceOrthogonalToRows) {
  IntMatrix M(1, 3);
  M.row(0) = {1, 0, 0};
  IntMatrix Basis = nullspaceBasis(M);
  ASSERT_EQ(Basis.numRows(), 2u);
  for (unsigned R = 0; R != 2; ++R)
    EXPECT_EQ(dotProduct(M.row(0), Basis.row(R)), 0);
}

TEST(LinearAlgebra, NullspaceWithRationalBackSubstitution) {
  // Row space spanned by (2, 1, 0) and (0, 1, 2).
  IntMatrix M(2, 3);
  M.row(0) = {2, 1, 0};
  M.row(1) = {0, 1, 2};
  IntMatrix Basis = nullspaceBasis(M);
  ASSERT_EQ(Basis.numRows(), 1u);
  EXPECT_EQ(dotProduct(M.row(0), Basis.row(0)), 0);
  EXPECT_EQ(dotProduct(M.row(1), Basis.row(0)), 0);
  EXPECT_FALSE(isZeroVector(Basis.row(0)));
}

TEST(LinearAlgebra, HermiteFormLowerTriangular) {
  IntMatrix M(2, 3);
  M.row(0) = {4, 2, 1};
  M.row(1) = {2, 1, 3};
  HermiteForm HF = hermiteNormalForm(M);
  // U must be unimodular-ish: H = U * M (check by multiplication).
  for (unsigned R = 0; R != 2; ++R) {
    IntVector Expected(3, 0);
    for (unsigned C = 0; C != 2; ++C)
      for (unsigned J = 0; J != 3; ++J)
        Expected[J] += HF.U.at(R, C) * M.at(C, J);
    EXPECT_EQ(HF.H.row(R), Expected);
  }
  // Pivots positive, entries below pivots zero.
  EXPECT_GT(HF.H.at(0, 0), 0);
  EXPECT_EQ(HF.H.at(1, 0), 0);
}

TEST(LinearAlgebra, HermitePreservesRank) {
  IntMatrix M(3, 4);
  M.row(0) = {1, 2, 3, 4};
  M.row(1) = {2, 4, 6, 8};
  M.row(2) = {0, 0, 1, 1};
  HermiteForm HF = hermiteNormalForm(M);
  EXPECT_EQ(matrixRank(HF.H), matrixRank(M));
}

TEST(LinearAlgebra, InRowSpace) {
  IntMatrix M(2, 3);
  M.row(0) = {1, 0, 0};
  M.row(1) = {0, 1, 0};
  EXPECT_TRUE(inRowSpace(M, {3, -2, 0}));
  EXPECT_FALSE(inRowSpace(M, {0, 0, 1}));
  EXPECT_TRUE(inRowSpace(M, {0, 0, 0}));
}

//===----------------------------------------------------------------------===//
// Property sweeps: nullspace of random-ish matrices is orthogonal and has
// complementary rank.
//===----------------------------------------------------------------------===//

class NullspaceProperty : public ::testing::TestWithParam<int> {};

TEST_P(NullspaceProperty, RankNullityAndOrthogonality) {
  // Deterministic pseudo-random matrix from the seed parameter.
  unsigned Seed = static_cast<unsigned>(GetParam());
  auto Next = [&Seed]() {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<Int>((Seed >> 16) % 7) - 3;
  };
  unsigned Rows = 2 + Seed % 3, Cols = 3 + Seed % 4;
  IntMatrix M(Rows, Cols);
  for (unsigned R = 0; R != Rows; ++R)
    for (unsigned C = 0; C != Cols; ++C)
      M.at(R, C) = Next();

  IntMatrix Basis = nullspaceBasis(M);
  EXPECT_EQ(matrixRank(M) + Basis.numRows(), Cols);
  for (unsigned B = 0; B != Basis.numRows(); ++B) {
    EXPECT_FALSE(isZeroVector(Basis.row(B)));
    for (unsigned R = 0; R != Rows; ++R)
      EXPECT_EQ(dotProduct(M.row(R), Basis.row(B)), 0);
  }
  EXPECT_EQ(matrixRank(Basis), Basis.numRows());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NullspaceProperty,
                         ::testing::Range(1, 25));

class HermiteProperty : public ::testing::TestWithParam<int> {};

TEST_P(HermiteProperty, ReconstructsAndKeepsRank) {
  unsigned Seed = static_cast<unsigned>(GetParam()) * 77u + 5u;
  auto Next = [&Seed]() {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<Int>((Seed >> 16) % 9) - 4;
  };
  unsigned Rows = 2 + Seed % 3, Cols = 2 + Seed % 3;
  IntMatrix M(Rows, Cols);
  for (unsigned R = 0; R != Rows; ++R)
    for (unsigned C = 0; C != Cols; ++C)
      M.at(R, C) = Next();

  HermiteForm HF = hermiteNormalForm(M);
  EXPECT_EQ(matrixRank(HF.H), matrixRank(M));
  EXPECT_EQ(matrixRank(HF.U), Rows); // U is invertible.
  for (unsigned R = 0; R != Rows; ++R) {
    IntVector Expected(Cols, 0);
    for (unsigned C = 0; C != Rows; ++C)
      for (unsigned J = 0; J != Cols; ++J)
        Expected[J] += HF.U.at(R, C) * M.at(C, J);
    EXPECT_EQ(HF.H.row(R), Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HermiteProperty, ::testing::Range(1, 25));

//===----------------------------------------------------------------------===//
// Pluto's orthogonal projector vs the nullspace construction (the two
// H-perp constructions the paper contrasts in Section IV-A3).
//===----------------------------------------------------------------------===//

TEST(LinearAlgebra, PlutoProjectorSimple) {
  IntMatrix H(1, 3);
  H.row(0) = {1, 0, 0};
  IntMatrix P = plutoOrthogonalProjector(H);
  // Projector rows are orthogonal to H and span a 2D space.
  EXPECT_EQ(matrixRank(P), 2u);
  for (unsigned R = 0; R != P.numRows(); ++R)
    EXPECT_EQ(dotProduct(H.row(0), P.row(R)), 0);
}

class ProjectorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ProjectorEquivalence, SpansSameSubspaceAsNullspace) {
  unsigned Seed = static_cast<unsigned>(GetParam()) * 131u + 7u;
  auto Next = [&Seed]() {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<Int>((Seed >> 16) % 5) - 2;
  };
  unsigned Cols = 3 + Seed % 3;
  unsigned Rows = 1 + Seed % (Cols - 1);
  IntMatrix H(0, Cols);
  // Build a full-row-rank H by appending only rank-increasing rows.
  while (H.numRows() < Rows) {
    IntVector Row(Cols);
    for (unsigned C = 0; C != Cols; ++C)
      Row[C] = Next();
    if (isZeroVector(Row) || inRowSpace(H, Row))
      continue;
    H.appendRow(Row);
  }
  IntMatrix P = plutoOrthogonalProjector(H);
  IntMatrix Basis = nullspaceBasis(H);
  // Same dimension...
  EXPECT_EQ(matrixRank(P), Basis.numRows());
  // ...and mutual containment of row spaces.
  for (unsigned R = 0; R != P.numRows(); ++R)
    EXPECT_TRUE(inRowSpace(Basis, P.row(R)));
  for (unsigned R = 0; R != Basis.numRows(); ++R)
    EXPECT_TRUE(inRowSpace(P, Basis.row(R)));
  // And orthogonality to H itself.
  for (unsigned R = 0; R != P.numRows(); ++R)
    for (unsigned HR = 0; HR != H.numRows(); ++HR)
      EXPECT_EQ(dotProduct(H.row(HR), P.row(R)), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectorEquivalence,
                         ::testing::Range(1, 20));
