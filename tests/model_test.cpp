//===- tests/model_test.cpp - Learned cost model tests --------------------===//
//
// Covers src/model/: the fixed-width feature schema and its hash,
// feature extraction and the kernel/option slot split, training-target
// and serialization round-trips, gradient-boosted-stumps training
// determinism, model/dataset file staleness discipline (version bumps
// and schema mismatches reject the whole file, counted like
// tune.db_rejects), dataset building through the evaluator, and the
// surrogate strategy end to end. The concurrent-prediction test is the
// reason this is the fourth separate executable: the
// POLYINJECT_SANITIZE=thread configuration runs it to prove a shared
// const model is safe under the evaluator's worker pool.
//
//===----------------------------------------------------------------------===//

#include "model/Dataset.h"
#include "model/Features.h"
#include "model/GbStumps.h"
#include "obs/Metrics.h"
#include "target/Target.h"
#include "tune/Autotuner.h"
#include "tune/Evaluator.h"
#include "tune/SearchSpace.h"
#include "tune/Strategy.h"
#include "tune/TuningDb.h"

#include "TestKernels.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "gtest/gtest.h"

using namespace pinj;
using namespace pinj::model;

namespace {

std::filesystem::path freshDir(const std::string &Name) {
  std::filesystem::path Dir =
      std::filesystem::path(::testing::TempDir()) / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// A small deterministic training set: candidate features of the
/// running example scored by the real evaluator.
void buildTrainingSet(std::vector<FeatureVector> &X,
                      std::vector<double> &Y) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  tune::SearchSpace Space = tune::defaultSearchSpace();
  tune::Evaluator Eval(K, Base, Space, {});
  std::vector<tune::Candidate> Batch;
  for (std::size_t I = 0; I < 32; ++I)
    Batch.push_back(Space.candidateAt(I * 81 % Space.size()));
  std::vector<double> Scores = Eval.evaluate(Batch);
  FeatureVector F = extractFeatures(K, Base);
  for (std::size_t I = 0; I < Batch.size(); ++I) {
    if (Scores[I] == tune::failedScore())
      continue;
    PipelineOptions O = Base;
    Space.apply(Batch[I], O);
    writeOptionFeatures(O, F);
    X.push_back(F);
    Y.push_back(regressionTarget(Scores[I]));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Features
//===----------------------------------------------------------------------===//

TEST(Features, SchemaIsFixedWidthAndHashed) {
  EXPECT_EQ(featureNames().size(), featureCount());
  EXPECT_GT(firstOptionFeature(), 0u);
  EXPECT_LT(firstOptionFeature(), featureCount());
  // The hash is a stable function of the schema: 32 hex chars, same on
  // every call.
  std::string H = featureSchemaHash();
  EXPECT_EQ(H.size(), 32u);
  EXPECT_EQ(H, featureSchemaHash());
  for (char C : H)
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(C)));
  // Kernel-side slots first, option-side slots after the boundary.
  for (std::size_t I = 0; I < featureCount(); ++I) {
    bool IsOpt = featureNames()[I].rfind("opt.", 0) == 0;
    EXPECT_EQ(IsOpt, I >= firstOptionFeature()) << featureNames()[I];
  }
}

TEST(Features, ExtractionIsDeterministicAndFinite) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  FeatureVector A = extractFeatures(K, Base);
  FeatureVector B = extractFeatures(K, Base);
  ASSERT_EQ(A.size(), featureCount());
  EXPECT_EQ(A, B);
  for (double V : A)
    EXPECT_TRUE(std::isfinite(V));
}

TEST(Features, OptionSlotsTrackTheCandidateKernelSlotsDoNot) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  FeatureVector A = extractFeatures(K, Base);
  PipelineOptions Changed = Base;
  Changed.Influence.MaxVectorWidth = 1;
  Changed.Mapping.MaxThreadsPerBlock = 256;
  FeatureVector B = A;
  writeOptionFeatures(Changed, B);
  // Kernel-side prefix untouched, option-side suffix moved.
  for (std::size_t I = 0; I < firstOptionFeature(); ++I)
    EXPECT_EQ(A[I], B[I]) << featureNames()[I];
  EXPECT_NE(A, B);
  // writeOptionFeatures agrees with a full re-extraction.
  EXPECT_EQ(B, extractFeatures(K, Changed));
}

TEST(Features, SerializationRoundTripsBitExactly) {
  Kernel K = makeElementwise(8, 12);
  FeatureVector A = extractFeatures(K, PipelineOptions());
  A[3] = 0.1 + 0.2; // a value that needs all 17 digits
  FeatureVector B;
  ASSERT_TRUE(parseFeatures(serializeFeatures(A), B));
  EXPECT_EQ(A, B);
  // Wrong width and garbage both reject.
  EXPECT_FALSE(parseFeatures("1 2 3", B));
  EXPECT_FALSE(parseFeatures(serializeFeatures(A) + " 7", B));
  EXPECT_FALSE(parseFeatures("", B));
}

TEST(Features, RegressionTargetCompressesAndClamps) {
  EXPECT_DOUBLE_EQ(regressionTarget(0), 0);
  EXPECT_DOUBLE_EQ(regressionTarget(-5), 0); // failed scores clamp
  EXPECT_DOUBLE_EQ(regressionTarget(1), 1);  // log2(1+1)
  EXPECT_LT(regressionTarget(1000), 11);
}

//===----------------------------------------------------------------------===//
// GbStumps
//===----------------------------------------------------------------------===//

TEST(GbStumps, LearnsASeparableFunction) {
  // y = 10 when feature 2 is high, 1 when low: one stump family nails
  // it, so the trained model must rank high-vs-low correctly.
  std::vector<FeatureVector> X;
  std::vector<double> Y;
  for (int I = 0; I < 20; ++I) {
    FeatureVector F(featureCount(), 0.0);
    F[2] = I < 10 ? 1.0 : 5.0;
    F[7] = I; // an irrelevant feature the split search must not prefer
    X.push_back(F);
    Y.push_back(I < 10 ? 1.0 : 10.0);
  }
  GbStumpsModel M = trainGbStumps(X, Y);
  EXPECT_FALSE(M.empty());
  FeatureVector Low(featureCount(), 0.0), High(featureCount(), 0.0);
  Low[2] = 1.0;
  High[2] = 5.0;
  EXPECT_NEAR(M.predict(Low), 1.0, 0.2);
  EXPECT_NEAR(M.predict(High), 10.0, 0.2);
}

TEST(GbStumps, TrainingIsBitDeterministic) {
  std::vector<FeatureVector> X;
  std::vector<double> Y;
  buildTrainingSet(X, Y);
  ASSERT_FALSE(X.empty());
  TrainConfig Cfg;
  Cfg.Rounds = 64;
  GbStumpsModel A = trainGbStumps(X, Y, Cfg);
  GbStumpsModel B = trainGbStumps(X, Y, Cfg);
  EXPECT_EQ(serializeModel(A), serializeModel(B));
  // Subsampling consumes the seed but stays deterministic per seed.
  Cfg.SubsampleNum = 1;
  Cfg.SubsampleDen = 2;
  GbStumpsModel S1 = trainGbStumps(X, Y, Cfg);
  GbStumpsModel S2 = trainGbStumps(X, Y, Cfg);
  EXPECT_EQ(serializeModel(S1), serializeModel(S2));
}

TEST(GbStumps, FileRoundTripPreservesPredictions) {
  std::vector<FeatureVector> X;
  std::vector<double> Y;
  buildTrainingSet(X, Y);
  ASSERT_FALSE(X.empty());
  TrainConfig Cfg;
  Cfg.Rounds = 64;
  GbStumpsModel M = trainGbStumps(X, Y, Cfg);

  auto Dir = freshDir("model-roundtrip");
  std::string Path = (Dir / "m.pgbm").string();
  std::string Err;
  ASSERT_TRUE(saveModel(M, Path, &Err)) << Err;
  GbStumpsModel R;
  ASSERT_TRUE(loadModel(Path, R, &Err)) << Err;
  EXPECT_EQ(serializeModel(M), serializeModel(R));
  for (const FeatureVector &F : X)
    EXPECT_DOUBLE_EQ(M.predict(F), R.predict(F));
}

TEST(GbStumps, StaleSchemaAndVersionBumpReject) {
  std::vector<FeatureVector> X(4, FeatureVector(featureCount(), 1.0));
  std::vector<double> Y{1, 2, 3, 4};
  X[1][0] = 2;
  X[2][0] = 3;
  X[3][0] = 4;
  GbStumpsModel M = trainGbStumps(X, Y, {/*Rounds=*/8});
  std::string Text = serializeModel(M);

  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  // Schema hash from another feature set: stale, rejected, counted.
  std::string Stale = Text;
  std::size_t At = Stale.find(M.SchemaHash);
  ASSERT_NE(At, std::string::npos);
  Stale.replace(At, M.SchemaHash.size(),
                std::string(M.SchemaHash.size(), '0'));
  GbStumpsModel Out;
  std::string Err;
  EXPECT_FALSE(parseModel(Stale, Out, &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;

  // Version bump: the whole file rejects.
  std::string Bumped = Text;
  At = Bumped.find("v1");
  ASSERT_NE(At, std::string::npos);
  Bumped.replace(At, 2, "v9");
  EXPECT_FALSE(parseModel(Bumped, Out, &Err));

  // Truncation and field garbage too.
  EXPECT_FALSE(parseModel(Text.substr(0, Text.size() / 2), Out, &Err));
  EXPECT_FALSE(parseModel("", Out, &Err));
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D.counter("model.rejects"), 4u);
}

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(Dataset, BuilderSamplesBaselineAndDbWinner) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Base;
  tune::SearchSpace Space = tune::defaultSearchSpace();

  auto Dir = freshDir("dataset-build");
  tune::TuningDb Db((Dir / "tune.db").string());
  service::Fingerprint Key = service::fingerprintRequest(K, Base);
  std::string Winner = Space.encode(Space.candidateAt(7));
  Db.store(Key, {Winner, 5.0, "exhaustive", Space.signature()});

  Dataset D;
  DatasetBuildConfig Cfg;
  Cfg.CandidatesPerKernel = 8;
  std::size_t N = appendSamples(D, K, Base, Space, &Db, Cfg);
  EXPECT_GT(N, 0u);
  EXPECT_EQ(N, D.Samples.size());
  EXPECT_EQ(D.SchemaHash, featureSchemaHash());
  EXPECT_EQ(D.SpaceSignature, Space.signature());
  bool SawBaseline = false, SawWinner = false;
  for (const Sample &S : D.Samples) {
    ASSERT_EQ(S.X.size(), featureCount());
    EXPECT_GT(S.TimeUs, 0);
    EXPECT_EQ(S.Kernel, K.Name);
    SawBaseline |= S.Encoding == Space.encode(Space.candidateAt(0)) ||
                   S.Encoding == "baseline";
    SawWinner |= S.Encoding == Winner;
  }
  EXPECT_TRUE(SawBaseline);
  EXPECT_TRUE(SawWinner);
}

TEST(Dataset, FileRoundTripsBitExactlyAndRejectsStaleness) {
  Kernel K = makeElementwise(8, 12);
  tune::SearchSpace Space = tune::defaultSearchSpace();
  Dataset D;
  DatasetBuildConfig Cfg;
  Cfg.CandidatesPerKernel = 6;
  ASSERT_GT(appendSamples(D, K, PipelineOptions(), Space, nullptr, Cfg),
            0u);

  auto Dir = freshDir("dataset-roundtrip");
  std::string Path = (Dir / "d.pds").string();
  std::string Err;
  ASSERT_TRUE(saveDataset(D, Path, &Err)) << Err;
  Dataset R;
  ASSERT_TRUE(loadDataset(Path, R, &Err)) << Err;
  EXPECT_EQ(serializeDataset(D), serializeDataset(R));
  ASSERT_EQ(R.Samples.size(), D.Samples.size());
  for (std::size_t I = 0; I < D.Samples.size(); ++I) {
    EXPECT_EQ(R.Samples[I].X, D.Samples[I].X);
    EXPECT_DOUBLE_EQ(R.Samples[I].TimeUs, D.Samples[I].TimeUs);
  }

  std::string Text = serializeDataset(D);
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  Dataset Out;
  // Version bump rejects the whole file.
  std::string Bumped = Text;
  std::size_t At = Bumped.find("v2");
  ASSERT_NE(At, std::string::npos);
  Bumped.replace(At, 2, "v9");
  EXPECT_FALSE(parseDataset(Bumped, Out, &Err));
  // Foreign schema hash rejects.
  std::string Stale = Text;
  At = Stale.find(D.SchemaHash);
  ASSERT_NE(At, std::string::npos);
  Stale.replace(At, D.SchemaHash.size(),
                std::string(D.SchemaHash.size(), '0'));
  EXPECT_FALSE(parseDataset(Stale, Out, &Err));
  EXPECT_NE(Err.find("schema"), std::string::npos) << Err;
  // Truncation rejects (no partial sample list survives).
  EXPECT_FALSE(parseDataset(Text.substr(0, Text.size() - 4), Out, &Err));
  obs::MetricsSnapshot Delta = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(Delta.counter("model.dataset_rejects"), 3u);
}

TEST(Dataset, TargetStampSeparatesBackends) {
  Kernel K = makeElementwise(8, 12);
  tune::SearchSpace Space = tune::defaultSearchSpace();
  DatasetBuildConfig Cfg;
  Cfg.CandidatesPerKernel = 4;

  Dataset Gpu;
  ASSERT_GT(appendSamples(Gpu, K, PipelineOptions(), Space, nullptr, Cfg),
            0u);
  EXPECT_EQ(Gpu.TargetId, target::targetIdForOptions(PipelineOptions()));
  EXPECT_EQ(Gpu.TargetId.find("gpu-analytic-"), 0u) << Gpu.TargetId;

  // Samples scored under another backend carry a different stamp, so a
  // trainer can refuse to mix them (polyinject-train checks on load).
  PipelineOptions CpuBase;
  CpuBase.Target = target::makeBuiltinTarget("cpu-simd");
  Dataset Cpu;
  ASSERT_GT(appendSamples(Cpu, K, CpuBase, Space, nullptr, Cfg), 0u);
  EXPECT_EQ(Cpu.TargetId.find("cpu-simd-"), 0u) << Cpu.TargetId;
  EXPECT_NE(Cpu.TargetId, Gpu.TargetId);

  // The stamp round-trips through the file form.
  std::string Text = serializeDataset(Cpu);
  EXPECT_NE(Text.find("target " + Cpu.TargetId), std::string::npos);
  Dataset Back;
  std::string Err;
  ASSERT_TRUE(parseDataset(Text, Back, &Err)) << Err;
  EXPECT_EQ(Back.TargetId, Cpu.TargetId);

  // A mangled target line rejects the whole file, counted like every
  // other staleness rejection.
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  std::string Mangled = Text;
  std::size_t At = Mangled.find("target ");
  ASSERT_NE(At, std::string::npos);
  Mangled.replace(At, 7, "backend ");
  Dataset Out;
  EXPECT_FALSE(parseDataset(Mangled, Out, &Err));
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D.counter("model.dataset_rejects"), 1u);
}

//===----------------------------------------------------------------------===//
// Surrogate strategy
//===----------------------------------------------------------------------===//

namespace {

/// Trains a model on the default space for \p K — the in-process
/// equivalent of polyinject-train.
std::shared_ptr<const GbStumpsModel> trainFor(const Kernel &K) {
  Dataset D;
  DatasetBuildConfig Cfg;
  Cfg.CandidatesPerKernel = 64;
  appendSamples(D, K, PipelineOptions(), tune::defaultSearchSpace(),
                nullptr, Cfg);
  std::vector<FeatureVector> X;
  std::vector<double> Y;
  for (const Sample &S : D.Samples) {
    X.push_back(S.X);
    Y.push_back(regressionTarget(S.TimeUs));
  }
  TrainConfig TC;
  TC.Rounds = 128;
  return std::make_shared<const GbStumpsModel>(trainGbStumps(X, Y, TC));
}

} // namespace

TEST(Surrogate, RanksWholeSpaceButEvaluatesOnlyTopK) {
  Kernel K = makeRunningExample(8);
  auto Model = trainFor(K);
  PipelineOptions Base;
  tune::SearchSpace Space = tune::defaultSearchSpace();
  tune::Evaluator Eval(K, Base, Space,
                       {1, {}, /*MaxEvaluations=*/Space.size()});
  auto Strat = tune::makeSurrogateStrategy(Model, /*TopK=*/8);
  ASSERT_NE(Strat, nullptr);
  EXPECT_EQ(Strat->name(), "surrogate");

  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  std::optional<tune::ScoredCandidate> Best = Strat->run(Space, Eval, 1);
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  ASSERT_TRUE(Best.has_value());
  // One prediction per candidate in the space, but at most top-K full
  // evaluations.
  EXPECT_EQ(D.counter("model.predictions"), Space.size());
  EXPECT_LE(D.counter("tune.evaluations"), 8u);
  EXPECT_EQ(D.counter("tune.surrogate_evals_saved"), Space.size() - 8);
  EXPECT_EQ(D.counter("tune.surrogate_searches"), 1u);
}

TEST(Surrogate, AutotunerPreservesNeverWorseAndReplaysFromDb) {
  Kernel K = makeRunningExample(8);
  auto Model = trainFor(K);
  auto Dir = freshDir("surrogate-tune");
  tune::TuningDb Db((Dir / "tune.db").string());

  tune::Autotuner::Config Cfg;
  Cfg.Strategy = "surrogate";
  Cfg.Model = Model;
  Cfg.TopK = 8;
  Cfg.MaxEvaluations = tune::defaultSearchSpace().size();
  Cfg.Db = &Db;
  tune::Autotuner Tuner(std::move(Cfg));

  PipelineOptions Base, Tuned;
  TunedConfig Chosen;
  ASSERT_TRUE(Tuner.tune(K, Tuned, Chosen));
  EXPECT_FALSE(Chosen.FromDb);
  double Baseline = tune::predictInflTimeUs(K, Base);
  double TunedUs = tune::predictInflTimeUs(K, Tuned);
  EXPECT_LE(TunedUs, Baseline * (1 + 1e-9));
  if (Chosen.Encoding != "baseline") {
    EXPECT_EQ(Chosen.Strategy, "surrogate");
  }

  // Second call replays the stored decision without a search.
  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  PipelineOptions Tuned2;
  TunedConfig Chosen2;
  ASSERT_TRUE(Tuner.tune(K, Tuned2, Chosen2));
  EXPECT_TRUE(Chosen2.FromDb);
  EXPECT_EQ(Chosen2.Encoding, Chosen.Encoding);
  obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
  EXPECT_EQ(D.counter("tune.searches"), 0u);
  EXPECT_EQ(D.counter("model.predictions"), 0u);
}

TEST(Surrogate, ChoiceIndependentOfEvaluatorWorkerCount) {
  Kernel K = makeRunningExample(8);
  auto Model = trainFor(K);
  std::string Encodings[2];
  for (int Pass = 0; Pass < 2; ++Pass) {
    tune::Autotuner::Config Cfg;
    Cfg.Strategy = "surrogate";
    Cfg.Model = Model;
    Cfg.TopK = 8;
    Cfg.MaxEvaluations = tune::defaultSearchSpace().size();
    Cfg.Jobs = Pass == 0 ? 1 : 8;
    tune::Autotuner Tuner(std::move(Cfg));
    PipelineOptions Tuned;
    TunedConfig Chosen;
    ASSERT_TRUE(Tuner.tune(K, Tuned, Chosen));
    Encodings[Pass] = Chosen.Encoding;
  }
  EXPECT_EQ(Encodings[0], Encodings[1]);
}

TEST(Surrogate, NullModelFallsBackToGreedy) {
  EXPECT_EQ(tune::makeSurrogateStrategy(nullptr, 8), nullptr);
  tune::Autotuner::Config Cfg;
  Cfg.Strategy = "surrogate"; // no model attached
  tune::Autotuner Tuner(std::move(Cfg));
  EXPECT_EQ(Tuner.config().Strategy, "greedy");
}

TEST(Surrogate, ConcurrentPredictionOnSharedModel) {
  // The TSan case: the batch compiler's workers all rank candidates
  // against one shared const model. Predictions must race-free agree.
  std::vector<FeatureVector> X;
  std::vector<double> Y;
  buildTrainingSet(X, Y);
  ASSERT_FALSE(X.empty());
  TrainConfig Cfg;
  Cfg.Rounds = 64;
  auto Model =
      std::make_shared<const GbStumpsModel>(trainGbStumps(X, Y, Cfg));

  std::vector<double> Expected;
  for (const FeatureVector &F : X)
    Expected.push_back(Model->predict(F));

  constexpr unsigned Threads = 8;
  std::vector<std::vector<double>> Got(Threads);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&, T] {
      for (const FeatureVector &F : X)
        Got[T].push_back(Model->predict(F));
    });
  for (std::thread &Th : Pool)
    Th.join();
  for (unsigned T = 0; T < Threads; ++T) {
    EXPECT_EQ(Got[T], Expected);
  }
}
