//===- tests/target_test.cpp - Backend target subsystem tests -------------===//

#include "target/Calibrate.h"
#include "target/CpuSimdTarget.h"
#include "target/GpuAnalyticTarget.h"
#include "target/Target.h"

#include "codegen/Vectorizer.h"
#include "influence/TreeBuilder.h"
#include "obs/Metrics.h"
#include "pipeline/Pipeline.h"
#include "sched/Scheduler.h"
#include "TestKernels.h"
#include "../bench/BenchUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

using namespace pinj;
using namespace pinj::target;

namespace {

MappedKernel mapBaseline(const Kernel &K) {
  SchedulerOptions O;
  O.SerializeSccs = true;
  SchedulerResult R = scheduleKernel(K, O);
  return mapToGpu(K, R.Sched);
}

MappedKernel mapInfluenced(const Kernel &K) {
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerResult R = scheduleKernel(K, SchedulerOptions(), &Tree);
  finalizeVectorMarks(K, R.Sched, /*StripVectors=*/false);
  return mapToGpu(K, R.Sched);
}

void expectSimBitIdentical(const KernelSim &A, const KernelSim &B,
                           const std::string &What) {
  EXPECT_EQ(A.TimeUs, B.TimeUs) << What;
  EXPECT_EQ(A.MemTimeUs, B.MemTimeUs) << What;
  EXPECT_EQ(A.ComputeTimeUs, B.ComputeTimeUs) << What;
  EXPECT_EQ(A.Transactions, B.Transactions) << What;
  EXPECT_EQ(A.TransactionBytes, B.TransactionBytes) << What;
  EXPECT_EQ(A.UsefulBytes, B.UsefulBytes) << What;
  EXPECT_EQ(A.MemInstructions, B.MemInstructions) << What;
  EXPECT_EQ(A.ComputeInstructions, B.ComputeInstructions) << What;
  EXPECT_EQ(A.Warps, B.Warps) << What;
}

void expectParamsBitIdentical(const TargetModel &A, const TargetModel &B) {
  EXPECT_EQ(A.kind(), B.kind());
  std::vector<TargetParam> Pa = A.params(), Pb = B.params();
  ASSERT_EQ(Pa.size(), Pb.size());
  for (unsigned I = 0; I != Pa.size(); ++I) {
    EXPECT_EQ(Pa[I].Name, Pb[I].Name);
    EXPECT_EQ(Pa[I].Value, Pb[I].Value) << Pa[I].Name;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(TargetRegistry, BuiltinNamesAndKinds) {
  std::vector<std::string> Names = builtinTargetNames();
  for (const char *Expected : {"v100", "a100", "p100", "cpu-simd"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Expected), Names.end())
        << Expected;

  for (const std::string &N : Names) {
    std::shared_ptr<TargetModel> T = makeBuiltinTarget(N);
    ASSERT_TRUE(T) << N;
    EXPECT_EQ(T->name(), N);
    EXPECT_EQ(T->kind(), N == "cpu-simd" ? CpuSimdKind : GpuAnalyticKind);
    // resolveTarget accepts every built-in name.
    std::string Err;
    EXPECT_TRUE(resolveTarget(N, &Err)) << Err;
  }

  // Fresh instances of both kinds; unknown kinds refused.
  EXPECT_TRUE(makeTargetOfKind(GpuAnalyticKind));
  EXPECT_TRUE(makeTargetOfKind(CpuSimdKind));
  EXPECT_FALSE(makeTargetOfKind("tpu-systolic"));
  EXPECT_FALSE(makeBuiltinTarget("h100"));
}

TEST(TargetRegistry, UnknownTargetDiagnosticListsAvailable) {
  std::string Err;
  EXPECT_FALSE(resolveTarget("no-such-target", &Err));
  EXPECT_NE(Err.find("no-such-target"), std::string::npos) << Err;
  // The diagnostic must enumerate what --target/--gpu accept.
  for (const std::string &N : builtinTargetNames())
    EXPECT_NE(Err.find(N), std::string::npos) << Err;
  EXPECT_NE(Err.find(".ptgt"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// GPU differential: the refactor must be bit-identical
//===----------------------------------------------------------------------===//

// The tentpole's behavior-preservation gate: over the full tuning bench
// corpus and every GPU preset, GpuAnalyticTarget must reproduce the
// pre-subsystem simulateKernel result bit for bit, on both the baseline
// and the influenced+vectorized mapping.
TEST(TargetDifferential, GpuAnalyticMatchesSimulateKernelBitExactly) {
  std::vector<Kernel> Corpus = tuneBenchCorpus(0);
  ASSERT_GE(Corpus.size(), 20u);
  std::vector<std::string> Presets = gpuModelPresetNames();
  ASSERT_EQ(Presets.size(), 3u);

  for (const Kernel &K : Corpus) {
    MappedKernel Base = mapBaseline(K);
    MappedKernel Infl = mapInfluenced(K);
    for (const std::string &P : Presets) {
      GpuModel Model = *gpuModelPreset(P);
      GpuAnalyticTarget T(Model);
      expectSimBitIdentical(T.simulate(Base), simulateKernel(Base, Model),
                            K.Name + "/" + P + "/baseline");
      expectSimBitIdentical(T.simulate(Infl), simulateKernel(Infl, Model),
                            K.Name + "/" + P + "/influenced");
    }
  }
}

//===----------------------------------------------------------------------===//
// Transaction/time split
//===----------------------------------------------------------------------===//

TEST(TargetModelTest, SimulateComposesFromCountersAndTime) {
  Kernel K = makeBadOrderCopy(64, 128);
  MappedKernel M = mapInfluenced(K);
  for (const std::string &N : builtinTargetNames()) {
    std::shared_ptr<TargetModel> T = makeBuiltinTarget(N);
    ASSERT_TRUE(T);
    expectSimBitIdentical(T->simulate(M),
                          T->finishTime(T->accumulateCounters(M)), N);
  }
}

TEST(TargetModelTest, CountersIndependentOfTimeConstants) {
  Kernel K = makeElementwise(64, 256);
  MappedKernel M = mapInfluenced(K);
  std::shared_ptr<TargetModel> Base = makeBuiltinTarget("cpu-simd");
  std::shared_ptr<TargetModel> Fast = Base->clone();
  ASSERT_TRUE(Fast->setParam("PeakBandwidthGBs", 160.0));
  ASSERT_TRUE(Fast->setParam("LaunchOverheadUs", 1.0));

  // Time-model constants must not leak into the counters...
  KernelSim A = Base->accumulateCounters(M);
  KernelSim B = Fast->accumulateCounters(M);
  expectSimBitIdentical(A, B, "counters");
  EXPECT_EQ(A.TimeUs, 0.0);

  // ...while finishTime follows them.
  EXPECT_LT(Fast->finishTime(A).TimeUs, Base->finishTime(A).TimeUs);
}

TEST(TargetModelTest, CpuSimdIsStructurallyDifferent) {
  Kernel K = makeElementwise(128, 256);
  MappedKernel M = mapInfluenced(K);
  std::shared_ptr<TargetModel> Cpu = makeBuiltinTarget("cpu-simd");
  std::shared_ptr<TargetModel> Gpu = makeBuiltinTarget("v100");

  // Different lane grouping and transaction granularity: the counters
  // themselves differ, not just the constants applied to them.
  KernelSim Cc = Cpu->accumulateCounters(M);
  KernelSim Gc = Gpu->accumulateCounters(M);
  EXPECT_NE(Cc.Transactions, Gc.Transactions);
  EXPECT_NE(Cc.Warps, Gc.Warps);

  // Additive time: Time = Launch + Mem + Compute (the GPU takes the max).
  KernelSim Ct = Cpu->finishTime(Cc);
  const CpuSimdModel &Model =
      static_cast<const CpuSimdTarget &>(*Cpu).model();
  EXPECT_DOUBLE_EQ(Ct.TimeUs,
                   Model.LaunchOverheadUs + Ct.MemTimeUs + Ct.ComputeTimeUs);

  // Saturation ramps with the streamed bytes, not with warps in flight:
  // scaling Warps alone must not move the CPU memory time.
  KernelSim MoreWarps = Cc;
  MoreWarps.Warps *= 16;
  EXPECT_EQ(Cpu->finishTime(MoreWarps).MemTimeUs, Ct.MemTimeUs);
}

//===----------------------------------------------------------------------===//
// .ptgt files
//===----------------------------------------------------------------------===//

TEST(PtgtFile, SerializeParseRoundTripsBitExactly) {
  for (const std::string &N : builtinTargetNames()) {
    std::shared_ptr<TargetModel> T = makeBuiltinTarget(N);
    // Displace one constant to a non-default value with a long mantissa.
    ASSERT_TRUE(T->setParam("PeakBandwidthGBs", 123.45678901234567));
    std::string Text = serializeTarget(*T);
    std::string Err;
    std::shared_ptr<TargetModel> Back = parseTarget(Text, &Err);
    ASSERT_TRUE(Back) << N << ": " << Err;
    EXPECT_EQ(Back->name(), T->name());
    expectParamsBitIdentical(*T, *Back);
    // Canonical form: re-serializing the parse is byte-identical.
    EXPECT_EQ(serializeTarget(*Back), Text);
  }
}

TEST(PtgtFile, RejectsCorruptTextAndCountsRejects) {
  std::shared_ptr<TargetModel> T = makeBuiltinTarget("cpu-simd");
  std::string Good = serializeTarget(*T);
  ASSERT_TRUE(parseTarget(Good));

  auto Replaced = [&](const std::string &From, const std::string &To) {
    std::string Out = Good;
    std::size_t At = Out.find(From);
    EXPECT_NE(At, std::string::npos) << From;
    Out.replace(At, From.size(), To);
    return Out;
  };

  std::vector<std::pair<const char *, std::string>> Corrupt = {
      {"version bump", Replaced("polyinject-target v1",
                                "polyinject-target v9")},
      {"unknown kind", Replaced("kind cpu-simd", "kind npu-dataflow")},
      {"stale param count", Replaced("params 8", "params 7")},
      {"unknown param", Replaced("param SimdLanes", "param VectorLanes")},
      {"malformed number",
       Replaced("param PeakBandwidthGBs 80", "param PeakBandwidthGBs abc")},
      {"truncation", Good.substr(0, Good.size() / 2)},
      {"missing end", Replaced("end\n", "")},
      {"duplicate param",
       Replaced("param CacheLineBytes 64", "param SimdLanes 16")},
  };
  for (const auto &[What, Text] : Corrupt) {
    obs::MetricsSnapshot Before = obs::metrics().snapshot();
    std::string Err;
    EXPECT_FALSE(parseTarget(Text, &Err)) << What;
    EXPECT_FALSE(Err.empty()) << What;
    obs::MetricsSnapshot D = obs::metrics().snapshot().since(Before);
    EXPECT_EQ(D.counter("target.rejects"), 1u) << What;
  }
}

TEST(PtgtFile, SaveLoadRoundTripsAndNamesFromFile) {
  std::string Dir = ::testing::TempDir();
  std::string Path = Dir + "/target_test_roundtrip.ptgt";

  std::shared_ptr<TargetModel> T = makeTargetOfKind(CpuSimdKind);
  ASSERT_TRUE(T->setParam("HalfSaturationBytes", 123456.0));
  T->rename("tuned-socket");
  std::string Err;
  ASSERT_TRUE(saveTargetFile(*T, Path, &Err)) << Err;

  std::shared_ptr<TargetModel> Back = loadTargetFile(Path, &Err);
  ASSERT_TRUE(Back) << Err;
  EXPECT_EQ(Back->name(), "tuned-socket");
  expectParamsBitIdentical(*T, *Back);
  // resolveTarget accepts a file path spec too.
  EXPECT_TRUE(resolveTarget(Path, &Err)) << Err;

  // An unnamed target picks up the file stem on load.
  std::string Anon = Dir + "/socket-a.ptgt";
  std::shared_ptr<TargetModel> NoName = makeTargetOfKind(CpuSimdKind);
  ASSERT_TRUE(saveTargetFile(*NoName, Anon, &Err)) << Err;
  std::shared_ptr<TargetModel> Stem = loadTargetFile(Anon, &Err);
  ASSERT_TRUE(Stem) << Err;
  EXPECT_EQ(Stem->name(), "socket-a");
  std::remove(Path.c_str());
  std::remove(Anon.c_str());
}

//===----------------------------------------------------------------------===//
// Target identity (dataset stamping)
//===----------------------------------------------------------------------===//

TEST(TargetIdentity, IdCoversKindAndConstantsNotName) {
  PipelineOptions Default;
  std::string NullId = targetIdForOptions(Default);
  EXPECT_EQ(NullId.find("gpu-analytic-"), 0u) << NullId;

  // Null Target canonicalizes to the GPU analytic backend over O.Gpu.
  PipelineOptions Explicit;
  Explicit.Target = std::make_shared<GpuAnalyticTarget>(Explicit.Gpu);
  EXPECT_EQ(targetIdForOptions(Explicit), NullId);

  // The display name is not identity.
  auto Renamed = std::make_shared<GpuAnalyticTarget>(Default.Gpu);
  Renamed->rename("my-v100");
  PipelineOptions WithName;
  WithName.Target = Renamed;
  EXPECT_EQ(targetIdForOptions(WithName), NullId);

  // Kind and constants are.
  PipelineOptions Cpu;
  Cpu.Target = makeBuiltinTarget("cpu-simd");
  EXPECT_NE(targetIdForOptions(Cpu), NullId);
  EXPECT_EQ(targetIdForOptions(Cpu).find("cpu-simd-"), 0u);

  PipelineOptions Tweaked;
  std::shared_ptr<TargetModel> T = makeBuiltinTarget("v100")->clone();
  ASSERT_TRUE(T->setParam("PeakBandwidthGBs", 901.0));
  Tweaked.Target = std::move(T);
  EXPECT_NE(targetIdForOptions(Tweaked), NullId);
}

//===----------------------------------------------------------------------===//
// Calibration
//===----------------------------------------------------------------------===//

namespace {

// Synthetic measured rows spanning the regimes that identify each
// fitted cpu-simd constant: bytes across the prefetch ramp
// (HalfSaturationBytes), tiny rows (LaunchOverheadUs), saturated wide
// rows (PeakBandwidthGBs), narrow-lane rows (NarrowAccessEfficiency)
// and compute-dominated rows (IssueRateGops).
std::vector<CalibrationSample> syntheticRows(const TargetModel &Truth) {
  std::vector<CalibrationSample> Rows;
  for (double KiB : {16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0}) {
    for (double BytesPerLane : {4.0, 16.0}) {
      for (double ComputeFactor : {0.0, 1000.0}) {
        KernelSim C;
        C.TransactionBytes = KiB * 1024.0;
        C.Transactions = C.TransactionBytes / 64.0;
        C.UsefulBytes = C.TransactionBytes * 0.9;
        C.MemInstructions = C.UsefulBytes / BytesPerLane;
        C.ComputeInstructions = C.MemInstructions * ComputeFactor;
        C.Warps = 64;
        Rows.push_back({C, Truth.finishTime(C).TimeUs});
      }
    }
  }
  return Rows;
}

// The truth target with every fitted constant displaced (alternating
// up/down) — the calibration starting point.
std::shared_ptr<TargetModel>
displacedStart(const TargetModel &Truth,
               const std::vector<std::string> &FitNames) {
  std::shared_ptr<TargetModel> Start = Truth.clone();
  bool Up = true;
  for (const std::string &N : FitNames) {
    double Current = 0;
    for (const TargetParam &P : Truth.params())
      if (P.Name == N)
        Current = P.Value;
    EXPECT_TRUE(Start->setParam(N, Current * (Up ? 1.7 : 0.6))) << N;
    Up = !Up;
  }
  return Start;
}

} // namespace

TEST(Calibration, RecoversSyntheticCpuSimdConstants) {
  CpuSimdTarget Truth;
  std::vector<CalibrationSample> Rows = syntheticRows(Truth);
  std::vector<std::string> FitNames = defaultFitParams(CpuSimdKind);
  ASSERT_GE(FitNames.size(), 4u);

  std::shared_ptr<TargetModel> Fit = displacedStart(Truth, FitNames);
  CalibrationResult R = fitTargetParams(*Fit, Rows, FitNames);
  EXPECT_LT(R.RmsLogError, 0.01);
  ASSERT_EQ(R.Fitted.size(), FitNames.size());

  // The acceptance bar: every fitted constant within 5% of the
  // generating value.
  for (const TargetParam &P : R.Fitted) {
    double TruthValue = 0;
    for (const TargetParam &Q : Truth.params())
      if (Q.Name == P.Name)
        TruthValue = Q.Value;
    ASSERT_GT(TruthValue, 0.0) << P.Name;
    EXPECT_LE(std::abs(P.Value - TruthValue), 0.05 * TruthValue)
        << P.Name << " fitted " << P.Value << " vs " << TruthValue;
  }
}

TEST(Calibration, DeterministicAcrossRuns) {
  CpuSimdTarget Truth;
  std::vector<CalibrationSample> Rows = syntheticRows(Truth);
  std::vector<std::string> FitNames = defaultFitParams(CpuSimdKind);

  std::shared_ptr<TargetModel> A = displacedStart(Truth, FitNames);
  std::shared_ptr<TargetModel> B = displacedStart(Truth, FitNames);
  CalibrationResult Ra = fitTargetParams(*A, Rows, FitNames);
  CalibrationResult Rb = fitTargetParams(*B, Rows, FitNames);

  EXPECT_EQ(Ra.RmsLogError, Rb.RmsLogError);
  EXPECT_EQ(Ra.SweepsRun, Rb.SweepsRun);
  expectParamsBitIdentical(*A, *B);
  EXPECT_EQ(serializeTarget(*A), serializeTarget(*B));
}

TEST(Calibration, DefaultFitParamsMatchEachKind) {
  for (const char *Kind : {GpuAnalyticKind, CpuSimdKind}) {
    std::vector<std::string> Names = defaultFitParams(Kind);
    EXPECT_FALSE(Names.empty()) << Kind;
    std::shared_ptr<TargetModel> T = makeTargetOfKind(Kind);
    // Every default-fitted constant must exist on the kind (setParam at
    // its current value succeeds).
    for (const std::string &N : Names) {
      double Current = -1;
      for (const TargetParam &P : T->params())
        if (P.Name == N)
          Current = P.Value;
      ASSERT_GT(Current, 0.0) << Kind << "/" << N;
      EXPECT_TRUE(T->setParam(N, Current)) << Kind << "/" << N;
    }
  }
  // The memory-bound GPU corpus leaves the issue rate unidentifiable;
  // the additive CPU model exposes it.
  std::vector<std::string> Gpu = defaultFitParams(GpuAnalyticKind);
  std::vector<std::string> Cpu = defaultFitParams(CpuSimdKind);
  EXPECT_EQ(std::find(Gpu.begin(), Gpu.end(), "IssueRateGops"), Gpu.end());
  EXPECT_NE(std::find(Cpu.begin(), Cpu.end(), "IssueRateGops"), Cpu.end());
}
