//===- tests/poly_test.cpp - poly/ unit tests -----------------------------===//

#include "poly/Dependence.h"
#include "poly/Farkas.h"
#include "poly/Set.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// AffineSet
//===----------------------------------------------------------------------===//

TEST(AffineSet, EmptyAndNonEmpty) {
  AffineSet S({2, 0});
  S.addDimBounds(0, 0, 4);
  S.addDimBounds(1, 0, 4);
  EXPECT_FALSE(S.isEmpty());
  IntVector Conflict = {1, 0, -10}; // dim0 >= 10
  S.addGe(Conflict);
  EXPECT_TRUE(S.isEmpty());
}

TEST(AffineSet, EqualityMakesLine) {
  AffineSet S({2, 0});
  S.addDimBounds(0, 0, 4);
  S.addDimBounds(1, 0, 4);
  S.addEq({1, -1, 0}); // d0 == d1
  EXPECT_FALSE(S.isEmpty());
  // Minimum of d0 - d1 is 0 and maximum is 0.
  EXPECT_EQ(S.minimize({1, -1, 0}), Rational(0));
  EXPECT_EQ(S.maximize({1, -1, 0}), Rational(0));
}

TEST(AffineSet, MinMaxOverBox) {
  AffineSet S({2, 0});
  S.addDimBounds(0, 0, 4); // 0..3
  S.addDimBounds(1, 0, 3); // 0..2
  EXPECT_EQ(S.minimize({1, 1, 0}), Rational(0));
  EXPECT_EQ(S.maximize({1, 1, 0}), Rational(5));
  EXPECT_EQ(S.maximize({1, -1, 2}), Rational(5));
}

TEST(AffineSet, UnboundedMaximize) {
  AffineSet S({1, 0});
  S.addGe({1, 0}); // d0 >= 0 only
  EXPECT_EQ(S.maximize({1, 0}), std::nullopt);
  EXPECT_EQ(S.minimize({1, 0}), Rational(0));
}

TEST(AffineSet, AlwaysAtLeast) {
  AffineSet S({1, 0});
  S.addDimBounds(0, 2, 6); // 2..5
  EXPECT_TRUE(S.isAlwaysAtLeast({1, 0}, 2));
  EXPECT_FALSE(S.isAlwaysAtLeast({1, 0}, 3));
  EXPECT_TRUE(S.isAlwaysAtLeast({1, 3}, 5)); // d0 + 3 >= 5
}

TEST(AffineSet, AlwaysAtLeastVacuousOnEmpty) {
  AffineSet S({1, 0});
  S.addDimBounds(0, 0, 1);
  S.addGe({1, -10}); // d0 >= 10: empty
  EXPECT_TRUE(S.isAlwaysAtLeast({1, 0}, 100));
}

TEST(AffineSet, AlwaysZero) {
  AffineSet S({2, 0});
  S.addDimBounds(0, 0, 4);
  S.addDimBounds(1, 0, 4);
  S.addEq({1, -1, 0});
  EXPECT_TRUE(S.isAlwaysZero({1, -1, 0}));
  EXPECT_FALSE(S.isAlwaysZero({1, 0, 0}));
  EXPECT_TRUE(S.isAlwaysZero({0, 0, 0}));
}

TEST(AffineSet, ParametricMinimum) {
  // { i | 0 <= i, i <= N - 1 } with parameter N; min of N - i is 1 at
  // i = N - 1... over all N >= 0 and i, the minimum of N - i is 1? No:
  // N - i >= 1 from the constraint i <= N - 1, and it is attained.
  AffineSet S({1, 1});
  S.addGe({1, 0, 0});   // i >= 0
  S.addGe({-1, 1, -1}); // N - 1 - i >= 0
  EXPECT_EQ(S.minimize({-1, 1, 0}), Rational(1));
  EXPECT_TRUE(S.isAlwaysAtLeast({-1, 1, 0}, 1));
}

//===----------------------------------------------------------------------===//
// Dependence analysis
//===----------------------------------------------------------------------===//

namespace {

unsigned countKind(const std::vector<DependenceRelation> &Deps, DepKind K) {
  unsigned N = 0;
  for (const DependenceRelation &D : Deps)
    if (D.Kind == K)
      ++N;
  return N;
}

bool hasDep(const std::vector<DependenceRelation> &Deps, unsigned Src,
            unsigned Dst, DepKind K) {
  for (const DependenceRelation &D : Deps)
    if (D.SrcStmt == Src && D.DstStmt == Dst && D.Kind == K)
      return true;
  return false;
}

} // namespace

TEST(Dependence, ElementwiseHasNoDeps) {
  Kernel K = makeElementwise(8, 8);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  EXPECT_TRUE(Deps.empty());
}

TEST(Dependence, ProducerConsumerFlow) {
  Kernel K = makeProducerConsumer(8, 8);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  EXPECT_TRUE(hasDep(Deps, 0, 1, DepKind::Flow));
  // No backwards dependence.
  EXPECT_FALSE(hasDep(Deps, 1, 0, DepKind::Flow));
  EXPECT_FALSE(hasDep(Deps, 1, 0, DepKind::Anti));
}

TEST(Dependence, ReductionSelfDeps) {
  Kernel K = makeRowReduction(4, 16);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  EXPECT_TRUE(hasDep(Deps, 0, 0, DepKind::Flow));
  EXPECT_TRUE(hasDep(Deps, 0, 0, DepKind::Anti));
  EXPECT_TRUE(hasDep(Deps, 0, 0, DepKind::Output));
}

TEST(Dependence, RunningExampleStructure) {
  Kernel K = makeRunningExample(8);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  // X writes B, Y reads B.
  EXPECT_TRUE(hasDep(Deps, 0, 1, DepKind::Flow));
  // Y has a reduction on C over k.
  EXPECT_TRUE(hasDep(Deps, 1, 1, DepKind::Flow));
  EXPECT_TRUE(hasDep(Deps, 1, 1, DepKind::Output));
  // X has no self-dependences.
  EXPECT_FALSE(hasDep(Deps, 0, 0, DepKind::Flow));
  EXPECT_FALSE(hasDep(Deps, 0, 0, DepKind::Output));
}

TEST(Dependence, InputDepsOnlyWhenRequested) {
  // In the running example Y reads B[i][k] at every j: distinct
  // iterations of Y share reads, giving input (read-after-read)
  // relations when requested.
  Kernel K = makeRunningExample(8);
  std::vector<DependenceRelation> NoInput = computeDependences(K);
  EXPECT_EQ(countKind(NoInput, DepKind::Input), 0u);
  DependenceOptions Options;
  Options.IncludeInput = true;
  std::vector<DependenceRelation> WithInput = computeDependences(K, Options);
  EXPECT_GT(countKind(WithInput, DepKind::Input), 0u);
}

TEST(Dependence, RelationContainsOnlyMatchingIterations) {
  Kernel K = makeProducerConsumer(4, 4);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  ASSERT_TRUE(hasDep(Deps, 0, 1, DepKind::Flow));
  for (const DependenceRelation &D : Deps) {
    if (D.SrcStmt != 0 || D.DstStmt != 1 || D.Kind != DepKind::Flow)
      continue;
    // i_src - i_dst must be identically zero on the relation.
    IntVector Diff(D.Rel.space().width(), 0);
    Diff[0] = 1;
    Diff[2] = -1;
    EXPECT_TRUE(D.Rel.isAlwaysZero(Diff));
    IntVector DiffJ(D.Rel.space().width(), 0);
    DiffJ[1] = 1;
    DiffJ[3] = -1;
    EXPECT_TRUE(D.Rel.isAlwaysZero(DiffJ));
  }
}

TEST(Dependence, ReductionRelationIsForwardInK) {
  Kernel K = makeRowReduction(4, 8);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  for (const DependenceRelation &D : Deps) {
    if (D.SrcStmt != 0 || D.DstStmt != 0 || D.Kind != DepKind::Flow)
      continue;
    // j_dst - j_src >= 1 on the self flow relation.
    IntVector Diff(D.Rel.space().width(), 0);
    Diff[1] = -1;
    Diff[3] = 1;
    EXPECT_TRUE(D.Rel.isAlwaysAtLeast(Diff, 1));
  }
}

TEST(Dependence, PrintedSummary) {
  Kernel K = makeProducerConsumer(4, 4);
  std::vector<DependenceRelation> Deps = computeDependences(K);
  ASSERT_FALSE(Deps.empty());
  std::string Text = printDependence(K, Deps.front());
  EXPECT_NE(Text.find("->"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Farkas linearization
//===----------------------------------------------------------------------===//

TEST(Farkas, ForcesNonNegativityOverBox) {
  // P = { x | 0 <= x <= 3 }. Psi(x) = a*x + b with ILP vars a (int) and
  // b (int). Enforce Psi >= 0 over P and minimize a + b: the optimum is
  // a = b = 0; then requiring b <= -1 forces infeasibility unless a can
  // compensate... with x = 0 in P, Psi(0) = b >= 0 always, so b <= -1 is
  // infeasible.
  AffineSet P({1, 0});
  P.addDimBounds(0, 0, 4);

  IlpBuilder B;
  unsigned A = B.addVar("a", true);
  unsigned Bv = B.addVar("b", true);
  B.addUpperBound(A, 10);
  B.addUpperBound(Bv, 10);
  VarAffineForm Psi(P.space());
  Psi.dimCoeff(0).addTerm(A, 1);
  Psi.constCoeff().addTerm(Bv, 1);
  addFarkasNonNegative(B, P, Psi, "t");
  SparseForm Obj;
  Obj.addTerm(A, 1);
  Obj.addTerm(Bv, 1);
  B.addObjective(Obj);
  IlpResult R = B.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[A], Rational(0));
  EXPECT_EQ(R.Point[Bv], Rational(0));
}

TEST(Farkas, AllowsCompensatingCoefficients) {
  // P = { x | 1 <= x <= 3 }. Psi = a*x - 2: needs a >= 2/... at x = 1,
  // a - 2 >= 0 -> a >= 2 (a integer, x >= 1 makes a = 2 sufficient).
  AffineSet P({1, 0});
  P.addDimBounds(0, 1, 4);
  IlpBuilder B;
  unsigned A = B.addVar("a", true);
  B.addUpperBound(A, 10);
  VarAffineForm Psi(P.space());
  Psi.dimCoeff(0).addTerm(A, 1);
  Psi.constCoeff().addConstant(-2);
  addFarkasNonNegative(B, P, Psi, "t");
  SparseForm Obj;
  Obj.addTerm(A, 1);
  B.addObjective(Obj);
  IlpResult R = B.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[A], Rational(2));
}

TEST(Farkas, HandlesEqualityConstrainedSets) {
  // P = { (x, y) | x == y, 0 <= x <= 3 }. Psi = a*x - a*y is zero on P
  // for any a, so enforcing Psi >= 0 leaves a free; minimizing a - 1
  // after requiring a >= 1 gives a = 1.
  AffineSet P({2, 0});
  P.addDimBounds(0, 0, 4);
  P.addDimBounds(1, 0, 4);
  P.addEq({1, -1, 0});
  IlpBuilder B;
  unsigned A = B.addVar("a", true);
  B.addUpperBound(A, 10);
  VarAffineForm Psi(P.space());
  Psi.dimCoeff(0).addTerm(A, 1);
  Psi.dimCoeff(1).addTerm(A, -1);
  addFarkasNonNegative(B, P, Psi, "t");
  SparseForm AtLeastOne;
  AtLeastOne.addTerm(A, 1);
  AtLeastOne.addConstant(-1);
  B.addGe(AtLeastOne);
  SparseForm Obj;
  Obj.addTerm(A, 1);
  B.addObjective(Obj);
  IlpResult R = B.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[A], Rational(1));
}

//===----------------------------------------------------------------------===//
// Property sweep: Farkas certificate agrees with direct minimization for
// concrete coefficient choices.
//===----------------------------------------------------------------------===//

class FarkasProperty : public ::testing::TestWithParam<int> {};

TEST_P(FarkasProperty, AgreesWithDirectCheck) {
  Int CoeffA = GetParam() % 5 - 2;
  Int CoeffB = (GetParam() / 5) % 5 - 2;
  AffineSet P({1, 0});
  P.addDimBounds(0, 0, 5);
  // Direct check: is CoeffA * x + CoeffB >= 0 over 0..4?
  bool Direct = P.isAlwaysAtLeast({CoeffA, CoeffB}, 0);
  // Farkas check: fix the coefficients as constants.
  IlpBuilder B;
  VarAffineForm Psi(P.space());
  Psi.dimCoeff(0).addConstant(CoeffA);
  Psi.constCoeff().addConstant(CoeffB);
  addFarkasNonNegative(B, P, Psi, "t");
  bool ViaFarkas = B.solve().isOptimal();
  EXPECT_EQ(Direct, ViaFarkas)
      << "CoeffA=" << CoeffA << " CoeffB=" << CoeffB;
}

INSTANTIATE_TEST_SUITE_P(Grid, FarkasProperty, ::testing::Range(0, 25));
