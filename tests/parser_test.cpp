//===- tests/parser_test.cpp - textual kernel format tests ----------------===//

#include "ir/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

std::optional<Kernel> parse(const std::string &Text) {
  std::string Error;
  std::optional<Kernel> K = parseKernel(Text, Error);
  EXPECT_TRUE(K || !Error.empty());
  return K;
}

std::string parseError(const std::string &Text) {
  std::string Error;
  std::optional<Kernel> K = parseKernel(Text, Error);
  EXPECT_FALSE(K.has_value());
  return Error;
}

} // namespace

TEST(Parser, MinimalKernel) {
  std::optional<Kernel> K = parse("kernel k\n"
                                  "tensor A 8\n"
                                  "tensor B 8\n"
                                  "stmt S iter i=8 op relu write B[i] "
                                  "read A[i]\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->Name, "k");
  EXPECT_EQ(K->Stmts.size(), 1u);
  EXPECT_EQ(K->verify(), "");
  EXPECT_EQ(K->Stmts[0].Kind, OpKind::Relu);
}

TEST(Parser, RunningExampleRoundTrip) {
  std::optional<Kernel> K =
      parse("kernel fused\n"
            "tensor A 4 4\ntensor B 4 4\ntensor C 4 4\ntensor D 4 4 4\n"
            "stmt X iter i=4 k=4 op relu write B[i][k] read A[i][k]\n"
            "stmt Y iter i=4 j=4 k=4 op fma write C[i][j] read C[i][j] "
            "read B[i][k] read D[k][i][j]\n");
  ASSERT_TRUE(K.has_value());
  std::string Text = printKernel(*K);
  EXPECT_NE(Text.find("Y: C[i][j] = fma(C[i][j], B[i][k], D[k][i][j]);"),
            std::string::npos);
}

TEST(Parser, LineContinuationAndComments) {
  std::optional<Kernel> K = parse("# leading comment\n"
                                  "kernel k\n"
                                  "tensor A 8   # trailing comment\n"
                                  "tensor B 8\n"
                                  "stmt S iter i=8 op relu \\\n"
                                  "     write B[i] read A[i]\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->Stmts.size(), 1u);
}

TEST(Parser, IndexExpressions) {
  std::optional<Kernel> K =
      parse("kernel k\n"
            "tensor A 12\ntensor B 8\n"
            "stmt S iter i=8 op relu write B[i] read A[i+3]\n");
  ASSERT_TRUE(K.has_value());
  EXPECT_EQ(K->Stmts[0].Reads[0].Indices[0], (IntVector{1, 3}));
  std::optional<Kernel> C =
      parse("kernel k\ntensor A 4\ntensor B 4\n"
            "stmt S iter i=4 op relu write B[i] read A[2]\n");
  ASSERT_TRUE(C.has_value());
  EXPECT_EQ(C->Stmts[0].Reads[0].Indices[0], (IntVector{0, 2}));
}

TEST(Parser, ErrorsCarryLineNumbers) {
  EXPECT_NE(parseError("tensor A\n").find("line 1"), std::string::npos);
  EXPECT_NE(parseError("kernel k\nfrobnicate\n").find("line 2"),
            std::string::npos);
}

TEST(Parser, RejectsUnknownTensor) {
  std::string E = parseError("kernel k\ntensor A 4\n"
                             "stmt S iter i=4 op relu write B[i] "
                             "read A[i]\n");
  EXPECT_NE(E.find("unknown tensor"), std::string::npos);
}

TEST(Parser, RejectsWrongArity) {
  std::string E = parseError("kernel k\ntensor A 4\ntensor B 4\n"
                             "stmt S iter i=4 op add write B[i] "
                             "read A[i]\n");
  EXPECT_NE(E.find("expects 2 reads"), std::string::npos);
}

TEST(Parser, RejectsMissingWrite) {
  std::string E = parseError("kernel k\ntensor A 4\n"
                             "stmt S iter i=4 op relu read A[i]\n");
  EXPECT_NE(E.find("needs a write"), std::string::npos);
}

TEST(Parser, RejectsMalformedAccess) {
  std::string E = parseError("kernel k\ntensor A 4\ntensor B 4\n"
                             "stmt S iter i=4 op relu write B[i "
                             "read A[i]\n");
  EXPECT_FALSE(E.empty());
}

TEST(Parser, RejectsEmptyInput) {
  EXPECT_NE(parseError("# nothing here\n").find("no statements"),
            std::string::npos);
}

TEST(Parser, RejectsBadOpName) {
  std::string E = parseError("kernel k\ntensor A 4\ntensor B 4\n"
                             "stmt S iter i=4 op frob write B[i] "
                             "read A[i]\n");
  EXPECT_NE(E.find("unknown op"), std::string::npos);
}

TEST(Parser, RejectsUnknownIterator) {
  std::string E = parseError("kernel k\ntensor A 4\ntensor B 4\n"
                             "stmt S iter i=4 op relu write B[z] "
                             "read A[i]\n");
  EXPECT_NE(E.find("unknown iterator"), std::string::npos);
}

TEST(Parser, RejectsMalformedExtent) {
  std::string E = parseError("kernel k\ntensor A 4\ntensor B 4\n"
                             "stmt S iter i=abc op relu write B[i] "
                             "read A[i]\n");
  EXPECT_NE(E.find("malformed iterator extent"), std::string::npos);
}

TEST(Parser, RejectsOverlongLiterals) {
  EXPECT_FALSE(parseError("kernel k\ntensor A 4\ntensor B 4\n"
                          "stmt S iter i=99999999999999999999999999 "
                          "op relu write B[i] read A[i]\n")
                   .empty());
  EXPECT_FALSE(parseError("kernel k\ntensor A 4\ntensor B 4\n"
                          "stmt S iter i=4 op relu write B[i] "
                          "read A[i+99999999999999999999999999]\n")
                   .empty());
}

TEST(Parser, RejectsAccessArityAgainstRank) {
  std::string E = parseError("kernel k\ntensor A 8 8\ntensor B 8\n"
                             "stmt S iter i=8 op relu write B[i] "
                             "read A[i]\n");
  EXPECT_NE(E.find("arity"), std::string::npos);
}

// A corpus of malformed inputs that once crashed (aborted or threw out of
// main) or exercise verifier paths the line-by-line parser cannot see.
// Every entry must produce a diagnostic, never a crash.
TEST(Parser, MalformedCorpusNeverCrashes) {
  const char *Corpus[] = {
      "",
      "\n\n\n",
      "kernel\n",
      "kernel k\nkernel k2\n",
      "tensor A 0\n",
      "tensor A -3\n",
      "tensor A\n",
      "tensor A 4\ntensor A 4\n",
      "stmt S\n",
      "stmt S iter\n",
      "stmt S iter i=0 op assign\n",
      "stmt S iter =4 op assign\n",
      "stmt S iter i=4 op\n",
      "kernel k\ntensor A 4\nstmt S iter i=4 op relu write A[j] read A[i]\n",
      "kernel k\ntensor A 4\nstmt S iter i=4 i=4 op relu write A[i] "
      "read A[i]\n",
      "kernel k\ntensor A 4 4\nstmt S iter i=4 op relu write A[i] "
      "read A[i][i]\n",
      "kernel k\ntensor A 4\nstmt S iter i=18446744073709551616 op relu "
      "write A[i] read A[i]\n",
      "kernel k\ntensor A 4\nstmt S iter i=4 op relu write A[i] read\n",
      "kernel k\ntensor A 4\nstmt S iter i=4 op relu write read A[i]\n",
      "kernel k\ntensor A 4\nstmt S iter i=4 op relu scribble A[i]\n",
  };
  for (const char *Text : Corpus) {
    std::string Error;
    std::optional<Kernel> K = parseKernel(Text, Error);
    EXPECT_FALSE(K.has_value()) << "accepted: " << Text;
    EXPECT_FALSE(Error.empty()) << "no diagnostic for: " << Text;
  }
}

TEST(Parser, VerifyRejectsDegenerateKernels) {
  Kernel Empty;
  Empty.Name = "empty";
  EXPECT_NE(Empty.verify().find("no statements"), std::string::npos);

  Kernel BadTensor;
  BadTensor.Name = "bad";
  Tensor T;
  T.Name = "A";
  EXPECT_EQ(BadTensor.verify(), "kernel has no statements");
  BadTensor.Stmts.emplace_back();
  BadTensor.Tensors.push_back(T);
  EXPECT_NE(BadTensor.verify().find("no dimensions"), std::string::npos);
}

TEST(Parser, OpKindMnemonicsRoundTrip) {
  for (OpKind Kind :
       {OpKind::Assign, OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div,
        OpKind::Max, OpKind::Min, OpKind::Relu, OpKind::Exp, OpKind::Rsqrt,
        OpKind::Neg, OpKind::Fma, OpKind::MulSub}) {
    std::optional<OpKind> Parsed = parseOpKind(opKindName(Kind));
    ASSERT_TRUE(Parsed.has_value()) << opKindName(Kind);
    EXPECT_EQ(*Parsed, Kind);
  }
  EXPECT_FALSE(parseOpKind("nope").has_value());
}
