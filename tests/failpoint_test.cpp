//===- tests/failpoint_test.cpp - Fault-injection sweep -------------------===//
//
// Sweeps every registered fail-point through the full pipeline and
// asserts the fault-tolerance contract: runOperator never crashes, every
// configuration still carries a dependence-respecting schedule, and the
// degradation is recorded on the report (and in the sidecar record).
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "pipeline/Pipeline.h"
#include "support/FailPoint.h"

#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

/// Exact schedule validity (same oracle as sched_test / fuzz_test).
bool scheduleRespects(const Kernel &K, const Schedule &S,
                      const DependenceRelation &D) {
  AffineSet Remaining = D.Rel;
  for (unsigned Dim = 0, E = S.numDims(); Dim != E; ++Dim) {
    if (Remaining.isEmpty())
      return true;
    IntVector Diff = S.differenceExpr(K, D, Dim);
    if (!Remaining.isAlwaysAtLeast(Diff, 0))
      return false;
    if (Remaining.isAlwaysAtLeast(Diff, 1))
      return true;
    Remaining.addEq(Diff);
  }
  return Remaining.isEmpty();
}

bool isValidSchedule(const Kernel &K, const Schedule &S) {
  for (const DependenceRelation &D : computeDependences(K))
    if (D.constrainsValidity() && !scheduleRespects(K, S, D))
      return false;
  return true;
}

} // namespace

class FailPointSweep : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { failpoint::clearAll(); }
};

TEST_P(FailPointSweep, PipelineSurvivesAndRecordsDegradation) {
  const char *Site = GetParam();
  Kernel K = makeRunningExample(8);

  PipelineOptions Options;
  Options.Validate = true;
  obs::ReportSink Sink;
  Options.Sink = &Sink;

  failpoint::activate(Site);
  ASSERT_TRUE(failpoint::isActive(Site));
  OperatorReport R = runOperator(K, Options);
  failpoint::clearAll();

  // The fault must surface as a recorded degradation attributed to the
  // injected site, never as a crash or a silent wrong answer.
  ASSERT_TRUE(R.degraded()) << Site;
  bool Attributed = false;
  for (const DegradationEvent &E : R.Degradations) {
    EXPECT_FALSE(E.Config.empty());
    if (E.Site == Site && E.Code == StatusCode::InjectedFault)
      Attributed = true;
  }
  EXPECT_TRUE(Attributed) << "no degradation attributed to " << Site;

  // Whatever the ladder substituted, the schedules must still respect
  // every dependence (checked with the fault cleared, so the oracle
  // itself cannot trip it).
  EXPECT_TRUE(isValidSchedule(K, R.Isl.Sched)) << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Novec.Sched)) << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Infl.Sched)) << Site;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Infl.Sched)) << Site;

  // The sidecar record carries the same degradations.
  ASSERT_EQ(Sink.operators().size(), 1u);
  EXPECT_EQ(Sink.operators()[0].Degradations.size(), R.Degradations.size());
}

INSTANTIATE_TEST_SUITE_P(AllSites, FailPointSweep,
                         ::testing::ValuesIn(failpoint::allSites()));

TEST(FailPoint, CatalogAndActivationApi) {
  ASSERT_GE(failpoint::allSites().size(), 10u);
  for (const char *Site : failpoint::allSites())
    EXPECT_FALSE(failpoint::isActive(Site)) << Site;

  failpoint::activate("lp.simplex");
  EXPECT_TRUE(failpoint::isActive("lp.simplex"));
  EXPECT_THROW(failpoint::hit("lp.simplex"), RecoverableError);
  failpoint::deactivate("lp.simplex");
  EXPECT_FALSE(failpoint::isActive("lp.simplex"));
  EXPECT_NO_THROW(failpoint::hit("lp.simplex"));
}

TEST(FailPoint, InjectedFaultCarriesSite) {
  failpoint::activate("poly.farkas");
  try {
    failpoint::hit("poly.farkas");
    FAIL() << "fail-point did not fire";
  } catch (const RecoverableError &E) {
    EXPECT_EQ(E.status().code(), StatusCode::InjectedFault);
    EXPECT_EQ(E.status().site(), "poly.farkas");
  }
  failpoint::clearAll();
}

TEST(FailPoint, CleanRunHasNoDegradations) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Options;
  Options.Validate = true;
  OperatorReport R = runOperator(K, Options);
  EXPECT_FALSE(R.degraded());
  EXPECT_TRUE(R.Validated);
  EXPECT_TRUE(R.Isl.Outcome.ok());
  EXPECT_TRUE(R.Novec.Outcome.ok());
  EXPECT_TRUE(R.Infl.Outcome.ok());
}
