//===- tests/failpoint_test.cpp - Fault-injection sweep -------------------===//
//
// Sweeps every registered fail-point through the full pipeline and
// asserts the fault-tolerance contract: runOperator never crashes, every
// configuration still carries a dependence-respecting schedule, and the
// degradation is recorded on the report (and in the sidecar record).
// The service.* sites fire at the compilation daemon's own boundaries
// rather than inside the pipeline, so they get their own sweep: each
// must surface as exactly one attributed terminal response.
//
//===----------------------------------------------------------------------===//

#include "exec/Interpreter.h"
#include "ir/Printer.h"
#include "obs/Json.h"
#include "pipeline/Pipeline.h"
#include "service/Daemon.h"
#include "support/FailPoint.h"

#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

namespace {

bool isServiceSite(const char *Site) {
  return std::string(Site).rfind("service.", 0) == 0;
}

/// The pipeline-stage sites: everything the runOperator degradation
/// ladder absorbs in-process.
std::vector<const char *> pipelineSites() {
  std::vector<const char *> Sites;
  for (const char *Site : failpoint::allSites())
    if (!isServiceSite(Site))
      Sites.push_back(Site);
  return Sites;
}

/// The daemon-boundary sites, swept through service::Daemon below.
std::vector<const char *> serviceSites() {
  std::vector<const char *> Sites;
  for (const char *Site : failpoint::allSites())
    if (isServiceSite(Site))
      Sites.push_back(Site);
  return Sites;
}

/// Exact schedule validity (same oracle as sched_test / fuzz_test).
bool scheduleRespects(const Kernel &K, const Schedule &S,
                      const DependenceRelation &D) {
  AffineSet Remaining = D.Rel;
  for (unsigned Dim = 0, E = S.numDims(); Dim != E; ++Dim) {
    if (Remaining.isEmpty())
      return true;
    IntVector Diff = S.differenceExpr(K, D, Dim);
    if (!Remaining.isAlwaysAtLeast(Diff, 0))
      return false;
    if (Remaining.isAlwaysAtLeast(Diff, 1))
      return true;
    Remaining.addEq(Diff);
  }
  return Remaining.isEmpty();
}

bool isValidSchedule(const Kernel &K, const Schedule &S) {
  for (const DependenceRelation &D : computeDependences(K))
    if (D.constrainsValidity() && !scheduleRespects(K, S, D))
      return false;
  return true;
}

} // namespace

class FailPointSweep : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { failpoint::clearAll(); }
};

TEST_P(FailPointSweep, PipelineSurvivesAndRecordsDegradation) {
  const char *Site = GetParam();
  Kernel K = makeRunningExample(8);

  PipelineOptions Options;
  Options.Validate = true;
  obs::ReportSink Sink;
  Options.Sink = &Sink;

  failpoint::activate(Site);
  ASSERT_TRUE(failpoint::isActive(Site));
  OperatorReport R = runOperator(K, Options);
  failpoint::clearAll();

  // The fault must surface as a recorded degradation attributed to the
  // injected site, never as a crash or a silent wrong answer.
  ASSERT_TRUE(R.degraded()) << Site;
  bool Attributed = false;
  for (const DegradationEvent &E : R.Degradations) {
    EXPECT_FALSE(E.Config.empty());
    if (E.Site == Site && E.Code == StatusCode::InjectedFault)
      Attributed = true;
  }
  EXPECT_TRUE(Attributed) << "no degradation attributed to " << Site;

  // Whatever the ladder substituted, the schedules must still respect
  // every dependence (checked with the fault cleared, so the oracle
  // itself cannot trip it).
  EXPECT_TRUE(isValidSchedule(K, R.Isl.Sched)) << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Novec.Sched)) << Site;
  EXPECT_TRUE(isValidSchedule(K, R.Infl.Sched)) << Site;
  EXPECT_TRUE(scheduleIsSemanticallyEqual(K, R.Infl.Sched)) << Site;

  // The sidecar record carries the same degradations.
  ASSERT_EQ(Sink.operators().size(), 1u);
  EXPECT_EQ(Sink.operators()[0].Degradations.size(), R.Degradations.size());
}

INSTANTIATE_TEST_SUITE_P(PipelineSites, FailPointSweep,
                         ::testing::ValuesIn(pipelineSites()));

/// The daemon-boundary contract: with a service.* site active, every
/// submitted line still gets exactly one terminal response, and (except
/// for the drain site, which must make progress regardless) that
/// response is an error attributed to the injected site.
class DaemonFailPointSweep : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { failpoint::clearAll(); }
};

TEST_P(DaemonFailPointSweep, OneAttributedTerminalResponse) {
  const char *Site = GetParam();
  service::DaemonConfig Cfg;
  Cfg.Sync = true;

  std::vector<std::string> Lines;
  service::Daemon D(Cfg);
  D.start([&Lines](const std::string &L) { Lines.push_back(L); });

  std::string Error;
  std::optional<std::string> Text = printPinj(makeElementwise(6, 6), Error);
  ASSERT_TRUE(Text.has_value()) << Error;
  std::string Request =
      "{\"id\":\"r1\",\"kernel\":\"" + obs::json::escape(*Text) + "\"}";

  failpoint::activate(Site);
  D.submitLine(Request);

  if (std::string(Site) == "service.drain") {
    // The drain fail-point fires inside drainAndStop; the compile
    // itself succeeds, and the faulted drain must still drain cleanly
    // without producing or dropping responses.
    ASSERT_EQ(1u, Lines.size());
    EXPECT_NE(std::string::npos, Lines[0].find("\"status\":\"ok\""))
        << Lines[0];
    D.drainAndStop();
    EXPECT_EQ(1u, Lines.size());
    EXPECT_TRUE(D.cleanDrain());
    EXPECT_EQ(1u, D.stats().Responses);
  } else {
    ASSERT_EQ(1u, Lines.size());
    EXPECT_NE(std::string::npos, Lines[0].find("\"status\":\"error\""))
        << Lines[0];
    EXPECT_NE(std::string::npos, Lines[0].find(Site))
        << "response not attributed to " << Site << ": " << Lines[0];
    EXPECT_EQ(1u, D.stats().FaultResponses);
    failpoint::clearAll();
    D.drainAndStop();
    EXPECT_EQ(1u, Lines.size());
  }
}

INSTANTIATE_TEST_SUITE_P(ServiceSites, DaemonFailPointSweep,
                         ::testing::ValuesIn(serviceSites()));

TEST(FailPoint, CatalogAndActivationApi) {
  ASSERT_GE(failpoint::allSites().size(), 10u);
  for (const char *Site : failpoint::allSites())
    EXPECT_FALSE(failpoint::isActive(Site)) << Site;

  failpoint::activate("lp.simplex");
  EXPECT_TRUE(failpoint::isActive("lp.simplex"));
  EXPECT_THROW(failpoint::hit("lp.simplex"), RecoverableError);
  failpoint::deactivate("lp.simplex");
  EXPECT_FALSE(failpoint::isActive("lp.simplex"));
  EXPECT_NO_THROW(failpoint::hit("lp.simplex"));
}

TEST(FailPoint, InjectedFaultCarriesSite) {
  failpoint::activate("poly.farkas");
  try {
    failpoint::hit("poly.farkas");
    FAIL() << "fail-point did not fire";
  } catch (const RecoverableError &E) {
    EXPECT_EQ(E.status().code(), StatusCode::InjectedFault);
    EXPECT_EQ(E.status().site(), "poly.farkas");
  }
  failpoint::clearAll();
}

TEST(FailPoint, CleanRunHasNoDegradations) {
  Kernel K = makeRunningExample(8);
  PipelineOptions Options;
  Options.Validate = true;
  OperatorReport R = runOperator(K, Options);
  EXPECT_FALSE(R.degraded());
  EXPECT_TRUE(R.Validated);
  EXPECT_TRUE(R.Isl.Outcome.ok());
  EXPECT_TRUE(R.Novec.Outcome.ok());
  EXPECT_TRUE(R.Infl.Outcome.ok());
}
