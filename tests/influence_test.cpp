//===- tests/influence_test.cpp - influence/ unit tests -------------------===//

#include "influence/AccessAnalysis.h"
#include "influence/ScenarioBuilder.h"
#include "influence/TreeBuilder.h"
#include "sched/Scheduler.h"
#include "TestKernels.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// Access analysis
//===----------------------------------------------------------------------===//

TEST(AccessAnalysis, RunningExampleStrides) {
  Kernel K = makeRunningExample(64);
  const Statement &Y = K.Stmts[1];
  std::vector<AccessStrides> Strides = analyzeStrides(K, Y);
  ASSERT_EQ(Strides.size(), 4u); // write C, read C, read B, read D.
  // C[i][j]: strides (64, 1, 0) over (i, j, k).
  EXPECT_EQ(Strides[0].StridePerIter, (std::vector<Int>{64, 1, 0}));
  EXPECT_TRUE(Strides[0].IsWrite);
  // B[i][k]: strides (64, 0, 1).
  EXPECT_EQ(Strides[2].StridePerIter, (std::vector<Int>{64, 0, 1}));
  // D[k][i][j]: strides (64, 1, 4096).
  EXPECT_EQ(Strides[3].StridePerIter, (std::vector<Int>{64, 1, 4096}));
}

TEST(AccessAnalysis, ConstOffset) {
  KernelBuilder B("shifted");
  unsigned T = B.tensor("T", {8, 10});
  unsigned O = B.tensor("O", {8, 8});
  B.stmt("S", {{"i", 8}, {"j", 8}})
      .write(O, {"i", "j"})
      .read(T, {"i", IndexExpr("j") + 2})
      .op(OpKind::Assign);
  Kernel K = B.build();
  std::vector<AccessStrides> Strides = analyzeStrides(K, K.Stmts[0]);
  EXPECT_EQ(Strides[1].ConstOffset, 2);
  EXPECT_EQ(Strides[1].StridePerIter, (std::vector<Int>{10, 1}));
}

TEST(AccessAnalysis, VectorizableConditions) {
  Kernel K = makeRunningExample(64);
  const Statement &Y = K.Stmts[1];
  std::vector<AccessStrides> Strides = analyzeStrides(K, Y);
  unsigned J = 1; // iterator j.
  // C[i][j] contiguous in j and aligned (row stride 64 % 4 == 0).
  EXPECT_TRUE(isVectorizableAccess(Strides[0], J, 4));
  // B[i][k] constant in j: vectorizable as a broadcast load.
  EXPECT_TRUE(isVectorizableAccess(Strides[2], J, 4));
  // D[k][i][j] contiguous in j.
  EXPECT_TRUE(isVectorizableAccess(Strides[3], J, 4));
  // Along k, D has stride 4096: not vectorizable.
  EXPECT_FALSE(isVectorizableAccess(Strides[3], 2, 4));
}

TEST(AccessAnalysis, MisalignedRowStride) {
  // Tensor rows of 6 elements: a float4 group starting at row 1 is
  // misaligned, so width 4 must be rejected but width 2 accepted.
  KernelBuilder B("misaligned");
  unsigned In = B.tensor("IN", {4, 6});
  unsigned Out = B.tensor("OUT", {4, 6});
  B.stmt("S", {{"i", 4}, {"j", 6}})
      .write(Out, {"i", "j"})
      .read(In, {"i", "j"})
      .op(OpKind::Relu);
  Kernel K = B.build();
  std::vector<AccessStrides> Strides = analyzeStrides(K, K.Stmts[0]);
  EXPECT_FALSE(isVectorizableAccess(Strides[0], 1, 4));
  EXPECT_TRUE(isVectorizableAccess(Strides[0], 1, 2));
  EXPECT_EQ(bestVectorWidth(K.Stmts[0], Strides, 1), 2u);
}

TEST(AccessAnalysis, BestWidthRequiresDivisibleExtent) {
  Kernel K = makeElementwise(8, 6); // 6 % 4 != 0 but 6 % 2 == 0...
  std::vector<AccessStrides> Strides = analyzeStrides(K, K.Stmts[0]);
  // Row stride 6 is not a multiple of 4 either; width 2 works (6 % 2
  // == 0, stride 6 % 2 == 0).
  EXPECT_EQ(bestVectorWidth(K.Stmts[0], Strides, 1), 2u);
  Kernel K4 = makeElementwise(8, 16);
  std::vector<AccessStrides> Strides4 = analyzeStrides(K4, K4.Stmts[0]);
  EXPECT_EQ(bestVectorWidth(K4.Stmts[0], Strides4, 1), 4u);
}

TEST(AccessAnalysis, ConstantWriteNotVectorizable) {
  Kernel K = makeRowReduction(8, 16);
  std::vector<AccessStrides> Strides = analyzeStrides(K, K.Stmts[0]);
  // OUT[i] is constant in j: a store cannot vectorize over j.
  EXPECT_FALSE(isVectorizableAccess(Strides[0], 1, 4));
}

//===----------------------------------------------------------------------===//
// Algorithm 2 / cost function
//===----------------------------------------------------------------------===//

TEST(ScenarioBuilder, RunningExamplePicksJInnermost) {
  Kernel K = makeRunningExample(64);
  InfluenceOptions Options;
  DimScenario Scen = buildBestScenario(K, 1, Options);
  ASSERT_FALSE(Scen.Inner.empty());
  // j (iterator index 1) is the vectorization winner: the write C and
  // the big tensor D are contiguous in it, B is a broadcast.
  EXPECT_EQ(Scen.Inner.back(), 1u);
  EXPECT_EQ(Scen.VectorWidth, 4u);
  EXPECT_EQ(Scen.Inner.size(), 3u);
}

TEST(ScenarioBuilder, CostPrefersVectorizableDimension) {
  Kernel K = makeRunningExample(64);
  const Statement &Y = K.Stmts[1];
  std::vector<AccessStrides> Strides = analyzeStrides(K, Y);
  CostWeights W;
  double CostJ = dimensionCost(Y, Strides, 1, true, 1024, W);
  double CostI = dimensionCost(Y, Strides, 0, true, 1024, W);
  double CostK = dimensionCost(Y, Strides, 2, true, 1024, W);
  EXPECT_GT(CostJ, CostI);
  EXPECT_GT(CostJ, CostK);
}

TEST(ScenarioBuilder, WeightsChangeTheWinner) {
  // With w1 = w2 = 0 (no vectorization preference), the innermost pick
  // follows strides/thread terms only; j still has stride 1 on two
  // accesses so it wins, but zeroing w3/w4 too leaves only the thread
  // term, making all dims tie (the later iterator wins ties).
  Kernel K = makeRunningExample(64);
  const Statement &Y = K.Stmts[1];
  std::vector<AccessStrides> Strides = analyzeStrides(K, Y);
  CostWeights W;
  W.W1 = W.W2 = W.W3 = W.W4 = 0;
  double CostI = dimensionCost(Y, Strides, 0, true, 1024, W);
  double CostJ = dimensionCost(Y, Strides, 1, true, 1024, W);
  EXPECT_DOUBLE_EQ(CostI, CostJ);
}

TEST(ScenarioBuilder, ThreadTermVariants) {
  Kernel K = makeElementwise(64, 64);
  const Statement &S = K.Stmts[0];
  std::vector<AccessStrides> Strides = analyzeStrides(K, S);
  CostWeights Prose; // default: w5 * F * N / L
  Prose.W1 = Prose.W2 = Prose.W3 = Prose.W4 = 0;
  CostWeights Paper = Prose;
  Paper.PaperFormulaThreadTerm = true;
  double ProseCost = dimensionCost(S, Strides, 0, false, 1024, Prose);
  double PaperCost = dimensionCost(S, Strides, 0, false, 1024, Paper);
  EXPECT_DOUBLE_EQ(ProseCost, 64.0 / 1024.0);
  EXPECT_DOUBLE_EQ(PaperCost, 1024.0 / 64.0);
}

TEST(ScenarioBuilder, AlternativesSortedByScore) {
  Kernel K = makeRunningExample(64);
  InfluenceOptions Options;
  std::vector<DimScenario> Alts = buildScenarioAlternatives(K, 1, Options);
  ASSERT_GE(Alts.size(), 2u);
  for (unsigned I = 1; I < Alts.size(); ++I)
    EXPECT_GE(Alts[I - 1].Score, Alts[I].Score);
  EXPECT_EQ(Alts[0].Inner.back(), 1u); // best = j innermost.
}

TEST(ScenarioBuilder, ScenarioLengthCapped) {
  KernelBuilder B("deep");
  unsigned T = B.tensor("T", {4, 4, 4, 4, 4});
  unsigned O = B.tensor("O", {4, 4, 4, 4, 4});
  B.stmt("S",
         {{"a", 4}, {"b", 4}, {"c", 4}, {"d", 4}, {"e", 4}})
      .write(O, {"a", "b", "c", "d", "e"})
      .read(T, {"a", "b", "c", "d", "e"})
      .op(OpKind::Relu);
  Kernel K = B.build();
  DimScenario Scen = buildBestScenario(K, 0, InfluenceOptions());
  EXPECT_EQ(Scen.Inner.size(), 3u); // |I_s| < 3 bound of Algorithm 2.
}

//===----------------------------------------------------------------------===//
// Tree builder
//===----------------------------------------------------------------------===//

TEST(TreeBuilder, PickSink) {
  Kernel K = makeRunningExample(8);
  EXPECT_EQ(pickSinkStatement(K), 1u); // Y has 3 iterators.
  Kernel E = makeElementwise(4, 4);
  EXPECT_EQ(pickSinkStatement(E), 0u);
}

TEST(TreeBuilder, RunningExampleTreeShape) {
  Kernel K = makeRunningExample(64);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  ASSERT_FALSE(Tree.empty());
  // Branch order: fused variant of the best scenario first.
  const InfluenceNode *First = Tree.root().Children.front().get();
  EXPECT_EQ(First->Label.substr(0, 5), "fused");
  // Depth chain covers the sink's three dimensions.
  const InfluenceNode *Node = First;
  unsigned Depth = 0;
  while (!Node->Children.empty()) {
    ++Depth;
    Node = Node->Children.front().get();
  }
  EXPECT_EQ(Depth + 1, 3u);
  // The leaf carries the vector mark for the sink.
  EXPECT_EQ(Node->VectorWidth, 4u);
  ASSERT_EQ(Node->VectorStmts.size(), 1u);
  EXPECT_EQ(Node->VectorStmts[0], 1u);
}

TEST(TreeBuilder, SoloVariantsPresent) {
  Kernel K = makeRunningExample(64);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  bool HasSolo = false;
  for (const auto &Child : Tree.root().Children)
    if (Child->Label.substr(0, 4) == "solo")
      HasSolo = true;
  EXPECT_TRUE(HasSolo);
}

TEST(TreeBuilder, BranchCountCapped) {
  Kernel K = makeRunningExample(64);
  InfluenceOptions Options;
  Options.MaxScenarios = 3;
  InfluenceTree Tree = buildInfluenceTree(K, Options);
  EXPECT_LE(Tree.root().Children.size(), 3u);
}

TEST(TreeBuilder, SingleStatementHasNoFusedVariant) {
  Kernel K = makeTranspose(32, 32);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  for (const auto &Child : Tree.root().Children)
    EXPECT_EQ(Child->Label.substr(0, 4), "solo");
}

TEST(TreeBuilder, TreePrinting) {
  Kernel K = makeRunningExample(8);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  std::string Text = Tree.str(K);
  EXPECT_NE(Text.find("fused"), std::string::npos);
  EXPECT_NE(Text.find("== 0"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// End-to-end: the automatically built tree drives the scheduler to the
// paper's Fig. 2(c) structure.
//===----------------------------------------------------------------------===//

TEST(TreeBuilder, AutoTreeReproducesFig2c) {
  Kernel K = makeRunningExample(64);
  InfluenceTree Tree = buildInfluenceTree(K, InfluenceOptions());
  SchedulerOptions Sched;
  SchedulerResult R = scheduleKernel(K, Sched, &Tree);
  ASSERT_NE(R.ReachedLeaf, nullptr);
  // Y's innermost (non-scalar) dimension is j with a vector mark.
  const Statement &Y = K.Stmts[1];
  (void)Y;
  ASSERT_GE(R.Sched.numDims(), 3u);
  EXPECT_EQ(R.Sched.Transforms[1].row(2), (IntVector{0, 1, 0, 0}));
  EXPECT_TRUE(R.Sched.Dims[2].isVectorFor(1));
  // X and Y are fused on the two outer dimensions.
  for (unsigned D = 0; D != 2; ++D) {
    IntVector XRow = R.Sched.Transforms[0].row(D);
    IntVector YRow = R.Sched.Transforms[1].row(D);
    // Same-named iterators have equal coefficients: i <-> i, k <-> k.
    EXPECT_EQ(XRow[0], YRow[0]); // i
    EXPECT_EQ(XRow[1], YRow[2]); // k
  }
}
