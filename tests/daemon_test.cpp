//===- tests/daemon_test.cpp - Compilation daemon tests -------------------===//
//
// Covers src/service/Admission.h and src/service/Daemon.h: EDF ordering
// and FIFO tie-breaks in the admission queue, the shed policy (expired
// deadlines, bounded-queue overload, draining) with its depth-scaled
// retry_after_ms hints, deadline-to-budget derivation, the JSONL
// protocol in sync and async modes, graceful drain, the crash-recovery
// sweep (kill-mid-write quarantine, corruption paid once), the striped
// in-memory cache tier, and the chaos harness's
// one-terminal-response-per-request invariant across every fail-point
// site. This executable is the third binary the POLYINJECT_SANITIZE=
// thread CTest configuration runs (worker pool + admission queue +
// striped cache under TSan).
//
//===----------------------------------------------------------------------===//

#include "obs/Journal.h"
#include "obs/Json.h"
#include "ir/Printer.h"
#include "pipeline/Pipeline.h"
#include "service/Admission.h"
#include "service/Cache.h"
#include "service/Daemon.h"
#include "obs/Metrics.h"
#include "service/Fingerprint.h"
#include "support/FailPoint.h"
#include "target/Target.h"

#include "TestKernels.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

using namespace pinj;
using namespace pinj::service;

namespace {

namespace fs = std::filesystem;
namespace json = obs::json;
using Clock = std::chrono::steady_clock;

/// A fresh per-test directory under the gtest temp root.
fs::path freshDir(const std::string &Name) {
  fs::path Dir = fs::path(::testing::TempDir()) / Name;
  fs::remove_all(Dir);
  return Dir;
}

/// A request with identity only (the queue-level tests never run it).
DaemonRequest namedRequest(const std::string &Id) {
  DaemonRequest R;
  R.ClientId = Id;
  return R;
}

DaemonRequest deadlineRequest(const std::string &Id, double Ms) {
  DaemonRequest R = namedRequest(Id);
  R.HasDeadline = true;
  R.DeadlineMs = Ms;
  R.Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(Ms));
  return R;
}

/// One compile request line over \p K, plus \p Extra raw JSON members.
std::string compileLine(const std::string &Id, const Kernel &K,
                        const std::string &Extra = std::string()) {
  std::string Error;
  std::optional<std::string> Text = printPinj(K, Error);
  EXPECT_TRUE(Text.has_value()) << Error;
  return "{\"id\":\"" + Id + "\",\"kernel\":\"" + json::escape(*Text) +
         "\"" + Extra + "}";
}

/// Parses a response line and returns the value of a member, or an
/// empty optional when absent.
std::optional<json::Value> member(const std::string &Line,
                                  const char *Key) {
  std::string Error;
  std::optional<json::Value> V = json::parse(Line, Error);
  if (!V || !V->isObject())
    return std::nullopt;
  const json::Value *M = V->find(Key);
  if (!M)
    return std::nullopt;
  return *M;
}

std::string statusOf(const std::string &Line) {
  std::optional<json::Value> S = member(Line, "status");
  return S && S->isString() ? S->Str : std::string();
}

/// Reads a whole file into a string.
std::string slurp(const fs::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

std::size_t filesIn(const fs::path &Dir) {
  std::size_t N = 0;
  if (fs::is_directory(Dir))
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.is_regular_file())
        ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// Admission queue
//===----------------------------------------------------------------------===//

TEST(AdmissionQueueTest, EdfOrderingWithFifoTieBreak) {
  AdmissionConfig C;
  C.QueueCapacity = 16;
  AdmissionQueue Q(C);
  ShedDecision Shed;

  // Submit out of deadline order; deadline-less requests arrive first
  // but must sort after every deadlined one, FIFO among themselves.
  ASSERT_TRUE(Q.admit(namedRequest("nodeadline_a"), Shed));
  ASSERT_TRUE(Q.admit(namedRequest("nodeadline_b"), Shed));
  ASSERT_TRUE(Q.admit(deadlineRequest("far", 30000), Shed));
  ASSERT_TRUE(Q.admit(deadlineRequest("near", 10000), Shed));
  ASSERT_TRUE(Q.admit(deadlineRequest("mid", 20000), Shed));
  EXPECT_EQ(5u, Q.depth());

  DaemonRequest Out;
  const char *Expect[] = {"near", "mid", "far", "nodeadline_a",
                          "nodeadline_b"};
  for (const char *Id : Expect) {
    ASSERT_TRUE(Q.tryPop(Out));
    EXPECT_EQ(Id, Out.ClientId);
  }
  EXPECT_FALSE(Q.tryPop(Out));
  EXPECT_EQ(0u, Q.depth());
}

TEST(AdmissionQueueTest, ExpiredArrivalShedsImmediately) {
  AdmissionQueue Q(AdmissionConfig{});
  DaemonRequest R = namedRequest("late");
  R.HasDeadline = true;
  R.Deadline = Clock::now() - std::chrono::milliseconds(5);

  ShedDecision Shed;
  EXPECT_FALSE(Q.admit(std::move(R), Shed));
  EXPECT_EQ(ShedReason::DeadlineExpired, Shed.Reason);
  EXPECT_GT(Shed.RetryAfterMs, 0.0);
  EXPECT_EQ(0u, Q.depth()); // Never entered the queue.
}

TEST(AdmissionQueueTest, QueueFullBackoffScalesWithDepth) {
  AdmissionConfig C;
  C.QueueCapacity = 2;
  C.RetryHintMs = 10.0;
  AdmissionQueue Q(C);
  ShedDecision Shed;

  EXPECT_DOUBLE_EQ(10.0, Q.retryAfterMs(0));
  EXPECT_DOUBLE_EQ(30.0, Q.retryAfterMs(2));
  EXPECT_GT(Q.retryAfterMs(5), Q.retryAfterMs(1));

  ASSERT_TRUE(Q.admit(namedRequest("a"), Shed));
  ASSERT_TRUE(Q.admit(namedRequest("b"), Shed));
  EXPECT_FALSE(Q.admit(namedRequest("c"), Shed));
  EXPECT_EQ(ShedReason::QueueFull, Shed.Reason);
  // Shed at depth 2: the hint tells the client to wait for the whole
  // backlog plus itself.
  EXPECT_DOUBLE_EQ(30.0, Shed.RetryAfterMs);
  EXPECT_EQ(2u, Q.depth()); // The arrival was refused, not queued.
}

TEST(AdmissionQueueTest, CloseDrainsBacklogAndShedsNewArrivals) {
  AdmissionQueue Q(AdmissionConfig{});
  ShedDecision Shed;
  ASSERT_TRUE(Q.admit(namedRequest("a"), Shed));
  ASSERT_TRUE(Q.admit(namedRequest("b"), Shed));
  ASSERT_TRUE(Q.admit(namedRequest("c"), Shed));

  std::vector<DaemonRequest> Orphans = Q.close();
  EXPECT_EQ(3u, Orphans.size());
  EXPECT_TRUE(Q.closed());
  EXPECT_EQ(0u, Q.depth());

  // After close: new arrivals shed with draining, pop signals shutdown.
  EXPECT_FALSE(Q.admit(namedRequest("d"), Shed));
  EXPECT_EQ(ShedReason::Draining, Shed.Reason);
  EXPECT_GT(Shed.RetryAfterMs, 0.0);
  DaemonRequest Out;
  EXPECT_FALSE(Q.pop(Out));
}

//===----------------------------------------------------------------------===//
// Deadline-derived budgets
//===----------------------------------------------------------------------===//

TEST(BudgetDerivationTest, NeverExceedsRemainingDeadline) {
  SolverBudget Unlimited; // WallMs = 0 means no wall limit.
  for (double RemainingMs : {0.0, -3.0, 0.25, 1.0, 10.0, 1000.0}) {
    SolverBudget B = budgetForRemaining(RemainingMs, Unlimited);
    // A request with a deadline must always end up wall-limited —
    // WallMs <= 0 would mean "unlimited", inverting an expired
    // deadline into infinite solver time.
    EXPECT_GT(B.WallMs, 0.0) << RemainingMs;
    EXPECT_LE(B.WallMs, std::max(RemainingMs, 1e-3)) << RemainingMs;
  }
}

TEST(BudgetDerivationTest, TighterOfBaseAndRemainingWins) {
  SolverBudget Base;
  Base.WallMs = 5;
  Base.MaxPivots = 77;
  Base.MaxIlpNodes = 88;

  // Generous deadline: the base wall cap holds.
  SolverBudget Generous = budgetForRemaining(1000, Base);
  EXPECT_DOUBLE_EQ(5.0, Generous.WallMs);
  // Tight deadline: the remaining time wins.
  EXPECT_DOUBLE_EQ(2.0, budgetForRemaining(2, Base).WallMs);
  // Already expired: clamped to an instantly-exhausted budget, never a
  // negative or unlimited one.
  SolverBudget Expired = budgetForRemaining(-50, Base);
  EXPECT_GT(Expired.WallMs, 0.0);
  EXPECT_LE(Expired.WallMs, 1e-3);

  // Pivot/node caps pass through untouched in every case.
  for (const SolverBudget &B : {Generous, Expired}) {
    EXPECT_EQ(77u, B.MaxPivots);
    EXPECT_EQ(88u, B.MaxIlpNodes);
  }
}

//===----------------------------------------------------------------------===//
// Daemon protocol (sync mode: deterministic, submission-ordered)
//===----------------------------------------------------------------------===//

TEST(DaemonProtocolTest, SyncSessionCoversEveryStatus) {
  DaemonConfig Cfg;
  Cfg.Sync = true;
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  D.start([&Lines](const std::string &L) { Lines.push_back(L); });

  Kernel K = makeElementwise(8, 8);
  D.submitLine("{\"id\":\"p1\",\"op\":\"ping\"}");
  D.submitLine(compileLine("k1", K));
  D.submitLine(compileLine("k2", K));
  D.submitLine(compileLine("k3", K, ",\"deadline_ms\":0"));
  D.submitLine("this is not json");
  D.submitLine("{\"id\":\"x1\",\"op\":\"frobnicate\"}");
  D.submitLine("{\"id\":\"m1\"}");
  D.submitLine("{\"id\":\"s1\",\"op\":\"stats\"}");
  D.submitLine("{\"id\":\"q1\",\"op\":\"shutdown\"}");

  ASSERT_EQ(9u, Lines.size());
  EXPECT_EQ("pong", statusOf(Lines[0]));
  EXPECT_EQ("ok", statusOf(Lines[1]));
  EXPECT_NE(std::string::npos, Lines[1].find("\"cache\":\"miss\""));
  EXPECT_EQ("ok", statusOf(Lines[2]));
  EXPECT_NE(std::string::npos, Lines[2].find("\"cache\":\"hit\""));

  // Already-expired deadline: shed before any solver time is spent,
  // with a positive backoff hint.
  EXPECT_EQ("shed", statusOf(Lines[3]));
  EXPECT_NE(std::string::npos, Lines[3].find("\"reason\":\"deadline_expired\""));
  std::optional<json::Value> Retry = member(Lines[3], "retry_after_ms");
  ASSERT_TRUE(Retry.has_value());
  EXPECT_GT(Retry->Num, 0.0);

  // Malformed line: still one terminal response, identified by its
  // line index since no id ever parsed.
  EXPECT_EQ("error", statusOf(Lines[4]));
  EXPECT_NE(std::string::npos, Lines[4].find("\"line\":5"));
  EXPECT_NE(std::string::npos, Lines[4].find("malformed"));
  EXPECT_EQ("error", statusOf(Lines[5]));
  EXPECT_NE(std::string::npos, Lines[5].find("unknown op"));
  EXPECT_EQ("error", statusOf(Lines[6]));
  EXPECT_NE(std::string::npos, Lines[6].find("missing kernel"));

  // The stats snapshot reflects the session so far.
  EXPECT_EQ("stats", statusOf(Lines[7]));
  EXPECT_NE(std::string::npos, Lines[7].find("\"admitted\":2"));
  EXPECT_NE(std::string::npos, Lines[7].find("\"completed\":2"));
  EXPECT_NE(std::string::npos, Lines[7].find("\"shed\":1"));
  EXPECT_NE(std::string::npos, Lines[7].find("\"cache_hits\":1"));

  EXPECT_EQ("bye", statusOf(Lines[8]));
  EXPECT_TRUE(D.shutdownRequested());

  D.drainAndStop();
  EXPECT_TRUE(D.cleanDrain());
  DaemonStats S = D.stats();
  EXPECT_EQ(9u, S.Submitted);
  EXPECT_EQ(9u, S.Responses);
  EXPECT_EQ(2u, S.Admitted);
  EXPECT_EQ(2u, S.Completed);
  EXPECT_EQ(1u, S.ShedExpired);
  EXPECT_EQ(3u, S.ParseErrors);
}

TEST(DaemonProtocolTest, EveryLineCarriesItsSubmitIndex) {
  DaemonConfig Cfg;
  Cfg.Sync = true;
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  D.start([&Lines](const std::string &L) { Lines.push_back(L); });

  D.submitLine("{\"op\":\"ping\"}");
  D.submitLine("garbage");
  D.submitLine(compileLine("k", makeTranspose(6, 6)));
  D.drainAndStop();

  ASSERT_EQ(3u, Lines.size());
  for (std::size_t I = 0; I != Lines.size(); ++I) {
    std::optional<json::Value> LineNo = member(Lines[I], "line");
    ASSERT_TRUE(LineNo.has_value()) << Lines[I];
    EXPECT_DOUBLE_EQ(static_cast<double>(I + 1), LineNo->Num) << Lines[I];
  }
}

//===----------------------------------------------------------------------===//
// Async mode: worker pool, drain semantics (the TSan probes)
//===----------------------------------------------------------------------===//

TEST(DaemonAsyncTest, EveryLineGetsExactlyOneResponse) {
  DaemonConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Admission.QueueCapacity = 64;
  std::mutex Mu;
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  D.start([&](const std::string &L) {
    std::lock_guard<std::mutex> Lock(Mu);
    Lines.push_back(L);
  });

  // A mix of compiles (some deadlined), pings and malformed lines,
  // submitted as fast as intake can take them.
  std::vector<Kernel> Corpus = {makeElementwise(8, 8), makeTranspose(8, 6),
                                makeProducerConsumer(6, 8),
                                makeBadOrderCopy(6, 8)};
  std::size_t Submitted = 0;
  for (unsigned I = 0; I != 24; ++I) {
    const Kernel &K = Corpus[I % Corpus.size()];
    switch (I % 6) {
    case 0:
      D.submitLine("{\"op\":\"ping\"}");
      break;
    case 1:
      D.submitLine("not json " + std::to_string(I));
      break;
    case 2:
      D.submitLine(compileLine("d" + std::to_string(I), K,
                               ",\"deadline_ms\":5000"));
      break;
    default:
      D.submitLine(compileLine("d" + std::to_string(I), K));
      break;
    }
    ++Submitted;
  }
  D.drainAndStop();

  DaemonStats S = D.stats();
  EXPECT_EQ(Submitted, S.Submitted);
  EXPECT_EQ(Submitted, S.Responses);
  ASSERT_EQ(Submitted, Lines.size());

  // Exactly one response per submit index, whatever the interleaving.
  std::map<std::uint64_t, unsigned> PerLine;
  for (const std::string &L : Lines) {
    std::optional<json::Value> LineNo = member(L, "line");
    ASSERT_TRUE(LineNo.has_value()) << L;
    ++PerLine[static_cast<std::uint64_t>(LineNo->Num)];
  }
  for (std::uint64_t N = 1; N <= Submitted; ++N)
    EXPECT_EQ(1u, PerLine[N]) << "line " << N;
  // Accounting balances: every line ended as exactly one of these.
  EXPECT_EQ(Submitted, S.Completed + S.shedTotal() + S.ParseErrors +
                           S.FaultResponses + /*pings*/ 4u);
}

TEST(DaemonAsyncTest, SharedCpuSimdTargetIsRaceFreeAcrossWorkers) {
  // One const cpu-simd TargetModel instance shared by the whole worker
  // pool: every compile scores candidates through it concurrently, so
  // the TSan configuration of this binary probes the immutability
  // contract of target::TargetModel.
  DaemonConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Admission.QueueCapacity = 64;
  Cfg.Pipeline.Target = target::makeBuiltinTarget("cpu-simd");
  ASSERT_TRUE(Cfg.Pipeline.Target);

  obs::MetricsSnapshot Before = obs::metrics().snapshot();
  std::mutex Mu;
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  D.start([&](const std::string &L) {
    std::lock_guard<std::mutex> Lock(Mu);
    Lines.push_back(L);
  });

  // Duplicate kernels on purpose: later submissions of the same kernel
  // race the cache tier against in-flight compiles of the same key.
  std::vector<Kernel> Corpus = {makeElementwise(8, 8), makeTranspose(8, 6),
                                makeProducerConsumer(6, 8),
                                makeBadOrderCopy(6, 8)};
  std::size_t Submitted = 0;
  for (unsigned I = 0; I != 16; ++I) {
    D.submitLine(compileLine("t" + std::to_string(I),
                             Corpus[I % Corpus.size()]));
    ++Submitted;
  }
  // Wait for every response before draining: drain sheds queued work,
  // and this test wants every compile to actually run through the
  // shared target.
  for (int Spin = 0; Spin != 2000 && D.stats().Responses < Submitted; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  D.drainAndStop();

  DaemonStats S = D.stats();
  EXPECT_EQ(Submitted, S.Submitted);
  EXPECT_EQ(Submitted, S.Responses);
  EXPECT_EQ(Submitted, S.Completed);
  ASSERT_EQ(Submitted, Lines.size());
  for (const std::string &L : Lines)
    EXPECT_EQ("ok", statusOf(L)) << L;

  // The cpu backend actually scored kernels from the worker threads.
  obs::MetricsSnapshot Delta = obs::metrics().snapshot().since(Before);
  EXPECT_GT(Delta.counter("target.cpu_kernels_simulated"), 0u);
}

TEST(DaemonAsyncTest, DrainShedsQueuedWorkWithTerminalResponses) {
  DaemonConfig Cfg;
  Cfg.Workers = 1; // One worker: the backlog cannot keep up with intake.
  Cfg.Admission.QueueCapacity = 64;
  std::mutex Mu;
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  D.start([&](const std::string &L) {
    std::lock_guard<std::mutex> Lock(Mu);
    Lines.push_back(L);
  });

  // Submitting 16 nontrivial compiles takes far less time than solving
  // one, so the immediate drain below always finds a queued backlog.
  for (unsigned I = 0; I != 16; ++I)
    D.submitLine(compileLine("q" + std::to_string(I),
                             makeRunningExample(10)));
  D.drainAndStop();
  EXPECT_TRUE(D.cleanDrain());

  DaemonStats S = D.stats();
  EXPECT_EQ(16u, S.Submitted);
  EXPECT_EQ(16u, S.Responses);
  ASSERT_EQ(16u, Lines.size());
  // Nothing admitted was silently dropped: every request either
  // completed or was shed with a terminal `draining` response.
  EXPECT_EQ(16u, S.Completed + S.ShedDraining);
  EXPECT_GE(S.ShedDraining, 1u);
  unsigned DrainingSheds = 0;
  for (const std::string &L : Lines)
    if (L.find("\"reason\":\"draining\"") != std::string::npos) {
      ++DrainingSheds;
      std::optional<json::Value> Retry = member(L, "retry_after_ms");
      ASSERT_TRUE(Retry.has_value()) << L;
      EXPECT_GT(Retry->Num, 0.0) << L;
    }
  EXPECT_EQ(S.ShedDraining, DrainingSheds);

  // Idempotent: a second drain changes nothing.
  D.drainAndStop();
  EXPECT_EQ(16u, D.stats().Responses);
}

//===----------------------------------------------------------------------===//
// Crash recovery: startup sweep and quarantine
//===----------------------------------------------------------------------===//

TEST(DaemonRecoveryTest, KillMidWriteIsQuarantinedAndWarmStateServes) {
  fs::path Dir = freshDir("daemon_recovery");
  Kernel K = makeRowReduction(6, 8);

  DaemonConfig Cfg;
  Cfg.Sync = true;
  Cfg.Cache.DiskDir = Dir.string();

  // Session 1 populates the disk tier.
  {
    std::vector<std::string> Lines;
    Daemon D(Cfg);
    D.start([&Lines](const std::string &L) { Lines.push_back(L); });
    D.submitLine(compileLine("w1", K));
    ASSERT_EQ(1u, Lines.size());
    ASSERT_EQ("ok", statusOf(Lines[0]));
    D.drainAndStop();
  }
  ASSERT_EQ(1u, filesIn(Dir));
  fs::path Valid;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    if (E.is_regular_file())
      Valid = E.path();
  std::string ValidBytes = slurp(Valid);
  ASSERT_FALSE(ValidBytes.empty());

  // Simulate the aftermath of a kill -9 mid-write: a torn temp file, a
  // committed-looking entry holding garbage, and a truncated entry
  // under another (valid-format) fingerprint name.
  {
    std::ofstream Torn(Dir / (Valid.stem().string() + ".psc.tmp.4242"),
                       std::ios::binary);
    Torn << ValidBytes.substr(0, ValidBytes.size() / 3);
  }
  {
    std::ofstream Garbage(Dir / "00112233445566778899aabbccddeeff.psc",
                          std::ios::binary);
    Garbage << std::string("\0\1\2 not a cache entry", 21);
  }
  {
    std::ofstream Truncated(Dir / "ffeeddccbbaa99887766554433221100.psc",
                            std::ios::binary);
    Truncated << ValidBytes.substr(0, ValidBytes.size() / 2);
  }

  // Session 2: the startup sweep quarantines all three damaged files
  // (never deletes), keeps the valid entry, and serves it warm.
  std::vector<std::string> Lines;
  Daemon D(Cfg);
  const RecoveryReport &Rec = D.recovery();
  EXPECT_EQ(4u, Rec.Cache.Scanned);
  EXPECT_EQ(1u, Rec.Cache.Kept);
  EXPECT_EQ(3u, Rec.Cache.Quarantined);
  EXPECT_EQ(3u, Rec.Cache.QuarantinedFiles.size());
  for (const std::string &Q : Rec.Cache.QuarantinedFiles)
    EXPECT_TRUE(fs::exists(Q)) << Q;
  EXPECT_EQ(3u, filesIn(Dir / "quarantine"));
  EXPECT_TRUE(fs::exists(Valid)); // The healthy entry stayed in place.
  EXPECT_EQ(1u, filesIn(Dir));

  D.start([&Lines](const std::string &L) { Lines.push_back(L); });
  D.submitLine(compileLine("warm", K));
  ASSERT_EQ(1u, Lines.size());
  EXPECT_EQ("ok", statusOf(Lines[0]));
  EXPECT_NE(std::string::npos, Lines[0].find("\"cache\":\"hit\""));
  EXPECT_EQ(1u, D.cache().stats().DiskHits);
  D.drainAndStop();
  fs::remove_all(Dir);
}

TEST(DaemonRecoveryTest, SweepOfMissingOrCleanDirIsEmpty) {
  SweepReport Missing = sweepCacheDir(
      (freshDir("daemon_sweep_missing") / "never_created").string());
  EXPECT_EQ(0u, Missing.Scanned);
  EXPECT_EQ(0u, Missing.Quarantined);
  SweepReport None = sweepCacheDir(std::string());
  EXPECT_EQ(0u, None.Scanned);
}

TEST(DaemonRecoveryTest, CorruptionIsPaidOnceNotPerMiss) {
  fs::path Dir = freshDir("daemon_pay_once");
  ScheduleCache::Config Cfg;
  Cfg.DiskDir = Dir.string();
  Kernel K = makeTranspose(8, 6);
  PipelineOptions Options;

  std::string Path;
  {
    ScheduleCache Writer(Cfg);
    Options.Cache = &Writer;
    runOperator(K, Options);
    Path = Writer.diskPathFor(fingerprintRequest(K, Options));
    ASSERT_TRUE(fs::exists(Path));
  }
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "corrupted by a crash";
  }

  ScheduleCache Reader(Cfg);
  Options.Cache = &Reader;
  CachedCompilation Out;
  // First miss pays: the reject moves the file into quarantine/.
  EXPECT_FALSE(Reader.lookup(K, Options, Out));
  EXPECT_EQ(1u, Reader.stats().DiskRejects);
  EXPECT_EQ(1u, Reader.stats().Quarantined);
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_EQ(1u, filesIn(Reader.quarantineDir()));
  // Subsequent misses are plain: no re-read, no re-reject.
  EXPECT_FALSE(Reader.lookup(K, Options, Out));
  EXPECT_EQ(1u, Reader.stats().DiskRejects);
  EXPECT_EQ(1u, Reader.stats().Quarantined);
  EXPECT_EQ(2u, Reader.stats().Misses);
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Striped in-memory tier
//===----------------------------------------------------------------------===//

TEST(StripedCacheTest, StripingPreservesHitsAndAggregatesStats) {
  ScheduleCache::Config Cfg;
  Cfg.Stripes = 8;
  ScheduleCache Cache(Cfg);
  PipelineOptions Options;
  Options.Cache = &Cache;

  std::vector<Kernel> Kernels = {
      makeRunningExample(6),    makeElementwise(8, 10),
      makeTranspose(8, 6),      makeProducerConsumer(6, 8),
      makeBadOrderCopy(6, 8),   makeRowReduction(6, 8)};
  for (const Kernel &K : Kernels)
    EXPECT_FALSE(runOperator(K, Options).CacheHit);
  for (const Kernel &K : Kernels)
    EXPECT_TRUE(runOperator(K, Options).CacheHit) << K.Name;

  CacheStats S = Cache.stats();
  EXPECT_EQ(Kernels.size(), S.Hits);
  EXPECT_EQ(Kernels.size(), S.Misses);
  EXPECT_EQ(Kernels.size(), S.Stores);
  EXPECT_EQ(Kernels.size(), Cache.size());
  EXPECT_GT(Cache.memoryBytes(), 0u);
}

TEST(StripedCacheTest, MemoryCapEvictsUntilUnderBudget) {
  // Phase 1: measure what three entries cost uncapped.
  std::vector<Kernel> Kernels = {makeElementwise(6, 8), makeTranspose(6, 8),
                                 makeProducerConsumer(6, 8)};
  std::size_t Total = 0;
  {
    ScheduleCache Unbounded;
    PipelineOptions Options;
    Options.Cache = &Unbounded;
    for (const Kernel &K : Kernels)
      runOperator(K, Options);
    Total = Unbounded.memoryBytes();
    ASSERT_GT(Total, 0u);
  }

  // Phase 2: half that budget must force evictions but never exceed
  // the cap, and the cache keeps serving.
  ScheduleCache::Config Cfg;
  Cfg.MemoryCapBytes = Total / 2;
  ScheduleCache Capped(Cfg);
  PipelineOptions Options;
  Options.Cache = &Capped;
  for (const Kernel &K : Kernels)
    runOperator(K, Options);
  EXPECT_LE(Capped.memoryBytes(), Cfg.MemoryCapBytes);
  EXPECT_GE(Capped.stats().Evictions, 1u);
  EXPECT_LT(Capped.size(), Kernels.size());
  EXPECT_EQ(3u, Capped.stats().Stores);
}

TEST(StripedCacheTest, OversizedEntryIsServedButNotKept) {
  ScheduleCache::Config Cfg;
  Cfg.MemoryCapBytes = 16; // Smaller than any real entry.
  ScheduleCache Cache(Cfg);
  PipelineOptions Options;
  Options.Cache = &Cache;

  OperatorReport R = runOperator(makeElementwise(6, 6), Options);
  EXPECT_FALSE(R.CacheHit);
  EXPECT_EQ(0u, Cache.size()); // Too large for its shard's slice.
  EXPECT_EQ(0u, Cache.memoryBytes());
  // The compile itself was unaffected; a rerun just misses again.
  EXPECT_FALSE(runOperator(makeElementwise(6, 6), Options).CacheHit);
}

//===----------------------------------------------------------------------===//
// Journal events
//===----------------------------------------------------------------------===//

TEST(DaemonJournalTest, AdmitShedAndDrainEventsCarryTheirFields) {
  obs::journal().disable();
  obs::journal().reset();
  obs::journal().enable();

  DaemonConfig Cfg;
  Cfg.Sync = true;
  {
    std::vector<std::string> Lines;
    Daemon D(Cfg);
    D.start([&Lines](const std::string &L) { Lines.push_back(L); });
    D.submitLine(compileLine("j1", makeElementwise(6, 6)));
    D.submitLine(compileLine("j2", makeElementwise(6, 6),
                             ",\"deadline_ms\":0"));
    D.drainAndStop();
  }
  std::vector<obs::JournalRecord> Snap = obs::journal().snapshot();
  obs::journal().disable();
  obs::journal().reset();

  auto fieldOf = [](const obs::JournalRecord &R,
                    const char *Key) -> std::string {
    for (const obs::JournalField &F : R.Fields)
      if (F.Key == Key)
        return F.Value;
    return std::string();
  };

  unsigned Admits = 0, Sheds = 0, Drains = 0;
  for (const obs::JournalRecord &R : Snap) {
    if (R.Type == "admit") {
      ++Admits;
      EXPECT_FALSE(R.RequestId.empty());
      EXPECT_EQ("j1", fieldOf(R, "client_id"));
      EXPECT_FALSE(fieldOf(R, "operator").empty());
    } else if (R.Type == "shed") {
      ++Sheds;
      EXPECT_FALSE(R.RequestId.empty());
      EXPECT_EQ("j2", fieldOf(R, "client_id"));
      EXPECT_EQ("deadline_expired", fieldOf(R, "reason"));
      EXPECT_GT(std::stod(fieldOf(R, "retry_after_ms")), 0.0);
    } else if (R.Type == "drain") {
      ++Drains;
      EXPECT_TRUE(R.RequestId.empty());
      EXPECT_EQ("true", fieldOf(R, "clean"));
      EXPECT_EQ("0", fieldOf(R, "queued_shed"));
    }
  }
  EXPECT_EQ(1u, Admits);
  EXPECT_EQ(1u, Sheds);
  EXPECT_EQ(1u, Drains);
}

//===----------------------------------------------------------------------===//
// Chaos: every fail-point site, multiple seeds
//===----------------------------------------------------------------------===//

class ChaosSiteSweep : public ::testing::TestWithParam<const char *> {
protected:
  void TearDown() override { failpoint::clearAll(); }
};

TEST_P(ChaosSiteSweep, InvariantHoldsWithSitePinnedActive) {
  DaemonConfig Cfg;
  Cfg.Workers = 2;
  Cfg.Admission.QueueCapacity = 8;
  for (std::uint64_t Seed : {1ull, 2ull, 3ull}) {
    ChaosReport R = runChaos(Cfg, Seed, 10, GetParam());
    EXPECT_TRUE(R.invariantHolds())
        << GetParam() << " seed " << Seed << ": " << R.Responses << "/"
        << R.Submitted << " responses, "
        << (R.Violations.empty() ? std::string("no violations")
                                 : R.Violations.front());
  }
}

INSTANTIATE_TEST_SUITE_P(AllSites, ChaosSiteSweep,
                         ::testing::ValuesIn(failpoint::allSites()));

TEST(ChaosTest, FreeRunningSeedsHoldInvariant) {
  DaemonConfig Cfg;
  Cfg.Workers = 4;
  Cfg.Admission.QueueCapacity = 8;
  for (std::uint64_t Seed : {11ull, 22ull, 33ull}) {
    ChaosReport R = runChaos(Cfg, Seed, 40);
    EXPECT_TRUE(R.invariantHolds())
        << "seed " << Seed << ": "
        << (R.Violations.empty() ? std::string("no violations")
                                 : R.Violations.front());
    EXPECT_EQ(40u, R.Submitted);
    EXPECT_EQ(40u, R.Responses);
  }
  // The registry is left clean for whatever test runs next.
  for (const char *Site : failpoint::allSites())
    EXPECT_FALSE(failpoint::isActive(Site)) << Site;
}

} // namespace
