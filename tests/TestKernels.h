//===- tests/TestKernels.h - Shared kernels for unit tests -----*- C++ -*-===//

#ifndef POLYINJECT_TESTS_TESTKERNELS_H
#define POLYINJECT_TESTS_TESTKERNELS_H

#include "ir/Builder.h"

namespace pinj {

/// The paper's running example (Fig. 2(a)), the simplified
/// fused_mul_sub_mul_tensoradd operator from BERT:
///   X: B[i][k] = f(A[i][k])
///   Y: C[i][j] = g(C[i][j], B[i][k], D[k][i][j])
inline Kernel makeRunningExample(Int N) {
  KernelBuilder B("fused_mul_sub_mul_tensoradd");
  unsigned A = B.tensor("A", {N, N});
  unsigned Bt = B.tensor("B", {N, N});
  unsigned C = B.tensor("C", {N, N});
  unsigned D = B.tensor("D", {N, N, N});
  B.stmt("X", {{"i", N}, {"k", N}})
      .write(Bt, {"i", "k"})
      .read(A, {"i", "k"})
      .op(OpKind::Relu);
  B.stmt("Y", {{"i", N}, {"j", N}, {"k", N}})
      .write(C, {"i", "j"})
      .read(C, {"i", "j"})
      .read(Bt, {"i", "k"})
      .read(D, {"k", "i", "j"})
      .op(OpKind::Fma);
  return B.build();
}

/// A single element-wise statement: OUT[i][j] = relu(IN[i][j]).
inline Kernel makeElementwise(Int Rows, Int Cols) {
  KernelBuilder B("elementwise");
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("S", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(In, {"i", "j"})
      .op(OpKind::Relu);
  return B.build();
}

/// A 2D transpose: OUT[i][j] = IN[j][i].
inline Kernel makeTranspose(Int Rows, Int Cols) {
  KernelBuilder B("transpose");
  unsigned In = B.tensor("IN", {Cols, Rows});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("T", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(In, {"j", "i"})
      .op(OpKind::Assign);
  return B.build();
}

/// Producer/consumer chain with identical shapes:
///   P: T1[i][j] = exp(IN[i][j]);  Q: OUT[i][j] = T1[i][j] * T1[i][j]
inline Kernel makeProducerConsumer(Int Rows, Int Cols) {
  KernelBuilder B("producer_consumer");
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned T1 = B.tensor("T1", {Rows, Cols});
  unsigned Out = B.tensor("OUT", {Rows, Cols});
  B.stmt("P", {{"i", Rows}, {"j", Cols}})
      .write(T1, {"i", "j"})
      .read(In, {"i", "j"})
      .op(OpKind::Exp);
  B.stmt("Q", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i", "j"})
      .read(T1, {"i", "j"})
      .read(T1, {"i", "j"})
      .op(OpKind::Mul);
  return B.build();
}

/// A copy whose original loop order is layout-hostile: it iterates
/// (w, h) while both tensors are [h][w] row-major, so the original
/// innermost loop (h) is strided for every access. Fused transpose
/// chains hand such orders to the scheduler; a plain polyhedral
/// scheduler keeps them (no layout cost model), while the influenced
/// scheduler reorders and vectorizes.
inline Kernel makeBadOrderCopy(Int H, Int W) {
  KernelBuilder B("bad_order_copy");
  unsigned In = B.tensor("IN", {H, W});
  unsigned Out = B.tensor("OUT", {H, W});
  B.stmt("S", {{"w", W}, {"h", H}})
      .write(Out, {"h", "w"})
      .read(In, {"h", "w"})
      .op(OpKind::Relu);
  return B.build();
}

/// A row-sum reduction: OUT[i] = sum_j IN[i][j] (Fma form).
inline Kernel makeRowReduction(Int Rows, Int Cols) {
  KernelBuilder B("row_reduction");
  unsigned In = B.tensor("IN", {Rows, Cols});
  unsigned One = B.tensor("ONE", {1});
  unsigned Out = B.tensor("OUT", {Rows});
  B.stmt("R", {{"i", Rows}, {"j", Cols}})
      .write(Out, {"i"})
      .read(Out, {"i"})
      .read(In, {"i", "j"})
      .read(One, {IndexExpr(Int(0))})
      .op(OpKind::Fma);
  return B.build();
}

} // namespace pinj

#endif // POLYINJECT_TESTS_TESTKERNELS_H
