//===- tests/lp_test.cpp - lp/ unit and property tests --------------------===//

#include "lp/Builder.h"
#include "lp/Ilp.h"
#include "lp/LexMin.h"
#include "lp/Simplex.h"

#include <gtest/gtest.h>

using namespace pinj;

//===----------------------------------------------------------------------===//
// Simplex
//===----------------------------------------------------------------------===//

TEST(Simplex, SimpleMinimization) {
  // min x0 + x1 s.t. x0 + x1 >= 3, x0 <= 2 (x >= 0).
  LpProblem Lp(2);
  Lp.addGe({1, 1}, -3);
  Lp.addUpperBound(0, 2);
  Lp.Objective = {1, 1};
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(3));
}

TEST(Simplex, DetectsInfeasible) {
  // x0 >= 3 and x0 <= 1.
  LpProblem Lp(1);
  Lp.addGe({1}, -3);
  Lp.addLe({1}, -1);
  Lp.Objective = {1};
  EXPECT_EQ(solveLp(Lp).Status, LpResult::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x0 with x0 unbounded above.
  LpProblem Lp(1);
  Lp.addGe({1}, 0);
  Lp.Objective = {-1};
  EXPECT_EQ(solveLp(Lp).Status, LpResult::Unbounded);
}

TEST(Simplex, EqualityConstraints) {
  // min x0 s.t. x0 + x1 == 5, x1 <= 3 -> x0 = 2.
  LpProblem Lp(2);
  Lp.addEq({1, 1}, -5);
  Lp.addUpperBound(1, 3);
  Lp.Objective = {1, 0};
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(2));
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(3));
}

TEST(Simplex, FractionalOptimum) {
  // min x0 s.t. 2*x0 >= 3 -> x0 = 3/2.
  LpProblem Lp(1);
  Lp.addGe({2}, -3);
  Lp.Objective = {1};
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(3, 2));
}

TEST(Simplex, RedundantConstraints) {
  LpProblem Lp(2);
  Lp.addGe({1, 0}, -1); // x0 >= 1
  Lp.addGe({1, 0}, -1); // duplicate
  Lp.addGe({2, 0}, -2); // scaled duplicate
  Lp.addEq({0, 1}, 0);  // x1 == 0
  Lp.Objective = {1, 1};
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(1));
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Many tied vertices; Bland's rule must not cycle.
  LpProblem Lp(3);
  Lp.addGe({1, 1, 0}, 0);
  Lp.addGe({0, 1, 1}, 0);
  Lp.addGe({1, 0, 1}, 0);
  Lp.addLe({1, 1, 1}, -1); // sum <= 1
  Lp.Objective = {-1, -1, -1};
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(-1));
}

TEST(Simplex, ObjectiveConstantIncluded) {
  LpProblem Lp(1);
  Lp.addGe({1}, -2);
  Lp.Objective = {1};
  Lp.ObjectiveConstant = 10;
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(12));
}

//===----------------------------------------------------------------------===//
// ILP
//===----------------------------------------------------------------------===//

TEST(Ilp, IntegerRoundingUp) {
  // min x s.t. 2x >= 3, x integer -> x = 2 (LP gives 3/2).
  IlpProblem P(1);
  P.Lp.addGe({2}, -3);
  P.Lp.Objective = {1};
  P.markInteger(0);
  IlpResult R = solveIlp(P);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(2));
  EXPECT_EQ(R.Point[0], Rational(2));
}

TEST(Ilp, MixedIntegerKeepsContinuousFractional) {
  // min x + y s.t. 2x >= 3 (x int), 2y >= 1 (y continuous).
  IlpProblem P(2);
  P.Lp.addGe({2, 0}, -3);
  P.Lp.addGe({0, 2}, -1);
  P.Lp.Objective = {1, 1};
  P.markInteger(0);
  IlpResult R = solveIlp(P);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(1, 2));
}

TEST(Ilp, InfeasibleIntegerGap) {
  // 1/3 <= x <= 2/3 has rational points but no integer ones.
  IlpProblem P(1);
  P.Lp.addGe({3}, -1);
  P.Lp.addLe({3}, -2);
  P.Lp.Objective = {1};
  P.markInteger(0);
  EXPECT_EQ(solveIlp(P).Status, IlpResult::Infeasible);
}

TEST(Ilp, KnapsackStyle) {
  // max 3a + 4b s.t. 2a + 3b <= 7, a,b integer in [0, 5].
  IlpProblem P(2);
  P.Lp.addLe({2, 3}, -7);
  P.Lp.addUpperBound(0, 5);
  P.Lp.addUpperBound(1, 5);
  P.Lp.Objective = {-3, -4};
  P.markInteger(0);
  P.markInteger(1);
  IlpResult R = solveIlp(P);
  ASSERT_TRUE(R.isOptimal());
  // Optimum: a=3 (wait: 2*3=6 <= 7, b=0 -> 9) vs a=2,b=1 -> 10.
  EXPECT_EQ(R.Value, Rational(-10));
}

/// Brute-force reference for small bounded ILPs.
static std::optional<Int> bruteForceMin(const IlpProblem &P, Int Bound) {
  // All variables integer in [0, Bound]; enumerate.
  unsigned N = P.numVars();
  std::vector<Int> X(N, 0);
  std::optional<Int> Best;
  for (;;) {
    bool Feasible = true;
    for (const LpConstraint &C : P.Lp.Constraints) {
      Int V = C.Constant;
      for (unsigned I = 0; I != N; ++I)
        V += C.Coeffs[I] * X[I];
      if ((C.Kind == LpConstraint::GE && V < 0) ||
          (C.Kind == LpConstraint::LE && V > 0) ||
          (C.Kind == LpConstraint::EQ && V != 0)) {
        Feasible = false;
        break;
      }
    }
    if (Feasible) {
      Int Obj = 0;
      for (unsigned I = 0; I != N; ++I)
        Obj += P.Lp.Objective[I] * X[I];
      if (!Best || Obj < *Best)
        Best = Obj;
    }
    unsigned D = 0;
    while (D < N && ++X[D] > Bound) {
      X[D] = 0;
      ++D;
    }
    if (D == N)
      break;
  }
  return Best;
}

class IlpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(IlpVsBruteForce, MatchesEnumeration) {
  unsigned Seed = static_cast<unsigned>(GetParam()) * 2654435761u + 17u;
  auto Next = [&Seed]() {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<Int>((Seed >> 16) % 7) - 3;
  };
  const Int Bound = 4;
  unsigned NumVars = 2 + Seed % 2;
  IlpProblem P(NumVars);
  for (unsigned V = 0; V != NumVars; ++V) {
    P.markInteger(V);
    P.Lp.addUpperBound(V, Bound);
  }
  unsigned NumConstraints = 2 + Seed % 3;
  for (unsigned C = 0; C != NumConstraints; ++C) {
    IntVector Coeffs(NumVars);
    for (unsigned V = 0; V != NumVars; ++V)
      Coeffs[V] = Next();
    Int Constant = Next() + 2;
    if (C % 2 == 0)
      P.Lp.addGe(Coeffs, Constant);
    else
      P.Lp.addLe(Coeffs, Constant);
  }
  P.Lp.Objective.assign(NumVars, 0);
  for (unsigned V = 0; V != NumVars; ++V)
    P.Lp.Objective[V] = Next();

  std::optional<Int> Expected = bruteForceMin(P, Bound);
  IlpResult R = solveIlp(P);
  if (!Expected) {
    EXPECT_EQ(R.Status, IlpResult::Infeasible);
    return;
  }
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Value, Rational(*Expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsBruteForce, ::testing::Range(1, 40));

//===----------------------------------------------------------------------===//
// LexMin
//===----------------------------------------------------------------------===//

TEST(LexMin, TwoLevels) {
  // Feasible set: x + y >= 4, x,y in [0, 10] integer.
  // Lex-minimize (x, y): x = 0 first, then y = 4.
  IlpProblem P(2);
  P.Lp.addGe({1, 1}, -4);
  P.Lp.addUpperBound(0, 10);
  P.Lp.addUpperBound(1, 10);
  P.markInteger(0);
  P.markInteger(1);
  std::vector<LexObjective> Obj;
  Obj.emplace_back(IntVector{1, 0});
  Obj.emplace_back(IntVector{0, 1});
  IlpResult R = solveLexMin(P, Obj);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[0], Rational(0));
  EXPECT_EQ(R.Point[1], Rational(4));
}

TEST(LexMin, OrderMatters) {
  IlpProblem P(2);
  P.Lp.addGe({1, 1}, -4);
  P.Lp.addUpperBound(0, 10);
  P.Lp.addUpperBound(1, 10);
  P.markInteger(0);
  P.markInteger(1);
  std::vector<LexObjective> Obj;
  Obj.emplace_back(IntVector{0, 1}); // y first
  Obj.emplace_back(IntVector{1, 0});
  IlpResult R = solveLexMin(P, Obj);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[0], Rational(4));
  EXPECT_EQ(R.Point[1], Rational(0));
}

TEST(LexMin, EmptyObjectivesIsFeasibility) {
  IlpProblem P(1);
  P.Lp.addGe({1}, -2);
  P.markInteger(0);
  IlpResult R = solveLexMin(P, {});
  EXPECT_TRUE(R.isOptimal());
}

TEST(LexMin, PropagatesInfeasibility) {
  IlpProblem P(1);
  P.Lp.addGe({1}, -2);
  P.Lp.addLe({1}, -1);
  std::vector<LexObjective> Obj;
  Obj.emplace_back(IntVector{1});
  EXPECT_EQ(solveLexMin(P, Obj).Status, IlpResult::Infeasible);
}

//===----------------------------------------------------------------------===//
// IlpBuilder
//===----------------------------------------------------------------------===//

TEST(IlpBuilder, SparseFormDensify) {
  SparseForm F;
  F.addTerm(0, 2);
  F.addTerm(2, -1);
  F.addTerm(0, 3); // accumulates
  F.addConstant(7);
  IntVector Dense = F.densify(3);
  EXPECT_EQ(Dense, (IntVector{5, 0, -1}));
  EXPECT_EQ(F.Constant, 7);
}

TEST(IlpBuilder, AddScaled) {
  SparseForm A;
  A.addTerm(0, 1);
  A.addConstant(2);
  SparseForm B;
  B.addTerm(1, 3);
  B.addConstant(-1);
  A.addScaled(B, 2);
  IntVector Dense = A.densify(2);
  EXPECT_EQ(Dense, (IntVector{1, 6}));
  EXPECT_EQ(A.Constant, 0);
}

TEST(IlpBuilder, EndToEndSolve) {
  IlpBuilder B;
  unsigned X = B.addVar("x", true);
  unsigned Y = B.addVar("y", true);
  B.addUpperBound(X, 10);
  B.addUpperBound(Y, 10);
  SparseForm Sum; // x + y - 4 >= 0
  Sum.addTerm(X, 1);
  Sum.addTerm(Y, 1);
  Sum.addConstant(-4);
  B.addGe(Sum);
  SparseForm ObjX;
  ObjX.addTerm(X, 1);
  B.addObjective(ObjX);
  SparseForm ObjY;
  ObjY.addTerm(Y, 1);
  B.addObjective(ObjY);
  IlpResult R = B.solve();
  ASSERT_TRUE(R.isOptimal());
  EXPECT_EQ(R.Point[X], Rational(0));
  EXPECT_EQ(R.Point[Y], Rational(4));
}

TEST(IlpBuilder, TruncateRemovesConstraints) {
  IlpBuilder B;
  unsigned X = B.addVar("x", true);
  B.addUpperBound(X, 10);
  unsigned Mark = B.numConstraints();
  SparseForm Floor; // x >= 5
  Floor.addTerm(X, 1);
  Floor.addConstant(-5);
  B.addGe(Floor);
  SparseForm Obj;
  Obj.addTerm(X, 1);
  B.addObjective(Obj);
  IlpResult R1 = B.solve();
  ASSERT_TRUE(R1.isOptimal());
  EXPECT_EQ(R1.Point[X], Rational(5));
  B.truncate(Mark, 1);
  IlpResult R2 = B.solve();
  ASSERT_TRUE(R2.isOptimal());
  EXPECT_EQ(R2.Point[X], Rational(0));
}

//===----------------------------------------------------------------------===//
// Robustness
//===----------------------------------------------------------------------===//

TEST(Simplex, KleeMintyLikeStillTerminates) {
  // A small Klee-Minty-style problem with strongly skewed coefficients:
  // Dantzig pivoting may wander, the degenerate-streak switch to Bland
  // guarantees termination with the exact optimum.
  const unsigned N = 6;
  LpProblem Lp(N);
  for (unsigned I = 0; I != N; ++I) {
    IntVector Row(N, 0);
    Int Scale = 1;
    for (unsigned J = 0; J < I; ++J) {
      Row[J] = 2 * Scale;
      Scale *= 2;
    }
    Row[I] = 1;
    Int Bound = 1;
    for (unsigned J = 0; J != I; ++J)
      Bound *= 5;
    Lp.addLe(std::move(Row), -Bound);
  }
  Lp.Objective.assign(N, 0);
  Int W = 1;
  for (unsigned I = N; I-- > 0;) {
    Lp.Objective[I] = -W;
    W *= 2;
  }
  LpResult R = solveLp(Lp);
  ASSERT_TRUE(R.isOptimal());
  EXPECT_TRUE(R.Value.isNegative());
}

TEST(Rational, LargeMagnitudesStayExact) {
  Rational Big(Int(1) << 62, 3);
  Rational Small(1, Int(1) << 62);
  Rational Product = Big * Small;
  EXPECT_EQ(Product, Rational(1, 3));
  // Comparison of near-equal huge fractions must be exact, where a
  // double would round them together.
  Rational A((Int(1) << 61) + 1, Int(1) << 61);
  Rational B(1);
  EXPECT_GT(A, B);
  EXPECT_LT(B, A);
}

TEST(Rational, EuclideanComparisonNoOverflow)
{
  // Cross multiplication of these would overflow 128 bits; the
  // continued-fraction comparison must still be exact.
  Rational A(Int(1) << 62, (Int(1) << 62) - 1);
  Rational B((Int(1) << 62) + 1, Int(1) << 62);
  // A = 1 + 1/(2^62-1) > B = 1 + 1/2^62.
  EXPECT_GT(A, B);
  EXPECT_LT(B, A);
  EXPECT_NE(A, B);
}
