file(REMOVE_RECURSE
  "libpolyinject.a"
)
