# Empty dependencies file for polyinject.
# This may be replaced when dependencies are built.
