
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/TvmProxy.cpp" "src/CMakeFiles/polyinject.dir/baselines/TvmProxy.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/baselines/TvmProxy.cpp.o.d"
  "/root/repo/src/codegen/Ast.cpp" "src/CMakeFiles/polyinject.dir/codegen/Ast.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/codegen/Ast.cpp.o.d"
  "/root/repo/src/codegen/CudaPrinter.cpp" "src/CMakeFiles/polyinject.dir/codegen/CudaPrinter.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/codegen/CudaPrinter.cpp.o.d"
  "/root/repo/src/codegen/Mapping.cpp" "src/CMakeFiles/polyinject.dir/codegen/Mapping.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/codegen/Mapping.cpp.o.d"
  "/root/repo/src/codegen/Vectorizer.cpp" "src/CMakeFiles/polyinject.dir/codegen/Vectorizer.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/codegen/Vectorizer.cpp.o.d"
  "/root/repo/src/exec/Interpreter.cpp" "src/CMakeFiles/polyinject.dir/exec/Interpreter.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/exec/Interpreter.cpp.o.d"
  "/root/repo/src/gpusim/WarpSimulator.cpp" "src/CMakeFiles/polyinject.dir/gpusim/WarpSimulator.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/gpusim/WarpSimulator.cpp.o.d"
  "/root/repo/src/influence/AccessAnalysis.cpp" "src/CMakeFiles/polyinject.dir/influence/AccessAnalysis.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/influence/AccessAnalysis.cpp.o.d"
  "/root/repo/src/influence/ScenarioBuilder.cpp" "src/CMakeFiles/polyinject.dir/influence/ScenarioBuilder.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/influence/ScenarioBuilder.cpp.o.d"
  "/root/repo/src/influence/TreeBuilder.cpp" "src/CMakeFiles/polyinject.dir/influence/TreeBuilder.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/influence/TreeBuilder.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/polyinject.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Kernel.cpp" "src/CMakeFiles/polyinject.dir/ir/Kernel.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ir/Kernel.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/polyinject.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/polyinject.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/lp/Builder.cpp" "src/CMakeFiles/polyinject.dir/lp/Builder.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/lp/Builder.cpp.o.d"
  "/root/repo/src/lp/Ilp.cpp" "src/CMakeFiles/polyinject.dir/lp/Ilp.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/lp/Ilp.cpp.o.d"
  "/root/repo/src/lp/LexMin.cpp" "src/CMakeFiles/polyinject.dir/lp/LexMin.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/lp/LexMin.cpp.o.d"
  "/root/repo/src/lp/Simplex.cpp" "src/CMakeFiles/polyinject.dir/lp/Simplex.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/lp/Simplex.cpp.o.d"
  "/root/repo/src/math/LinearAlgebra.cpp" "src/CMakeFiles/polyinject.dir/math/LinearAlgebra.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/math/LinearAlgebra.cpp.o.d"
  "/root/repo/src/math/Matrix.cpp" "src/CMakeFiles/polyinject.dir/math/Matrix.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/math/Matrix.cpp.o.d"
  "/root/repo/src/math/Rational.cpp" "src/CMakeFiles/polyinject.dir/math/Rational.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/math/Rational.cpp.o.d"
  "/root/repo/src/ops/Networks.cpp" "src/CMakeFiles/polyinject.dir/ops/Networks.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ops/Networks.cpp.o.d"
  "/root/repo/src/ops/OpFactory.cpp" "src/CMakeFiles/polyinject.dir/ops/OpFactory.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/ops/OpFactory.cpp.o.d"
  "/root/repo/src/pipeline/Pipeline.cpp" "src/CMakeFiles/polyinject.dir/pipeline/Pipeline.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/pipeline/Pipeline.cpp.o.d"
  "/root/repo/src/poly/Dependence.cpp" "src/CMakeFiles/polyinject.dir/poly/Dependence.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/poly/Dependence.cpp.o.d"
  "/root/repo/src/poly/Farkas.cpp" "src/CMakeFiles/polyinject.dir/poly/Farkas.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/poly/Farkas.cpp.o.d"
  "/root/repo/src/poly/Set.cpp" "src/CMakeFiles/polyinject.dir/poly/Set.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/poly/Set.cpp.o.d"
  "/root/repo/src/sched/ConstraintBuilders.cpp" "src/CMakeFiles/polyinject.dir/sched/ConstraintBuilders.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/sched/ConstraintBuilders.cpp.o.d"
  "/root/repo/src/sched/InfluenceTree.cpp" "src/CMakeFiles/polyinject.dir/sched/InfluenceTree.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/sched/InfluenceTree.cpp.o.d"
  "/root/repo/src/sched/Schedule.cpp" "src/CMakeFiles/polyinject.dir/sched/Schedule.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/sched/Schedule.cpp.o.d"
  "/root/repo/src/sched/Scheduler.cpp" "src/CMakeFiles/polyinject.dir/sched/Scheduler.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/sched/Scheduler.cpp.o.d"
  "/root/repo/src/support/Support.cpp" "src/CMakeFiles/polyinject.dir/support/Support.cpp.o" "gcc" "src/CMakeFiles/polyinject.dir/support/Support.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
