
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/exec_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/exec_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/exec_test.cpp.o.d"
  "/root/repo/tests/extra_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/extra_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/extra_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/gpusim_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/gpusim_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/gpusim_test.cpp.o.d"
  "/root/repo/tests/influence_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/influence_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/influence_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/lp_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/lp_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/lp_test.cpp.o.d"
  "/root/repo/tests/math_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/math_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/math_test.cpp.o.d"
  "/root/repo/tests/ops_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/ops_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/ops_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/pipeline_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/poly_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/poly_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/poly_test.cpp.o.d"
  "/root/repo/tests/sched_test.cpp" "tests/CMakeFiles/polyinject_tests.dir/sched_test.cpp.o" "gcc" "tests/CMakeFiles/polyinject_tests.dir/sched_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/polyinject.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
