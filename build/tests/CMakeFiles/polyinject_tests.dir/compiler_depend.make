# Empty compiler generated dependencies file for polyinject_tests.
# This may be replaced when dependencies are built.
