file(REMOVE_RECURSE
  "CMakeFiles/polyinject_tests.dir/codegen_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/codegen_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/exec_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/exec_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/extra_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/extra_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/fuzz_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/fuzz_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/gpusim_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/gpusim_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/influence_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/influence_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/ir_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/ir_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/lp_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/lp_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/math_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/math_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/ops_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/ops_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/parser_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/parser_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/poly_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/poly_test.cpp.o.d"
  "CMakeFiles/polyinject_tests.dir/sched_test.cpp.o"
  "CMakeFiles/polyinject_tests.dir/sched_test.cpp.o.d"
  "polyinject_tests"
  "polyinject_tests.pdb"
  "polyinject_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyinject_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
