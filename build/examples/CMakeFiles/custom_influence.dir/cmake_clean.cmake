file(REMOVE_RECURSE
  "CMakeFiles/custom_influence.dir/custom_influence.cpp.o"
  "CMakeFiles/custom_influence.dir/custom_influence.cpp.o.d"
  "custom_influence"
  "custom_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
