# Empty compiler generated dependencies file for custom_influence.
# This may be replaced when dependencies are built.
