# Empty dependencies file for transpose_repair.
# This may be replaced when dependencies are built.
