file(REMOVE_RECURSE
  "CMakeFiles/transpose_repair.dir/transpose_repair.cpp.o"
  "CMakeFiles/transpose_repair.dir/transpose_repair.cpp.o.d"
  "transpose_repair"
  "transpose_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
