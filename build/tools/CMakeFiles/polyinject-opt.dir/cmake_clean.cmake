file(REMOVE_RECURSE
  "CMakeFiles/polyinject-opt.dir/polyinject-opt.cpp.o"
  "CMakeFiles/polyinject-opt.dir/polyinject-opt.cpp.o.d"
  "polyinject-opt"
  "polyinject-opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyinject-opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
