# Empty compiler generated dependencies file for polyinject-opt.
# This may be replaced when dependencies are built.
