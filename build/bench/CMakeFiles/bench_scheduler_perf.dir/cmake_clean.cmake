file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_perf.dir/bench_scheduler_perf.cpp.o"
  "CMakeFiles/bench_scheduler_perf.dir/bench_scheduler_perf.cpp.o.d"
  "bench_scheduler_perf"
  "bench_scheduler_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
