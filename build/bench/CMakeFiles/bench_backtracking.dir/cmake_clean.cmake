file(REMOVE_RECURSE
  "CMakeFiles/bench_backtracking.dir/bench_backtracking.cpp.o"
  "CMakeFiles/bench_backtracking.dir/bench_backtracking.cpp.o.d"
  "bench_backtracking"
  "bench_backtracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backtracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
