# Empty compiler generated dependencies file for bench_backtracking.
# This may be replaced when dependencies are built.
