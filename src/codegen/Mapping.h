//===- codegen/Mapping.h - GPU block/thread mapping -------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies schedule rows and assigns GPU roles to scheduling
/// dimensions: blocks, threads, per-thread sequential loops, the
/// vector-marked dimension (which the mapping pass skips, the paper's
/// first AKG modification), and scalar ordering dimensions. The result
/// drives both the CUDA-like printer and the GPU simulator.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_CODEGEN_MAPPING_H
#define POLYINJECT_CODEGEN_MAPPING_H

#include "sched/Schedule.h"

namespace pinj {

/// Shape of one schedule row for one statement.
struct RowShape {
  enum KindTy {
    Zero, ///< No iterator contribution: a padding/scalar row.
    Unit, ///< Exactly one iterator with coefficient 1 (plus a shift).
    Other ///< Anything else (not generatable by this backend).
  };
  KindTy Kind = Zero;
  unsigned Iter = 0; ///< Bound iterator for Unit rows.
  Int Shift = 0;     ///< Constant part of the row.
};

/// Classifies the row of statement \p Stmt at dimension \p Dim.
RowShape analyzeRow(const Kernel &K, const Schedule &S, unsigned Stmt,
                    unsigned Dim);

/// True if every row of every statement is Zero or Unit — the class of
/// schedules this backend can generate (always the case for the
/// schedulers in this project on the operator domain).
bool isGeneratableSchedule(const Kernel &K, const Schedule &S);

/// GPU mapping tunables.
struct GpuMappingOptions {
  Int MaxThreadsPerBlock = 1024;
};

/// The role a scheduling dimension plays on the GPU.
enum class DimRole {
  Block,  ///< Mapped to the grid.
  Thread, ///< Mapped to threads of a block.
  Seq,    ///< Sequential loop inside each thread.
  Vector, ///< Innermost loop rewritten with vector types (not mapped).
  Scalar  ///< Statement-ordering dimension (no loop).
};

const char *dimRoleName(DimRole Role);

/// Mapping decision for one scheduling dimension.
///
/// Vector dimensions are strip-mined: each thread covers VectorWidth
/// consecutive iterations with one vector load/store, and the lane
/// groups (Extent / VectorWidth of them) are thread-mapped exactly like
/// a Thread dimension (ThreadCount lanes, BlockFactor outer split).
/// This is what lets explicit vector types and memory coalescing
/// compose, the combination the paper exploits.
struct DimMapping {
  DimRole Role = DimRole::Seq;
  Int Extent = 1;       ///< Loop trip count (max over statements).
  unsigned VectorWidth = 0;
  Int ThreadCount = 1;  ///< Lanes covering this dim (Thread or Vector).
  Int BlockFactor = 1;  ///< Outer split factor when lanes < groups.
};

/// A schedule plus mapping decisions, ready for simulation/printing.
struct MappedKernel {
  const Kernel *K = nullptr;
  Schedule Sched;
  std::vector<DimMapping> Dims;
  /// IterDim[stmt][iter] = schedule dimension binding that iterator, or
  /// -1 when unbound (cannot happen for full-rank schedules).
  std::vector<std::vector<int>> IterDim;

  Int threadsPerBlock() const;
  Int numBlocks() const;
};

/// Assigns GPU roles: scalar dims keep their role, vector-marked dims
/// are skipped by the mapping (the paper's modification), parallel dims
/// are mapped innermost-first to threads within the budget and the rest
/// to blocks, and sequential dims stay inside threads.
MappedKernel mapToGpu(const Kernel &K, const Schedule &S,
                      const GpuMappingOptions &Options = GpuMappingOptions());

} // namespace pinj

#endif // POLYINJECT_CODEGEN_MAPPING_H
