//===- codegen/Ast.h - Loop AST construction --------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds a loop AST from a mapped schedule for printing and inspection.
/// The backend accepts the schedules this project's schedulers emit on
/// the operator domain: every row is a unit iterator row or a constant
/// row; scalar dimensions become statement sequences, mixed dimensions
/// place constant-row statements before or after the loop according to
/// the following dimensions' dates.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_CODEGEN_AST_H
#define POLYINJECT_CODEGEN_AST_H

#include "codegen/Mapping.h"

#include <memory>

namespace pinj {

/// A node of the generated loop AST.
struct AstNode {
  enum KindTy { Loop, Stmt, Seq };

  KindTy Kind = Seq;
  // Loop fields.
  unsigned Dim = 0;
  Int Extent = 1;
  DimRole Role = DimRole::Seq;
  unsigned VectorWidth = 0;
  // Stmt fields.
  unsigned StmtId = 0;

  std::vector<std::unique_ptr<AstNode>> Children;
};

/// Builds the loop AST of \p M. Aborts on non-generatable schedules
/// (callers check isGeneratableSchedule first).
std::unique_ptr<AstNode> buildAst(const MappedKernel &M);

/// Renders the AST as an indented pseudo-code loop nest with role
/// markers (forall/for/forvec), in the style of the paper's Fig. 2.
std::string printAst(const MappedKernel &M);

/// Renders the mapped kernel as CUDA-like source: grid/block binding,
/// per-thread loops, and explicit float2/float4 accesses on vectorized
/// statements.
std::string printCuda(const MappedKernel &M);

} // namespace pinj

#endif // POLYINJECT_CODEGEN_AST_H
