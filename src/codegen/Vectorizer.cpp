//===- codegen/Vectorizer.cpp ---------------------------------------------===//

#include "codegen/Vectorizer.h"

#include "support/FailPoint.h"

#include "codegen/Mapping.h"
#include "poly/Dependence.h"

using namespace pinj;

namespace {

/// True if dimension \p Dim is statement \p Stmt's innermost loop: the
/// row at Dim is unit and every later row is zero for this statement.
bool isInnermostLoopOf(const Kernel &K, const Schedule &S, unsigned Stmt,
                       unsigned Dim) {
  if (analyzeRow(K, S, Stmt, Dim).Kind != RowShape::Unit)
    return false;
  for (unsigned Later = Dim + 1, E = S.numDims(); Later != E; ++Later)
    if (analyzeRow(K, S, Stmt, Later).Kind != RowShape::Zero)
      return false;
  return true;
}

/// True if \p Dim carries no uncarried dependence between statements of
/// \p InLoop: the lanes (and the VL consecutive iterations each lane
/// covers) are independent, so loads and stores may be issued as vector
/// operations across concurrently mapped lane groups.
bool isVectorSafe(const Kernel &K, const Schedule &S,
                  const std::vector<DependenceRelation> &Deps,
                  const std::vector<unsigned> &InLoop, unsigned Dim) {
  auto InSet = [&InLoop](unsigned Stmt) {
    for (unsigned S : InLoop)
      if (S == Stmt)
        return true;
    return false;
  };
  for (const DependenceRelation &D : Deps) {
    if (!D.constrainsValidity() || !InSet(D.SrcStmt) || !InSet(D.DstStmt))
      continue;
    bool CarriedEarlier = false;
    for (unsigned Earlier = 0; Earlier != Dim && !CarriedEarlier; ++Earlier)
      CarriedEarlier = S.stronglySatisfiedAt(K, D, Earlier);
    if (CarriedEarlier)
      continue;
    if (!D.Rel.isAlwaysZero(S.differenceExpr(K, D, Dim)))
      return false;
  }
  return true;
}

/// The widest width in {Preferred, 2} at which every statement in
/// \p InLoop can step \p Dim by whole vectors; 0 when none works.
unsigned resolveWidth(const Kernel &K, const Schedule &S,
                      const std::vector<DependenceRelation> &Deps,
                      const std::vector<unsigned> &InLoop, unsigned Dim,
                      unsigned Preferred) {
  if (!isVectorSafe(K, S, Deps, InLoop, Dim))
    return 0;
  for (unsigned Width : {Preferred, 2u}) {
    if (Width < 2)
      break;
    bool Ok = true;
    for (unsigned Stmt : InLoop) {
      RowShape Shape = analyzeRow(K, S, Stmt, Dim);
      if (K.Stmts[Stmt].Extents[Shape.Iter] % Width != 0 ||
          Shape.Shift % Width != 0) {
        Ok = false;
        break;
      }
    }
    if (Ok)
      return Width;
  }
  return 0;
}

} // namespace

unsigned pinj::finalizeVectorMarks(const Kernel &K, Schedule &S,
                                   bool DisableVectorization) {
  failpoint::hit("codegen.vectorize");
  unsigned Surviving = 0;
  std::vector<DependenceRelation> Deps = computeDependences(K);
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    DimInfo &Info = S.Dims[D];
    if (Info.VectorStmts.empty() && Info.VectorWidth == 0)
      continue;
    Info.VectorStmts.clear();
    if (DisableVectorization) {
      Info.VectorWidth = 0;
      continue;
    }
    // Every statement looping at this dimension sits inside the vector
    // loop and must step by whole vectors; the dimension must also be
    // each one's innermost loop.
    std::vector<unsigned> InLoop;
    bool AllInnermost = true;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      RowShape Shape = analyzeRow(K, S, Stmt, D);
      if (Shape.Kind != RowShape::Unit)
        continue;
      InLoop.push_back(Stmt);
      AllInnermost &= isInnermostLoopOf(K, S, Stmt, D);
    }
    unsigned Width = 0;
    if (!InLoop.empty() && AllInnermost)
      Width = resolveWidth(K, S, Deps, InLoop, D,
                           Info.VectorWidth ? Info.VectorWidth : 4);
    if (Width == 0) {
      Info.VectorWidth = 0;
      continue;
    }
    Info.VectorWidth = Width;
    Info.VectorStmts = InLoop;
    ++Surviving;
  }
  return Surviving;
}
