//===- codegen/CudaPrinter.cpp --------------------------------------------===//

#include "codegen/Ast.h"
#include "influence/AccessAnalysis.h"
#include "ir/Printer.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace pinj;

namespace {

std::string dimVarNameCuda(const MappedKernel &M, unsigned D) {
  const Kernel &K = *M.K;
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    for (unsigned I = 0, NI = K.Stmts[Stmt].numIters(); I != NI; ++I)
      if (M.IterDim[Stmt][I] == static_cast<int>(D))
        return K.Stmts[Stmt].IterNames[I];
  return "t" + std::to_string(D);
}

/// Renders one statement inside an optional vector loop: accesses that
/// are contiguous in the vectorized iterator become float2/float4
/// loads/stores, constant ones become broadcasts, everything else stays
/// scalar (vector and scalar types mix, as in the paper).
std::string renderCudaStmt(const MappedKernel &M, unsigned StmtId,
                           int VectorDim, unsigned Width) {
  const Kernel &K = *M.K;
  const Statement &S = K.Stmts[StmtId];
  std::vector<std::string> Names(S.numIters());
  int VectorIter = -1;
  for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
    int D = M.IterDim[StmtId][I];
    Names[I] = D < 0 ? S.IterNames[I] : dimVarNameCuda(M, D);
    if (D == VectorDim)
      VectorIter = static_cast<int>(I);
  }
  std::vector<AccessStrides> Strides = analyzeStrides(K, S);
  auto renderAccess = [&](const Access &A, unsigned StrideIdx) {
    std::string Plain = K.Tensors[A.TensorId].Name;
    for (const IntVector &Index : A.Indices)
      Plain += "[" + printAffineRow(Index, Names, K.ParamNames) + "]";
    if (VectorIter < 0 || Width == 0)
      return Plain;
    const AccessStrides &Info = Strides[StrideIdx];
    std::string VecTy = "float" + std::to_string(Width);
    if (Info.isContiguousIn(VectorIter) &&
        isVectorizableAccess(Info, VectorIter, Width))
      return "*(" + VecTy + " *)&" + Plain;
    if (Info.isConstantIn(VectorIter) && !A.IsWrite)
      return "(" + VecTy + ")(" + Plain + ")"; // broadcast
    return Plain; // scalar replay inside the vector loop
  };
  std::string Out = renderAccess(S.Write, 0) + " = " +
                    std::string(opKindName(S.Kind)) + "(";
  for (unsigned R = 0, E = S.Reads.size(); R != E; ++R) {
    if (R != 0)
      Out += ", ";
    Out += renderAccess(S.Reads[R], R + 1);
  }
  return Out + ");  // " + S.Name;
}

class CudaEmitter {
public:
  explicit CudaEmitter(const MappedKernel &M) : M(M), K(*M.K) {}

  std::string run() {
    emitSignature();
    emitBindings();
    std::unique_ptr<AstNode> Root = buildAst(M);
    if (Root)
      emitNode(*Root, 1, /*VectorDim=*/-1, /*Width=*/0);
    for (unsigned G = 0; G != Guards; ++G)
      Out += "  }\n";
    Out += "}\n";
    return Out;
  }

private:
  void emitSignature() {
    Out += "// fused operator '" + K.Name + "'\n";
    Out += "// grid = " + std::to_string(M.numBlocks()) +
           " block(s), block = " + std::to_string(M.threadsPerBlock()) +
           " thread(s)\n";
    Out += "__global__ void " + K.Name + "_kernel(";
    for (unsigned T = 0, E = K.Tensors.size(); T != E; ++T) {
      if (T != 0)
        Out += ", ";
      Out += "float *" + K.Tensors[T].Name;
    }
    Out += ") {\n";
  }

  void emitBindings() {
    // Thread dims: innermost schedule dim gets threadIdx.x.
    const char *Axes[3] = {"x", "y", "z"};
    unsigned ThreadAxis = 0, BlockAxis = 0;
    for (unsigned D = M.Dims.size(); D-- > 0;) {
      const DimMapping &Dim = M.Dims[D];
      bool IsVector = Dim.Role == DimRole::Vector;
      if ((Dim.Role != DimRole::Thread && !IsVector) || ThreadAxis >= 3)
        continue;
      std::string Var = dimVarNameCuda(M, D);
      std::string Scale =
          IsVector ? " * " + std::to_string(Dim.VectorWidth) : "";
      if (Dim.BlockFactor > 1) {
        Out += "  const int " + Var + " = (blockIdx." +
               Axes[std::min(BlockAxis, 2u)] + " * " +
               std::to_string(Dim.ThreadCount) + " + threadIdx." +
               Axes[ThreadAxis] + ")" + Scale + ";\n";
        Out += "  if (" + Var + " < " + std::to_string(Dim.Extent) +
               ") {\n";
        ++Guards;
        ++BlockAxis;
      } else {
        Out += "  const int " + Var + " = threadIdx." + Axes[ThreadAxis] +
               Scale + ";\n";
      }
      ++ThreadAxis;
    }
    for (unsigned D = M.Dims.size(); D-- > 0;) {
      const DimMapping &Dim = M.Dims[D];
      if (Dim.Role != DimRole::Block)
        continue;
      Out += "  const int " + dimVarNameCuda(M, D) + " = blockIdx." +
             Axes[std::min(BlockAxis, 2u)] + ";\n";
      ++BlockAxis;
    }
  }

  void emitNode(const AstNode &Node, unsigned Indent, int VectorDim,
                unsigned Width) {
    std::string Pad((Indent + Guards) * 2, ' ');
    switch (Node.Kind) {
    case AstNode::Seq:
      for (const auto &Child : Node.Children)
        emitNode(*Child, Indent, VectorDim, Width);
      return;
    case AstNode::Stmt:
      Out += Pad + renderCudaStmt(M, Node.StmtId, VectorDim, Width) + "\n";
      return;
    case AstNode::Loop: {
      if (Node.Role == DimRole::Block || Node.Role == DimRole::Thread) {
        // Bound above; just descend.
        for (const auto &Child : Node.Children)
          emitNode(*Child, Indent, VectorDim, Width);
        return;
      }
      if (Node.Role == DimRole::Vector) {
        // Strip-mined and thread-mapped above; each thread issues one
        // vector access group at its lane's base coordinate.
        for (const auto &Child : Node.Children)
          emitNode(*Child, Indent, static_cast<int>(Node.Dim),
                   Node.VectorWidth);
        return;
      }
      std::string Var = dimVarNameCuda(M, Node.Dim);
      {
        Out += Pad + "for (int " + Var + " = 0; " + Var + " < " +
               std::to_string(Node.Extent) + "; " + Var + "++) {\n";
        for (const auto &Child : Node.Children)
          emitNode(*Child, Indent + 1, VectorDim, Width);
      }
      Out += Pad + "}\n";
      return;
    }
    }
  }

  const MappedKernel &M;
  const Kernel &K;
  std::string Out;
  unsigned Guards = 0;
};

} // namespace

std::string pinj::printCuda(const MappedKernel &M) {
  obs::Span Sp("codegen.print_cuda");
  static obs::Counter &Printed =
      obs::metrics().counter("codegen.kernels_printed");
  Printed.inc();
  if (Sp.active())
    Sp.arg("kernel", M.K->Name);
  return CudaEmitter(M).run();
}
