//===- codegen/Ast.cpp ----------------------------------------------------===//

#include "codegen/Ast.h"

#include "ir/Printer.h"

#include <algorithm>
#include <map>

using namespace pinj;

namespace {

/// Recursive AST construction over schedule dimensions.
class AstBuilder {
public:
  explicit AstBuilder(const MappedKernel &M) : M(M), K(*M.K) {}

  std::unique_ptr<AstNode> build() {
    std::vector<unsigned> All(K.Stmts.size());
    for (unsigned S = 0; S != All.size(); ++S)
      All[S] = S;
    return buildDims(0, All);
  }

private:
  /// The minimum date value of \p Stmt at dimension \p D (the shift for
  /// constant rows, the shift at iterator zero for unit rows).
  Int minDateAt(unsigned Stmt, unsigned D) const {
    return analyzeRow(K, M.Sched, Stmt, D).Shift;
  }

  /// Orders a constant-row statement against the loop statements at a
  /// mixed dimension by comparing dates on subsequent dimensions.
  bool constGoesBeforeLoop(unsigned ConstStmt,
                           const std::vector<unsigned> &LoopStmts,
                           unsigned D) const {
    for (unsigned Later = D + 1, E = M.Sched.numDims(); Later != E;
         ++Later) {
      Int ConstDate = minDateAt(ConstStmt, Later);
      Int LoopDate = minDateAt(LoopStmts.front(), Later);
      for (unsigned S : LoopStmts)
        LoopDate = std::min(LoopDate, minDateAt(S, Later));
      if (ConstDate != LoopDate)
        return ConstDate < LoopDate;
    }
    return true;
  }

  std::unique_ptr<AstNode> makeStmtLeaves(const std::vector<unsigned> &S) {
    auto Node = std::make_unique<AstNode>();
    Node->Kind = AstNode::Seq;
    for (unsigned Stmt : S) {
      auto Leaf = std::make_unique<AstNode>();
      Leaf->Kind = AstNode::Stmt;
      Leaf->StmtId = Stmt;
      Node->Children.push_back(std::move(Leaf));
    }
    return Node;
  }

  std::unique_ptr<AstNode> buildDims(unsigned D,
                                     const std::vector<unsigned> &Stmts) {
    if (Stmts.empty())
      return nullptr;
    if (D == M.Sched.numDims())
      return makeStmtLeaves(Stmts);

    // Partition by row shape at this dimension.
    std::vector<unsigned> LoopStmts, ConstStmts;
    for (unsigned S : Stmts) {
      RowShape Shape = analyzeRow(K, M.Sched, S, D);
      assert(Shape.Kind != RowShape::Other && "non-generatable row");
      (Shape.Kind == RowShape::Unit ? LoopStmts : ConstStmts).push_back(S);
    }

    if (LoopStmts.empty()) {
      // Pure constant dimension: a statement sequence ordered by date.
      std::map<Int, std::vector<unsigned>> Groups;
      for (unsigned S : ConstStmts)
        Groups[minDateAt(S, D)].push_back(S);
      if (Groups.size() == 1)
        return buildDims(D + 1, ConstStmts);
      auto Node = std::make_unique<AstNode>();
      Node->Kind = AstNode::Seq;
      for (auto &[Date, Group] : Groups)
        if (auto Child = buildDims(D + 1, Group))
          Node->Children.push_back(std::move(Child));
      return Node;
    }

    // Loop over this dimension, with constant-row statements placed
    // before or after according to subsequent dates.
    std::vector<unsigned> Before, After;
    for (unsigned S : ConstStmts)
      (constGoesBeforeLoop(S, LoopStmts, D) ? Before : After).push_back(S);

    auto LoopNode = std::make_unique<AstNode>();
    LoopNode->Kind = AstNode::Loop;
    LoopNode->Dim = D;
    LoopNode->Extent = M.Dims[D].Extent;
    LoopNode->Role = M.Dims[D].Role;
    LoopNode->VectorWidth = M.Dims[D].VectorWidth;
    if (auto Body = buildDims(D + 1, LoopStmts))
      LoopNode->Children.push_back(std::move(Body));

    if (Before.empty() && After.empty())
      return LoopNode;
    auto Node = std::make_unique<AstNode>();
    Node->Kind = AstNode::Seq;
    if (auto Pre = buildDims(D + 1, Before))
      Node->Children.push_back(std::move(Pre));
    Node->Children.push_back(std::move(LoopNode));
    if (auto Post = buildDims(D + 1, After))
      Node->Children.push_back(std::move(Post));
    return Node;
  }

  const MappedKernel &M;
  const Kernel &K;
};

/// Loop variable name for a schedule dimension: the name of any bound
/// statement iterator, or a synthetic one.
std::string dimVarName(const MappedKernel &M, unsigned D) {
  const Kernel &K = *M.K;
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    for (unsigned I = 0, NI = K.Stmts[Stmt].numIters(); I != NI; ++I)
      if (M.IterDim[Stmt][I] == static_cast<int>(D))
        return K.Stmts[Stmt].IterNames[I];
  return "t" + std::to_string(D);
}

/// Renders one statement with its iterators renamed to loop variables.
std::string renderStmt(const MappedKernel &M, unsigned StmtId) {
  const Kernel &K = *M.K;
  const Statement &S = K.Stmts[StmtId];
  // Substitute iterator names by their schedule loop-variable names.
  std::vector<std::string> Names(S.numIters());
  for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
    int D = M.IterDim[StmtId][I];
    Names[I] = D < 0 ? S.IterNames[I] : dimVarName(M, D);
  }
  auto renderAccess = [&](const Access &A) {
    std::string Out = K.Tensors[A.TensorId].Name;
    for (const IntVector &Index : A.Indices)
      Out += "[" + printAffineRow(Index, Names, K.ParamNames) + "]";
    return Out;
  };
  std::string Out =
      S.Name + ": " + renderAccess(S.Write) + " = " + opKindName(S.Kind) +
      "(";
  for (unsigned R = 0, E = S.Reads.size(); R != E; ++R) {
    if (R != 0)
      Out += ", ";
    Out += renderAccess(S.Reads[R]);
  }
  return Out + ");";
}

void printNode(const MappedKernel &M, const AstNode &Node, unsigned Indent,
               std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  switch (Node.Kind) {
  case AstNode::Seq:
    for (const auto &Child : Node.Children)
      printNode(M, *Child, Indent, Out);
    return;
  case AstNode::Stmt:
    Out += Pad + renderStmt(M, Node.StmtId) + "\n";
    return;
  case AstNode::Loop: {
    std::string Var = dimVarName(M, Node.Dim);
    const char *Keyword = "for";
    switch (Node.Role) {
    case DimRole::Block:
    case DimRole::Thread:
      Keyword = "forall";
      break;
    case DimRole::Vector:
      Keyword = "forvec";
      break;
    default:
      break;
    }
    Out += Pad + std::string(Keyword) + " (" + Var + " = 0; " + Var +
           " < " + std::to_string(Node.Extent) + "; " + Var + "++)";
    if (Node.Role == DimRole::Block)
      Out += "  // -> blockIdx";
    else if (Node.Role == DimRole::Thread)
      Out += "  // -> threadIdx";
    else if (Node.Role == DimRole::Vector)
      Out += "  // -> float" + std::to_string(Node.VectorWidth);
    Out += "\n";
    for (const auto &Child : Node.Children)
      printNode(M, *Child, Indent + 1, Out);
    return;
  }
  }
}

} // namespace

std::unique_ptr<AstNode> pinj::buildAst(const MappedKernel &M) {
  return AstBuilder(M).build();
}

std::string pinj::printAst(const MappedKernel &M) {
  std::unique_ptr<AstNode> Root = buildAst(M);
  std::string Out;
  if (Root)
    printNode(M, *Root, 0, Out);
  return Out;
}
