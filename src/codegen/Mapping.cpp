//===- codegen/Mapping.cpp ------------------------------------------------===//

#include "codegen/Mapping.h"

#include "support/FailPoint.h"
#include "support/Status.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace pinj;

RowShape pinj::analyzeRow(const Kernel &K, const Schedule &S, unsigned Stmt,
                          unsigned Dim) {
  const Statement &St = K.Stmts[Stmt];
  const IntVector &Row = S.Transforms[Stmt].row(Dim);
  RowShape Shape;
  Shape.Shift = Row.back();
  unsigned NonZero = 0;
  for (unsigned I = 0, E = St.numIters(); I != E; ++I) {
    if (Row[I] == 0)
      continue;
    ++NonZero;
    Shape.Iter = I;
    if (Row[I] != 1)
      Shape.Kind = RowShape::Other;
  }
  // Parameter coefficients also disqualify unit/zero rows.
  for (unsigned P = 0, E = K.numParams(); P != E; ++P)
    if (Row[St.numIters() + P] != 0)
      Shape.Kind = RowShape::Other;
  if (Shape.Kind == RowShape::Other)
    return Shape;
  Shape.Kind = NonZero == 0   ? RowShape::Zero
               : NonZero == 1 ? RowShape::Unit
                              : RowShape::Other;
  return Shape;
}

bool pinj::isGeneratableSchedule(const Kernel &K, const Schedule &S) {
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    for (unsigned D = 0, ND = S.numDims(); D != ND; ++D)
      if (analyzeRow(K, S, Stmt, D).Kind == RowShape::Other)
        return false;
  return true;
}

const char *pinj::dimRoleName(DimRole Role) {
  switch (Role) {
  case DimRole::Block:
    return "block";
  case DimRole::Thread:
    return "thread";
  case DimRole::Seq:
    return "seq";
  case DimRole::Vector:
    return "vector";
  case DimRole::Scalar:
    return "scalar";
  }
  fatalError("unknown dim role");
}

Int MappedKernel::threadsPerBlock() const {
  Int Threads = 1;
  for (const DimMapping &D : Dims)
    if (D.Role == DimRole::Thread || D.Role == DimRole::Vector)
      Threads = checkedMul(Threads, D.ThreadCount);
  return Threads;
}

Int MappedKernel::numBlocks() const {
  Int Blocks = 1;
  for (const DimMapping &D : Dims) {
    if (D.Role == DimRole::Block)
      Blocks = checkedMul(Blocks, D.Extent);
    else if (D.Role == DimRole::Thread || D.Role == DimRole::Vector)
      Blocks = checkedMul(Blocks, D.BlockFactor);
  }
  return Blocks;
}

MappedKernel pinj::mapToGpu(const Kernel &K, const Schedule &S,
                            const GpuMappingOptions &Options) {
  obs::Span Sp("codegen.map_to_gpu");
  static obs::Counter &Mapped =
      obs::metrics().counter("codegen.kernels_mapped");
  Mapped.inc();
  failpoint::hit("codegen.map");
  if (Sp.active())
    Sp.arg("kernel", K.Name).arg("dims", S.numDims());
  MappedKernel M;
  M.K = &K;
  M.Sched = S;
  M.Dims.assign(S.numDims(), DimMapping());
  M.IterDim.assign(K.Stmts.size(), {});
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt)
    M.IterDim[Stmt].assign(K.Stmts[Stmt].numIters(), -1);

  // Extents and iterator bindings.
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    Int Extent = 1;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      RowShape Shape = analyzeRow(K, S, Stmt, D);
      // Reachable when a caller skips the backendAccepts check, so this
      // must hold in release builds too.
      if (Shape.Kind == RowShape::Other)
        raiseError(StatusCode::Internal, "codegen.map",
                   "schedule row not generatable by this backend");
      if (Shape.Kind == RowShape::Unit) {
        M.IterDim[Stmt][Shape.Iter] = static_cast<int>(D);
        Extent = std::max(Extent, K.Stmts[Stmt].Extents[Shape.Iter]);
      }
    }
    M.Dims[D].Extent = Extent;
  }

  // Roles: scalar and vector first.
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    if (S.Dims[D].IsScalar) {
      M.Dims[D].Role = DimRole::Scalar;
      M.Dims[D].Extent = 1;
    } else if (!S.Dims[D].VectorStmts.empty()) {
      // The mapping pass skips vector-marked dimensions (paper, Sec. V).
      M.Dims[D].Role = DimRole::Vector;
      M.Dims[D].VectorWidth = S.Dims[D].VectorWidth;
    }
  }

  // Threads: innermost dims first, within the budget. Vector dims are
  // strip-mined lane groups (extent / width) and take the fastest lane
  // positions; then remaining thread-parallel dims. Dimensions that are
  // only parallel up to intra-block synchronization must keep all their
  // iterations in one block: no block splitting (the leftover loops
  // inside each thread instead).
  Int Budget = Options.MaxThreadsPerBlock;
  for (unsigned D = S.numDims(); D-- > 0;) {
    DimMapping &Dim = M.Dims[D];
    bool IsVector = Dim.Role == DimRole::Vector;
    bool FullyParallel = S.Dims[D].IsParallel;
    bool SyncParallel = S.Dims[D].ThreadParallel || FullyParallel;
    if (!IsVector && (Dim.Role != DimRole::Seq || !SyncParallel))
      continue; // Only vector dims and (sync-)parallel dims.
    if (Budget <= 1) {
      if (IsVector) {
        // No lanes left: the vector loop runs sequentially per thread.
        Dim.ThreadCount = 1;
        Dim.BlockFactor = 1;
      }
      continue;
    }
    Int Groups =
        IsVector ? ceilDiv(Dim.Extent, Dim.VectorWidth) : Dim.Extent;
    if (Groups <= Budget) {
      if (!IsVector)
        Dim.Role = DimRole::Thread;
      Dim.ThreadCount = Groups;
      Dim.BlockFactor = 1;
      Budget /= std::max<Int>(1, Groups);
      continue;
    }
    // Split: a power-of-two slice becomes threads; the rest becomes
    // blocks when fully parallel, or per-thread leftover loops when the
    // dimension needs intra-block sync.
    Int Slice = 1;
    while (Slice * 2 <= Budget)
      Slice *= 2;
    if (!IsVector)
      Dim.Role = DimRole::Thread;
    Dim.ThreadCount = Slice;
    Dim.BlockFactor = FullyParallel ? ceilDiv(Groups, Slice) : 1;
    Budget = 1;
  }

  // Remaining parallel dims become blocks; non-parallel stay sequential.
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    DimMapping &Dim = M.Dims[D];
    if (Dim.Role == DimRole::Seq && S.Dims[D].IsParallel)
      Dim.Role = DimRole::Block;
  }
  return M;
}
