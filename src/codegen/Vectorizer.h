//===- codegen/Vectorizer.h - Vector mark finalization ----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend vectorization decision (the paper's second AKG
/// modification): after scheduling, each vector-marked dimension is
/// checked against the final schedule — the dimension must be the
/// statement's innermost loop, bound by a unit row, loop-parallel with
/// respect to the statement's own dependences, with an extent divisible
/// by the lane count and vectorizable accesses. Statements are added or
/// removed from the mark accordingly, the width is narrowed when needed
/// (4 -> 2), and the mark is cleared when nothing survives. The
/// simulator and printer then treat the surviving statements' loads and
/// stores as float2/float4 operations.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_CODEGEN_VECTORIZER_H
#define POLYINJECT_CODEGEN_VECTORIZER_H

#include "sched/Schedule.h"

namespace pinj {

/// Rechecks and finalizes the vector marks of \p S against the scheduled
/// kernel \p K. \returns the number of dimensions left vector-marked.
/// With \p DisableVectorization the marks are simply cleared (the
/// paper's "novec" configuration).
unsigned finalizeVectorMarks(const Kernel &K, Schedule &S,
                             bool DisableVectorization = false);

} // namespace pinj

#endif // POLYINJECT_CODEGEN_VECTORIZER_H
