//===- service/Admission.h - Deadline-ordered admission control -*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Admission control for the compilation daemon: a bounded,
/// earliest-deadline-first request queue with explicit overload
/// shedding.
///
/// Policy, in order:
///   1. A request whose deadline has already passed is shed immediately
///      (`deadline_expired`) — compiling it would waste budget that a
///      live request could use.
///   2. A full queue sheds the new arrival (`queue_full`) rather than
///      growing without bound or silently degrading everyone; the shed
///      response carries a `retry_after_ms` hint proportional to the
///      queue depth, so clients back off harder the deeper the backlog.
///   3. Otherwise the request is inserted in earliest-deadline-first
///      order (deadline-less requests sort last, FIFO among
///      themselves), so under pressure the work most likely to still
///      matter runs first.
///
/// Budgets: `budgetForRemaining` converts a request's remaining
/// deadline into a per-request SolverBudget — the wall-clock limit is
/// never allowed to exceed the time the client will actually wait, so
/// the solver cannot burn milliseconds nobody can use. Pivot/node caps
/// come from the daemon's base budget unchanged.
///
/// The queue is the boundary between the intake thread and the worker
/// pool; all methods are thread-safe. `close()` flips it into draining
/// mode: pops drain the backlog the caller chose to keep, new arrivals
/// shed with `draining`.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_ADMISSION_H
#define POLYINJECT_SERVICE_ADMISSION_H

#include "ir/Kernel.h"
#include "lp/Budget.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pinj {
namespace service {

/// Why a request was refused admission.
enum class ShedReason {
  DeadlineExpired, ///< Deadline already passed at admission or at pop.
  QueueFull,       ///< Bounded queue at capacity.
  Draining,        ///< Daemon is shutting down.
};

/// Stable wire name for \p R ("deadline_expired", ...).
const char *shedReasonName(ShedReason R);

/// One admitted unit of work: a parsed compile request plus its
/// identity and deadline.
struct DaemonRequest {
  std::string ClientId;  ///< Client-chosen "id" echoed in responses.
  std::string RequestId; ///< Journal request id (obs::nextRequestId).
  std::uint64_t LineNo = 0; ///< Per-session submit index (response echo).
  Kernel K;
  bool HasDeadline = false;
  std::chrono::steady_clock::time_point Deadline; ///< Valid iff HasDeadline.
  double DeadlineMs = 0; ///< As requested, for journal/telemetry only.
};

/// The shed verdict handed back to the intake loop.
struct ShedDecision {
  ShedReason Reason = ShedReason::QueueFull;
  double RetryAfterMs = 0; ///< Always > 0; scales with queue depth.
};

struct AdmissionConfig {
  /// Bounded queue capacity; arrivals beyond it shed with queue_full.
  std::size_t QueueCapacity = 64;
  /// Base unit of the retry_after_ms hint: a depth-D shed suggests
  /// RetryHintMs * (D + 1) milliseconds of client backoff.
  double RetryHintMs = 10.0;
  /// Per-request budget template; WallMs (if set) caps even generous
  /// deadlines, and pivot/node limits pass through unchanged.
  SolverBudget BaseBudget;
};

/// Derives the effective per-request budget from \p RemainingMs of
/// deadline: WallMs = min(Base.WallMs, RemainingMs) when the base has a
/// wall limit, else RemainingMs itself. Negative remaining time clamps
/// to a zero-width (instantly exhausted) wall budget, never a negative
/// one. With no deadline (\p RemainingMs < 0 disallowed; pass
/// HasDeadline=false via the overload) the base budget is used as-is.
SolverBudget budgetForRemaining(double RemainingMs,
                                const SolverBudget &Base);

/// The bounded EDF queue.
class AdmissionQueue {
public:
  explicit AdmissionQueue(AdmissionConfig C);

  /// Admits or sheds \p R (see file comment for the policy). On shed,
  /// returns false and fills \p Shed. May raise RecoverableError via
  /// the `service.queue` fail-point; the caller owns converting that
  /// into a terminal error response.
  bool admit(DaemonRequest R, ShedDecision &Shed);

  /// Blocks for the earliest-deadline request; returns false when the
  /// queue is closed and empty (worker shutdown signal).
  bool pop(DaemonRequest &Out);

  /// Non-blocking pop for synchronous (single-threaded) serving.
  bool tryPop(DaemonRequest &Out);

  /// Closes intake and wakes all waiters. \returns the still-queued
  /// requests, removed from the queue, so the caller can shed each one
  /// with a terminal `draining` response (nothing admitted is ever
  /// silently dropped).
  std::vector<DaemonRequest> close();

  std::size_t depth() const;
  bool closed() const;

  /// The backoff hint for a shed observed at queue depth \p Depth.
  double retryAfterMs(std::size_t Depth) const;

  const AdmissionConfig &config() const { return Cfg; }

private:
  // EDF order: key is (deadline in µs since the queue epoch, arrival
  // sequence). Deadline-less requests use the maximum key so they sort
  // after every deadlined request; the sequence breaks ties FIFO.
  using OrderKey = std::pair<std::int64_t, std::uint64_t>;

  OrderKey keyFor(const DaemonRequest &R) const;

  AdmissionConfig Cfg;
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mu;
  std::condition_variable Ready;
  std::map<OrderKey, DaemonRequest> Queue;
  std::uint64_t NextSeq = 0;
  bool Closed = false;
};

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_ADMISSION_H
