//===- service/Admission.cpp ----------------------------------------------===//

#include "service/Admission.h"

#include "support/FailPoint.h"

#include <algorithm>
#include <limits>

using namespace pinj;
using namespace pinj::service;

const char *service::shedReasonName(ShedReason R) {
  switch (R) {
  case ShedReason::DeadlineExpired:
    return "deadline_expired";
  case ShedReason::QueueFull:
    return "queue_full";
  case ShedReason::Draining:
    return "draining";
  }
  return "unknown";
}

SolverBudget service::budgetForRemaining(double RemainingMs,
                                         const SolverBudget &Base) {
  SolverBudget B = Base;
  double Remaining = std::max(RemainingMs, 0.0);
  // The wall limit must never promise the solver time the client will
  // not wait for. A base WallMs of 0 means "unlimited", so the deadline
  // alone caps it; otherwise the tighter of the two wins. An exactly
  // expired deadline still needs a positive-but-tiny limit: WallMs <= 0
  // would read as "unlimited" (SolverBudget convention), inverting the
  // meaning entirely.
  double Capped = Base.WallMs > 0 ? std::min(Base.WallMs, Remaining)
                                  : Remaining;
  B.WallMs = std::max(Capped, 1e-3);
  return B;
}

AdmissionQueue::AdmissionQueue(AdmissionConfig C)
    : Cfg(std::move(C)), Epoch(std::chrono::steady_clock::now()) {
  if (Cfg.QueueCapacity == 0)
    Cfg.QueueCapacity = 1;
  if (Cfg.RetryHintMs <= 0)
    Cfg.RetryHintMs = 10.0;
}

double AdmissionQueue::retryAfterMs(std::size_t Depth) const {
  // Depth-proportional backoff: the deeper the backlog at shed time,
  // the longer the client should stay away. Always strictly positive —
  // a zero hint would invite an immediate, identical retry.
  return std::max(1.0, Cfg.RetryHintMs * static_cast<double>(Depth + 1));
}

AdmissionQueue::OrderKey AdmissionQueue::keyFor(const DaemonRequest &R) const {
  if (!R.HasDeadline)
    return {std::numeric_limits<std::int64_t>::max(), NextSeq};
  auto Us = std::chrono::duration_cast<std::chrono::microseconds>(
                R.Deadline - Epoch)
                .count();
  return {static_cast<std::int64_t>(Us), NextSeq};
}

bool AdmissionQueue::admit(DaemonRequest R, ShedDecision &Shed) {
  failpoint::hit("service.queue");
  std::unique_lock<std::mutex> Lock(Mu);
  if (Closed) {
    Shed.Reason = ShedReason::Draining;
    Shed.RetryAfterMs = retryAfterMs(Queue.size());
    return false;
  }
  if (R.HasDeadline && R.Deadline <= std::chrono::steady_clock::now()) {
    Shed.Reason = ShedReason::DeadlineExpired;
    Shed.RetryAfterMs = retryAfterMs(Queue.size());
    return false;
  }
  if (Queue.size() >= Cfg.QueueCapacity) {
    Shed.Reason = ShedReason::QueueFull;
    Shed.RetryAfterMs = retryAfterMs(Queue.size());
    return false;
  }
  OrderKey Key = keyFor(R);
  ++NextSeq;
  Queue.emplace(Key, std::move(R));
  Lock.unlock();
  Ready.notify_one();
  return true;
}

bool AdmissionQueue::pop(DaemonRequest &Out) {
  std::unique_lock<std::mutex> Lock(Mu);
  Ready.wait(Lock, [this] { return Closed || !Queue.empty(); });
  if (Queue.empty())
    return false;
  Out = std::move(Queue.begin()->second);
  Queue.erase(Queue.begin());
  return true;
}

bool AdmissionQueue::tryPop(DaemonRequest &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Queue.empty())
    return false;
  Out = std::move(Queue.begin()->second);
  Queue.erase(Queue.begin());
  return true;
}

std::vector<DaemonRequest> AdmissionQueue::close() {
  std::vector<DaemonRequest> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
    Orphans.reserve(Queue.size());
    for (auto &KV : Queue)
      Orphans.push_back(std::move(KV.second));
    Queue.clear();
  }
  Ready.notify_all();
  return Orphans;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Queue.size();
}

bool AdmissionQueue::closed() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Closed;
}
