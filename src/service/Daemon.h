//===- service/Daemon.h - Persistent compilation daemon ---------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived compilation service: a JSONL request loop over the
/// pipeline, hardened for fleet duty. One request per input line, one
/// JSONL response line per request — *exactly* one, which is the
/// invariant everything here is built around and the chaos harness
/// (`runChaos`) asserts end to end.
///
/// Request shapes (all one-line JSON objects):
///   {"id":"k1","kernel":"<inline .pinj text>","deadline_ms":250}
///   {"id":"k2","kernel_file":"ops/bias.pinj"}
///   {"id":"p1","op":"ping"} | {"op":"stats"} | {"op":"shutdown"}
///
/// Responses echo the client id plus a per-session "line" index and a
/// "status" of ok | shed | error | pong | stats | bye. A shed response
/// carries the reason and a `retry_after_ms` backoff hint; an error
/// response is attributed to its originating site when one is known.
///
/// Hardening layers, bottom up:
///  - AdmissionQueue (service/Admission.h): EDF ordering, bounded-queue
///    shedding, deadline-derived per-request solver budgets.
///  - ScheduleCache (service/Cache.h): striped memory tier over the
///    disk tier; construction sweeps the disk cache and tuning DB,
///    quarantining damage so a kill -9 mid-write never poisons state.
///  - Fail-points at the daemon's own boundaries (`service.parse`,
///    `service.queue`, `service.respond`, `service.drain`), each caught
///    and converted to an attributed terminal response.
///  - Graceful drain: intake closes, queued requests shed with
///    `draining`, in-flight work finishes under DrainDeadlineMs, then a
///    `drain` journal event records whether the stop was clean.
///
/// Every admission decision is journaled (`admit`, `shed`, `drain`,
/// `quarantine` events) under the request's id, joinable with report
/// and trace artifacts via tools/polyinject-stats.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_DAEMON_H
#define POLYINJECT_SERVICE_DAEMON_H

#include "pipeline/Pipeline.h"
#include "service/Admission.h"
#include "service/Cache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace pinj {
namespace service {

struct DaemonConfig {
  /// Worker threads consuming the admission queue (ignored in Sync
  /// mode). Clamped to at least 1.
  std::size_t Workers = 2;
  AdmissionConfig Admission;
  ScheduleCache::Config Cache;
  /// When set, the startup sweep probes this tuning database and
  /// quarantines a copy if any entry was rejected.
  std::string TuningDbPath;
  /// How long drainAndStop waits for in-flight requests before
  /// declaring the drain unclean (workers are still joined).
  double DrainDeadlineMs = 5000;
  /// Process each submitted line to its terminal response before
  /// returning (no worker threads). Admission, shedding and budgets
  /// still apply; response bytes become submission-ordered and
  /// deterministic — the protocol test runs this way.
  bool Sync = false;
  /// Include wall-clock fields in ok responses (nondeterministic;
  /// benchmarks only).
  bool TimingInResponses = false;
  /// Base pipeline tunables; per-request budgets overlay
  /// Pipeline.Budget.
  PipelineOptions Pipeline;
};

/// Monotonic daemon counters (point-in-time copy; see stats()).
struct DaemonStats {
  std::uint64_t Submitted = 0;     ///< Input lines seen.
  std::uint64_t Admitted = 0;      ///< Compile requests queued.
  std::uint64_t Completed = 0;     ///< Ok responses produced.
  std::uint64_t ShedExpired = 0;   ///< deadline_expired sheds.
  std::uint64_t ShedQueueFull = 0; ///< queue_full sheds.
  std::uint64_t ShedDraining = 0;  ///< draining sheds.
  std::uint64_t ParseErrors = 0;   ///< Malformed lines / bad kernels.
  std::uint64_t FaultResponses = 0; ///< Responses forced by fail-points.
  std::uint64_t Responses = 0;     ///< Total response lines delivered.
  std::uint64_t DrainTimeouts = 0; ///< Drains that missed the deadline.

  std::uint64_t shedTotal() const {
    return ShedExpired + ShedQueueFull + ShedDraining;
  }
};

/// What the startup recovery pass found (see Daemon constructor).
struct RecoveryReport {
  SweepReport Cache;                  ///< Disk cache sweep.
  std::uint64_t TuningDbRejects = 0;  ///< Damaged tuning DB entries.
  bool TuningDbQuarantined = false;   ///< A copy was moved aside.
};

class Daemon {
public:
  /// Receives each complete response line (no trailing newline). Called
  /// under an internal lock: response lines never interleave.
  using ResponseFn = std::function<void(const std::string &Line)>;

  /// Construction runs the crash-recovery sweep: every disk cache entry
  /// is validated and damage quarantined (service/Cache.h), and the
  /// tuning DB (if configured) is probed the same way.
  explicit Daemon(DaemonConfig C);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Installs the response sink and (outside Sync mode) spawns the
  /// worker pool. Must be called exactly once, before submitLine.
  void start(ResponseFn Fn);

  /// Feeds one request line through parse → admission → (Sync only)
  /// execution. Thread-safe with respect to deliveries; intake itself
  /// is single-threaded by contract (one reader loop).
  void submitLine(const std::string &Line);

  /// Graceful shutdown: closes intake, sheds the queue with `draining`
  /// responses, waits up to DrainDeadlineMs for in-flight requests,
  /// joins the workers and journals the outcome. Idempotent.
  void drainAndStop();

  /// True once drainAndStop finished inside its deadline.
  bool cleanDrain() const { return CleanDrain.load(); }

  /// True once an {"op":"shutdown"} request was accepted.
  bool shutdownRequested() const { return ShutdownOp.load(); }

  DaemonStats stats() const;
  const RecoveryReport &recovery() const { return Recovery; }
  ScheduleCache &cache() { return CacheTier; }

  /// Blocking serve loop: getline from \p In, responses to \p Out
  /// (flushed per line), drain on EOF, shutdown request or
  /// requestStop(). \returns 0 on a clean drain, 1 otherwise.
  int serve(std::istream &In, std::ostream &Out);

  /// Async-signal-safe stop flag for SIGINT/SIGTERM handlers; serve()
  /// checks it between lines.
  static void requestStop();
  static bool stopRequested();

private:
  void workerLoop();
  void process(DaemonRequest R);
  void deliver(const std::string &ClientId, std::uint64_t LineNo,
               std::string Line);
  void shedResponse(const DaemonRequest &R, ShedReason Reason,
                    double RetryAfterMs);

  DaemonConfig Cfg;
  ScheduleCache CacheTier;
  RecoveryReport Recovery;
  AdmissionQueue Queue;
  ResponseFn Respond;
  std::mutex RespondMu;
  std::vector<std::thread> Pool;

  std::atomic<std::uint64_t> Submitted{0};
  std::atomic<std::uint64_t> Admitted{0};
  std::atomic<std::uint64_t> Completed{0};
  std::atomic<std::uint64_t> ShedExpired{0};
  std::atomic<std::uint64_t> ShedQueueFull{0};
  std::atomic<std::uint64_t> ShedDraining{0};
  std::atomic<std::uint64_t> ParseErrors{0};
  std::atomic<std::uint64_t> FaultResponses{0};
  std::atomic<std::uint64_t> Responses{0};
  std::atomic<std::uint64_t> DrainTimeouts{0};

  std::atomic<bool> ShutdownOp{false};
  std::atomic<bool> Drained{false};
  std::atomic<bool> CleanDrain{true};

  std::mutex DrainMu;
  std::condition_variable DrainCv;
  std::size_t LiveWorkers = 0; ///< Guarded by DrainMu.
};

//===----------------------------------------------------------------------===//
// Chaos harness
//===----------------------------------------------------------------------===//

/// Outcome of one chaos run (see runChaos).
struct ChaosReport {
  std::size_t Submitted = 0;
  std::size_t Responses = 0;
  std::size_t Ok = 0;
  std::size_t Shed = 0;
  std::size_t Errors = 0;
  std::size_t Other = 0; ///< pong/stats/bye.
  /// One entry per violated invariant (a line with zero or multiple
  /// terminal responses, or an unattributable response). Empty on a
  /// healthy run.
  std::vector<std::string> Violations;

  bool invariantHolds() const {
    return Violations.empty() && Responses == Submitted;
  }
};

/// Drives a fresh daemon built from \p Base with \p Requests
/// pseudo-random requests (seeded by \p Seed): a mix of valid compiles
/// over small operators, malformed lines, missing kernels, and expired
/// / tight / generous deadlines, while fail-points toggle at random —
/// or, when \p ForceSite is given, with exactly that site active for
/// the whole run (the per-site sweep in the tests). Asserts the
/// one-terminal-response-per-submitted-line invariant and leaves the
/// fail-point registry clear.
ChaosReport runChaos(const DaemonConfig &Base, std::uint64_t Seed,
                     std::size_t Requests, const char *ForceSite = nullptr);

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_DAEMON_H
