//===- service/Cache.h - Fingerprint-keyed schedule cache -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation service's schedule cache: a thread-safe in-memory LRU
/// over complete per-configuration compilations (isl/novec/infl
/// schedules plus the influenced/vec flags), keyed by the request
/// fingerprint (service/Fingerprint.h), with an optional on-disk backing
/// store (one file per fingerprint under a cache directory).
///
/// Robustness contract: a corrupt, truncated, version-mismatched or
/// kernel-incompatible disk entry is *always* a miss — recorded on the
/// `service.cache.disk_rejects` counter — never an error or a crash. The
/// disk format carries a versioned header so stale formats from older
/// builds are rejected cleanly.
///
/// Counters: `service.cache.{hits,misses,evictions,stores}` plus
/// `service.cache.{disk_hits,disk_rejects}` for the backing store.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_CACHE_H
#define POLYINJECT_SERVICE_CACHE_H

#include "pipeline/Pipeline.h"
#include "service/Fingerprint.h"

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

namespace pinj {
namespace service {

/// Point-in-time cache statistics (also mirrored on obs counters; this
/// copy is per-instance, so tests do not race on the global registry).
struct CacheStats {
  std::uint64_t Hits = 0;        ///< Memory or disk hits.
  std::uint64_t Misses = 0;      ///< Lookups that found nothing usable.
  std::uint64_t Evictions = 0;   ///< LRU entries dropped at capacity.
  std::uint64_t Stores = 0;      ///< Entries accepted by store().
  std::uint64_t DiskHits = 0;    ///< Hits served from the backing store.
  std::uint64_t DiskRejects = 0; ///< Corrupt/stale disk entries skipped.
};

/// Serializes one cache entry to the versioned on-disk text form.
std::string encodeCacheEntry(const Fingerprint &Key,
                             const CachedCompilation &Entry);

/// Parses encodeCacheEntry output. \returns false and sets \p Error on
/// any malformed input or when the embedded fingerprint differs from
/// \p Expect (a renamed/moved file must not serve the wrong kernel).
bool decodeCacheEntry(const std::string &Text, const Fingerprint &Expect,
                      CachedCompilation &Out, std::string &Error);

/// The cache. All public methods are thread-safe; disk I/O happens
/// outside the lock so concurrent workers only serialize on the map.
class ScheduleCache : public CompilationCacheHook {
public:
  struct Config {
    /// Maximum in-memory entries; least recently used is evicted. 0
    /// keeps nothing in memory (disk-only operation).
    std::size_t Capacity = 256;
    /// Backing-store directory (created on first store); empty disables
    /// the disk tier.
    std::string DiskDir;
  };

  ScheduleCache();
  explicit ScheduleCache(Config C);

  // CompilationCacheHook.
  bool lookup(const Kernel &K, const PipelineOptions &Options,
              CachedCompilation &Out) override;
  void store(const Kernel &K, const PipelineOptions &Options,
             const CachedCompilation &Entry) override;

  CacheStats stats() const;
  std::size_t size() const;
  const Config &config() const { return Cfg; }

  /// Drops every in-memory entry (the disk tier is untouched).
  void clearMemory();

  /// The backing-store path for \p Key ("<dir>/<32hex>.psc"); empty
  /// when the disk tier is disabled. Exposed for tests and tooling.
  std::string diskPathFor(const Fingerprint &Key) const;

private:
  struct Entry {
    Fingerprint Key;
    CachedCompilation Value;
  };

  bool memoryLookup(const Fingerprint &Key, CachedCompilation &Out);
  void insertMemory(const Fingerprint &Key, const CachedCompilation &Value);
  bool diskLookup(const Fingerprint &Key, const Kernel &K,
                  CachedCompilation &Out);
  void diskStore(const Fingerprint &Key, const CachedCompilation &Value);

  Config Cfg;
  mutable std::mutex Mu;
  std::list<Entry> Lru; ///< Front = most recently used.
  std::map<Fingerprint, std::list<Entry>::iterator> Index;
  CacheStats Stats;
};

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_CACHE_H
