//===- service/Cache.h - Fingerprint-keyed schedule cache -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation service's schedule cache: a thread-safe, striped
/// in-memory LRU over complete per-configuration compilations (isl/
/// novec/infl schedules plus the influenced/vec flags), keyed by the
/// request fingerprint (service/Fingerprint.h), with an optional on-disk
/// backing store (one file per fingerprint under a cache directory).
///
/// Striping: the in-memory tier is split into Config::Stripes
/// independent shards selected by the fingerprint, so the daemon's
/// worker pool serializes per shard instead of on one global mutex.
/// Capacity (entry count) and MemoryCapBytes (approximate serialized
/// bytes) are whole-cache limits divided evenly across shards; each
/// shard evicts least-recently-used entries past its slice of either
/// limit.
///
/// Robustness contract: a corrupt, truncated, version-mismatched or
/// kernel-incompatible disk entry is *always* a miss — recorded on the
/// `service.cache.disk_rejects` counter — never an error or a crash. The
/// disk format carries a versioned header so stale formats from older
/// builds are rejected cleanly. A rejected entry is additionally moved
/// aside into `<dir>/quarantine/` (never deleted), so each corruption is
/// paid for once instead of re-read and re-rejected on every miss; the
/// move is journaled as a `quarantine` event. `sweepCacheDir` applies
/// the same policy eagerly at daemon startup, including to `*.tmp.*`
/// leftovers a kill -9 mid-write can strand.
///
/// Counters: `service.cache.{hits,misses,evictions,stores}` plus
/// `service.cache.{disk_hits,disk_rejects,quarantined}` for the backing
/// store.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_CACHE_H
#define POLYINJECT_SERVICE_CACHE_H

#include "pipeline/Pipeline.h"
#include "service/Fingerprint.h"

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pinj {
namespace service {

/// Point-in-time cache statistics (also mirrored on obs counters; this
/// copy is per-instance, so tests do not race on the global registry).
struct CacheStats {
  std::uint64_t Hits = 0;        ///< Memory or disk hits.
  std::uint64_t Misses = 0;      ///< Lookups that found nothing usable.
  std::uint64_t Evictions = 0;   ///< LRU entries dropped at capacity.
  std::uint64_t Stores = 0;      ///< Entries accepted by store().
  std::uint64_t DiskHits = 0;    ///< Hits served from the backing store.
  std::uint64_t DiskRejects = 0; ///< Corrupt/stale disk entries skipped.
  std::uint64_t Quarantined = 0; ///< Rejected entries moved aside.
};

/// Serializes one cache entry to the versioned on-disk text form.
std::string encodeCacheEntry(const Fingerprint &Key,
                             const CachedCompilation &Entry);

/// Parses encodeCacheEntry output. \returns false and sets \p Error on
/// any malformed input or when the embedded fingerprint differs from
/// \p Expect (a renamed/moved file must not serve the wrong kernel).
bool decodeCacheEntry(const std::string &Text, const Fingerprint &Expect,
                      CachedCompilation &Out, std::string &Error);

/// The cache. All public methods are thread-safe; disk I/O happens
/// outside the shard locks so concurrent workers only serialize on the
/// shard maps.
class ScheduleCache : public CompilationCacheHook {
public:
  struct Config {
    /// Maximum in-memory entries across all stripes; least recently used
    /// is evicted per shard. 0 keeps nothing in memory (disk-only
    /// operation).
    std::size_t Capacity = 256;
    /// Backing-store directory (created on first store); empty disables
    /// the disk tier.
    std::string DiskDir;
    /// In-memory shards; clamped to [1, 256]. More stripes reduce lock
    /// contention under the daemon's worker pool at the cost of slightly
    /// uneven capacity use.
    std::size_t Stripes = 1;
    /// Approximate in-memory byte cap across all stripes (serialized
    /// entry size); 0 means unlimited. An entry larger than its shard's
    /// slice is served but not kept in memory.
    std::size_t MemoryCapBytes = 0;
    /// Move rejected disk entries into <dir>/quarantine/ so each corrupt
    /// file is rejected once, not on every subsequent miss.
    bool QuarantineRejects = true;
  };

  ScheduleCache();
  explicit ScheduleCache(Config C);

  // CompilationCacheHook.
  bool lookup(const Kernel &K, const PipelineOptions &Options,
              CachedCompilation &Out) override;
  void store(const Kernel &K, const PipelineOptions &Options,
             const CachedCompilation &Entry) override;

  CacheStats stats() const;
  std::size_t size() const;
  /// Approximate bytes held by the in-memory tier.
  std::size_t memoryBytes() const;
  const Config &config() const { return Cfg; }

  /// Drops every in-memory entry (the disk tier is untouched).
  void clearMemory();

  /// The backing-store path for \p Key ("<dir>/<32hex>.psc"); empty
  /// when the disk tier is disabled. Exposed for tests and tooling.
  std::string diskPathFor(const Fingerprint &Key) const;

  /// The quarantine directory rejected entries are moved into; empty
  /// when the disk tier is disabled.
  std::string quarantineDir() const;

private:
  struct Entry {
    Fingerprint Key;
    CachedCompilation Value;
    std::size_t Bytes = 0; ///< Approximate serialized size.
  };

  /// One stripe of the in-memory tier: its own lock, LRU list, index and
  /// byte account. Stats are accumulated per shard and summed by
  /// stats().
  struct Shard {
    mutable std::mutex Mu;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::map<Fingerprint, std::list<Entry>::iterator> Index;
    std::size_t Bytes = 0;
    CacheStats Stats;
  };

  Shard &shardFor(const Fingerprint &Key);
  const Shard &shardFor(const Fingerprint &Key) const;
  bool memoryLookup(const Fingerprint &Key, CachedCompilation &Out);
  void insertMemory(const Fingerprint &Key, const CachedCompilation &Value);
  bool diskLookup(const Fingerprint &Key, const Kernel &K,
                  CachedCompilation &Out);
  void diskStore(const Fingerprint &Key, const CachedCompilation &Value);
  void quarantineRejected(const std::string &Path, const std::string &Why,
                          Shard &S);

  Config Cfg;
  std::size_t ShardCapacity = 0;  ///< Entry cap per shard.
  std::size_t ShardCapBytes = 0;  ///< Byte cap per shard (0 unlimited).
  std::vector<std::unique_ptr<Shard>> Shards;
};

/// One startup recovery pass over a cache directory (see
/// sweepCacheDir).
struct SweepReport {
  std::size_t Scanned = 0;     ///< Files considered.
  std::size_t Kept = 0;        ///< Entries that validated cleanly.
  std::size_t Quarantined = 0; ///< Files moved into quarantine/.
  std::vector<std::string> QuarantinedFiles; ///< Their new paths.
};

/// Validates every entry under \p DiskDir the way a lookup would
/// (header, fingerprint-vs-filename, payload integrity) and moves
/// anything damaged — including `*.tmp.*` temp files stranded by a kill
/// mid-write — into `<DiskDir>/quarantine/`, emitting one `quarantine`
/// journal event per rejection. Never deletes; a missing directory is an
/// empty report. The daemon runs this before serving so a crash can
/// never poison warm state.
SweepReport sweepCacheDir(const std::string &DiskDir);

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_CACHE_H
