//===- service/Fingerprint.cpp --------------------------------------------===//

#include "service/Fingerprint.h"

#include "pipeline/Pipeline.h"
#include "target/GpuAnalyticTarget.h"

#include <cstring>

using namespace pinj;
using namespace pinj::service;

namespace {

constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t FnvPrime = 0x100000001b3ull;
// The second lane starts from a different basis and salts every byte,
// making the two lanes independent hash functions over the same stream.
constexpr std::uint64_t Lane2Offset = 0x6c62272e07bb0142ull;
constexpr std::uint8_t Lane2Salt = 0x9e;

} // namespace

std::string Fingerprint::str() const {
  static const char *Digits = "0123456789abcdef";
  std::string Out(32, '0');
  for (unsigned I = 0; I != 16; ++I)
    Out[15 - I] = Digits[(Hi >> (4 * I)) & 0xf];
  for (unsigned I = 0; I != 16; ++I)
    Out[31 - I] = Digits[(Lo >> (4 * I)) & 0xf];
  return Out;
}

bool Fingerprint::fromHex(const std::string &Hex, Fingerprint &Out) {
  if (Hex.size() != 32)
    return false;
  std::uint64_t Lanes[2] = {0, 0};
  for (unsigned I = 0; I != 32; ++I) {
    char C = Hex[I];
    unsigned Nibble;
    if (C >= '0' && C <= '9')
      Nibble = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = unsigned(C - 'a') + 10;
    else
      return false;
    Lanes[I / 16] = (Lanes[I / 16] << 4) | Nibble;
  }
  Out.Hi = Lanes[0];
  Out.Lo = Lanes[1];
  return true;
}

FingerprintBuilder::FingerprintBuilder() : Hi(FnvOffset), Lo(Lane2Offset) {}

void FingerprintBuilder::byte(std::uint8_t B) {
  Hi = (Hi ^ B) * FnvPrime;
  Lo = (Lo ^ static_cast<std::uint8_t>(B ^ Lane2Salt)) * FnvPrime;
}

void FingerprintBuilder::u32(std::uint32_t V) {
  for (unsigned I = 0; I != 4; ++I)
    byte(static_cast<std::uint8_t>(V >> (8 * I)));
}

void FingerprintBuilder::u64(std::uint64_t V) {
  for (unsigned I = 0; I != 8; ++I)
    byte(static_cast<std::uint8_t>(V >> (8 * I)));
}

void FingerprintBuilder::f64(double V) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void FingerprintBuilder::str(const std::string &S) {
  u64(S.size());
  for (char C : S)
    byte(static_cast<std::uint8_t>(C));
}

namespace {

void hashAccess(FingerprintBuilder &H, const Access &A) {
  H.u32(A.TensorId);
  H.byte(A.IsWrite ? 1 : 0);
  H.u64(A.Indices.size());
  for (const IntVector &Row : A.Indices) {
    H.u64(Row.size());
    for (Int V : Row)
      H.i64(V);
  }
}

void hashBudget(FingerprintBuilder &H, const SolverBudget &B) {
  H.u64(B.MaxPivots);
  H.u64(B.MaxIlpNodes);
  H.f64(B.WallMs);
}

} // namespace

Fingerprint service::fingerprintKernel(const Kernel &K) {
  FingerprintBuilder H;
  H.str("pinj-kernel-v1"); // Format tag: bump when the hashed shape changes.
  H.u64(K.numParams());
  H.u64(K.Tensors.size());
  for (const Tensor &T : K.Tensors) {
    // Name erased; identity is the tensor's position (Access::TensorId).
    H.u32(T.ElemBytes);
    H.u64(T.Shape.size());
    for (Int S : T.Shape)
      H.i64(S);
  }
  H.u64(K.Stmts.size());
  for (const Statement &S : K.Stmts) {
    // Statement/iterator names erased; order preserved by stream order.
    H.byte(static_cast<std::uint8_t>(S.Kind));
    H.u64(S.Extents.size());
    for (Int E : S.Extents)
      H.i64(E);
    H.u64(S.OrigBeta.size());
    for (Int B : S.OrigBeta)
      H.i64(B);
    hashAccess(H, S.Write);
    H.u64(S.Reads.size());
    for (const Access &R : S.Reads)
      hashAccess(H, R);
  }
  return H.get();
}

std::uint64_t service::fingerprintOptions(const PipelineOptions &O) {
  FingerprintBuilder H;
  // v3: the GPU machine-model fields were replaced by the canonical
  // target section (kind + every named constant) — a null Target hashes
  // as the gpu-analytic backend over O.Gpu, so `--gpu=v100`,
  // `--target=v100` and the defaults all share cache entries, while any
  // other backend or calibrated constant set never aliases them.
  H.str("pinj-options-v3");
  // SchedulerOptions.
  H.i64(O.Sched.CoeffBound);
  H.i64(O.Sched.ConstBound);
  H.byte(O.Sched.ProximityIncludesInput ? 1 : 0);
  H.byte(O.Sched.SerializeSccs ? 1 : 0);
  H.byte(O.Sched.PreferOriginalOrder ? 1 : 0);
  H.byte(O.Sched.UseFeautrierFallback ? 1 : 0);
  H.u32(O.Sched.MaxDims);
  hashBudget(H, O.Sched.Budget);
  // InfluenceOptions.
  H.f64(O.Influence.Weights.W1);
  H.f64(O.Influence.Weights.W2);
  H.f64(O.Influence.Weights.W3);
  H.f64(O.Influence.Weights.W4);
  H.f64(O.Influence.Weights.W5);
  H.byte(O.Influence.Weights.PaperFormulaThreadTerm ? 1 : 0);
  H.i64(O.Influence.ThreadLimit);
  H.u32(O.Influence.MaxScenarios);
  H.u32(O.Influence.MaxInnerDims);
  H.u32(O.Influence.MaxVectorWidth);
  // GPU mapping + backend target (the machine model feeds vector-width
  // choices through the influence cost, and the target scores every
  // configuration, so both are compilation-relevant). The canonical
  // form covers the kind and every named constant; the display name is
  // deliberately absent (identity is what the target computes).
  H.i64(O.Mapping.MaxThreadsPerBlock);
  H.str(O.Target ? O.Target->kind()
                 : std::string(target::GpuAnalyticKind));
  std::vector<target::TargetParam> Params =
      O.Target ? O.Target->params() : target::gpuAnalyticParams(O.Gpu);
  H.u64(Params.size());
  for (const target::TargetParam &P : Params) {
    H.str(P.Name);
    H.f64(P.Value);
  }
  H.byte(O.Validate ? 1 : 0);
  hashBudget(H, O.Budget);
  return H.get().Hi ^ (H.get().Lo * FnvPrime);
}

Fingerprint service::fingerprintRequest(const Kernel &K,
                                        const PipelineOptions &Options) {
  FingerprintBuilder H;
  H.str("pinj-request-v1");
  Fingerprint KF = fingerprintKernel(K);
  H.u64(KF.Hi);
  H.u64(KF.Lo);
  H.u64(fingerprintOptions(Options));
  return H.get();
}
