//===- service/Fingerprint.h - Canonical kernel fingerprints ----*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation service's cache key: a 128-bit structural hash
/// (two-lane FNV-1a) over a normalized kernel, combined with a hash of
/// the effective pipeline tunables.
///
/// Normalization erases everything that cannot change the scheduling
/// result: the kernel name, statement names, iterator names and tensor
/// names are all dropped. What remains is the dependence-relevant
/// structure — statement order, iteration-domain extents, op kinds,
/// access matrices with tensor *identities* (ids), element widths,
/// tensor shapes and the original-order beta vectors. Two fused
/// operators that differ only in naming therefore collide
/// intentionally: `runOperator` is a pure function of this structure
/// plus the tunables, so they share one cache entry.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_FINGERPRINT_H
#define POLYINJECT_SERVICE_FINGERPRINT_H

#include "ir/Kernel.h"

#include <cstdint>
#include <string>

namespace pinj {

struct PipelineOptions;

namespace service {

/// A 128-bit fingerprint: two independent 64-bit FNV-1a lanes. The
/// second lane uses a different offset basis and a byte salt, so a
/// collision requires breaking both simultaneously.
struct Fingerprint {
  std::uint64_t Hi = 0;
  std::uint64_t Lo = 0;

  bool operator==(const Fingerprint &O) const {
    return Hi == O.Hi && Lo == O.Lo;
  }
  bool operator!=(const Fingerprint &O) const { return !(*this == O); }
  bool operator<(const Fingerprint &O) const {
    return Hi != O.Hi ? Hi < O.Hi : Lo < O.Lo;
  }

  /// 32 lowercase hex characters (Hi then Lo); the on-disk file stem.
  std::string str() const;

  /// Parses the str() form back. \returns false on anything but exactly
  /// 32 lowercase hex characters (the cache sweep validates on-disk file
  /// names with this).
  static bool fromHex(const std::string &Hex, Fingerprint &Out);
};

/// Incremental two-lane FNV-1a hasher. Multi-byte values are fed in a
/// fixed little-endian order so fingerprints are stable across hosts.
class FingerprintBuilder {
public:
  FingerprintBuilder();

  void byte(std::uint8_t B);
  void u32(std::uint32_t V);
  void u64(std::uint64_t V);
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }
  /// Doubles hash by bit pattern (the tunables are set, not computed,
  /// so bit-exact equality is the right notion).
  void f64(double V);
  void str(const std::string &S);

  Fingerprint get() const { return {Hi, Lo}; }

private:
  std::uint64_t Hi;
  std::uint64_t Lo;
};

/// The structural fingerprint of \p K with names erased (see file
/// comment for exactly what is hashed).
Fingerprint fingerprintKernel(const Kernel &K);

/// A 64-bit hash of every PipelineOptions field that can change the
/// compilation result: scheduler tunables, influence cost weights, GPU
/// mapping limits, the backend target (kind plus every model constant;
/// a null Target hashes as the gpu-analytic backend over the Gpu field,
/// so the default, `--gpu=PRESET` and `--target=PRESET` forms share
/// entries), validation, and the solver budgets (an exhausted budget
/// changes the schedule, so budgeted and unbudgeted runs must not share
/// entries). Sink/Cache/Tuner pointers are excluded.
std::uint64_t fingerprintOptions(const PipelineOptions &Options);

/// The cache key: fingerprintKernel(K) folded with
/// fingerprintOptions(Options).
Fingerprint fingerprintRequest(const Kernel &K,
                               const PipelineOptions &Options);

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_FINGERPRINT_H
