//===- service/Cache.cpp --------------------------------------------------===//

#include "service/Cache.h"

#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "sched/Schedule.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

using namespace pinj;
using namespace pinj::service;

namespace {

// Counter references are cached once; the registry keeps them valid for
// the process lifetime and increments are relaxed atomics, so these are
// safe from any worker thread.
obs::Counter &hitCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.hits");
  return C;
}
obs::Counter &missCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.misses");
  return C;
}
obs::Counter &evictCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.evictions");
  return C;
}
obs::Counter &storeCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.stores");
  return C;
}
obs::Counter &diskHitCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.disk_hits");
  return C;
}
obs::Counter &diskRejectCounter() {
  static obs::Counter &C =
      obs::metrics().counter("service.cache.disk_rejects");
  return C;
}
obs::Counter &quarantineCounter() {
  static obs::Counter &C =
      obs::metrics().counter("service.cache.quarantined");
  return C;
}

constexpr const char *FormatHeader = "polyinject-cache v1";
constexpr const char *QuarantineSubdir = "quarantine";

/// Moves \p Path into <Dir>/quarantine/ keeping the file name, creating
/// the directory on demand. A name collision overwrites the previous
/// quarantined copy (same corruption, newer evidence). \returns the new
/// path, or "" when the move could not be made (the file then stays in
/// place and will be rejected again — correct, just slower).
std::string quarantineFile(const std::string &Dir, const std::string &Path,
                           const std::string &Why) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::path QDir = fs::path(Dir) / QuarantineSubdir;
  fs::create_directories(QDir, Ec);
  if (Ec)
    return std::string();
  fs::path Dest = QDir / fs::path(Path).filename();
  fs::rename(Path, Dest, Ec);
  if (Ec) {
    // Cross-device or permission trouble: fall back to copy+remove so
    // the entry still leaves the hot path.
    fs::copy_file(Path, Dest, fs::copy_options::overwrite_existing, Ec);
    if (Ec)
      return std::string();
    fs::remove(Path, Ec);
  }
  quarantineCounter().inc();
  obs::JournalEvent("quarantine")
      .field("file", fs::path(Path).filename().string())
      .field("reason", Why);
  return Dest.string();
}

} // namespace

std::string service::encodeCacheEntry(const Fingerprint &Key,
                                      const CachedCompilation &Entry) {
  std::string Out;
  Out += FormatHeader;
  Out += '\n';
  Out += "fingerprint " + Key.str() + '\n';
  Out += "influenced ";
  Out += Entry.Influenced ? '1' : '0';
  Out += '\n';
  Out += "veceligible ";
  Out += Entry.VecEligible ? '1' : '0';
  Out += '\n';
  const std::pair<const char *, const Schedule *> Configs[] = {
      {"isl", &Entry.Isl}, {"novec", &Entry.Novec}, {"infl", &Entry.Infl}};
  for (const auto &[Name, Sched] : Configs) {
    std::string Text = serializeSchedule(*Sched);
    // Length prefix: the payload is read as an exact byte range, so a
    // truncated file can never silently yield a shorter schedule.
    Out += "config ";
    Out += Name;
    Out += ' ' + std::to_string(Text.size()) + '\n';
    Out += Text;
  }
  Out += "end\n";
  return Out;
}

namespace {

/// Reads one '\n'-terminated line starting at \p Pos; advances \p Pos
/// past the newline. Fails on end-of-text (every line in the format is
/// newline-terminated, so a missing newline means truncation).
bool takeLine(const std::string &Text, std::size_t &Pos, std::string &Line) {
  if (Pos >= Text.size())
    return false;
  std::size_t Nl = Text.find('\n', Pos);
  if (Nl == std::string::npos)
    return false;
  Line = Text.substr(Pos, Nl - Pos);
  Pos = Nl + 1;
  return true;
}

bool parseFlagLine(const std::string &Line, const std::string &Key,
                   bool &Out) {
  if (Line == Key + " 0") {
    Out = false;
    return true;
  }
  if (Line == Key + " 1") {
    Out = true;
    return true;
  }
  return false;
}

} // namespace

bool service::decodeCacheEntry(const std::string &Text,
                               const Fingerprint &Expect,
                               CachedCompilation &Out, std::string &Error) {
  std::size_t Pos = 0;
  std::string Line;
  if (!takeLine(Text, Pos, Line) || Line != FormatHeader) {
    Error = "bad or missing format header";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      Line != "fingerprint " + Expect.str()) {
    Error = "fingerprint mismatch or malformed fingerprint line";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      !parseFlagLine(Line, "influenced", Out.Influenced)) {
    Error = "malformed influenced line";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      !parseFlagLine(Line, "veceligible", Out.VecEligible)) {
    Error = "malformed veceligible line";
    return false;
  }
  const std::pair<const char *, Schedule *> Configs[] = {
      {"isl", &Out.Isl}, {"novec", &Out.Novec}, {"infl", &Out.Infl}};
  for (const auto &[Name, Sched] : Configs) {
    if (!takeLine(Text, Pos, Line)) {
      Error = std::string("missing config line for ") + Name;
      return false;
    }
    std::istringstream LS(Line);
    std::string Tag, Got;
    std::uint64_t Size = 0;
    if (!(LS >> Tag >> Got >> Size) || Tag != "config" || Got != Name ||
        !(LS >> std::ws).eof()) {
      Error = std::string("malformed config line for ") + Name;
      return false;
    }
    // Guard the range check against Pos + Size overflowing.
    if (Size > Text.size() || Pos > Text.size() - Size) {
      Error = std::string("truncated schedule payload for ") + Name;
      return false;
    }
    std::string Payload = Text.substr(Pos, Size);
    Pos += Size;
    std::string SchedError;
    std::optional<Schedule> S = deserializeSchedule(Payload, SchedError);
    if (!S) {
      Error = std::string(Name) + " schedule: " + SchedError;
      return false;
    }
    *Sched = std::move(*S);
  }
  if (!takeLine(Text, Pos, Line) || Line != "end") {
    Error = "missing 'end' terminator";
    return false;
  }
  if (Pos != Text.size()) {
    Error = "trailing bytes after 'end'";
    return false;
  }
  return true;
}

ScheduleCache::ScheduleCache() : ScheduleCache(Config()) {}

ScheduleCache::ScheduleCache(Config C) : Cfg(std::move(C)) {
  std::size_t N = std::min<std::size_t>(std::max<std::size_t>(Cfg.Stripes, 1),
                                        256);
  // More stripes than capacity slots would leave shards with zero
  // entries each; each shard always gets at least one slot.
  ShardCapacity = Cfg.Capacity == 0 ? 0 : std::max<std::size_t>(
                                              Cfg.Capacity / N, 1);
  ShardCapBytes = Cfg.MemoryCapBytes == 0
                      ? 0
                      : std::max<std::size_t>(Cfg.MemoryCapBytes / N, 1);
  Shards.reserve(N);
  for (std::size_t I = 0; I != N; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

ScheduleCache::Shard &ScheduleCache::shardFor(const Fingerprint &Key) {
  return *Shards[(Key.Hi ^ Key.Lo) % Shards.size()];
}

const ScheduleCache::Shard &
ScheduleCache::shardFor(const Fingerprint &Key) const {
  return *Shards[(Key.Hi ^ Key.Lo) % Shards.size()];
}

CacheStats ScheduleCache::stats() const {
  CacheStats Sum;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    Sum.Hits += S->Stats.Hits;
    Sum.Misses += S->Stats.Misses;
    Sum.Evictions += S->Stats.Evictions;
    Sum.Stores += S->Stats.Stores;
    Sum.DiskHits += S->Stats.DiskHits;
    Sum.DiskRejects += S->Stats.DiskRejects;
    Sum.Quarantined += S->Stats.Quarantined;
  }
  return Sum;
}

std::size_t ScheduleCache::size() const {
  std::size_t N = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    N += S->Lru.size();
  }
  return N;
}

std::size_t ScheduleCache::memoryBytes() const {
  std::size_t N = 0;
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    N += S->Bytes;
  }
  return N;
}

void ScheduleCache::clearMemory() {
  for (const std::unique_ptr<Shard> &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    S->Lru.clear();
    S->Index.clear();
    S->Bytes = 0;
  }
}

std::string ScheduleCache::diskPathFor(const Fingerprint &Key) const {
  if (Cfg.DiskDir.empty())
    return std::string();
  return (std::filesystem::path(Cfg.DiskDir) / (Key.str() + ".psc"))
      .string();
}

std::string ScheduleCache::quarantineDir() const {
  if (Cfg.DiskDir.empty())
    return std::string();
  return (std::filesystem::path(Cfg.DiskDir) / QuarantineSubdir).string();
}

bool ScheduleCache::memoryLookup(const Fingerprint &Key,
                                 CachedCompilation &Out) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Index.find(Key);
  if (It == S.Index.end())
    return false;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Out = It->second->Value;
  return true;
}

void ScheduleCache::insertMemory(const Fingerprint &Key,
                                 const CachedCompilation &Value) {
  if (ShardCapacity == 0)
    return;
  // Approximate the footprint with the serialized size — computed
  // outside the shard lock; it dominates the actual heap cost and gives
  // MemoryCapBytes a stable, testable meaning.
  std::size_t Bytes = encodeCacheEntry(Key, Value).size();
  if (ShardCapBytes != 0 && Bytes > ShardCapBytes)
    return; // Larger than a whole shard slice: serve it, don't keep it.
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> L(S.Mu);
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    S.Bytes -= It->second->Bytes;
    S.Bytes += Bytes;
    It->second->Value = Value;
    It->second->Bytes = Bytes;
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.push_front(Entry{Key, Value, Bytes});
  S.Index[Key] = S.Lru.begin();
  S.Bytes += Bytes;
  while (S.Lru.size() > ShardCapacity ||
         (ShardCapBytes != 0 && S.Bytes > ShardCapBytes)) {
    S.Bytes -= S.Lru.back().Bytes;
    S.Index.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    ++S.Stats.Evictions;
    evictCounter().inc();
  }
}

void ScheduleCache::quarantineRejected(const std::string &Path,
                                       const std::string &Why, Shard &S) {
  if (!Cfg.QuarantineRejects)
    return;
  std::string Dest = quarantineFile(Cfg.DiskDir, Path, Why);
  if (Dest.empty())
    return;
  std::lock_guard<std::mutex> L(S.Mu);
  ++S.Stats.Quarantined;
}

bool ScheduleCache::diskLookup(const Fingerprint &Key, const Kernel &K,
                               CachedCompilation &Out) {
  std::string Path = diskPathFor(Key);
  if (Path.empty())
    return false;
  std::string Text;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return false; // Not present: a plain miss, not a reject.
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (In.bad())
      return false;
    Text = Buf.str();
  }
  std::string Error;
  CachedCompilation Decoded;
  bool Ok = decodeCacheEntry(Text, Key, Decoded, Error);
  if (Ok && (!Decoded.Isl.compatibleWith(K) ||
             !Decoded.Novec.compatibleWith(K) ||
             !Decoded.Infl.compatibleWith(K))) {
    Ok = false;
    Error = "schedule incompatible with kernel";
  }
  if (!Ok) {
    // Corrupt, truncated, stale-format or wrong-shape entry: count it,
    // move it aside so this is the *last* time it is read, and fall
    // through to a miss. Never an error.
    Shard &S = shardFor(Key);
    {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.Stats.DiskRejects;
    }
    diskRejectCounter().inc();
    quarantineRejected(Path, Error, S);
    return false;
  }
  Out = std::move(Decoded);
  return true;
}

void ScheduleCache::diskStore(const Fingerprint &Key,
                              const CachedCompilation &Value) {
  std::string Path = diskPathFor(Key);
  if (Path.empty())
    return;
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Cfg.DiskDir, Ec);
  if (Ec)
    return; // Disk tier is best-effort; memory tier already has it.
  // Write-then-rename so readers only ever see complete files, even
  // with concurrent writers (the rename is atomic within a directory).
  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return;
    OutF << encodeCacheEntry(Key, Value);
    OutF.close();
    if (!OutF) {
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Path, Ec);
  if (Ec)
    fs::remove(Tmp, Ec);
}

bool ScheduleCache::lookup(const Kernel &K, const PipelineOptions &Options,
                           CachedCompilation &Out) {
  Fingerprint Key = fingerprintRequest(K, Options);
  Shard &S = shardFor(Key);
  if (memoryLookup(Key, Out)) {
    {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.Stats.Hits;
    }
    hitCounter().inc();
    return true;
  }
  if (diskLookup(Key, K, Out)) {
    insertMemory(Key, Out);
    {
      std::lock_guard<std::mutex> L(S.Mu);
      ++S.Stats.Hits;
      ++S.Stats.DiskHits;
    }
    hitCounter().inc();
    diskHitCounter().inc();
    return true;
  }
  {
    std::lock_guard<std::mutex> L(S.Mu);
    ++S.Stats.Misses;
  }
  missCounter().inc();
  return false;
}

void ScheduleCache::store(const Kernel &K, const PipelineOptions &Options,
                          const CachedCompilation &Entry) {
  // Belt and braces: never cache schedules that do not fit the kernel
  // (the pipeline only stores degradation-free results, but the hook is
  // a public interface).
  if (!Entry.Isl.compatibleWith(K) || !Entry.Novec.compatibleWith(K) ||
      !Entry.Infl.compatibleWith(K))
    return;
  Fingerprint Key = fingerprintRequest(K, Options);
  insertMemory(Key, Entry);
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> L(S.Mu);
    ++S.Stats.Stores;
  }
  storeCounter().inc();
  diskStore(Key, Entry);
}

//===----------------------------------------------------------------------===//
// Startup sweep
//===----------------------------------------------------------------------===//

SweepReport service::sweepCacheDir(const std::string &DiskDir) {
  SweepReport Report;
  if (DiskDir.empty())
    return Report;
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (!fs::is_directory(DiskDir, Ec) || Ec)
    return Report; // Nothing persisted yet: an empty, clean report.

  // Deterministic order: collect then sort, so two sweeps of the same
  // damage journal the same sequence (the recovery test compares runs).
  std::vector<std::string> Paths;
  for (const fs::directory_entry &E : fs::directory_iterator(DiskDir, Ec)) {
    if (Ec)
      break;
    if (!E.is_regular_file())
      continue; // Skips the quarantine/ subdirectory itself.
    Paths.push_back(E.path().string());
  }
  std::sort(Paths.begin(), Paths.end());

  for (const std::string &Path : Paths) {
    ++Report.Scanned;
    fs::path P(Path);
    std::string Name = P.filename().string();
    std::string Why;

    if (P.extension() == ".psc") {
      // A committed entry: its stem must be a fingerprint and its
      // payload must decode against that fingerprint, exactly as a
      // lookup would demand.
      Fingerprint Key;
      if (!Fingerprint::fromHex(P.stem().string(), Key)) {
        Why = "file name is not a fingerprint";
      } else {
        std::string Text;
        {
          std::ifstream In(Path, std::ios::binary);
          std::ostringstream Buf;
          if (In)
            Buf << In.rdbuf();
          if (!In || In.bad())
            Why = "unreadable";
          else
            Text = Buf.str();
        }
        if (Why.empty()) {
          CachedCompilation Decoded;
          std::string Error;
          if (!decodeCacheEntry(Text, Key, Decoded, Error))
            Why = Error;
        }
      }
      if (Why.empty()) {
        ++Report.Kept;
        continue;
      }
    } else if (Name.find(".tmp.") != std::string::npos) {
      // A torn write: the process died between open and rename. The
      // rename-atomic protocol guarantees no reader ever trusted it,
      // but it still occupies the directory — move it aside.
      Why = "stranded temp file (torn write)";
    } else {
      // Unknown debris (editors, copies): leave it alone. The lookup
      // path never reads it, so it cannot poison anything.
      ++Report.Kept;
      continue;
    }

    std::string Dest = quarantineFile(DiskDir, Path, Why);
    if (!Dest.empty()) {
      ++Report.Quarantined;
      Report.QuarantinedFiles.push_back(Dest);
    } else {
      ++Report.Kept; // Could not move it; it stays, still inert.
    }
  }
  return Report;
}
