//===- service/Cache.cpp --------------------------------------------------===//

#include "service/Cache.h"

#include "obs/Metrics.h"
#include "sched/Schedule.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

using namespace pinj;
using namespace pinj::service;

namespace {

// Counter references are cached once; the registry keeps them valid for
// the process lifetime and increments are relaxed atomics, so these are
// safe from any worker thread.
obs::Counter &hitCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.hits");
  return C;
}
obs::Counter &missCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.misses");
  return C;
}
obs::Counter &evictCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.evictions");
  return C;
}
obs::Counter &storeCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.stores");
  return C;
}
obs::Counter &diskHitCounter() {
  static obs::Counter &C = obs::metrics().counter("service.cache.disk_hits");
  return C;
}
obs::Counter &diskRejectCounter() {
  static obs::Counter &C =
      obs::metrics().counter("service.cache.disk_rejects");
  return C;
}

constexpr const char *FormatHeader = "polyinject-cache v1";

} // namespace

std::string service::encodeCacheEntry(const Fingerprint &Key,
                                      const CachedCompilation &Entry) {
  std::string Out;
  Out += FormatHeader;
  Out += '\n';
  Out += "fingerprint " + Key.str() + '\n';
  Out += "influenced ";
  Out += Entry.Influenced ? '1' : '0';
  Out += '\n';
  Out += "veceligible ";
  Out += Entry.VecEligible ? '1' : '0';
  Out += '\n';
  const std::pair<const char *, const Schedule *> Configs[] = {
      {"isl", &Entry.Isl}, {"novec", &Entry.Novec}, {"infl", &Entry.Infl}};
  for (const auto &[Name, Sched] : Configs) {
    std::string Text = serializeSchedule(*Sched);
    // Length prefix: the payload is read as an exact byte range, so a
    // truncated file can never silently yield a shorter schedule.
    Out += "config ";
    Out += Name;
    Out += ' ' + std::to_string(Text.size()) + '\n';
    Out += Text;
  }
  Out += "end\n";
  return Out;
}

namespace {

/// Reads one '\n'-terminated line starting at \p Pos; advances \p Pos
/// past the newline. Fails on end-of-text (every line in the format is
/// newline-terminated, so a missing newline means truncation).
bool takeLine(const std::string &Text, std::size_t &Pos, std::string &Line) {
  if (Pos >= Text.size())
    return false;
  std::size_t Nl = Text.find('\n', Pos);
  if (Nl == std::string::npos)
    return false;
  Line = Text.substr(Pos, Nl - Pos);
  Pos = Nl + 1;
  return true;
}

bool parseFlagLine(const std::string &Line, const std::string &Key,
                   bool &Out) {
  if (Line == Key + " 0") {
    Out = false;
    return true;
  }
  if (Line == Key + " 1") {
    Out = true;
    return true;
  }
  return false;
}

} // namespace

bool service::decodeCacheEntry(const std::string &Text,
                               const Fingerprint &Expect,
                               CachedCompilation &Out, std::string &Error) {
  std::size_t Pos = 0;
  std::string Line;
  if (!takeLine(Text, Pos, Line) || Line != FormatHeader) {
    Error = "bad or missing format header";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      Line != "fingerprint " + Expect.str()) {
    Error = "fingerprint mismatch or malformed fingerprint line";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      !parseFlagLine(Line, "influenced", Out.Influenced)) {
    Error = "malformed influenced line";
    return false;
  }
  if (!takeLine(Text, Pos, Line) ||
      !parseFlagLine(Line, "veceligible", Out.VecEligible)) {
    Error = "malformed veceligible line";
    return false;
  }
  const std::pair<const char *, Schedule *> Configs[] = {
      {"isl", &Out.Isl}, {"novec", &Out.Novec}, {"infl", &Out.Infl}};
  for (const auto &[Name, Sched] : Configs) {
    if (!takeLine(Text, Pos, Line)) {
      Error = std::string("missing config line for ") + Name;
      return false;
    }
    std::istringstream LS(Line);
    std::string Tag, Got;
    std::uint64_t Size = 0;
    if (!(LS >> Tag >> Got >> Size) || Tag != "config" || Got != Name ||
        !(LS >> std::ws).eof()) {
      Error = std::string("malformed config line for ") + Name;
      return false;
    }
    // Guard the range check against Pos + Size overflowing.
    if (Size > Text.size() || Pos > Text.size() - Size) {
      Error = std::string("truncated schedule payload for ") + Name;
      return false;
    }
    std::string Payload = Text.substr(Pos, Size);
    Pos += Size;
    std::string SchedError;
    std::optional<Schedule> S = deserializeSchedule(Payload, SchedError);
    if (!S) {
      Error = std::string(Name) + " schedule: " + SchedError;
      return false;
    }
    *Sched = std::move(*S);
  }
  if (!takeLine(Text, Pos, Line) || Line != "end") {
    Error = "missing 'end' terminator";
    return false;
  }
  if (Pos != Text.size()) {
    Error = "trailing bytes after 'end'";
    return false;
  }
  return true;
}

ScheduleCache::ScheduleCache() : ScheduleCache(Config()) {}

ScheduleCache::ScheduleCache(Config C) : Cfg(std::move(C)) {}

CacheStats ScheduleCache::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return Stats;
}

std::size_t ScheduleCache::size() const {
  std::lock_guard<std::mutex> L(Mu);
  return Lru.size();
}

void ScheduleCache::clearMemory() {
  std::lock_guard<std::mutex> L(Mu);
  Lru.clear();
  Index.clear();
}

std::string ScheduleCache::diskPathFor(const Fingerprint &Key) const {
  if (Cfg.DiskDir.empty())
    return std::string();
  return (std::filesystem::path(Cfg.DiskDir) / (Key.str() + ".psc"))
      .string();
}

bool ScheduleCache::memoryLookup(const Fingerprint &Key,
                                 CachedCompilation &Out) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = It->second->Value;
  return true;
}

void ScheduleCache::insertMemory(const Fingerprint &Key,
                                 const CachedCompilation &Value) {
  if (Cfg.Capacity == 0)
    return;
  std::lock_guard<std::mutex> L(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->Value = Value;
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(Entry{Key, Value});
  Index[Key] = Lru.begin();
  while (Lru.size() > Cfg.Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Stats.Evictions;
    evictCounter().inc();
  }
}

bool ScheduleCache::diskLookup(const Fingerprint &Key, const Kernel &K,
                               CachedCompilation &Out) {
  std::string Path = diskPathFor(Key);
  if (Path.empty())
    return false;
  std::string Text;
  {
    std::ifstream In(Path, std::ios::binary);
    if (!In)
      return false; // Not present: a plain miss, not a reject.
    std::ostringstream Buf;
    Buf << In.rdbuf();
    if (In.bad())
      return false;
    Text = Buf.str();
  }
  std::string Error;
  CachedCompilation Decoded;
  if (!decodeCacheEntry(Text, Key, Decoded, Error) ||
      !Decoded.Isl.compatibleWith(K) || !Decoded.Novec.compatibleWith(K) ||
      !Decoded.Infl.compatibleWith(K)) {
    // Corrupt, truncated, stale-format or wrong-shape entry: count it
    // and fall through to a miss. Never an error.
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.DiskRejects;
    }
    diskRejectCounter().inc();
    return false;
  }
  Out = std::move(Decoded);
  return true;
}

void ScheduleCache::diskStore(const Fingerprint &Key,
                              const CachedCompilation &Value) {
  std::string Path = diskPathFor(Key);
  if (Path.empty())
    return;
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::create_directories(Cfg.DiskDir, Ec);
  if (Ec)
    return; // Disk tier is best-effort; memory tier already has it.
  // Write-then-rename so readers only ever see complete files, even
  // with concurrent writers (the rename is atomic within a directory).
  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream OutF(Tmp, std::ios::binary | std::ios::trunc);
    if (!OutF)
      return;
    OutF << encodeCacheEntry(Key, Value);
    OutF.close();
    if (!OutF) {
      fs::remove(Tmp, Ec);
      return;
    }
  }
  fs::rename(Tmp, Path, Ec);
  if (Ec)
    fs::remove(Tmp, Ec);
}

bool ScheduleCache::lookup(const Kernel &K, const PipelineOptions &Options,
                           CachedCompilation &Out) {
  Fingerprint Key = fingerprintRequest(K, Options);
  if (memoryLookup(Key, Out)) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.Hits;
    }
    hitCounter().inc();
    return true;
  }
  if (diskLookup(Key, K, Out)) {
    insertMemory(Key, Out);
    {
      std::lock_guard<std::mutex> L(Mu);
      ++Stats.Hits;
      ++Stats.DiskHits;
    }
    hitCounter().inc();
    diskHitCounter().inc();
    return true;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Stats.Misses;
  }
  missCounter().inc();
  return false;
}

void ScheduleCache::store(const Kernel &K, const PipelineOptions &Options,
                          const CachedCompilation &Entry) {
  // Belt and braces: never cache schedules that do not fit the kernel
  // (the pipeline only stores degradation-free results, but the hook is
  // a public interface).
  if (!Entry.Isl.compatibleWith(K) || !Entry.Novec.compatibleWith(K) ||
      !Entry.Infl.compatibleWith(K))
    return;
  Fingerprint Key = fingerprintRequest(K, Options);
  insertMemory(Key, Entry);
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Stats.Stores;
  }
  storeCounter().inc();
  diskStore(Key, Entry);
}
