//===- service/BatchCompiler.cpp ------------------------------------------===//

#include "service/BatchCompiler.h"

#include "obs/Journal.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

using namespace pinj;
using namespace pinj::service;

std::size_t BatchResult::hits() const {
  std::size_t N = 0;
  for (const OperatorReport &R : Reports)
    N += R.CacheHit ? 1 : 0;
  return N;
}

std::size_t BatchResult::degraded() const {
  std::size_t N = 0;
  for (const OperatorReport &R : Reports)
    N += R.degraded() ? 1 : 0;
  return N;
}

BatchCompiler::BatchCompiler(PipelineOptions Opts, unsigned Jobs)
    : Options(std::move(Opts)),
      NumWorkers(std::clamp(Jobs, 1u, 64u)) {}

namespace {

/// Builds the placeholder report for a job whose worker threw: empty
/// results, one degradation event at site "service.batch" so the
/// failure is visible in reports and the sidecar.
OperatorReport failedReport(const std::string &Name,
                            const std::string &What) {
  OperatorReport R;
  R.Name = Name;
  DegradationEvent E;
  E.Config = "batch";
  E.Site = "service.batch";
  E.Code = StatusCode::Internal;
  E.Detail = "worker exception: " + What;
  R.Degradations.push_back(E);
  return R;
}

} // namespace

BatchResult BatchCompiler::run(const std::vector<BatchJob> &Jobs) {
  BatchResult Result;
  Result.Reports.resize(Jobs.size());
  if (Jobs.empty())
    return Result;

  // Workers never see the sink: records are appended in submission
  // order after the join, so the sidecar is identical for any pool size.
  PipelineOptions WorkerOptions = Options;
  WorkerOptions.Sink = nullptr;

  // Request ids are pre-assigned at submission, before the pool starts,
  // so the id<->job mapping does not depend on worker interleaving and
  // every journal event a worker emits (through the RequestScope it
  // installs) carries its job's id. A job that throws still reports its
  // pre-assigned id via failedReport.
  std::vector<std::string> RequestIds(Jobs.size());
  for (std::size_t I = 0; I != Jobs.size(); ++I)
    RequestIds[I] = obs::nextRequestId();
  if (obs::Journal::fastEnabled())
    obs::JournalEvent("batch_start")
        .field("jobs", Jobs.size())
        .field("workers",
               std::min<std::size_t>(NumWorkers, Jobs.size()));

  std::atomic<std::size_t> Next{0};
  auto Work = [&]() {
    for (;;) {
      std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Jobs.size())
        return;
      obs::RequestScope Request(RequestIds[I]);
      try {
        Result.Reports[I] = runOperator(Jobs[I].K, WorkerOptions);
      } catch (const std::exception &Ex) {
        Result.Reports[I] = failedReport(Jobs[I].K.Name, Ex.what());
        Result.Reports[I].RequestId = RequestIds[I];
      } catch (...) {
        Result.Reports[I] = failedReport(Jobs[I].K.Name, "unknown");
        Result.Reports[I].RequestId = RequestIds[I];
      }
    }
  };

  unsigned PoolSize = static_cast<unsigned>(
      std::min<std::size_t>(NumWorkers, Jobs.size()));
  if (PoolSize <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(PoolSize);
    for (unsigned W = 0; W != PoolSize; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }

  if (obs::Journal::fastEnabled())
    obs::JournalEvent("batch_end")
        .field("jobs", Jobs.size())
        .field("cache_hits", Result.hits())
        .field("degraded", Result.degraded());

  if (Options.Sink)
    for (const OperatorReport &R : Result.Reports)
      Options.Sink->add(toSinkRecord(R));
  return Result;
}
