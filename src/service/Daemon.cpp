//===- service/Daemon.cpp -------------------------------------------------===//

#include "service/Daemon.h"

#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Journal.h"
#include "obs/Json.h"
#include "ops/OpFactory.h"
#include "support/FailPoint.h"
#include "support/Status.h"
#include "tune/TuningDb.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

using namespace pinj;
using namespace pinj::service;

namespace {

namespace json = obs::json;

std::atomic<bool> GStopRequested{false};

double msSince(std::chrono::steady_clock::time_point From,
               std::chrono::steady_clock::time_point To) {
  return std::chrono::duration<double, std::milli>(To - From).count();
}

/// Appends `"key":"value"` (escaped) to a JSON object under
/// construction.
void appendStr(std::string &Out, const char *Key, const std::string &V) {
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":\"";
  json::escapeTo(Out, V);
  Out += '"';
}

void appendNum(std::string &Out, const char *Key, double V) {
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += json::number(V);
}

void appendInt(std::string &Out, const char *Key, std::uint64_t V) {
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void appendBool(std::string &Out, const char *Key, bool V) {
  if (Out.back() != '{')
    Out += ',';
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += V ? "true" : "false";
}

/// Every response starts with the same identity prefix: the client id
/// (when one was recoverable) and the per-session line index, which is
/// what lets the chaos harness do exact per-line accounting even for
/// lines whose id never parsed.
std::string responseHead(const std::string &ClientId, std::uint64_t LineNo,
                         const char *Status) {
  std::string Out = "{";
  if (!ClientId.empty())
    appendStr(Out, "id", ClientId);
  appendInt(Out, "line", LineNo);
  appendStr(Out, "status", Status);
  return Out;
}

std::string errorResponse(const std::string &ClientId, std::uint64_t LineNo,
                          const std::string &Site,
                          const std::string &Reason) {
  std::string Out = responseHead(ClientId, LineNo, "error");
  if (!Site.empty())
    appendStr(Out, "site", Site);
  appendStr(Out, "reason", Reason);
  Out += '}';
  return Out;
}

/// Reads a member that may be a JSON string or number into a string id.
std::string clientIdOf(const json::Value &V) {
  const json::Value *Id = V.find("id");
  if (!Id)
    return std::string();
  if (Id->isString())
    return Id->Str;
  if (Id->isNumber())
    return json::number(Id->Num);
  return std::string();
}

/// Copies a damaged-but-partially-usable file into <dir>/quarantine/
/// (the tuning DB keeps serving its surviving entries, so unlike a
/// cache entry it is copied, not moved). \returns false when the copy
/// could not be made.
bool quarantineCopy(const std::string &Path) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  fs::path P(Path);
  fs::path Dir = P.parent_path().empty() ? fs::path(".") : P.parent_path();
  fs::path QDir = Dir / "quarantine";
  fs::create_directories(QDir, Ec);
  if (Ec)
    return false;
  fs::copy_file(P, QDir / P.filename(), fs::copy_options::overwrite_existing,
                Ec);
  return !Ec;
}

} // namespace

//===----------------------------------------------------------------------===//
// Construction and recovery
//===----------------------------------------------------------------------===//

Daemon::Daemon(DaemonConfig C)
    : Cfg(std::move(C)), CacheTier(Cfg.Cache), Queue(Cfg.Admission) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  // Crash recovery before the first request: validate the warm state a
  // previous process left behind, moving damage aside. The sweep
  // journals one `quarantine` event per rejection.
  Recovery.Cache = sweepCacheDir(Cfg.Cache.DiskDir);
  if (!Cfg.TuningDbPath.empty() &&
      std::filesystem::exists(Cfg.TuningDbPath)) {
    // Loading revalidates every entry (tune/TuningDb.h); survivors stay
    // usable, so damage quarantines a *copy* for postmortem.
    tune::TuningDb Probe(Cfg.TuningDbPath);
    Recovery.TuningDbRejects = Probe.stats().Rejects;
    if (Recovery.TuningDbRejects > 0) {
      Recovery.TuningDbQuarantined = quarantineCopy(Cfg.TuningDbPath);
      obs::JournalEvent("quarantine")
          .field("file",
                 std::filesystem::path(Cfg.TuningDbPath).filename().string())
          .field("reason", "tuning db damage: " +
                               std::to_string(Recovery.TuningDbRejects) +
                               " rejected entries")
          .field("copied", Recovery.TuningDbQuarantined);
    }
  }
}

Daemon::~Daemon() {
  if (!Pool.empty() && !Drained.load())
    drainAndStop();
}

void Daemon::requestStop() {
  GStopRequested.store(true, std::memory_order_relaxed);
}

bool Daemon::stopRequested() {
  return GStopRequested.load(std::memory_order_relaxed);
}

DaemonStats Daemon::stats() const {
  DaemonStats S;
  S.Submitted = Submitted.load();
  S.Admitted = Admitted.load();
  S.Completed = Completed.load();
  S.ShedExpired = ShedExpired.load();
  S.ShedQueueFull = ShedQueueFull.load();
  S.ShedDraining = ShedDraining.load();
  S.ParseErrors = ParseErrors.load();
  S.FaultResponses = FaultResponses.load();
  S.Responses = Responses.load();
  S.DrainTimeouts = DrainTimeouts.load();
  return S;
}

//===----------------------------------------------------------------------===//
// Response delivery
//===----------------------------------------------------------------------===//

void Daemon::deliver(const std::string &ClientId, std::uint64_t LineNo,
                     std::string Line) {
  std::lock_guard<std::mutex> L(RespondMu);
  try {
    failpoint::hit("service.respond");
  } catch (const RecoverableError &E) {
    // The response write boundary failed; the request still gets its
    // one terminal response, attributed to the fail-point.
    FaultResponses.fetch_add(1);
    Line = errorResponse(ClientId, LineNo, E.status().site(),
                         "injected fault at response boundary");
  }
  Responses.fetch_add(1);
  if (Respond)
    Respond(Line);
}

void Daemon::shedResponse(const DaemonRequest &R, ShedReason Reason,
                          double RetryAfterMs) {
  switch (Reason) {
  case ShedReason::DeadlineExpired:
    ShedExpired.fetch_add(1);
    break;
  case ShedReason::QueueFull:
    ShedQueueFull.fetch_add(1);
    break;
  case ShedReason::Draining:
    ShedDraining.fetch_add(1);
    break;
  }
  {
    // Journal under the request's id so the shed joins the request's
    // other artifacts offline.
    obs::RequestScope Scope(R.RequestId);
    obs::JournalEvent("shed")
        .field("client_id", R.ClientId)
        .field("reason", shedReasonName(Reason))
        .field("retry_after_ms", RetryAfterMs)
        .field("depth",
               static_cast<unsigned long long>(Queue.depth()));
  }
  std::string Out = responseHead(R.ClientId, R.LineNo, "shed");
  appendStr(Out, "reason", shedReasonName(Reason));
  appendNum(Out, "retry_after_ms", RetryAfterMs);
  Out += '}';
  deliver(R.ClientId, R.LineNo, Out);
}

//===----------------------------------------------------------------------===//
// Request execution
//===----------------------------------------------------------------------===//

void Daemon::process(DaemonRequest R) {
  auto Now = std::chrono::steady_clock::now();
  if (R.HasDeadline && R.Deadline <= Now) {
    // Expired while queued: shed at pop rather than burning solver time
    // nobody is waiting for.
    shedResponse(R, ShedReason::DeadlineExpired,
                 Queue.retryAfterMs(Queue.depth()));
    return;
  }
  obs::RequestScope Scope(R.RequestId);
  PipelineOptions Options = Cfg.Pipeline;
  Options.Cache = &CacheTier;
  const SolverBudget &Base = Cfg.Admission.BaseBudget;
  if (R.HasDeadline)
    Options.Budget = budgetForRemaining(msSince(Now, R.Deadline), Base);
  else
    Options.Budget = Base;
  OperatorReport Report = runOperator(R.K, Options);
  Completed.fetch_add(1);

  std::string Out = responseHead(R.ClientId, R.LineNo, "ok");
  appendStr(Out, "operator", Report.Name);
  appendStr(Out, "cache", Report.CacheHit ? "hit" : "miss");
  appendBool(Out, "influenced", Report.Influenced);
  appendBool(Out, "vectorizable", Report.VecEligible);
  appendNum(Out, "time_us", Report.Infl.TimeUs);
  appendNum(Out, "speedup",
            Report.Infl.TimeUs > 0 ? Report.Isl.TimeUs / Report.Infl.TimeUs
                                   : 0);
  appendInt(Out, "degraded", Report.Degradations.size());
  if (Cfg.TimingInResponses)
    appendNum(Out, "wall_us",
              msSince(Now, std::chrono::steady_clock::now()) * 1000.0);
  Out += '}';
  deliver(R.ClientId, R.LineNo, Out);
}

void Daemon::workerLoop() {
  DaemonRequest R;
  while (Queue.pop(R))
    process(std::move(R));
  {
    std::lock_guard<std::mutex> L(DrainMu);
    --LiveWorkers;
  }
  DrainCv.notify_all();
}

void Daemon::start(ResponseFn Fn) {
  Respond = std::move(Fn);
  if (Cfg.Sync)
    return;
  {
    std::lock_guard<std::mutex> L(DrainMu);
    LiveWorkers = Cfg.Workers;
  }
  Pool.reserve(Cfg.Workers);
  for (std::size_t I = 0; I != Cfg.Workers; ++I)
    Pool.emplace_back([this] { workerLoop(); });
}

//===----------------------------------------------------------------------===//
// Intake
//===----------------------------------------------------------------------===//

void Daemon::submitLine(const std::string &Line) {
  std::uint64_t LineNo = Submitted.fetch_add(1) + 1;
  try {
    failpoint::hit("service.parse");
  } catch (const RecoverableError &E) {
    FaultResponses.fetch_add(1);
    deliver(std::string(), LineNo,
            errorResponse(std::string(), LineNo, E.status().site(),
                          "injected fault at parse boundary"));
    return;
  }

  std::string ParseError;
  std::optional<json::Value> V = json::parse(Line, ParseError);
  if (!V || !V->isObject()) {
    ParseErrors.fetch_add(1);
    deliver(std::string(), LineNo,
            errorResponse(std::string(), LineNo, std::string(),
                          "malformed request: " +
                              (ParseError.empty() ? std::string("not an object")
                                                  : ParseError)));
    return;
  }
  std::string ClientId = clientIdOf(*V);
  const json::Value *OpV = V->find("op");
  std::string Op = OpV && OpV->isString() ? OpV->Str : "compile";

  if (Op == "ping") {
    std::string Out = responseHead(ClientId, LineNo, "pong");
    Out += '}';
    deliver(ClientId, LineNo, Out);
    return;
  }
  if (Op == "stats") {
    DaemonStats S = stats();
    CacheStats CS = CacheTier.stats();
    std::string Out = responseHead(ClientId, LineNo, "stats");
    appendInt(Out, "submitted", S.Submitted);
    appendInt(Out, "admitted", S.Admitted);
    appendInt(Out, "completed", S.Completed);
    appendInt(Out, "shed", S.shedTotal());
    appendInt(Out, "parse_errors", S.ParseErrors);
    appendInt(Out, "cache_hits", CS.Hits);
    appendInt(Out, "cache_misses", CS.Misses);
    appendInt(Out, "quarantined",
              Recovery.Cache.Quarantined + CS.Quarantined);
    Out += '}';
    deliver(ClientId, LineNo, Out);
    return;
  }
  if (Op == "shutdown") {
    ShutdownOp.store(true);
    std::string Out = responseHead(ClientId, LineNo, "bye");
    Out += '}';
    deliver(ClientId, LineNo, Out);
    return;
  }
  if (Op != "compile") {
    ParseErrors.fetch_add(1);
    deliver(ClientId, LineNo,
            errorResponse(ClientId, LineNo, std::string(),
                          "unknown op: " + Op));
    return;
  }

  // Kernel source: inline text or a file path.
  std::string KernelText;
  const json::Value *Inline = V->find("kernel");
  const json::Value *File = V->find("kernel_file");
  if (Inline && Inline->isString()) {
    KernelText = Inline->Str;
  } else if (File && File->isString()) {
    std::ifstream In(File->Str);
    if (!In) {
      ParseErrors.fetch_add(1);
      deliver(ClientId, LineNo,
              errorResponse(ClientId, LineNo, std::string(),
                            "cannot open kernel_file: " + File->Str));
      return;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    KernelText = Buf.str();
  } else {
    ParseErrors.fetch_add(1);
    deliver(ClientId, LineNo,
            errorResponse(ClientId, LineNo, std::string(),
                          "missing kernel or kernel_file"));
    return;
  }
  std::string KernelError;
  std::optional<Kernel> K = parseKernel(KernelText, KernelError);
  std::string Diag = K ? K->verify() : KernelError;
  if (!K || !Diag.empty()) {
    ParseErrors.fetch_add(1);
    deliver(ClientId, LineNo,
            errorResponse(ClientId, LineNo, std::string(),
                          "bad kernel: " + Diag));
    return;
  }

  DaemonRequest R;
  R.ClientId = ClientId;
  R.RequestId = obs::nextRequestId();
  R.LineNo = LineNo;
  R.K = std::move(*K);
  const json::Value *DeadlineV = V->find("deadline_ms");
  if (DeadlineV && DeadlineV->isNumber()) {
    R.HasDeadline = true;
    R.DeadlineMs = DeadlineV->Num;
    R.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         std::max(DeadlineV->Num, 0.0)));
  }

  // Admission. Keep the identity fields for the shed/fault paths — the
  // queue takes the request by value.
  DaemonRequest ForShed;
  ForShed.ClientId = R.ClientId;
  ForShed.RequestId = R.RequestId;
  ForShed.LineNo = R.LineNo;
  std::string OperatorName = R.K.Name;
  double DeadlineMs = R.DeadlineMs;
  bool AdmittedNow = false;
  ShedDecision Shed;
  try {
    AdmittedNow = Queue.admit(std::move(R), Shed);
  } catch (const RecoverableError &E) {
    FaultResponses.fetch_add(1);
    deliver(ClientId, LineNo,
            errorResponse(ClientId, LineNo, E.status().site(),
                          "injected fault at queue boundary"));
    return;
  }
  if (!AdmittedNow) {
    shedResponse(ForShed, Shed.Reason, Shed.RetryAfterMs);
    return;
  }
  Admitted.fetch_add(1);
  {
    obs::RequestScope Scope(ForShed.RequestId);
    obs::JournalEvent("admit")
        .field("client_id", ClientId)
        .field("operator", OperatorName)
        .field("deadline_ms", DeadlineMs)
        .field("depth", static_cast<unsigned long long>(Queue.depth()));
  }
  if (Cfg.Sync) {
    // Synchronous serving: run everything admitted to its terminal
    // response before returning, so responses are submission-ordered
    // and byte-stable.
    DaemonRequest Next;
    while (Queue.tryPop(Next))
      process(std::move(Next));
  }
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

void Daemon::drainAndStop() {
  if (Drained.exchange(true))
    return;
  bool DrainFault = false;
  try {
    failpoint::hit("service.drain");
  } catch (const RecoverableError &) {
    // A faulted drain entry still drains — shutdown is the one path
    // that must make progress no matter what. Recorded on the drain
    // journal event below.
    DrainFault = true;
  }
  // Close intake and give everything still queued its terminal
  // response: admitted-but-unstarted work sheds with `draining`.
  std::vector<DaemonRequest> Orphans = Queue.close();
  for (DaemonRequest &R : Orphans)
    shedResponse(R, ShedReason::Draining, Queue.retryAfterMs(0));
  // In-flight requests finish under the drain deadline; workers exit
  // once the queue is empty (pop() returns false after close()).
  bool Clean = true;
  {
    std::unique_lock<std::mutex> Lock(DrainMu);
    if (!DrainCv.wait_for(
            Lock,
            std::chrono::duration<double, std::milli>(Cfg.DrainDeadlineMs),
            [this] { return LiveWorkers == 0; })) {
      Clean = false;
      DrainTimeouts.fetch_add(1);
    }
  }
  // Joined unconditionally: compilations are finite, so this only
  // stretches past the deadline, never hangs; the deadline governs the
  // `clean` verdict, not whether we wait.
  for (std::thread &T : Pool)
    T.join();
  Pool.clear();
  CleanDrain.store(Clean);
  obs::JournalEvent("drain")
      .field("queued_shed",
             static_cast<unsigned long long>(Orphans.size()))
      .field("clean", Clean)
      .field("fault", DrainFault);
  obs::journal().flushFile();
}

//===----------------------------------------------------------------------===//
// Serve loop
//===----------------------------------------------------------------------===//

int Daemon::serve(std::istream &In, std::ostream &Out) {
  start([&Out](const std::string &Line) {
    Out << Line << '\n';
    Out.flush();
  });
  std::string Line;
  while (!stopRequested() && std::getline(In, Line)) {
    if (Line.empty())
      continue;
    submitLine(Line);
    if (ShutdownOp.load())
      break;
  }
  drainAndStop();
  return cleanDrain() ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// Chaos harness
//===----------------------------------------------------------------------===//

namespace {

/// xorshift64: deterministic, seedable, and good enough to shuffle
/// request shapes (no libc RNG state shared with anything else).
struct ChaosRng {
  std::uint64_t S;
  explicit ChaosRng(std::uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  std::uint64_t below(std::uint64_t N) { return next() % N; }
};

/// Small, fast-to-compile operators in the textual format, inlined into
/// request lines.
std::vector<std::string> chaosCorpus() {
  std::vector<Kernel> Kernels;
  Kernels.push_back(makeElementwiseChain("chaos_ew", 16, 16, 2, 1));
  Kernels.push_back(makeBiasActivation("chaos_bias", 16, 16, 1));
  Kernels.push_back(makeHostileOrderCopy("chaos_hostile", 16, 16, 1));
  Kernels.push_back(makeProducerConsumerPair("chaos_pc", 16, 16, 1));
  std::vector<std::string> Texts;
  for (const Kernel &K : Kernels) {
    std::string Error;
    std::optional<std::string> Text = printPinj(K, Error);
    if (Text)
      Texts.push_back(*Text);
  }
  return Texts;
}

} // namespace

ChaosReport service::runChaos(const DaemonConfig &Base, std::uint64_t Seed,
                              std::size_t Requests, const char *ForceSite) {
  ChaosReport Report;
  ChaosRng Rng(Seed);
  std::vector<std::string> Corpus = chaosCorpus();

  failpoint::clearAll();
  if (ForceSite)
    failpoint::activate(ForceSite);

  std::mutex LinesMu;
  std::vector<std::string> Lines;
  {
    Daemon D(Base);
    D.start([&](const std::string &L) {
      std::lock_guard<std::mutex> Lock(LinesMu);
      Lines.push_back(L);
    });
    const std::vector<const char *> &Sites = failpoint::allSites();
    for (std::size_t I = 0; I != Requests; ++I) {
      if (!ForceSite && Rng.below(5) == 0) {
        // Flip a random fail-point mid-stream; the invariant must hold
        // through arbitrary on/off interleavings.
        const char *Site = Sites[Rng.below(Sites.size())];
        if (Rng.below(2) == 0)
          failpoint::activate(Site);
        else
          failpoint::deactivate(Site);
      }
      std::uint64_t Kind = Rng.below(10);
      std::string Line;
      if (Kind == 0) {
        Line = "chaos: not json at all {{{";
      } else if (Kind == 1) {
        Line = "{\"id\":\"c" + std::to_string(I) + "\"}"; // No kernel.
      } else {
        Line = "{\"id\":\"c" + std::to_string(I) + "\",\"kernel\":\"" +
               json::escape(Corpus[Rng.below(Corpus.size())]) + "\"";
        switch (Rng.below(4)) {
        case 0:
          Line += ",\"deadline_ms\":0"; // Already expired.
          break;
        case 1:
          Line += ",\"deadline_ms\":0.5"; // Tight: may expire queued.
          break;
        case 2:
          Line += ",\"deadline_ms\":5000"; // Generous.
          break;
        default:
          break; // No deadline.
        }
        Line += "}";
      }
      D.submitLine(Line);
      ++Report.Submitted;
    }
    D.drainAndStop();
  }
  failpoint::clearAll();

  // Accounting: every submitted line must own exactly one response.
  std::map<std::uint64_t, std::size_t> PerLine;
  Report.Responses = Lines.size();
  for (const std::string &L : Lines) {
    std::string Error;
    std::optional<json::Value> V = json::parse(L, Error);
    if (!V || !V->isObject()) {
      Report.Violations.push_back("unparsable response: " + L);
      continue;
    }
    const json::Value *LineNo = V->find("line");
    if (!LineNo || !LineNo->isNumber()) {
      Report.Violations.push_back("response without line index: " + L);
      continue;
    }
    ++PerLine[static_cast<std::uint64_t>(LineNo->Num)];
    const json::Value *Status = V->find("status");
    std::string S = Status && Status->isString() ? Status->Str : "";
    if (S == "ok")
      ++Report.Ok;
    else if (S == "shed")
      ++Report.Shed;
    else if (S == "error")
      ++Report.Errors;
    else
      ++Report.Other;
  }
  for (std::uint64_t N = 1; N <= Report.Submitted; ++N) {
    std::size_t Count = PerLine.count(N) ? PerLine[N] : 0;
    if (Count != 1)
      Report.Violations.push_back("line " + std::to_string(N) + " got " +
                                  std::to_string(Count) +
                                  " responses (want exactly 1)");
  }
  for (const auto &KV : PerLine)
    if (KV.first == 0 || KV.first > Report.Submitted)
      Report.Violations.push_back("response for unknown line " +
                                  std::to_string(KV.first));
  return Report;
}
