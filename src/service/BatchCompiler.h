//===- service/BatchCompiler.h - Parallel operator compilation --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation service's batch front end: a fixed-size worker pool
/// that runs `runOperator` on N operators concurrently and merges the
/// results deterministically.
///
/// Concurrency model: jobs are pulled from a mutex-guarded index queue;
/// each worker thread runs whole operators, so the solver-budget
/// machinery (thread_local scope stack in lp/Budget.cpp) and the
/// degradation ladder isolate jobs exactly as in serial operation. The
/// shared obs::MetricsRegistry is thread-safe (atomic counters), and the
/// optional cache hook is required to be thread-safe
/// (service::ScheduleCache is).
///
/// Determinism guarantee: results land in a pre-sized vector at their
/// submission index, and sink records are appended in submission order
/// after the pool joins — so for any worker count, the reports and the
/// sidecar are ordered exactly as submitted. Per-operator *content* is
/// deterministic because every pipeline phase is (analytic simulation,
/// no randomness); only the global metrics interleaving varies with
/// worker count, which is why BatchResult carries no cross-operator
/// metrics deltas.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SERVICE_BATCHCOMPILER_H
#define POLYINJECT_SERVICE_BATCHCOMPILER_H

#include "pipeline/Pipeline.h"

#include <cstddef>
#include <string>
#include <vector>

namespace pinj {
namespace service {

/// One unit of work: a kernel compiled under the shared batch options.
struct BatchJob {
  Kernel K;
};

/// The merged outcome of one batch run.
struct BatchResult {
  /// One report per job, at the job's submission index.
  std::vector<OperatorReport> Reports;

  std::size_t hits() const;
  std::size_t degraded() const;
};

/// Compiles operators with a fixed-size worker pool.
class BatchCompiler {
public:
  /// \p Options applies to every job. Options.Sink and Options.Cache may
  /// be set: the sink is *not* handed to workers (records are derived
  /// and appended in submission order after the join); the cache hook is
  /// shared by all workers and must be thread-safe.
  /// \p Jobs is clamped to [1, 64]; 1 degenerates to serial compilation
  /// on the calling thread.
  BatchCompiler(PipelineOptions Options, unsigned Jobs);

  unsigned jobs() const { return NumWorkers; }

  /// Runs every job to completion and returns the merged result. A job
  /// that throws is converted into an empty report carrying a
  /// "service.batch" degradation event instead of tearing down the
  /// batch. Safe to call repeatedly (each call spins up a fresh pool).
  BatchResult run(const std::vector<BatchJob> &Jobs);

private:
  PipelineOptions Options;
  unsigned NumWorkers;
};

} // namespace service
} // namespace pinj

#endif // POLYINJECT_SERVICE_BATCHCOMPILER_H
