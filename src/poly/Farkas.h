//===- poly/Farkas.h - Affine form of Farkas' lemma -------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Linearization of "psi(x) >= 0 for all x in P" via the affine form of
/// Farkas' lemma (paper Section IV-A1): psi is nonnegative over the
/// polyhedron P iff psi == lambda_0 + sum_k lambda_k * row_k(P) with all
/// lambda >= 0. Here psi's coefficients are themselves linear forms over
/// the scheduler's ILP variables, so the identity becomes a set of linear
/// constraints tying scheduling coefficients to fresh multiplier
/// variables. Multipliers stay rational (non-integer) in the MILP.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_POLY_FARKAS_H
#define POLYINJECT_POLY_FARKAS_H

#include "lp/Builder.h"
#include "poly/Set.h"

namespace pinj {

/// An affine form over a set's space whose coefficients are linear forms
/// over ILP variables: psi(x) = sum_j Cols[j] * x_j + Cols[last], with
/// x ranging over (dims, params) and Cols[last] the constant part.
struct VarAffineForm {
  std::vector<SparseForm> Cols;

  explicit VarAffineForm(const SetSpace &Space) : Cols(Space.width()) {}

  SparseForm &dimCoeff(unsigned Dim) { return Cols[Dim]; }
  SparseForm &constCoeff() { return Cols.back(); }
};

/// Emits into \p B the Farkas constraints enforcing
/// "Psi(x) >= 0 for all x in P" (P nonempty). Fresh multiplier variables
/// are named with prefix \p Tag.
void addFarkasNonNegative(IlpBuilder &B, const AffineSet &P,
                          const VarAffineForm &Psi, const std::string &Tag);

} // namespace pinj

#endif // POLYINJECT_POLY_FARKAS_H
