//===- poly/Dependence.h - Data dependence analysis -------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact dependence relations between statement iterations (paper
/// Section IV-A1): pairs of iterations touching the same memory cell,
/// at least one writing, with the source executing first in the original
/// program. The original execution order is the classic 2d+1 schedule
/// encoded by Statement::OrigBeta; one relation is emitted per
/// lexicographic level at which the order can be strict.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_POLY_DEPENDENCE_H
#define POLYINJECT_POLY_DEPENDENCE_H

#include "ir/Kernel.h"
#include "poly/Set.h"

namespace pinj {

/// The classic dependence classes.
enum class DepKind {
  Flow,   ///< read after write (RAW)
  Anti,   ///< write after read (WAR)
  Output, ///< write after write (WAW)
  Input,  ///< read after read (RAR); only used by proximity
};

const char *depKindName(DepKind Kind);

/// One dependence relation delta_{S->T}: a set over
/// (source iters, target iters, params) of dependent iteration pairs.
struct DependenceRelation {
  unsigned SrcStmt = 0;
  unsigned DstStmt = 0;
  DepKind Kind = DepKind::Flow;
  unsigned TensorId = 0;
  AffineSet Rel;

  /// True dependencies constrain validity; Input only guides proximity.
  bool constrainsValidity() const { return Kind != DepKind::Input; }
};

/// Options for the analysis.
struct DependenceOptions {
  /// Also compute read-after-read relations (used by the proximity cost
  /// when optimizing for reuse on reads, as the paper's Section IV-A2
  /// allows).
  bool IncludeInput = false;
};

/// Computes all dependence relations of \p K. Relations are pruned by a
/// rational emptiness check (exact for the unit-coefficient accesses of
/// the operator domain).
std::vector<DependenceRelation>
computeDependences(const Kernel &K,
                   const DependenceOptions &Options = DependenceOptions());

/// Renders a short human-readable summary ("X -> Y flow on B").
std::string printDependence(const Kernel &K, const DependenceRelation &D);

} // namespace pinj

#endif // POLYINJECT_POLY_DEPENDENCE_H
