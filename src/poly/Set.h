//===- poly/Set.h - Affine integer sets -------------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conjunctions of affine constraints over (dims, params, 1) — the
/// iteration domains and dependence polyhedra of the paper's Section III.
///
/// Semantics note: sets live in the nonnegative orthant (all dims and
/// params are implicitly >= 0). Iteration domains in the operator IR
/// always satisfy 0 <= i, and parameters are sizes, so this loses no
/// generality in this project and lets the exact simplex be used
/// directly. Emptiness is checked over the rationals; access functions in
/// the AI/DL operator domain have unit coefficients, for which rational
/// and integer feasibility coincide.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_POLY_SET_H
#define POLYINJECT_POLY_SET_H

#include "math/Matrix.h"
#include "math/Rational.h"

#include <optional>
#include <string>

namespace pinj {

/// Identifies the shape of a set's space.
struct SetSpace {
  unsigned NumDims = 0;
  unsigned NumParams = 0;

  /// Width of a constraint row: dims, params, then the constant.
  unsigned width() const { return NumDims + NumParams + 1; }

  bool operator==(const SetSpace &O) const {
    return NumDims == O.NumDims && NumParams == O.NumParams;
  }
};

/// One affine constraint: Row . (dims, params, 1) >= 0 or == 0.
struct SetConstraint {
  IntVector Row;
  bool IsEquality = false;
};

/// A conjunction of affine constraints (a convex polyhedron intersected
/// with the nonnegative orthant).
class AffineSet {
public:
  AffineSet() = default;
  explicit AffineSet(SetSpace Space) : Space(Space) {}

  const SetSpace &space() const { return Space; }
  const std::vector<SetConstraint> &constraints() const {
    return Constraints;
  }

  /// Adds Row . (dims, params, 1) >= 0.
  void addGe(IntVector Row);
  /// Adds Row . (dims, params, 1) == 0.
  void addEq(IntVector Row);
  /// Adds Lo <= dims[Dim] < Hi, i.e. a rectangular extent.
  void addDimBounds(unsigned Dim, Int Lo, Int Hi);

  /// \returns true if the set has no rational point (conservative
  /// emptiness; see the file comment).
  bool isEmpty() const;

  /// Minimizes Expr . (dims, params, 1) over the set.
  /// \returns nullopt if the set is empty or the form is unbounded below.
  std::optional<Rational> minimize(const IntVector &Expr) const;

  /// Maximizes Expr . (dims, params, 1) over the set; nullopt if empty or
  /// unbounded above.
  std::optional<Rational> maximize(const IntVector &Expr) const;

  /// \returns true if Expr >= Bound on every point of the set (vacuously
  /// true on an empty set).
  bool isAlwaysAtLeast(const IntVector &Expr, Int Bound) const;

  /// \returns true if Expr == 0 on every point of the set.
  bool isAlwaysZero(const IntVector &Expr) const;

  std::string str() const;

private:
  SetSpace Space;
  std::vector<SetConstraint> Constraints;
};

} // namespace pinj

#endif // POLYINJECT_POLY_SET_H
