//===- poly/Dependence.cpp ------------------------------------------------===//

#include "poly/Dependence.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

using namespace pinj;

const char *pinj::depKindName(DepKind Kind) {
  switch (Kind) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Input:
    return "input";
  }
  fatalError("unknown dependence kind");
}

namespace {

/// Builds relations for one (source access, target access) pair.
class PairAnalyzer {
public:
  PairAnalyzer(const Kernel &K, unsigned Src, unsigned Dst)
      : K(K), Src(K.Stmts[Src]), Dst(K.Stmts[Dst]), SrcId(Src), DstId(Dst) {
    Space.NumDims = this->Src.numIters() + this->Dst.numIters();
    Space.NumParams = K.numParams();
  }

  /// Emits one relation per lexicographic level at which the source can
  /// execute strictly before the target.
  void analyze(const Access &SrcAcc, const Access &DstAcc, DepKind Kind,
               std::vector<DependenceRelation> &Out) {
    AffineSet Base(Space);
    addDomains(Base);
    addAccessEqualities(Base, SrcAcc, DstAcc);

    // Walk the interleaved 2d+1 original schedules position by position,
    // accumulating "equal so far" constraints in Prefix.
    AffineSet Prefix = Base;
    unsigned SrcLen = 2 * Src.numIters() + 1;
    unsigned DstLen = 2 * Dst.numIters() + 1;
    unsigned MinLen = std::min(SrcLen, DstLen);
    for (unsigned Pos = 0; Pos != MinLen; ++Pos) {
      if (Pos % 2 == 0) {
        // Beta position: constants decide.
        Int BetaSrc = Src.OrigBeta[Pos / 2];
        Int BetaDst = Dst.OrigBeta[Pos / 2];
        if (BetaSrc < BetaDst) {
          // Strictly ordered here for all iterations; emit and stop
          // (deeper equality is impossible).
          emit(Prefix, SrcAcc, Kind, Out);
          return;
        }
        if (BetaSrc > BetaDst)
          return; // Source can never precede target at this prefix.
        continue; // Equal betas: no constraint, same prefix.
      }
      // Iterator position: candidate strict level, then extend prefix
      // with the equality.
      unsigned SrcIter = (Pos - 1) / 2;
      unsigned DstIter = (Pos - 1) / 2;
      AffineSet Strict = Prefix;
      Strict.addGe(orderRow(SrcIter, DstIter, /*Strict=*/true));
      emit(Strict, SrcAcc, Kind, Out);
      Prefix.addEq(orderRow(SrcIter, DstIter, /*Strict=*/false));
    }
    // Identical on the whole common prefix: for distinct statements with
    // equal-length schedules this cannot happen (beta prefixes differ);
    // for the same statement it is the same iteration, not a dependence.
  }

private:
  /// Row over (src iters, dst iters, params, 1); Strict gives
  /// dst - src - 1 >= 0, otherwise dst - src (== 0 use).
  IntVector orderRow(unsigned SrcIter, unsigned DstIter, bool Strict) const {
    IntVector Row(Space.width(), 0);
    Row[SrcIter] = -1;
    Row[Src.numIters() + DstIter] = 1;
    if (Strict)
      Row.back() = -1;
    return Row;
  }

  void addDomains(AffineSet &Set) const {
    for (unsigned I = 0, E = Src.numIters(); I != E; ++I)
      Set.addDimBounds(I, 0, Src.Extents[I]);
    for (unsigned I = 0, E = Dst.numIters(); I != E; ++I)
      Set.addDimBounds(Src.numIters() + I, 0, Dst.Extents[I]);
  }

  /// Lifts an access row of \p S into the combined space at \p DimOffset.
  IntVector liftRow(const Statement &S, const IntVector &Row,
                    unsigned DimOffset) const {
    IntVector Lifted(Space.width(), 0);
    for (unsigned I = 0, E = S.numIters(); I != E; ++I)
      Lifted[DimOffset + I] = Row[I];
    for (unsigned P = 0, E = K.numParams(); P != E; ++P)
      Lifted[Space.NumDims + P] = Row[S.numIters() + P];
    Lifted.back() = Row.back();
    return Lifted;
  }

  void addAccessEqualities(AffineSet &Set, const Access &SrcAcc,
                           const Access &DstAcc) const {
    assert(SrcAcc.TensorId == DstAcc.TensorId && "access tensor mismatch");
    for (unsigned D = 0, E = SrcAcc.Indices.size(); D != E; ++D) {
      IntVector SrcRow = liftRow(Src, SrcAcc.Indices[D], 0);
      IntVector DstRow = liftRow(Dst, DstAcc.Indices[D], Src.numIters());
      IntVector Eq(Space.width(), 0);
      for (unsigned C = 0, W = Space.width(); C != W; ++C)
        Eq[C] = checkedSub(SrcRow[C], DstRow[C]);
      Set.addEq(std::move(Eq));
    }
  }

  void emit(const AffineSet &Rel, const Access &SrcAcc, DepKind Kind,
            std::vector<DependenceRelation> &Out) const {
    if (Rel.isEmpty())
      return;
    DependenceRelation D;
    D.SrcStmt = SrcId;
    D.DstStmt = DstId;
    D.Kind = Kind;
    D.TensorId = SrcAcc.TensorId;
    D.Rel = Rel;
    Out.push_back(std::move(D));
  }

  const Kernel &K;
  const Statement &Src;
  const Statement &Dst;
  unsigned SrcId;
  unsigned DstId;
  SetSpace Space;
};

DepKind classify(bool SrcWrites, bool DstWrites) {
  if (SrcWrites && DstWrites)
    return DepKind::Output;
  if (SrcWrites)
    return DepKind::Flow;
  if (DstWrites)
    return DepKind::Anti;
  return DepKind::Input;
}

} // namespace

std::vector<DependenceRelation>
pinj::computeDependences(const Kernel &K, const DependenceOptions &Options) {
  obs::Span S("poly.dependences");
  unsigned Pairs = 0;
  std::vector<DependenceRelation> Result;
  for (unsigned Src = 0, NS = K.Stmts.size(); Src != NS; ++Src) {
    for (unsigned Dst = 0; Dst != NS; ++Dst) {
      PairAnalyzer Analyzer(K, Src, Dst);
      for (const Access *SrcAcc : K.Stmts[Src].allAccesses()) {
        for (const Access *DstAcc : K.Stmts[Dst].allAccesses()) {
          if (SrcAcc->TensorId != DstAcc->TensorId)
            continue;
          DepKind Kind = classify(SrcAcc->IsWrite, DstAcc->IsWrite);
          if (Kind == DepKind::Input && !Options.IncludeInput)
            continue;
          ++Pairs;
          Analyzer.analyze(*SrcAcc, *DstAcc, Kind, Result);
        }
      }
    }
  }
  static obs::Counter &Runs = obs::metrics().counter("poly.dependence_runs");
  static obs::Counter &Deps =
      obs::metrics().counter("poly.dependences_computed");
  static obs::Counter &PairCount =
      obs::metrics().counter("poly.access_pairs_analyzed");
  Runs.inc();
  Deps.add(Result.size());
  PairCount.add(Pairs);
  if (S.active())
    S.arg("kernel", K.Name)
        .arg("pairs", Pairs)
        .arg("relations", Result.size());
  return Result;
}

std::string pinj::printDependence(const Kernel &K,
                                  const DependenceRelation &D) {
  return K.Stmts[D.SrcStmt].Name + " -> " + K.Stmts[D.DstStmt].Name + " " +
         depKindName(D.Kind) + " on " + K.Tensors[D.TensorId].Name;
}
