//===- poly/Farkas.cpp ----------------------------------------------------===//

#include "poly/Farkas.h"

#include "support/FailPoint.h"

#include <algorithm>

using namespace pinj;

namespace {

/// A working copy of the polyhedron plus the form being certified, on
/// which equalities are Gauss-eliminated before the multipliers are
/// introduced: every unit-coefficient equality (the common case for
/// dependence relations, whose access equalities tie source and target
/// iterators) removes one dimension and one row, sharply shrinking the
/// ILP. Implicit nonnegativity of eliminated dimensions is preserved by
/// materializing the substituted expression as an inequality.
class ReducedSystem {
public:
  ReducedSystem(const AffineSet &P, const VarAffineForm &Psi)
      : Width(P.space().width()), NumDims(P.space().NumDims),
        Cols(Psi.Cols) {
    for (const SetConstraint &C : P.constraints()) {
      if (C.IsEquality)
        Equalities.push_back(C.Row);
      else
        Inequalities.push_back(C.Row);
    }
    eliminate();
    finalize();
  }

  const std::vector<IntVector> &inequalities() const { return Inequalities; }
  const std::vector<IntVector> &equalities() const { return Equalities; }
  const std::vector<SparseForm> &psiCols() const { return Cols; }
  unsigned width() const { return Width; }

private:
  /// Finds an equality with a +-1 coefficient on a dimension and
  /// substitutes that dimension away; repeats until exhausted.
  void eliminate() {
    for (;;) {
      unsigned EqIdx = Equalities.size(), Dim = Width;
      for (unsigned E = 0; E != Equalities.size() && Dim == Width; ++E) {
        for (unsigned D = 0; D != NumDims; ++D) {
          Int C = Equalities[E][D];
          if (C == 1 || C == -1) {
            EqIdx = E;
            Dim = D;
            break;
          }
        }
      }
      if (Dim == Width)
        return;
      // Equality: coeff * dim + rest == 0, coeff = +-1, so
      // dim == -coeff * rest. Substitution row S with S[Dim] == 0:
      // x_Dim := S . (x, 1).
      IntVector Eq = Equalities[EqIdx];
      Int Coeff = Eq[Dim];
      IntVector Subst(Width, 0);
      for (unsigned C = 0; C != Width; ++C)
        if (C != Dim)
          Subst[C] = checkedMul(checkedNeg(Coeff), Eq[C]);
      Equalities.erase(Equalities.begin() + EqIdx);

      auto substituteRow = [&](IntVector &Row) {
        Int Factor = Row[Dim];
        if (Factor == 0)
          return;
        Row[Dim] = 0;
        for (unsigned C = 0; C != Width; ++C)
          Row[C] = checkedAdd(Row[C], checkedMul(Factor, Subst[C]));
      };
      for (IntVector &Row : Inequalities)
        substituteRow(Row);
      for (IntVector &Row : Equalities)
        substituteRow(Row);
      // Preserve the implicit x_Dim >= 0 of the nonnegative orthant.
      Inequalities.push_back(Subst);
      // Fold the dimension's Psi coefficient into the remaining columns.
      SparseForm Folded = Cols[Dim];
      Cols[Dim] = SparseForm();
      for (unsigned C = 0; C != Width; ++C)
        if (Subst[C] != 0)
          Cols[C].addScaled(Folded, Subst[C]);
    }
  }

  /// Drops trivial rows (nonnegative constants) and duplicates.
  void finalize() {
    std::vector<IntVector> Kept;
    for (IntVector &Row : Inequalities) {
      normalizeByGcd(Row);
      bool AllZero = true;
      for (unsigned C = 0; C + 1 != Width; ++C)
        if (Row[C] != 0)
          AllZero = false;
      if (AllZero && Row.back() >= 0)
        continue; // 0 >= -c with c >= 0: trivially true.
      if (std::find(Kept.begin(), Kept.end(), Row) == Kept.end())
        Kept.push_back(Row);
    }
    Inequalities = std::move(Kept);
  }

  unsigned Width;
  unsigned NumDims;
  std::vector<IntVector> Inequalities;
  std::vector<IntVector> Equalities;
  std::vector<SparseForm> Cols;
};

} // namespace

void pinj::addFarkasNonNegative(IlpBuilder &B, const AffineSet &P,
                                const VarAffineForm &Psi,
                                const std::string &Tag) {
  failpoint::hit("poly.farkas");
  unsigned Width = P.space().width();
  assert(Psi.Cols.size() == Width && "form width mismatch with set");

  ReducedSystem System(P, Psi);

  // One multiplier per inequality; remaining equalities (non-unit
  // coefficients) get an unrestricted multiplier represented as the
  // difference of two nonnegative ones.
  struct Multiplier {
    const IntVector *Row;
    unsigned Pos; ///< lambda+ variable.
    unsigned Neg; ///< lambda- variable, or -1u for inequalities.
  };
  std::vector<Multiplier> Lambdas;
  unsigned Counter = 0;
  for (const IntVector &Row : System.inequalities()) {
    Multiplier M;
    M.Row = &Row;
    M.Pos =
        B.addVar(Tag + ".l" + std::to_string(Counter++), /*IsInteger=*/false);
    M.Neg = ~0u;
    Lambdas.push_back(M);
  }
  for (const IntVector &Row : System.equalities()) {
    Multiplier M;
    M.Row = &Row;
    M.Pos =
        B.addVar(Tag + ".l" + std::to_string(Counter), /*IsInteger=*/false);
    M.Neg = B.addVar(Tag + ".l" + std::to_string(Counter) + "n",
                     /*IsInteger=*/false);
    ++Counter;
    Lambdas.push_back(M);
  }

  // For each column j: Psi[j] - sum_k lambda_k * Row_k[j] (==|>=) 0.
  // Columns over dims and params use equality; the constant column uses
  // >=, absorbing the nonnegative lambda_0.
  for (unsigned Col = 0; Col != Width; ++Col) {
    SparseForm Form = System.psiCols()[Col];
    bool AnyTerm = !Form.Terms.empty() || Form.Constant != 0;
    for (const Multiplier &M : Lambdas) {
      Int Coeff = (*M.Row)[Col];
      if (Coeff == 0)
        continue;
      AnyTerm = true;
      Form.addTerm(M.Pos, checkedNeg(Coeff));
      if (M.Neg != ~0u)
        Form.addTerm(M.Neg, Coeff);
    }
    if (!AnyTerm)
      continue; // Eliminated column: 0 == 0.
    if (Col + 1 == Width)
      B.addGe(Form);
    else
      B.addEq(Form);
  }
}
