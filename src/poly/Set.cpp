//===- poly/Set.cpp -------------------------------------------------------===//

#include "poly/Set.h"

#include "lp/Simplex.h"

using namespace pinj;

void AffineSet::addGe(IntVector Row) {
  assert(Row.size() == Space.width() && "constraint width mismatch");
  Constraints.push_back({std::move(Row), /*IsEquality=*/false});
}

void AffineSet::addEq(IntVector Row) {
  assert(Row.size() == Space.width() && "constraint width mismatch");
  Constraints.push_back({std::move(Row), /*IsEquality=*/true});
}

void AffineSet::addDimBounds(unsigned Dim, Int Lo, Int Hi) {
  assert(Dim < Space.NumDims && "dimension out of range");
  IntVector Lower(Space.width(), 0);
  Lower[Dim] = 1;
  Lower.back() = checkedNeg(Lo);
  addGe(std::move(Lower)); // dim - Lo >= 0
  IntVector Upper(Space.width(), 0);
  Upper[Dim] = -1;
  Upper.back() = checkedSub(Hi, 1);
  addGe(std::move(Upper)); // Hi - 1 - dim >= 0
}

namespace {

/// Translates a set into an LP over its (dims, params) variables.
LpProblem toLp(const AffineSet &Set) {
  unsigned NumVars = Set.space().NumDims + Set.space().NumParams;
  LpProblem Lp(NumVars);
  for (const SetConstraint &C : Set.constraints()) {
    IntVector Coeffs(C.Row.begin(), C.Row.end() - 1);
    if (C.IsEquality)
      Lp.addEq(std::move(Coeffs), C.Row.back());
    else
      Lp.addGe(std::move(Coeffs), C.Row.back());
  }
  return Lp;
}

} // namespace

bool AffineSet::isEmpty() const {
  LpProblem Lp = toLp(*this);
  Lp.Objective.assign(Lp.NumVars, 0);
  return solveLp(Lp).Status == LpResult::Infeasible;
}

std::optional<Rational> AffineSet::minimize(const IntVector &Expr) const {
  assert(Expr.size() == Space.width() && "expression width mismatch");
  LpProblem Lp = toLp(*this);
  Lp.Objective.assign(Expr.begin(), Expr.end() - 1);
  Lp.ObjectiveConstant = Expr.back();
  LpResult R = solveLp(Lp);
  if (!R.isOptimal())
    return std::nullopt;
  return R.Value;
}

std::optional<Rational> AffineSet::maximize(const IntVector &Expr) const {
  IntVector Negated(Expr.size());
  for (size_t I = 0, E = Expr.size(); I != E; ++I)
    Negated[I] = checkedNeg(Expr[I]);
  std::optional<Rational> NegMin = minimize(Negated);
  if (!NegMin)
    return std::nullopt;
  return -*NegMin;
}

bool AffineSet::isAlwaysAtLeast(const IntVector &Expr, Int Bound) const {
  // Expr >= Bound everywhere iff {set and Expr <= Bound - 1} is empty
  // (over the rationals we test Expr < Bound via Expr <= Bound - 1, which
  // is exact for integer points; rational points in between make the test
  // conservative in the safe direction).
  AffineSet Restricted = *this;
  IntVector Row(Expr.size());
  for (size_t I = 0, E = Expr.size(); I != E; ++I)
    Row[I] = checkedNeg(Expr[I]);
  Row.back() = checkedAdd(Row.back(), checkedSub(Bound, 1));
  Restricted.addGe(std::move(Row)); // Bound - 1 - Expr >= 0
  return Restricted.isEmpty();
}

bool AffineSet::isAlwaysZero(const IntVector &Expr) const {
  IntVector Negated(Expr.size());
  for (size_t I = 0, E = Expr.size(); I != E; ++I)
    Negated[I] = checkedNeg(Expr[I]);
  return isAlwaysAtLeast(Expr, 0) && isAlwaysAtLeast(Negated, 0);
}

std::string AffineSet::str() const {
  std::string Out = "{ dims=" + std::to_string(Space.NumDims) +
                    " params=" + std::to_string(Space.NumParams) + "\n";
  for (const SetConstraint &C : Constraints) {
    Out += "  [";
    for (size_t I = 0, E = C.Row.size(); I != E; ++I) {
      if (I != 0)
        Out += " ";
      Out += std::to_string(C.Row[I]);
    }
    Out += C.IsEquality ? "] == 0\n" : "] >= 0\n";
  }
  Out += "}";
  return Out;
}
