//===- obs/Trace.h - Scoped-span tracer -------------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead scoped-span tracer for the scheduling pipeline. RAII
/// `Span` objects record nesting, wall-clock timing and key/value
/// attributes; the process-wide `Tracer` serializes them to Chrome
/// trace-event JSON (loadable in chrome://tracing or Perfetto) and to an
/// indented human-readable stderr form.
///
/// Tracing is disabled by default and costs exactly one predictable
/// branch per span in that state: `Span`'s constructor tests a static
/// flag and does nothing else — no clock read, no allocation — so the
/// hot ILP path is unaffected. `POLYINJECT_TRACE=1` in the environment
/// enables the human-readable form at startup (the historical scheduler
/// trace alias); programs enable JSON buffering explicitly.
///
/// The tracer is thread-safe: the batch compiler (service/) opens and
/// closes spans from worker threads concurrently. The event buffer is
/// guarded by a mutex, nesting depth is tracked per thread, and every
/// event records a small per-thread id that becomes the Chrome trace
/// "tid" field, so concurrent workers render as separate tracks.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_TRACE_H
#define POLYINJECT_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace pinj {
namespace obs {

/// One key/value attribute of a trace event. Value is stored rendered;
/// IsString selects quoting in the JSON form.
struct TraceArg {
  std::string Key;
  std::string Value;
  bool IsString = true;
};

/// One closed (or still open) span.
struct TraceEvent {
  std::string Name;
  std::string Category;
  double BeginUs = 0; ///< Relative to the tracer epoch.
  double DurUs = 0;
  unsigned Depth = 0; ///< Nesting depth at open time (per thread).
  unsigned Tid = 0;   ///< Small per-thread id (Chrome trace "tid").
  bool Closed = false;
  std::vector<TraceArg> Args;
};

/// The process-wide trace collector; all state lives behind
/// `Tracer::get()`, guarded by an internal mutex.
class Tracer {
public:
  /// Output mode bits for enable().
  enum ModeBits : unsigned {
    Human = 1u, ///< Indented stderr line per closed span.
    Json = 2u,  ///< Buffer events for json()/writeJson().
  };

  static Tracer &get();

  /// Turns on the given output mode(s); modes accumulate.
  void enable(unsigned ModeMask);
  /// Turns all tracing off (buffered events are kept until reset()).
  void disable();
  bool enabled() const { return modes() != 0; }
  bool humanEnabled() const { return (modes() & Human) != 0; }
  bool jsonEnabled() const { return (modes() & Json) != 0; }

  /// Drops all buffered events and restarts the epoch clock.
  void reset();

  /// The buffered events, in open order (parents before children on
  /// each thread). Call only while no spans are being recorded
  /// concurrently (tests, end-of-run serialization).
  const std::vector<TraceEvent> &events() const { return Events; }

  /// Chrome trace-event JSON of the buffered events:
  /// {"traceEvents":[{"ph":"X",...},...]}.
  std::string json() const;

  /// Writes json() to \p Path. \returns false and sets \p Error on I/O
  /// failure.
  bool writeJson(const std::string &Path, std::string &Error) const;

  /// Registers \p Path as the abnormal-path flush target: autoFlush()
  /// rewrites it with the current buffer. The pipeline calls autoFlush
  /// on every degradation, so a run that dies mid-compilation still
  /// leaves a loadable trace (closed spans only). Pass "" to clear.
  void setAutoFlushPath(std::string Path);
  /// Rewrites the auto-flush file, if one is configured; no-op (and
  /// cheap) otherwise.
  void autoFlush() const;

  /// The single branch the disabled fast path takes.
  static bool fastEnabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  // Span implementation interface (not for direct use).
  unsigned openSpan(const char *Name, const char *Category);
  void closeSpan(unsigned Index);
  void addSpanArg(unsigned Index, TraceArg Arg);

private:
  Tracer();

  double nowUs() const;
  void printHuman(const TraceEvent &E) const;

  unsigned modes() const { return Modes.load(std::memory_order_relaxed); }

  static inline std::atomic<bool> EnabledFlag{false};
  mutable std::mutex Mu;
  std::atomic<unsigned> Modes{0};
  unsigned OpenCount = 0; ///< Spans open across all threads.
  std::chrono::steady_clock::time_point Epoch;
  std::vector<TraceEvent> Events;
  std::string AutoFlushPath; ///< Degradation-path flush target ("" off).
};

inline Tracer &tracer() { return Tracer::get(); }

/// A scoped span. Construct on the stack; destruction closes the span.
/// When tracing is disabled, construction is a single branch and arg()
/// calls are no-ops.
class Span {
public:
  explicit Span(const char *Name, const char *Category = "pinj") {
    if (!Tracer::fastEnabled())
      return;
    Index = Tracer::get().openSpan(Name, Category);
    Active = true;
  }
  ~Span() {
    if (Active)
      Tracer::get().closeSpan(Index);
  }
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  Span &arg(const char *Key, const std::string &Value) {
    return addArg(Key, Value, /*IsString=*/true);
  }
  Span &arg(const char *Key, const char *Value) {
    return addArg(Key, Value, /*IsString=*/true);
  }
  Span &arg(const char *Key, long long Value) {
    return addArg(Key, std::to_string(Value), /*IsString=*/false);
  }
  Span &arg(const char *Key, unsigned long long Value) {
    return addArg(Key, std::to_string(Value), /*IsString=*/false);
  }
  Span &arg(const char *Key, int Value) {
    return arg(Key, static_cast<long long>(Value));
  }
  Span &arg(const char *Key, long Value) {
    return arg(Key, static_cast<long long>(Value));
  }
  Span &arg(const char *Key, unsigned Value) {
    return arg(Key, static_cast<unsigned long long>(Value));
  }
  Span &arg(const char *Key, unsigned long Value) {
    return arg(Key, static_cast<unsigned long long>(Value));
  }
  Span &arg(const char *Key, bool Value) {
    return addArg(Key, Value ? "true" : "false", /*IsString=*/false);
  }
  Span &arg(const char *Key, double Value);

  bool active() const { return Active; }

private:
  Span &addArg(const char *Key, std::string Value, bool IsString);

  bool Active = false;
  unsigned Index = 0;
};

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_TRACE_H
