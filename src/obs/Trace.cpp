//===- obs/Trace.cpp ------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace pinj;
using namespace pinj::obs;

Tracer &Tracer::get() {
  static Tracer T;
  return T;
}

Tracer::Tracer() : Epoch(std::chrono::steady_clock::now()) {}

double Tracer::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

void Tracer::enable(unsigned ModeMask) {
  Modes |= ModeMask;
  EnabledFlag = Modes != 0;
}

void Tracer::disable() {
  Modes = 0;
  EnabledFlag = false;
}

void Tracer::reset() {
  Events.clear();
  OpenStack.clear();
  Epoch = std::chrono::steady_clock::now();
}

unsigned Tracer::openSpan(const char *Name, const char *Category) {
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Depth = static_cast<unsigned>(OpenStack.size());
  E.BeginUs = nowUs();
  unsigned Index = static_cast<unsigned>(Events.size());
  Events.push_back(std::move(E));
  OpenStack.push_back(Index);
  return Index;
}

void Tracer::closeSpan(unsigned Index) {
  // Guard against reset()/disable() between open and close.
  if (Index >= Events.size())
    return;
  TraceEvent &E = Events[Index];
  if (E.Closed)
    return;
  E.DurUs = nowUs() - E.BeginUs;
  E.Closed = true;
  assert(!OpenStack.empty() && OpenStack.back() == Index &&
         "spans must close in LIFO order");
  if (!OpenStack.empty() && OpenStack.back() == Index)
    OpenStack.pop_back();
  if (humanEnabled())
    printHuman(E);
  // Without JSON buffering there is no reader of closed events: drop
  // them so a long human-mode run does not grow without bound.
  if (!jsonEnabled() && OpenStack.empty()) {
    Events.clear();
  }
}

TraceEvent *Tracer::eventFor(unsigned Index) {
  return Index < Events.size() ? &Events[Index] : nullptr;
}

void Tracer::printHuman(const TraceEvent &E) const {
  std::string Args;
  for (const TraceArg &A : E.Args) {
    Args += ' ';
    Args += A.Key;
    Args += '=';
    Args += A.Value;
  }
  std::fprintf(stderr, "[trace] %*s%s%s (%.1f us)\n", E.Depth * 2, "",
               E.Name.c_str(), Args.c_str(), E.DurUs);
}

std::string Tracer::json() const {
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!E.Closed)
      continue; // Still open; no duration yet.
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"" + json::escape(E.Name) + "\",\"cat\":\"" +
           json::escape(E.Category) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":1" +
           ",\"ts\":" + json::number(E.BeginUs) +
           ",\"dur\":" + json::number(E.DurUs);
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      bool FirstArg = true;
      for (const TraceArg &A : E.Args) {
        if (!FirstArg)
          Out += ',';
        FirstArg = false;
        Out += '"' + json::escape(A.Key) + "\":";
        if (A.IsString)
          Out += '"' + json::escape(A.Value) + '"';
        else
          Out += A.Value;
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

bool Tracer::writeJson(const std::string &Path, std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << json() << '\n';
  Out.close();
  if (!Out) {
    Error = "error writing " + Path;
    return false;
  }
  return true;
}

Span &Span::addArg(const char *Key, std::string Value, bool IsString) {
  if (!Active)
    return *this;
  if (TraceEvent *E = Tracer::get().eventFor(Index))
    E->Args.push_back({Key, std::move(Value), IsString});
  return *this;
}

Span &Span::arg(const char *Key, double Value) {
  return addArg(Key, json::number(Value), /*IsString=*/false);
}

namespace {

/// POLYINJECT_TRACE=1 turns on the human-readable trace at startup — the
/// alias for the historical ad-hoc scheduler stderr trace.
[[maybe_unused]] const bool TraceEnvInit = [] {
  const char *V = std::getenv("POLYINJECT_TRACE");
  if (V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0'))
    Tracer::get().enable(Tracer::Human);
  return true;
}();

} // namespace
