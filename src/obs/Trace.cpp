//===- obs/Trace.cpp ------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace pinj;
using namespace pinj::obs;

Tracer &Tracer::get() {
  static Tracer T;
  return T;
}

Tracer::Tracer() : Epoch(std::chrono::steady_clock::now()) {}

double Tracer::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

namespace {

/// Per-thread span state: a small stable thread id (Chrome trace "tid")
/// and the current nesting depth on this thread.
struct ThreadTraceState {
  unsigned Tid;
  unsigned Depth = 0;

  ThreadTraceState() {
    static std::atomic<unsigned> NextTid{1};
    Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  }
};

ThreadTraceState &threadState() {
  thread_local ThreadTraceState S;
  return S;
}

} // namespace

void Tracer::enable(unsigned ModeMask) {
  Modes.fetch_or(ModeMask, std::memory_order_relaxed);
  EnabledFlag.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  Modes.store(0, std::memory_order_relaxed);
  EnabledFlag.store(false, std::memory_order_relaxed);
}

void Tracer::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Events.clear();
  OpenCount = 0;
  Epoch = std::chrono::steady_clock::now();
}

unsigned Tracer::openSpan(const char *Name, const char *Category) {
  ThreadTraceState &T = threadState();
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.Depth = T.Depth++;
  E.Tid = T.Tid;
  std::lock_guard<std::mutex> L(Mu);
  E.BeginUs = nowUs();
  unsigned Index = static_cast<unsigned>(Events.size());
  Events.push_back(std::move(E));
  ++OpenCount;
  return Index;
}

void Tracer::closeSpan(unsigned Index) {
  ThreadTraceState &T = threadState();
  if (T.Depth > 0)
    --T.Depth;
  std::lock_guard<std::mutex> L(Mu);
  // Guard against reset()/disable() between open and close.
  if (Index >= Events.size())
    return;
  TraceEvent &E = Events[Index];
  if (E.Closed)
    return;
  E.DurUs = nowUs() - E.BeginUs;
  E.Closed = true;
  if (OpenCount > 0)
    --OpenCount;
  if (humanEnabled())
    printHuman(E);
  // Without JSON buffering there is no reader of closed events: drop
  // them once nothing is open anywhere so a long human-mode run does
  // not grow without bound.
  if (!jsonEnabled() && OpenCount == 0)
    Events.clear();
}

void Tracer::addSpanArg(unsigned Index, TraceArg Arg) {
  std::lock_guard<std::mutex> L(Mu);
  if (Index < Events.size() && !Events[Index].Closed)
    Events[Index].Args.push_back(std::move(Arg));
}

void Tracer::printHuman(const TraceEvent &E) const {
  std::string Args;
  for (const TraceArg &A : E.Args) {
    Args += ' ';
    Args += A.Key;
    Args += '=';
    Args += A.Value;
  }
  std::fprintf(stderr, "[trace] %*s%s%s (%.1f us)\n", E.Depth * 2, "",
               E.Name.c_str(), Args.c_str(), E.DurUs);
}

std::string Tracer::json() const {
  std::lock_guard<std::mutex> L(Mu);
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  // Metadata events name the process and each thread track, so viewers
  // show "worker-N" instead of bare tids.
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"polyinject\"}}";
  First = false;
  std::vector<unsigned> Tids;
  for (const TraceEvent &E : Events)
    if (std::find(Tids.begin(), Tids.end(), E.Tid) == Tids.end())
      Tids.push_back(E.Tid);
  std::sort(Tids.begin(), Tids.end());
  for (unsigned Tid : Tids)
    Out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(Tid) + ",\"args\":{\"name\":\"worker-" +
           std::to_string(Tid) + "\"}}";
  for (const TraceEvent &E : Events) {
    if (!E.Closed)
      continue; // Still open; no duration yet.
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":\"" + json::escape(E.Name) + "\",\"cat\":\"" +
           json::escape(E.Category) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(E.Tid) + ",\"ts\":" + json::number(E.BeginUs) +
           ",\"dur\":" + json::number(E.DurUs);
    if (!E.Args.empty()) {
      Out += ",\"args\":{";
      bool FirstArg = true;
      for (const TraceArg &A : E.Args) {
        if (!FirstArg)
          Out += ',';
        FirstArg = false;
        Out += '"' + json::escape(A.Key) + "\":";
        if (A.IsString)
          Out += '"' + json::escape(A.Value) + '"';
        else
          Out += A.Value;
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

void Tracer::setAutoFlushPath(std::string Path) {
  std::lock_guard<std::mutex> L(Mu);
  AutoFlushPath = std::move(Path);
}

void Tracer::autoFlush() const {
  std::string Path;
  {
    std::lock_guard<std::mutex> L(Mu);
    Path = AutoFlushPath;
  }
  if (Path.empty())
    return;
  std::string Error;
  (void)writeJson(Path, Error);
}

bool Tracer::writeJson(const std::string &Path, std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << json() << '\n';
  Out.close();
  if (!Out) {
    Error = "error writing " + Path;
    return false;
  }
  return true;
}

Span &Span::addArg(const char *Key, std::string Value, bool IsString) {
  if (!Active)
    return *this;
  Tracer::get().addSpanArg(Index, {Key, std::move(Value), IsString});
  return *this;
}

Span &Span::arg(const char *Key, double Value) {
  return addArg(Key, json::number(Value), /*IsString=*/false);
}

namespace {

/// POLYINJECT_TRACE=1 turns on the human-readable trace at startup — the
/// alias for the historical ad-hoc scheduler stderr trace.
[[maybe_unused]] const bool TraceEnvInit = [] {
  const char *V = std::getenv("POLYINJECT_TRACE");
  if (V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0'))
    Tracer::get().enable(Tracer::Human);
  return true;
}();

} // namespace
