//===- obs/Json.cpp -------------------------------------------------------===//

#include "obs/Json.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace pinj::obs;
using namespace pinj::obs::json;

const Value *Value::find(const std::string &Key) const {
  if (Kind != Object)
    return nullptr;
  for (const auto &[Name, Member] : Members)
    if (Name == Key)
      return &Member;
  return nullptr;
}

const Value &Value::at(const std::string &Key) const {
  static const Value NullValue;
  const Value *V = find(Key);
  return V ? *V : NullValue;
}

namespace {

/// Recursive-descent parser over the input text.
class Parser {
public:
  Parser(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  std::optional<Value> run() {
    Value Result;
    if (!parseValue(Result, 0))
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON document");
    return Result;
  }

private:
  std::nullopt_t fail(const std::string &Message) {
    Error = Message + " at offset " + std::to_string(Pos);
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return false;
    Pos += Len;
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > MaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return false;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Out, Depth);
    if (C == '[')
      return parseArray(Out, Depth);
    if (C == '"') {
      Out.Kind = Value::String;
      return parseString(Out.Str);
    }
    if (C == 't') {
      if (!literal("true")) {
        fail("invalid literal");
        return false;
      }
      Out.Kind = Value::Bool;
      Out.BoolVal = true;
      return true;
    }
    if (C == 'f') {
      if (!literal("false")) {
        fail("invalid literal");
        return false;
      }
      Out.Kind = Value::Bool;
      Out.BoolVal = false;
      return true;
    }
    if (C == 'n') {
      if (!literal("null")) {
        fail("invalid literal");
        return false;
      }
      Out.Kind = Value::Null;
      return true;
    }
    return parseNumber(Out);
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start) {
      fail("expected a value");
      return false;
    }
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size()) {
      Pos = Start;
      fail("malformed number");
      return false;
    }
    // JSON numbers have no infinity; a literal that overflows double
    // ("1e999") would otherwise leak ±inf into consumers that assume
    // finite values (percentile math, regression thresholds).
    if (!std::isfinite(V)) {
      Pos = Start;
      fail("number out of range");
      return false;
    }
    Out.Kind = Value::Number;
    Out.Num = V;
    return true;
  }

  bool parseString(std::string &Out) {
    ++Pos; // Opening quote.
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20) {
        fail("unescaped control character in string");
        return false;
      }
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':  Out += '"';  break;
      case '\\': Out += '\\'; break;
      case '/':  Out += '/';  break;
      case 'b':  Out += '\b'; break;
      case 'f':  Out += '\f'; break;
      case 'n':  Out += '\n'; break;
      case 'r':  Out += '\r'; break;
      case 't':  Out += '\t'; break;
      case 'u': {
        if (Pos + 4 > Text.size()) {
          fail("truncated \\u escape");
          return false;
        }
        unsigned Code = 0;
        for (unsigned I = 0; I != 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else {
            fail("invalid \\u escape");
            return false;
          }
        }
        // UTF-8 encode the BMP code point (surrogate pairs are passed
        // through as two 3-byte sequences; good enough for validation).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        fail("invalid escape character");
        return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parseArray(Value &Out, unsigned Depth) {
    ++Pos; // '['.
    Out.Kind = Value::Array;
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      Value Item;
      if (!parseValue(Item, Depth + 1))
        return false;
      Out.Items.push_back(std::move(Item));
      skipSpace();
      if (Pos >= Text.size()) {
        fail("unterminated array");
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parseObject(Value &Out, unsigned Depth) {
    ++Pos; // '{'.
    Out.Kind = Value::Object;
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected a string key in object");
        return false;
      }
      std::string Key;
      if (!parseString(Key))
        return false;
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        fail("expected ':' in object");
        return false;
      }
      ++Pos;
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.Members.emplace_back(std::move(Key), std::move(Member));
      skipSpace();
      if (Pos >= Text.size()) {
        fail("unterminated object");
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  static constexpr unsigned MaxDepth = 256;
  const std::string &Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace

std::optional<Value> pinj::obs::json::parse(const std::string &Text,
                                            std::string &Error) {
  return Parser(Text, Error).run();
}

std::string pinj::obs::json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  escapeTo(Out, S);
  return Out;
}

void pinj::obs::json::escapeTo(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':  Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\b': Out += "\\b";  break;
    case '\f': Out += "\\f";  break;
    case '\n': Out += "\\n";  break;
    case '\r': Out += "\\r";  break;
    case '\t': Out += "\\t";  break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string pinj::obs::json::number(double V) {
  if (!std::isfinite(V))
    V = 0;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  // Trim trailing zeros (keep at least one digit after the point).
  std::string Out = Buf;
  size_t Dot = Out.find('.');
  if (Dot != std::string::npos) {
    size_t Last = Out.find_last_not_of('0');
    Out.erase(std::max(Last, Dot + 1) + 1);
  }
  return Out;
}
