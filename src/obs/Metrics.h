//===- obs/Metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters and histograms for the scheduling pipeline: ILP
/// solves/failures/nodes, simplex pivots, dependences computed,
/// scenarios enumerated, warps simulated, memory transactions, and
/// whatever future phases need. Counters are always on — one relaxed
/// 64-bit atomic add through a cached reference — so per-operator deltas
/// can be taken by diffing snapshots (`MetricsSnapshot::since`).
/// `reset()` zeroes values in place, keeping references obtained from
/// `counter()`/`histogram()` valid, so hot call sites may cache them in
/// function-local statics.
///
/// The registry is thread-safe: the batch compiler (service/) runs
/// pipeline workers concurrently, so counter increments are atomic,
/// histograms take a per-histogram mutex, and the name maps are guarded
/// by a registry mutex. Map nodes are stable, so cached references stay
/// valid for the process lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_METRICS_H
#define POLYINJECT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace pinj {
namespace obs {

/// A monotonically increasing 64-bit counter. Increments are relaxed
/// atomics: concurrent workers never lose counts, but cross-counter
/// consistency is only what snapshot() observes.
class Counter {
public:
  void inc() { Val.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t N) { Val.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> Val{0};
};

/// The diffable, mergeable summary of one histogram. Buckets use the
/// fixed quarter-octave scheme described on Histogram, so summaries from
/// different processes (or different runs, via the JSON sidecars) merge
/// exactly and percentile estimates survive aggregation.
struct HistogramSummary {
  std::uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  /// Per-bucket counts; empty when the source carried no bucket data
  /// (e.g. a summary parsed from an old sidecar). Size is
  /// Histogram::NumBuckets otherwise.
  std::vector<std::uint64_t> Buckets;

  double mean() const { return Count ? Sum / static_cast<double>(Count) : 0; }

  /// Estimates the \p Q-th percentile (Q in [0,100]) by walking the
  /// cumulative bucket counts and interpolating geometrically inside the
  /// selected bucket; the estimate is clamped to [Min, Max], so with a
  /// single sample every percentile is exact. Returns 0 when Count == 0
  /// or no bucket data is present. Relative error is bounded by the
  /// quarter-octave bucket width (~19%) and is typically far smaller.
  double percentile(double Q) const;

  /// Accumulates \p Other into this summary. Exact for count/sum/
  /// min/max/buckets: merging is associative and commutative, so
  /// fleet-level aggregation order does not matter.
  void merge(const HistogramSummary &Other);
};

/// Count/sum/min/max plus fixed log-scale buckets over nonnegative
/// samples. Bucket 0 holds samples < 1; bucket I >= 1 holds samples in
/// [2^((I-1)/4), 2^(I/4)) — quarter-octave resolution, so percentile
/// estimates carry at most ~19% relative error while summaries from any
/// two processes remain mergeable bucket-by-bucket (the scheme is fixed,
/// never adapted to data). 256 buckets span [1, 2^63.75), enough for
/// nanosecond-scale samples up to hours. Guarded by a per-histogram
/// mutex (observations are rare compared to counter increments).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 256;

  /// The bucket index \p Sample falls into.
  static unsigned bucketIndex(double Sample);
  /// Inclusive lower bound of bucket \p I (0 for bucket 0).
  static double bucketLowerBound(unsigned I);
  /// Exclusive upper bound of bucket \p I (1 for bucket 0); the last
  /// bucket reports its nominal bound although it also absorbs larger
  /// samples.
  static double bucketUpperBound(unsigned I);

  void observe(double Sample);

  std::uint64_t count() const { std::lock_guard<std::mutex> L(Mu); return N; }
  double sum() const { std::lock_guard<std::mutex> L(Mu); return Sum; }
  double min() const { std::lock_guard<std::mutex> L(Mu); return N ? Min : 0; }
  double max() const { std::lock_guard<std::mutex> L(Mu); return N ? Max : 0; }
  double mean() const {
    std::lock_guard<std::mutex> L(Mu);
    return N ? Sum / static_cast<double>(N) : 0;
  }
  /// Samples in bucket \p I.
  std::uint64_t bucket(unsigned I) const {
    std::lock_guard<std::mutex> L(Mu);
    return Buckets[I];
  }
  /// One consistent view of count/sum/min/max/buckets.
  HistogramSummary summary() const;
  void reset();

private:
  mutable std::mutex Mu;
  std::uint64_t N = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  std::uint64_t Buckets[NumBuckets] = {};
};

/// A point-in-time copy of every metric value; cheap to diff.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, HistogramSummary> Histograms;

  /// Counter \p Name's value, 0 when absent.
  std::uint64_t counter(const std::string &Name) const;
  /// Histogram \p Name's summary, or null when absent.
  const HistogramSummary *histogram(const std::string &Name) const;

  /// Per-entry difference: this minus \p Before (entries absent from
  /// Before count from zero). Histogram buckets diff element-wise;
  /// Min/Max keep this snapshot's values (extrema are not diffable).
  MetricsSnapshot since(const MetricsSnapshot &Before) const;

  /// {"counters":{...},"histograms":{"n":{"count":..,"sum":..,"min":..,
  /// "max":..,"p50":..,"p90":..,"p99":..,"buckets":{"12":3,...}}}}.
  /// Buckets are emitted sparsely (nonzero only) so sidecars stay small
  /// while polyinject-stats can still merge them exactly.
  std::string json() const;

  /// A compact aligned "name  value" text table of nonzero entries.
  std::string table() const;

  bool empty() const { return Counters.empty() && Histograms.empty(); }
};

/// The process-wide registry. Thread-safe: lookups/snapshot/reset take
/// the registry mutex; increments through returned references are
/// lock-free (counters) or per-histogram locked.
class MetricsRegistry {
public:
  static MetricsRegistry &get();

  /// The counter/histogram named \p Name, created on first use. The
  /// returned reference stays valid for the process lifetime.
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;

  /// Renders the current snapshot in the Prometheus text exposition
  /// format: counters as `pinj_<name> <value>` with TYPE comments,
  /// histograms as cumulative `_bucket{le="..."}` series plus `_sum` and
  /// `_count`. Metric names are sanitized ('.' and other non-identifier
  /// characters become '_'). Implemented in obs/Exposition.cpp.
  std::string renderExposition() const;

  /// Zeroes every value in place; references stay valid.
  void reset();

private:
  mutable std::mutex Mu;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Histogram> Histograms;
};

inline MetricsRegistry &metrics() { return MetricsRegistry::get(); }

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_METRICS_H
