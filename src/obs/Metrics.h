//===- obs/Metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters and histograms for the scheduling pipeline: ILP
/// solves/failures/nodes, simplex pivots, dependences computed,
/// scenarios enumerated, warps simulated, memory transactions, and
/// whatever future phases need. Counters are always on — one 64-bit add
/// through a cached reference — so per-operator deltas can be taken by
/// diffing snapshots (`MetricsSnapshot::since`). `reset()` zeroes values
/// in place, keeping references obtained from `counter()`/`histogram()`
/// valid, so hot call sites may cache them in function-local statics.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_METRICS_H
#define POLYINJECT_OBS_METRICS_H

#include <cstdint>
#include <map>
#include <string>

namespace pinj {
namespace obs {

/// A monotonically increasing 64-bit counter.
class Counter {
public:
  void inc() { ++Val; }
  void add(std::uint64_t N) { Val += N; }
  std::uint64_t value() const { return Val; }
  void reset() { Val = 0; }

private:
  std::uint64_t Val = 0;
};

/// Count/sum/min/max plus power-of-two buckets over nonnegative samples.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void observe(double Sample);

  std::uint64_t count() const { return N; }
  double sum() const { return Sum; }
  double min() const { return N ? Min : 0; }
  double max() const { return N ? Max : 0; }
  double mean() const { return N ? Sum / static_cast<double>(N) : 0; }
  /// Samples in bucket \p I; bucket I holds samples < 2^I not placed in
  /// an earlier bucket (bucket 0: samples < 1).
  std::uint64_t bucket(unsigned I) const { return Buckets[I]; }
  void reset();

private:
  std::uint64_t N = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  std::uint64_t Buckets[NumBuckets] = {};
};

/// The diffable summary of one histogram.
struct HistogramSummary {
  std::uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

/// A point-in-time copy of every metric value; cheap to diff.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, HistogramSummary> Histograms;

  /// Counter \p Name's value, 0 when absent.
  std::uint64_t counter(const std::string &Name) const;
  /// Histogram \p Name's summary, or null when absent.
  const HistogramSummary *histogram(const std::string &Name) const;

  /// Per-entry difference: this minus \p Before (entries absent from
  /// Before count from zero). Histogram Min/Max keep this snapshot's
  /// values (extrema are not diffable).
  MetricsSnapshot since(const MetricsSnapshot &Before) const;

  /// {"counters":{...},"histograms":{"n":{"count":..,"sum":..,...}}}.
  std::string json() const;

  /// A compact aligned "name  value" text table of nonzero entries.
  std::string table() const;

  bool empty() const { return Counters.empty() && Histograms.empty(); }
};

/// The process-wide registry.
class MetricsRegistry {
public:
  static MetricsRegistry &get();

  /// The counter/histogram named \p Name, created on first use. The
  /// returned reference stays valid for the process lifetime.
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every value in place; references stay valid.
  void reset();

private:
  std::map<std::string, Counter> Counters;
  std::map<std::string, Histogram> Histograms;
};

inline MetricsRegistry &metrics() { return MetricsRegistry::get(); }

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_METRICS_H
