//===- obs/Metrics.h - Process-wide metrics registry ------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named counters and histograms for the scheduling pipeline: ILP
/// solves/failures/nodes, simplex pivots, dependences computed,
/// scenarios enumerated, warps simulated, memory transactions, and
/// whatever future phases need. Counters are always on — one relaxed
/// 64-bit atomic add through a cached reference — so per-operator deltas
/// can be taken by diffing snapshots (`MetricsSnapshot::since`).
/// `reset()` zeroes values in place, keeping references obtained from
/// `counter()`/`histogram()` valid, so hot call sites may cache them in
/// function-local statics.
///
/// The registry is thread-safe: the batch compiler (service/) runs
/// pipeline workers concurrently, so counter increments are atomic,
/// histograms take a per-histogram mutex, and the name maps are guarded
/// by a registry mutex. Map nodes are stable, so cached references stay
/// valid for the process lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_METRICS_H
#define POLYINJECT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pinj {
namespace obs {

/// A monotonically increasing 64-bit counter. Increments are relaxed
/// atomics: concurrent workers never lose counts, but cross-counter
/// consistency is only what snapshot() observes.
class Counter {
public:
  void inc() { Val.fetch_add(1, std::memory_order_relaxed); }
  void add(std::uint64_t N) { Val.fetch_add(N, std::memory_order_relaxed); }
  std::uint64_t value() const { return Val.load(std::memory_order_relaxed); }
  void reset() { Val.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::uint64_t> Val{0};
};

/// The diffable summary of one histogram.
struct HistogramSummary {
  std::uint64_t Count = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
};

/// Count/sum/min/max plus power-of-two buckets over nonnegative samples.
/// Guarded by a per-histogram mutex (observations are rare compared to
/// counter increments).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 64;

  void observe(double Sample);

  std::uint64_t count() const { std::lock_guard<std::mutex> L(Mu); return N; }
  double sum() const { std::lock_guard<std::mutex> L(Mu); return Sum; }
  double min() const { std::lock_guard<std::mutex> L(Mu); return N ? Min : 0; }
  double max() const { std::lock_guard<std::mutex> L(Mu); return N ? Max : 0; }
  double mean() const {
    std::lock_guard<std::mutex> L(Mu);
    return N ? Sum / static_cast<double>(N) : 0;
  }
  /// Samples in bucket \p I; bucket I holds samples < 2^I not placed in
  /// an earlier bucket (bucket 0: samples < 1).
  std::uint64_t bucket(unsigned I) const {
    std::lock_guard<std::mutex> L(Mu);
    return Buckets[I];
  }
  /// One consistent view of count/sum/min/max.
  HistogramSummary summary() const;
  void reset();

private:
  mutable std::mutex Mu;
  std::uint64_t N = 0;
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  std::uint64_t Buckets[NumBuckets] = {};
};

/// A point-in-time copy of every metric value; cheap to diff.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> Counters;
  std::map<std::string, HistogramSummary> Histograms;

  /// Counter \p Name's value, 0 when absent.
  std::uint64_t counter(const std::string &Name) const;
  /// Histogram \p Name's summary, or null when absent.
  const HistogramSummary *histogram(const std::string &Name) const;

  /// Per-entry difference: this minus \p Before (entries absent from
  /// Before count from zero). Histogram Min/Max keep this snapshot's
  /// values (extrema are not diffable).
  MetricsSnapshot since(const MetricsSnapshot &Before) const;

  /// {"counters":{...},"histograms":{"n":{"count":..,"sum":..,...}}}.
  std::string json() const;

  /// A compact aligned "name  value" text table of nonzero entries.
  std::string table() const;

  bool empty() const { return Counters.empty() && Histograms.empty(); }
};

/// The process-wide registry. Thread-safe: lookups/snapshot/reset take
/// the registry mutex; increments through returned references are
/// lock-free (counters) or per-histogram locked.
class MetricsRegistry {
public:
  static MetricsRegistry &get();

  /// The counter/histogram named \p Name, created on first use. The
  /// returned reference stays valid for the process lifetime.
  Counter &counter(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every value in place; references stay valid.
  void reset();

private:
  mutable std::mutex Mu;
  std::map<std::string, Counter> Counters;
  std::map<std::string, Histogram> Histograms;
};

inline MetricsRegistry &metrics() { return MetricsRegistry::get(); }

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_METRICS_H
