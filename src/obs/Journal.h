//===- obs/Journal.h - Request-scoped structured event journal --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured event journal: an append-only stream of small typed
/// records ("solve finished", "dimension accepted", "cache hit",
/// "degradation taken", "surrogate ranked the space") that explains
/// *why* a compilation came out the way it did, where the tracer only
/// shows *where time went* and the metrics registry only shows *how
/// much in total*.
///
/// Every record carries a stable request id. The id is generated once
/// per operator compilation — at `runOperator` entry, or earlier by the
/// batch compiler at submission — and threaded through scheduler,
/// influence-tree and LP layers via a thread-local request scope, so
/// deep solver code can journal without widening any call signature.
/// The same id lands in the report sidecar and the Chrome trace, making
/// the three artifacts joinable offline (tools/polyinject-stats).
///
/// Cost model: like the tracer, a disabled journal costs one relaxed
/// atomic load per would-be event (`Journal::fastEnabled`). Enabled, an
/// event is one mutex-guarded ring-buffer push plus, when a file sink is
/// attached, one buffered JSONL line write. Events are kept in a bounded
/// ring (oldest dropped, drop count kept) so an always-on journal never
/// grows without bound in a long-lived service.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_JOURNAL_H
#define POLYINJECT_OBS_JOURNAL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace pinj {
namespace obs {

/// One key/value payload field of a journal record. Value is stored
/// rendered; IsString selects quoting in the JSONL form (mirrors
/// TraceArg).
struct JournalField {
  std::string Key;
  std::string Value;
  bool IsString = true;
};

/// One journal record. Serialized as a single JSONL object:
/// {"ts_us":..,"request_id":"..","type":"..",<fields>}.
struct JournalRecord {
  double TsUs = 0;       ///< Relative to the journal epoch.
  std::string RequestId; ///< Empty only for request-less records.
  std::string Type;      ///< Stable event type name ("solve_end", ...).
  std::vector<JournalField> Fields;

  std::string jsonl() const;
  /// Appends the JSONL form to \p Out without allocating a temporary
  /// (the emit hot path serializes into one reusable buffer).
  void renderTo(std::string &Out) const;
};

/// The process-wide journal; all state behind `Journal::get()`, guarded
/// by an internal mutex (the batch compiler journals from concurrent
/// workers).
class Journal {
public:
  static constexpr std::size_t DefaultRingCapacity = 65536;

  static Journal &get();

  /// Turns collection on with the given in-memory ring capacity.
  void enable(std::size_t RingCapacity = DefaultRingCapacity);
  /// Turns collection off (ring contents kept until reset()).
  void disable();
  bool enabled() const {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// The single branch the disabled fast path takes.
  static bool fastEnabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Attaches a JSONL file sink: every record emitted from now on is
  /// appended to \p Path (truncated first). \returns false and sets
  /// \p Error when the file cannot be opened. Implies nothing about
  /// enable(); callers typically do both.
  bool openFile(const std::string &Path, std::string &Error);
  /// Flushes and detaches the file sink (no-op when none is attached).
  void closeFile();
  /// Flushes the file sink if one is attached (degradation paths call
  /// this so truncated runs still leave a readable journal).
  void flushFile();

  /// Drops ring contents and the drop counter and restarts the epoch.
  void reset();

  /// Stamps \p R with the epoch-relative timestamp and appends it to
  /// the ring (and file sink, when attached). Thread-safe.
  void emit(JournalRecord R);

  /// A copy of the buffered records, oldest first.
  std::vector<JournalRecord> snapshot() const;
  /// Records evicted from the ring since the last reset().
  std::uint64_t dropped() const;
  std::size_t size() const;

private:
  Journal();

  double nowUs() const;

  static inline std::atomic<bool> EnabledFlag{false};
  mutable std::mutex Mu;
  std::size_t Capacity = DefaultRingCapacity;
  std::deque<JournalRecord> Ring;
  std::uint64_t Dropped = 0;
  std::chrono::steady_clock::time_point Epoch;
  std::ofstream File;
  bool FileOpen = false;
  std::string LineBuf; ///< Reused per emit; guarded by Mu.
};

inline Journal &journal() { return Journal::get(); }

//===----------------------------------------------------------------------===//
// Request identity
//===----------------------------------------------------------------------===//

/// Allocates a fresh process-unique request id: a fixed per-process
/// token plus a sequence number, so ids from different processes of a
/// fleet do not collide when journals are aggregated offline.
std::string nextRequestId();

/// The request id installed on this thread, or "" outside any request.
const std::string &currentRequestId();

/// RAII: installs \p Id as this thread's current request id, restoring
/// the previous id (usually "") on destruction. The pipeline opens one
/// per operator; the batch compiler opens one per job around the worker
/// call, so every layer below sees the same id.
class RequestScope {
public:
  explicit RequestScope(std::string Id);
  ~RequestScope();
  RequestScope(const RequestScope &) = delete;
  RequestScope &operator=(const RequestScope &) = delete;

  const std::string &id() const;

private:
  std::string Previous;
};

//===----------------------------------------------------------------------===//
// Event builder
//===----------------------------------------------------------------------===//

/// Fluent builder for one journal record. Construction captures the
/// current request id; destruction emits. When the journal is disabled
/// the constructor is a single branch and field() calls are no-ops:
///
///   obs::JournalEvent("solve_end")
///       .field("nodes", Nodes).field("status", "optimal");
class JournalEvent {
public:
  explicit JournalEvent(const char *Type) {
    if (!Journal::fastEnabled())
      return;
    Active = true;
    R.Type = Type;
    R.RequestId = currentRequestId();
    R.Fields.reserve(6);
  }
  ~JournalEvent() {
    if (Active)
      Journal::get().emit(std::move(R));
  }
  JournalEvent(const JournalEvent &) = delete;
  JournalEvent &operator=(const JournalEvent &) = delete;

  bool active() const { return Active; }

  JournalEvent &field(const char *Key, const std::string &Value) {
    return add(Key, Value, /*IsString=*/true);
  }
  JournalEvent &field(const char *Key, const char *Value) {
    return add(Key, Value, /*IsString=*/true);
  }
  JournalEvent &field(const char *Key, bool Value) {
    return add(Key, Value ? "true" : "false", /*IsString=*/false);
  }
  JournalEvent &field(const char *Key, double Value);
  JournalEvent &field(const char *Key, long long Value) {
    return add(Key, std::to_string(Value), /*IsString=*/false);
  }
  JournalEvent &field(const char *Key, unsigned long long Value) {
    return add(Key, std::to_string(Value), /*IsString=*/false);
  }
  JournalEvent &field(const char *Key, int Value) {
    return field(Key, static_cast<long long>(Value));
  }
  JournalEvent &field(const char *Key, long Value) {
    return field(Key, static_cast<long long>(Value));
  }
  JournalEvent &field(const char *Key, unsigned Value) {
    return field(Key, static_cast<unsigned long long>(Value));
  }
  JournalEvent &field(const char *Key, unsigned long Value) {
    return field(Key, static_cast<unsigned long long>(Value));
  }

private:
  JournalEvent &add(const char *Key, std::string Value, bool IsString) {
    if (Active)
      R.Fields.push_back({Key, std::move(Value), IsString});
    return *this;
  }

  bool Active = false;
  JournalRecord R;
};

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_JOURNAL_H
