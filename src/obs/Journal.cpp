//===- obs/Journal.cpp - Request-scoped structured event journal ----------===//

#include "obs/Journal.h"

#include "obs/Json.h"

#include <chrono>
#include <random>

namespace pinj {
namespace obs {

//===----------------------------------------------------------------------===//
// JournalRecord
//===----------------------------------------------------------------------===//

std::string JournalRecord::jsonl() const {
  std::string Out;
  Out.reserve(96 + Fields.size() * 24);
  renderTo(Out);
  return Out;
}

void JournalRecord::renderTo(std::string &Out) const {
  Out += "{\"ts_us\":";
  Out += json::number(TsUs);
  Out += ",\"request_id\":\"";
  json::escapeTo(Out, RequestId);
  Out += "\",\"type\":\"";
  json::escapeTo(Out, Type);
  Out += '"';
  for (const JournalField &F : Fields) {
    Out += ",\"";
    json::escapeTo(Out, F.Key);
    Out += "\":";
    if (F.IsString) {
      Out += '"';
      json::escapeTo(Out, F.Value);
      Out += '"';
    } else {
      Out += F.Value;
    }
  }
  Out += '}';
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

Journal::Journal() : Epoch(std::chrono::steady_clock::now()) {}

Journal &Journal::get() {
  static Journal J;
  return J;
}

double Journal::nowUs() const {
  auto Delta = std::chrono::steady_clock::now() - Epoch;
  return std::chrono::duration<double, std::micro>(Delta).count();
}

void Journal::enable(std::size_t RingCapacity) {
  std::lock_guard<std::mutex> Lock(Mu);
  Capacity = RingCapacity == 0 ? 1 : RingCapacity;
  while (Ring.size() > Capacity) {
    Ring.pop_front();
    ++Dropped;
  }
  EnabledFlag.store(true, std::memory_order_relaxed);
}

void Journal::disable() {
  EnabledFlag.store(false, std::memory_order_relaxed);
}

bool Journal::openFile(const std::string &Path, std::string &Error) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (FileOpen) {
    File.flush();
    File.close();
    FileOpen = false;
  }
  File.open(Path, std::ios::out | std::ios::trunc);
  if (!File) {
    Error = "cannot open journal file: " + Path;
    return false;
  }
  FileOpen = true;
  return true;
}

void Journal::closeFile() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (!FileOpen)
    return;
  File.flush();
  File.close();
  FileOpen = false;
}

void Journal::flushFile() {
  std::lock_guard<std::mutex> Lock(Mu);
  if (FileOpen)
    File.flush();
}

void Journal::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Dropped = 0;
  Epoch = std::chrono::steady_clock::now();
}

void Journal::emit(JournalRecord R) {
  if (!enabled())
    return;
  R.TsUs = nowUs();
  std::lock_guard<std::mutex> Lock(Mu);
  if (FileOpen) {
    LineBuf.clear();
    R.renderTo(LineBuf);
    LineBuf += '\n';
    File.write(LineBuf.data(),
               static_cast<std::streamsize>(LineBuf.size()));
  }
  Ring.push_back(std::move(R));
  while (Ring.size() > Capacity) {
    Ring.pop_front();
    ++Dropped;
  }
}

std::vector<JournalRecord> Journal::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return std::vector<JournalRecord>(Ring.begin(), Ring.end());
}

std::uint64_t Journal::dropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::size_t Journal::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Ring.size();
}

//===----------------------------------------------------------------------===//
// Request identity
//===----------------------------------------------------------------------===//

namespace {

// Fixed per-process token so ids from different fleet processes do not
// collide when journals are aggregated offline. Eight hex digits drawn
// once from the system entropy source.
std::string processToken() {
  static const std::string Token = [] {
    std::random_device Rd;
    std::uint32_t Bits = (static_cast<std::uint32_t>(Rd()) << 16) ^ Rd();
    char Buf[9];
    std::snprintf(Buf, sizeof(Buf), "%08x", Bits);
    return std::string(Buf);
  }();
  return Token;
}

thread_local std::string CurrentRequestId;

} // namespace

std::string nextRequestId() {
  static std::atomic<std::uint64_t> Seq{0};
  std::uint64_t N = Seq.fetch_add(1, std::memory_order_relaxed);
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%08llx",
                static_cast<unsigned long long>(N));
  return "r" + processToken() + "-" + Buf;
}

const std::string &currentRequestId() { return CurrentRequestId; }

RequestScope::RequestScope(std::string Id)
    : Previous(std::move(CurrentRequestId)) {
  CurrentRequestId = std::move(Id);
}

RequestScope::~RequestScope() { CurrentRequestId = std::move(Previous); }

const std::string &RequestScope::id() const { return CurrentRequestId; }

//===----------------------------------------------------------------------===//
// JournalEvent
//===----------------------------------------------------------------------===//

JournalEvent &JournalEvent::field(const char *Key, double Value) {
  return add(Key, json::number(Value), /*IsString=*/false);
}

} // namespace obs
} // namespace pinj
