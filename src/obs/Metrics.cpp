//===- obs/Metrics.cpp ----------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace pinj;
using namespace pinj::obs;

void Histogram::observe(double Sample) {
  std::lock_guard<std::mutex> L(Mu);
  if (N == 0) {
    Min = Max = Sample;
  } else {
    Min = std::min(Min, Sample);
    Max = std::max(Max, Sample);
  }
  ++N;
  Sum += Sample;
  unsigned Bucket = 0;
  if (Sample >= 1) {
    double Bound = 1;
    while (Bucket + 1 < NumBuckets && Sample >= Bound) {
      ++Bucket;
      Bound *= 2;
    }
  }
  ++Buckets[Bucket];
}

HistogramSummary Histogram::summary() const {
  std::lock_guard<std::mutex> L(Mu);
  return {N, Sum, N ? Min : 0, N ? Max : 0};
}

void Histogram::reset() {
  std::lock_guard<std::mutex> L(Mu);
  N = 0;
  Sum = Min = Max = 0;
  for (std::uint64_t &B : Buckets)
    B = 0;
}

std::uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

const HistogramSummary *
MetricsSnapshot::histogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : &It->second;
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot &Before) const {
  MetricsSnapshot Delta;
  for (const auto &[Name, Value] : Counters) {
    std::uint64_t Base = Before.counter(Name);
    Delta.Counters[Name] = Value >= Base ? Value - Base : 0;
  }
  for (const auto &[Name, Summary] : Histograms) {
    HistogramSummary D = Summary;
    if (const HistogramSummary *Base = Before.histogram(Name)) {
      D.Count = Summary.Count >= Base->Count ? Summary.Count - Base->Count : 0;
      D.Sum = Summary.Sum - Base->Sum;
    }
    Delta.Histograms[Name] = D;
  }
  return Delta;
}

std::string MetricsSnapshot::json() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(Name) + "\":" + std::to_string(Value);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(Name) +
           "\":{\"count\":" + std::to_string(H.Count) +
           ",\"sum\":" + json::number(H.Sum) +
           ",\"min\":" + json::number(H.Min) +
           ",\"max\":" + json::number(H.Max) + '}';
  }
  Out += "}}";
  return Out;
}

std::string MetricsSnapshot::table() const {
  size_t Width = 0;
  for (const auto &[Name, Value] : Counters)
    if (Value != 0)
      Width = std::max(Width, Name.size());
  for (const auto &[Name, H] : Histograms)
    if (H.Count != 0)
      Width = std::max(Width, Name.size());

  std::string Out;
  char Buf[160];
  for (const auto &[Name, Value] : Counters) {
    if (Value == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%-*s %12llu\n",
                  static_cast<int>(Width), Name.c_str(),
                  static_cast<unsigned long long>(Value));
    Out += Buf;
  }
  for (const auto &[Name, H] : Histograms) {
    if (H.Count == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "%-*s %12llu  (sum %.0f, min %.0f, max %.0f, mean %.1f)\n",
                  static_cast<int>(Width), Name.c_str(),
                  static_cast<unsigned long long>(H.Count), H.Sum, H.Min,
                  H.Max, H.Count ? H.Sum / static_cast<double>(H.Count) : 0.0);
    Out += Buf;
  }
  return Out;
}

MetricsRegistry &MetricsRegistry::get() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  return Counters[Name];
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  return Histograms[Name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C.value();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = H.summary();
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, H] : Histograms)
    H.reset();
}
