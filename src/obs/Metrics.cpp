//===- obs/Metrics.cpp ----------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace pinj;
using namespace pinj::obs;

double HistogramSummary::percentile(double Q) const {
  if (Count == 0 || Buckets.empty())
    return 0;
  Q = std::clamp(Q, 0.0, 100.0);
  // Nearest-rank target in [1, Count].
  double Target = Q / 100.0 * static_cast<double>(Count);
  if (Target < 1)
    Target = 1;
  std::uint64_t Cum = 0;
  for (unsigned I = 0; I < Buckets.size(); ++I) {
    if (Buckets[I] == 0)
      continue;
    std::uint64_t Prev = Cum;
    Cum += Buckets[I];
    if (static_cast<double>(Cum) < Target)
      continue;
    double Frac = (Target - static_cast<double>(Prev)) /
                  static_cast<double>(Buckets[I]);
    double Lo = Histogram::bucketLowerBound(I);
    double Hi = Histogram::bucketUpperBound(I);
    // Linear interpolation in the [0,1) bucket, geometric in the log
    // buckets (constant relative step matches the bucket scheme).
    double V = I == 0 ? Frac * Hi : Lo * std::pow(Hi / Lo, Frac);
    return std::clamp(V, Min, Max);
  }
  return Max;
}

void HistogramSummary::merge(const HistogramSummary &Other) {
  if (Other.Count == 0)
    return;
  if (Count == 0) {
    Min = Other.Min;
    Max = Other.Max;
  } else {
    Min = std::min(Min, Other.Min);
    Max = std::max(Max, Other.Max);
  }
  Count += Other.Count;
  Sum += Other.Sum;
  if (!Other.Buckets.empty()) {
    if (Buckets.size() < Other.Buckets.size())
      Buckets.resize(Other.Buckets.size(), 0);
    for (std::size_t I = 0; I < Other.Buckets.size(); ++I)
      Buckets[I] += Other.Buckets[I];
  }
}

unsigned Histogram::bucketIndex(double Sample) {
  if (!(Sample >= 1))
    return 0;
  int I = static_cast<int>(std::floor(std::log2(Sample) * 4.0)) + 1;
  if (I < 1)
    I = 1;
  if (I >= static_cast<int>(NumBuckets))
    I = NumBuckets - 1;
  return static_cast<unsigned>(I);
}

double Histogram::bucketLowerBound(unsigned I) {
  return I == 0 ? 0.0 : std::exp2((I - 1) / 4.0);
}

double Histogram::bucketUpperBound(unsigned I) {
  return I == 0 ? 1.0 : std::exp2(I / 4.0);
}

void Histogram::observe(double Sample) {
  std::lock_guard<std::mutex> L(Mu);
  if (N == 0) {
    Min = Max = Sample;
  } else {
    Min = std::min(Min, Sample);
    Max = std::max(Max, Sample);
  }
  ++N;
  Sum += Sample;
  ++Buckets[bucketIndex(Sample)];
}

HistogramSummary Histogram::summary() const {
  std::lock_guard<std::mutex> L(Mu);
  HistogramSummary S{N, Sum, N ? Min : 0, N ? Max : 0, {}};
  S.Buckets.assign(Buckets, Buckets + NumBuckets);
  return S;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> L(Mu);
  N = 0;
  Sum = Min = Max = 0;
  for (std::uint64_t &B : Buckets)
    B = 0;
}

std::uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

const HistogramSummary *
MetricsSnapshot::histogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : &It->second;
}

MetricsSnapshot MetricsSnapshot::since(const MetricsSnapshot &Before) const {
  MetricsSnapshot Delta;
  for (const auto &[Name, Value] : Counters) {
    std::uint64_t Base = Before.counter(Name);
    Delta.Counters[Name] = Value >= Base ? Value - Base : 0;
  }
  for (const auto &[Name, Summary] : Histograms) {
    HistogramSummary D = Summary;
    if (const HistogramSummary *Base = Before.histogram(Name)) {
      D.Count = Summary.Count >= Base->Count ? Summary.Count - Base->Count : 0;
      D.Sum = Summary.Sum - Base->Sum;
      for (std::size_t I = 0;
           I < D.Buckets.size() && I < Base->Buckets.size(); ++I)
        D.Buckets[I] = D.Buckets[I] >= Base->Buckets[I]
                           ? D.Buckets[I] - Base->Buckets[I]
                           : 0;
    }
    Delta.Histograms[Name] = D;
  }
  return Delta;
}

std::string MetricsSnapshot::json() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(Name) + "\":" + std::to_string(Value);
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    Out += '"' + json::escape(Name) +
           "\":{\"count\":" + std::to_string(H.Count) +
           ",\"sum\":" + json::number(H.Sum) +
           ",\"min\":" + json::number(H.Min) +
           ",\"max\":" + json::number(H.Max) +
           ",\"p50\":" + json::number(H.percentile(50)) +
           ",\"p90\":" + json::number(H.percentile(90)) +
           ",\"p99\":" + json::number(H.percentile(99)) +
           ",\"buckets\":{";
    bool FirstBucket = true;
    for (std::size_t I = 0; I < H.Buckets.size(); ++I) {
      if (H.Buckets[I] == 0)
        continue;
      if (!FirstBucket)
        Out += ',';
      FirstBucket = false;
      Out += '"' + std::to_string(I) +
             "\":" + std::to_string(H.Buckets[I]);
    }
    Out += "}}";
  }
  Out += "}}";
  return Out;
}

std::string MetricsSnapshot::table() const {
  size_t Width = 0;
  for (const auto &[Name, Value] : Counters)
    if (Value != 0)
      Width = std::max(Width, Name.size());
  for (const auto &[Name, H] : Histograms)
    if (H.Count != 0)
      Width = std::max(Width, Name.size());

  std::string Out;
  char Buf[160];
  for (const auto &[Name, Value] : Counters) {
    if (Value == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf), "%-*s %12llu\n",
                  static_cast<int>(Width), Name.c_str(),
                  static_cast<unsigned long long>(Value));
    Out += Buf;
  }
  for (const auto &[Name, H] : Histograms) {
    if (H.Count == 0)
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "%-*s %12llu  (sum %.0f, min %.0f, max %.0f, mean %.1f)\n",
                  static_cast<int>(Width), Name.c_str(),
                  static_cast<unsigned long long>(H.Count), H.Sum, H.Min,
                  H.Max, H.Count ? H.Sum / static_cast<double>(H.Count) : 0.0);
    Out += Buf;
  }
  return Out;
}

MetricsRegistry &MetricsRegistry::get() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  return Counters[Name];
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  return Histograms[Name];
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> L(Mu);
  MetricsSnapshot S;
  for (const auto &[Name, C] : Counters)
    S.Counters[Name] = C.value();
  for (const auto &[Name, H] : Histograms)
    S.Histograms[Name] = H.summary();
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &[Name, C] : Counters)
    C.reset();
  for (auto &[Name, H] : Histograms)
    H.reset();
}
