//===- obs/Report.cpp -----------------------------------------------------===//

#include "obs/Report.h"

#include "obs/Json.h"

#include <fstream>

using namespace pinj;
using namespace pinj::obs;

namespace {

void appendConfig(std::string &Out, const ConfigRecord &C) {
  Out += "{\"name\":\"" + json::escape(C.Name) + '"';
  Out += ",\"time_us\":" + json::number(C.TimeUs);
  Out += ",\"transactions\":" + json::number(C.Transactions);
  Out += ",\"transaction_bytes\":" + json::number(C.TransactionBytes);
  Out += ",\"useful_bytes\":" + json::number(C.UsefulBytes);
  Out += ",\"metrics\":" + C.Metrics.json();
  Out += '}';
}

} // namespace

std::string obs::renderOperatorRecord(const OperatorRecord &Op) {
  std::string Out;
  Out += "{\"name\":\"" + json::escape(Op.Name) + '"';
  Out += ",\"request_id\":\"" + json::escape(Op.RequestId) + '"';
  Out += ",\"influenced\":";
  Out += Op.Influenced ? "true" : "false";
  Out += ",\"vec_eligible\":";
  Out += Op.VecEligible ? "true" : "false";
  Out += ",\"validated\":";
  Out += Op.Validated ? "true" : "false";
  Out += ",\"cache_hit\":";
  Out += Op.CacheHit ? "true" : "false";
  Out += ",\"tuned\":";
  Out += Op.Tuned ? "true" : "false";
  if (Op.Tuned) {
    Out += ",\"tuning\":{\"encoding\":\"" + json::escape(Op.TuneEncoding) +
           '"';
    Out += ",\"predicted_us\":" + json::number(Op.TunePredictedUs);
    Out += ",\"from_db\":";
    Out += Op.TuneFromDb ? "true" : "false";
    Out += ",\"strategy\":\"" + json::escape(Op.TuneStrategy) + "\"}";
  }
  Out += ",\"configs\":[";
  bool FirstCfg = true;
  for (const ConfigRecord &C : Op.Configs) {
    if (!FirstCfg)
      Out += ',';
    FirstCfg = false;
    appendConfig(Out, C);
  }
  Out += "],\"degradations\":[";
  bool FirstDeg = true;
  for (const DegradationRecord &D : Op.Degradations) {
    if (!FirstDeg)
      Out += ',';
    FirstDeg = false;
    Out += "{\"config\":\"" + json::escape(D.Config) + '"';
    Out += ",\"site\":\"" + json::escape(D.Site) + '"';
    Out += ",\"code\":\"" + json::escape(D.Code) + '"';
    Out += ",\"detail\":\"" + json::escape(D.Detail) + "\"}";
  }
  Out += "],\"metrics\":" + Op.Metrics.json();
  Out += '}';
  return Out;
}

std::string ReportSink::json() const {
  std::string Out = "{\"operators\":[";
  bool FirstOp = true;
  for (const OperatorRecord &Op : Operators) {
    if (!FirstOp)
      Out += ',';
    FirstOp = false;
    Out += renderOperatorRecord(Op);
  }
  Out += "]}";
  return Out;
}

bool ReportSink::writeJson(const std::string &Path,
                           std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << json() << '\n';
  Out.close();
  if (!Out) {
    Error = "error writing " + Path;
    return false;
  }
  return true;
}
