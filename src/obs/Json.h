//===- obs/Json.h - Minimal JSON value, parser and writer help --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON layer for the observability subsystem:
/// enough of a recursive-descent parser to validate the Chrome trace
/// files and metrics sidecars this project emits (and to inspect them in
/// tests), plus the string-escaping helper the writers share. Not a
/// general-purpose JSON library; numbers are doubles, objects preserve
/// member order.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_JSON_H
#define POLYINJECT_OBS_JSON_H

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pinj {
namespace obs {
namespace json {

/// One parsed JSON value.
struct Value {
  enum KindTy { Null, Bool, Number, String, Array, Object };

  KindTy Kind = Null;
  bool BoolVal = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Items;                            ///< Array elements.
  std::vector<std::pair<std::string, Value>> Members;  ///< Object members.

  bool isNull() const { return Kind == Null; }
  bool isBool() const { return Kind == Bool; }
  bool isNumber() const { return Kind == Number; }
  bool isString() const { return Kind == String; }
  bool isArray() const { return Kind == Array; }
  bool isObject() const { return Kind == Object; }

  /// Member \p Key of an object, or null when absent / not an object.
  const Value *find(const std::string &Key) const;
  /// Like find, but returns a Null-kind sentinel instead of nullptr.
  const Value &at(const std::string &Key) const;
};

/// Parses \p Text as one JSON document (trailing garbage is an error).
/// \returns nullopt and sets \p Error on malformed input.
std::optional<Value> parse(const std::string &Text, std::string &Error);

/// Escapes \p S for inclusion inside a JSON string literal (no quotes).
std::string escape(const std::string &S);

/// Appends the escaped form of \p S to \p Out without allocating a
/// temporary (the journal emits thousands of records per second; its
/// serializer builds each line with this).
void escapeTo(std::string &Out, const std::string &S);

/// Renders a double the way the writers in this subsystem do: fixed
/// notation, trimmed, never "nan"/"inf" (clamped to 0).
std::string number(double V);

} // namespace json
} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_JSON_H
