//===- obs/Report.h - Per-operator metrics sidecar --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects one record per operator run through the pipeline and emits a
/// JSON metrics sidecar — the telemetry stream for regression tracking
/// and for learned-autotuning work that needs per-schedule measurements.
/// The sink stores its own plain records (filled by pipeline code) so
/// the observability layer stays below every other library.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_REPORT_H
#define POLYINJECT_OBS_REPORT_H

#include "obs/Metrics.h"

#include <vector>

namespace pinj {
namespace obs {

/// Measurements of one configuration of one operator.
struct ConfigRecord {
  std::string Name; ///< "isl", "novec", "infl", "tvm".
  double TimeUs = 0;
  double Transactions = 0;
  double TransactionBytes = 0;
  double UsefulBytes = 0;
  MetricsSnapshot Metrics; ///< Delta attributed to this configuration.
};

/// One recorded degradation: a configuration that failed and what the
/// pipeline substituted (see pipeline/Pipeline.h for the ladder).
struct DegradationRecord {
  std::string Config; ///< "isl", "novec", "infl", "tvm", "validate", ...
  std::string Site;   ///< Originating site ("lp.simplex", a fail-point).
  std::string Code;   ///< Stable status code name ("budget_exceeded").
  std::string Detail; ///< Human-readable explanation.
};

/// One operator's sidecar entry.
struct OperatorRecord {
  std::string Name;
  /// Stable request id of the compilation (obs/Journal.h); the same id
  /// appears on every journal event and Chrome trace span of this
  /// operator, making sidecar, journal, and trace joinable offline.
  std::string RequestId;
  bool Influenced = false;
  bool VecEligible = false;
  bool Validated = false;
  /// Scheduling was skipped because the compilation cache held this
  /// operator (service/Cache.h).
  bool CacheHit = false;
  /// An autotuning hook chose this operator's pipeline options; the
  /// Tune* fields record the winning candidate (tune/Autotuner.h).
  bool Tuned = false;
  std::string TuneEncoding;  ///< Canonical candidate, or "baseline".
  double TunePredictedUs = 0;
  bool TuneFromDb = false;   ///< Replayed from the tuning database.
  std::string TuneStrategy;  ///< "exhaustive", "greedy", "anneal".
  std::vector<ConfigRecord> Configs;
  std::vector<DegradationRecord> Degradations;
  MetricsSnapshot Metrics; ///< Whole-operator delta.
};

/// Serializes one operator record as a JSON object — the ONLY emitter
/// of the per-operator sidecar fields (name/request_id/cache_hit/tuned/
/// tuning/configs/degradations/metrics). ReportSink::json() and any
/// single-operator output path go through here, so the schema cannot
/// drift between writers.
std::string renderOperatorRecord(const OperatorRecord &Op);

/// Accumulates operator records and serializes them as one JSON
/// document: {"operators":[...]}.
class ReportSink {
public:
  void add(OperatorRecord Record) {
    Operators.push_back(std::move(Record));
  }

  const std::vector<OperatorRecord> &operators() const { return Operators; }
  bool empty() const { return Operators.empty(); }
  void clear() { Operators.clear(); }

  std::string json() const;

  /// Writes json() to \p Path. \returns false and sets \p Error on I/O
  /// failure.
  bool writeJson(const std::string &Path, std::string &Error) const;

private:
  std::vector<OperatorRecord> Operators;
};

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_REPORT_H
