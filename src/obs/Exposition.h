//===- obs/Exposition.h - Prometheus-style metrics exposition ---*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text exposition of the metrics registry in the Prometheus format, and
/// a periodic snapshot writer so a long-lived compilation service can be
/// scraped (by pointing the scraper at a file refreshed every interval)
/// instead of dumping metrics only at process exit.
///
/// All metric names get the `pinj_` fleet prefix and are sanitized to
/// the exposition charset ('.' becomes '_'). Counters render as a single
/// sample with a `# TYPE ... counter` header; histograms render as the
/// conventional cumulative `_bucket{le="..."}` series plus `_sum` and
/// `_count`, using the fixed quarter-octave bounds from obs::Histogram
/// so scraped series are mergeable across processes.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_OBS_EXPOSITION_H
#define POLYINJECT_OBS_EXPOSITION_H

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace pinj {
namespace obs {

struct MetricsSnapshot;

/// Renders \p S in the Prometheus text exposition format (see
/// MetricsRegistry::renderExposition for the convenience entry point).
std::string renderExposition(const MetricsSnapshot &S);

/// Sanitizes \p Name to a valid exposition metric name: `pinj_` prefix,
/// every character outside [a-zA-Z0-9_] replaced by '_'.
std::string expositionName(const std::string &Name);

/// Background thread that rewrites a file with the current exposition
/// every interval (and once more on stop, so short runs still leave a
/// final snapshot). The write is rename-atomic: scrapers never observe a
/// half-written file.
class ExpositionWriter {
public:
  ExpositionWriter() = default;
  ~ExpositionWriter() { stop(); }
  ExpositionWriter(const ExpositionWriter &) = delete;
  ExpositionWriter &operator=(const ExpositionWriter &) = delete;

  /// Starts the writer thread; no-op if already running.
  void start(std::string Path, unsigned IntervalMs);
  /// Stops the thread after one final write. Safe to call repeatedly.
  void stop();
  bool running() const { return Running; }

private:
  void writeOnce() const;

  std::string Path;
  unsigned IntervalMs = 0;
  bool Running = false;
  bool StopRequested = false;
  std::mutex Mu;
  std::condition_variable Cv;
  std::thread Thread;
};

} // namespace obs
} // namespace pinj

#endif // POLYINJECT_OBS_EXPOSITION_H
