//===- obs/Exposition.cpp - Prometheus-style metrics exposition -----------===//

#include "obs/Exposition.h"

#include "obs/Json.h"
#include "obs/Metrics.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace pinj {
namespace obs {

std::string expositionName(const std::string &Name) {
  std::string Out = "pinj_";
  Out.reserve(Name.size() + 5);
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

namespace {

// Prometheus float formatting: plain decimal, no trailing zeros; the
// json::number helper already does exactly that.
std::string num(double V) { return json::number(V); }

} // namespace

std::string renderExposition(const MetricsSnapshot &S) {
  std::string Out;
  Out.reserve(4096);
  for (const auto &[Name, Value] : S.Counters) {
    std::string M = expositionName(Name);
    Out += "# TYPE " + M + " counter\n";
    Out += M + " " + std::to_string(Value) + "\n";
  }
  for (const auto &[Name, H] : S.Histograms) {
    std::string M = expositionName(Name);
    Out += "# TYPE " + M + " histogram\n";
    // Cumulative le-buckets over the fixed quarter-octave bounds; only
    // boundaries where the cumulative count changes are emitted (plus
    // +Inf), keeping the series compact without losing information.
    std::uint64_t Cum = 0;
    for (std::size_t I = 0; I < H.Buckets.size(); ++I) {
      if (H.Buckets[I] == 0)
        continue;
      Cum += H.Buckets[I];
      Out += M + "_bucket{le=\"" +
             num(Histogram::bucketUpperBound(static_cast<unsigned>(I))) +
             "\"} " + std::to_string(Cum) + "\n";
    }
    Out += M + "_bucket{le=\"+Inf\"} " + std::to_string(H.Count) + "\n";
    Out += M + "_sum " + num(H.Sum) + "\n";
    Out += M + "_count " + std::to_string(H.Count) + "\n";
  }
  return Out;
}

std::string MetricsRegistry::renderExposition() const {
  return obs::renderExposition(snapshot());
}

void ExpositionWriter::start(std::string P, unsigned Interval) {
  if (Running)
    return;
  Path = std::move(P);
  IntervalMs = Interval == 0 ? 1000 : Interval;
  StopRequested = false;
  Running = true;
  Thread = std::thread([this] {
    std::unique_lock<std::mutex> Lock(Mu);
    for (;;) {
      Cv.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                  [this] { return StopRequested; });
      writeOnce();
      if (StopRequested)
        return;
    }
  });
}

void ExpositionWriter::stop() {
  if (!Running)
    return;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    StopRequested = true;
  }
  Cv.notify_all();
  if (Thread.joinable())
    Thread.join();
  Running = false;
}

void ExpositionWriter::writeOnce() const {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::out | std::ios::trunc);
    if (!Out)
      return;
    Out << metrics().renderExposition();
  }
  std::rename(Tmp.c_str(), Path.c_str());
}

} // namespace obs
} // namespace pinj
