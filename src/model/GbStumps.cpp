//===- model/GbStumps.cpp - Gradient-boosted-stumps regressor -------------===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "model/GbStumps.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <thread>

using namespace pinj;
using namespace pinj::model;

namespace fs = std::filesystem;

namespace {

// On-disk format (text, one file):
//
//   polyinject-model v1
//   schema <32hex feature-schema hash>
//   config rounds <N> shrinkage <%.17g> seed <u64> subsample <num>/<den>
//   base <%.17g>
//   stump <feature> <threshold %.17g> <left %.17g> <right %.17g>
//   ...
//   end
//
// Parsing is strict: any deviation rejects the whole file (a model with
// silently dropped rounds would still "work" while mispredicting).

constexpr const char *FileHeader = "polyinject-model v1";

obs::Counter &rejectCounter() {
  static obs::Counter &C = obs::metrics().counter("model.rejects");
  return C;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

std::uint64_t xorshift64(std::uint64_t &S) {
  S ^= S << 13;
  S ^= S >> 7;
  S ^= S << 17;
  return S;
}

/// Strict double parse: the whole token, finite result.
bool parseDouble(const std::string &Tok, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End != Tok.c_str() && *End == '\0' && std::isfinite(Out);
}

struct SplitChoice {
  bool Found = false;
  unsigned Feature = 0;
  double Threshold = 0;
  double LeftMean = 0;
  double RightMean = 0;
  double Gain = 0; ///< Residual SSE removed by the split.
};

/// The exhaustive best stump for the residuals of the \p Rows subset:
/// per feature, sort the rows once, then sweep prefix sums over the
/// midpoint thresholds. All comparisons are on doubles computed the
/// same way on every platform we target (IEEE-754, no FMA contraction
/// inside the sums), so the argmax — and therefore the model — is
/// reproducible.
SplitChoice bestSplit(const std::vector<FeatureVector> &X,
                      const std::vector<double> &Residual,
                      const std::vector<unsigned> &Rows) {
  SplitChoice Best;
  if (Rows.size() < 2)
    return Best;
  std::size_t NumFeat = X[Rows[0]].size();

  double TotalSum = 0;
  for (unsigned R : Rows)
    TotalSum += Residual[R];
  double N = static_cast<double>(Rows.size());

  std::vector<unsigned> Order;
  for (std::size_t F = 0; F < NumFeat; ++F) {
    Order = Rows;
    std::stable_sort(Order.begin(), Order.end(),
                     [&](unsigned A, unsigned B) { return X[A][F] < X[B][F]; });
    if (X[Order.front()][F] == X[Order.back()][F])
      continue; // Constant feature: nothing to split on.

    double LeftSum = 0;
    double LeftN = 0;
    for (std::size_t I = 0; I + 1 < Order.size(); ++I) {
      LeftSum += Residual[Order[I]];
      LeftN += 1;
      double Lo = X[Order[I]][F], Hi = X[Order[I + 1]][F];
      if (Lo == Hi)
        continue; // Threshold must separate distinct values.
      double RightSum = TotalSum - LeftSum;
      double RightN = N - LeftN;
      // SSE reduction of splitting at this boundary (constant terms of
      // the residual SSE cancel): sumL^2/nL + sumR^2/nR - sum^2/n.
      double Gain = LeftSum * LeftSum / LeftN +
                    RightSum * RightSum / RightN - TotalSum * TotalSum / N;
      if (Gain > Best.Gain) {
        Best.Found = true;
        Best.Feature = static_cast<unsigned>(F);
        Best.Threshold = Lo + (Hi - Lo) / 2;
        Best.LeftMean = LeftSum / LeftN;
        Best.RightMean = RightSum / RightN;
        Best.Gain = Gain;
      }
      // Ties keep the earlier (lower feature index, lower threshold)
      // choice because the comparison above is strict.
    }
  }
  return Best;
}

} // namespace

double GbStumpsModel::predict(const FeatureVector &X) const {
  assert(X.size() == featureCount() && "feature vector from another schema");
  static obs::Counter &Predictions =
      obs::metrics().counter("model.predictions");
  Predictions.inc();
  double Y = Base;
  for (const Stump &S : Stumps)
    Y += X[S.Feature] <= S.Threshold ? S.Left : S.Right;
  return Y;
}

GbStumpsModel pinj::model::trainGbStumps(const std::vector<FeatureVector> &X,
                                         const std::vector<double> &Y,
                                         const TrainConfig &Config) {
  assert(X.size() == Y.size() && "one target per sample");
  GbStumpsModel M;
  M.SchemaHash = featureSchemaHash();
  M.Config = Config;
  if (X.empty())
    return M;

  double Sum = std::accumulate(Y.begin(), Y.end(), 0.0);
  M.Base = Sum / static_cast<double>(Y.size());

  std::vector<double> Residual(Y.size());
  for (std::size_t I = 0; I < Y.size(); ++I)
    Residual[I] = Y[I] - M.Base;

  bool Subsample =
      Config.SubsampleDen > 0 && Config.SubsampleNum < Config.SubsampleDen;
  std::uint64_t Rng = Config.Seed ? Config.Seed : 1;

  std::vector<unsigned> AllRows(X.size());
  std::iota(AllRows.begin(), AllRows.end(), 0u);
  std::vector<unsigned> Rows;

  M.Stumps.reserve(Config.Rounds);
  for (unsigned Round = 0; Round < Config.Rounds; ++Round) {
    const std::vector<unsigned> *Fit = &AllRows;
    if (Subsample) {
      Rows.clear();
      for (unsigned R : AllRows)
        if (xorshift64(Rng) % Config.SubsampleDen < Config.SubsampleNum)
          Rows.push_back(R);
      if (Rows.size() < 2)
        continue; // Degenerate draw: skip the round, keep the RNG state.
      Fit = &Rows;
    }
    SplitChoice S = bestSplit(X, Residual, *Fit);
    if (!S.Found)
      break; // Residuals constant along every feature: converged.
    Stump St;
    St.Feature = S.Feature;
    St.Threshold = S.Threshold;
    St.Left = Config.Shrinkage * S.LeftMean;
    St.Right = Config.Shrinkage * S.RightMean;
    M.Stumps.push_back(St);
    for (std::size_t I = 0; I < X.size(); ++I)
      Residual[I] -= X[I][St.Feature] <= St.Threshold ? St.Left : St.Right;
  }
  return M;
}

std::string pinj::model::serializeModel(const GbStumpsModel &M) {
  std::ostringstream Out;
  char Buf[64];
  auto G = [&](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    return std::string(Buf);
  };
  Out << FileHeader << '\n';
  Out << "schema " << M.SchemaHash << '\n';
  Out << "config rounds " << M.Config.Rounds << " shrinkage "
      << G(M.Config.Shrinkage) << " seed " << M.Config.Seed << " subsample "
      << M.Config.SubsampleNum << '/' << M.Config.SubsampleDen << '\n';
  Out << "base " << G(M.Base) << '\n';
  for (const Stump &S : M.Stumps)
    Out << "stump " << S.Feature << ' ' << G(S.Threshold) << ' ' << G(S.Left)
        << ' ' << G(S.Right) << '\n';
  Out << "end\n";
  return Out.str();
}

bool pinj::model::parseModel(const std::string &Text, GbStumpsModel &Out,
                             std::string *Err) {
  Out = GbStumpsModel();
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line) || Line != FileHeader) {
    rejectCounter().inc();
    return fail(Err, "not a polyinject model file (bad header)");
  }

  if (!std::getline(In, Line)) {
    rejectCounter().inc();
    return fail(Err, "truncated model file (no schema line)");
  }
  {
    std::istringstream F(Line);
    std::string Tag, Hash;
    if (!(F >> Tag >> Hash) || Tag != "schema" || Hash.size() != 32) {
      rejectCounter().inc();
      return fail(Err, "malformed schema line");
    }
    if (Hash != featureSchemaHash()) {
      rejectCounter().inc();
      return fail(Err, "stale model: feature schema hash mismatch (model " +
                           Hash + ", current " + featureSchemaHash() + ")");
    }
    Out.SchemaHash = Hash;
  }

  if (!std::getline(In, Line)) {
    rejectCounter().inc();
    return fail(Err, "truncated model file (no config line)");
  }
  {
    std::istringstream F(Line);
    std::string Tag, RoundsTag, ShrTag, ShrTok, SeedTag, SubTag, SubTok;
    if (!(F >> Tag >> RoundsTag >> Out.Config.Rounds >> ShrTag >> ShrTok >>
          SeedTag >> Out.Config.Seed >> SubTag >> SubTok) ||
        Tag != "config" || RoundsTag != "rounds" || ShrTag != "shrinkage" ||
        SeedTag != "seed" || SubTag != "subsample" ||
        !parseDouble(ShrTok, Out.Config.Shrinkage)) {
      rejectCounter().inc();
      return fail(Err, "malformed config line");
    }
    std::size_t Slash = SubTok.find('/');
    try {
      std::size_t UsedN = 0, UsedD = 0;
      if (Slash == std::string::npos)
        throw std::invalid_argument("no slash");
      Out.Config.SubsampleNum =
          static_cast<unsigned>(std::stoul(SubTok.substr(0, Slash), &UsedN));
      std::string Den = SubTok.substr(Slash + 1);
      Out.Config.SubsampleDen =
          static_cast<unsigned>(std::stoul(Den, &UsedD));
      if (UsedN != Slash || UsedD != Den.size())
        throw std::invalid_argument("trailing junk");
    } catch (...) {
      rejectCounter().inc();
      return fail(Err, "malformed subsample fraction");
    }
  }

  if (!std::getline(In, Line)) {
    rejectCounter().inc();
    return fail(Err, "truncated model file (no base line)");
  }
  {
    std::istringstream F(Line);
    std::string Tag, Tok;
    if (!(F >> Tag >> Tok) || Tag != "base" || !parseDouble(Tok, Out.Base)) {
      rejectCounter().inc();
      return fail(Err, "malformed base line");
    }
  }

  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream F(Line);
    std::string Tag, ThrTok, LeftTok, RightTok;
    Stump S;
    std::string Trail;
    if (!(F >> Tag >> S.Feature >> ThrTok >> LeftTok >> RightTok) ||
        Tag != "stump" || S.Feature >= featureCount() ||
        !parseDouble(ThrTok, S.Threshold) || !parseDouble(LeftTok, S.Left) ||
        !parseDouble(RightTok, S.Right) || bool(F >> Trail)) {
      rejectCounter().inc();
      return fail(Err, "malformed stump line: " + Line);
    }
    Out.Stumps.push_back(S);
  }
  if (!SawEnd) {
    rejectCounter().inc();
    return fail(Err, "truncated model file (no end marker)");
  }
  return true;
}

bool pinj::model::saveModel(const GbStumpsModel &M, const std::string &Path,
                            std::string *Err) {
  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return fail(Err, "cannot open " + Tmp + " for writing");
    Out << serializeModel(M);
    Out.close();
    if (!Out) {
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return fail(Err, "write to " + Tmp + " failed");
    }
  }
  // Write-then-rename so readers only ever see complete model files.
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return fail(Err, "rename to " + Path + " failed: " + Ec.message());
  }
  return true;
}

bool pinj::model::loadModel(const std::string &Path, GbStumpsModel &Out,
                            std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, "cannot open model file " + Path);
  std::ostringstream Text;
  Text << In.rdbuf();
  return parseModel(Text.str(), Out, Err);
}
