//===- model/Dataset.cpp - Training-sample export -------------------------===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "model/Dataset.h"

#include "obs/Metrics.h"
#include "service/Fingerprint.h"
#include "target/Target.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

using namespace pinj;
using namespace pinj::model;

namespace fs = std::filesystem;

namespace {

// On-disk format (text, one file):
//
//   polyinject-dataset v2
//   schema <32hex feature-schema hash>
//   space <32hex search-space signature>
//   target <target id token>
//   count <N>
//   sample <kernel> <encoding> <time %.17g> <featureCount() doubles>
//   ...
//   end
//
// Parsing is strict and all-or-nothing: a dataset with silently dropped
// or misparsed samples would train a subtly wrong model, which is worse
// than forcing a rebuild. v2 added the target line (the backend target
// identity the times were scored under); v1 files are stale and
// refused.

constexpr const char *FileHeader = "polyinject-dataset v2";

obs::Counter &rejectCounter() {
  static obs::Counter &C = obs::metrics().counter("model.dataset_rejects");
  return C;
}

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool validHex32(const std::string &S) {
  if (S.size() != 32)
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

/// The file format is whitespace-tokenized; provenance strings must be
/// single tokens.
std::string sanitizeToken(const std::string &S) {
  std::string Out = S.empty() ? "_" : S;
  for (char &C : Out)
    if (std::isspace(static_cast<unsigned char>(C)))
      C = '_';
  return Out;
}

bool parseDoubleTok(const std::string &Tok, double &Out) {
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  return End != Tok.c_str() && *End == '\0' && std::isfinite(Out);
}

} // namespace

std::size_t pinj::model::appendSamples(Dataset &D, const Kernel &K,
                                       const PipelineOptions &Base,
                                       const tune::SearchSpace &Space,
                                       tune::TuningDb *Db,
                                       const DatasetBuildConfig &Cfg) {
  if (D.SchemaHash.empty()) {
    D.SchemaHash = featureSchemaHash();
    D.SpaceSignature = Space.signature();
    D.TargetId = target::targetIdForOptions(Base);
  }
  assert(D.SchemaHash == featureSchemaHash() &&
         "dataset built under another feature schema");
  assert(D.SpaceSignature == Space.signature() &&
         "dataset built under another search space");
  assert(D.TargetId == target::targetIdForOptions(Base) &&
         "dataset built under another backend target");
  if (Space.empty() || Cfg.CandidatesPerKernel == 0)
    return 0;

  // Candidate selection: baseline projection, database winner, then an
  // even deterministic stride over the enumeration.
  std::set<tune::Candidate> Picked;
  Picked.insert(Space.project(Base));
  if (Db) {
    tune::DbEntry E;
    if (Db->lookup(service::fingerprintRequest(K, Base), E) &&
        E.SpaceSignature == Space.signature()) {
      tune::Candidate C;
      if (Space.decode(E.Encoding, C))
        Picked.insert(C);
    }
  }
  std::size_t Total = Space.size();
  std::size_t Want = std::min(Cfg.CandidatesPerKernel, Total);
  std::size_t Stride = std::max<std::size_t>(1, Total / Want);
  for (std::size_t I = 0; I < Total && Picked.size() < Want; I += Stride)
    Picked.insert(Space.candidateAt(I));

  std::vector<tune::Candidate> Batch(Picked.begin(), Picked.end());

  tune::Evaluator::Config ECfg;
  ECfg.Jobs = Cfg.Jobs;
  ECfg.CandidateBudget = Cfg.CandidateBudget;
  ECfg.MaxEvaluations = Batch.size();
  tune::Evaluator Eval(K, Base, Space, ECfg);
  std::vector<double> Scores = Eval.evaluate(Batch);

  FeatureVector KernelSlots = extractFeatures(K, Base);
  std::string KernelName = sanitizeToken(K.Name);

  std::size_t Appended = 0;
  PipelineOptions O;
  for (std::size_t I = 0; I < Batch.size(); ++I) {
    if (Scores[I] == tune::failedScore())
      continue; // No finite time to learn from.
    O = Base;
    Space.apply(Batch[I], O);
    Sample S;
    S.X = KernelSlots;
    writeOptionFeatures(O, S.X);
    S.TimeUs = Scores[I];
    S.Kernel = KernelName;
    S.Encoding = sanitizeToken(Space.encode(Batch[I]));
    D.Samples.push_back(std::move(S));
    ++Appended;
  }
  return Appended;
}

std::string pinj::model::serializeDataset(const Dataset &D) {
  std::ostringstream Out;
  char Buf[64];
  auto G = [&](double V) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", V);
    return std::string(Buf);
  };
  Out << FileHeader << '\n';
  Out << "schema " << D.SchemaHash << '\n';
  Out << "space " << D.SpaceSignature << '\n';
  Out << "target " << sanitizeToken(D.TargetId) << '\n';
  Out << "count " << D.Samples.size() << '\n';
  for (const Sample &S : D.Samples) {
    Out << "sample " << sanitizeToken(S.Kernel) << ' '
        << sanitizeToken(S.Encoding) << ' ' << G(S.TimeUs);
    for (double V : S.X)
      Out << ' ' << G(V);
    Out << '\n';
  }
  Out << "end\n";
  return Out.str();
}

bool pinj::model::parseDataset(const std::string &Text, Dataset &Out,
                               std::string *Err) {
  Out = Dataset();
  std::istringstream In(Text);
  std::string Line;

  if (!std::getline(In, Line) || Line != FileHeader) {
    rejectCounter().inc();
    return fail(Err, "not a polyinject dataset file (bad header)");
  }

  auto HexLine = [&](const char *Tag, std::string &Dst) {
    if (!std::getline(In, Line))
      return false;
    std::istringstream F(Line);
    std::string T, Hex;
    if (!(F >> T >> Hex) || T != Tag || !validHex32(Hex))
      return false;
    Dst = Hex;
    return true;
  };
  if (!HexLine("schema", Out.SchemaHash)) {
    rejectCounter().inc();
    return fail(Err, "malformed schema line");
  }
  if (Out.SchemaHash != featureSchemaHash()) {
    rejectCounter().inc();
    return fail(Err, "stale dataset: feature schema hash mismatch");
  }
  if (!HexLine("space", Out.SpaceSignature)) {
    rejectCounter().inc();
    return fail(Err, "malformed space line");
  }
  {
    if (!std::getline(In, Line)) {
      rejectCounter().inc();
      return fail(Err, "truncated dataset file (no target line)");
    }
    std::istringstream F(Line);
    std::string Tag, Extra;
    if (!(F >> Tag >> Out.TargetId) || Tag != "target" || (F >> Extra)) {
      rejectCounter().inc();
      return fail(Err, "malformed target line");
    }
  }

  std::size_t Count = 0;
  if (!std::getline(In, Line)) {
    rejectCounter().inc();
    return fail(Err, "truncated dataset file (no count line)");
  }
  {
    std::istringstream F(Line);
    std::string Tag;
    if (!(F >> Tag >> Count) || Tag != "count") {
      rejectCounter().inc();
      return fail(Err, "malformed count line");
    }
  }

  std::size_t NumFeat = featureCount();
  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    std::istringstream F(Line);
    std::string Tag, TimeTok;
    Sample S;
    if (!(F >> Tag >> S.Kernel >> S.Encoding >> TimeTok) || Tag != "sample" ||
        !parseDoubleTok(TimeTok, S.TimeUs)) {
      rejectCounter().inc();
      return fail(Err, "malformed sample line: " + Line);
    }
    S.X.reserve(NumFeat);
    std::string Tok;
    while (F >> Tok) {
      double V;
      if (S.X.size() >= NumFeat || !parseDoubleTok(Tok, V)) {
        rejectCounter().inc();
        return fail(Err, "malformed sample features: " + Line);
      }
      S.X.push_back(V);
    }
    if (S.X.size() != NumFeat) {
      rejectCounter().inc();
      return fail(Err, "sample feature count mismatch: " + Line);
    }
    Out.Samples.push_back(std::move(S));
  }
  if (!SawEnd) {
    rejectCounter().inc();
    return fail(Err, "truncated dataset file (no end marker)");
  }
  if (Out.Samples.size() != Count) {
    rejectCounter().inc();
    return fail(Err, "sample count mismatch (header says " +
                         std::to_string(Count) + ", file has " +
                         std::to_string(Out.Samples.size()) + ")");
  }
  return true;
}

bool pinj::model::saveDataset(const Dataset &D, const std::string &Path,
                              std::string *Err) {
  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return fail(Err, "cannot open " + Tmp + " for writing");
    Out << serializeDataset(D);
    Out.close();
    if (!Out) {
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return fail(Err, "write to " + Tmp + " failed");
    }
  }
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    fs::remove(Tmp, Ec);
    return fail(Err, "rename to " + Path + " failed: " + Ec.message());
  }
  return true;
}

bool pinj::model::loadDataset(const std::string &Path, Dataset &Out,
                              std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, "cannot open dataset file " + Path);
  std::ostringstream Text;
  Text << In.rdbuf();
  return parseDataset(Text.str(), Out, Err);
}
