//===- model/Features.cpp - Cost-model feature extraction -----------------===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//

#include "model/Features.h"

#include "influence/AccessAnalysis.h"
#include "service/Fingerprint.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pinj {
namespace model {

namespace {

/// Bumping this invalidates every dataset and model file on disk, by
/// design: a schema change silently reinterpreted would mispredict.
const char SchemaVersion[] = "pinj-features-v1";

/// log2(1 + x), the compression applied to every count/size feature so
/// extents spanning 1..10^8 stay on comparable scales.
double lg(double X) { return std::log2(1.0 + std::max(0.0, X)); }

enum FeatureSlot : std::size_t {
  // --- kernel-side ------------------------------------------------------
  FNumStmts = 0,        ///< log2(1+#statements)
  FMaxDepth,            ///< deepest loop nest
  FMeanDepth,           ///< mean loop nest depth
  FLogDomainPoints,     ///< log2(1+sum of statement domain sizes)
  FLogMaxExtent,        ///< log2(1+largest loop extent anywhere)
  FLogMinInnerExtent,   ///< log2(1+smallest original-innermost extent)
  FLogFootprintBytes,   ///< log2(1+sum of tensor footprints)
  FReadsPerStmt,        ///< mean reads per statement
  FReductionFrac,       ///< statements whose write ignores an iterator
  FBroadcastFrac,       ///< statements with a read ignoring an iterator
  FInnerContigFrac,     ///< accesses contiguous in original innermost
  FInnerConstFrac,      ///< accesses constant in original innermost
  FWriteContigFrac,     ///< writes contiguous in original innermost
  FHostileOrderFrac,    ///< stmts whose best-stride iter isn't innermost
  FLogMeanInnerStride,  ///< log2(1+mean |stride| in original innermost)
  FVec4Frac,            ///< stmts with a width-4 vectorizable iterator
  FVec2Frac,            ///< stmts with a width-2 (only) vectorizable iter
  FReusePerTensor,      ///< log2(1+accesses/tensor) — reuse proxy
  FMultiUseTensorFrac,  ///< tensors read by more than one statement
  FParametric,          ///< 1 when the kernel has symbolic parameters
  // --- option-side (tuning knobs) ---------------------------------------
  FOptVectorWidth,      ///< Influence.MaxVectorWidth
  FOptThreadLimit,      ///< log2(Influence.ThreadLimit)
  FOptMaxScenarios,     ///< Influence.MaxScenarios
  FOptMaxInnerDims,     ///< Influence.MaxInnerDims
  FOptMapMaxThreads,    ///< log2(Mapping.MaxThreadsPerBlock)
  FOptProximityInput,   ///< Sched.ProximityIncludesInput
  FOptLogPivotBudget,   ///< log2(1+Sched.Budget.MaxPivots)
  FOptLogNodeBudget,    ///< log2(1+Sched.Budget.MaxIlpNodes)
  NumFeatures
};

const char *const SlotNames[NumFeatures] = {
    "kern.log_num_stmts",
    "kern.max_depth",
    "kern.mean_depth",
    "kern.log_domain_points",
    "kern.log_max_extent",
    "kern.log_min_inner_extent",
    "kern.log_footprint_bytes",
    "kern.reads_per_stmt",
    "kern.reduction_frac",
    "kern.broadcast_frac",
    "kern.inner_contig_frac",
    "kern.inner_const_frac",
    "kern.write_contig_frac",
    "kern.hostile_order_frac",
    "kern.log_mean_inner_stride",
    "kern.vec4_frac",
    "kern.vec2_frac",
    "kern.log_reuse_per_tensor",
    "kern.multi_use_tensor_frac",
    "kern.parametric",
    "opt.max_vector_width",
    "opt.log_thread_limit",
    "opt.max_scenarios",
    "opt.max_inner_dims",
    "opt.log_map_max_threads",
    "opt.proximity_input",
    "opt.log_pivot_budget",
    "opt.log_node_budget",
};

/// Stride-derived slots for one statement, folded into the kernel
/// aggregate by extractFeatures. Separated out so a stride analysis
/// failure (parametric kernel, overflowing address arithmetic) degrades
/// to zeros for this statement only.
struct StmtAccessSummary {
  bool Valid = false;
  bool Reduction = false;
  bool Broadcast = false;
  bool HostileOrder = false;
  double InnerContig = 0; ///< fraction of accesses
  double InnerConst = 0;  ///< fraction of accesses
  bool WriteContig = false;
  double MeanInnerStride = 0;
  unsigned BestVec = 0; ///< 0, 2 or 4
};

StmtAccessSummary summarizeStatement(const Kernel &K, const Statement &S) {
  StmtAccessSummary Sum;
  if (K.numParams() > 0 || S.numIters() == 0)
    return Sum;
  std::vector<AccessStrides> Strides;
  try {
    Strides = analyzeStrides(K, S);
  } catch (...) {
    // Overflowing address arithmetic: no concrete strides to report.
    return Sum;
  }
  Sum.Valid = true;
  unsigned Inner = S.numIters() - 1;

  unsigned Contig = 0, Const = 0;
  double StrideSum = 0;
  for (const AccessStrides &A : Strides) {
    if (A.isContiguousIn(Inner))
      ++Contig;
    if (A.isConstantIn(Inner))
      ++Const;
    StrideSum += std::abs(static_cast<double>(A.StridePerIter[Inner]));
    if (A.IsWrite) {
      Sum.WriteContig = A.isContiguousIn(Inner);
      // A write that ignores one of the loop iterators accumulates over
      // it: the reduction signature.
      for (unsigned I = 0; I < S.numIters(); ++I)
        if (A.isConstantIn(I))
          Sum.Reduction = true;
    } else {
      for (unsigned I = 0; I < S.numIters(); ++I)
        if (A.isConstantIn(I))
          Sum.Broadcast = true;
    }
  }
  double N = static_cast<double>(Strides.size());
  Sum.InnerContig = Contig / N;
  Sum.InnerConst = Const / N;
  Sum.MeanInnerStride = StrideSum / N;

  // Hostile order: some non-innermost iterator would make strictly more
  // accesses contiguous than the original innermost one does — the
  // class of operators influence injection reorders.
  unsigned BestIter = Inner, BestContig = Contig;
  for (unsigned I = 0; I < S.numIters(); ++I) {
    unsigned C = 0;
    for (const AccessStrides &A : Strides)
      if (A.isContiguousIn(I))
        ++C;
    if (C > BestContig) {
      BestContig = C;
      BestIter = I;
    }
  }
  Sum.HostileOrder = BestIter != Inner;

  for (unsigned I = 0; I < S.numIters(); ++I)
    Sum.BestVec = std::max(Sum.BestVec, bestVectorWidth(S, Strides, I, 4));
  return Sum;
}

} // namespace

const std::vector<std::string> &featureNames() {
  static const std::vector<std::string> Names(SlotNames,
                                              SlotNames + NumFeatures);
  return Names;
}

std::size_t featureCount() { return NumFeatures; }

std::size_t firstOptionFeature() { return FOptVectorWidth; }

const std::string &featureSchemaHash() {
  static const std::string Hash = [] {
    service::FingerprintBuilder B;
    B.str(SchemaVersion);
    B.u64(NumFeatures);
    for (const std::string &Name : featureNames())
      B.str(Name);
    return B.get().str();
  }();
  return Hash;
}

FeatureVector extractFeatures(const Kernel &K, const PipelineOptions &O) {
  FeatureVector X(NumFeatures, 0.0);

  double NumStmts = static_cast<double>(K.Stmts.size());
  X[FNumStmts] = lg(NumStmts);
  X[FParametric] = K.numParams() > 0 ? 1.0 : 0.0;

  double DomainPoints = 0, DepthSum = 0, MaxDepth = 0;
  double MaxExtent = 0, MinInnerExtent = 0, ReadSum = 0;
  bool HaveInner = false;
  double Reduction = 0, Broadcast = 0, Hostile = 0, WriteContig = 0;
  double ContigSum = 0, ConstSum = 0, StrideSum = 0;
  double Vec4 = 0, Vec2 = 0, ValidStmts = 0;
  std::vector<unsigned> TensorReaders(K.Tensors.size(), 0);
  double AccessCount = 0;

  for (const Statement &S : K.Stmts) {
    double Depth = static_cast<double>(S.numIters());
    DepthSum += Depth;
    MaxDepth = std::max(MaxDepth, Depth);
    double Points = 1;
    for (Int E : S.Extents) {
      double Ex = static_cast<double>(E);
      Points *= std::max(1.0, Ex);
      MaxExtent = std::max(MaxExtent, Ex);
    }
    DomainPoints += Points;
    if (S.numIters() > 0) {
      double InnerEx = static_cast<double>(S.Extents.back());
      MinInnerExtent = HaveInner ? std::min(MinInnerExtent, InnerEx)
                                 : InnerEx;
      HaveInner = true;
    }
    ReadSum += static_cast<double>(S.Reads.size());
    AccessCount += 1.0 + static_cast<double>(S.Reads.size());
    std::vector<bool> SeenTensor(K.Tensors.size(), false);
    for (const Access &R : S.Reads)
      if (R.TensorId < SeenTensor.size() && !SeenTensor[R.TensorId]) {
        SeenTensor[R.TensorId] = true;
        ++TensorReaders[R.TensorId];
      }

    StmtAccessSummary Sum = summarizeStatement(K, S);
    if (!Sum.Valid)
      continue;
    ValidStmts += 1;
    Reduction += Sum.Reduction ? 1 : 0;
    Broadcast += Sum.Broadcast ? 1 : 0;
    Hostile += Sum.HostileOrder ? 1 : 0;
    WriteContig += Sum.WriteContig ? 1 : 0;
    ContigSum += Sum.InnerContig;
    ConstSum += Sum.InnerConst;
    StrideSum += Sum.MeanInnerStride;
    if (Sum.BestVec >= 4)
      Vec4 += 1;
    else if (Sum.BestVec >= 2)
      Vec2 += 1;
  }

  X[FMaxDepth] = MaxDepth;
  X[FMeanDepth] = NumStmts > 0 ? DepthSum / NumStmts : 0;
  X[FLogDomainPoints] = lg(DomainPoints);
  X[FLogMaxExtent] = lg(MaxExtent);
  X[FLogMinInnerExtent] = HaveInner ? lg(MinInnerExtent) : 0;
  X[FReadsPerStmt] = NumStmts > 0 ? ReadSum / NumStmts : 0;

  double Footprint = 0;
  for (const Tensor &T : K.Tensors) {
    double Elems = 1;
    for (Int S : T.Shape)
      Elems *= std::max(1.0, static_cast<double>(S));
    Footprint += Elems * T.ElemBytes;
  }
  X[FLogFootprintBytes] = lg(Footprint);

  if (ValidStmts > 0) {
    X[FReductionFrac] = Reduction / ValidStmts;
    X[FBroadcastFrac] = Broadcast / ValidStmts;
    X[FInnerContigFrac] = ContigSum / ValidStmts;
    X[FInnerConstFrac] = ConstSum / ValidStmts;
    X[FWriteContigFrac] = WriteContig / ValidStmts;
    X[FHostileOrderFrac] = Hostile / ValidStmts;
    X[FLogMeanInnerStride] = lg(StrideSum / ValidStmts);
    X[FVec4Frac] = Vec4 / ValidStmts;
    X[FVec2Frac] = Vec2 / ValidStmts;
  }

  double NumTensors = static_cast<double>(K.Tensors.size());
  X[FReusePerTensor] = NumTensors > 0 ? lg(AccessCount / NumTensors) : 0;
  double MultiUse = 0;
  for (unsigned Readers : TensorReaders)
    if (Readers > 1)
      MultiUse += 1;
  X[FMultiUseTensorFrac] = NumTensors > 0 ? MultiUse / NumTensors : 0;

  writeOptionFeatures(O, X);
  return X;
}

void writeOptionFeatures(const PipelineOptions &O, FeatureVector &X) {
  assert(X.size() == NumFeatures && "feature vector from another schema");
  X[FOptVectorWidth] = static_cast<double>(O.Influence.MaxVectorWidth);
  X[FOptThreadLimit] = lg(static_cast<double>(O.Influence.ThreadLimit));
  X[FOptMaxScenarios] = static_cast<double>(O.Influence.MaxScenarios);
  X[FOptMaxInnerDims] = static_cast<double>(O.Influence.MaxInnerDims);
  X[FOptMapMaxThreads] =
      lg(static_cast<double>(O.Mapping.MaxThreadsPerBlock));
  X[FOptProximityInput] = O.Sched.ProximityIncludesInput ? 1.0 : 0.0;
  X[FOptLogPivotBudget] =
      lg(static_cast<double>(O.Sched.Budget.MaxPivots));
  X[FOptLogNodeBudget] =
      lg(static_cast<double>(O.Sched.Budget.MaxIlpNodes));
}

std::string serializeFeatures(const FeatureVector &X) {
  std::string Out;
  char Buf[64];
  for (std::size_t I = 0; I < X.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "%.17g", X[I]);
    if (I)
      Out += ' ';
    Out += Buf;
  }
  return Out;
}

bool parseFeatures(const std::string &Text, FeatureVector &Out) {
  Out.clear();
  Out.reserve(NumFeatures);
  std::istringstream In(Text);
  std::string Tok;
  while (In >> Tok) {
    if (Out.size() >= NumFeatures)
      return false;
    char *End = nullptr;
    double V = std::strtod(Tok.c_str(), &End);
    if (End == Tok.c_str() || *End != '\0' || !std::isfinite(V))
      return false;
    Out.push_back(V);
  }
  return Out.size() == NumFeatures;
}

double regressionTarget(double TimeUs) {
  return std::log2(1.0 + std::max(0.0, TimeUs));
}

} // namespace model
} // namespace pinj
