//===- model/GbStumps.h - Gradient-boosted-stumps regressor -----*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learned cost model itself: gradient boosting over depth-1
/// regression trees (stumps) under squared loss, in plain C++ with no
/// dependencies. Each round greedily picks the (feature, threshold)
/// split that removes the most residual squared error — features in
/// index order, thresholds at midpoints of consecutive sorted unique
/// values, ties broken toward the lower feature index then the lower
/// threshold — so training is bit-deterministic for a given dataset and
/// config. Model files are versioned and carry the feature-schema hash;
/// a model trained under a different schema is rejected on load and
/// counted in model.rejects, the same staleness discipline as
/// tune.db_rejects.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MODEL_GBSTUMPS_H
#define POLYINJECT_MODEL_GBSTUMPS_H

#include "model/Features.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pinj {
namespace model {

/// One boosting round: predicts Left when X[Feature] <= Threshold,
/// else Right (both already scaled by the shrinkage).
struct Stump {
  unsigned Feature = 0;
  double Threshold = 0;
  double Left = 0;
  double Right = 0;
};

/// Training tunables. Defaults fit the tuning-corpus scale (a few
/// thousand samples, ~28 features) in well under a second.
struct TrainConfig {
  /// Boosting rounds; training stops early once the residual error
  /// stops improving (no splittable feature remains).
  unsigned Rounds = 400;
  /// Learning rate applied to every stump's leaf values.
  double Shrinkage = 0.1;
  /// Seed for the row-subsampling draw. With SubsampleNum ==
  /// SubsampleDen (the default) no randomness is consumed and the seed
  /// only lands in the model file's metadata.
  std::uint64_t Seed = 1;
  /// Stochastic-boosting row fraction as a rational Num/Den; each round
  /// fits on a deterministic xorshift64 draw of that fraction. The
  /// default 1/1 uses every row every round.
  unsigned SubsampleNum = 1;
  unsigned SubsampleDen = 1;
};

/// A trained model. predict() is pure w.r.t. the model (thread-safe to
/// share const across evaluator workers) and counts model.predictions.
struct GbStumpsModel {
  /// featureSchemaHash() at training time; enforced on load and on
  /// predict (an assert — callers obtain vectors via extractFeatures,
  /// so a width mismatch is a programming error, not data damage).
  std::string SchemaHash;
  /// Base score: the training-set target mean.
  double Base = 0;
  TrainConfig Config;
  std::vector<Stump> Stumps;

  bool empty() const { return Stumps.empty() && Base == 0; }

  /// Predicted regression target (log2 time; see regressionTarget) for
  /// one feature vector.
  double predict(const FeatureVector &X) const;
};

/// Trains on \p X (one FeatureVector per sample, all featureCount()
/// wide) against targets \p Y. Deterministic: same inputs and config
/// give a bit-identical model.
GbStumpsModel trainGbStumps(const std::vector<FeatureVector> &X,
                            const std::vector<double> &Y,
                            const TrainConfig &Config = TrainConfig());

/// Canonical text form of a model (versioned header, schema hash,
/// %.17g leaf values — serialize/parse round-trips bit-exactly).
std::string serializeModel(const GbStumpsModel &M);

/// Strict parse of serializeModel() output. \returns false (with a
/// diagnostic in \p Err if non-null) on version/schema mismatch or any
/// malformed line; rejections count model.rejects.
bool parseModel(const std::string &Text, GbStumpsModel &Out,
                std::string *Err = nullptr);

/// Writes \p M to \p Path via tmp-file + rename (readers never see a
/// torn model). \returns false with \p Err set on I/O failure.
bool saveModel(const GbStumpsModel &M, const std::string &Path,
               std::string *Err = nullptr);

/// Loads and validates a model file. Missing file, version bump and
/// schema-hash mismatch all \return false (the latter two counted in
/// model.rejects).
bool loadModel(const std::string &Path, GbStumpsModel &Out,
               std::string *Err = nullptr);

} // namespace model
} // namespace pinj

#endif // POLYINJECT_MODEL_GBSTUMPS_H
