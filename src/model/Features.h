//===- model/Features.h - Cost-model feature extraction ---------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The learned cost model's input: a fixed-width feature vector
/// extracted from a kernel's IR plus one candidate set of pipeline
/// options. Kernel-side slots summarize what the non-linear optimizer
/// sees (per-statement access strides under the row-major layout,
/// reuse proxies, domain sizes, broadcast/reduction structure);
/// option-side slots are the same knobs the tuning search space varies
/// (vector-width cap, thread budgets, scenario limits, solver-budget
/// tiers). The schema is versioned: names and order are hashed into
/// featureSchemaHash(), which datasets and model files record so a
/// model trained under one schema is never applied under another
/// (the same staleness discipline as tune.db_rejects).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MODEL_FEATURES_H
#define POLYINJECT_MODEL_FEATURES_H

#include "pipeline/Pipeline.h"

#include <string>
#include <vector>

namespace pinj {
namespace model {

/// One feature vector: exactly featureCount() doubles, in the order of
/// featureNames().
using FeatureVector = std::vector<double>;

/// The schema: stable feature names, kernel-side slots first, then the
/// option-side slots (the tuning knobs).
const std::vector<std::string> &featureNames();

/// Number of slots in every FeatureVector of the current schema.
std::size_t featureCount();

/// Index of the first option-side slot (everything before it depends
/// only on the kernel, everything from it on only on the options).
std::size_t firstOptionFeature();

/// 32-hex hash over the schema version, feature names and order.
/// Datasets and model files record it; a mismatch marks them stale.
const std::string &featureSchemaHash();

/// Extracts the full feature vector for compiling \p K under \p O.
/// Kernels with symbolic parameters have no concrete strides; their
/// kernel-side access slots are zero.
FeatureVector extractFeatures(const Kernel &K, const PipelineOptions &O);

/// Overwrites only the option-side slots of \p X (which must have come
/// from extractFeatures on the same kernel). The surrogate strategy
/// scores thousands of candidates per kernel; this skips re-deriving
/// the kernel-side slots each time.
void writeOptionFeatures(const PipelineOptions &O, FeatureVector &X);

/// Canonical text serialization: all values space-separated with
/// "%.17g" (round-trips every double bit-exactly).
std::string serializeFeatures(const FeatureVector &X);

/// Parses serializeFeatures() output. \returns false on any mismatch
/// with the current schema width or a malformed number.
bool parseFeatures(const std::string &Text, FeatureVector &Out);

/// The regression target the model is trained on: log2(1 + TimeUs).
/// Simulated times span several orders of magnitude across the corpus;
/// the log keeps the squared-error fit from being dominated by the
/// slowest operators while staying strictly monotone (ranking by
/// target ranks by time).
double regressionTarget(double TimeUs);

} // namespace model
} // namespace pinj

#endif // POLYINJECT_MODEL_FEATURES_H
