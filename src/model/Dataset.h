//===- model/Dataset.h - Training-sample export -----------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Training data for the cost model: (feature vector, measured gpusim
/// time) pairs produced by replaying tuning candidates through the
/// existing tune::Evaluator — the same scoring primitive the search
/// uses, so the model learns exactly the function the surrogate later
/// approximates. The builder covers each kernel with a deterministic
/// stride over the search space, always including the baseline
/// projection and (when a TuningDb is given) the database's winning
/// encoding for the kernel. Datasets persist in one versioned text
/// file (rename-atomic write, strict load) stamped with the feature
/// schema hash and space signature, so samples from another schema or
/// space shape are rejected rather than silently mistrained on.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MODEL_DATASET_H
#define POLYINJECT_MODEL_DATASET_H

#include "model/Features.h"
#include "tune/Evaluator.h"
#include "tune/TuningDb.h"

#include <string>
#include <vector>

namespace pinj {
namespace model {

/// One training sample.
struct Sample {
  FeatureVector X;
  /// Measured (simulated) infl-configuration kernel time in µs.
  double TimeUs = 0;
  /// Provenance: kernel name and candidate encoding. Informational
  /// only; must contain no whitespace (the file format is line/token
  /// based — the writer replaces offenders with '_').
  std::string Kernel;
  std::string Encoding;
};

/// A dataset: samples plus the schema/space/target they were extracted
/// under.
struct Dataset {
  std::string SchemaHash;      ///< featureSchemaHash() at build time.
  std::string SpaceSignature;  ///< SearchSpace::signature() at build time.
  /// target::targetIdForOptions of the options the samples were scored
  /// under. Times from different backends (or differently calibrated
  /// constants) describe different functions; stamping the identity
  /// keeps one surrogate from being mistrained on a mix.
  std::string TargetId;
  std::vector<Sample> Samples;
};

/// Sample-building tunables.
struct DatasetBuildConfig {
  /// Candidates evaluated per kernel: the baseline projection, the
  /// TuningDb winner (if any), and a deterministic even stride over the
  /// space enumeration up to this many total.
  std::size_t CandidatesPerKernel = 48;
  /// Evaluator worker threads. Sample values do not depend on it.
  unsigned Jobs = 1;
  /// Per-candidate solver budget (tune::Evaluator::Config semantics).
  SolverBudget CandidateBudget{/*MaxPivots=*/2000000,
                               /*MaxIlpNodes=*/200000, /*WallMs=*/0};
};

/// Evaluates candidates of \p Space for \p K under \p Base and appends
/// the successful ones to \p D (failed candidates have no finite time
/// to learn from and are skipped). \p Db, when non-null, contributes
/// the stored winner for fingerprintRequest(K, Base). Initializes the
/// dataset's schema/space stamps on first use; asserts they match on
/// subsequent calls. \returns the number of samples appended.
std::size_t appendSamples(Dataset &D, const Kernel &K,
                          const PipelineOptions &Base,
                          const tune::SearchSpace &Space, tune::TuningDb *Db,
                          const DatasetBuildConfig &Cfg);

/// Canonical text form (versioned header, %.17g values; serialize/parse
/// round-trips bit-exactly).
std::string serializeDataset(const Dataset &D);

/// Strict parse of serializeDataset() output. Version bumps, schema
/// mismatches against the current featureSchemaHash(), wrong feature
/// counts and malformed numbers all reject the whole file (counted in
/// model.dataset_rejects).
bool parseDataset(const std::string &Text, Dataset &Out,
                  std::string *Err = nullptr);

/// Rename-atomic write of \p D to \p Path.
bool saveDataset(const Dataset &D, const std::string &Path,
                 std::string *Err = nullptr);

/// Loads and validates a dataset file.
bool loadDataset(const std::string &Path, Dataset &Out,
                 std::string *Err = nullptr);

} // namespace model
} // namespace pinj

#endif // POLYINJECT_MODEL_DATASET_H
