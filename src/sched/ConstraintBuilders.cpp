//===- sched/ConstraintBuilders.cpp ---------------------------------------===//

#include "sched/ConstraintBuilders.h"

#include "math/LinearAlgebra.h"
#include "obs/Metrics.h"
#include "poly/Farkas.h"
#include "support/FailPoint.h"

using namespace pinj;

DimIlp pinj::makeDimIlp(const Kernel &K, const SchedulerOptions &Options) {
  DimIlp Ilp;
  for (const Statement &S : K.Stmts) {
    DimIlp::StmtVars Vars;
    for (unsigned I = 0, E = S.numIters(); I != E; ++I) {
      unsigned V = Ilp.Builder.addVar("c." + S.Name + "." + S.IterNames[I],
                                      /*IsInteger=*/true);
      Ilp.Builder.addUpperBound(V, Options.CoeffBound);
      Vars.Iter.push_back(V);
    }
    for (unsigned P = 0, E = K.numParams(); P != E; ++P) {
      unsigned V = Ilp.Builder.addVar("d." + S.Name + "." + K.ParamNames[P],
                                      /*IsInteger=*/true);
      Ilp.Builder.addUpperBound(V, Options.CoeffBound);
      Vars.Param.push_back(V);
    }
    Vars.Const = Ilp.Builder.addVar("e." + S.Name, /*IsInteger=*/true);
    Ilp.Builder.addUpperBound(Vars.Const, Options.ConstBound);
    Ilp.Stmts.push_back(std::move(Vars));
  }
  for (unsigned P = 0, E = K.numParams(); P != E; ++P)
    Ilp.U.push_back(
        Ilp.Builder.addVar("u." + K.ParamNames[P], /*IsInteger=*/false));
  Ilp.W = Ilp.Builder.addVar("w", /*IsInteger=*/false);
  return Ilp;
}

namespace {

/// Builds the variable-coefficient affine form of phi_T(t) - phi_S(s)
/// over the relation space of \p D, scaled by \p Sign (+1 for validity,
/// -1 inside the proximity bound).
VarAffineForm scheduleDifferenceForm(DimIlp &Ilp, const Kernel &K,
                                     const DependenceRelation &D, Int Sign) {
  const Statement &Src = K.Stmts[D.SrcStmt];
  const Statement &Dst = K.Stmts[D.DstStmt];
  const DimIlp::StmtVars &SrcVars = Ilp.Stmts[D.SrcStmt];
  const DimIlp::StmtVars &DstVars = Ilp.Stmts[D.DstStmt];

  VarAffineForm Psi(D.Rel.space());
  for (unsigned I = 0, E = Src.numIters(); I != E; ++I)
    Psi.dimCoeff(I).addTerm(SrcVars.Iter[I], checkedNeg(Sign));
  for (unsigned I = 0, E = Dst.numIters(); I != E; ++I)
    Psi.dimCoeff(Src.numIters() + I).addTerm(DstVars.Iter[I], Sign);
  for (unsigned P = 0, E = K.numParams(); P != E; ++P) {
    SparseForm &Col = Psi.Cols[D.Rel.space().NumDims + P];
    Col.addTerm(DstVars.Param[P], Sign);
    Col.addTerm(SrcVars.Param[P], checkedNeg(Sign));
  }
  Psi.constCoeff().addTerm(DstVars.Const, Sign);
  Psi.constCoeff().addTerm(SrcVars.Const, checkedNeg(Sign));
  return Psi;
}

} // namespace

void pinj::addValidity(DimIlp &Ilp, const Kernel &K,
                       const DependenceRelation &D) {
  VarAffineForm Psi = scheduleDifferenceForm(Ilp, K, D, /*Sign=*/1);
  addFarkasNonNegative(Ilp.Builder, D.Rel, Psi, "v");
}

void pinj::addProximity(DimIlp &Ilp, const Kernel &K,
                        const DependenceRelation &D) {
  // u.p + w - (phi_T - phi_S) >= 0 over the relation.
  VarAffineForm Psi = scheduleDifferenceForm(Ilp, K, D, /*Sign=*/-1);
  for (unsigned P = 0, E = K.numParams(); P != E; ++P)
    Psi.Cols[D.Rel.space().NumDims + P].addTerm(Ilp.U[P], 1);
  Psi.constCoeff().addTerm(Ilp.W, 1);
  addFarkasNonNegative(Ilp.Builder, D.Rel, Psi, "p");
}

namespace {

/// Runs \p Add and memoizes the variables/rows it appended; replays
/// them (with multiplier ids rebased) on later hits for the same key.
template <typename AddFn>
bool cachedFarkasBlock(
    std::map<std::pair<unsigned, int>, IlpBuilder::ConstraintBlock> &Blocks,
    std::pair<unsigned, int> Key, IlpBuilder &Builder, AddFn Add) {
  auto It = Blocks.find(Key);
  if (It != Blocks.end()) {
    static obs::Counter &Hits =
        obs::metrics().counter("sched.farkas_cache_hits");
    Hits.inc();
    Builder.replayBlock(It->second);
    return true;
  }
  unsigned VarMark = Builder.numVars();
  unsigned RowMark = Builder.numConstraints();
  Add();
  Blocks.emplace(Key, Builder.captureBlock(VarMark, RowMark));
  return false;
}

} // namespace

void pinj::FarkasCache::addValidity(DimIlp &Ilp, const Kernel &K,
                                    unsigned Dep,
                                    const DependenceRelation &D) {
  if (cachedFarkasBlock(Blocks, {Dep, 0}, Ilp.Builder,
                        [&] { pinj::addValidity(Ilp, K, D); }))
    ++HitCount;
}

void pinj::FarkasCache::addProximity(DimIlp &Ilp, const Kernel &K,
                                     unsigned Dep,
                                     const DependenceRelation &D) {
  if (cachedFarkasBlock(Blocks, {Dep, 1}, Ilp.Builder,
                        [&] { pinj::addProximity(Ilp, K, D); }))
    ++HitCount;
}

void pinj::addProgression(DimIlp &Ilp, const Kernel &K,
                          const Schedule &Partial, unsigned Stmt) {
  const Statement &S = K.Stmts[Stmt];
  const DimIlp::StmtVars &Vars = Ilp.Stmts[Stmt];
  IntMatrix H = Partial.Transforms.empty()
                    ? IntMatrix(0, S.numIters())
                    : Partial.iteratorPart(K, Stmt);
  // Drop all-zero rows (padding dims) before computing the rank.
  IntMatrix NonZero(0, S.numIters());
  for (unsigned R = 0, E = H.numRows(); R != E; ++R)
    if (!isZeroVector(H.row(R)))
      NonZero.appendRow(H.row(R));

  if (matrixRank(NonZero) >= S.numIters()) {
    // Full rank: this statement only gets padding rows from now on.
    for (unsigned V : Vars.Iter) {
      SparseForm Zero;
      Zero.addTerm(V, 1);
      Ilp.Builder.addEq(Zero);
    }
    for (unsigned V : Vars.Param) {
      SparseForm Zero;
      Zero.addTerm(V, 1);
      Ilp.Builder.addEq(Zero);
    }
    return;
  }

  // Paper Eq. (3): the iterator coefficients sum to at least one.
  SparseForm Sum;
  for (unsigned V : Vars.Iter)
    Sum.addTerm(V, 1);
  Sum.addConstant(-1);
  Ilp.Builder.addGe(Sum);

  // Paper Eq. (4): stay in the nonnegative part of the orthogonal
  // complement of the rows found so far, with at least one strictly
  // positive component.
  IntMatrix Basis = nullspaceBasis(NonZero);
  if (Basis.numRows() == 0)
    return;
  SparseForm Total;
  for (unsigned R = 0, E = Basis.numRows(); R != E; ++R) {
    SparseForm Component;
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I) {
      Component.addTerm(Vars.Iter[I], Basis.at(R, I));
      Total.addTerm(Vars.Iter[I], Basis.at(R, I));
    }
    Ilp.Builder.addGe(Component);
  }
  Total.addConstant(-1);
  Ilp.Builder.addGe(Total);
}

void pinj::addInfluence(DimIlp &Ilp, const Kernel &K,
                        const InfluenceNode &Node, const Schedule &Partial,
                        unsigned CurDim) {
  (void)K;
  for (const InfluenceConstraint &C : Node.Constraints) {
    SparseForm Form;
    Form.addConstant(C.Constant);
    for (const CoeffTerm &T : C.Terms) {
      if (T.Dim == CurDim) {
        const DimIlp::StmtVars &Vars = Ilp.Stmts[T.Stmt];
        unsigned NumIters = Vars.Iter.size();
        unsigned NumParams = Vars.Param.size();
        unsigned Var;
        if (T.CoeffIdx < NumIters)
          Var = Vars.Iter[T.CoeffIdx];
        else if (T.CoeffIdx < NumIters + NumParams)
          Var = Vars.Param[T.CoeffIdx - NumIters];
        else
          Var = Vars.Const;
        Form.addTerm(Var, T.Factor);
        continue;
      }
      assert(T.Dim < CurDim &&
             "influence constraint references a future dimension");
      Int Fixed = Partial.Transforms[T.Stmt].at(T.Dim, T.CoeffIdx);
      Form.addConstant(checkedMul(T.Factor, Fixed));
    }
    switch (C.Rel) {
    case InfluenceConstraint::Ge:
      Ilp.Builder.addGe(Form);
      break;
    case InfluenceConstraint::Eq:
      Ilp.Builder.addEq(Form);
      break;
    case InfluenceConstraint::Le:
      Ilp.Builder.addLe(Form);
      break;
    }
  }
}

void pinj::addInfluenceObjectives(DimIlp &Ilp, const InfluenceNode &Node,
                                  unsigned CurDim) {
  for (const InfluenceObjective &Objective : Node.Objectives) {
    SparseForm Form;
    for (const CoeffTerm &T : Objective.Terms) {
      if (T.Dim != CurDim)
        continue; // Fixed dimensions contribute constants only.
      const DimIlp::StmtVars &Vars = Ilp.Stmts[T.Stmt];
      unsigned NumIters = Vars.Iter.size();
      unsigned NumParams = Vars.Param.size();
      unsigned Var;
      if (T.CoeffIdx < NumIters)
        Var = Vars.Iter[T.CoeffIdx];
      else if (T.CoeffIdx < NumIters + NumParams)
        Var = Vars.Param[T.CoeffIdx - NumIters];
      else
        Var = Vars.Const;
      Form.addTerm(Var, T.Factor);
    }
    if (!Form.Terms.empty())
      Ilp.Builder.addObjective(Form);
  }
}

std::vector<unsigned> pinj::addFeautrierSatisfaction(
    DimIlp &Ilp, const Kernel &K,
    const std::vector<const DependenceRelation *> &Deps) {
  std::vector<unsigned> SatVars;
  for (unsigned I = 0, E = Deps.size(); I != E; ++I) {
    const DependenceRelation &D = *Deps[I];
    unsigned Sat = Ilp.Builder.addVar("sat." + std::to_string(I),
                                      /*IsInteger=*/true);
    Ilp.Builder.addUpperBound(Sat, 1);
    // phi_T - phi_S - sat >= 0 over the relation.
    VarAffineForm Psi = scheduleDifferenceForm(Ilp, K, D, /*Sign=*/1);
    Psi.constCoeff().addTerm(Sat, -1);
    addFarkasNonNegative(Ilp.Builder, D.Rel, Psi, "f");
    SatVars.push_back(Sat);
  }
  // Highest priority: minimize the number of unsatisfied relations.
  SparseForm Objective;
  for (unsigned Sat : SatVars)
    Objective.addTerm(Sat, -1);
  Objective.addConstant(SatVars.size());
  Ilp.Builder.addObjective(Objective);
  return SatVars;
}

void pinj::addObjectives(DimIlp &Ilp, const Kernel &K,
                         const SchedulerOptions &Options,
                         const InfluenceNode *Node, unsigned CurDim) {
  // Level 1: sum of u (isl's proximity form, first component).
  SparseForm USum;
  for (unsigned V : Ilp.U)
    USum.addTerm(V, 1);
  Ilp.Builder.addObjective(USum);
  // Level 2: w.
  SparseForm WForm;
  WForm.addTerm(Ilp.W, 1);
  Ilp.Builder.addObjective(WForm);
  // Injected objective levels sit between the proximity levels and the
  // built-in tie-breakers.
  if (Node)
    addInfluenceObjectives(Ilp, *Node, CurDim);
  // Level 3: total iterator coefficient magnitude (simplest solution).
  SparseForm CoeffSum;
  for (const DimIlp::StmtVars &Vars : Ilp.Stmts)
    for (unsigned V : Vars.Iter)
      CoeffSum.addTerm(V, 1);
  Ilp.Builder.addObjective(CoeffSum);
  // Level 4: parameter coefficients and shifts.
  SparseForm ShiftSum;
  for (const DimIlp::StmtVars &Vars : Ilp.Stmts) {
    for (unsigned V : Vars.Param)
      ShiftSum.addTerm(V, 1);
    ShiftSum.addTerm(Vars.Const, 1);
  }
  Ilp.Builder.addObjective(ShiftSum);
  // Level 5: prefer the original loop order (earlier iterators first),
  // mirroring isl's deterministic preference for identity-like bands.
  if (Options.PreferOriginalOrder) {
    SparseForm OrderPref;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      const DimIlp::StmtVars &Vars = Ilp.Stmts[Stmt];
      Int Weight = 1;
      for (unsigned I = 0, NI = Vars.Iter.size(); I != NI; ++I) {
        OrderPref.addTerm(Vars.Iter[I], Weight);
        Weight = checkedMul(Weight, 2);
      }
    }
    Ilp.Builder.addObjective(OrderPref);
  }
}

void pinj::appendSolution(const DimIlp &Ilp, const IlpResult &R,
                          const Kernel &K, Schedule &Partial) {
  // A malformed solver result here would silently corrupt the schedule,
  // so the integrality checks are real runtime checks, not asserts.
  if (!R.isOptimal())
    raiseError(StatusCode::SolverError, "sched.solution",
               "appending a failed solve");
  auto integerAt = [&](unsigned Var, const char *What) {
    if (Var >= R.Point.size() || !R.Point[Var].isInteger())
      raiseError(StatusCode::SolverError, "sched.solution",
                 std::string("non-integer ") + What +
                     " in ILP solution");
    return R.Point[Var].numerator();
  };
  if (Partial.Transforms.empty())
    Partial.Transforms.resize(K.Stmts.size());
  for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
    const Statement &S = K.Stmts[Stmt];
    const DimIlp::StmtVars &Vars = Ilp.Stmts[Stmt];
    IntVector Row(K.rowWidth(S), 0);
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      Row[I] = integerAt(Vars.Iter[I], "coefficient");
    for (unsigned P = 0, NP = K.numParams(); P != NP; ++P)
      Row[S.numIters() + P] = integerAt(Vars.Param[P], "coefficient");
    Row.back() = integerAt(Vars.Const, "shift");
    if (Partial.Transforms[Stmt].numRows() == 0 &&
        Partial.Transforms[Stmt].numCols() == 0)
      Partial.Transforms[Stmt] = IntMatrix(0, K.rowWidth(S));
    Partial.Transforms[Stmt].appendRow(Row);
  }
}
