//===- sched/Schedule.cpp -------------------------------------------------===//

#include "sched/Schedule.h"

#include "ir/Printer.h"

#include <algorithm>

using namespace pinj;

IntMatrix Schedule::iteratorPart(const Kernel &K, unsigned Stmt) const {
  const Statement &S = K.Stmts[Stmt];
  const IntMatrix &T = Transforms[Stmt];
  IntMatrix H(T.numRows(), S.numIters());
  for (unsigned R = 0, NR = T.numRows(); R != NR; ++R)
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      H.at(R, I) = T.at(R, I);
  return H;
}

IntVector Schedule::apply(const Kernel &K, unsigned Stmt,
                          const IntVector &Iters,
                          const IntVector &Params) const {
  const Statement &S = K.Stmts[Stmt];
  assert(Iters.size() == S.numIters() && "iteration vector width mismatch");
  assert(Params.size() == K.numParams() && "parameter vector width mismatch");
  IntVector Full;
  Full.reserve(K.rowWidth(S));
  Full.insert(Full.end(), Iters.begin(), Iters.end());
  Full.insert(Full.end(), Params.begin(), Params.end());
  Full.push_back(1);
  return Transforms[Stmt].multiply(Full);
}

IntVector Schedule::differenceExpr(const Kernel &K,
                                   const DependenceRelation &D,
                                   unsigned Dim) const {
  const Statement &Src = K.Stmts[D.SrcStmt];
  const Statement &Dst = K.Stmts[D.DstStmt];
  const IntVector &SrcRow = Transforms[D.SrcStmt].row(Dim);
  const IntVector &DstRow = Transforms[D.DstStmt].row(Dim);
  unsigned Width = D.Rel.space().width();
  IntVector Expr(Width, 0);
  // Source iterators occupy the first block of the relation space.
  for (unsigned I = 0, E = Src.numIters(); I != E; ++I)
    Expr[I] = checkedSub(Expr[I], SrcRow[I]);
  for (unsigned I = 0, E = Dst.numIters(); I != E; ++I)
    Expr[Src.numIters() + I] =
        checkedAdd(Expr[Src.numIters() + I], DstRow[I]);
  for (unsigned P = 0, E = K.numParams(); P != E; ++P) {
    Int SrcCoeff = SrcRow[Src.numIters() + P];
    Int DstCoeff = DstRow[Dst.numIters() + P];
    Expr[D.Rel.space().NumDims + P] = checkedSub(DstCoeff, SrcCoeff);
  }
  Expr.back() = checkedSub(DstRow.back(), SrcRow.back());
  return Expr;
}

bool Schedule::stronglySatisfiedAt(const Kernel &K,
                                   const DependenceRelation &D,
                                   unsigned Dim) const {
  return D.Rel.isAlwaysAtLeast(differenceExpr(K, D, Dim), 1);
}

void pinj::annotateParallelism(const Kernel &K, Schedule &S) {
  std::vector<DependenceRelation> Deps = computeDependences(K);
  std::vector<bool> Carried(Deps.size(), false);
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    bool Parallel = true, ThreadParallel = true;
    for (unsigned I = 0, E = Deps.size(); I != E; ++I) {
      if (!Deps[I].constrainsValidity() || Carried[I])
        continue;
      if (Deps[I].Rel.isAlwaysZero(S.differenceExpr(K, Deps[I], D)))
        continue;
      Parallel = false;
      if (Deps[I].SrcStmt == Deps[I].DstStmt)
        ThreadParallel = false;
    }
    S.Dims[D].IsParallel = Parallel && !S.Dims[D].IsScalar;
    S.Dims[D].ThreadParallel = ThreadParallel && !S.Dims[D].IsScalar;
    for (unsigned I = 0, E = Deps.size(); I != E; ++I)
      if (!Carried[I] && Deps[I].constrainsValidity() &&
          S.stronglySatisfiedAt(K, Deps[I], D))
        Carried[I] = true;
  }
}

Schedule pinj::originalSchedule(const Kernel &K) {
  unsigned MaxDepth = 0;
  for (const Statement &S : K.Stmts)
    MaxDepth = std::max(MaxDepth, S.numIters());

  // 2d+1 form: (Beta[0], i0, Beta[1], i1, ..., Beta[d]); statements
  // shallower than MaxDepth pad with zero rows, the standard
  // lexicographic embedding.
  Schedule Sched;
  Sched.Transforms.assign(K.Stmts.size(), IntMatrix());
  unsigned NumDims = 2 * MaxDepth + 1;
  for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
    const Statement &Stmt = K.Stmts[S];
    IntMatrix T(0, K.rowWidth(Stmt));
    for (unsigned D = 0; D != NumDims; ++D) {
      IntVector Row(K.rowWidth(Stmt), 0);
      unsigned Level = D / 2;
      if (D % 2 == 0) {
        if (Level < Stmt.OrigBeta.size())
          Row.back() = Stmt.OrigBeta[Level];
      } else if (Level < Stmt.numIters()) {
        Row[Level] = 1;
      }
      T.appendRow(Row);
    }
    Sched.Transforms[S] = std::move(T);
  }
  for (unsigned D = 0; D != NumDims; ++D) {
    DimInfo Info;
    Info.IsScalar = D % 2 == 0;
    Info.BandStart = D % 2 == 1; // Each loop is its own 1-dim band.
    Sched.Dims.push_back(Info);
  }
  // Parallelism annotation runs dependence analysis, which solves LPs —
  // the very machinery whose failure may have brought us here. Treat it
  // as best-effort: without it every dimension stays sequential, which
  // is slower but always correct.
  try {
    annotateParallelism(K, Sched);
  } catch (const RecoverableError &) {
  }
  return Sched;
}

std::string Schedule::str(const Kernel &K) const {
  std::string Out;
  for (unsigned S = 0, NS = K.Stmts.size(); S != NS; ++S) {
    const Statement &Stmt = K.Stmts[S];
    Out += "theta_" + Stmt.Name + " = (";
    for (unsigned D = 0, ND = numDims(); D != ND; ++D) {
      if (D != 0)
        Out += ", ";
      Out +=
          printAffineRow(Transforms[S].row(D), Stmt.IterNames, K.ParamNames);
    }
    Out += ")\n";
  }
  for (unsigned D = 0, ND = numDims(); D != ND; ++D) {
    Out += "dim " + std::to_string(D) + ":";
    if (Dims[D].BandStart)
      Out += " band-start";
    if (Dims[D].IsScalar)
      Out += " scalar";
    if (Dims[D].IsParallel)
      Out += " parallel";
    if (Dims[D].Influenced)
      Out += " influenced";
    if (!Dims[D].VectorStmts.empty()) {
      Out += " vector(x" + std::to_string(Dims[D].VectorWidth) + ":";
      for (unsigned S : Dims[D].VectorStmts)
        Out += " " + K.Stmts[S].Name;
      Out += ")";
    }
    Out += "\n";
  }
  return Out;
}
