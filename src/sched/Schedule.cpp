//===- sched/Schedule.cpp -------------------------------------------------===//

#include "sched/Schedule.h"

#include "ir/Printer.h"

#include <algorithm>
#include <sstream>

using namespace pinj;

IntMatrix Schedule::iteratorPart(const Kernel &K, unsigned Stmt) const {
  const Statement &S = K.Stmts[Stmt];
  const IntMatrix &T = Transforms[Stmt];
  IntMatrix H(T.numRows(), S.numIters());
  for (unsigned R = 0, NR = T.numRows(); R != NR; ++R)
    for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
      H.at(R, I) = T.at(R, I);
  return H;
}

IntVector Schedule::apply(const Kernel &K, unsigned Stmt,
                          const IntVector &Iters,
                          const IntVector &Params) const {
  const Statement &S = K.Stmts[Stmt];
  assert(Iters.size() == S.numIters() && "iteration vector width mismatch");
  assert(Params.size() == K.numParams() && "parameter vector width mismatch");
  IntVector Full;
  Full.reserve(K.rowWidth(S));
  Full.insert(Full.end(), Iters.begin(), Iters.end());
  Full.insert(Full.end(), Params.begin(), Params.end());
  Full.push_back(1);
  return Transforms[Stmt].multiply(Full);
}

IntVector Schedule::differenceExpr(const Kernel &K,
                                   const DependenceRelation &D,
                                   unsigned Dim) const {
  const Statement &Src = K.Stmts[D.SrcStmt];
  const Statement &Dst = K.Stmts[D.DstStmt];
  const IntVector &SrcRow = Transforms[D.SrcStmt].row(Dim);
  const IntVector &DstRow = Transforms[D.DstStmt].row(Dim);
  unsigned Width = D.Rel.space().width();
  IntVector Expr(Width, 0);
  // Source iterators occupy the first block of the relation space.
  for (unsigned I = 0, E = Src.numIters(); I != E; ++I)
    Expr[I] = checkedSub(Expr[I], SrcRow[I]);
  for (unsigned I = 0, E = Dst.numIters(); I != E; ++I)
    Expr[Src.numIters() + I] =
        checkedAdd(Expr[Src.numIters() + I], DstRow[I]);
  for (unsigned P = 0, E = K.numParams(); P != E; ++P) {
    Int SrcCoeff = SrcRow[Src.numIters() + P];
    Int DstCoeff = DstRow[Dst.numIters() + P];
    Expr[D.Rel.space().NumDims + P] = checkedSub(DstCoeff, SrcCoeff);
  }
  Expr.back() = checkedSub(DstRow.back(), SrcRow.back());
  return Expr;
}

bool Schedule::stronglySatisfiedAt(const Kernel &K,
                                   const DependenceRelation &D,
                                   unsigned Dim) const {
  return D.Rel.isAlwaysAtLeast(differenceExpr(K, D, Dim), 1);
}

void pinj::annotateParallelism(const Kernel &K, Schedule &S) {
  std::vector<DependenceRelation> Deps = computeDependences(K);
  std::vector<bool> Carried(Deps.size(), false);
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    bool Parallel = true, ThreadParallel = true;
    for (unsigned I = 0, E = Deps.size(); I != E; ++I) {
      if (!Deps[I].constrainsValidity() || Carried[I])
        continue;
      if (Deps[I].Rel.isAlwaysZero(S.differenceExpr(K, Deps[I], D)))
        continue;
      Parallel = false;
      if (Deps[I].SrcStmt == Deps[I].DstStmt)
        ThreadParallel = false;
    }
    S.Dims[D].IsParallel = Parallel && !S.Dims[D].IsScalar;
    S.Dims[D].ThreadParallel = ThreadParallel && !S.Dims[D].IsScalar;
    for (unsigned I = 0, E = Deps.size(); I != E; ++I)
      if (!Carried[I] && Deps[I].constrainsValidity() &&
          S.stronglySatisfiedAt(K, Deps[I], D))
        Carried[I] = true;
  }
}

Schedule pinj::originalSchedule(const Kernel &K) {
  unsigned MaxDepth = 0;
  for (const Statement &S : K.Stmts)
    MaxDepth = std::max(MaxDepth, S.numIters());

  // 2d+1 form: (Beta[0], i0, Beta[1], i1, ..., Beta[d]); statements
  // shallower than MaxDepth pad with zero rows, the standard
  // lexicographic embedding.
  Schedule Sched;
  Sched.Transforms.assign(K.Stmts.size(), IntMatrix());
  unsigned NumDims = 2 * MaxDepth + 1;
  for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
    const Statement &Stmt = K.Stmts[S];
    IntMatrix T(0, K.rowWidth(Stmt));
    for (unsigned D = 0; D != NumDims; ++D) {
      IntVector Row(K.rowWidth(Stmt), 0);
      unsigned Level = D / 2;
      if (D % 2 == 0) {
        if (Level < Stmt.OrigBeta.size())
          Row.back() = Stmt.OrigBeta[Level];
      } else if (Level < Stmt.numIters()) {
        Row[Level] = 1;
      }
      T.appendRow(Row);
    }
    Sched.Transforms[S] = std::move(T);
  }
  for (unsigned D = 0; D != NumDims; ++D) {
    DimInfo Info;
    Info.IsScalar = D % 2 == 0;
    Info.BandStart = D % 2 == 1; // Each loop is its own 1-dim band.
    Sched.Dims.push_back(Info);
  }
  // Parallelism annotation runs dependence analysis, which solves LPs —
  // the very machinery whose failure may have brought us here. Treat it
  // as best-effort: without it every dimension stays sequential, which
  // is slower but always correct.
  try {
    annotateParallelism(K, Sched);
  } catch (const RecoverableError &) {
  }
  return Sched;
}

bool Schedule::compatibleWith(const Kernel &K) const {
  if (Transforms.size() != K.Stmts.size())
    return false;
  for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
    if (Transforms[S].numRows() != numDims())
      return false;
    if (Transforms[S].numCols() != K.rowWidth(K.Stmts[S]))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string pinj::serializeSchedule(const Schedule &S) {
  std::string Out = "schedule v1\n";
  Out += "dims " + std::to_string(S.Dims.size()) + " stmts " +
         std::to_string(S.Transforms.size()) + "\n";
  for (const DimInfo &D : S.Dims) {
    Out += "dim";
    Out += D.IsScalar ? " scalar=1" : " scalar=0";
    Out += D.BandStart ? " band=1" : " band=0";
    Out += D.IsParallel ? " parallel=1" : " parallel=0";
    Out += D.ThreadParallel ? " threadpar=1" : " threadpar=0";
    Out += D.Influenced ? " influenced=1" : " influenced=0";
    Out += " vecwidth=" + std::to_string(D.VectorWidth);
    Out += " vecstmts=";
    if (D.VectorStmts.empty()) {
      Out += "-";
    } else {
      for (unsigned I = 0, E = D.VectorStmts.size(); I != E; ++I) {
        if (I != 0)
          Out += ',';
        Out += std::to_string(D.VectorStmts[I]);
      }
    }
    Out += "\n";
  }
  for (const IntMatrix &T : S.Transforms) {
    Out += "transform rows=" + std::to_string(T.numRows()) +
           " cols=" + std::to_string(T.numCols()) + "\n";
    for (unsigned R = 0, NR = T.numRows(); R != NR; ++R) {
      const IntVector &Row = T.row(R);
      for (unsigned C = 0, NC = T.numCols(); C != NC; ++C) {
        if (C != 0)
          Out += ' ';
        Out += std::to_string(Row[C]);
      }
      Out += "\n";
    }
  }
  Out += "end\n";
  return Out;
}

namespace {

/// Parses "key=value" where the key must match \p Key; \returns the
/// value text or nullopt.
std::optional<std::string> takeKeyed(std::istringstream &Tokens,
                                     const char *Key) {
  std::string Token;
  if (!(Tokens >> Token))
    return std::nullopt;
  std::string Prefix = std::string(Key) + "=";
  if (Token.rfind(Prefix, 0) != 0)
    return std::nullopt;
  return Token.substr(Prefix.size());
}

std::optional<bool> parseBoolText(const std::string &Text) {
  if (Text == "0")
    return false;
  if (Text == "1")
    return true;
  return std::nullopt;
}

std::optional<std::uint64_t> parseUnsignedText(const std::string &Text) {
  if (Text.empty() || Text.size() > 18 ||
      Text.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::stoull(Text);
}

std::optional<Int> parseIntText(const std::string &Text) {
  std::string Digits = Text;
  bool Negative = false;
  if (!Digits.empty() && Digits[0] == '-') {
    Negative = true;
    Digits = Digits.substr(1);
  }
  std::optional<std::uint64_t> V = parseUnsignedText(Digits);
  if (!V)
    return std::nullopt;
  Int I = static_cast<Int>(*V);
  return Negative ? -I : I;
}

} // namespace

std::optional<Schedule>
pinj::deserializeSchedule(const std::string &Text, std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto fail = [&](const std::string &Message) {
    Error = "schedule line " + std::to_string(LineNo) + ": " + Message;
    return std::nullopt;
  };
  auto nextLine = [&]() {
    if (!std::getline(In, Line))
      return false;
    ++LineNo;
    return true;
  };

  if (!nextLine() || Line != "schedule v1")
    return fail("expected 'schedule v1' header");
  if (!nextLine())
    return fail("truncated after header");
  std::uint64_t NumDims = 0, NumStmts = 0;
  {
    std::istringstream Tokens(Line);
    std::string Keyword;
    std::string DimText, StmtText;
    std::string StmtsKeyword;
    if (!(Tokens >> Keyword >> DimText >> StmtsKeyword >> StmtText) ||
        Keyword != "dims" || StmtsKeyword != "stmts")
      return fail("expected 'dims <n> stmts <n>'");
    std::optional<std::uint64_t> D = parseUnsignedText(DimText);
    std::optional<std::uint64_t> S = parseUnsignedText(StmtText);
    if (!D || !S)
      return fail("malformed dims/stmts counts");
    NumDims = *D;
    NumStmts = *S;
    std::string Extra;
    if (Tokens >> Extra)
      return fail("trailing tokens after counts");
  }
  // A schedule with more dimensions or statements than any kernel the
  // pipeline can produce is corrupt, not large.
  if (NumDims > 1024 || NumStmts > 4096)
    return fail("implausible dims/stmts counts");

  Schedule S;
  for (std::uint64_t D = 0; D != NumDims; ++D) {
    if (!nextLine())
      return fail("truncated dim list");
    std::istringstream Tokens(Line);
    std::string Keyword;
    if (!(Tokens >> Keyword) || Keyword != "dim")
      return fail("expected 'dim'");
    DimInfo Info;
    std::optional<std::string> V;
    std::optional<bool> B;
    if (!(V = takeKeyed(Tokens, "scalar")) || !(B = parseBoolText(*V)))
      return fail("malformed scalar flag");
    Info.IsScalar = *B;
    if (!(V = takeKeyed(Tokens, "band")) || !(B = parseBoolText(*V)))
      return fail("malformed band flag");
    Info.BandStart = *B;
    if (!(V = takeKeyed(Tokens, "parallel")) || !(B = parseBoolText(*V)))
      return fail("malformed parallel flag");
    Info.IsParallel = *B;
    if (!(V = takeKeyed(Tokens, "threadpar")) || !(B = parseBoolText(*V)))
      return fail("malformed threadpar flag");
    Info.ThreadParallel = *B;
    if (!(V = takeKeyed(Tokens, "influenced")) || !(B = parseBoolText(*V)))
      return fail("malformed influenced flag");
    Info.Influenced = *B;
    if (!(V = takeKeyed(Tokens, "vecwidth")))
      return fail("malformed vecwidth");
    std::optional<std::uint64_t> W = parseUnsignedText(*V);
    if (!W || *W > 16)
      return fail("malformed vecwidth");
    Info.VectorWidth = static_cast<unsigned>(*W);
    if (!(V = takeKeyed(Tokens, "vecstmts")))
      return fail("malformed vecstmts");
    if (*V != "-") {
      std::istringstream ListIn(*V);
      std::string Item;
      while (std::getline(ListIn, Item, ',')) {
        std::optional<std::uint64_t> Stmt = parseUnsignedText(Item);
        if (!Stmt || *Stmt >= NumStmts)
          return fail("vecstmts index out of range");
        Info.VectorStmts.push_back(static_cast<unsigned>(*Stmt));
      }
      if (Info.VectorStmts.empty())
        return fail("empty vecstmts list");
    }
    std::string Extra;
    if (Tokens >> Extra)
      return fail("trailing tokens on dim line");
    S.Dims.push_back(std::move(Info));
  }

  for (std::uint64_t Stmt = 0; Stmt != NumStmts; ++Stmt) {
    if (!nextLine())
      return fail("truncated transform list");
    std::istringstream Tokens(Line);
    std::string Keyword;
    if (!(Tokens >> Keyword) || Keyword != "transform")
      return fail("expected 'transform'");
    std::optional<std::string> V;
    std::optional<std::uint64_t> Rows, Cols;
    if (!(V = takeKeyed(Tokens, "rows")) || !(Rows = parseUnsignedText(*V)))
      return fail("malformed transform rows");
    if (!(V = takeKeyed(Tokens, "cols")) || !(Cols = parseUnsignedText(*V)))
      return fail("malformed transform cols");
    if (*Rows != NumDims)
      return fail("transform row count disagrees with dims");
    if (*Cols == 0 || *Cols > 4096)
      return fail("implausible transform cols");
    std::string Extra;
    if (Tokens >> Extra)
      return fail("trailing tokens on transform line");
    IntMatrix T(static_cast<unsigned>(*Rows), static_cast<unsigned>(*Cols));
    for (std::uint64_t R = 0; R != *Rows; ++R) {
      if (!nextLine())
        return fail("truncated transform rows");
      std::istringstream RowTokens(Line);
      std::string Cell;
      for (std::uint64_t C = 0; C != *Cols; ++C) {
        if (!(RowTokens >> Cell))
          return fail("short transform row");
        std::optional<Int> Value = parseIntText(Cell);
        if (!Value)
          return fail("malformed transform entry '" + Cell + "'");
        T.at(static_cast<unsigned>(R), static_cast<unsigned>(C)) = *Value;
      }
      if (RowTokens >> Cell)
        return fail("long transform row");
    }
    S.Transforms.push_back(std::move(T));
  }

  if (!nextLine() || Line != "end")
    return fail("missing 'end' terminator");
  if (nextLine())
    return fail("trailing content after 'end'");
  return S;
}

std::string Schedule::str(const Kernel &K) const {
  std::string Out;
  for (unsigned S = 0, NS = K.Stmts.size(); S != NS; ++S) {
    const Statement &Stmt = K.Stmts[S];
    Out += "theta_" + Stmt.Name + " = (";
    for (unsigned D = 0, ND = numDims(); D != ND; ++D) {
      if (D != 0)
        Out += ", ";
      Out +=
          printAffineRow(Transforms[S].row(D), Stmt.IterNames, K.ParamNames);
    }
    Out += ")\n";
  }
  for (unsigned D = 0, ND = numDims(); D != ND; ++D) {
    Out += "dim " + std::to_string(D) + ":";
    if (Dims[D].BandStart)
      Out += " band-start";
    if (Dims[D].IsScalar)
      Out += " scalar";
    if (Dims[D].IsParallel)
      Out += " parallel";
    if (Dims[D].Influenced)
      Out += " influenced";
    if (!Dims[D].VectorStmts.empty()) {
      Out += " vector(x" + std::to_string(Dims[D].VectorWidth) + ":";
      for (unsigned S : Dims[D].VectorStmts)
        Out += " " + K.Stmts[S].Name;
      Out += ")";
    }
    Out += "\n";
  }
  return Out;
}
