//===- sched/Scheduler.h - Influenced scheduling construction ---*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Algorithm 1: iterative Pluto-style construction of scheduling
/// dimensions, outermost first, each dimension one mixed ILP combining
/// progression, validity, proximity and injected influence constraints.
/// On failure, constraint sets are deactivated in priority order:
///   1. drop progression when influence asks for extra dimensions,
///   2. move to the next sibling scenario of the influence tree,
///   3. drop already-carried dependences (ending the permutable band),
///   4. backtrack to an ancestor's sibling, withdrawing dimensions,
///   5. separate strongly connected components with a scalar dimension,
/// and ultimately the whole tree is abandoned and the scheduler runs as
/// a plain polyhedral scheduler.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SCHED_SCHEDULER_H
#define POLYINJECT_SCHED_SCHEDULER_H

#include "sched/ConstraintBuilders.h"

namespace pinj {

/// Counters describing one scheduling run; bench_backtracking reports
/// them to substantiate the paper's "only few activations of the
/// backtracking" observation.
struct SchedulerStats {
  unsigned IlpSolves = 0;
  unsigned IlpFailures = 0;
  unsigned SiblingMoves = 0;      ///< Fallback 2 activations.
  unsigned BandBreaks = 0;        ///< Fallback 3 activations.
  unsigned AncestorBacktracks = 0;///< Fallback 4 activations.
  unsigned SccCuts = 0;           ///< Fallback 5 activations.
  unsigned ProgressionDrops = 0;  ///< Fallback 1 activations.
  unsigned MetaRejections = 0;    ///< Parallel-required meta failures.
  unsigned FeautrierDims = 0;     ///< Feautrier-style dimensions taken.
  bool TreeAbandoned = false;
  unsigned IlpNodes = 0;          ///< Total branch-and-bound nodes.
};

/// The scheduling outcome. Sched always holds a valid schedule: on any
/// recoverable failure (solver budget exhausted, dimension limit,
/// construction stuck, arithmetic overflow, injected fault) the scheduler
/// falls back to the original program order and records why in Outcome.
struct SchedulerResult {
  Schedule Sched;
  SchedulerStats Stats;
  /// Why the construction did not complete normally; ok() on success.
  Status Outcome;
  /// True when Sched is the original-program-order fallback rather than
  /// a constructed schedule.
  bool FellBackToOriginal = false;
  /// The influence tree leaf whose scenario the schedule realizes, or
  /// null when no tree was given or the tree was abandoned.
  const InfluenceNode *ReachedLeaf = nullptr;

  bool influenced() const { return ReachedLeaf != nullptr; }
};

/// Runs the influenced scheduling construction on \p K. \p Tree may be
/// null (plain polyhedral scheduling, the paper's "isl" reference
/// configuration when Options.SerializeSccs is set).
SchedulerResult scheduleKernel(const Kernel &K,
                               const SchedulerOptions &Options,
                               const InfluenceTree *Tree = nullptr);

} // namespace pinj

#endif // POLYINJECT_SCHED_SCHEDULER_H
