//===- sched/Schedule.h - Multidimensional affine schedules -----*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler's result: one transformation matrix T_S per statement
/// (paper Section III-B), mapping (iters, params, 1) to a shared
/// multidimensional logical date, plus per-dimension metadata (parallel,
/// scalar, influenced, vector-marked) consumed by the GPU mapping and
/// vectorization passes.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SCHED_SCHEDULE_H
#define POLYINJECT_SCHED_SCHEDULE_H

#include "ir/Kernel.h"
#include "poly/Dependence.h"

#include <optional>
#include <string>
#include <vector>

namespace pinj {

/// Metadata for one scheduling dimension, shared by all statements.
struct DimInfo {
  bool IsScalar = false;   ///< Ordering dimension inserted between SCCs.
  /// First dimension of a permutable band: every dimension of a band
  /// weakly satisfies the same relation set, so the band's loops can be
  /// permuted or tiled (the paper's "permutability extraction").
  bool BandStart = false;
  bool IsParallel = false; ///< Zero reuse distance on all pending deps.
  /// Parallel up to intra-block synchronization: any nonzero schedule
  /// difference at this dimension belongs to an inter-statement
  /// dependence (producer/consumer), which a fused GPU kernel resolves
  /// with guards plus __syncthreads within a block. Such dimensions may
  /// be mapped to threads but never split across blocks.
  bool ThreadParallel = false;
  bool Influenced = false; ///< An influence tree node constrained it.
  /// Statements whose innermost loop at this dimension is prepared for
  /// explicit vector types (paper Section V goal (i)).
  std::vector<unsigned> VectorStmts;
  /// Vector lane count (2 or 4) when VectorStmts is nonempty.
  unsigned VectorWidth = 0;

  bool isVectorFor(unsigned Stmt) const {
    for (unsigned S : VectorStmts)
      if (S == Stmt)
        return true;
    return false;
  }

  bool operator==(const DimInfo &O) const {
    return IsScalar == O.IsScalar && BandStart == O.BandStart &&
           IsParallel == O.IsParallel && ThreadParallel == O.ThreadParallel &&
           Influenced == O.Influenced && VectorStmts == O.VectorStmts &&
           VectorWidth == O.VectorWidth;
  }
};

/// A complete schedule for a kernel.
struct Schedule {
  /// One matrix per statement; row d is scheduling dimension d over
  /// (iters, params, 1). All matrices have the same number of rows.
  std::vector<IntMatrix> Transforms;
  std::vector<DimInfo> Dims;

  unsigned numDims() const { return Dims.size(); }

  /// The iterator-only part H_S of statement \p Stmt's matrix (paper
  /// Section IV-A3 decomposition theta = H i + G p + f).
  IntMatrix iteratorPart(const Kernel &K, unsigned Stmt) const;

  /// Evaluates the logical date of iteration \p Iters of \p Stmt with
  /// parameter values \p Params.
  IntVector apply(const Kernel &K, unsigned Stmt, const IntVector &Iters,
                  const IntVector &Params) const;

  /// The schedule-difference expression of dependence \p D at dimension
  /// \p Dim: phi_T(t) - phi_S(s) as a row over D.Rel's space. Used for
  /// satisfaction and parallelism tests.
  IntVector differenceExpr(const Kernel &K, const DependenceRelation &D,
                           unsigned Dim) const;

  /// True if \p D is strongly satisfied at \p Dim: the difference is
  /// >= 1 on every point of the relation.
  bool stronglySatisfiedAt(const Kernel &K, const DependenceRelation &D,
                           unsigned Dim) const;

  std::string str(const Kernel &K) const;

  bool operator==(const Schedule &O) const {
    return Transforms == O.Transforms && Dims == O.Dims;
  }

  /// True when this schedule is structurally compatible with \p K: one
  /// transform per statement, every transform has numDims() rows of the
  /// statement's affine width. Deserialized schedules (e.g. from the
  /// compilation cache) must pass this before being applied.
  bool compatibleWith(const Kernel &K) const;
};

/// Serializes \p S to a self-describing, line-based text form (version
/// header first) suitable for the on-disk schedule cache. The encoding
/// is canonical: equal schedules produce byte-identical text.
std::string serializeSchedule(const Schedule &S);

/// Parses text produced by serializeSchedule. \returns nullopt and sets
/// \p Error on any malformed, truncated or version-mismatched input —
/// corrupt cache entries must degrade to a miss, never crash.
std::optional<Schedule> deserializeSchedule(const std::string &Text,
                                            std::string &Error);

/// Recomputes DimInfo::IsParallel for a schedule built outside the
/// scheduler (e.g. the TVM-proxy manual schedules): a dimension is
/// parallel when every validity relation not already carried by an
/// earlier dimension has a zero schedule difference on it.
void annotateParallelism(const Kernel &K, Schedule &S);

/// The schedule encoding the original program order (the classic 2d+1
/// form built from each statement's OrigBeta interleaving vector). It is
/// valid by construction — dependences are computed from this very
/// order — so it serves as the last-resort fallback when scheduling
/// fails in a recoverable way.
Schedule originalSchedule(const Kernel &K);

} // namespace pinj

#endif // POLYINJECT_SCHED_SCHEDULE_H
