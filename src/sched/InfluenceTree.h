//===- sched/InfluenceTree.h - Influence constraint trees -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction (Section IV-A4): an ordered tree whose
/// node at depth d carries affine constraints on the scheduling
/// coefficients of all statements for dimensions 0..d. Sibling order is
/// priority (leftmost first); the scheduler visits the tree depth-first
/// and backtracks across siblings and ancestors when a constrained ILP
/// has no solution.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SCHED_INFLUENCETREE_H
#define POLYINJECT_SCHED_INFLUENCETREE_H

#include "ir/Kernel.h"

#include <memory>
#include <string>
#include <vector>

namespace pinj {

/// One term of an influence constraint: Factor times scheduling
/// coefficient CoeffIdx of statement Stmt at dimension Dim. CoeffIdx
/// indexes (iterators..., params..., constant), i.e. T_{Stmt,Dim,CoeffIdx}
/// in the paper's notation.
struct CoeffTerm {
  unsigned Stmt = 0;
  unsigned Dim = 0;
  unsigned CoeffIdx = 0;
  Int Factor = 1;
};

/// A linear constraint over scheduling coefficients:
/// sum(Terms) + Constant (Rel) 0.
struct InfluenceConstraint {
  enum RelTy { Ge, Eq, Le };

  std::vector<CoeffTerm> Terms;
  Int Constant = 0;
  RelTy Rel = Eq;
};

/// An injected objective: a linear form over scheduling coefficients,
/// minimized as an extra lexicographic level between the proximity
/// levels and the built-in tie-breakers (paper Section IV-A4: nodes may
/// also specify new objective functions with priorities).
struct InfluenceObjective {
  std::vector<CoeffTerm> Terms;
};

/// A node of the influence constraint tree. Depth equals the scheduling
/// dimension the node applies to; constraints may also reference earlier
/// dimensions (their coefficients are already fixed when the node is
/// visited and are substituted as constants).
struct InfluenceNode {
  unsigned Depth = 0;
  std::vector<InfluenceConstraint> Constraints;
  /// Extra lexicographic objective levels, highest priority first.
  std::vector<InfluenceObjective> Objectives;
  /// Meta-requirement: the dimension only counts as successful if it is
  /// parallel (coincident); otherwise the scheduler backtracks exactly
  /// as for an infeasible ILP (paper Section IV-A4, last paragraph).
  bool RequireParallel = false;
  std::string Label;

  /// Statements whose dimension-Depth loop this node prepares for
  /// explicit vector types, and the lane count. Copied into DimInfo when
  /// the node's constraints hold in the final schedule.
  std::vector<unsigned> VectorStmts;
  unsigned VectorWidth = 0;

  InfluenceNode *Parent = nullptr;
  std::vector<std::unique_ptr<InfluenceNode>> Children;

  InfluenceNode *addChild(std::string ChildLabel);

  /// The next sibling to the right, or null.
  InfluenceNode *rightSibling() const;

  bool isLeaf() const { return Children.empty(); }
};

/// The tree; the root is a dummy above depth 0 whose children are the
/// alternative top-level scenarios.
class InfluenceTree {
public:
  InfluenceTree() { Root.Label = "root"; }

  InfluenceNode &root() { return Root; }
  const InfluenceNode &root() const { return Root; }

  bool empty() const { return Root.Children.empty(); }

  /// First (highest priority) top-level scenario, or null.
  InfluenceNode *firstScenario() {
    return Root.Children.empty() ? nullptr : Root.Children.front().get();
  }

  std::string str(const Kernel &K) const;

private:
  InfluenceNode Root;
};

/// Convenience factory for the common single-coefficient constraints.
InfluenceConstraint makeCoeffEquals(unsigned Stmt, unsigned Dim,
                                    unsigned CoeffIdx, Int Value);
InfluenceConstraint makeCoeffsEqual(unsigned StmtA, unsigned DimA,
                                    unsigned CoeffA, unsigned StmtB,
                                    unsigned DimB, unsigned CoeffB);

} // namespace pinj

#endif // POLYINJECT_SCHED_INFLUENCETREE_H
