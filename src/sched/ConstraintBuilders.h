//===- sched/ConstraintBuilders.h - Per-dimension ILP builders --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint builders of paper Section IV-A. Each scheduling
/// dimension is found by one mixed ILP over the dimension's scheduling
/// coefficients; these builders contribute, separately and in priority
/// order (so the scheduler can deactivate them during backtracking):
///   - validity constraints (Farkas-linearized, IV-A1),
///   - proximity reuse-distance bounds and the isl-form objective
///     f = (sum u_i, w) (IV-A2),
///   - progression constraints Eq. (3) and Eq. (4) (IV-A3),
///   - influence constraints from a tree node (IV-A4).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SCHED_CONSTRAINTBUILDERS_H
#define POLYINJECT_SCHED_CONSTRAINTBUILDERS_H

#include "lp/Budget.h"
#include "lp/Builder.h"
#include "poly/Dependence.h"
#include "sched/InfluenceTree.h"
#include "sched/Schedule.h"

#include <map>

namespace pinj {

/// Tunables of the scheduling construction.
struct SchedulerOptions {
  /// Upper bound on iterator/parameter scheduling coefficients (the
  /// Pluto-style bounded nonnegative coefficient space).
  Int CoeffBound = 4;
  /// Upper bound on the constant (shift) coefficient.
  Int ConstBound = 16;
  /// Include read-after-read relations in the proximity cost (paper
  /// Section IV-A2 allows it; isl's default, matched here, uses flow
  /// only — input relations grow quadratically on long fused chains).
  bool ProximityIncludesInput = false;
  /// Order strongly connected components of different loop depth up
  /// front with a scalar dimension, reproducing the isl behaviour
  /// observed in the paper's Fig. 2(b) (the 2-deep and 3-deep nests
  /// stay distributed) while same-depth components still fuse (as isl's
  /// clustering does for element-wise chains). Influenced runs keep
  /// this off so fusion constraints can take effect, with SCC
  /// separation as the Algorithm 1 fallback.
  bool SerializeSccs = false;
  /// Prefer schedules close to the original loop order among otherwise
  /// equivalent optima (isl-like determinism); implemented as a final
  /// weighted-coefficient objective level.
  bool PreferOriginalOrder = true;
  /// When a dimension cannot be found with the Pluto-style strategy,
  /// try a Feautrier-style dimension (maximize the number of strongly
  /// satisfied relations) before separating components — the isl
  /// mechanism the paper mentions in Section IV-B but did not need on
  /// its operator set.
  bool UseFeautrierFallback = false;
  /// Hard cap on scheduling dimensions (safety net).
  unsigned MaxDims = 16;
  /// Resource limits installed around the whole construction; every
  /// simplex pivot and branch-and-bound node is charged against it. An
  /// exhausted budget surfaces as StatusCode::BudgetExceeded and the
  /// scheduler falls back to the original program order.
  SolverBudget Budget;
};

/// The ILP being assembled for one scheduling dimension: variable ids of
/// every statement's coefficients for this dimension, plus the proximity
/// bound variables u (per parameter) and w.
struct DimIlp {
  IlpBuilder Builder;

  struct StmtVars {
    std::vector<unsigned> Iter;  ///< One per statement iterator.
    std::vector<unsigned> Param; ///< One per kernel parameter.
    unsigned Const = 0;          ///< The shift coefficient.
  };
  std::vector<StmtVars> Stmts;
  std::vector<unsigned> U; ///< Proximity bound parameter coefficients.
  unsigned W = 0;          ///< Proximity bound constant.
};

/// Allocates all scheduling variables (with bounds) for one dimension.
DimIlp makeDimIlp(const Kernel &K, const SchedulerOptions &Options);

/// Adds the validity constraint phi_T - phi_S >= 0 over \p D.Rel
/// (paper Eq. (1), Farkas-linearized).
void addValidity(DimIlp &Ilp, const Kernel &K, const DependenceRelation &D);

/// Adds the reuse distance bound phi_T - phi_S <= u.p + w over \p D.Rel
/// (paper Eq. (2), Farkas-linearized).
void addProximity(DimIlp &Ilp, const Kernel &K, const DependenceRelation &D);

/// Memoizes the Farkas expansion of validity/proximity blocks per
/// dependence relation. Within one scheduling construction the expanded
/// rows of a relation are invariant across dimensions and re-attempts:
/// makeDimIlp allocates the statement/u/w variables with identical ids
/// every time, and the expansion depends only on those ids and the
/// relation itself. The first request runs the real Gauss elimination +
/// multiplier introduction and captures the resulting block; later
/// requests replay the captured rows with only the multiplier ids
/// rebased, skipping the whole polyhedral computation. Not usable for
/// the Feautrier path, whose satisfaction variable gets a fresh id per
/// attempt inside the block's referenced prefix.
class FarkasCache {
public:
  /// Equivalent to addValidity(Ilp, K, D) where \p Dep identifies D
  /// stably across calls (its index in the construction's relation
  /// list).
  void addValidity(DimIlp &Ilp, const Kernel &K, unsigned Dep,
                   const DependenceRelation &D);
  /// Equivalent to addProximity(Ilp, K, D); same keying as addValidity.
  void addProximity(DimIlp &Ilp, const Kernel &K, unsigned Dep,
                    const DependenceRelation &D);

  /// Replays served by THIS cache instance — per-construction, unlike
  /// the global sched.farkas_cache_hits counter that batch workers
  /// share; the scheduler's sched_end journal record reports it.
  unsigned hits() const { return HitCount; }

private:
  std::map<std::pair<unsigned, int>, IlpBuilder::ConstraintBlock> Blocks;
  unsigned HitCount = 0;
};

/// Adds progression constraints for statement \p Stmt: Eq. (3) and the
/// orthogonal-subspace constraints Eq. (4) derived from the rows already
/// in \p Partial. Statements at full rank instead get zero iterator and
/// parameter coefficients (padding rows).
void addProgression(DimIlp &Ilp, const Kernel &K, const Schedule &Partial,
                    unsigned Stmt);

/// Adds the constraints of one influence tree node, substituting
/// already-fixed coefficients of dimensions < \p CurDim from \p Partial.
void addInfluence(DimIlp &Ilp, const Kernel &K, const InfluenceNode &Node,
                  const Schedule &Partial, unsigned CurDim);

/// Appends the node's injected objectives as lexicographic levels (call
/// between the proximity levels and the built-in tie-breakers, i.e.
/// before addObjectives' tie-break half). Terms on earlier dimensions
/// are constants and do not affect the argmin, so they are dropped.
void addInfluenceObjectives(DimIlp &Ilp, const InfluenceNode &Node,
                            unsigned CurDim);

/// Feautrier-style dimension (paper Section IV-B / Feautrier 1992):
/// per active relation a satisfaction variable e in [0, 1] with
/// phi_T - phi_S >= e over the relation; maximizing sum(e) strongly
/// satisfies as many relations as possible. \returns the variable ids.
std::vector<unsigned>
addFeautrierSatisfaction(DimIlp &Ilp, const Kernel &K,
                         const std::vector<const DependenceRelation *> &Deps);

/// Appends the lexicographic objective levels: (sum u, w) per the isl
/// proximity form, then any objectives injected by \p Node (may be
/// null), then coefficient-sum and shift-sum tie-breakers, and
/// optionally the original-order preference.
void addObjectives(DimIlp &Ilp, const Kernel &K,
                   const SchedulerOptions &Options,
                   const InfluenceNode *Node = nullptr,
                   unsigned CurDim = 0);

/// Extracts the solved dimension-\p Dim rows into \p Partial (appending
/// one row per statement matrix).
void appendSolution(const DimIlp &Ilp, const IlpResult &R, const Kernel &K,
                    Schedule &Partial);

} // namespace pinj

#endif // POLYINJECT_SCHED_CONSTRAINTBUILDERS_H
