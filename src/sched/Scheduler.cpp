//===- sched/Scheduler.cpp ------------------------------------------------===//

#include "sched/Scheduler.h"

#include "math/LinearAlgebra.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/FailPoint.h"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>

using namespace pinj;

namespace {

/// Folds one run's counters into the process-wide metrics registry (the
/// generalization of the ad-hoc SchedulerStats struct) and journals the
/// run's sched_end record. \p FarkasHits is the per-construction replay
/// count (the global counter mixes concurrent workers); \p Dims the
/// number of dimensions installed when the run ended.
void recordSchedulerStats(const SchedulerStats &S, unsigned FarkasHits,
                          std::size_t Dims) {
  obs::MetricsRegistry &M = obs::metrics();
  M.counter("sched.runs").inc();
  M.counter("sched.ilp_solves").add(S.IlpSolves);
  M.counter("sched.ilp_failures").add(S.IlpFailures);
  M.counter("sched.ilp_nodes").add(S.IlpNodes);
  M.counter("sched.progression_drops").add(S.ProgressionDrops);
  M.counter("sched.sibling_moves").add(S.SiblingMoves);
  M.counter("sched.band_breaks").add(S.BandBreaks);
  M.counter("sched.ancestor_backtracks").add(S.AncestorBacktracks);
  M.counter("sched.scc_cuts").add(S.SccCuts);
  M.counter("sched.meta_rejections").add(S.MetaRejections);
  M.counter("sched.feautrier_dims").add(S.FeautrierDims);
  if (S.TreeAbandoned)
    M.counter("sched.trees_abandoned").inc();
  if (obs::Journal::fastEnabled())
    obs::JournalEvent("sched_end")
        .field("dims", Dims)
        .field("ilp_solves", S.IlpSolves)
        .field("ilp_failures", S.IlpFailures)
        .field("ilp_nodes", S.IlpNodes)
        .field("farkas_cache_hits", FarkasHits)
        .field("fallbacks", S.ProgressionDrops + S.SiblingMoves +
                                S.BandBreaks + S.AncestorBacktracks +
                                S.SccCuts + S.FeautrierDims)
        .field("tree_abandoned", S.TreeAbandoned);
}

/// Tarjan's strongly connected components over the statement graph whose
/// edges are the active dependence relations. SCC ids are assigned in
/// reverse topological order of the condensation, so ordering SCCs by
/// descending id executes sources before targets; we re-normalize to a
/// forward topological index below.
class SccFinder {
public:
  SccFinder(unsigned NumNodes,
            const std::vector<std::pair<unsigned, unsigned>> &Edges)
      : Adjacency(NumNodes), State(NumNodes) {
    for (auto &[Src, Dst] : Edges)
      if (Src != Dst)
        Adjacency[Src].push_back(Dst);
    for (unsigned N = 0; N != NumNodes; ++N)
      if (State[N].Index < 0)
        visit(N);
  }

  unsigned numSccs() const { return SccCount; }

  /// Topological position of the SCC containing \p Node: sources first.
  unsigned topoIndex(unsigned Node) const {
    // Tarjan emits SCCs in reverse topological order.
    return SccCount - 1 - State[Node].Scc;
  }

private:
  struct NodeState {
    int Index = -1;
    int LowLink = 0;
    bool OnStack = false;
    int Scc = -1;
  };

  void visit(unsigned Node) {
    State[Node].Index = State[Node].LowLink = NextIndex++;
    Stack.push_back(Node);
    State[Node].OnStack = true;
    for (unsigned Next : Adjacency[Node]) {
      if (State[Next].Index < 0) {
        visit(Next);
        State[Node].LowLink =
            std::min(State[Node].LowLink, State[Next].LowLink);
      } else if (State[Next].OnStack) {
        State[Node].LowLink =
            std::min(State[Node].LowLink, State[Next].Index);
      }
    }
    if (State[Node].LowLink != State[Node].Index)
      return;
    for (;;) {
      unsigned Top = Stack.back();
      Stack.pop_back();
      State[Top].OnStack = false;
      State[Top].Scc = SccCount;
      if (Top == Node)
        break;
    }
    ++SccCount;
  }

  std::vector<std::vector<unsigned>> Adjacency;
  std::vector<NodeState> State;
  std::vector<unsigned> Stack;
  int NextIndex = 0;
  int SccCount = 0;
};

/// One full scheduling construction (Algorithm 1). A fresh instance is
/// used for the no-influence rerun when a tree is abandoned.
class Construction {
public:
  Construction(const Kernel &K, const SchedulerOptions &Options,
               const InfluenceTree *Tree)
      : K(K), Options(Options), Tree(Tree) {
    DependenceOptions DepOptions;
    DepOptions.IncludeInput = Options.ProximityIncludesInput;
    AllDeps = computeDependences(K, DepOptions);
    for (unsigned I = 0, E = AllDeps.size(); I != E; ++I)
      if (AllDeps[I].constrainsValidity())
        Active.push_back(I);
    Carried.assign(AllDeps.size(), std::nullopt);
    Partial.Transforms.assign(K.Stmts.size(), IntMatrix());
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
      Partial.Transforms[S] = IntMatrix(0, K.rowWidth(K.Stmts[S]));
  }

  /// Runs the construction; \returns false if the influence tree had to
  /// be abandoned (the caller reruns without a tree).
  bool run(SchedulerResult &Result) {
    Node = Tree && !Tree->empty()
               ? const_cast<InfluenceTree *>(Tree)->firstScenario()
               : nullptr;
    if (Options.SerializeSccs)
      serializeSccsUpfront();

    // POLYINJECT_TRACE=1 (or any trace sink) shows one span per
    // dimension attempt with the construction state as attributes.
    bool ProgressionDisabled = false;
    while (!done()) {
      obs::Span DimSpan("sched.dim");
      if (DimSpan.active())
        DimSpan.arg("depth", Partial.Dims.size())
            .arg("node", Node ? Node->Label.c_str() : "-")
            .arg("active", Active.size())
            .arg("fullrank", allFullRank())
            .arg("progression", !ProgressionDisabled);
      if (Partial.Dims.size() >= Options.MaxDims) {
        // With an influence tree the limit is usually the tree asking
        // for unreasonable depth: abandon it and let the plain rerun
        // try. Without a tree there is nothing left to shed.
        if (Node || Tree) {
          fallbackSpan("tree_abandon");
          Stats.TreeAbandoned = true;
          recordSchedulerStats(Stats, Farkas.hits(), Partial.Dims.size());
          return false;
        }
        raiseError(StatusCode::DimensionLimit, "sched.construction",
                   "scheduling exceeded the dimension limit");
      }
      unsigned D = Partial.Dims.size();
      if (Backups.size() <= D)
        Backups.resize(D + 1);
      if (!Backups[D].Recorded) {
        Backups[D].Active = Active;
        Backups[D].Recorded = true;
      }

      IlpResult Solution = attempt(ProgressionDisabled);
      if (Solution.isOptimal() && accept(Solution)) {
        ProgressionDisabled = false;
        continue;
      }

      // Fallback 1: influence requests a supplementary dimension.
      if (Active.empty() && Node && !ProgressionDisabled) {
        fallbackSpan("progression_drop");
        ProgressionDisabled = true;
        ++Stats.ProgressionDrops;
        continue;
      }
      // Fallback 2: next sibling scenario at the same depth.
      if (Node && Node->rightSibling()) {
        fallbackSpan("sibling_move");
        obs::metrics().counter("influence.scenario_backtracks").inc();
        Node = Node->rightSibling();
        Active = Backups[D].Active;
        ProgressionDisabled = false;
        ++Stats.SiblingMoves;
        continue;
      }
      // Fallback 3: end the permutable band by dropping carried deps.
      if (dropCarriedDeps()) {
        fallbackSpan("band_break");
        ProgressionDisabled = false;
        NextStartsBand = true;
        ++Stats.BandBreaks;
        continue;
      }
      // Feautrier-style dimension: strongly satisfy as many active
      // relations as possible (optional; the isl mechanism the paper
      // mentions in Section IV-B).
      if (Options.UseFeautrierFallback && !Active.empty() &&
          attemptFeautrier()) {
        fallbackSpan("feautrier_dim");
        ProgressionDisabled = false;
        ++Stats.FeautrierDims;
        continue;
      }
      // Fallback 4: backtrack to the closest ancestor sibling.
      if (Node && backtrackToAncestorSibling()) {
        fallbackSpan("ancestor_backtrack");
        obs::metrics().counter("influence.scenario_backtracks").inc();
        ProgressionDisabled = false;
        ++Stats.AncestorBacktracks;
        continue;
      }
      // Fallback 5: separate strongly connected components.
      if (separateSccs()) {
        fallbackSpan("scc_cut");
        ProgressionDisabled = false;
        ++Stats.SccCuts;
        continue;
      }
      // Self-dependences on full-rank statements are totally ordered by
      // the (injective, per-dimension nonnegative) schedule even when
      // the conservative carried test cannot prove it; drop them.
      if (dropResolvedSelfDeps())
        continue;
      // Ultimately: abandon the influence tree entirely.
      if (Node || Tree) {
        fallbackSpan("tree_abandon");
        Stats.TreeAbandoned = true;
        recordSchedulerStats(Stats, Farkas.hits(), Partial.Dims.size());
        return false;
      }
      raiseError(StatusCode::Stuck, "sched.construction",
                 "no fallback can make progress");
    }
    Result.Sched = Partial;
    Result.Stats = Stats;
    Result.ReachedLeaf = ReachedLeaf;
    recordSchedulerStats(Stats, Farkas.hits(), Partial.Dims.size());
    return true;
  }

private:
  /// Emits one zero-length marker span per fallback activation so
  /// traces show where (and at what depth) the construction backed off,
  /// plus the matching journal record (same payload, joinable by
  /// request id). Scenario-switching fallbacks also bump the
  /// influence.scenario_backtracks counter: they abandon one influence
  /// scenario for another, which is the tree's backtrack notion.
  void fallbackSpan(const char *Kind) const {
    if (obs::Tracer::fastEnabled()) {
      obs::Span F("sched.fallback");
      F.arg("kind", Kind).arg("depth", Partial.Dims.size());
    }
    if (obs::Journal::fastEnabled())
      obs::JournalEvent("sched_fallback")
          .field("kind", Kind)
          .field("depth", Partial.Dims.size())
          .field("node", Node ? Node->Label.c_str() : "-");
  }
  bool allFullRank() const {
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
      IntMatrix H = Partial.iteratorPart(K, S);
      IntMatrix NonZero(0, K.Stmts[S].numIters());
      for (unsigned R = 0, NR = H.numRows(); R != NR; ++R)
        if (!isZeroVector(H.row(R)))
          NonZero.appendRow(H.row(R));
      if (matrixRank(NonZero) < K.Stmts[S].numIters())
        return false;
    }
    return true;
  }

  bool done() const {
    if (Node)
      return false; // The tree still wants dimensions.
    return Active.empty() && allFullRank();
  }

  IlpResult attempt(bool ProgressionDisabled) {
    // With every statement at full rank, progression is unsatisfiable by
    // definition (no linearly independent dimension remains); report the
    // failure without solving so the fallback chain runs, exactly as a
    // progression-constrained ILP would fail.
    if (!ProgressionDisabled && allFullRank()) {
      ++Stats.IlpSolves;
      ++Stats.IlpFailures;
      return IlpResult();
    }
    DimIlp Ilp = makeDimIlp(K, Options);
    if (!ProgressionDisabled)
      for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
        addProgression(Ilp, K, Partial, S);
    for (unsigned Dep : Active)
      Farkas.addValidity(Ilp, K, Dep, AllDeps[Dep]);
    // Proximity: active flow relations plus all input relations.
    for (unsigned Dep : Active)
      if (AllDeps[Dep].Kind == DepKind::Flow)
        Farkas.addProximity(Ilp, K, Dep, AllDeps[Dep]);
    for (unsigned I = 0, E = AllDeps.size(); I != E; ++I)
      if (AllDeps[I].Kind == DepKind::Input)
        Farkas.addProximity(Ilp, K, I, AllDeps[I]);
    if (Node)
      addInfluence(Ilp, K, *Node, Partial, Partial.Dims.size());
    addObjectives(Ilp, K, Options, Node, Partial.Dims.size());
    ++Stats.IlpSolves;
    obs::Span IlpSpan("sched.ilp");
    IlpResult R = Ilp.Builder.solve();
    if (IlpSpan.active())
      IlpSpan.arg("optimal", R.isOptimal()).arg("nodes", R.NodesExplored);
    Stats.IlpNodes += R.NodesExplored;
    if (!R.isOptimal())
      ++Stats.IlpFailures;
    else
      LastIlp = std::move(Ilp);
    return R;
  }

  /// Installs a solved dimension; \returns false (withdrawing the
  /// rows) when the node's meta-requirements reject it.
  bool accept(const IlpResult &Solution) {
    unsigned D = Partial.Dims.size();
    appendSolution(LastIlp, Solution, K, Partial);
    DimInfo Info;
    Info.BandStart = NextStartsBand;
    std::tie(Info.IsParallel, Info.ThreadParallel) = dimParallelism(D);
    if (Node && Node->RequireParallel && !Info.IsParallel) {
      // Meta-constraint failure: treat exactly like an infeasible ILP.
      for (IntMatrix &T : Partial.Transforms)
        T.truncateRows(D);
      ++Stats.MetaRejections;
      if (obs::Journal::fastEnabled())
        obs::JournalEvent("dim_outcome")
            .field("depth", D)
            .field("accepted", false)
            .field("reason", "meta_rejection")
            .field("node", Node->Label);
      return false;
    }
    if (Node) {
      Info.Influenced = !Node->Constraints.empty();
      Info.VectorStmts = Node->VectorStmts;
      Info.VectorWidth = Node->VectorWidth;
    }
    if (obs::Journal::fastEnabled())
      obs::JournalEvent("dim_outcome")
          .field("depth", D)
          .field("accepted", true)
          .field("influenced", Info.Influenced)
          .field("parallel", Info.IsParallel)
          .field("band_start", Info.BandStart)
          .field("node", Node ? Node->Label.c_str() : "-");
    Partial.Dims.push_back(std::move(Info));
    NextStartsBand = false;
    updateCarried(D);
    if (Node) {
      if (Node->isLeaf()) {
        ReachedLeaf = Node;
        Node = nullptr; // Tree contribution terminated.
      } else {
        Node = Node->Children.front().get();
      }
    }
    return true;
  }

  /// Builds a Feautrier-style dimension: maximize the number of active
  /// relations strongly satisfied, then the usual tie-breakers; accept
  /// only if at least one relation is carried (guaranteeing progress).
  bool attemptFeautrier() {
    DimIlp Ilp = makeDimIlp(K, Options);
    std::vector<const DependenceRelation *> Deps;
    for (unsigned Dep : Active)
      Deps.push_back(&AllDeps[Dep]);
    addFeautrierSatisfaction(Ilp, K, Deps);
    addObjectives(Ilp, K, Options);
    ++Stats.IlpSolves;
    IlpResult R = Ilp.Builder.solve();
    Stats.IlpNodes += R.NodesExplored;
    if (!R.isOptimal()) {
      ++Stats.IlpFailures;
      return false;
    }
    // The first objective level minimized the number of unsatisfied
    // relations; demand strict progress.
    if (R.Value >= Rational(static_cast<Int>(Deps.size())))
      return false;
    LastIlp = std::move(Ilp);
    unsigned D = Partial.Dims.size();
    appendSolution(LastIlp, R, K, Partial);
    DimInfo Info;
    std::tie(Info.IsParallel, Info.ThreadParallel) = dimParallelism(D);
    Partial.Dims.push_back(std::move(Info));
    updateCarried(D);
    dropCarriedDeps();
    return true;
  }

  /// \returns {fully parallel, parallel up to intra-block sync}.
  std::pair<bool, bool> dimParallelism(unsigned D) const {
    bool Parallel = true, ThreadParallel = true;
    for (unsigned I = 0, E = AllDeps.size(); I != E; ++I) {
      const DependenceRelation &Dep = AllDeps[I];
      if (!Dep.constrainsValidity() || Carried[I])
        continue;
      if (Dep.Rel.isAlwaysZero(Partial.differenceExpr(K, Dep, D)))
        continue;
      Parallel = false;
      // Inter-statement differences are resolvable with guards plus
      // __syncthreads inside a block; loop-carried self-dependences
      // are not.
      if (Dep.SrcStmt == Dep.DstStmt)
        ThreadParallel = false;
    }
    return {Parallel, ThreadParallel};
  }

  void updateCarried(unsigned D) {
    for (unsigned I = 0, E = AllDeps.size(); I != E; ++I) {
      if (Carried[I] || !AllDeps[I].constrainsValidity())
        continue;
      if (Partial.stronglySatisfiedAt(K, AllDeps[I], D))
        Carried[I] = D;
    }
  }

  /// Recomputes Carried from scratch (after withdrawing dimensions).
  void recomputeCarried() {
    Carried.assign(AllDeps.size(), std::nullopt);
    for (unsigned D = 0, ND = Partial.Dims.size(); D != ND; ++D)
      updateCarried(D);
  }

  bool dropCarriedDeps() {
    unsigned Before = Active.size();
    Active.erase(std::remove_if(Active.begin(), Active.end(),
                                [this](unsigned Dep) {
                                  return Carried[Dep].has_value();
                                }),
                 Active.end());
    return Active.size() != Before;
  }

  bool dropResolvedSelfDeps() {
    if (!allFullRank())
      return false;
    unsigned Before = Active.size();
    Active.erase(std::remove_if(Active.begin(), Active.end(),
                                [this](unsigned Dep) {
                                  return AllDeps[Dep].SrcStmt ==
                                         AllDeps[Dep].DstStmt;
                                }),
                 Active.end());
    return Active.size() != Before;
  }

  bool backtrackToAncestorSibling() {
    for (InfluenceNode *Ancestor = Node->Parent;
         Ancestor && Ancestor->Parent; Ancestor = Ancestor->Parent) {
      InfluenceNode *Sibling = Ancestor->rightSibling();
      if (!Sibling)
        continue;
      unsigned NewDepth = Sibling->Depth;
      if (NewDepth >= Partial.Dims.size())
        continue;
      // Withdraw dimensions >= NewDepth.
      for (IntMatrix &T : Partial.Transforms)
        T.truncateRows(NewDepth);
      Partial.Dims.resize(NewDepth);
      recomputeCarried();
      assert(Backups.size() > NewDepth && Backups[NewDepth].Recorded &&
             "missing backup for backtracked depth");
      Active = Backups[NewDepth].Active;
      for (unsigned B = NewDepth + 1; B < Backups.size(); ++B)
        Backups[B].Recorded = false;
      Node = Sibling;
      return true;
    }
    return false;
  }

  /// Appends one scalar dimension ordering \p TopoIndex per statement
  /// and retires the relations it carries.
  void appendScalarDim(const std::vector<unsigned> &TopoIndex) {
    unsigned D = Partial.Dims.size();
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
      IntVector Row(K.rowWidth(K.Stmts[S]), 0);
      Row.back() = TopoIndex[S];
      Partial.Transforms[S].appendRow(Row);
    }
    DimInfo Info;
    Info.IsScalar = true;
    Partial.Dims.push_back(Info);
    NextStartsBand = true; // Whatever follows opens a new band.
    updateCarried(D);
    dropCarriedDeps();
  }

  bool separateSccs() {
    std::vector<std::pair<unsigned, unsigned>> Edges;
    for (unsigned Dep : Active)
      Edges.emplace_back(AllDeps[Dep].SrcStmt, AllDeps[Dep].DstStmt);
    SccFinder Sccs(K.Stmts.size(), Edges);
    if (Sccs.numSccs() < 2)
      return false;
    // The cut only helps if some live relation actually crosses
    // components; otherwise it would insert useless scalar dimensions
    // forever instead of letting the construction abandon the tree.
    bool Separates = false;
    for (unsigned Dep : Active)
      if (Sccs.topoIndex(AllDeps[Dep].SrcStmt) !=
          Sccs.topoIndex(AllDeps[Dep].DstStmt))
        Separates = true;
    if (!Separates)
      return false;
    std::vector<unsigned> Topo(K.Stmts.size());
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
      Topo[S] = Sccs.topoIndex(S);
    appendScalarDim(Topo);
    return true;
  }

  void serializeSccsUpfront() {
    // The reference scheduler fuses same-depth components (as isl's
    // clustering does for element-wise chains) but declines to fuse
    // components of different loop depth — the behaviour observed on
    // the paper's running example, Fig. 2(b), where the 2-deep X nest
    // and the 3-deep Y nest stay distributed. Consecutive SCCs in
    // topological order share a scalar value while their depth matches.
    std::vector<std::pair<unsigned, unsigned>> Edges;
    for (unsigned Dep : Active)
      Edges.emplace_back(AllDeps[Dep].SrcStmt, AllDeps[Dep].DstStmt);
    SccFinder Sccs(K.Stmts.size(), Edges);
    if (Sccs.numSccs() < 2)
      return;
    // Depth of each SCC (max member depth), in topological order.
    std::vector<unsigned> SccDepth(Sccs.numSccs(), 0);
    std::vector<unsigned> StmtScc(K.Stmts.size());
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
      unsigned Scc = Sccs.topoIndex(S);
      StmtScc[S] = Scc;
      SccDepth[Scc] = std::max(SccDepth[Scc], K.Stmts[S].numIters());
    }
    std::vector<unsigned> SccGroup(Sccs.numSccs(), 0);
    unsigned Group = 0;
    for (unsigned Scc = 1; Scc != SccDepth.size(); ++Scc) {
      if (SccDepth[Scc] != SccDepth[Scc - 1])
        ++Group;
      SccGroup[Scc] = Group;
    }
    if (Group == 0)
      return; // All components share a depth: let fusion proceed.
    std::vector<unsigned> Topo(K.Stmts.size());
    for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S)
      Topo[S] = SccGroup[StmtScc[S]];
    appendScalarDim(Topo);
    ++Stats.SccCuts;
  }

  struct Backup {
    std::vector<unsigned> Active;
    bool Recorded = false;
  };

  const Kernel &K;
  const SchedulerOptions &Options;
  const InfluenceTree *Tree;

  std::vector<DependenceRelation> AllDeps;
  std::vector<unsigned> Active; ///< Indices of live validity relations.
  std::vector<std::optional<unsigned>> Carried;
  Schedule Partial;
  std::vector<Backup> Backups;
  InfluenceNode *Node = nullptr;
  bool NextStartsBand = true; ///< The next accepted dim opens a band.
  const InfluenceNode *ReachedLeaf = nullptr;
  SchedulerStats Stats;
  DimIlp LastIlp;
  /// Farkas expansions are invariant per relation within a construction
  /// (statement variable ids are fixed by makeDimIlp); the cache replays
  /// them across dimensions and re-attempts.
  FarkasCache Farkas;
};

} // namespace

SchedulerResult pinj::scheduleKernel(const Kernel &K,
                                     const SchedulerOptions &Options,
                                     const InfluenceTree *Tree) {
  obs::Span S("sched.schedule");
  if (S.active())
    S.arg("kernel", K.Name).arg("influenced", Tree != nullptr);
  // The construction must never escape an exception: whatever goes
  // wrong (budget exhausted, stuck, overflow, injected fault), the
  // caller still gets a valid schedule — ultimately the original
  // program order — plus the Status explaining the downgrade.
  budget::BudgetScope Budget(Options.Budget);
  try {
    failpoint::hit("sched.schedule");
    {
      Construction C(K, Options, Tree);
      SchedulerResult Result;
      if (C.run(Result))
        return Result;
    }
    // The tree was abandoned: run as a plain polyhedral scheduler, in
    // the reference (isl-like) configuration, as the paper specifies.
    // Plain scheduling on a well-formed kernel cannot get stuck (SCC
    // separation always makes progress), but it can still exhaust the
    // solver budget or overflow; those raise and are handled below.
    SchedulerOptions Plain = Options;
    Plain.SerializeSccs = true;
    Construction C(K, Plain, nullptr);
    SchedulerResult Result;
    if (!C.run(Result))
      raiseError(StatusCode::Stuck, "sched.plain",
                 "plain scheduling failed after tree abandon");
    Result.Stats.TreeAbandoned = true;
    return Result;
  } catch (const RecoverableError &E) {
    obs::metrics().counter("sched.status_errors").inc();
    SchedulerResult Result;
    Result.Sched = originalSchedule(K);
    Result.Outcome = E.status();
    // A construction starved by its budget surfaces as "stuck" or as a
    // runaway dimension count (every ILP fails fast once any enclosing
    // budget trips, so only the non-solving fallbacks make "progress");
    // report the root cause instead.
    if (budget::anyTripped() &&
        (Result.Outcome.code() == StatusCode::Stuck ||
         Result.Outcome.code() == StatusCode::DimensionLimit))
      Result.Outcome = Status(StatusCode::BudgetExceeded, "sched.budget",
                              "solver budget exhausted during scheduling");
    Result.FellBackToOriginal = true;
    Result.Stats.TreeAbandoned = Tree != nullptr;
    return Result;
  }
}
