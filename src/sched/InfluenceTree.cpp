//===- sched/InfluenceTree.cpp --------------------------------------------===//

#include "sched/InfluenceTree.h"

using namespace pinj;

InfluenceNode *InfluenceNode::addChild(std::string ChildLabel) {
  auto Child = std::make_unique<InfluenceNode>();
  Child->Depth = (Parent == nullptr && Label == "root") ? 0 : Depth + 1;
  Child->Parent = this;
  Child->Label = std::move(ChildLabel);
  Children.push_back(std::move(Child));
  return Children.back().get();
}

InfluenceNode *InfluenceNode::rightSibling() const {
  if (!Parent)
    return nullptr;
  for (unsigned I = 0, E = Parent->Children.size(); I != E; ++I) {
    if (Parent->Children[I].get() == this)
      return I + 1 < E ? Parent->Children[I + 1].get() : nullptr;
  }
  return nullptr;
}

InfluenceConstraint pinj::makeCoeffEquals(unsigned Stmt, unsigned Dim,
                                          unsigned CoeffIdx, Int Value) {
  InfluenceConstraint C;
  C.Terms.push_back({Stmt, Dim, CoeffIdx, 1});
  C.Constant = checkedNeg(Value);
  C.Rel = InfluenceConstraint::Eq;
  return C;
}

InfluenceConstraint pinj::makeCoeffsEqual(unsigned StmtA, unsigned DimA,
                                          unsigned CoeffA, unsigned StmtB,
                                          unsigned DimB, unsigned CoeffB) {
  InfluenceConstraint C;
  C.Terms.push_back({StmtA, DimA, CoeffA, 1});
  C.Terms.push_back({StmtB, DimB, CoeffB, -1});
  C.Constant = 0;
  C.Rel = InfluenceConstraint::Eq;
  return C;
}

namespace {

std::string describeConstraint(const Kernel &K,
                               const InfluenceConstraint &C) {
  std::string Out;
  for (unsigned I = 0, E = C.Terms.size(); I != E; ++I) {
    const CoeffTerm &T = C.Terms[I];
    if (I != 0)
      Out += T.Factor >= 0 ? " + " : " ";
    if (T.Factor != 1 && !(I != 0 && T.Factor == -1))
      Out += std::to_string(T.Factor) + "*";
    else if (I != 0 && T.Factor == -1)
      Out += "- ";
    const Statement &S = K.Stmts[T.Stmt];
    std::string CoeffName;
    if (T.CoeffIdx < S.numIters())
      CoeffName = S.IterNames[T.CoeffIdx];
    else if (T.CoeffIdx < S.numIters() + K.numParams())
      CoeffName = K.ParamNames[T.CoeffIdx - S.numIters()];
    else
      CoeffName = "1";
    Out += "T[" + S.Name + "," + std::to_string(T.Dim) + "," + CoeffName +
           "]";
  }
  if (C.Constant != 0)
    Out += (C.Constant > 0 ? " + " : " - ") +
           std::to_string(C.Constant > 0 ? C.Constant : -C.Constant);
  switch (C.Rel) {
  case InfluenceConstraint::Ge:
    Out += " >= 0";
    break;
  case InfluenceConstraint::Eq:
    Out += " == 0";
    break;
  case InfluenceConstraint::Le:
    Out += " <= 0";
    break;
  }
  return Out;
}

void printNode(const Kernel &K, const InfluenceNode &Node, unsigned Indent,
               std::string &Out) {
  std::string Pad(Indent * 2, ' ');
  Out += Pad + "node depth=" + std::to_string(Node.Depth) + " '" +
         Node.Label + "'";
  if (!Node.VectorStmts.empty()) {
    Out += " vector(x" + std::to_string(Node.VectorWidth) + ":";
    for (unsigned S : Node.VectorStmts)
      Out += " " + K.Stmts[S].Name;
    Out += ")";
  }
  Out += "\n";
  for (const InfluenceConstraint &C : Node.Constraints)
    Out += Pad + "  " + describeConstraint(K, C) + "\n";
  for (const auto &Child : Node.Children)
    printNode(K, *Child, Indent + 1, Out);
}

} // namespace

std::string InfluenceTree::str(const Kernel &K) const {
  std::string Out;
  for (const auto &Child : Root.Children)
    printNode(K, *Child, 0, Out);
  return Out;
}
