//===- support/Support.cpp ------------------------------------------------===//

#include "support/Support.h"

#include <cstdio>
#include <execinfo.h>

using namespace pinj;

void pinj::fatalError(const char *Message) {
  std::fprintf(stderr, "polyinject fatal error: %s\n", Message);
  // Best-effort backtrace to make internal-invariant reports actionable.
  void *Frames[32];
  int Depth = backtrace(Frames, 32);
  backtrace_symbols_fd(Frames, Depth, /*stderr=*/2);
  std::abort();
}

void pinj::overflowError(const char *Message) {
  raiseError(StatusCode::Overflow, "support.checked_arith", Message);
}

Int pinj::gcdInt(Int A, Int B) {
  if (A < 0)
    A = checkedNeg(A);
  if (B < 0)
    B = checkedNeg(B);
  while (B != 0) {
    Int T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Int pinj::lcmInt(Int A, Int B) {
  if (A == 0 || B == 0)
    return 0;
  Int G = gcdInt(A, B);
  Int AbsA = A < 0 ? checkedNeg(A) : A;
  Int AbsB = B < 0 ? checkedNeg(B) : B;
  return checkedMul(AbsA / G, AbsB);
}

std::string pinj::joinStrings(const std::vector<std::string> &Parts,
                              const std::string &Sep) {
  std::string Result;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}
