//===- support/Status.cpp -------------------------------------------------===//

#include "support/Status.h"

using namespace pinj;

const char *pinj::statusCodeName(StatusCode Code) {
  switch (Code) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::Overflow:
    return "overflow";
  case StatusCode::BudgetExceeded:
    return "budget_exceeded";
  case StatusCode::DimensionLimit:
    return "dimension_limit";
  case StatusCode::Stuck:
    return "stuck";
  case StatusCode::SolverError:
    return "solver_error";
  case StatusCode::InvalidInput:
    return "invalid_input";
  case StatusCode::InjectedFault:
    return "injected_fault";
  case StatusCode::Internal:
    return "internal";
  }
  return "unknown";
}

std::string Status::str() const {
  if (ok())
    return "ok";
  std::string Out = statusCodeName(Code);
  if (!TheSite.empty())
    Out += " at " + TheSite;
  if (!TheMessage.empty())
    Out += ": " + TheMessage;
  return Out;
}

RecoverableError::RecoverableError(Status S)
    : S(std::move(S)), What(this->S.str()) {}

void pinj::raiseError(StatusCode Code, const char *Site,
                      std::string Message) {
  throw RecoverableError(Status(Code, Site, std::move(Message)));
}
