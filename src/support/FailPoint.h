//===- support/FailPoint.h - Deterministic fault injection -----*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named fail-points instrumented at every stage of the
/// pipeline (ILP solve, Farkas elimination, scheduling, vectorizer, GPU
/// mapping, simulator, interpreter, ...). An active fail-point raises a
/// RecoverableError with code InjectedFault at its site, so tests can
/// force every degradation path deterministically. Activation is via the
/// API below or the POLYINJECT_FAILPOINTS environment variable (a
/// comma-separated list of site names, parsed on first use).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SUPPORT_FAILPOINT_H
#define POLYINJECT_SUPPORT_FAILPOINT_H

#include <string>
#include <vector>

namespace pinj {
namespace failpoint {

/// The catalog of every instrumented site; tests sweep over it.
const std::vector<const char *> &allSites();

/// True when \p Name is currently active.
bool isActive(const char *Name);

/// The instrumentation call: raises RecoverableError(InjectedFault,
/// \p Name) when the fail-point is active, otherwise does nothing.
/// \p Name must be a member of allSites().
void hit(const char *Name);

/// Activates \p Name for the current process (test API).
void activate(const std::string &Name);

/// Deactivates \p Name.
void deactivate(const std::string &Name);

/// Deactivates every fail-point (including env-activated ones).
void clearAll();

} // namespace failpoint
} // namespace pinj

#endif // POLYINJECT_SUPPORT_FAILPOINT_H
