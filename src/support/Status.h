//===- support/Status.h - Structured recoverable diagnostics ---*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The failure model of the pipeline. Reachable failures (overflow in
/// exact arithmetic, solver budgets, scheduling dead ends, injected
/// fail-points) are represented as a `Status` carried by a
/// `RecoverableError` exception; recovery boundaries (`scheduleKernel`,
/// each configuration in `runOperator`, the `polyinject-opt` driver)
/// catch it and degrade instead of aborting. `fatalError` remains only
/// for invariants unreachable from any parseable input (e.g. switches
/// over enum values the parser already validated).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SUPPORT_STATUS_H
#define POLYINJECT_SUPPORT_STATUS_H

#include <exception>
#include <string>

namespace pinj {

/// Every way a pipeline stage can fail without taking the process down.
enum class StatusCode {
  Ok = 0,
  Overflow,       ///< 64/128-bit overflow in exact integer/rational math.
  BudgetExceeded, ///< A solver budget (pivots, nodes, deadline) ran out.
  DimensionLimit, ///< The scheduling construction exceeded MaxDims.
  Stuck,          ///< Every scheduling fallback was exhausted.
  SolverError,    ///< A solver produced an unusable result.
  InvalidInput,   ///< Input rejected by kernel verification.
  InjectedFault,  ///< A test fail-point fired (see support/FailPoint.h).
  Internal,       ///< A recoverable internal invariant violation.
};

/// A short stable name ("overflow", "budget_exceeded", ...).
const char *statusCodeName(StatusCode Code);

/// The outcome of an operation: a code plus the site that raised it (a
/// dotted component path such as "lp.simplex" or a fail-point name) and
/// an optional human-readable message.
class Status {
public:
  Status() = default; ///< Ok.
  Status(StatusCode Code, std::string Site, std::string Message = "")
      : Code(Code), TheSite(std::move(Site)),
        TheMessage(std::move(Message)) {}

  static Status okStatus() { return Status(); }

  bool ok() const { return Code == StatusCode::Ok; }
  StatusCode code() const { return Code; }
  const std::string &site() const { return TheSite; }
  const std::string &message() const { return TheMessage; }

  /// "overflow at lp.simplex: <message>" (or "ok").
  std::string str() const;

private:
  StatusCode Code = StatusCode::Ok;
  std::string TheSite;
  std::string TheMessage;
};

/// The exception that unwinds from deep arithmetic/solver code to the
/// nearest recovery boundary. Always carries a non-ok Status.
class RecoverableError : public std::exception {
public:
  explicit RecoverableError(Status S);

  const Status &status() const { return S; }
  const char *what() const noexcept override { return What.c_str(); }

private:
  Status S;
  std::string What;
};

/// Raises a RecoverableError; the counterpart of fatalError for failures
/// a caller is expected to survive.
[[noreturn]] void raiseError(StatusCode Code, const char *Site,
                             std::string Message = "");

} // namespace pinj

#endif // POLYINJECT_SUPPORT_STATUS_H
