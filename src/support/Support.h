//===- support/Support.h - Small shared utilities --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-checked 64-bit integer arithmetic, gcd/lcm, and tiny string
/// helpers shared by every other library in the project.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_SUPPORT_SUPPORT_H
#define POLYINJECT_SUPPORT_SUPPORT_H

#include "support/Status.h"

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace pinj {

/// The integer type used throughout the polyhedral layers. Exact rational
/// arithmetic on top of it keeps numerators/denominators small via gcd
/// normalization; all operations are overflow-checked in every build.
using Int = std::int64_t;

/// Aborts with a message; reserved for internal invariant violations that
/// are unreachable from any parseable input. Reachable failures (overflow
/// included) raise a RecoverableError instead; see support/Status.h.
[[noreturn]] void fatalError(const char *Message);

/// Raises a recoverable Overflow error; out of line so the checked
/// helpers inline to a single well-predicted branch.
[[noreturn]] void overflowError(const char *Message);

/// Overflow-checked addition.
inline Int checkedAdd(Int A, Int B) {
  Int R;
  if (__builtin_add_overflow(A, B, &R))
    overflowError("integer overflow in addition");
  return R;
}

/// Overflow-checked subtraction.
inline Int checkedSub(Int A, Int B) {
  Int R;
  if (__builtin_sub_overflow(A, B, &R))
    overflowError("integer overflow in subtraction");
  return R;
}

/// Overflow-checked multiplication.
inline Int checkedMul(Int A, Int B) {
  Int R;
  if (__builtin_mul_overflow(A, B, &R))
    overflowError("integer overflow in multiplication");
  return R;
}

/// Negation that rejects the non-negatable minimum value.
inline Int checkedNeg(Int A) {
  if (A == INT64_MIN)
    overflowError("integer overflow in negation");
  return -A;
}

/// Greatest common divisor; gcd(0, 0) == 0, result is nonnegative.
Int gcdInt(Int A, Int B);

/// Least common multiple (overflow-checked); lcm(0, x) == 0.
Int lcmInt(Int A, Int B);

/// Floor division (rounds toward negative infinity).
inline Int floorDiv(Int A, Int B) {
  assert(B != 0 && "floorDiv by zero");
  Int Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

/// Ceiling division (rounds toward positive infinity).
inline Int ceilDiv(Int A, Int B) {
  assert(B != 0 && "ceilDiv by zero");
  Int Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

/// Joins \p Parts with \p Sep; convenience for printers.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

} // namespace pinj

#endif // POLYINJECT_SUPPORT_SUPPORT_H
