//===- support/FailPoint.cpp ----------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Status.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

using namespace pinj;

namespace {

// Keep this catalog in sync with the hit() calls across the pipeline and
// with the fail-point table in DESIGN.md ("Failure model").
const char *const Sites[] = {
    "lp.simplex",       // solveLp entry (every relaxation).
    "lp.ilp",           // solveIlp entry (every branch-and-bound run).
    "poly.farkas",      // addFarkasNonNegative (constraint elimination).
    "sched.schedule",   // scheduleKernel entry (whole construction).
    "influence.tree",   // buildInfluenceTree entry.
    "codegen.map",      // mapToGpu entry (block/thread mapping).
    "codegen.vectorize",// finalizeVectorMarks entry.
    "gpusim.simulate",  // simulateKernel entry.
    "exec.interpret",   // scheduleIsSemanticallyEqual entry (validation).
    "baselines.tvm",    // simulateTvmProxy entry.
};

struct Registry {
  std::set<std::string> Active;

  Registry() {
    if (const char *Env = std::getenv("POLYINJECT_FAILPOINTS")) {
      std::stringstream In(Env);
      std::string Name;
      while (std::getline(In, Name, ','))
        if (!Name.empty())
          Active.insert(Name);
    }
  }
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

const std::vector<const char *> &pinj::failpoint::allSites() {
  static const std::vector<const char *> All(std::begin(Sites),
                                             std::end(Sites));
  return All;
}

bool pinj::failpoint::isActive(const char *Name) {
  const Registry &R = registry();
  return !R.Active.empty() && R.Active.count(Name) != 0;
}

void pinj::failpoint::hit(const char *Name) {
  if (isActive(Name))
    raiseError(StatusCode::InjectedFault, Name, "fail-point fired");
}

void pinj::failpoint::activate(const std::string &Name) {
  registry().Active.insert(Name);
}

void pinj::failpoint::deactivate(const std::string &Name) {
  registry().Active.erase(Name);
}

void pinj::failpoint::clearAll() { registry().Active.clear(); }
