//===- support/FailPoint.cpp ----------------------------------------------===//

#include "support/FailPoint.h"

#include "support/Status.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

using namespace pinj;

namespace {

// Keep this catalog in sync with the hit() calls across the pipeline and
// with the fail-point table in DESIGN.md ("Failure model"). Sites under
// the "service." prefix fire at the compilation daemon's own boundaries
// (service/Daemon.cpp, service/Admission.cpp) rather than inside
// runOperator; the pipeline fail-point sweep filters them out.
const char *const Sites[] = {
    "lp.simplex",       // solveLp entry (every relaxation).
    "lp.ilp",           // solveIlp entry (every branch-and-bound run).
    "poly.farkas",      // addFarkasNonNegative (constraint elimination).
    "sched.schedule",   // scheduleKernel entry (whole construction).
    "influence.tree",   // buildInfluenceTree entry.
    "codegen.map",      // mapToGpu entry (block/thread mapping).
    "codegen.vectorize",// finalizeVectorMarks entry.
    "gpusim.simulate",  // simulateKernel entry.
    "exec.interpret",   // scheduleIsSemanticallyEqual entry (validation).
    "baselines.tvm",    // simulateTvmProxy entry.
    "service.parse",    // Daemon request-line parse boundary.
    "service.queue",    // AdmissionQueue::admit insert boundary.
    "service.respond",  // Daemon response write boundary.
    "service.drain",    // Daemon drain entry.
};

// The registry is shared between the daemon's worker threads and the
// chaos harness, which activates and clears sites while requests are in
// flight — so the set is mutex-guarded, with a relaxed atomic count
// keeping the nothing-active fast path lock-free.
struct Registry {
  std::mutex Mu;
  std::set<std::string> Active;
  std::atomic<std::size_t> ActiveCount{0};

  Registry() {
    if (const char *Env = std::getenv("POLYINJECT_FAILPOINTS")) {
      std::stringstream In(Env);
      std::string Name;
      while (std::getline(In, Name, ','))
        if (!Name.empty())
          Active.insert(Name);
    }
    ActiveCount.store(Active.size(), std::memory_order_relaxed);
  }
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

const std::vector<const char *> &pinj::failpoint::allSites() {
  static const std::vector<const char *> All(std::begin(Sites),
                                             std::end(Sites));
  return All;
}

bool pinj::failpoint::isActive(const char *Name) {
  Registry &R = registry();
  if (R.ActiveCount.load(std::memory_order_relaxed) == 0)
    return false;
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Active.count(Name) != 0;
}

void pinj::failpoint::hit(const char *Name) {
  if (isActive(Name))
    raiseError(StatusCode::InjectedFault, Name, "fail-point fired");
}

void pinj::failpoint::activate(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Active.insert(Name);
  R.ActiveCount.store(R.Active.size(), std::memory_order_relaxed);
}

void pinj::failpoint::deactivate(const std::string &Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Active.erase(Name);
  R.ActiveCount.store(R.Active.size(), std::memory_order_relaxed);
}

void pinj::failpoint::clearAll() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Active.clear();
  R.ActiveCount.store(0, std::memory_order_relaxed);
}
