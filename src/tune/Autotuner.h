//===- tune/Autotuner.h - The pipeline's tuning hook ------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TuningHook implementation: per operator, replay a winning config
/// from the tuning database when one exists for this exact request
/// fingerprint and search-space shape, otherwise search the space with
/// the configured strategy and persist the winner. The baseline (the
/// unmodified pipeline options) is always evaluated with the same
/// evaluator, and a searched candidate is applied only when its
/// simulated time is strictly better — tuning never selects a config
/// the cost model scores worse than the paper default.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TUNE_AUTOTUNER_H
#define POLYINJECT_TUNE_AUTOTUNER_H

#include "tune/Strategy.h"
#include "tune/TuningDb.h"

namespace pinj {
namespace tune {

class Autotuner final : public TuningHook {
public:
  struct Config {
    /// Strategy name ("exhaustive", "greedy", "anneal", or "surrogate"
    /// when Model is set); unknown names — and "surrogate" without a
    /// model — fall back to greedy.
    std::string Strategy = "greedy";
    /// Seed for stochastic strategies (--tune-seed).
    std::uint64_t Seed = 1;
    /// Unique candidate evaluations per operator (--tune-budget).
    std::size_t MaxEvaluations = 64;
    /// Worker threads per search (1 inside batch compilation, where
    /// operators are already evaluated concurrently).
    unsigned Jobs = 1;
    /// Per-candidate solver isolation (see Evaluator::Config).
    SolverBudget CandidateBudget{/*MaxPivots=*/2000000,
                                 /*MaxIlpNodes=*/200000,
                                 /*WallMs=*/0};
    /// The space to search; defaultSearchSpace() unless narrowed.
    SearchSpace Space;
    /// Optional persistent store; not owned. May be shared by
    /// concurrent Autotuners (TuningDb is thread-safe).
    TuningDb *Db = nullptr;
    /// The trained cost model for Strategy == "surrogate"
    /// (model/GbStumps.h, loaded via loadModel). Shared because
    /// prediction is const and the batch compiler's workers tune
    /// concurrently.
    std::shared_ptr<const model::GbStumpsModel> Model;
    /// Candidates the surrogate strategy gpusim-evaluates per operator
    /// (--tune-topk); ignored by the other strategies.
    std::size_t TopK = 8;
  };

  explicit Autotuner(Config Cfg);

  /// TuningHook: chooses options for \p K (see class comment). Always
  /// returns true — a search that finds nothing better reports the
  /// "baseline" encoding. Thread-safe.
  bool tune(const Kernel &K, PipelineOptions &Tuned,
            TunedConfig &Out) override;

  const Config &config() const { return Cfg; }

private:
  Config Cfg;
  std::unique_ptr<Strategy> Strat;
  std::string SpaceSignature;
};

} // namespace tune
} // namespace pinj

#endif // POLYINJECT_TUNE_AUTOTUNER_H
