//===- tune/TuningDb.cpp --------------------------------------------------===//

#include "tune/TuningDb.h"

#include "obs/Metrics.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace pinj;
using namespace pinj::tune;

namespace fs = std::filesystem;

namespace {

// On-disk format (text, one file):
//
//   polyinject-tunedb v1
//   entry <32hex key> <32hex space-sig> <strategy> <predicted %.17g> <len>
//   <len bytes of encoding>\n
//   ...
//   end
//
// Every entry is revalidated on load; anything malformed is skipped by
// resynchronizing on the next "entry " line, counted as a reject.

constexpr const char *FileHeader = "polyinject-tunedb v1";

obs::Counter &rejectCounter() {
  static obs::Counter &C = obs::metrics().counter("tune.db_rejects");
  return C;
}

bool parseHex64(const std::string &S, std::size_t At, std::uint64_t &Out) {
  if (At + 16 > S.size())
    return false;
  Out = 0;
  for (std::size_t I = 0; I < 16; ++I) {
    char C = S[At + I];
    unsigned Nibble;
    if (C >= '0' && C <= '9')
      Nibble = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      Nibble = unsigned(C - 'a') + 10;
    else
      return false;
    Out = (Out << 4) | Nibble;
  }
  return true;
}

bool parseFingerprint(const std::string &Hex, service::Fingerprint &Out) {
  return Hex.size() == 32 && parseHex64(Hex, 0, Out.Hi) &&
         parseHex64(Hex, 16, Out.Lo);
}

bool validHex32(const std::string &S) {
  if (S.size() != 32)
    return false;
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

} // namespace

TuningDb::TuningDb(std::string Path) : Path(std::move(Path)) {
  std::lock_guard<std::mutex> Lock(Mu);
  loadLocked();
}

void TuningDb::loadLocked() {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return; // Missing file: empty database.

  std::string Line;
  if (!std::getline(In, Line) || Line != FileHeader) {
    // Unknown version or not a tuning database at all: ignore the whole
    // file (one reject) rather than misread entries.
    ++St.Rejects;
    rejectCounter().inc();
    return;
  }

  bool SawEnd = false;
  while (std::getline(In, Line)) {
    if (Line == "end") {
      SawEnd = true;
      break;
    }
    // Parse one entry line; on any damage fall through to the reject
    // path, which resynchronizes on the next line (getline already
    // consumed this one).
    std::istringstream Fields(Line);
    std::string Tag, KeyHex, Sig, Strategy, TimeText;
    std::size_t Len = 0;
    bool Ok = bool(Fields >> Tag >> KeyHex >> Sig >> Strategy >> TimeText >>
                   Len) &&
              Tag == "entry";
    service::Fingerprint Key;
    DbEntry E;
    if (Ok)
      Ok = parseFingerprint(KeyHex, Key) && validHex32(Sig);
    if (Ok) {
      try {
        std::size_t Used = 0;
        E.PredictedTimeUs = std::stod(TimeText, &Used);
        Ok = Used == TimeText.size();
      } catch (...) {
        Ok = false;
      }
    }
    if (Ok && Len <= 1 << 20) {
      std::string Payload(Len, '\0');
      In.read(&Payload[0], static_cast<std::streamsize>(Len));
      char Newline = 0;
      In.get(Newline);
      if (In && Newline == '\n') {
        E.Encoding = std::move(Payload);
        E.Strategy = std::move(Strategy);
        E.SpaceSignature = std::move(Sig);
        Entries[Key] = std::move(E);
        continue;
      }
      // Truncated payload: the stream may be past line boundaries now;
      // getline resynchronizes on whatever text remains.
      Ok = false;
    }
    ++St.Rejects;
    rejectCounter().inc();
  }
  if (!SawEnd) {
    // Truncated file (no terminator): keep what validated, count the
    // damage once.
    ++St.Rejects;
    rejectCounter().inc();
  }
}

void TuningDb::saveLocked() {
  static obs::Counter &WriteErrors =
      obs::metrics().counter("tune.db_write_errors");

  std::ostringstream TmpName;
  TmpName << Path << ".tmp." << std::this_thread::get_id();
  std::string Tmp = TmpName.str();
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      WriteErrors.inc();
      return;
    }
    Out << FileHeader << '\n';
    for (const auto &[Key, E] : Entries) {
      char Time[64];
      std::snprintf(Time, sizeof(Time), "%.17g", E.PredictedTimeUs);
      Out << "entry " << Key.str() << ' ' << E.SpaceSignature << ' '
          << E.Strategy << ' ' << Time << ' ' << E.Encoding.size() << '\n'
          << E.Encoding << '\n';
    }
    Out << "end\n";
    Out.close();
    if (!Out) {
      WriteErrors.inc();
      std::error_code Ec;
      fs::remove(Tmp, Ec);
      return;
    }
  }
  // Write-then-rename so readers only ever see complete files (the
  // rename is atomic within a directory).
  std::error_code Ec;
  fs::rename(Tmp, Path, Ec);
  if (Ec) {
    WriteErrors.inc();
    fs::remove(Tmp, Ec);
  }
}

bool TuningDb::lookup(const service::Fingerprint &Key, DbEntry &Out) {
  static obs::Counter &Misses = obs::metrics().counter("tune.db_misses");
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++St.Misses;
    Misses.inc();
    return false;
  }
  ++St.Hits;
  Out = It->second;
  return true;
}

void TuningDb::store(const service::Fingerprint &Key, const DbEntry &E) {
  static obs::Counter &Stores = obs::metrics().counter("tune.db_stores");
  std::lock_guard<std::mutex> Lock(Mu);
  Entries[Key] = E;
  ++St.Stores;
  Stores.inc();
  if (!Path.empty())
    saveLocked();
}

TuningDb::Stats TuningDb::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

std::size_t TuningDb::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}
