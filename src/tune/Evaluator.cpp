//===- tune/Evaluator.cpp -------------------------------------------------===//

#include "tune/Evaluator.h"

#include "codegen/Mapping.h"
#include "codegen/Vectorizer.h"
#include "lp/Budget.h"
#include "obs/Metrics.h"
#include "support/Status.h"
#include "target/Target.h"

#include <atomic>
#include <thread>

using namespace pinj;
using namespace pinj::tune;

bool tune::buildInflMappedKernel(const Kernel &K, const PipelineOptions &O,
                                 MappedKernel &Out) {
  try {
    // Mirror runOperator's operator-wide budget; anyTripped() below then
    // sees both this scope and any caller-installed candidate scope.
    budget::BudgetScope OpBudget(O.Budget);

    Schedule InflSched;
    bool Fallback = false;
    try {
      SchedulerResult InflRun = scheduleInfluenced(K, O);
      if (!InflRun.Outcome.ok())
        Fallback = true;
      else
        InflSched = InflRun.Sched;
    } catch (const RecoverableError &) {
      Fallback = true;
    }
    if (!Fallback && !isSimulatableSchedule(K, InflSched))
      Fallback = true; // Fusion the backend rejects; runOperator falls
                       // back to the reference schedule.
    if (Fallback) {
      SchedulerOptions IslOptions = O.Sched;
      IslOptions.SerializeSccs = true;
      SchedulerResult IslRun = scheduleKernel(K, IslOptions);
      if (!IslRun.Outcome.ok())
        return false;
      InflSched = IslRun.Sched;
      if (!isSimulatableSchedule(K, InflSched))
        return false;
    }

    try {
      finalizeVectorMarks(K, InflSched, /*DisableVectorization=*/false);
    } catch (const RecoverableError &) {
      return false;
    }
    if (!isSimulatableSchedule(K, InflSched))
      return false;

    // A budget shaped this run; the un-tripped pipeline would produce a
    // different schedule, so the score would be for the wrong config.
    if (budget::anyTripped())
      return false;

    Out = mapToGpu(K, InflSched, O.Mapping);
    return true;
  } catch (const RecoverableError &) {
    return false;
  }
}

double tune::predictInflTimeUs(const Kernel &K, const PipelineOptions &O) {
  MappedKernel M;
  if (!buildInflMappedKernel(K, O, M))
    return failedScore();
  return target::simulateForOptions(M, O).TimeUs;
}

Evaluator::Evaluator(const Kernel &K, const PipelineOptions &Base,
                     const SearchSpace &Space, Config Cfg)
    : K(K), Base(Base), Space(Space), Cfg(Cfg) {
  // The evaluator owns its copies of the hooks' absence: candidates are
  // scored outside the pipeline, so downstream hooks must not fire.
  this->Base.Sink = nullptr;
  this->Base.Cache = nullptr;
  this->Base.Tuner = nullptr;
  if (this->Cfg.Jobs == 0)
    this->Cfg.Jobs = 1;
}

double Evaluator::scoreOne(const Candidate &C) const {
  PipelineOptions O = Base;
  Space.apply(C, O);
  budget::BudgetScope Isolation(Cfg.CandidateBudget);
  return predictInflTimeUs(K, O);
}

double Evaluator::baseline() {
  if (!HaveBaseline) {
    budget::BudgetScope Isolation(Cfg.CandidateBudget);
    BaselineScore = predictInflTimeUs(K, Base);
    HaveBaseline = true;
  }
  return BaselineScore;
}

std::vector<double> Evaluator::evaluate(const std::vector<Candidate> &Batch) {
  static obs::Counter &Evaluated = obs::metrics().counter("tune.evaluations");
  static obs::Counter &Failures =
      obs::metrics().counter("tune.candidate_failures");
  static obs::Counter &Denials =
      obs::metrics().counter("tune.budget_denials");

  std::vector<double> Out(Batch.size(), failedScore());

  // Collect the unique, uncached candidates in batch order, up to the
  // remaining evaluation budget; everything else resolves from the
  // memo. Candidates past the budget are memoized as failures right
  // here: the budget only ever shrinks, so this evaluator can never
  // score them, and recording that keeps revisits (greedy/anneal
  // neighbors) from re-asking every call.
  std::vector<Candidate> Fresh;
  std::map<Candidate, std::size_t> FreshIndex;
  for (const Candidate &C : Batch) {
    if (Memo.count(C) || FreshIndex.count(C))
      continue;
    if (Fresh.size() >= remaining()) {
      Memo.emplace(C, failedScore());
      Denials.inc();
      continue;
    }
    FreshIndex.emplace(C, Fresh.size());
    Fresh.push_back(C);
  }

  // Score the fresh candidates on the worker pool. Workers only write
  // disjoint Scores slots; the memo is filled after the join, so no
  // locking is needed and results are independent of the worker count.
  std::vector<double> Scores(Fresh.size(), failedScore());
  if (!Fresh.empty()) {
    unsigned Workers = static_cast<unsigned>(
        std::min<std::size_t>(Cfg.Jobs, Fresh.size()));
    if (Workers <= 1) {
      for (std::size_t I = 0; I < Fresh.size(); ++I)
        Scores[I] = scoreOne(Fresh[I]);
    } else {
      std::atomic<std::size_t> Next{0};
      auto Work = [&] {
        for (;;) {
          std::size_t I = Next.fetch_add(1, std::memory_order_relaxed);
          if (I >= Fresh.size())
            return;
          Scores[I] = scoreOne(Fresh[I]);
        }
      };
      std::vector<std::thread> Pool;
      Pool.reserve(Workers);
      for (unsigned W = 0; W < Workers; ++W)
        Pool.emplace_back(Work);
      for (std::thread &T : Pool)
        T.join();
    }
    for (std::size_t I = 0; I < Fresh.size(); ++I) {
      Memo.emplace(Fresh[I], Scores[I]);
      if (Scores[I] == failedScore())
        Failures.inc();
    }
    Evals += Fresh.size();
    Evaluated.add(Fresh.size());
  }

  for (std::size_t I = 0; I < Batch.size(); ++I) {
    auto It = Memo.find(Batch[I]);
    if (It != Memo.end())
      Out[I] = It->second;
  }
  return Out;
}
