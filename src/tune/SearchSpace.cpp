//===- tune/SearchSpace.cpp -----------------------------------------------===//

#include "tune/SearchSpace.h"

#include "service/Fingerprint.h"

#include <algorithm>

using namespace pinj;
using namespace pinj::tune;

SearchSpace::SearchSpace(std::vector<ParamDim> Dims)
    : Dims(std::move(Dims)) {}

std::size_t SearchSpace::size() const {
  if (Dims.empty())
    return 0;
  std::size_t N = 1;
  for (const ParamDim &D : Dims)
    N *= D.Values.size();
  return N;
}

Candidate SearchSpace::candidateAt(std::size_t Index) const {
  Candidate C(Dims.size(), 0);
  for (std::size_t I = Dims.size(); I-- > 0;) {
    std::size_t Radix = Dims[I].Values.size();
    C[I] = static_cast<unsigned>(Index % Radix);
    Index /= Radix;
  }
  return C;
}

Candidate SearchSpace::project(const PipelineOptions &Base) const {
  Candidate C(Dims.size(), 0);
  for (std::size_t I = 0; I < Dims.size(); ++I) {
    std::int64_t V = Dims[I].Read(Base);
    const std::vector<std::int64_t> &Vals = Dims[I].Values;
    auto It = std::find(Vals.begin(), Vals.end(), V);
    C[I] = It == Vals.end()
               ? 0
               : static_cast<unsigned>(It - Vals.begin());
  }
  return C;
}

std::vector<Candidate> SearchSpace::neighbors(const Candidate &C) const {
  std::vector<Candidate> Out;
  for (std::size_t I = 0; I < Dims.size(); ++I) {
    if (C[I] > 0) {
      Candidate N = C;
      --N[I];
      Out.push_back(std::move(N));
    }
    if (C[I] + 1 < Dims[I].Values.size()) {
      Candidate N = C;
      ++N[I];
      Out.push_back(std::move(N));
    }
  }
  return Out;
}

std::string SearchSpace::encode(const Candidate &C) const {
  std::string Out;
  for (std::size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      Out += ',';
    Out += Dims[I].Name;
    Out += '=';
    Out += std::to_string(Dims[I].Values[C[I]]);
  }
  return Out;
}

bool SearchSpace::decode(const std::string &Text, Candidate &Out) const {
  Candidate C(Dims.size(), 0);
  std::size_t Pos = 0;
  for (std::size_t I = 0; I < Dims.size(); ++I) {
    std::size_t End = Text.find(',', Pos);
    if (End == std::string::npos)
      End = Text.size();
    // One "name=value" segment, in dimension order.
    std::size_t Eq = Text.find('=', Pos);
    if (Eq == std::string::npos || Eq >= End)
      return false;
    if (Text.compare(Pos, Eq - Pos, Dims[I].Name) != 0)
      return false;
    std::int64_t V = 0;
    try {
      std::size_t Used = 0;
      V = std::stoll(Text.substr(Eq + 1, End - Eq - 1), &Used);
      if (Used != End - Eq - 1)
        return false;
    } catch (...) {
      return false;
    }
    const std::vector<std::int64_t> &Vals = Dims[I].Values;
    auto It = std::find(Vals.begin(), Vals.end(), V);
    if (It == Vals.end())
      return false;
    C[I] = static_cast<unsigned>(It - Vals.begin());
    // The last segment must run to the end of the text: a ',' after it
    // means trailing segments (a wider space wrote this) or a bare
    // trailing comma, both malformed.
    if (I + 1 == Dims.size() && End != Text.size())
      return false;
    Pos = End == Text.size() ? End : End + 1;
    if (I + 1 < Dims.size() && Pos >= Text.size())
      return false;
  }
  Out = std::move(C);
  return true;
}

void SearchSpace::apply(const Candidate &C, PipelineOptions &O) const {
  for (std::size_t I = 0; I < Dims.size(); ++I)
    Dims[I].Apply(O, Dims[I].Values[C[I]]);
}

std::string SearchSpace::signature() const {
  service::FingerprintBuilder H;
  H.str("pinj-tunespace-v1");
  H.u64(Dims.size());
  for (const ParamDim &D : Dims) {
    H.str(D.Name);
    H.u64(D.Values.size());
    for (std::int64_t V : D.Values)
      H.u64(static_cast<std::uint64_t>(V));
  }
  return H.get().str();
}

namespace {

// Solver-budget tiers: 0 leaves the base scheduling budget untouched;
// 1 and 2 cap per-run simplex pivots and ILP nodes (never wall-clock —
// deterministic work counts keep jobs=1 and jobs=N searches identical).
void applyBudgetTier(PipelineOptions &O, std::int64_t Tier) {
  if (Tier == 0)
    return;
  O.Sched.Budget.MaxPivots = Tier == 1 ? 200000 : 50000;
  O.Sched.Budget.MaxIlpNodes = Tier == 1 ? 20000 : 5000;
}

ParamDim vectorWidthDim() {
  return {"influence.max_vector_width",
          {4, 2, 1},
          [](const PipelineOptions &O) {
            return static_cast<std::int64_t>(O.Influence.MaxVectorWidth);
          },
          [](PipelineOptions &O, std::int64_t V) {
            O.Influence.MaxVectorWidth = static_cast<unsigned>(V);
          }};
}

ParamDim mappingThreadsDim() {
  return {"mapping.max_threads",
          {1024, 512, 256, 128},
          [](const PipelineOptions &O) {
            return static_cast<std::int64_t>(O.Mapping.MaxThreadsPerBlock);
          },
          [](PipelineOptions &O, std::int64_t V) {
            O.Mapping.MaxThreadsPerBlock = static_cast<Int>(V);
          }};
}

} // namespace

SearchSpace tune::defaultSearchSpace() {
  std::vector<ParamDim> Dims;
  Dims.push_back(vectorWidthDim());
  Dims.push_back({"influence.thread_limit",
                  {1024, 512, 256, 128},
                  [](const PipelineOptions &O) {
                    return static_cast<std::int64_t>(O.Influence.ThreadLimit);
                  },
                  [](PipelineOptions &O, std::int64_t V) {
                    O.Influence.ThreadLimit = static_cast<Int>(V);
                  }});
  Dims.push_back({"influence.max_scenarios",
                  {8, 4, 2},
                  [](const PipelineOptions &O) {
                    return static_cast<std::int64_t>(O.Influence.MaxScenarios);
                  },
                  [](PipelineOptions &O, std::int64_t V) {
                    O.Influence.MaxScenarios = static_cast<unsigned>(V);
                  }});
  Dims.push_back({"influence.max_inner_dims",
                  {3, 2, 1},
                  [](const PipelineOptions &O) {
                    return static_cast<std::int64_t>(O.Influence.MaxInnerDims);
                  },
                  [](PipelineOptions &O, std::int64_t V) {
                    O.Influence.MaxInnerDims = static_cast<unsigned>(V);
                  }});
  Dims.push_back(mappingThreadsDim());
  Dims.push_back({"sched.proximity_input",
                  {0, 1},
                  [](const PipelineOptions &O) {
                    return static_cast<std::int64_t>(
                        O.Sched.ProximityIncludesInput ? 1 : 0);
                  },
                  [](PipelineOptions &O, std::int64_t V) {
                    O.Sched.ProximityIncludesInput = V != 0;
                  }});
  Dims.push_back({"sched.budget_tier",
                  {0, 1, 2},
                  [](const PipelineOptions &) {
                    // Tiers are write-only overlays; the baseline always
                    // projects to tier 0 (keep the base budget).
                    return std::int64_t(0);
                  },
                  applyBudgetTier});
  return SearchSpace(std::move(Dims));
}

SearchSpace tune::tinySearchSpace() {
  std::vector<ParamDim> Dims;
  ParamDim Vec = vectorWidthDim();
  Vec.Values = {4, 1};
  Dims.push_back(std::move(Vec));
  ParamDim Threads = mappingThreadsDim();
  Threads.Values = {1024, 256};
  Dims.push_back(std::move(Threads));
  return SearchSpace(std::move(Dims));
}

SearchSpace tune::searchSpaceByName(const std::string &Name) {
  if (Name == "default")
    return defaultSearchSpace();
  if (Name == "tiny")
    return tinySearchSpace();
  return SearchSpace();
}
