//===- tune/Evaluator.h - Parallel candidate evaluation ---------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scores tuning candidates by the simulated infl-configuration kernel
/// time. Each evaluation replays the pipeline's own decisions — the
/// influenced scheduler, its isl fallback, vector finalization, GPU
/// mapping and the warp simulator — under a per-candidate solver budget
/// so one pathological candidate cannot stall the search. Batches run
/// on a worker pool (the service::BatchCompiler atomic-index pattern);
/// scores are analytic, so the result is identical for any worker
/// count.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TUNE_EVALUATOR_H
#define POLYINJECT_TUNE_EVALUATOR_H

#include "lp/Budget.h"
#include "tune/SearchSpace.h"

#include <cstddef>
#include <limits>
#include <map>
#include <vector>

namespace pinj {
namespace tune {

/// The score of a candidate that failed to produce a simulatable
/// schedule (or tripped its budget): never selected.
inline double failedScore() {
  return std::numeric_limits<double>::infinity();
}

class Evaluator {
public:
  struct Config {
    /// Worker threads for batch evaluation. Scores do not depend on it.
    unsigned Jobs = 1;
    /// Per-candidate resource isolation, installed around each
    /// evaluation (nested inside the candidate's own scheduling
    /// budget). Deterministic work counts only — a wall-clock cap here
    /// would make the chosen config depend on machine load.
    SolverBudget CandidateBudget{/*MaxPivots=*/2000000,
                                 /*MaxIlpNodes=*/200000,
                                 /*WallMs=*/0};
    /// Unique candidate evaluations allowed (the --tune-budget). The
    /// baseline evaluation is free: the never-worse guarantee must not
    /// compete with the search for budget.
    std::size_t MaxEvaluations = 64;
  };

  Evaluator(const Kernel &K, const PipelineOptions &Base,
            const SearchSpace &Space, Config Cfg);

  const Kernel &kernel() const { return K; }
  const PipelineOptions &base() const { return Base; }
  unsigned jobs() const { return Cfg.Jobs; }

  /// The score of the unmodified base options (memoized).
  double baseline();

  /// Scores for each candidate of \p Batch, memoized across calls —
  /// failures included, so a failing candidate never re-pays its
  /// gpusim run when a hill-climbing strategy revisits it. Candidates
  /// beyond the remaining evaluation budget score failedScore()
  /// without being evaluated; since the budget only ever shrinks they
  /// are memoized as failures too (counted on tune.budget_denials).
  std::vector<double> evaluate(const std::vector<Candidate> &Batch);

  /// Unique candidate evaluations performed so far.
  std::size_t evaluations() const { return Evals; }
  std::size_t remaining() const {
    return Evals >= Cfg.MaxEvaluations ? 0 : Cfg.MaxEvaluations - Evals;
  }

private:
  double scoreOne(const Candidate &C) const;

  const Kernel &K;
  PipelineOptions Base;
  const SearchSpace &Space;
  Config Cfg;
  std::map<Candidate, double> Memo;
  double BaselineScore = 0;
  bool HaveBaseline = false;
  std::size_t Evals = 0;
};

/// The scoring primitive: the simulated kernel time of \p K's infl
/// configuration under \p O, mirroring runOperator exactly — influenced
/// scheduling, fallback to serialized-SCC isl scheduling when that
/// fails or is not simulatable, vector-mark finalization, GPU mapping,
/// warp simulation. \returns failedScore() when no simulatable schedule
/// results or any solver budget tripped (a tripped run's schedule is
/// not what the un-tripped pipeline would produce).
double predictInflTimeUs(const Kernel &K, const PipelineOptions &O);

/// The scheduling-and-mapping front half of predictInflTimeUs: produces
/// the mapped kernel a candidate's score would simulate, without scoring
/// it. \returns false in exactly the cases predictInflTimeUs returns
/// failedScore(). The calibration tool uses this to accumulate a row's
/// transaction counters once and re-score them under candidate
/// time-model constants.
bool buildInflMappedKernel(const Kernel &K, const PipelineOptions &O,
                           MappedKernel &Out);

} // namespace tune
} // namespace pinj

#endif // POLYINJECT_TUNE_EVALUATOR_H
