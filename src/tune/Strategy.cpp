//===- tune/Strategy.cpp --------------------------------------------------===//

#include "tune/Strategy.h"

#include "model/Features.h"
#include "model/GbStumps.h"
#include "obs/Journal.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cmath>

using namespace pinj;
using namespace pinj::tune;

bool tune::improves(const ScoredCandidate &A, const ScoredCandidate &B) {
  if (A.TimeUs != B.TimeUs)
    return A.TimeUs < B.TimeUs;
  return A.C < B.C;
}

namespace {

/// Folds a batch of scored candidates into the running best.
void takeBest(std::optional<ScoredCandidate> &Best,
              const std::vector<Candidate> &Batch,
              const std::vector<double> &Scores) {
  for (std::size_t I = 0; I < Batch.size(); ++I) {
    if (Scores[I] == failedScore())
      continue;
    ScoredCandidate S{Batch[I], Scores[I]};
    if (!Best || improves(S, *Best))
      Best = std::move(S);
  }
}

class ExhaustiveStrategy final : public Strategy {
public:
  const char *name() const override { return "exhaustive"; }

  std::optional<ScoredCandidate> run(const SearchSpace &Space,
                                     Evaluator &Eval,
                                     std::uint64_t) const override {
    std::optional<ScoredCandidate> Best;
    std::size_t Total = Space.size();
    std::size_t ChunkSize =
        std::max<std::size_t>(16, std::size_t(Eval.jobs()) * 4);
    for (std::size_t At = 0; At < Total && Eval.remaining() > 0;) {
      std::vector<Candidate> Batch;
      std::size_t End =
          std::min(Total, At + std::min(ChunkSize, Eval.remaining()));
      for (; At < End; ++At)
        Batch.push_back(Space.candidateAt(At));
      takeBest(Best, Batch, Eval.evaluate(Batch));
    }
    return Best;
  }
};

class GreedyStrategy final : public Strategy {
public:
  const char *name() const override { return "greedy"; }

  std::optional<ScoredCandidate> run(const SearchSpace &Space,
                                     Evaluator &Eval,
                                     std::uint64_t) const override {
    // Hill-climb from the baseline's projection: evaluate all one-step
    // neighbors, move to the best improving one, repeat until a local
    // optimum or the budget runs out.
    Candidate Start = Space.project(Eval.base());
    std::vector<double> StartScore = Eval.evaluate({Start});
    std::optional<ScoredCandidate> Best;
    takeBest(Best, {Start}, StartScore);
    std::optional<ScoredCandidate> At = Best;
    while (Eval.remaining() > 0) {
      std::vector<Candidate> Ring = Space.neighbors(At ? At->C : Start);
      if (Ring.empty())
        break;
      std::optional<ScoredCandidate> BestNeighbor;
      takeBest(BestNeighbor, Ring, Eval.evaluate(Ring));
      if (BestNeighbor && (!Best || improves(*BestNeighbor, *Best)))
        Best = BestNeighbor;
      if (!BestNeighbor || (At && !improves(*BestNeighbor, *At)))
        break; // Local optimum.
      At = BestNeighbor;
    }
    return Best;
  }
};

/// xorshift64: tiny, seedable, identical everywhere.
struct XorShift64 {
  std::uint64_t State;
  explicit XorShift64(std::uint64_t Seed)
      : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  std::uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  double uniform() { // [0, 1)
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }
};

class AnnealStrategy final : public Strategy {
public:
  const char *name() const override { return "anneal"; }

  std::optional<ScoredCandidate> run(const SearchSpace &Space,
                                     Evaluator &Eval,
                                     std::uint64_t Seed) const override {
    bool HasMoves = false;
    for (const ParamDim &D : Space.dims())
      HasMoves |= D.Values.size() > 1;

    Candidate Cur = Space.project(Eval.base());
    std::optional<ScoredCandidate> Best;
    std::vector<double> First = Eval.evaluate({Cur});
    takeBest(Best, {Cur}, First);
    if (!HasMoves)
      return Best;

    XorShift64 Rng(Seed);
    double CurScore = First[0];
    // Relative temperature: acceptance depends on score ratios, so the
    // walk behaves the same at microsecond and millisecond scales.
    double Temp = 0.25;
    // Proposal cap: memoized revisits cost no evaluation budget, so a
    // converged walk needs its own bound to terminate.
    std::size_t Proposals = 8 * Eval.remaining() + 64;
    while (Eval.remaining() > 0 && Proposals-- > 0) {
      std::size_t D = Rng.next() % Space.dims().size();
      std::size_t Size = Space.dims()[D].Values.size();
      if (Size < 2)
        continue;
      Candidate Next = Cur;
      std::size_t Step = Rng.next() & 1 ? 1 : Size - 1; // +-1 with wrap.
      Next[D] = static_cast<unsigned>((Next[D] + Step) % Size);

      double Score = Eval.evaluate({Next})[0];
      takeBest(Best, {Next}, {Score});
      bool Accept = false;
      if (Score != failedScore()) {
        if (Score <= CurScore || CurScore == failedScore())
          Accept = true;
        else {
          double Scale = std::max(CurScore, 1e-9) * Temp;
          Accept = Rng.uniform() < std::exp(-(Score - CurScore) / Scale);
        }
      }
      if (Accept) {
        Cur = std::move(Next);
        CurScore = Score;
      }
      Temp *= 0.97;
    }
    return Best;
  }
};

/// The learned-cost-model search (see makeSurrogateStrategy). Ranking
/// the whole space costs one model inference per candidate — three
/// orders of magnitude cheaper than a gpusim evaluation — so the full
/// default space is always ranked regardless of the evaluation budget.
class SurrogateStrategy final : public Strategy {
public:
  SurrogateStrategy(std::shared_ptr<const model::GbStumpsModel> Model,
                    std::size_t TopK)
      : Model(std::move(Model)), TopK(TopK ? TopK : 1) {}

  const char *name() const override { return "surrogate"; }

  std::optional<ScoredCandidate> run(const SearchSpace &Space,
                                     Evaluator &Eval,
                                     std::uint64_t) const override {
    static obs::Counter &EvalsSaved =
        obs::metrics().counter("tune.surrogate_evals_saved");
    static obs::Counter &Searches =
        obs::metrics().counter("tune.surrogate_searches");
    Searches.inc();

    std::size_t Total = Space.size();
    if (Total == 0)
      return std::nullopt;

    // Rank every candidate by predicted score. Only the option-side
    // feature slots change across candidates, so the kernel-side slots
    // are extracted once and rewritten in place.
    model::FeatureVector X = model::extractFeatures(Eval.kernel(),
                                                    Eval.base());
    std::vector<std::pair<double, std::size_t>> Ranked;
    Ranked.reserve(Total);
    PipelineOptions O;
    for (std::size_t I = 0; I < Total; ++I) {
      O = Eval.base();
      Space.apply(Space.candidateAt(I), O);
      model::writeOptionFeatures(O, X);
      Ranked.emplace_back(Model->predict(X), I);
    }
    // Prediction ties rank by enumeration index (the pair's second),
    // keeping the selection deterministic across platforms and --jobs.
    std::size_t Keep = std::min({TopK, Total, Eval.remaining()});
    if (Keep == 0)
      return std::nullopt;
    std::partial_sort(Ranked.begin(), Ranked.begin() + Keep, Ranked.end());

    std::vector<Candidate> Batch;
    Batch.reserve(Keep);
    for (std::size_t I = 0; I < Keep; ++I)
      Batch.push_back(Space.candidateAt(Ranked[I].second));

    std::optional<ScoredCandidate> Best;
    takeBest(Best, Batch, Eval.evaluate(Batch));

    EvalsSaved.add(Total - Keep);
    obs::JournalEvent("surrogate")
        .field("kernel", Eval.kernel().Name)
        .field("candidates", static_cast<unsigned long long>(Total))
        .field("topk", static_cast<unsigned long long>(Keep))
        .field("evals_saved", static_cast<unsigned long long>(Total - Keep))
        .field("found", bool(Best));
    return Best;
  }

private:
  std::shared_ptr<const model::GbStumpsModel> Model;
  std::size_t TopK;
};

} // namespace

std::unique_ptr<Strategy> tune::makeStrategy(const std::string &Name) {
  if (Name == "exhaustive")
    return std::make_unique<ExhaustiveStrategy>();
  if (Name == "greedy")
    return std::make_unique<GreedyStrategy>();
  if (Name == "anneal")
    return std::make_unique<AnnealStrategy>();
  return nullptr;
}

std::vector<std::string> tune::strategyNames() {
  return {"exhaustive", "greedy", "anneal"};
}

std::unique_ptr<Strategy> tune::makeSurrogateStrategy(
    std::shared_ptr<const model::GbStumpsModel> Model, std::size_t TopK) {
  if (!Model)
    return nullptr;
  return std::make_unique<SurrogateStrategy>(std::move(Model), TopK);
}
