//===- tune/TuningDb.h - Persistent best-config store -----------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuning database: winning configurations keyed by the compilation
/// service's request fingerprint, persisted in one versioned text file
/// so a warm run replays tuned configs without re-searching. The disk
/// contract mirrors service/Cache.h: a versioned header, entries
/// revalidated on load (space signature, length-prefixed payload),
/// rename-atomic writes, and corrupt entries counted and skipped —
/// a damaged database costs re-searches, never errors.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TUNE_TUNINGDB_H
#define POLYINJECT_TUNE_TUNINGDB_H

#include "service/Fingerprint.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace pinj {
namespace tune {

/// One persisted tuning decision.
struct DbEntry {
  /// Canonical candidate encoding (SearchSpace::encode), or "baseline".
  std::string Encoding;
  /// The winner's simulated infl-configuration time.
  double PredictedTimeUs = 0;
  /// The strategy that produced the entry.
  std::string Strategy;
  /// SearchSpace::signature() at store time; a lookup under a different
  /// space shape must not replay the entry.
  std::string SpaceSignature;
};

/// Thread-safe persistent map from request fingerprint to DbEntry.
class TuningDb {
public:
  struct Stats {
    std::uint64_t Hits = 0;    ///< lookup() found a usable entry.
    std::uint64_t Misses = 0;  ///< lookup() found nothing.
    std::uint64_t Rejects = 0; ///< Corrupt/stale on-disk data skipped.
    std::uint64_t Stores = 0;  ///< store() calls (rewrites the file).
  };

  /// Binds the database to \p Path and loads it. A missing file is an
  /// empty database; a corrupt one yields whatever entries survive
  /// validation, with the damage counted on Stats::Rejects and the
  /// tune.db_rejects counter.
  explicit TuningDb(std::string Path);

  /// In-memory database (no file; store() keeps entries but writes
  /// nothing).
  TuningDb() = default;

  /// \returns true and fills \p Out when \p Key has an entry.
  bool lookup(const service::Fingerprint &Key, DbEntry &Out);

  /// Inserts or replaces \p Key's entry and, when a path is bound,
  /// rewrites the file atomically (write temp, rename). Write failures
  /// are counted on tune.db_write_errors; the in-memory entry survives.
  void store(const service::Fingerprint &Key, const DbEntry &E);

  Stats stats() const;
  std::size_t size() const;
  const std::string &path() const { return Path; }

private:
  void loadLocked();
  void saveLocked();

  std::string Path;
  mutable std::mutex Mu;
  std::map<service::Fingerprint, DbEntry> Entries;
  Stats St;
};

} // namespace tune
} // namespace pinj

#endif // POLYINJECT_TUNE_TUNINGDB_H
