//===- tune/Autotuner.cpp -------------------------------------------------===//

#include "tune/Autotuner.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cmath>

using namespace pinj;
using namespace pinj::tune;

Autotuner::Autotuner(Config Cfg) : Cfg(std::move(Cfg)) {
  if (this->Cfg.Space.empty())
    this->Cfg.Space = defaultSearchSpace();
  if (this->Cfg.Strategy == "surrogate")
    Strat = makeSurrogateStrategy(this->Cfg.Model, this->Cfg.TopK);
  else
    Strat = makeStrategy(this->Cfg.Strategy);
  if (!Strat) {
    this->Cfg.Strategy = "greedy";
    Strat = makeStrategy("greedy");
  }
  SpaceSignature = this->Cfg.Space.signature();
}

bool Autotuner::tune(const Kernel &K, PipelineOptions &Tuned,
                     TunedConfig &Out) {
  static obs::Counter &Searches = obs::metrics().counter("tune.searches");
  static obs::Counter &DbHits = obs::metrics().counter("tune.db_hits");
  static obs::Counter &DbStale = obs::metrics().counter("tune.db_stale");
  static obs::Counter &Improvements =
      obs::metrics().counter("tune.improvements");

  obs::Span Sp("tune.operator");
  if (Sp.active())
    Sp.arg("kernel", K.Name);

  // Key on the exact request the pipeline would compile: same kernel
  // structure + same base options. Any base-option change re-tunes.
  service::Fingerprint Key = service::fingerprintRequest(K, Tuned);

  // Warm path: replay the stored decision, byte-identical, no search.
  if (Cfg.Db) {
    DbEntry E;
    if (Cfg.Db->lookup(Key, E)) {
      bool Usable = E.SpaceSignature == SpaceSignature;
      Candidate C;
      if (Usable && E.Encoding != "baseline")
        Usable = Cfg.Space.decode(E.Encoding, C);
      if (Usable) {
        if (E.Encoding != "baseline")
          Cfg.Space.apply(C, Tuned);
        Out.Encoding = E.Encoding;
        Out.PredictedTimeUs = E.PredictedTimeUs;
        Out.FromDb = true;
        Out.Strategy = E.Strategy;
        DbHits.inc();
        if (Sp.active())
          Sp.arg("db", "hit");
        return true;
      }
      // Entry from another space shape (or undecodable): stale, re-run
      // the search and overwrite it below.
      DbStale.inc();
    }
  }

  Searches.inc();
  Evaluator Eval(K, Tuned, Cfg.Space,
                 {Cfg.Jobs, Cfg.CandidateBudget, Cfg.MaxEvaluations});
  double Baseline = Eval.baseline();
  std::optional<ScoredCandidate> Best = Strat->run(Cfg.Space, Eval, Cfg.Seed);

  // Never-worse guarantee: apply the winner only when the cost model
  // scores it strictly below the unmodified options; ties and losses
  // keep the paper default.
  if (Best && Best->TimeUs < Baseline) {
    Cfg.Space.apply(Best->C, Tuned);
    Out.Encoding = Cfg.Space.encode(Best->C);
    Out.PredictedTimeUs = Best->TimeUs;
    Improvements.inc();
  } else {
    Out.Encoding = "baseline";
    // A baseline that itself failed to evaluate has no finite
    // prediction; report 0 rather than a non-JSON infinity.
    Out.PredictedTimeUs = std::isfinite(Baseline) ? Baseline : 0;
  }
  Out.FromDb = false;
  Out.Strategy = Strat->name();

  if (Cfg.Db)
    Cfg.Db->store(Key, {Out.Encoding, Out.PredictedTimeUs, Out.Strategy,
                        SpaceSignature});
  if (Sp.active()) {
    Sp.arg("choice", Out.Encoding);
    Sp.arg("evaluations", std::to_string(Eval.evaluations()));
  }
  return true;
}
