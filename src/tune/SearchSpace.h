//===- tune/SearchSpace.h - Declarative tuning parameter space --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner's search space: a declarative list of PipelineOptions
/// knobs, each with the ordered set of values it may take. A candidate
/// is one value index per dimension; the space enumerates candidates,
/// generates hill-climbing neighbors, applies candidates to options,
/// and round-trips a canonical textual encoding (the form the tuning
/// database persists and the sidecar reports).
///
/// The paper fixes every one of these knobs (Section V's hand-tuned
/// cost() plus one GPU mapping shape); the tuner searches them against
/// the simulated cost model instead.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TUNE_SEARCHSPACE_H
#define POLYINJECT_TUNE_SEARCHSPACE_H

#include "pipeline/Pipeline.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pinj {
namespace tune {

/// One searchable knob. Values[0] is the preferred value on score ties
/// (candidates compare lexicographically by index vector), so each list
/// leads with the paper default.
struct ParamDim {
  std::string Name;
  std::vector<std::int64_t> Values;
  /// Reads the knob's current value from a set of options (used to
  /// project the baseline options into the space).
  std::int64_t (*Read)(const PipelineOptions &);
  /// Writes value \p V into the options.
  void (*Apply)(PipelineOptions &, std::int64_t);
};

/// A candidate: one value index per space dimension.
using Candidate = std::vector<unsigned>;

class SearchSpace {
public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<ParamDim> Dims);

  const std::vector<ParamDim> &dims() const { return Dims; }
  bool empty() const { return Dims.empty(); }

  /// Number of candidates (product of dimension sizes; 0 when empty).
  std::size_t size() const;

  /// The \p Index-th candidate in canonical enumeration order
  /// (mixed-radix, dimension 0 most significant). \p Index < size().
  Candidate candidateAt(std::size_t Index) const;

  /// Projects \p Base into the space: per dimension the index of the
  /// base options' current value, or 0 when that value is not listed.
  /// The hill-climbing strategies start here.
  Candidate project(const PipelineOptions &Base) const;

  /// All candidates differing from \p C by one step in one dimension.
  std::vector<Candidate> neighbors(const Candidate &C) const;

  /// Canonical encoding: "name=value,..." over all dimensions in order.
  std::string encode(const Candidate &C) const;

  /// Parses encode() output. \returns false on any mismatch with the
  /// current space shape (unknown name, missing dimension, value not in
  /// the list) — a stale database entry must re-search, never misapply.
  bool decode(const std::string &Text, Candidate &Out) const;

  /// Applies candidate \p C's values onto \p O.
  void apply(const Candidate &C, PipelineOptions &O) const;

  /// 32-hex structural signature over dimension names and value lists;
  /// tuning-database entries recorded under a different signature are
  /// stale.
  std::string signature() const;

private:
  std::vector<ParamDim> Dims;
};

/// The production space: vector-width cap, influence thread limit,
/// scenario count/depth, GPU block/thread budget, proximity-input
/// toggle and solver-budget tiers (~1.7k candidates).
SearchSpace defaultSearchSpace();

/// A 4-candidate space (vector-width cap x thread budget) for smoke
/// tests: exhaustive search finishes in seconds on any operator.
SearchSpace tinySearchSpace();

/// Resolves a space by name ("default", "tiny"); empty space for
/// unknown names.
SearchSpace searchSpaceByName(const std::string &Name);

} // namespace tune
} // namespace pinj

#endif // POLYINJECT_TUNE_SEARCHSPACE_H
