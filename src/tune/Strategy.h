//===- tune/Strategy.h - Pluggable search strategies ------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Search drivers over a SearchSpace: exhaustive grid enumeration,
/// greedy hill climbing from the baseline projection, and seeded
/// simulated annealing. All strategies are deterministic for a fixed
/// seed — evaluation scores are analytic, candidate order is fixed, and
/// score ties break toward the lexicographically smallest index vector
/// (which prefers paper-default values, listed first per dimension) —
/// so the chosen config is identical at --jobs=1 and --jobs=8.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_TUNE_STRATEGY_H
#define POLYINJECT_TUNE_STRATEGY_H

#include "tune/Evaluator.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pinj {

namespace model {
struct GbStumpsModel;
}

namespace tune {

struct ScoredCandidate {
  Candidate C;
  double TimeUs = 0;
};

/// True when \p A should be preferred over \p B: strictly better score,
/// or an equal score with a lexicographically smaller index vector.
/// Every strategy uses this one ordering so results are reproducible.
bool improves(const ScoredCandidate &A, const ScoredCandidate &B);

/// A search driver. Implementations hold no per-run state, so one
/// instance may serve concurrent tune() calls (the batch compiler's
/// workers share an Autotuner).
class Strategy {
public:
  virtual ~Strategy() = default;

  virtual const char *name() const = 0;

  /// Searches \p Space within \p Eval's evaluation budget. \returns the
  /// best finite-scoring candidate evaluated, or nothing when every
  /// evaluated candidate failed. \p Seed feeds stochastic strategies;
  /// deterministic ones ignore it.
  virtual std::optional<ScoredCandidate>
  run(const SearchSpace &Space, Evaluator &Eval, std::uint64_t Seed) const = 0;
};

/// Resolves "exhaustive", "greedy" or "anneal"; nullptr for anything
/// else. The surrogate strategy is not constructible by name — it
/// needs a trained model, so it has its own factory below.
std::unique_ptr<Strategy> makeStrategy(const std::string &Name);

/// The names makeStrategy accepts, for CLI help and validation.
std::vector<std::string> strategyNames();

/// The learned-cost-model search: predicts a score for every candidate
/// in the space with \p Model (model/GbStumps.h), then gpusim-evaluates
/// only the \p TopK best-predicted ones — the prediction only chooses
/// *which* candidates the real cost model sees, so the Autotuner's
/// never-worse-than-baseline guarantee is untouched even under an
/// arbitrarily wrong model. Deterministic: predictions are analytic and
/// prediction ties rank by enumeration index. Skipped evaluations are
/// counted on tune.surrogate_evals_saved and each run emits one
/// "surrogate" journal event. \p Model must be non-null and trained
/// under the current feature schema (loadModel enforces the latter).
std::unique_ptr<Strategy>
makeSurrogateStrategy(std::shared_ptr<const model::GbStumpsModel> Model,
                      std::size_t TopK);

} // namespace tune
} // namespace pinj

#endif // POLYINJECT_TUNE_STRATEGY_H
