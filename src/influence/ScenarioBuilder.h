//===- influence/ScenarioBuilder.h - Algorithm 2 ---------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Paper Algorithm 2: the non-linear search for "influenced dimension
/// scenarios" — the shortest ordered lists of innermost dimensions that
/// minimize memory transactions, built innermost-out with the weighted
/// cost() function of Section V. The weights default to the paper's best
/// configuration w = (5, 3, 1, 1, 1).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_INFLUENCE_SCENARIOBUILDER_H
#define POLYINJECT_INFLUENCE_SCENARIOBUILDER_H

#include "influence/AccessAnalysis.h"

namespace pinj {

/// The cost() weights (paper Section V). The last term's printed formula
/// (w5*F*L/N) contradicts its prose ("favors high contribution to the
/// number of threads"); PaperFormulaThreadTerm selects the literal
/// formula, the default implements the prose (w5*F*N/L). See DESIGN.md.
struct CostWeights {
  double W1 = 5; ///< Vectorizable stores.
  double W2 = 3; ///< Vectorizable loads.
  double W3 = 1; ///< Inverse minimum stride.
  double W4 = 1; ///< Accesses at the minimum stride.
  double W5 = 1; ///< Thread-contribution term.
  bool PaperFormulaThreadTerm = false;
};

/// Tunables of the non-linear optimizer.
struct InfluenceOptions {
  CostWeights Weights;
  Int ThreadLimit = 1024;     ///< L in Algorithm 2.
  unsigned MaxScenarios = 8;  ///< "few of the most profitable" (paper: 8).
  unsigned MaxInnerDims = 3;  ///< |I_s| bound in Algorithm 2.
  /// Widest explicit vector type scenarios may prepare (4, 2, or 1 to
  /// disable vector preparation entirely). The paper always allows
  /// float4; the autotuner searches over this cap because replayed
  /// (strided) lanes can make narrower or scalar accesses faster.
  unsigned MaxVectorWidth = 4;
};

/// One influenced dimension scenario for one statement: the tail of the
/// schedule, outermost-of-the-tail first; Inner.back() is the innermost
/// dimension, prepared for explicit vector types when VectorWidth != 0.
struct DimScenario {
  unsigned Stmt = 0;
  std::vector<unsigned> Inner; ///< Statement iterator indices.
  unsigned VectorWidth = 0;
  double Score = 0;     ///< Sum of per-position costs.
  double InnerCost = 0; ///< Cost of the innermost pick — the primary
                        ///< sibling-ordering key (the vectorization
                        ///< decision dominates the scenario's value).
};

/// The cost() function of Section V for choosing iterator \p Iter of
/// statement \p S at the next position (innermost when \p Innermost).
/// \p Chosen holds iterators already placed (excluded from strides'
/// "remaining" consideration only through not being candidates).
/// \p MaxVectorWidth caps the vector width the |V_w|/|V_r| terms may
/// assume (see InfluenceOptions::MaxVectorWidth).
double dimensionCost(const Statement &S,
                     const std::vector<AccessStrides> &Strides,
                     unsigned Iter, bool Innermost, Int ThreadLimit,
                     const CostWeights &W, unsigned MaxVectorWidth = 4);

/// Algorithm 2 for one statement: the greedy best scenario.
DimScenario buildBestScenario(const Kernel &K, unsigned Stmt,
                              const InfluenceOptions &Options);

/// Scenario alternatives for one statement: one greedy completion per
/// candidate innermost dimension, ordered by descending score.
std::vector<DimScenario>
buildScenarioAlternatives(const Kernel &K, unsigned Stmt,
                          const InfluenceOptions &Options);

} // namespace pinj

#endif // POLYINJECT_INFLUENCE_SCENARIOBUILDER_H
