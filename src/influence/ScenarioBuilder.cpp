//===- influence/ScenarioBuilder.cpp --------------------------------------===//

#include "influence/ScenarioBuilder.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <algorithm>

using namespace pinj;

double pinj::dimensionCost(const Statement &S,
                           const std::vector<AccessStrides> &Strides,
                           unsigned Iter, bool Innermost, Int ThreadLimit,
                           const CostWeights &W, unsigned MaxVectorWidth) {
  static obs::Counter &CostEvals =
      obs::metrics().counter("influence.cost_evals");
  CostEvals.inc();
  double Cost = 0;

  // Vector terms |V_w| and |V_r|: only for the innermost position.
  if (Innermost) {
    unsigned Width = bestVectorWidth(S, Strides, Iter, MaxVectorWidth);
    if (Width != 0) {
      unsigned VectorStores = 0, VectorLoads = 0;
      for (const AccessStrides &A : Strides) {
        if (!isVectorizableAccess(A, Iter, Width))
          continue;
        if (A.IsWrite)
          ++VectorStores;
        else
          ++VectorLoads;
      }
      Cost += W.W1 * VectorStores + W.W2 * VectorLoads;
    }
  }

  // Minimum stride M over accesses that depend on this iterator, and the
  // number of accesses achieving it.
  Int MinStride = 0;
  unsigned AtMinStride = 0;
  for (const AccessStrides &A : Strides) {
    Int Stride = A.StridePerIter[Iter];
    if (Stride < 0)
      Stride = -Stride;
    if (Stride == 0)
      continue;
    if (MinStride == 0 || Stride < MinStride) {
      MinStride = Stride;
      AtMinStride = 1;
    } else if (Stride == MinStride) {
      ++AtMinStride;
    }
  }
  if (MinStride != 0) {
    Cost += W.W3 / static_cast<double>(MinStride);
    Cost += W.W4 * AtMinStride;
  }

  // Thread-contribution term.
  Int N = S.Extents[Iter];
  double F = (N < ThreadLimit) ? 1.0 : 0.0;
  if (W.PaperFormulaThreadTerm)
    Cost += W.W5 * F * static_cast<double>(ThreadLimit) /
            static_cast<double>(N);
  else
    Cost += W.W5 * F * static_cast<double>(N) /
            static_cast<double>(ThreadLimit);
  return Cost;
}

namespace {

/// Greedy completion of a scenario whose innermost pick is already made.
DimScenario completeScenario(const Kernel &K, unsigned Stmt,
                             const std::vector<AccessStrides> &Strides,
                             unsigned Innermost,
                             const InfluenceOptions &Options) {
  const Statement &S = K.Stmts[Stmt];
  DimScenario Scenario;
  Scenario.Stmt = Stmt;
  Scenario.Inner = {Innermost};
  Scenario.InnerCost =
      dimensionCost(S, Strides, Innermost, /*Innermost=*/true,
                    Options.ThreadLimit, Options.Weights,
                    Options.MaxVectorWidth);
  Scenario.Score = Scenario.InnerCost;
  Scenario.VectorWidth =
      bestVectorWidth(S, Strides, Innermost, Options.MaxVectorWidth);

  Int L = std::max<Int>(1, Options.ThreadLimit / S.Extents[Innermost]);
  unsigned MaxLen = std::min<unsigned>(Options.MaxInnerDims, S.numIters());
  while (Scenario.Inner.size() < MaxLen) {
    double BestCost = -1;
    unsigned Best = S.numIters();
    for (unsigned D = 0, E = S.numIters(); D != E; ++D) {
      if (std::find(Scenario.Inner.begin(), Scenario.Inner.end(), D) !=
          Scenario.Inner.end())
        continue;
      double Cost = dimensionCost(S, Strides, D, /*Innermost=*/false, L,
                                  Options.Weights, Options.MaxVectorWidth);
      // Ties prefer the later iterator (the original inner loop).
      if (Cost >= BestCost) {
        BestCost = Cost;
        Best = D;
      }
    }
    if (Best == S.numIters())
      break;
    Scenario.Inner.insert(Scenario.Inner.begin(), Best); // Prepend.
    Scenario.Score += BestCost;
    L = std::max<Int>(1, L / S.Extents[Best]);
  }
  return Scenario;
}

} // namespace

DimScenario pinj::buildBestScenario(const Kernel &K, unsigned Stmt,
                                    const InfluenceOptions &Options) {
  const Statement &S = K.Stmts[Stmt];
  std::vector<AccessStrides> Strides = analyzeStrides(K, S);
  // Algorithm 2 line 8 at the innermost position: best() over all dims.
  double BestCost = -1;
  unsigned Best = 0;
  for (unsigned D = 0, E = S.numIters(); D != E; ++D) {
    double Cost = dimensionCost(S, Strides, D, /*Innermost=*/true,
                                Options.ThreadLimit, Options.Weights,
                                Options.MaxVectorWidth);
    if (Cost >= BestCost) {
      BestCost = Cost;
      Best = D;
    }
  }
  return completeScenario(K, Stmt, Strides, Best, Options);
}

std::vector<DimScenario>
pinj::buildScenarioAlternatives(const Kernel &K, unsigned Stmt,
                                const InfluenceOptions &Options) {
  obs::Span Sp("influence.scenarios");
  const Statement &S = K.Stmts[Stmt];
  std::vector<AccessStrides> Strides = analyzeStrides(K, S);
  std::vector<DimScenario> Alternatives;
  for (unsigned D = 0, E = S.numIters(); D != E; ++D)
    Alternatives.push_back(completeScenario(K, Stmt, Strides, D, Options));
  std::stable_sort(Alternatives.begin(), Alternatives.end(),
                   [](const DimScenario &A, const DimScenario &B) {
                     if (A.InnerCost != B.InnerCost)
                       return A.InnerCost > B.InnerCost;
                     return A.Score > B.Score;
                   });
  unsigned Enumerated = static_cast<unsigned>(Alternatives.size());
  if (Alternatives.size() > Options.MaxScenarios)
    Alternatives.resize(Options.MaxScenarios);
  static obs::Counter &EnumeratedCount =
      obs::metrics().counter("influence.scenarios_enumerated");
  static obs::Counter &RejectedCount =
      obs::metrics().counter("influence.scenarios_rejected");
  EnumeratedCount.add(Enumerated);
  RejectedCount.add(Enumerated - Alternatives.size());
  if (Sp.active())
    Sp.arg("stmt", S.Name)
        .arg("enumerated", Enumerated)
        .arg("kept", Alternatives.size());
  return Alternatives;
}
