//===- influence/TreeBuilder.h - Scenario to constraint tree ----*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates influenced dimension scenarios into an influence constraint
/// tree (paper Section V, last part): innermost scheduling coefficients
/// are pinned to the access-function coefficients (unit rows in this
/// operator domain), preceding dimensions are kept independent of the
/// pinned iterators, and per scenario two prioritized variants are
/// emitted — a higher-priority one that also injects loop fusion
/// (equating coefficients across statements) and a lower-priority one
/// constraining only the scenario's own statement. Siblings are ordered
/// by the cost function.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_INFLUENCE_TREEBUILDER_H
#define POLYINJECT_INFLUENCE_TREEBUILDER_H

#include "influence/ScenarioBuilder.h"
#include "sched/InfluenceTree.h"

namespace pinj {

/// Builds the influence constraint tree for \p K. The scenarios come
/// from the sink statement (the deepest loop nest, the operator's
/// output-producing statement in the fused-operator domain). \returns an
/// empty tree when no scenario can be built (e.g. zero-dim kernels).
InfluenceTree buildInfluenceTree(const Kernel &K,
                                 const InfluenceOptions &Options);

/// The statement whose scenarios drive the tree: maximum loop depth,
/// later statement on ties (the operator's final output).
unsigned pickSinkStatement(const Kernel &K);

} // namespace pinj

#endif // POLYINJECT_INFLUENCE_TREEBUILDER_H
