//===- influence/AccessAnalysis.h - Stride and vector analysis --*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The non-linear optimizer's view of memory accesses (paper Section V):
/// per-iterator linearized strides under the row-major tensor layout and
/// the vectorizability conditions (a)-(c) for explicit vector types —
/// accesses must be aligned and constant or contiguous along the chosen
/// innermost dimension. This analysis is deliberately non-affine (it
/// knows array sizes and memory layout), which is exactly what the
/// polyhedral scheduler cannot express and why constraints are injected.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_INFLUENCE_ACCESSANALYSIS_H
#define POLYINJECT_INFLUENCE_ACCESSANALYSIS_H

#include "ir/Kernel.h"

namespace pinj {

/// Stride information of one access of one statement.
struct AccessStrides {
  const Access *Acc = nullptr;
  bool IsWrite = false;
  /// Linearized element stride contributed by each statement iterator:
  /// the coefficient of the iterator in the flattened row-major address.
  std::vector<Int> StridePerIter;
  /// Constant part of the flattened address (elements).
  Int ConstOffset = 0;

  /// True if the access does not depend on iterator \p Iter.
  bool isConstantIn(unsigned Iter) const {
    return StridePerIter[Iter] == 0;
  }
  /// True if consecutive values of \p Iter touch consecutive elements.
  bool isContiguousIn(unsigned Iter) const {
    return StridePerIter[Iter] == 1;
  }
};

/// Stride analysis for every access of one statement. Only valid for
/// kernels without symbolic parameters (the operator library's case);
/// parametric index expressions make strides non-constant.
std::vector<AccessStrides> analyzeStrides(const Kernel &K,
                                          const Statement &S);

/// Checks paper Section V conditions (b) and (c) for access \p A when
/// iterator \p Iter becomes the innermost, vectorized dimension with
/// \p Width lanes (2 or 4): the access must be constant or contiguous in
/// \p Iter and all lane groups must be Width-aligned (constant offset and
/// every other iterator's stride divisible by Width).
bool isVectorizableAccess(const AccessStrides &A, unsigned Iter,
                          unsigned Width);

/// The widest vector width in {4, 2} usable for statement \p S on
/// iterator \p Iter: the extent must be divisible by the width
/// (condition (b)) and at least one access must be vectorizable
/// (condition (c)). Widths above \p MaxWidth are not considered (the
/// autotuner's vector-width cap; a cap below 2 disables vectorization).
/// \returns 0 when vectorization is not possible.
unsigned bestVectorWidth(const Statement &S,
                         const std::vector<AccessStrides> &Strides,
                         unsigned Iter, unsigned MaxWidth = 4);

} // namespace pinj

#endif // POLYINJECT_INFLUENCE_ACCESSANALYSIS_H
