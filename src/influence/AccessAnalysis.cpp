//===- influence/AccessAnalysis.cpp ---------------------------------------===//

#include "influence/AccessAnalysis.h"

using namespace pinj;

std::vector<AccessStrides> pinj::analyzeStrides(const Kernel &K,
                                                const Statement &S) {
  assert(K.numParams() == 0 &&
         "stride analysis requires concrete tensor shapes");
  std::vector<AccessStrides> Result;
  for (const Access *A : S.allAccesses()) {
    const Tensor &T = K.Tensors[A->TensorId];
    std::vector<Int> TensorStrides = T.strides();
    AccessStrides Info;
    Info.Acc = A;
    Info.IsWrite = A->IsWrite;
    Info.StridePerIter.assign(S.numIters(), 0);
    for (unsigned D = 0, E = A->Indices.size(); D != E; ++D) {
      const IntVector &Index = A->Indices[D];
      for (unsigned I = 0, NI = S.numIters(); I != NI; ++I)
        Info.StridePerIter[I] = checkedAdd(
            Info.StridePerIter[I], checkedMul(Index[I], TensorStrides[D]));
      Info.ConstOffset =
          checkedAdd(Info.ConstOffset, checkedMul(Index.back(),
                                                  TensorStrides[D]));
    }
    Result.push_back(std::move(Info));
  }
  return Result;
}

bool pinj::isVectorizableAccess(const AccessStrides &A, unsigned Iter,
                                unsigned Width) {
  assert((Width == 2 || Width == 4) && "vector width must be 2 or 4");
  if (A.isConstantIn(Iter))
    return !A.IsWrite; // A constant load broadcasts; a store conflicts.
  if (!A.isContiguousIn(Iter))
    return false;
  // Alignment: the lane-group base address must be a multiple of Width
  // for every value of the other iterators.
  if (A.ConstOffset % Width != 0)
    return false;
  for (unsigned I = 0, E = A.StridePerIter.size(); I != E; ++I)
    if (I != Iter && A.StridePerIter[I] % Width != 0)
      return false;
  return true;
}

unsigned pinj::bestVectorWidth(const Statement &S,
                               const std::vector<AccessStrides> &Strides,
                               unsigned Iter, unsigned MaxWidth) {
  for (unsigned Width : {4u, 2u}) {
    if (Width > MaxWidth)
      continue; // Above the configured cap (autotuner knob).
    if (S.Extents[Iter] % Width != 0)
      continue; // Condition (b): size must divide into vectors.
    // Condition (c): as many accesses as possible, at least the write or
    // one load, must be vectorizable; require at least one non-constant
    // vectorizable access so that vector types actually pay off.
    for (const AccessStrides &A : Strides)
      if (!A.isConstantIn(Iter) && isVectorizableAccess(A, Iter, Width))
        return Width;
  }
  return 0;
}
