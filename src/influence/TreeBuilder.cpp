//===- influence/TreeBuilder.cpp ------------------------------------------===//

#include "influence/TreeBuilder.h"

#include "obs/Journal.h"
#include "support/FailPoint.h"

using namespace pinj;

unsigned pinj::pickSinkStatement(const Kernel &K) {
  assert(!K.Stmts.empty() && "kernel without statements");
  unsigned Sink = 0;
  for (unsigned S = 1, E = K.Stmts.size(); S != E; ++S)
    if (K.Stmts[S].numIters() >= K.Stmts[Sink].numIters())
      Sink = S;
  return Sink;
}

namespace {

/// Iterator index of \p S named \p Name, or numIters() when absent.
unsigned iteratorByName(const Statement &S, const std::string &Name) {
  for (unsigned I = 0, E = S.numIters(); I != E; ++I)
    if (S.IterNames[I] == Name)
      return I;
  return S.numIters();
}

/// True if every iterator of \p Other whose name matches an iterator of
/// \p Sink has the same extent (the fusion-safety condition).
bool fusableByName(const Statement &Sink, const Statement &Other) {
  for (unsigned I = 0, E = Other.numIters(); I != E; ++I) {
    unsigned P = iteratorByName(Sink, Other.IterNames[I]);
    if (P != Sink.numIters() && Sink.Extents[P] != Other.Extents[I])
      return false;
  }
  return true;
}

/// Emits one scenario as a chain of nodes under \p Root.
void emitBranch(const Kernel &K, unsigned SinkId, const DimScenario &Scen,
                bool Fused, InfluenceNode *Root, unsigned BranchIdx) {
  const Statement &Sink = K.Stmts[SinkId];
  unsigned N = Sink.numIters();
  unsigned M = Scen.Inner.size();
  std::string Label =
      (Fused ? "fused." : "solo.") + std::to_string(BranchIdx);

  InfluenceNode *Node = nullptr;
  for (unsigned D = 0; D != N; ++D) {
    Node = Node ? Node->addChild(Label + ".d" + std::to_string(D))
                : Root->addChild(Label + ".d" + std::to_string(D));
    if (D + M >= N) {
      // Tail dimension: pin the sink's row to the unit vector of the
      // scenario iterator ("coefficients equal to those of the last
      // access function", which are unit in this domain).
      unsigned Pinned = Scen.Inner[D - (N - M)];
      for (unsigned Q = 0; Q != N; ++Q)
        Node->Constraints.push_back(
            makeCoeffEquals(SinkId, D, Q, Q == Pinned ? 1 : 0));
    } else {
      // Outer dimension: stay independent of every scenario iterator.
      for (unsigned B : Scen.Inner)
        Node->Constraints.push_back(makeCoeffEquals(SinkId, D, B, 0));
    }
    if (Fused) {
      // Equate coefficients of same-named iterators across statements.
      for (unsigned S = 0, E = K.Stmts.size(); S != E; ++S) {
        if (S == SinkId)
          continue;
        const Statement &Other = K.Stmts[S];
        for (unsigned Q = 0, NQ = Other.numIters(); Q != NQ; ++Q) {
          unsigned P = iteratorByName(Sink, Other.IterNames[Q]);
          if (P != Sink.numIters())
            Node->Constraints.push_back(
                makeCoeffsEqual(S, D, Q, SinkId, D, P));
        }
      }
    }
  }
  // Vector mark on the innermost node; the pipeline's finalize pass
  // widens/narrows the statement set and width after scheduling.
  if (Node && Scen.VectorWidth != 0) {
    Node->VectorStmts = {SinkId};
    Node->VectorWidth = Scen.VectorWidth;
  }
}

} // namespace

InfluenceTree pinj::buildInfluenceTree(const Kernel &K,
                                       const InfluenceOptions &Options) {
  failpoint::hit("influence.tree");
  InfluenceTree Tree;
  if (K.Stmts.empty() || K.numParams() != 0)
    return Tree;
  unsigned SinkId = pickSinkStatement(K);
  const Statement &Sink = K.Stmts[SinkId];
  if (Sink.numIters() == 0)
    return Tree;

  bool CanFuse = K.Stmts.size() > 1;
  for (unsigned S = 0, E = K.Stmts.size(); CanFuse && S != E; ++S)
    if (S != SinkId && !fusableByName(Sink, K.Stmts[S]))
      CanFuse = false;

  std::vector<DimScenario> Scenarios =
      buildScenarioAlternatives(K, SinkId, Options);
  unsigned Branches = 0;
  for (unsigned I = 0, E = Scenarios.size(); I != E; ++I) {
    if (Branches >= Options.MaxScenarios)
      break;
    if (CanFuse) {
      emitBranch(K, SinkId, Scenarios[I], /*Fused=*/true, &Tree.root(), I);
      ++Branches;
    }
    if (Branches >= Options.MaxScenarios)
      break;
    emitBranch(K, SinkId, Scenarios[I], /*Fused=*/false, &Tree.root(), I);
    ++Branches;
  }
  if (obs::Journal::fastEnabled())
    obs::JournalEvent("influence_tree")
        .field("scenarios", Scenarios.size())
        .field("branches", Branches)
        .field("fusable", CanFuse)
        .field("sink", K.Stmts[SinkId].Name);
  return Tree;
}
