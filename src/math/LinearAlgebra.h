//===- math/LinearAlgebra.h - Exact linear algebra --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact integer linear algebra used by the scheduler's progression
/// constraint builder (paper Section IV-A3): rank, nullspace basis
/// computation (the orthogonal complement of a schedule's row space) and
/// Hermite normal form (the decomposition isl's scheduler relies on).
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MATH_LINEARALGEBRA_H
#define POLYINJECT_MATH_LINEARALGEBRA_H

#include "math/Matrix.h"

namespace pinj {

/// \returns the rank of \p M over the rationals.
unsigned matrixRank(const IntMatrix &M);

/// Computes an integer basis of the nullspace of \p M (all vectors v with
/// M v = 0). Each basis vector is a row of the result, normalized by gcd.
/// Since nullspace(M) is the orthogonal complement of rowspace(M), this is
/// exactly the H-perp construction of paper Eq. (4).
IntMatrix nullspaceBasis(const IntMatrix &M);

/// Result of a Hermite normal form computation: H = U * M where U is
/// unimodular and H is lower-triangular column-style HNF of the row space.
struct HermiteForm {
  IntMatrix H; ///< Row-style Hermite normal form of M.
  IntMatrix U; ///< Unimodular transform with H = U * M.
};

/// Computes the row-style Hermite normal form of \p M: pivots move left to
/// right, each pivot is positive, and entries below a pivot are zero,
/// entries above are reduced modulo the pivot.
HermiteForm hermiteNormalForm(const IntMatrix &M);

/// \returns true if the row vector \p V lies in the row space of \p M
/// (over the rationals).
bool inRowSpace(const IntMatrix &M, const IntVector &V);

/// Pluto's orthogonal-subspace construction (paper Section IV-A3):
/// rows spanning the same space as I - H^T (H H^T)^{-1} H, computed
/// exactly and scaled to integers. Spans the same subspace as
/// nullspaceBasis(H) (a property the tests verify); H must have full
/// row rank (drop zero/dependent rows first).
IntMatrix plutoOrthogonalProjector(const IntMatrix &H);

} // namespace pinj

#endif // POLYINJECT_MATH_LINEARALGEBRA_H
