//===- math/LinearAlgebra.cpp ---------------------------------------------===//

#include "math/LinearAlgebra.h"

#include "math/Rational.h"

using namespace pinj;

namespace {

/// A dense rational matrix used internally for Gaussian elimination.
class RatMatrix {
public:
  explicit RatMatrix(const IntMatrix &M)
      : Columns(M.numCols()),
        Data(M.numRows(), std::vector<Rational>(M.numCols())) {
    for (unsigned R = 0, NR = M.numRows(); R != NR; ++R)
      for (unsigned C = 0; C != Columns; ++C)
        Data[R][C] = Rational(M.at(R, C));
  }

  unsigned numRows() const { return Data.size(); }
  unsigned numCols() const { return Columns; }
  Rational &at(unsigned R, unsigned C) { return Data[R][C]; }
  const Rational &at(unsigned R, unsigned C) const { return Data[R][C]; }

  /// Reduces to row echelon form; \returns the pivot column of each pivot
  /// row, in order.
  std::vector<unsigned> rowEchelon() {
    std::vector<unsigned> PivotCols;
    unsigned PivotRow = 0;
    for (unsigned Col = 0; Col < Columns && PivotRow < numRows(); ++Col) {
      // Find a row with a nonzero entry in this column.
      unsigned Found = PivotRow;
      while (Found < numRows() && Data[Found][Col].isZero())
        ++Found;
      if (Found == numRows())
        continue;
      std::swap(Data[PivotRow], Data[Found]);
      // Normalize the pivot row.
      Rational Pivot = Data[PivotRow][Col];
      for (unsigned C = Col; C < Columns; ++C)
        Data[PivotRow][C] /= Pivot;
      // Eliminate the column everywhere else (reduced echelon form).
      for (unsigned R = 0; R < numRows(); ++R) {
        if (R == PivotRow || Data[R][Col].isZero())
          continue;
        Rational Factor = Data[R][Col];
        for (unsigned C = Col; C < Columns; ++C)
          Data[R][C] -= Factor * Data[PivotRow][C];
      }
      PivotCols.push_back(Col);
      ++PivotRow;
    }
    return PivotCols;
  }

private:
  unsigned Columns;
  std::vector<std::vector<Rational>> Data;
};

} // namespace

unsigned pinj::matrixRank(const IntMatrix &M) {
  if (M.empty())
    return 0;
  RatMatrix R(M);
  return R.rowEchelon().size();
}

IntMatrix pinj::nullspaceBasis(const IntMatrix &M) {
  unsigned Cols = M.numCols();
  if (M.empty() || M.numRows() == 0) {
    // Nullspace is the whole space: return the identity basis.
    IntMatrix Identity(Cols, Cols);
    for (unsigned I = 0; I != Cols; ++I)
      Identity.at(I, I) = 1;
    return Identity;
  }

  RatMatrix R(M);
  std::vector<unsigned> PivotCols = R.rowEchelon();

  // Mark pivot columns.
  std::vector<bool> IsPivot(Cols, false);
  for (unsigned C : PivotCols)
    IsPivot[C] = true;

  IntMatrix Basis(0, Cols);
  for (unsigned Free = 0; Free != Cols; ++Free) {
    if (IsPivot[Free])
      continue;
    // Basis vector: free column = 1, other free columns = 0, pivot columns
    // determined by back-substitution from the reduced echelon form.
    std::vector<Rational> V(Cols, Rational(0));
    V[Free] = Rational(1);
    for (unsigned P = 0, E = PivotCols.size(); P != E; ++P)
      V[PivotCols[P]] = -R.at(P, Free);
    // Scale to integers: multiply by the lcm of denominators.
    Int Lcm = 1;
    for (const Rational &X : V)
      Lcm = lcmInt(Lcm, X.denominator());
    IntVector IntV(Cols, 0);
    for (unsigned C = 0; C != Cols; ++C) {
      Rational Scaled = V[C] * Rational(Lcm);
      assert(Scaled.isInteger() && "lcm scaling must clear denominators");
      IntV[C] = Scaled.numerator();
    }
    normalizeByGcd(IntV);
    Basis.appendRow(IntV);
  }
  return Basis;
}

HermiteForm pinj::hermiteNormalForm(const IntMatrix &M) {
  unsigned NumRows = M.numRows();
  unsigned NumCols = M.numCols();
  HermiteForm Result;
  Result.H = M;
  Result.U = IntMatrix(NumRows, NumRows);
  for (unsigned I = 0; I != NumRows; ++I)
    Result.U.at(I, I) = 1;

  IntMatrix &H = Result.H;
  IntMatrix &U = Result.U;

  auto swapRows = [&](unsigned A, unsigned B) {
    std::swap(H.row(A), H.row(B));
    std::swap(U.row(A), U.row(B));
  };
  auto negateRow = [&](unsigned A) {
    for (Int &X : H.row(A))
      X = checkedNeg(X);
    for (Int &X : U.row(A))
      X = checkedNeg(X);
  };
  // Row(A) -= Factor * Row(B).
  auto subtractRow = [&](unsigned A, unsigned B, Int Factor) {
    for (unsigned C = 0; C != NumCols; ++C)
      H.at(A, C) = checkedSub(H.at(A, C), checkedMul(Factor, H.at(B, C)));
    for (unsigned C = 0; C != NumRows; ++C)
      U.at(A, C) = checkedSub(U.at(A, C), checkedMul(Factor, U.at(B, C)));
  };

  unsigned PivotRow = 0;
  for (unsigned Col = 0; Col < NumCols && PivotRow < NumRows; ++Col) {
    // Reduce all entries below the pivot to zero with Euclidean row ops.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      // Find the row with the smallest nonzero |entry| in this column.
      unsigned Best = NumRows;
      for (unsigned R = PivotRow; R < NumRows; ++R) {
        if (H.at(R, Col) == 0)
          continue;
        if (Best == NumRows ||
            std::abs(H.at(R, Col)) < std::abs(H.at(Best, Col)))
          Best = R;
      }
      if (Best == NumRows)
        break;
      if (Best != PivotRow)
        swapRows(Best, PivotRow);
      if (H.at(PivotRow, Col) < 0)
        negateRow(PivotRow);
      for (unsigned R = PivotRow + 1; R < NumRows; ++R) {
        if (H.at(R, Col) == 0)
          continue;
        Int Factor = floorDiv(H.at(R, Col), H.at(PivotRow, Col));
        subtractRow(R, PivotRow, Factor);
        if (H.at(R, Col) != 0)
          Progress = true;
      }
    }
    if (H.at(PivotRow, Col) == 0)
      continue;
    // Reduce entries above the pivot modulo the pivot.
    for (unsigned R = 0; R < PivotRow; ++R) {
      Int Factor = floorDiv(H.at(R, Col), H.at(PivotRow, Col));
      if (Factor != 0)
        subtractRow(R, PivotRow, Factor);
    }
    ++PivotRow;
  }
  return Result;
}

IntMatrix pinj::plutoOrthogonalProjector(const IntMatrix &H) {
  unsigned K = H.numRows();
  unsigned N = H.numCols();
  assert(matrixRank(H) == K && "projector needs full row rank");

  // G = H * H^T (k x k), then invert over the rationals with
  // Gauss-Jordan on [G | I].
  std::vector<std::vector<Rational>> Aug(
      K, std::vector<Rational>(2 * K, Rational(0)));
  for (unsigned R = 0; R != K; ++R) {
    for (unsigned C = 0; C != K; ++C)
      Aug[R][C] = Rational(dotProduct(H.row(R), H.row(C)));
    Aug[R][K + R] = Rational(1);
  }
  for (unsigned Col = 0; Col != K; ++Col) {
    unsigned Pivot = Col;
    while (Pivot < K && Aug[Pivot][Col].isZero())
      ++Pivot;
    assert(Pivot < K && "H*H^T must be invertible at full row rank");
    std::swap(Aug[Col], Aug[Pivot]);
    Rational Lead = Aug[Col][Col];
    for (unsigned C = 0; C != 2 * K; ++C)
      Aug[Col][C] /= Lead;
    for (unsigned R = 0; R != K; ++R) {
      if (R == Col || Aug[R][Col].isZero())
        continue;
      Rational Factor = Aug[R][Col];
      for (unsigned C = 0; C != 2 * K; ++C)
        Aug[R][C] -= Factor * Aug[Col][C];
    }
  }

  // P = I - H^T Ginv H, row by row, scaled to integers.
  IntMatrix Result(0, N);
  for (unsigned R = 0; R != N; ++R) {
    // Row R of H^T Ginv: t_j = sum_i H[i][R] * Ginv[i][j].
    std::vector<Rational> T(K, Rational(0));
    for (unsigned J = 0; J != K; ++J)
      for (unsigned I = 0; I != K; ++I)
        T[J] += Rational(H.at(I, R)) * Aug[I][K + J];
    std::vector<Rational> Row(N, Rational(0));
    Row[R] = Rational(1);
    for (unsigned C = 0; C != N; ++C)
      for (unsigned J = 0; J != K; ++J)
        Row[C] -= T[J] * Rational(H.at(J, C));
    Int Lcm = 1;
    for (const Rational &X : Row)
      Lcm = lcmInt(Lcm, X.denominator());
    IntVector IntRow(N, 0);
    for (unsigned C = 0; C != N; ++C)
      IntRow[C] = (Row[C] * Rational(Lcm)).numerator();
    if (isZeroVector(IntRow))
      continue;
    normalizeByGcd(IntRow);
    Result.appendRow(IntRow);
  }
  return Result;
}

bool pinj::inRowSpace(const IntMatrix &M, const IntVector &V) {
  assert((M.empty() || M.numCols() == V.size()) &&
         "vector width mismatch with matrix");
  if (isZeroVector(V))
    return true;
  IntMatrix Extended = M;
  Extended.appendRow(V);
  return matrixRank(M) == matrixRank(Extended);
}
