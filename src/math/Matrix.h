//===- math/Matrix.h - Dense integer matrices -------------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major integer matrices and vectors. These back iteration
/// domain constraint systems, schedule transformation matrices, and the
/// linear algebra in math/LinearAlgebra.h.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MATH_MATRIX_H
#define POLYINJECT_MATH_MATRIX_H

#include "support/Support.h"

#include <string>
#include <vector>

namespace pinj {

/// A dense integer row vector.
using IntVector = std::vector<Int>;

/// Dot product of two equally sized vectors (overflow-checked).
Int dotProduct(const IntVector &A, const IntVector &B);

/// Divides every entry by the gcd of all entries (no-op on zero vectors).
void normalizeByGcd(IntVector &V);

/// \returns true if every entry of \p V is zero.
bool isZeroVector(const IntVector &V);

/// A dense row-major matrix of 64-bit integers.
class IntMatrix {
public:
  IntMatrix() : Columns(0) {}
  IntMatrix(unsigned NumRows, unsigned NumCols)
      : Columns(NumCols), Data(NumRows, IntVector(NumCols, 0)) {}

  unsigned numRows() const { return Data.size(); }
  unsigned numCols() const { return Columns; }
  bool empty() const { return Data.empty(); }

  Int &at(unsigned Row, unsigned Col) {
    assert(Row < numRows() && Col < numCols() && "matrix index out of range");
    return Data[Row][Col];
  }
  Int at(unsigned Row, unsigned Col) const {
    assert(Row < numRows() && Col < numCols() && "matrix index out of range");
    return Data[Row][Col];
  }

  IntVector &row(unsigned Row) {
    assert(Row < numRows() && "row index out of range");
    return Data[Row];
  }
  const IntVector &row(unsigned Row) const {
    assert(Row < numRows() && "row index out of range");
    return Data[Row];
  }

  /// Appends \p NewRow (must have numCols() entries, unless the matrix is
  /// empty, in which case it defines the column count).
  void appendRow(const IntVector &NewRow);

  /// Removes all rows with index >= \p FirstRemoved.
  void truncateRows(unsigned FirstRemoved);

  /// \returns the transpose.
  IntMatrix transpose() const;

  /// Matrix-vector product (overflow-checked).
  IntVector multiply(const IntVector &V) const;

  bool operator==(const IntMatrix &O) const {
    return Columns == O.Columns && Data == O.Data;
  }

  std::string str() const;

private:
  unsigned Columns;
  std::vector<IntVector> Data;
};

} // namespace pinj

#endif // POLYINJECT_MATH_MATRIX_H
