//===- math/Rational.h - Exact rational arithmetic --------------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers stored as 128-bit integers, normalized so that
/// the denominator is positive and gcd(num, den) == 1. The exact simplex
/// in lp/ relies on this type; tableau entries of large scheduling ILPs
/// (long fused chains with big extents) genuinely need more than 64
/// bits. Overflow aborts rather than silently wrapping.
///
/// Arithmetic runs a 64-bit fast path whenever both operands fit in 64
/// bits and every intermediate stays in range (checked with the
/// compiler's overflow intrinsics); any overflow escalates to the
/// 128-bit wide path. Canonical form is unique, so both paths produce
/// bit-identical results — the wide path is a semantic no-op, only
/// slower. The compound operators update in place instead of copying
/// through temporaries.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_MATH_RATIONAL_H
#define POLYINJECT_MATH_RATIONAL_H

#include "support/Support.h"

#include <string>

namespace pinj {

/// The wide integer backing rationals.
using Int128 = __int128;

/// An exact rational with a positive denominator, always kept in lowest
/// terms.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  /*implicit*/ Rational(Int N) : Num(N), Den(1) {}
  Rational(Int N, Int D);

  /// Numerator narrowed to 64 bits; asserts that it fits (callers use
  /// this on solution values, which are small).
  Int numerator() const;
  /// Denominator narrowed to 64 bits; asserts that it fits.
  Int denominator() const;

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }
  bool isInteger() const { return Den == 1; }

  /// \returns the value rounded toward negative infinity.
  Int floor() const;
  /// \returns the value rounded toward positive infinity.
  Int ceil() const;
  /// \returns the fractional part, in [0, 1).
  Rational fractionalPart() const;

  Rational operator-() const { return fromReduced(-Num, Den); }
  Rational operator+(const Rational &O) const {
    Rational R(*this);
    R += O;
    return R;
  }
  Rational operator-(const Rational &O) const {
    Rational R(*this);
    R -= O;
    return R;
  }
  Rational operator*(const Rational &O) const {
    Rational R(*this);
    R *= O;
    return R;
  }
  Rational operator/(const Rational &O) const {
    Rational R(*this);
    R /= O;
    return R;
  }

  Rational &operator+=(const Rational &O);
  Rational &operator-=(const Rational &O);
  Rational &operator*=(const Rational &O);
  Rational &operator/=(const Rational &O);

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const;
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator>=(const Rational &O) const { return !(*this < O); }

  std::string str() const;

private:
  static Rational fromReduced(Int128 N, Int128 D) {
    Rational R;
    R.Num = N;
    R.Den = D;
    return R;
  }
  friend Rational makeRational128(Int128 N, Int128 D);

  /// Slow-path bodies shared by the compound operators.
  void addWide(const Rational &O);
  void mulWide(const Rational &O);
  void divWide(const Rational &O);

  Int128 Num;
  Int128 Den;
};

/// Builds a rational from (possibly wide) parts, reducing to lowest
/// terms; aborts on 128-bit overflow of the reduction inputs.
Rational makeRational128(Int128 N, Int128 D);

namespace rational {

/// Test/reference hook: while alive, every arithmetic op on this thread
/// takes the 128-bit wide path (without bumping the escalation counter).
/// The reference solver uses it so differential tests genuinely compare
/// against always-wide arithmetic.
class ScopedForceWide {
public:
  ScopedForceWide();
  ~ScopedForceWide();

  ScopedForceWide(const ScopedForceWide &) = delete;
  ScopedForceWide &operator=(const ScopedForceWide &) = delete;

private:
  bool Prev;
};

} // namespace rational
} // namespace pinj

#endif // POLYINJECT_MATH_RATIONAL_H
