//===- math/Rational.cpp --------------------------------------------------===//

#include "math/Rational.h"

using namespace pinj;

namespace {

Int128 gcd128(Int128 A, Int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    Int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Int128 mul128(Int128 A, Int128 B) {
  Int128 R;
  if (__builtin_mul_overflow(A, B, &R))
    raiseError(StatusCode::Overflow, "math.rational",
               "128-bit overflow in rational multiplication");
  return R;
}

Int128 add128(Int128 A, Int128 B) {
  Int128 R;
  if (__builtin_add_overflow(A, B, &R))
    raiseError(StatusCode::Overflow, "math.rational",
               "128-bit overflow in rational addition");
  return R;
}

} // namespace

Rational pinj::makeRational128(Int128 N, Int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  Int128 G = gcd128(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Rational R;
  R.Num = N;
  R.Den = D;
  return R;
}

Rational::Rational(Int N, Int D) : Num(N), Den(D) {
  assert(D != 0 && "rational with zero denominator");
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  Int128 G = gcd128(Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
}

Int Rational::numerator() const {
  if (Num > INT64_MAX || Num < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational numerator exceeds 64 bits");
  return static_cast<Int>(Num);
}

Int Rational::denominator() const {
  if (Den > INT64_MAX)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational denominator exceeds 64 bits");
  return static_cast<Int>(Den);
}

Int Rational::floor() const {
  Int128 Q = Num / Den;
  if (Num % Den != 0 && Num < 0)
    --Q;
  if (Q > INT64_MAX || Q < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational floor exceeds 64 bits");
  return static_cast<Int>(Q);
}

Int Rational::ceil() const {
  Int128 Q = Num / Den;
  if (Num % Den != 0 && Num > 0)
    ++Q;
  if (Q > INT64_MAX || Q < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational ceil exceeds 64 bits");
  return static_cast<Int>(Q);
}

Rational Rational::fractionalPart() const {
  return *this - Rational(floor());
}

Rational Rational::operator+(const Rational &O) const {
  // Fast paths for the dominant integer and zero cases.
  if (Num == 0)
    return O;
  if (O.Num == 0)
    return *this;
  if (Den == 1 && O.Den == 1)
    return fromReduced(add128(Num, O.Num), 1);
  // Use the gcd of denominators to keep intermediates small.
  Int128 G = gcd128(Den, O.Den);
  Int128 DenA = Den / G;
  Int128 DenB = O.Den / G;
  Int128 N = add128(mul128(Num, DenB), mul128(O.Num, DenA));
  Int128 D = mul128(mul128(DenA, DenB), G);
  return makeRational128(N, D);
}

Rational Rational::operator-(const Rational &O) const {
  return *this + (-O);
}

Rational Rational::operator*(const Rational &O) const {
  if (Num == 0 || O.Num == 0)
    return Rational();
  if (Den == 1 && O.Den == 1)
    return fromReduced(mul128(Num, O.Num), 1);
  // Cross-reduce before multiplying.
  Int128 G1 = gcd128(Num, O.Den);
  Int128 G2 = gcd128(O.Num, Den);
  Int128 N = mul128(Num / G1, O.Num / G2);
  Int128 D = mul128(Den / G2, O.Den / G1);
  return makeRational128(N, D);
}

Rational Rational::operator/(const Rational &O) const {
  assert(!O.isZero() && "rational division by zero");
  Int128 G1 = gcd128(Num, O.Num);
  Int128 G2 = gcd128(Den, O.Den);
  Int128 N = mul128(Num / G1, O.Den / G2);
  Int128 D = mul128(Den / G2, O.Num / G1);
  return makeRational128(N, D);
}

namespace {

/// Compares A/B with C/D (B, D > 0) exactly, without any multiplication
/// (immune to overflow), via the continued-fraction (Euclidean)
/// algorithm. \returns -1, 0 or +1.
int compareFractionsExact(Int128 A, Int128 B, Int128 C, Int128 D) {
  // Signs first; then reduce to the nonnegative comparison.
  bool NegL = A < 0, NegR = C < 0;
  if (NegL != NegR)
    return NegL ? -1 : 1;
  if (NegL)
    return compareFractionsExact(-C, D, -A, B);
  // Iterative Euclidean comparison of A/B vs C/D with everything >= 0.
  for (;;) {
    Int128 Q1 = A / B, Q2 = C / D;
    if (Q1 != Q2)
      return Q1 < Q2 ? -1 : 1;
    Int128 R1 = A - Q1 * B, R2 = C - Q2 * D;
    if (R1 == 0 && R2 == 0)
      return 0;
    if (R1 == 0)
      return -1;
    if (R2 == 0)
      return 1;
    // A/B ? C/D  <=>  (Q + R1/B) ? (Q + R2/D)  <=>  R1/B ? R2/D
    // <=>  D/R2 ? B/R1 (reciprocals flip the order).
    Int128 NewA = D, NewB = R2, NewC = B, NewD = R1;
    A = NewA;
    B = NewB;
    C = NewC;
    D = NewD;
  }
}

} // namespace

bool Rational::operator<(const Rational &O) const {
  if (Den == O.Den)
    return Num < O.Num;
  return compareFractionsExact(Num, Den, O.Num, O.Den) < 0;
}

std::string Rational::str() const {
  auto toString = [](Int128 V) {
    if (V == 0)
      return std::string("0");
    bool Negative = V < 0;
    std::string Digits;
    while (V != 0) {
      int Digit = static_cast<int>(V % 10);
      Digits.insert(Digits.begin(),
                    static_cast<char>('0' + (Digit < 0 ? -Digit : Digit)));
      V /= 10;
    }
    return Negative ? "-" + Digits : Digits;
  };
  if (Den == 1)
    return toString(Num);
  return toString(Num) + "/" + toString(Den);
}
