//===- math/Rational.cpp --------------------------------------------------===//

#include "math/Rational.h"

#include "obs/Metrics.h"

#include <cstdint>

using namespace pinj;

namespace {

thread_local bool ForceWide = false;

/// Counts how often arithmetic had to leave the 64-bit fast path (wide
/// operands or a checked 64-bit overflow). ScopedForceWide runs do not
/// count: they are not genuine escalations.
obs::Counter &widePathCounter() {
  static obs::Counter &C = obs::metrics().counter("lp.rational_widepath");
  return C;
}

bool fits64(Int128 V) { return V >= INT64_MIN && V <= INT64_MAX; }

/// gcd of |A| and |B| on 64-bit magnitudes (unsigned, so |INT64_MIN| is
/// representable). \returns a value in [1, 2^63] as uint64.
std::uint64_t gcdMag64(Int A, Int B) {
  std::uint64_t X = A < 0 ? 0 - static_cast<std::uint64_t>(A)
                          : static_cast<std::uint64_t>(A);
  std::uint64_t Y = B < 0 ? 0 - static_cast<std::uint64_t>(B)
                          : static_cast<std::uint64_t>(B);
  while (Y != 0) {
    std::uint64_t T = X % Y;
    X = Y;
    Y = T;
  }
  return X;
}

Int128 gcd128(Int128 A, Int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    Int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

Int128 mul128(Int128 A, Int128 B) {
  Int128 R;
  if (__builtin_mul_overflow(A, B, &R))
    raiseError(StatusCode::Overflow, "math.rational",
               "128-bit overflow in rational multiplication");
  return R;
}

Int128 add128(Int128 A, Int128 B) {
  Int128 R;
  if (__builtin_add_overflow(A, B, &R))
    raiseError(StatusCode::Overflow, "math.rational",
               "128-bit overflow in rational addition");
  return R;
}

} // namespace

rational::ScopedForceWide::ScopedForceWide() : Prev(ForceWide) {
  ForceWide = true;
}

rational::ScopedForceWide::~ScopedForceWide() { ForceWide = Prev; }

Rational pinj::makeRational128(Int128 N, Int128 D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  Int128 G = gcd128(N, D);
  if (G > 1) {
    N /= G;
    D /= G;
  }
  Rational R;
  R.Num = N;
  R.Den = D;
  return R;
}

Rational::Rational(Int N, Int D) : Num(N), Den(D) {
  assert(D != 0 && "rational with zero denominator");
  if (Den < 0) {
    Num = -Num;
    Den = -Den;
  }
  Int128 G = gcd128(Num, Den);
  if (G > 1) {
    Num /= G;
    Den /= G;
  }
}

Int Rational::numerator() const {
  if (Num > INT64_MAX || Num < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational numerator exceeds 64 bits");
  return static_cast<Int>(Num);
}

Int Rational::denominator() const {
  if (Den > INT64_MAX)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational denominator exceeds 64 bits");
  return static_cast<Int>(Den);
}

Int Rational::floor() const {
  Int128 Q = Num / Den;
  if (Num % Den != 0 && Num < 0)
    --Q;
  if (Q > INT64_MAX || Q < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational floor exceeds 64 bits");
  return static_cast<Int>(Q);
}

Int Rational::ceil() const {
  Int128 Q = Num / Den;
  if (Num % Den != 0 && Num > 0)
    ++Q;
  if (Q > INT64_MAX || Q < INT64_MIN)
    raiseError(StatusCode::Overflow, "math.rational",
               "rational ceil exceeds 64 bits");
  return static_cast<Int>(Q);
}

Rational Rational::fractionalPart() const {
  return *this - Rational(floor());
}

void Rational::addWide(const Rational &O) {
  if (Den == 1 && O.Den == 1) {
    Num = add128(Num, O.Num);
    return;
  }
  // Use the gcd of denominators to keep intermediates small.
  Int128 G = gcd128(Den, O.Den);
  Int128 DenA = Den / G;
  Int128 DenB = O.Den / G;
  Int128 N = add128(mul128(Num, DenB), mul128(O.Num, DenA));
  Int128 D = mul128(mul128(DenA, DenB), G);
  *this = makeRational128(N, D);
}

Rational &Rational::operator+=(const Rational &O) {
  // Fast paths for the dominant integer and zero cases.
  if (O.Num == 0)
    return *this;
  if (Num == 0) {
    *this = O;
    return *this;
  }
  if (!ForceWide && fits64(Num) && fits64(Den) && fits64(O.Num) &&
      fits64(O.Den)) {
    Int A = static_cast<Int>(Num), B = static_cast<Int>(Den);
    Int C = static_cast<Int>(O.Num), D = static_cast<Int>(O.Den);
    if (B == 1 && D == 1) {
      Int N;
      if (!__builtin_add_overflow(A, C, &N)) {
        Num = N;
        return *this;
      }
    } else {
      // a/b + c/d with g = gcd(b, d): (a*(d/g) + c*(b/g)) / (b*(d/g)).
      Int G = static_cast<Int>(gcdMag64(B, D)); // b, d > 0: fits.
      Int DB = B / G, DD = D / G;
      Int T1, T2, N, DN;
      if (!__builtin_mul_overflow(A, DD, &T1) &&
          !__builtin_mul_overflow(C, DB, &T2) &&
          !__builtin_add_overflow(T1, T2, &N) &&
          !__builtin_mul_overflow(B, DD, &DN)) {
        if (N == 0) {
          Num = 0;
          Den = 1;
          return *this;
        }
        std::uint64_t G2 = gcdMag64(N, DN);
        if (G2 > 1) {
          N /= static_cast<Int>(G2);
          DN /= static_cast<Int>(G2);
        }
        Num = N;
        Den = DN;
        return *this;
      }
    }
    widePathCounter().inc();
  } else if (!ForceWide) {
    widePathCounter().inc();
  }
  addWide(O);
  return *this;
}

Rational &Rational::operator-=(const Rational &O) { return *this += -O; }

void Rational::mulWide(const Rational &O) {
  if (Den == 1 && O.Den == 1) {
    Num = mul128(Num, O.Num);
    return;
  }
  // Cross-reduce before multiplying.
  Int128 G1 = gcd128(Num, O.Den);
  Int128 G2 = gcd128(O.Num, Den);
  Int128 N = mul128(Num / G1, O.Num / G2);
  Int128 D = mul128(Den / G2, O.Den / G1);
  *this = makeRational128(N, D);
}

Rational &Rational::operator*=(const Rational &O) {
  if (Num == 0 || O.Num == 0) {
    Num = 0;
    Den = 1;
    return *this;
  }
  if (!ForceWide && fits64(Num) && fits64(Den) && fits64(O.Num) &&
      fits64(O.Den)) {
    Int A = static_cast<Int>(Num), B = static_cast<Int>(Den);
    Int C = static_cast<Int>(O.Num), D = static_cast<Int>(O.Den);
    // Cross-reduce: the product of the reduced factors is already in
    // lowest terms, no trailing gcd needed.
    std::uint64_t G1 = gcdMag64(A, D), G2 = gcdMag64(C, B);
    if (G1 > 1) {
      A /= static_cast<Int>(G1);
      D /= static_cast<Int>(G1);
    }
    if (G2 > 1) {
      C /= static_cast<Int>(G2);
      B /= static_cast<Int>(G2);
    }
    Int N, DN;
    if (!__builtin_mul_overflow(A, C, &N) &&
        !__builtin_mul_overflow(B, D, &DN)) {
      Num = N;
      Den = DN;
      return *this;
    }
    widePathCounter().inc();
  } else if (!ForceWide) {
    widePathCounter().inc();
  }
  mulWide(O);
  return *this;
}

void Rational::divWide(const Rational &O) {
  Int128 G1 = gcd128(Num, O.Num);
  Int128 G2 = gcd128(Den, O.Den);
  Int128 N = mul128(Num / G1, O.Den / G2);
  Int128 D = mul128(Den / G2, O.Num / G1);
  *this = makeRational128(N, D);
}

Rational &Rational::operator/=(const Rational &O) {
  assert(!O.isZero() && "rational division by zero");
  if (Num == 0)
    return *this;
  if (!ForceWide && fits64(Num) && fits64(Den) && fits64(O.Num) &&
      fits64(O.Den)) {
    Int A = static_cast<Int>(Num), B = static_cast<Int>(Den);
    Int C = static_cast<Int>(O.Num), D = static_cast<Int>(O.Den);
    // (a/b) / (c/d) = (a*d) / (b*c), cross-reduced so the result is
    // already canonical up to the sign of the denominator.
    std::uint64_t G1 = gcdMag64(A, C), G2 = gcdMag64(B, D);
    if (G1 > 1) {
      A /= static_cast<Int>(G1);
      C /= static_cast<Int>(G1);
    }
    if (G2 > 1) {
      B /= static_cast<Int>(G2);
      D /= static_cast<Int>(G2);
    }
    Int N, DN;
    if (!__builtin_mul_overflow(A, D, &N) &&
        !__builtin_mul_overflow(B, C, &DN)) {
      if (DN < 0) {
        // DN = -2^63 cannot occur: |B*C| = 2^63 requires both factors
        // to be powers of two with |B|*|C| = 2^63, and then |N| over it
        // would have been reduced; still, guard the negation.
        Int NN, NDN;
        if (!__builtin_sub_overflow(Int(0), N, &NN) &&
            !__builtin_sub_overflow(Int(0), DN, &NDN)) {
          Num = NN;
          Den = NDN;
          return *this;
        }
      } else {
        Num = N;
        Den = DN;
        return *this;
      }
    }
    widePathCounter().inc();
  } else if (!ForceWide) {
    widePathCounter().inc();
  }
  divWide(O);
  return *this;
}

namespace {

/// Compares A/B with C/D (B, D > 0) exactly, without any multiplication
/// (immune to overflow), via the continued-fraction (Euclidean)
/// algorithm. \returns -1, 0 or +1.
int compareFractionsExact(Int128 A, Int128 B, Int128 C, Int128 D) {
  // Signs first; then reduce to the nonnegative comparison.
  bool NegL = A < 0, NegR = C < 0;
  if (NegL != NegR)
    return NegL ? -1 : 1;
  if (NegL)
    return compareFractionsExact(-C, D, -A, B);
  // Iterative Euclidean comparison of A/B vs C/D with everything >= 0.
  for (;;) {
    Int128 Q1 = A / B, Q2 = C / D;
    if (Q1 != Q2)
      return Q1 < Q2 ? -1 : 1;
    Int128 R1 = A - Q1 * B, R2 = C - Q2 * D;
    if (R1 == 0 && R2 == 0)
      return 0;
    if (R1 == 0)
      return -1;
    if (R2 == 0)
      return 1;
    // A/B ? C/D  <=>  (Q + R1/B) ? (Q + R2/D)  <=>  R1/B ? R2/D
    // <=>  D/R2 ? B/R1 (reciprocals flip the order).
    Int128 NewA = D, NewB = R2, NewC = B, NewD = R1;
    A = NewA;
    B = NewB;
    C = NewC;
    D = NewD;
  }
}

} // namespace

bool Rational::operator<(const Rational &O) const {
  if (Den == O.Den)
    return Num < O.Num;
  // 64-bit operands: a/b < c/d <=> a*d < c*b, and 64x64 products always
  // fit in 128 bits.
  if (fits64(Num) && fits64(Den) && fits64(O.Num) && fits64(O.Den))
    return Num * O.Den < O.Num * Den;
  return compareFractionsExact(Num, Den, O.Num, O.Den) < 0;
}

std::string Rational::str() const {
  auto toString = [](Int128 V) {
    if (V == 0)
      return std::string("0");
    bool Negative = V < 0;
    std::string Digits;
    while (V != 0) {
      int Digit = static_cast<int>(V % 10);
      Digits.insert(Digits.begin(),
                    static_cast<char>('0' + (Digit < 0 ? -Digit : Digit)));
      V /= 10;
    }
    return Negative ? "-" + Digits : Digits;
  };
  if (Den == 1)
    return toString(Num);
  return toString(Num) + "/" + toString(Den);
}
