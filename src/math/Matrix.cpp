//===- math/Matrix.cpp ----------------------------------------------------===//

#include "math/Matrix.h"

using namespace pinj;

Int pinj::dotProduct(const IntVector &A, const IntVector &B) {
  assert(A.size() == B.size() && "dot product size mismatch");
  Int Sum = 0;
  for (size_t I = 0, E = A.size(); I != E; ++I)
    Sum = checkedAdd(Sum, checkedMul(A[I], B[I]));
  return Sum;
}

void pinj::normalizeByGcd(IntVector &V) {
  Int G = 0;
  for (Int X : V)
    G = gcdInt(G, X);
  if (G <= 1)
    return;
  for (Int &X : V)
    X /= G;
}

bool pinj::isZeroVector(const IntVector &V) {
  for (Int X : V)
    if (X != 0)
      return false;
  return true;
}

void IntMatrix::appendRow(const IntVector &NewRow) {
  if (Data.empty() && Columns == 0)
    Columns = NewRow.size();
  assert(NewRow.size() == Columns && "appended row has wrong width");
  Data.push_back(NewRow);
}

void IntMatrix::truncateRows(unsigned FirstRemoved) {
  if (FirstRemoved < Data.size())
    Data.resize(FirstRemoved);
}

IntMatrix IntMatrix::transpose() const {
  IntMatrix T(numCols(), numRows());
  for (unsigned R = 0, NR = numRows(); R != NR; ++R)
    for (unsigned C = 0, NC = numCols(); C != NC; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

IntVector IntMatrix::multiply(const IntVector &V) const {
  assert(V.size() == Columns && "matrix-vector size mismatch");
  IntVector Result(numRows(), 0);
  for (unsigned R = 0, NR = numRows(); R != NR; ++R)
    Result[R] = dotProduct(Data[R], V);
  return Result;
}

std::string IntMatrix::str() const {
  std::string S;
  for (unsigned R = 0, NR = numRows(); R != NR; ++R) {
    S += "[";
    for (unsigned C = 0, NC = numCols(); C != NC; ++C) {
      if (C != 0)
        S += " ";
      S += std::to_string(at(R, C));
    }
    S += "]\n";
  }
  return S;
}
