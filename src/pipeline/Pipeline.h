//===- pipeline/Pipeline.h - End-to-end operator pipeline -------*- C++ -*-===//
//
// Part of PolyInject, a reproduction of "Optimizing GPU Deep Learning
// Operators with Polyhedral Scheduling Constraint Injection" (CGO 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the public API: runs one fused operator through the four
/// configurations the paper compares —
///   isl   : plain polyhedral scheduling (reference configuration),
///   tvm   : the manual-schedule proxy (per-statement launches),
///   novec : influenced scheduling, explicit vectorization disabled,
///   infl  : influenced scheduling with explicit vector types —
/// producing schedules, CUDA-like code and simulated execution times.
///
//===----------------------------------------------------------------------===//

#ifndef POLYINJECT_PIPELINE_PIPELINE_H
#define POLYINJECT_PIPELINE_PIPELINE_H

#include "baselines/TvmProxy.h"
#include "codegen/Ast.h"
#include "influence/TreeBuilder.h"
#include "obs/Report.h"
#include "sched/Scheduler.h"

#include <memory>

namespace pinj {

struct PipelineOptions;

namespace target {
class TargetModel;
}

/// The scheduling artifacts one operator compile produces, in the form
/// the compilation cache stores and replays: the three per-configuration
/// schedules plus the two paper flags derived while scheduling. A cache
/// hit substitutes these for the scheduling phase; simulation always
/// runs.
struct CachedCompilation {
  Schedule Isl;
  Schedule Novec;
  Schedule Infl;
  bool Influenced = false;
  bool VecEligible = false;
};

/// The pipeline-side cache interface. Implemented by
/// service::ScheduleCache (fingerprint-keyed LRU with optional disk
/// backing); defined here so pipeline/ stays below service/. Both calls
/// must be thread-safe: the batch compiler invokes them from concurrent
/// workers.
class CompilationCacheHook {
public:
  virtual ~CompilationCacheHook() = default;

  /// \returns true and fills \p Out when a cached compilation exists
  /// for \p K under \p Options.
  virtual bool lookup(const Kernel &K, const PipelineOptions &Options,
                      CachedCompilation &Out) = 0;

  /// Offers a freshly computed compilation for caching. Implementations
  /// may decline (e.g. capacity 0); the pipeline only offers
  /// degradation-free results.
  virtual void store(const Kernel &K, const PipelineOptions &Options,
                     const CachedCompilation &Entry) = 0;
};

/// The configuration an autotuning hook chose for one operator, as the
/// pipeline reports it (schedule results carry it into the stats table
/// and the JSON sidecar).
struct TunedConfig {
  /// Canonical candidate encoding (tune/SearchSpace.h), or "baseline"
  /// when the paper-default options won the search.
  std::string Encoding;
  /// The winner's simulated infl-configuration kernel time.
  double PredictedTimeUs = 0;
  /// The config was replayed from the tuning database; no search ran.
  bool FromDb = false;
  /// The search strategy that produced the entry ("exhaustive",
  /// "greedy", "anneal").
  std::string Strategy;
};

/// The pipeline-side autotuning interface, the analogue of
/// CompilationCacheHook one phase earlier: consulted before anything
/// else runs, it may rewrite the pipeline tunables for this operator.
/// Implemented by tune::Autotuner (search over the simulated cost
/// model, persisted in a tuning database); defined here so pipeline/
/// stays below tune/. Must be thread-safe: the batch compiler invokes
/// it from concurrent workers.
class TuningHook {
public:
  virtual ~TuningHook() = default;

  /// Chooses tuned options for \p K. \p Tuned enters as a copy of the
  /// pipeline options with the Tuner/Sink hooks cleared; on a true
  /// return the pipeline runs \p K under the (possibly rewritten)
  /// \p Tuned and reports \p Out. Returning false runs the operator
  /// unchanged with no tuning record.
  virtual bool tune(const Kernel &K, PipelineOptions &Tuned,
                    TunedConfig &Out) = 0;
};

/// All pipeline tunables in one place.
struct PipelineOptions {
  SchedulerOptions Sched;
  InfluenceOptions Influence;
  GpuMappingOptions Mapping;
  GpuModel Gpu;
  /// The backend target that scores every configuration (src/target/).
  /// Null means the built-in GPU analytic backend over `Gpu` — the
  /// default, and bit-identical to the pre-target-subsystem path; code
  /// that mutates `Gpu` directly keeps working unchanged. When set,
  /// simulation, the tvm proxy, the tuner's evaluator and the options
  /// fingerprint all follow it (and `Gpu` is ignored unless the target
  /// is itself GPU-analytic). Shared const: safe across the batch
  /// compiler's and daemon's worker pools.
  std::shared_ptr<const target::TargetModel> Target;
  /// Execute original vs scheduled order on real buffers and compare
  /// (slow; meant for tests and small shapes).
  bool Validate = false;
  /// Whole-operator resource limits, installed around everything
  /// runOperator does (all four configurations plus validation). WallMs
  /// acts as the operator deadline: once it expires, remaining
  /// configurations are skipped and recorded as degradations. Nested
  /// inside it, Sched.Budget still applies per scheduling run.
  SolverBudget Budget;
  /// When set, runOperator appends one record per operator here (the
  /// JSON metrics sidecar; see obs/Report.h). Not consulted for the
  /// cache key (it does not affect the compilation result).
  obs::ReportSink *Sink = nullptr;
  /// When set, runOperator looks up the operator before scheduling and
  /// replays the cached schedules on a hit (simulation still runs);
  /// degradation-free misses are stored back. Not part of the cache key.
  CompilationCacheHook *Cache = nullptr;
  /// When set, runOperator consults the hook first and runs the
  /// operator under the tuned options it chooses (the cache, if any,
  /// then keys on the tuned options). Not part of the cache key.
  TuningHook *Tuner = nullptr;
};

/// Result of one configuration of one operator.
struct ConfigResult {
  Schedule Sched;
  KernelSim Sim;
  double TimeUs = 0;
  SchedulerStats Stats;
  /// Why this configuration did not run at full fidelity; ok() when it
  /// did. Details of what was substituted are in
  /// OperatorReport::Degradations.
  Status Outcome;
  /// Pipeline metrics delta attributed to this configuration (isl:
  /// reference scheduling + simulation; novec: influenced scheduling +
  /// simulation; infl: vector finalization + simulation).
  obs::MetricsSnapshot Metrics;
};

/// One degradation taken by runOperator. The ladder: a failed infl
/// configuration degrades to the novec schedule, a failed novec to the
/// isl reference schedule, a failed isl to the original program order —
/// so every configuration always carries a valid schedule.
struct DegradationEvent {
  std::string Config; ///< "isl", "novec", "infl", "tvm", "validate", ...
  std::string Site;   ///< Originating site ("lp.simplex", a fail-point).
  StatusCode Code = StatusCode::Internal;
  std::string Detail; ///< Human-readable explanation.
};

/// The paper's per-operator measurements.
struct OperatorReport {
  std::string Name;
  /// Stable request id of this compilation (obs/Journal.h): allocated at
  /// runOperator entry (or pre-assigned by the batch compiler) and
  /// stamped on every journal event, trace span, and the report sidecar,
  /// so the three artifacts are joinable offline.
  std::string RequestId;
  ConfigResult Isl;
  ConfigResult Novec;
  ConfigResult Infl;
  TvmProxyResult Tvm;
  /// Our influence changed the schedule relative to isl's solution
  /// (the paper's "infl" operator count).
  bool Influenced = false;
  /// The influenced schedule is eligible for explicit load/store
  /// vectorization (the paper's "vec" operator count).
  bool VecEligible = false;
  /// Set when Validate was requested and every schedule matched the
  /// reference execution.
  bool Validated = false;
  /// Every degradation taken while producing this report, in order.
  /// Empty on a fully healthy run.
  std::vector<DegradationEvent> Degradations;
  /// The scheduling phase was skipped because the compilation cache
  /// already held this operator's schedules (see PipelineOptions::Cache).
  bool CacheHit = false;
  /// A TuningHook chose the options this report was produced under;
  /// Tuning records what it picked.
  bool Tuned = false;
  TunedConfig Tuning;

  bool degraded() const { return !Degradations.empty(); }
  /// Whole-operator pipeline metrics delta (covers all configurations,
  /// the tvm proxy and validation).
  obs::MetricsSnapshot Metrics;
};

/// Runs the full pipeline on \p K.
OperatorReport runOperator(const Kernel &K, const PipelineOptions &Options);

/// Schedules \p K with influence and finalizes vector marks.
/// Exposed for examples that want the intermediate artifacts.
SchedulerResult scheduleInfluenced(const Kernel &K,
                                   const PipelineOptions &Options);

/// The CUDA-like rendering of a scheduled kernel.
std::string renderCuda(const Kernel &K, const Schedule &S,
                       const GpuMappingOptions &Mapping);

/// True if the backend can generate and simulate \p S on \p K:
/// unit/constant rows only, and statements sharing a loop dimension
/// agree on its extent. The autotuner's evaluator uses it to mirror the
/// pipeline's fallback decisions exactly.
bool isSimulatableSchedule(const Kernel &K, const Schedule &S);

/// A compact per-configuration stats table for one operator report:
/// time, transactions, ILP solves/nodes, simplex pivots, fallbacks.
std::string printStatsTable(const OperatorReport &R);

/// Converts a report to the sidecar record shape (see obs/Report.h).
obs::OperatorRecord toSinkRecord(const OperatorReport &R);

} // namespace pinj

#endif // POLYINJECT_PIPELINE_PIPELINE_H
