//===- pipeline/Pipeline.cpp ----------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"

using namespace pinj;

namespace {

/// True if the schedule can be generated and simulated by the backend:
/// unit/constant rows only, and statements sharing a loop dimension
/// agree on its extent.
bool backendAccepts(const Kernel &K, const Schedule &S) {
  if (!isGeneratableSchedule(K, S))
    return false;
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    Int Extent = 0;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      RowShape Shape = analyzeRow(K, S, Stmt, D);
      if (Shape.Kind != RowShape::Unit)
        continue;
      Int StmtExtent = K.Stmts[Stmt].Extents[Shape.Iter];
      if (Extent != 0 && StmtExtent != Extent)
        return false;
      Extent = StmtExtent;
    }
  }
  return true;
}

bool sameTransforms(const Schedule &A, const Schedule &B) {
  if (A.Transforms.size() != B.Transforms.size())
    return false;
  for (unsigned S = 0, E = A.Transforms.size(); S != E; ++S)
    if (!(A.Transforms[S] == B.Transforms[S]))
      return false;
  return true;
}

ConfigResult simulateConfig(const Kernel &K, const Schedule &S,
                            const PipelineOptions &Options) {
  ConfigResult Result;
  Result.Sched = S;
  MappedKernel M = mapToGpu(K, S, Options.Mapping);
  Result.Sim = simulateKernel(M, Options.Gpu);
  Result.TimeUs = Result.Sim.TimeUs;
  return Result;
}

} // namespace

SchedulerResult pinj::scheduleInfluenced(const Kernel &K,
                                         const PipelineOptions &Options) {
  InfluenceTree Tree = buildInfluenceTree(K, Options.Influence);
  SchedulerOptions Sched = Options.Sched;
  Sched.SerializeSccs = false; // Let fusion constraints take effect.
  return scheduleKernel(K, Sched, &Tree);
}

std::string pinj::renderCuda(const Kernel &K, const Schedule &S,
                             const GpuMappingOptions &Mapping) {
  MappedKernel M = mapToGpu(K, S, Mapping);
  return printCuda(M);
}

OperatorReport pinj::runOperator(const Kernel &K,
                                 const PipelineOptions &Options) {
  OperatorReport Report;
  Report.Name = K.Name;

  // Reference configuration: plain scheduling, SCCs serialized up front
  // (the isl behaviour observed in the paper's Fig. 2(b)).
  SchedulerOptions IslOptions = Options.Sched;
  IslOptions.SerializeSccs = true;
  SchedulerResult IslRun = scheduleKernel(K, IslOptions);
  finalizeVectorMarks(K, IslRun.Sched, /*DisableVectorization=*/true);
  assert(backendAccepts(K, IslRun.Sched) &&
         "reference schedule must be generatable");
  Report.Isl = simulateConfig(K, IslRun.Sched, Options);
  Report.Isl.Stats = IslRun.Stats;

  // Influenced scheduling (shared by novec and infl).
  SchedulerResult InflRun = scheduleInfluenced(K, Options);
  if (!backendAccepts(K, InflRun.Sched)) {
    // The influenced schedule fused statements the backend cannot
    // generate together; fall back to the reference schedule.
    InflRun.Sched = IslRun.Sched;
    InflRun.ReachedLeaf = nullptr;
  }
  Report.Influenced = !sameTransforms(InflRun.Sched, IslRun.Sched);

  Schedule NovecSched = InflRun.Sched;
  finalizeVectorMarks(K, NovecSched, /*DisableVectorization=*/true);
  Report.Novec = simulateConfig(K, NovecSched, Options);
  Report.Novec.Stats = InflRun.Stats;

  Schedule InflSched = InflRun.Sched;
  Report.VecEligible =
      finalizeVectorMarks(K, InflSched, /*DisableVectorization=*/false) > 0;
  Report.Infl = simulateConfig(K, InflSched, Options);
  Report.Infl.Stats = InflRun.Stats;

  // Manual-schedule proxy.
  Report.Tvm = simulateTvmProxy(K, Options.Gpu, Options.Mapping);

  if (Options.Validate) {
    Report.Validated = scheduleIsSemanticallyEqual(K, IslRun.Sched) &&
                       scheduleIsSemanticallyEqual(K, InflSched);
  }
  return Report;
}
