//===- pipeline/Pipeline.cpp ----------------------------------------------===//

#include "pipeline/Pipeline.h"

#include "codegen/Vectorizer.h"
#include "exec/Interpreter.h"
#include "lp/Budget.h"
#include "obs/Journal.h"
#include "obs/Trace.h"
#include "support/Status.h"
#include "target/Target.h"

#include <chrono>
#include <cstdio>

using namespace pinj;

bool pinj::isSimulatableSchedule(const Kernel &K, const Schedule &S) {
  if (!isGeneratableSchedule(K, S))
    return false;
  for (unsigned D = 0, ND = S.numDims(); D != ND; ++D) {
    Int Extent = 0;
    for (unsigned Stmt = 0, E = K.Stmts.size(); Stmt != E; ++Stmt) {
      RowShape Shape = analyzeRow(K, S, Stmt, D);
      if (Shape.Kind != RowShape::Unit)
        continue;
      Int StmtExtent = K.Stmts[Stmt].Extents[Shape.Iter];
      if (Extent != 0 && StmtExtent != Extent)
        return false;
      Extent = StmtExtent;
    }
  }
  return true;
}

namespace {

bool backendAccepts(const Kernel &K, const Schedule &S) {
  return isSimulatableSchedule(K, S);
}

bool sameTransforms(const Schedule &A, const Schedule &B) {
  if (A.Transforms.size() != B.Transforms.size())
    return false;
  for (unsigned S = 0, E = A.Transforms.size(); S != E; ++S)
    if (!(A.Transforms[S] == B.Transforms[S]))
      return false;
  return true;
}

/// Nesting depth of runOperator on this thread. Exactly one
/// request_start/request_end pair is journaled per operator compilation:
/// the outermost call owns them, so the tuner-dispatch recursion and any
/// evaluation runs the tuner performs internally never double-emit.
thread_local unsigned RequestDepth = 0;

struct RequestDepthGuard {
  RequestDepthGuard() { ++RequestDepth; }
  ~RequestDepthGuard() { --RequestDepth; }
};

double stageClockUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Journals one stage_end record (isl/novec/infl/tvm/validate) with the
/// stage's wall time and the solver-effort counters attributed to it.
void journalStageEnd(const char *Stage, double DurUs,
                     const obs::MetricsSnapshot &Delta,
                     const Status &Outcome) {
  if (!obs::Journal::fastEnabled())
    return;
  obs::JournalEvent("stage_end")
      .field("stage", Stage)
      .field("dur_us", DurUs)
      .field("ilp_nodes", Delta.counter("lp.ilp_nodes"))
      .field("ilp_solves", Delta.counter("lp.ilp_solves"))
      .field("pivots", Delta.counter("lp.simplex_pivots"))
      .field("outcome", Outcome.ok() ? "ok" : statusCodeName(Outcome.code()));
}

} // namespace

SchedulerResult pinj::scheduleInfluenced(const Kernel &K,
                                         const PipelineOptions &Options) {
  InfluenceTree Tree = buildInfluenceTree(K, Options.Influence);
  SchedulerOptions Sched = Options.Sched;
  Sched.SerializeSccs = false; // Let fusion constraints take effect.
  return scheduleKernel(K, Sched, &Tree);
}

std::string pinj::renderCuda(const Kernel &K, const Schedule &S,
                             const GpuMappingOptions &Mapping) {
  MappedKernel M = mapToGpu(K, S, Mapping);
  return printCuda(M);
}

OperatorReport pinj::runOperator(const Kernel &K,
                                 const PipelineOptions &Options) {
  // Request identity: the outermost runOperator call on this thread owns
  // the request — it allocates the id (unless the batch compiler
  // pre-assigned one via RequestScope) and journals the single
  // request_start/request_end pair. Tuner-dispatch recursion and the
  // tuner's internal evaluation runs inherit the id and stay silent.
  const bool Outermost = RequestDepth == 0;
  std::string Rid = obs::currentRequestId();
  if (Rid.empty())
    Rid = obs::nextRequestId();
  obs::RequestScope Request(Rid);
  RequestDepthGuard DepthGuard;
  const double RequestT0 = stageClockUs();
  if (Outermost && obs::Journal::fastEnabled())
    obs::JournalEvent("request_start")
        .field("operator", K.Name)
        .field("tuner", Options.Tuner != nullptr);
  auto journalRequestEnd = [&](const OperatorReport &R) {
    if (!Outermost || !obs::Journal::fastEnabled())
      return;
    obs::JournalEvent("request_end")
        .field("operator", K.Name)
        .field("dur_us", stageClockUs() - RequestT0)
        .field("degradations", R.Degradations.size())
        .field("influenced", R.Influenced)
        .field("vec_eligible", R.VecEligible)
        .field("cache_hit", R.CacheHit)
        .field("tuned", R.Tuned);
  };

  // Autotuning dispatch: the hook picks the options this operator runs
  // under (possibly unchanged), and the compilation below proceeds as a
  // plain run of those options — the cache keys on them, so tuned and
  // untuned compilations never alias. The sink record is written here
  // so it carries the tuning outcome.
  if (Options.Tuner) {
    PipelineOptions Inner = Options;
    Inner.Tuner = nullptr;
    Inner.Sink = nullptr;
    TunedConfig Chosen;
    bool Applied = Options.Tuner->tune(K, Inner, Chosen);
    OperatorReport Report = runOperator(K, Inner);
    if (Applied) {
      Report.Tuned = true;
      Report.Tuning = std::move(Chosen);
    }
    if (obs::Journal::fastEnabled())
      obs::JournalEvent("tuning")
          .field("applied", Applied)
          .field("encoding", Report.Tuned ? Report.Tuning.Encoding
                                          : std::string())
          .field("from_db", Report.Tuned && Report.Tuning.FromDb)
          .field("strategy", Report.Tuned ? Report.Tuning.Strategy
                                          : std::string());
    if (Options.Sink)
      Options.Sink->add(toSinkRecord(Report));
    journalRequestEnd(Report);
    return Report;
  }

  obs::Span Op("pipeline.operator");
  if (Op.active())
    Op.arg("name", K.Name).arg("request_id", Rid);
  obs::MetricsRegistry &M = obs::metrics();
  static obs::Counter &Operators = M.counter("pipeline.operators");
  static obs::Counter &Degradations = M.counter("pipeline.degradations");
  Operators.inc();
  obs::MetricsSnapshot Begin = M.snapshot();

  OperatorReport Report;
  Report.Name = K.Name;
  Report.RequestId = Rid;

  // Whole-operator budget: WallMs is the operator deadline; pivot/node
  // caps apply across every solve of every configuration. Per-run
  // scheduler budgets (Options.Sched.Budget) nest inside it.
  budget::BudgetScope OpBudget(Options.Budget);

  auto recordDegradation = [&](const char *Config, const Status &St) {
    Degradations.inc();
    DegradationEvent E;
    E.Config = Config;
    E.Site = St.site();
    E.Code = St.code();
    E.Detail = St.message().empty() ? St.str() : St.message();
    if (obs::Journal::fastEnabled())
      obs::JournalEvent("degradation")
          .field("config", Config)
          .field("site", E.Site)
          .field("code", statusCodeName(E.Code))
          .field("detail", E.Detail);
    Report.Degradations.push_back(std::move(E));
    // A degradation marks an abnormal path: flush the trace and journal
    // sinks now, so a run that dies further on still leaves loadable
    // artifacts (both flushes are cheap no-ops when unconfigured).
    obs::Tracer::get().autoFlush();
    obs::Journal::get().flushFile();
  };
  // Strips explicit vector marks by hand; the degradation-path
  // equivalent of finalizeVectorMarks(..., DisableVectorization=true)
  // when the vectorizer itself is what failed.
  auto stripVectorMarks = [](Schedule &S) {
    for (DimInfo &D : S.Dims) {
      D.VectorStmts.clear();
      D.VectorWidth = 0;
    }
  };
  // Maps and simulates \p S into \p Out; on failure Out keeps the
  // schedule but reports zero simulation results. A schedule the
  // backend cannot generate is skipped the same way (the last-resort
  // original-order fallback is always executable by the interpreter,
  // but not always expressible as a single fused launch).
  auto simulateGuarded = [&](const char *Config, const Schedule &S,
                             ConfigResult &Out) {
    Out.Sched = S;
    if (!backendAccepts(K, S)) {
      Out.Outcome = Status(StatusCode::Internal, "codegen.map",
                           "schedule not generatable; simulation skipped");
      recordDegradation(Config, Out.Outcome);
      return;
    }
    try {
      MappedKernel Mk = mapToGpu(K, S, Options.Mapping);
      Out.Sim = target::simulateForOptions(Mk, Options);
      Out.TimeUs = Out.Sim.TimeUs;
    } catch (const RecoverableError &E) {
      Out.Sim = KernelSim();
      Out.TimeUs = 0;
      Out.Outcome = E.status();
      recordDegradation(Config, E.status());
    }
  };
  // The operator deadline: once expired, remaining stages are skipped
  // and the skip is recorded once per stage.
  auto deadlineExpired = [&](const char *Config) {
    if (!budget::deadlineExpired())
      return false;
    recordDegradation(Config,
                      Status(StatusCode::BudgetExceeded, "pipeline.deadline",
                             "operator budget exhausted; stage skipped"));
    return true;
  };

  // Compilation-cache fast path: on a hit the scheduling phase is
  // skipped entirely and the cached schedules are replayed through
  // mapping/simulation below. A hook returning structurally
  // incompatible schedules (corrupt entry that slipped through its own
  // validation) is treated as a miss.
  CachedCompilation Cached;
  bool CacheHit = false;
  if (Options.Cache && Options.Cache->lookup(K, Options, Cached) &&
      Cached.Isl.compatibleWith(K) && Cached.Novec.compatibleWith(K) &&
      Cached.Infl.compatibleWith(K))
    CacheHit = true;
  Report.CacheHit = CacheHit;
  if (Op.active())
    Op.arg("cache_hit", CacheHit);
  if (Options.Cache && obs::Journal::fastEnabled())
    obs::JournalEvent("cache_lookup").field("hit", CacheHit);

  // Reference configuration: plain scheduling, SCCs serialized up front
  // (the isl behaviour observed in the paper's Fig. 2(b)). On any
  // recoverable failure the scheduler already degraded to the original
  // program order; the report only needs to record why.
  SchedulerResult IslRun;
  double StageT0 = stageClockUs();
  {
    obs::Span Cfg("pipeline.config.isl");
    if (CacheHit) {
      IslRun.Sched = Cached.Isl;
    } else {
      SchedulerOptions IslOptions = Options.Sched;
      IslOptions.SerializeSccs = true;
      IslRun = scheduleKernel(K, IslOptions);
      if (!IslRun.Outcome.ok()) {
        Report.Isl.Outcome = IslRun.Outcome;
        recordDegradation("isl", IslRun.Outcome);
      }
      try {
        finalizeVectorMarks(K, IslRun.Sched, /*DisableVectorization=*/true);
      } catch (const RecoverableError &E) {
        stripVectorMarks(IslRun.Sched);
        recordDegradation("isl", E.status());
      }
      if (!backendAccepts(K, IslRun.Sched)) {
        // A constructed reference schedule is generatable on every kernel
        // the operator library produces; reaching this means the
        // construction itself was degraded. Fall to the original order.
        recordDegradation(
            "isl", Status(StatusCode::Internal, "pipeline.isl",
                          "reference schedule not generatable; using "
                          "original program order"));
        IslRun.Sched = originalSchedule(K);
      }
    }
    simulateGuarded("isl", IslRun.Sched, Report.Isl);
    Report.Isl.Stats = IslRun.Stats;
  }
  obs::MetricsSnapshot AfterIsl = M.snapshot();
  Report.Isl.Metrics = AfterIsl.since(Begin);
  journalStageEnd("isl", stageClockUs() - StageT0, Report.Isl.Metrics,
                  Report.Isl.Outcome);

  // Influenced scheduling (shared by novec and infl). A failed
  // influenced run degrades to the isl reference schedule.
  SchedulerResult InflRun;
  Schedule NovecSched;
  StageT0 = stageClockUs();
  {
    obs::Span Cfg("pipeline.config.novec");
    if (CacheHit) {
      InflRun.Sched = Cached.Novec;
      Report.Influenced = Cached.Influenced;
      NovecSched = Cached.Novec;
      simulateGuarded("novec", NovecSched, Report.Novec);
    } else if (deadlineExpired("novec")) {
      InflRun.Sched = IslRun.Sched;
      Report.Novec.Sched = InflRun.Sched;
      Report.Novec.Outcome =
          Status(StatusCode::BudgetExceeded, "pipeline.deadline");
    } else {
      try {
        InflRun = scheduleInfluenced(K, Options);
        if (!InflRun.Outcome.ok()) {
          // Influenced scheduling fell back internally; prefer the
          // reference schedule over the original order it returned.
          recordDegradation("novec", InflRun.Outcome);
          Report.Novec.Outcome = InflRun.Outcome;
          InflRun.Sched = IslRun.Sched;
          InflRun.ReachedLeaf = nullptr;
        }
      } catch (const RecoverableError &E) {
        // buildInfluenceTree (outside the scheduler's own recovery
        // boundary) failed; degrade to the reference schedule.
        recordDegradation("novec", E.status());
        Report.Novec.Outcome = E.status();
        InflRun = SchedulerResult();
        InflRun.Sched = IslRun.Sched;
      }
      if (!backendAccepts(K, InflRun.Sched)) {
        // The influenced schedule fused statements the backend cannot
        // generate together; fall back to the reference schedule. This
        // is expected fusion rejection, not a degradation.
        InflRun.Sched = IslRun.Sched;
        InflRun.ReachedLeaf = nullptr;
      }
      Report.Influenced = !sameTransforms(InflRun.Sched, IslRun.Sched);

      NovecSched = InflRun.Sched;
      try {
        finalizeVectorMarks(K, NovecSched, /*DisableVectorization=*/true);
      } catch (const RecoverableError &E) {
        stripVectorMarks(NovecSched);
        recordDegradation("novec", E.status());
      }
      simulateGuarded("novec", NovecSched, Report.Novec);
      Report.Novec.Stats = InflRun.Stats;
    }
  }
  obs::MetricsSnapshot AfterNovec = M.snapshot();
  Report.Novec.Metrics = AfterNovec.since(AfterIsl);
  journalStageEnd("novec", stageClockUs() - StageT0, Report.Novec.Metrics,
                  Report.Novec.Outcome);

  // Vectorized configuration; a failed vectorizer degrades to novec.
  Schedule InflSched = CacheHit ? Cached.Infl : InflRun.Sched;
  StageT0 = stageClockUs();
  {
    obs::Span Cfg("pipeline.config.infl");
    if (CacheHit) {
      Report.VecEligible = Cached.VecEligible;
      simulateGuarded("infl", InflSched, Report.Infl);
    } else if (deadlineExpired("infl")) {
      Report.Infl.Sched = InflSched;
      Report.Infl.Outcome =
          Status(StatusCode::BudgetExceeded, "pipeline.deadline");
    } else {
      try {
        Report.VecEligible =
            finalizeVectorMarks(K, InflSched,
                                /*DisableVectorization=*/false) > 0;
      } catch (const RecoverableError &E) {
        recordDegradation("infl", E.status());
        Report.Infl.Outcome = E.status();
        InflSched = NovecSched.Dims.empty() ? InflRun.Sched : NovecSched;
        stripVectorMarks(InflSched);
        Report.VecEligible = false;
      }
      simulateGuarded("infl", InflSched, Report.Infl);
      Report.Infl.Stats = InflRun.Stats;
    }
  }
  Report.Infl.Metrics = M.snapshot().since(AfterNovec);
  journalStageEnd("infl", stageClockUs() - StageT0, Report.Infl.Metrics,
                  Report.Infl.Outcome);

  // Manual-schedule proxy.
  StageT0 = stageClockUs();
  {
    obs::Span Cfg("pipeline.config.tvm");
    if (!deadlineExpired("tvm")) {
      try {
        Report.Tvm = Options.Target
                         ? simulateTvmProxy(K, *Options.Target,
                                            Options.Mapping)
                         : simulateTvmProxy(K, Options.Gpu, Options.Mapping);
      } catch (const RecoverableError &E) {
        Report.Tvm = TvmProxyResult();
        recordDegradation("tvm", E.status());
      }
    }
  }
  journalStageEnd("tvm", stageClockUs() - StageT0, obs::MetricsSnapshot(),
                  Status());

  if (Options.Validate && !deadlineExpired("validate")) {
    obs::Span Val("pipeline.validate");
    StageT0 = stageClockUs();
    try {
      Report.Validated = scheduleIsSemanticallyEqual(K, IslRun.Sched) &&
                         scheduleIsSemanticallyEqual(K, InflSched);
    } catch (const RecoverableError &E) {
      Report.Validated = false;
      recordDegradation("validate", E.status());
    }
    journalStageEnd("validate", stageClockUs() - StageT0,
                    obs::MetricsSnapshot(), Status());
  }

  // Offer the result for caching: only full-fidelity compilations are
  // stored, so replays never resurrect a degraded schedule.
  if (Options.Cache && !CacheHit && Report.Degradations.empty()) {
    CachedCompilation Entry;
    Entry.Isl = Report.Isl.Sched;
    Entry.Novec = Report.Novec.Sched;
    Entry.Infl = Report.Infl.Sched;
    Entry.Influenced = Report.Influenced;
    Entry.VecEligible = Report.VecEligible;
    Options.Cache->store(K, Options, Entry);
    if (obs::Journal::fastEnabled())
      obs::JournalEvent("cache_store").field("operator", K.Name);
  }

  Report.Metrics = M.snapshot().since(Begin);
  if (Options.Sink)
    Options.Sink->add(toSinkRecord(Report));
  journalRequestEnd(Report);
  return Report;
}

namespace {

obs::ConfigRecord toConfigRecord(const char *Name, const ConfigResult &R) {
  obs::ConfigRecord C;
  C.Name = Name;
  C.TimeUs = R.TimeUs;
  C.Transactions = R.Sim.Transactions;
  C.TransactionBytes = R.Sim.TransactionBytes;
  C.UsefulBytes = R.Sim.UsefulBytes;
  C.Metrics = R.Metrics;
  return C;
}

} // namespace

obs::OperatorRecord pinj::toSinkRecord(const OperatorReport &R) {
  obs::OperatorRecord Record;
  Record.Name = R.Name;
  Record.RequestId = R.RequestId;
  Record.Influenced = R.Influenced;
  Record.VecEligible = R.VecEligible;
  Record.Validated = R.Validated;
  Record.CacheHit = R.CacheHit;
  Record.Tuned = R.Tuned;
  if (R.Tuned) {
    Record.TuneEncoding = R.Tuning.Encoding;
    Record.TunePredictedUs = R.Tuning.PredictedTimeUs;
    Record.TuneFromDb = R.Tuning.FromDb;
    Record.TuneStrategy = R.Tuning.Strategy;
  }
  for (const DegradationEvent &E : R.Degradations) {
    obs::DegradationRecord D;
    D.Config = E.Config;
    D.Site = E.Site;
    D.Code = statusCodeName(E.Code);
    D.Detail = E.Detail;
    Record.Degradations.push_back(std::move(D));
  }
  Record.Configs.push_back(toConfigRecord("isl", R.Isl));
  Record.Configs.push_back(toConfigRecord("novec", R.Novec));
  Record.Configs.push_back(toConfigRecord("infl", R.Infl));
  obs::ConfigRecord Tvm;
  Tvm.Name = "tvm";
  Tvm.TimeUs = R.Tvm.TimeUs;
  Record.Configs.push_back(std::move(Tvm));
  Record.Metrics = R.Metrics;
  return Record;
}

std::string pinj::printStatsTable(const OperatorReport &R) {
  char Buf[256];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%-6s %10s %13s %10s %10s %10s %9s\n",
                "config", "time_us", "transactions", "ilp_solves",
                "ilp_nodes", "pivots", "fallbacks");
  Out += Buf;
  auto Row = [&](const char *Name, const ConfigResult &C) {
    const SchedulerStats &S = C.Stats;
    unsigned long long Fallbacks = S.ProgressionDrops + S.SiblingMoves +
                                   S.BandBreaks + S.AncestorBacktracks +
                                   S.SccCuts;
    std::snprintf(Buf, sizeof(Buf),
                  "%-6s %10.2f %13.0f %10llu %10llu %10llu %9llu\n", Name,
                  C.TimeUs, C.Sim.Transactions,
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.ilp_solves")),
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.ilp_nodes")),
                  static_cast<unsigned long long>(
                      C.Metrics.counter("lp.simplex_pivots")),
                  Fallbacks);
    Out += Buf;
  };
  Row("isl", R.Isl);
  Row("novec", R.Novec);
  Row("infl", R.Infl);
  std::snprintf(Buf, sizeof(Buf), "%-6s %10.2f %13s (%u launches)\n", "tvm",
                R.Tvm.TimeUs, "-", R.Tvm.Launches);
  Out += Buf;
  if (R.Tuned) {
    std::snprintf(Buf, sizeof(Buf),
                  "tuned: %s predicted %.3f us (%s, %s)\n",
                  R.Tuning.Encoding.c_str(), R.Tuning.PredictedTimeUs,
                  R.Tuning.FromDb ? "db" : "search",
                  R.Tuning.Strategy.c_str());
    Out += Buf;
  }
  if (R.degraded()) {
    std::snprintf(Buf, sizeof(Buf), "degradations: %zu\n",
                  R.Degradations.size());
    Out += Buf;
    for (const DegradationEvent &E : R.Degradations) {
      std::snprintf(Buf, sizeof(Buf), "  %-8s %s at %s: %s\n",
                    E.Config.c_str(), statusCodeName(E.Code),
                    E.Site.c_str(), E.Detail.c_str());
      Out += Buf;
    }
  }
  return Out;
}
